package analyzers

// The phasecharge analyzer turns the charge-mirror contract into a
// compile-time guarantee: every sim.Clock.AdvanceCycles charge site must
// be mirrored into a trace phase accumulator (trace.Probe.AddCycles) on
// every CFG path leading to it, with the same cost expression — so the
// per-phase cycle breakdown always sums to the clock totals, which is
// what makes the reproduced figures' phase decompositions trustworthy.
//
// The analysis is a forward must-dataflow over each function's CFG. The
// facts are canonical renderings of cost expressions known to be
// mirrored at this point:
//
//   - probe.AddCycles(ph, X) generates the fact X and every top-level
//     +-summand of X. Generating a fact that is already live is itself a
//     finding ("double attribution": the same cost would be counted in
//     two phases or twice in one).
//   - an assignment x := A + B whose summands are all mirrored
//     propagates the fact to x (the `cost := a + b + c` idiom).
//   - any other assignment to x kills every fact mentioning x; an
//     assignment through a selector or index kills facts containing the
//     exact rendering of that left-hand side.
//   - clock.AdvanceCycles(X) requires every +-summand of X to be a live
//     fact, then consumes the matched facts (a mirror attributes one
//     charge, not arbitrarily many).
//
// The join over predecessors is intersection: a charge mirrored on only
// one branch is a finding at the charge site. Function declarations and
// function literals are analyzed independently (the mirror must be in
// the same function as the charge — the contract reviewers check by
// eye). sim.Clock.Advance/SyncTo sites are out of scope: Advance is
// time-based plumbing used by tests and SyncTo models message arrival,
// neither is a cost charge.

import (
	"go/ast"
	"go/token"
)

var PhaseCharge = &Analyzer{
	Name: "phasecharge",
	ID:   "MMT010",
	Doc: "every sim.Clock.AdvanceCycles charge must be mirrored into exactly " +
		"one trace phase (Probe.AddCycles of the same cost expression) on all " +
		"CFG paths reaching it",
	Run: runPhaseCharge,
}

func runPhaseCharge(pass *Pass) error {
	if !inScope(pass.Pkg.Path()) {
		return nil
	}
	unit := &PackageUnit{Files: pass.Files, Pkg: pass.Pkg, TypesInfo: pass.TypesInfo}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch n := n.(type) {
			case *ast.FuncDecl:
				body = n.Body
			case *ast.FuncLit:
				body = n.Body
			}
			if body == nil {
				return true
			}
			checkChargeBody(pass, unit, body)
			return true // literals nested inside are visited independently
		})
	}
	return nil
}

func checkChargeBody(pass *Pass, unit *PackageUnit, body *ast.BlockStmt) {
	cfg := buildCFG(body, func(call *ast.CallExpr) bool { return isPanicCall(unit.TypesInfo, call) })
	transfer := func(blk *cfgBlock, in factSet) factSet {
		return chargeTransfer(pass, unit, blk, in, false)
	}
	ins := solveForward(cfg, true, factSet{}, transfer)
	for _, blk := range cfg.blocks {
		in, ok := ins[blk]
		if !ok {
			continue
		}
		chargeTransfer(pass, unit, blk, in, true)
	}
}

// chargeTransfer threads the mirrored-facts set through one block. With
// report=true (the converged pass) it emits diagnostics.
func chargeTransfer(pass *Pass, unit *PackageUnit, blk *cfgBlock, in factSet, report bool) factSet {
	facts := in.clone()
	for _, node := range blk.nodes {
		chargeWalk(pass, unit, node, facts, report)
	}
	return facts
}

func chargeWalk(pass *Pass, unit *PackageUnit, node ast.Node, facts factSet, report bool) {
	switch n := node.(type) {
	case *ast.AssignStmt:
		// Calls in the RHS run before the assignment takes effect.
		for _, r := range n.Rhs {
			chargeWalkExpr(pass, unit, r, facts, report)
		}
		chargeAssign(pass, unit, n, facts)
	case *ast.IncDecStmt:
		chargeKill(pass, unit, n.X, facts)
	case *ast.DeclStmt:
		if gd, ok := n.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						chargeWalkExpr(pass, unit, v, facts, report)
					}
					for _, name := range vs.Names {
						killFactsMentioning(facts, name.Name)
					}
				}
			}
		}
	default:
		if e, ok := node.(ast.Expr); ok {
			chargeWalkExpr(pass, unit, e, facts, report)
		} else if s, ok := node.(ast.Stmt); ok {
			// Leaf statements holding expressions (ExprStmt, SendStmt,
			// ReturnStmt, DeferStmt, GoStmt, …).
			ast.Inspect(s, func(m ast.Node) bool {
				switch m := m.(type) {
				case *ast.FuncLit:
					return false
				case *ast.AssignStmt:
					for _, r := range m.Rhs {
						chargeWalkExpr(pass, unit, r, facts, report)
					}
					chargeAssign(pass, unit, m, facts)
					return false
				case *ast.CallExpr:
					chargeCall(pass, unit, m, facts, report)
					return false
				}
				return true
			})
		}
	}
}

func chargeWalkExpr(pass *Pass, unit *PackageUnit, e ast.Expr, facts factSet, report bool) {
	ast.Inspect(e, func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			chargeCall(pass, unit, m, facts, report)
			return false
		}
		return true
	})
}

// chargeCall handles the two tracked call shapes; nested argument calls
// are processed first (inner expressions evaluate first).
func chargeCall(pass *Pass, unit *PackageUnit, call *ast.CallExpr, facts factSet, report bool) {
	for _, a := range call.Args {
		chargeWalkExpr(pass, unit, a, facts, report)
	}
	if se, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		chargeWalkExpr(pass, unit, se.X, facts, report)
	}
	switch {
	case isMethodCall(unit, call, "mmt/internal/trace", "Probe", "AddCycles") && len(call.Args) == 2:
		arg := call.Args[1]
		canon := canonExpr(pass.Fset, arg)
		if canon == "" {
			return
		}
		gen := map[string]bool{canon: true}
		for _, t := range addTerms(arg) {
			if c := canonExpr(pass.Fset, t); c != "" {
				gen[c] = true
			}
		}
		for c := range gen {
			if facts[c] && report {
				pass.Reportf(call.Pos(), "cost %s is already mirrored into a phase on this path (double attribution)", c)
			}
		}
		for c := range gen {
			facts[c] = true
		}
	case isMethodCall(unit, call, "mmt/internal/sim", "Clock", "AdvanceCycles") && len(call.Args) == 1:
		arg := call.Args[0]
		missing := false
		var matched []string
		for _, t := range addTerms(arg) {
			c := canonExpr(pass.Fset, t)
			if facts[c] {
				matched = append(matched, c)
				continue
			}
			missing = true
			if report {
				pass.Reportf(call.Pos(), "cycle charge %s is not mirrored into a trace phase on every path to this AdvanceCycles", c)
			}
		}
		if !missing {
			for _, c := range matched {
				delete(facts, c) // one mirror attributes one charge
			}
		}
	}
}

// chargeAssign applies an assignment's kill set, then the alias rule:
// x := A + B with all summands mirrored makes x mirrored.
func chargeAssign(pass *Pass, unit *PackageUnit, as *ast.AssignStmt, facts factSet) {
	aliased := map[string]bool{}
	if len(as.Lhs) == len(as.Rhs) && as.Tok != token.ADD_ASSIGN {
		for i, lhs := range as.Lhs {
			id, ok := ast.Unparen(lhs).(*ast.Ident)
			if !ok || id.Name == "_" {
				continue
			}
			all := true
			for _, t := range addTerms(as.Rhs[i]) {
				if !facts[canonExpr(pass.Fset, t)] {
					all = false
					break
				}
			}
			if all {
				aliased[id.Name] = true
			}
		}
	}
	for _, lhs := range as.Lhs {
		chargeKill(pass, unit, lhs, facts)
	}
	for name := range aliased {
		facts[name] = true
	}
}

// chargeKill removes facts invalidated by writing through lhs.
func chargeKill(pass *Pass, unit *PackageUnit, lhs ast.Expr, facts factSet) {
	lhs = ast.Unparen(lhs)
	switch l := lhs.(type) {
	case *ast.Ident:
		if l.Name != "_" {
			killFactsMentioning(facts, l.Name)
		}
	default:
		// Selector/index/star targets: kill facts containing the exact
		// rendering of the written location.
		canon := canonExpr(pass.Fset, lhs)
		if canon == "" {
			return
		}
		for f := range facts {
			if containsToken(f, canon) {
				delete(facts, f)
			}
		}
	}
}

// killFactsMentioning drops every fact whose identifier tokens include
// name.
func killFactsMentioning(facts factSet, name string) {
	for f := range facts {
		if identTokens(f)[name] {
			delete(facts, f)
		}
	}
}

// containsToken reports whether canonical rendering hay contains needle
// at a token boundary: c.stats.Cycles does not match inside
// c.stats.CyclesTotal or ac.stats.Cycles, but writing c.prof does
// invalidate c.prof.DRAMAccess (a trailing '.' extends the written
// location, a trailing identifier byte does not).
func containsToken(hay, needle string) bool {
	isIdentByte := func(b byte) bool {
		return b == '_' || (b >= 'a' && b <= 'z') || (b >= 'A' && b <= 'Z') || (b >= '0' && b <= '9')
	}
	for i := 0; i+len(needle) <= len(hay); i++ {
		if hay[i:i+len(needle)] != needle {
			continue
		}
		if i > 0 && (isIdentByte(hay[i-1]) || hay[i-1] == '.') {
			continue
		}
		if end := i + len(needle); end < len(hay) && isIdentByte(hay[end]) {
			continue
		}
		return true
	}
	return false
}

// isMethodCall reports whether call invokes pkgPath.(Type).name (on a
// value or pointer receiver).
func isMethodCall(unit *PackageUnit, call *ast.CallExpr, pkgPath, typeName, name string) bool {
	fn := funcObj(unit.TypesInfo, call)
	if fn == nil || fn.Name() != name || fn.Pkg() == nil || fn.Pkg().Path() != pkgPath {
		return false
	}
	tn := namedRecv(recvTypeOf(fn))
	return tn != nil && tn.Name() == typeName
}
