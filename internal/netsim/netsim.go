// Package netsim models the untrusted interconnect between MMT nodes and
// the pci-connector device of §V-A1: point-to-point message delivery with
// configurable propagation delay, plus interposers that let tests and the
// attack demos act as the man-in-the-middle the threat model assumes
// (spying, tampering, replaying and re-ordering packets).
//
// Timing: the sender's NIC/DMA serialization cost is charged by the
// channel layer from the sim.Profile; the network itself adds only the
// propagation delay. A receiver cannot observe a message before its
// simulated arrival instant (Clock.SyncTo).
package netsim

import (
	"fmt"
	"sync"

	"mmt/internal/sim"
	"mmt/internal/trace"
)

// Kind tags the payload type of a message.
type Kind uint8

const (
	// KindData is a raw remote write (non-secure or secure-channel bytes).
	KindData Kind = iota
	// KindClosure is an encoded MMT closure delegation.
	KindClosure
	// KindControl is protocol control traffic (acks, key exchange).
	KindControl
)

func (k Kind) String() string {
	switch k {
	case KindData:
		return "data"
	case KindClosure:
		return "closure"
	case KindControl:
		return "control"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Message is one packet on the interconnect.
type Message struct {
	From, To string
	Kind     Kind
	Payload  []byte
	// ArriveAt is the simulated instant the message becomes visible at the
	// destination.
	ArriveAt sim.Time
	// Trace is causal observability metadata riding ALONGSIDE the payload,
	// never inside it: no MAC, seal or signature covers it, so tracing
	// cannot perturb the security protocol — and, symmetrically, the
	// context is untrusted wire state an adversary may tamper with, which
	// at worst mislabels a span. A zero Context means the send was
	// untraced.
	Trace trace.Context
	// SentAt is the sender-clock instant the message went on the wire
	// (ArriveAt minus the propagation delay); the receiving endpoint
	// records the [SentAt, ArriveAt] flight as a PhaseWire causal span.
	SentAt sim.Time
}

// Interposer sits on the wire. For each sent message it returns the
// messages actually delivered: unchanged (pass-through), modified
// (tampering), duplicated (replay), reordered, or none (drop). The network
// is untrusted, so interposers receive the real payload bytes.
type Interposer interface {
	Intercept(m Message) []Message
}

// PassThrough delivers every message unchanged.
type PassThrough struct{}

// Intercept implements Interposer.
func (PassThrough) Intercept(m Message) []Message { return []Message{m} }

// Endpoint is one node's attachment to the network.
type Endpoint struct {
	name  string
	clock *sim.Clock
	net   *Network
	inbox []Message
	probe *trace.Probe // nil = tracing disabled
}

// SetTrace attaches a trace probe counting outbound wire messages and
// bytes per Kind — exactly the traffic shape a wire adversary observes.
// Nil disables tracing.
func (e *Endpoint) SetTrace(p *trace.Probe) { e.probe = p }

// wireCounters maps a Kind to its (messages, bytes) trace counters.
//mmt:hotpath
func wireCounters(k Kind) (msgs, bytes trace.Counter, ok bool) {
	switch k {
	case KindData:
		return trace.CtrWireMsgsData, trace.CtrWireBytesData, true
	case KindClosure:
		return trace.CtrWireMsgsClosure, trace.CtrWireBytesClosure, true
	case KindControl:
		return trace.CtrWireMsgsControl, trace.CtrWireBytesControl, true
	default:
		return 0, 0, false
	}
}

// Network is the shared untrusted interconnect.
type Network struct {
	mu         sync.Mutex
	endpoints  map[string]*Endpoint
	interposer Interposer
	// Latency is the one-way propagation delay (Figure 10b sweeps this).
	Latency sim.Time
	// delivered counts messages placed into inboxes (stats for tests).
	delivered int
}

// NewNetwork builds a network with the given propagation latency.
func NewNetwork(latency sim.Time) *Network {
	return &Network{endpoints: make(map[string]*Endpoint), interposer: PassThrough{}, Latency: latency}
}

// SetInterposer installs the man-in-the-middle. A nil interposer restores
// pass-through delivery.
func (n *Network) SetInterposer(i Interposer) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if i == nil {
		i = PassThrough{}
	}
	n.interposer = i
}

// Attach registers a named endpoint whose receive times follow clock.
func (n *Network) Attach(name string, clock *sim.Clock) (*Endpoint, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, dup := n.endpoints[name]; dup {
		return nil, fmt.Errorf("netsim: endpoint %q already attached", name)
	}
	if clock == nil {
		clock = sim.NewClock(0)
	}
	ep := &Endpoint{name: name, clock: clock, net: n}
	n.endpoints[name] = ep
	return ep, nil
}

// Name reports the endpoint's network name.
func (e *Endpoint) Name() string { return e.name }

// Clock reports the endpoint's clock.
func (e *Endpoint) Clock() *sim.Clock { return e.clock }

// Send puts a message on the wire. The payload is copied, the interposer
// transforms the delivery, and each resulting message lands in its
// destination inbox stamped with sender-time + propagation latency.
// Unknown destinations are silently dropped, as on a real fabric.
func (e *Endpoint) Send(to string, kind Kind, payload []byte) {
	e.SendTraced(to, kind, payload, trace.Context{})
}

// SendTraced is Send with a causal trace context attached as metadata
// beside the payload (see Message.Trace). A zero context is an untraced
// send.
func (e *Endpoint) SendTraced(to string, kind Kind, payload []byte, ctx trace.Context) {
	if msgs, bytes, ok := wireCounters(kind); ok {
		e.probe.Count(msgs, 1)
		e.probe.Count(bytes, uint64(len(payload)))
	}
	m := Message{
		From:     e.name,
		To:       to,
		Kind:     kind,
		Payload:  append([]byte(nil), payload...),
		SentAt:   e.clock.Now(),
		Trace:    ctx,
		ArriveAt: e.clock.Now() + e.net.Latency,
	}
	n := e.net
	n.mu.Lock()
	defer n.mu.Unlock()
	for _, out := range n.interposer.Intercept(m) {
		if dst, ok := n.endpoints[out.To]; ok {
			dst.inbox = append(dst.inbox, out)
			n.delivered++
		}
	}
}

// Recv pops the oldest pending message, advancing the receiver's clock to
// the arrival instant. ok is false when the inbox is empty. The wire wait
// — how far SyncTo moved the receiver's clock — is recorded as an
// OpRemoteRead latency sample: it is the receive-side charge point the
// propagation delay mirrors into.
func (e *Endpoint) Recv() (Message, bool) {
	n := e.net
	n.mu.Lock()
	defer n.mu.Unlock()
	if len(e.inbox) == 0 {
		return Message{}, false
	}
	m := e.inbox[0]
	e.inbox = e.inbox[1:]
	if wait := m.ArriveAt - e.clock.Now(); wait > 0 {
		e.probe.RecordOp(trace.OpRemoteRead, sim.TimeToCycles(wait, e.clock.Freq()))
	}
	e.clock.SyncTo(m.ArriveAt)
	// Record the flight as a causal wire span: a child of the sender's
	// span, zero cycles (propagation delay is wait, not work). The
	// delivered context is NOT re-parented — protocol spans recorded from
	// m.Trace stay direct children of the sender's span, keeping the tree
	// flat and interval containment trivially true.
	if m.Trace.Valid() {
		e.probe.CausalSpan(m.Trace, trace.PhaseWire, m.SentAt, m.ArriveAt, 0)
	}
	return m, true
}

// Pending reports the number of undelivered messages in the inbox.
func (e *Endpoint) Pending() int {
	e.net.mu.Lock()
	defer e.net.mu.Unlock()
	return len(e.inbox)
}

// Delivered reports the total messages delivered on the network.
func (n *Network) Delivered() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.delivered
}

// PendingTotal reports the number of undelivered messages across every
// endpoint. The snapshot layer uses it as its quiesce check: a cluster
// with traffic still in flight has state on the wire that no node-local
// enumeration can capture, so Save/Checkpoint refuse until it drains.
func (n *Network) PendingTotal() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	total := 0
	for _, ep := range n.endpoints {
		total += len(ep.inbox)
	}
	return total
}
