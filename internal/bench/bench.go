// Package bench implements the paper's evaluation (§VI): one experiment
// per table and figure, each returning structured rows that the mmt-bench
// command and the testing.B harness render. Every experiment runs the real
// functional stack (actual encryption, actual tree verification, actual
// closures over the simulated interconnect) and reads timings off the
// simulated clocks — see DESIGN.md for the calibration and the
// per-experiment index.
package bench

import (
	"fmt"
	"strings"

	"mmt/internal/channel"
	"mmt/internal/core"
	"mmt/internal/crypt"
	"mmt/internal/engine"
	"mmt/internal/forest"
	"mmt/internal/mem"
	"mmt/internal/netsim"
	"mmt/internal/sim"
	"mmt/internal/trace"
	"mmt/internal/tree"
)

// testbed is a pair of MMT nodes joined by an untrusted network, with all
// three channel types available — the standing microbenchmark rig.
type testbed struct {
	net  *netsim.Network
	prof *sim.Profile

	sender, receiver *core.Node
	epS, epR         *netsim.Endpoint

	nonsec *channel.NonSecure
	secure *channel.Secure
	deleg  *channel.Delegation // sender side
	delegR *channel.Delegation // receiver side

	// prS/prR are the per-node trace probes (nil when the testbed runs
	// untraced, which is the default).
	prS, prR *trace.Probe
}

// attachTrace points every component of the rig at sink: the two
// controllers, both endpoints and all channel ends record into the
// "sender" / "receiver" processes. A nil sink is a no-op (nil probes
// disable tracing everywhere).
func (tb *testbed) attachTrace(sink *trace.Sink) {
	tb.prS, tb.prR = sink.Probe("sender"), sink.Probe("receiver")
	tb.sender.Controller().SetTrace(tb.prS)
	tb.receiver.Controller().SetTrace(tb.prR)
	tb.epS.SetTrace(tb.prS)
	tb.epR.SetTrace(tb.prR)
	tb.nonsec.SetTrace(tb.prS)
	tb.secure.SetTrace(tb.prS)
	tb.deleg.SetTrace(tb.prS)
	tb.delegR.SetTrace(tb.prR)
}

// newTestbed builds the rig with `regions` buffer regions per node.
func newTestbed(prof *sim.Profile, geo tree.Geometry, regions int) (*testbed, error) {
	tb := &testbed{net: netsim.NewNetwork(prof.NetLatency), prof: prof}
	mk := func(name string, id int) (*core.Node, *netsim.Endpoint, error) {
		pm := mem.New(mem.Config{
			Size:          regions * geo.DataSize(),
			RegionSize:    geo.DataSize(),
			MetaPerRegion: geo.MetaSize(),
		})
		ctl, err := engine.New(pm, geo, nil, prof)
		if err != nil {
			return nil, nil, err
		}
		ep, err := tb.net.Attach(name, ctl.Clock())
		if err != nil {
			return nil, nil, err
		}
		return core.NewNode(forest.NodeID(id), ctl), ep, nil
	}
	var err error
	if tb.sender, tb.epS, err = mk("sender", 1); err != nil {
		return nil, err
	}
	if tb.receiver, tb.epR, err = mk("receiver", 2); err != nil {
		return nil, err
	}
	key := crypt.KeyFromBytes([]byte("bench-key"))
	pool := make([]int, regions)
	for i := range pool {
		pool[i] = i
	}
	tb.nonsec = channel.NewNonSecure(tb.epS, "receiver", prof)
	if tb.secure, err = channel.NewSecure(tb.epS, "receiver", prof, key); err != nil {
		return nil, err
	}
	tb.deleg = channel.NewDelegation(tb.epS, "receiver", prof, tb.sender, core.NewConn(key, 0), pool)
	tb.delegR = channel.NewDelegation(tb.epR, "sender", prof, tb.receiver, core.NewConn(key, 0), append([]int(nil), pool...))
	return tb, nil
}

// secureReceiver builds the matching receive side of the secure channel.
func (tb *testbed) secureReceiver() (*channel.Secure, error) {
	sec, err := channel.NewSecure(tb.epR, "sender", tb.prof, crypt.KeyFromBytes([]byte("bench-key")))
	if err != nil {
		return nil, err
	}
	sec.SetTrace(tb.prR)
	return sec, nil
}

// payload builds a deterministic test payload.
func payload(n int) []byte {
	p := make([]byte, n)
	for i := range p {
		p[i] = byte(i*131 + 17)
	}
	return p
}

// renderTable pretty-prints rows with a header.
func renderTable(title string, header []string, rows [][]string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "## %s\n\n", title)
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, r := range rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(header)
	sep := make([]string, len(header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range rows {
		line(r)
	}
	return b.String()
}

// fmtSize prints a byte count the way the paper does (2K, 2M, ...).
func fmtSize(n int) string {
	switch {
	case n >= 1<<20 && n%(1<<20) == 0:
		return fmt.Sprintf("%dM", n>>20)
	case n >= 1<<10 && n%(1<<10) == 0:
		return fmt.Sprintf("%dK", n>>10)
	default:
		return fmt.Sprintf("%dB", n)
	}
}
