package bench

import (
	"bytes"
	"testing"

	"mmt/internal/trace"
)

// causalFig11 runs the fig11 sweep at the given worker count on a fresh
// sink and returns the causal export bytes plus the sink.
func causalFig11(t *testing.T, workers, accesses int) ([]byte, *trace.Sink) {
	t.Helper()
	SetWorkers(workers)
	sink := trace.NewSink()
	if _, _, err := fig11Traced(accesses, sink); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := sink.WriteCausalJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), sink
}

// TestCausalExportByteIdenticalAcrossWorkers is the determinism half of
// the causal-tracing contract: the mmt-causal/v1 export is a pure
// function of the simulated run, so serial and parallel sweeps must
// serialize to identical bytes. Span IDs are minted per trace and trace
// IDs re-based at merge, so no worker interleaving can leak into the
// output. Run with -race this also exercises the sink's locking.
func TestCausalExportByteIdenticalAcrossWorkers(t *testing.T) {
	prev := Workers()
	defer SetWorkers(prev)

	serial, _ := causalFig11(t, 1, 800)
	if len(serial) == 0 || !bytes.Contains(serial, []byte(trace.CausalSchema)) {
		t.Fatalf("serial export empty or unschema'd:\n%s", serial)
	}
	for _, w := range []int{2, 4, 8} {
		got, _ := causalFig11(t, w, 800)
		if !bytes.Equal(serial, got) {
			t.Fatalf("causal export at %d workers deviates from serial run", w)
		}
	}
}

// TestFig11MigrationTreesMatchSidecar is the accounting half: every
// migration in the sweep appears as exactly one rooted span tree, and
// the cycle totals over those trees re-add to the sidecar's
// migration-send-cycles + migration-recv-cycles totals.
func TestFig11MigrationTreesMatchSidecar(t *testing.T) {
	sc, err := SidecarForFigure("11", 800)
	if err != nil {
		t.Fatal(err)
	}
	if len(sc.Migrations) == 0 {
		t.Fatal("fig11 sweep produced no migration traces")
	}
	totals := map[string]float64{}
	for _, tot := range sc.Totals {
		totals[tot.Name] = tot.Value
	}
	if got := totals["migrations"]; got != float64(len(sc.Migrations)) {
		t.Fatalf("migrations total %v != %d migration entries", got, len(sc.Migrations))
	}
	var sum float64
	seen := map[string]bool{}
	for _, mg := range sc.Migrations {
		if seen[mg.ID] {
			t.Fatalf("migration %s appears in more than one tree", mg.ID)
		}
		seen[mg.ID] = true
		if mg.Spans < 2 {
			t.Errorf("migration %s: a cross-machine tree needs >= 2 spans, got %d", mg.ID, mg.Spans)
		}
		if mg.CriticalPathLen < 1 || mg.CriticalPathLen > mg.Spans {
			t.Errorf("migration %s: critical path length %d outside [1,%d]", mg.ID, mg.CriticalPathLen, mg.Spans)
		}
		sum += float64(mg.TotalCycles)
	}
	want := totals["migration-send-cycles"] + totals["migration-recv-cycles"]
	if diff := sum - want; diff > 1e-9*want || diff < -1e-9*want {
		t.Fatalf("tree cycle totals %.6f != sidecar migration totals %.6f", sum, want)
	}
	// Check() enforces the same invariant; keep the two in agreement.
	if err := sc.Check(); err != nil {
		t.Fatal(err)
	}
}

// TestCausalTreesAreWellFormed spot-checks the in-memory trace shape the
// exporters rely on: parents precede children (acyclicity), children
// nest inside their parent's interval, and exactly one root per trace.
func TestCausalTreesAreWellFormed(t *testing.T) {
	_, sink := causalFig11(t, 1, 800)
	traces := sink.CausalTraces()
	if len(traces) == 0 {
		t.Fatal("no causal traces")
	}
	for _, tr := range traces {
		name := tr.ID.String()
		byID := map[uint32]trace.CausalSpan{}
		roots := 0
		for _, sp := range tr.Spans {
			if sp.Parent == 0 {
				roots++
			} else {
				p, ok := byID[sp.Parent]
				if !ok {
					t.Fatalf("%s: span %d's parent %d does not precede it", name, sp.Span, sp.Parent)
				}
				if sp.Begin < p.Begin || sp.End > p.End {
					t.Fatalf("%s: span %d [%v,%v] escapes parent %d [%v,%v]",
						name, sp.Span, sp.Begin, sp.End, sp.Parent, p.Begin, p.End)
				}
			}
			byID[sp.Span] = sp
		}
		if roots != 1 {
			t.Fatalf("%s: %d roots, want 1", name, roots)
		}
	}
}
