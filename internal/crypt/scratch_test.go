package crypt

import (
	"bytes"
	"testing"
	"testing/quick"
)

// TestPadLineMatchesEncryptZero: the one-shot OTP keystream equals the
// incremental pad path (ciphertext of a zero line IS the pad).
func TestPadLineMatchesEncryptZero(t *testing.T) {
	e := testEngine()
	zero := make([]byte, LineSize)
	var s Scratch
	f := func(guaddr, counter uint64, lineIdx uint32) bool {
		tw := Tweak{GUAddr: guaddr, Line: lineIdx, Counter: counter}
		got := e.PadLine(tw, &s)
		return bytes.Equal(got[:], e.EncryptLine(tw, zero))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestEncryptLineIntoMatchesEncryptLine: the zero-alloc variant is
// byte-identical to the allocating one, including in-place (aliased) use.
func TestEncryptLineIntoMatchesEncryptLine(t *testing.T) {
	e := testEngine()
	var s Scratch
	tw := Tweak{GUAddr: 0xABC, Line: 9, Counter: 1234}
	pt := line(5)

	want := e.EncryptLine(tw, pt)
	dst := make([]byte, LineSize)
	e.EncryptLineInto(tw, pt, dst, &s)
	if !bytes.Equal(dst, want) {
		t.Fatal("EncryptLineInto differs from EncryptLine")
	}

	back := make([]byte, LineSize)
	e.DecryptLineInto(tw, dst, back, &s)
	if !bytes.Equal(back, pt) {
		t.Fatal("DecryptLineInto round trip failed")
	}

	// In-place: src and dst alias.
	buf := append([]byte(nil), pt...)
	e.EncryptLineInto(tw, buf, buf, &s)
	if !bytes.Equal(buf, want) {
		t.Fatal("aliased EncryptLineInto differs from EncryptLine")
	}
}

func TestEncryptLineIntoPanicsOnWrongSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for short line")
		}
	}()
	var s Scratch
	testEngine().EncryptLineInto(Tweak{}, make([]byte, 10), make([]byte, LineSize), &s)
}

// TestLineMACBufMatchesLineMAC: scratch-buffer MAC equals the allocating one.
func TestLineMACBufMatchesLineMAC(t *testing.T) {
	e := testEngine()
	var s Scratch
	f := func(guaddr, counter uint64, lineIdx uint32, seed byte) bool {
		tw := Tweak{GUAddr: guaddr, Line: lineIdx, Counter: counter}
		ct := e.EncryptLine(tw, line(seed))
		return e.LineMACBuf(tw, ct, &s) == e.LineMAC(tw, ct)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestNodeMACBufMatchesNodeMAC: scratch-buffer node MAC equals NodeMAC.
func TestNodeMACBufMatchesNodeMAC(t *testing.T) {
	e := testEngine()
	var s Scratch
	f := func(guaddr, parent uint64, nodeID uint32, counters []uint64) bool {
		return e.NodeMACBuf(guaddr, nodeID, parent, counters, &s) ==
			e.NodeMAC(guaddr, nodeID, parent, counters)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestNodeMACBatchMatchesNodeMAC: a batch of mixed-arity jobs produces
// exactly the per-job NodeMAC values, and the scratch is reusable.
func TestNodeMACBatchMatchesNodeMAC(t *testing.T) {
	e := testEngine()
	var s Scratch
	const guaddr = 0x700
	jobs := []NodeMACJob{
		{NodeID: 0, ParentCounter: 9, Counters: []uint64{1, 2, 3, 4}},
		{NodeID: 17, ParentCounter: 0, Counters: []uint64{5}},
		{NodeID: 2, ParentCounter: 1 << 40, Counters: []uint64{0, 0, 0, 0, 0, 0, 0, 7}},
		{NodeID: 3, ParentCounter: 12, Counters: nil},
		{NodeID: 4, ParentCounter: 12, Counters: make([]uint64, 64)},
	}
	out := make([]uint64, len(jobs))
	for round := 0; round < 3; round++ { // reuse the same scratch
		e.NodeMACBatch(guaddr, jobs, out, &s)
		for i, j := range jobs {
			want := e.NodeMAC(guaddr, j.NodeID, j.ParentCounter, j.Counters)
			if out[i] != want {
				t.Fatalf("round %d job %d: batch %#x, want %#x", round, i, out[i], want)
			}
		}
	}
	// Empty batch is a no-op.
	e.NodeMACBatch(guaddr, nil, nil, &s)
}

// TestScratchPathsAllocFree: the Into/Buf variants are allocation-free
// once the scratch is warm — the hardware data path they model does not
// call malloc per memory access.
func TestScratchPathsAllocFree(t *testing.T) {
	e := testEngine()
	var s Scratch
	tw := Tweak{GUAddr: 1, Line: 2, Counter: 3}
	buf := line(0)
	jobs := []NodeMACJob{
		{NodeID: 0, ParentCounter: 9, Counters: []uint64{1, 2, 3, 4}},
		{NodeID: 1, ParentCounter: 9, Counters: []uint64{5, 6, 7, 8}},
	}
	out := make([]uint64, len(jobs))
	e.NodeMACBatch(1, jobs, out, &s) // warm nodeWords/flat/polys

	var macSink uint64
	allocs := testing.AllocsPerRun(100, func() {
		e.EncryptLineInto(tw, buf, buf, &s)
		macSink ^= e.LineMACBuf(tw, buf, &s)
		macSink ^= e.NodeMACBuf(1, 0, 9, jobs[0].Counters, &s)
		e.NodeMACBatch(1, jobs, out, &s)
		e.DecryptLineInto(tw, buf, buf, &s)
	})
	if allocs != 0 {
		t.Fatalf("scratch paths allocated %.1f times per op, want 0", allocs)
	}
	_ = macSink
}
