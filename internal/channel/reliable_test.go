package channel

import (
	"bytes"
	"errors"
	"testing"

	"mmt/internal/netsim"
)

// pumpInto returns a pump function that drains every pending closure on
// the receiver, collecting successful payloads and releasing buffers.
func pumpInto(t *testing.T, recv *Delegation, got *[][]byte) func() {
	t.Helper()
	return func() {
		for {
			r, err := recv.Recv()
			if errors.Is(err, ErrEmpty) {
				return
			}
			if err != nil {
				continue // rejected closure: nack already sent
			}
			p, err := r.Payload()
			if err != nil {
				t.Fatal(err)
			}
			*got = append(*got, append([]byte(nil), p...))
			if err := r.Release(); err != nil {
				t.Fatal(err)
			}
		}
	}
}

func TestReliableDeliversOnCleanNetwork(t *testing.T) {
	r := newRig(t, 0)
	rel := NewReliable(r.dgA)
	var got [][]byte
	msg := []byte("exactly once, please")
	if err := rel.SendReliably(msg, pumpInto(t, r.dgB, &got)); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || !bytes.Equal(got[0], msg) {
		t.Fatalf("delivered %d copies", len(got))
	}
	if rel.Retries != 0 {
		t.Fatalf("clean network needed %d retries", rel.Retries)
	}
}

func TestReliableRetriesThroughTransientTampering(t *testing.T) {
	r := newRig(t, 0)
	rel := NewReliable(r.dgA)
	var got [][]byte
	pump := pumpInto(t, r.dgB, &got)

	// Tamper with the first attempt only.
	attempts := 0
	r.net.SetInterposer(interposerFunc(func(m netsim.Message) []netsim.Message {
		if m.Kind == netsim.KindClosure {
			attempts++
			if attempts == 1 {
				m.Payload = append([]byte(nil), m.Payload...)
				m.Payload[len(m.Payload)-1] ^= 1
			}
		}
		return []netsim.Message{m}
	}))
	msg := []byte("gets through on the second try")
	if err := rel.SendReliably(msg, pump); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || !bytes.Equal(got[0], msg) {
		t.Fatalf("delivered %d copies: %q", len(got), got)
	}
	if rel.Retries != 1 {
		t.Fatalf("retries = %d, want 1", rel.Retries)
	}
	// Channel still healthy afterwards.
	if err := rel.SendReliably([]byte("next message"), pump); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatal("second message lost")
	}
}

func TestReliableRetriesThroughPacketLoss(t *testing.T) {
	r := newRig(t, 0)
	rel := NewReliable(r.dgA)
	var got [][]byte
	pump := pumpInto(t, r.dgB, &got)

	// Drop the first two closure transmissions entirely.
	dropped := 0
	r.net.SetInterposer(interposerFunc(func(m netsim.Message) []netsim.Message {
		if m.Kind == netsim.KindClosure && dropped < 2 {
			dropped++
			return nil
		}
		return []netsim.Message{m}
	}))
	msg := []byte("survives a lossy fabric")
	if err := rel.SendReliably(msg, pump); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || !bytes.Equal(got[0], msg) {
		t.Fatalf("delivered %d copies", len(got))
	}
	if rel.Retries != 2 {
		t.Fatalf("retries = %d, want 2", rel.Retries)
	}
	if r.dgA.PoolFree() != 8 {
		t.Fatalf("sender pool %d after recovery, want 8", r.dgA.PoolFree())
	}
}

func TestReliableGivesUpUnderPersistentAttack(t *testing.T) {
	r := newRig(t, 0)
	rel := NewReliable(r.dgA)
	rel.MaxRetries = 2
	var got [][]byte
	pump := pumpInto(t, r.dgB, &got)

	r.net.SetInterposer(&netsim.Tamperer{Kind: netsim.KindClosure, Offset: -1})
	err := rel.SendReliably([]byte("doomed"), pump)
	if !errors.Is(err, ErrGiveUp) {
		t.Fatalf("persistent tampering: %v, want ErrGiveUp", err)
	}
	if len(got) != 0 {
		t.Fatal("tampered message delivered")
	}
	// Sender fully recovered: clean retry works.
	r.net.SetInterposer(nil)
	if err := rel.SendReliably([]byte("after the storm"), pump); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatal("post-recovery message lost")
	}
}

func TestReliableNoDuplicateDelivery(t *testing.T) {
	// A replayer duplicates closures; the receiver must deliver each
	// message exactly once (the duplicate fails freshness).
	r := newRig(t, 0)
	rel := NewReliable(r.dgA)
	var got [][]byte
	pump := pumpInto(t, r.dgB, &got)
	r.net.SetInterposer(&netsim.Replayer{Kind: netsim.KindClosure})
	for i := 0; i < 3; i++ {
		if err := rel.SendReliably([]byte{byte(i + 1)}, pump); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	if len(got) != 3 {
		t.Fatalf("delivered %d messages, want 3 (no duplicates)", len(got))
	}
	for i, p := range got {
		if p[0] != byte(i+1) {
			t.Fatalf("message %d corrupted or re-ordered", i)
		}
	}
}

// interposerFunc adapts a function to netsim.Interposer.
type interposerFunc func(netsim.Message) []netsim.Message

func (f interposerFunc) Intercept(m netsim.Message) []netsim.Message { return f(m) }
