package engine

import "testing"

func TestCacheHitMiss(t *testing.T) {
	c := newNodeCache(100)
	k := nodeKey{region: 0, level: 1, index: 2}
	if c.touch(k, 40) {
		t.Fatal("first touch should miss")
	}
	if !c.touch(k, 40) {
		t.Fatal("second touch should hit")
	}
	if c.len() != 1 || c.usedBytes() != 40 {
		t.Fatalf("len=%d used=%d", c.len(), c.usedBytes())
	}
}

func TestCacheEvictsLRU(t *testing.T) {
	c := newNodeCache(100)
	a := nodeKey{index: 1}
	b := nodeKey{index: 2}
	d := nodeKey{index: 3}
	c.touch(a, 40)
	c.touch(b, 40)
	c.touch(a, 40) // a is now MRU
	c.touch(d, 40) // evicts b (LRU)
	if !c.touch(a, 40) {
		t.Fatal("a should still be resident")
	}
	if c.touch(b, 40) {
		t.Fatal("b should have been evicted")
	}
	if c.usedBytes() > 100 {
		t.Fatalf("cache over capacity: %d", c.usedBytes())
	}
}

func TestCacheZeroCapacityNeverHits(t *testing.T) {
	c := newNodeCache(0)
	k := nodeKey{index: 1}
	if c.touch(k, 8) || c.touch(k, 8) {
		t.Fatal("zero-capacity cache must never hit")
	}
}

func TestCacheOversizedNodeUncacheable(t *testing.T) {
	c := newNodeCache(10)
	k := nodeKey{index: 1}
	if c.touch(k, 100) || c.touch(k, 100) {
		t.Fatal("oversized node must not be cached")
	}
	if c.len() != 0 {
		t.Fatal("oversized node left residue")
	}
}

func TestCacheInvalidateRegion(t *testing.T) {
	c := newNodeCache(1000)
	c.touch(nodeKey{region: 0, index: 1}, 10)
	c.touch(nodeKey{region: 1, index: 1}, 10)
	c.touch(nodeKey{region: 0, index: 2}, 10)
	c.invalidateRegion(0)
	if c.touch(nodeKey{region: 0, index: 1}, 10) {
		t.Fatal("region-0 node survived invalidation")
	}
	// The touch above re-inserted it; region 1 must still be resident.
	if !c.touch(nodeKey{region: 1, index: 1}, 10) {
		t.Fatal("region-1 node lost by region-0 invalidation")
	}
}

func TestCacheAccountsBytesAcrossEvictions(t *testing.T) {
	c := newNodeCache(64)
	for i := 0; i < 100; i++ {
		c.touch(nodeKey{index: i}, 16)
		if c.usedBytes() > 64 {
			t.Fatalf("over capacity at %d: %d bytes", i, c.usedBytes())
		}
	}
	if c.len() != 4 {
		t.Fatalf("len = %d, want 4", c.len())
	}
}
