package eventkind

import (
	"mmt/internal/sim"
	"mmt/internal/trace"
)

// Test files are out of scope: a table-driven ledger test may loop over
// kinds, and the analyzer must stay silent here.
func testOnlyDynamicKind(p *trace.Probe, now sim.Time, kinds []trace.EventKind) {
	for _, k := range kinds {
		p.Event(k, now, 0, "table-driven")
	}
}
