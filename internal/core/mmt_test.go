package core

import (
	"bytes"
	"errors"
	"testing"

	"mmt/internal/crypt"
	"mmt/internal/engine"
	"mmt/internal/forest"
	"mmt/internal/mem"
	"mmt/internal/sim"
	"mmt/internal/tree"
)

var testGeo = tree.Geometry{Arities: []int{2, 3, 4}} // 24 lines, 1536 B

func newTestNode(t testing.TB, id int) *Node {
	t.Helper()
	m := mem.New(mem.Config{
		Size:          4 * testGeo.DataSize(),
		RegionSize:    testGeo.DataSize(),
		MetaPerRegion: testGeo.MetaSize(),
	})
	ctl, err := engine.New(m, testGeo, nil, sim.Gem5Profile())
	if err != nil {
		t.Fatal(err)
	}
	return NewNode(forest.NodeID(id), ctl)
}

var connKey = crypt.KeyFromBytes([]byte("conn-key"))

// pair builds a sender/receiver pair with matching connection state, a
// valid MMT on the sender (region 0) holding payload, and a waiting buffer
// on the receiver (region 0).
func pair(t *testing.T, payload []byte) (snd, rcv *Node, sm, rm *MMT, sconn, rconn *Conn) {
	t.Helper()
	snd = newTestNode(t, 1)
	rcv = newTestNode(t, 2)
	sconn = NewConn(connKey, 100)
	rconn = NewConn(connKey, 100)
	var err error
	sm, err = snd.Acquire(0, connKey, sconn.NextCounter())
	if err != nil {
		t.Fatal(err)
	}
	if err := sm.WriteBytes(0, payload); err != nil {
		t.Fatal(err)
	}
	rm, err = rcv.Expect(0, rconn)
	if err != nil {
		t.Fatal(err)
	}
	return snd, rcv, sm, rm, sconn, rconn
}

func TestStateStrings(t *testing.T) {
	want := map[State]string{
		StateInvalid: "invalid", StateValid: "valid",
		StateSending: "sending", StateWaiting: "waiting",
	}
	for s, w := range want {
		if s.String() != w {
			t.Errorf("State %d = %q, want %q", s, s.String(), w)
		}
	}
	if State(99).String() == "" {
		t.Error("unknown state should still print")
	}
	if OwnershipTransfer.String() != "ownership-transfer" || OwnershipCopy.String() != "ownership-copy" {
		t.Error("TransferMode strings wrong")
	}
	if TransferMode(0).String() == "" {
		t.Error("unknown mode should still print")
	}
}

func TestAcquireWriteRead(t *testing.T) {
	n := newTestNode(t, 1)
	m, err := n.Acquire(0, connKey, 5)
	if err != nil {
		t.Fatal(err)
	}
	if m.State() != StateValid {
		t.Fatalf("state = %v", m.State())
	}
	if m.Counter() != 5 {
		t.Fatalf("initial counter = %d, want 5", m.Counter())
	}
	msg := []byte("hello distributed secure memory")
	if err := m.WriteBytes(0, msg); err != nil {
		t.Fatal(err)
	}
	got, err := m.ReadBytes(0, len(msg))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatal("round trip failed")
	}
	if _, ok := n.Get(0); !ok {
		t.Fatal("Get(0) lost the MMT")
	}
	if _, ok := n.Get(1); ok {
		t.Fatal("Get(1) found a ghost MMT")
	}
}

func TestAcquireBusyRegion(t *testing.T) {
	n := newTestNode(t, 1)
	if _, err := n.Acquire(0, connKey, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Acquire(0, connKey, 1); !errors.Is(err, ErrState) {
		t.Fatalf("double acquire: %v", err)
	}
	if _, err := n.Expect(0, NewConn(connKey, 0)); !errors.Is(err, ErrState) {
		t.Fatalf("expect on busy region: %v", err)
	}
}

func TestReclaim(t *testing.T) {
	n := newTestNode(t, 1)
	m, err := n.Acquire(0, connKey, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Reclaim(); err != nil {
		t.Fatal(err)
	}
	if m.State() != StateInvalid {
		t.Fatal("state not invalid after Reclaim")
	}
	if _, err := m.Read(0); !errors.Is(err, ErrState) {
		t.Fatalf("read after reclaim: %v", err)
	}
	// Region is free again.
	if _, err := n.Acquire(0, connKey, 1); err != nil {
		t.Fatalf("re-acquire after reclaim: %v", err)
	}
}

func TestDelegationOwnershipTransfer(t *testing.T) {
	payload := []byte("intermediate map-reduce result, definitely secret")
	_, _, sm, rm, sconn, rconn := pair(t, payload)

	cl, err := sm.BeginSend(sconn, OwnershipTransfer)
	if err != nil {
		t.Fatal(err)
	}
	if sm.State() != StateSending {
		t.Fatalf("sender state = %v", sm.State())
	}
	// Sending region is read-only.
	if err := sm.Write(0, make([]byte, engine.LineSize)); err == nil {
		t.Fatal("write allowed while sending")
	}
	// Sender can still read (read-only, not disabled).
	if _, err := sm.Read(0); err != nil {
		t.Fatalf("read while sending: %v", err)
	}

	wire := cl.Encode()
	if err := rm.Accept(rconn, wire); err != nil {
		t.Fatal(err)
	}
	if rm.State() != StateValid || rm.ReadOnly() {
		t.Fatalf("receiver state=%v readOnly=%v", rm.State(), rm.ReadOnly())
	}
	got, err := rm.ReadBytes(0, len(payload))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("payload corrupted in delegation")
	}
	// Receiver owns it: writes work.
	if err := rm.Write(0, bytes.Repeat([]byte{1}, engine.LineSize)); err != nil {
		t.Fatalf("receiver write: %v", err)
	}

	// Ack: sender invalidates.
	if err := sm.CompleteSend(true); err != nil {
		t.Fatal(err)
	}
	if sm.State() != StateInvalid {
		t.Fatalf("sender state after ack = %v", sm.State())
	}
	if _, err := sm.Read(0); !errors.Is(err, ErrState) {
		t.Fatal("sender still readable after ownership transfer")
	}
}

func TestDelegationOwnershipCopy(t *testing.T) {
	payload := []byte("read-only snapshot")
	_, _, sm, rm, sconn, rconn := pair(t, payload)

	cl, err := sm.BeginSend(sconn, OwnershipCopy)
	if err != nil {
		t.Fatal(err)
	}
	if err := rm.Accept(rconn, cl.Encode()); err != nil {
		t.Fatal(err)
	}
	if !rm.ReadOnly() {
		t.Fatal("copy-mode receiver not read-only")
	}
	if err := rm.Write(0, make([]byte, engine.LineSize)); !errors.Is(err, engine.ErrReadOnly) {
		t.Fatalf("receiver write on copy: %v, want ErrReadOnly", err)
	}
	got, err := rm.ReadBytes(0, len(payload))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("copy payload corrupted")
	}

	// Sender keeps ownership and becomes writable again after the ack.
	if err := sm.CompleteSend(true); err != nil {
		t.Fatal(err)
	}
	if sm.State() != StateValid {
		t.Fatalf("sender state after copy ack = %v", sm.State())
	}
	if err := sm.Write(0, bytes.Repeat([]byte{2}, engine.LineSize)); err != nil {
		t.Fatalf("sender write after copy: %v", err)
	}
}

func TestDelegationFailedAckRestoresSender(t *testing.T) {
	_, _, sm, _, sconn, _ := pair(t, []byte("x"))
	if _, err := sm.BeginSend(sconn, OwnershipTransfer); err != nil {
		t.Fatal(err)
	}
	if err := sm.CompleteSend(false); err != nil {
		t.Fatal(err)
	}
	if sm.State() != StateValid {
		t.Fatalf("sender state after nack = %v", sm.State())
	}
	if err := sm.Write(0, make([]byte, engine.LineSize)); err != nil {
		t.Fatalf("sender write after nack: %v", err)
	}
}

func TestReplayAttackRejected(t *testing.T) {
	// Attacker records a legitimate closure and re-injects it after it was
	// accepted once.
	snd, rcv, sm, rm, sconn, rconn := pair(t, []byte("fresh data"))
	cl, err := sm.BeginSend(sconn, OwnershipCopy)
	if err != nil {
		t.Fatal(err)
	}
	wire := cl.Encode()
	if err := rm.Accept(rconn, wire); err != nil {
		t.Fatal(err)
	}
	if err := sm.CompleteSend(true); err != nil {
		t.Fatal(err)
	}
	_ = snd

	// Receiver sets up a new waiting buffer; attacker replays the stale wire.
	rm2, err := rcv.Expect(1, rconn)
	if err != nil {
		t.Fatal(err)
	}
	if err := rm2.Accept(rconn, wire); !errors.Is(err, ErrReplay) {
		t.Fatalf("replayed closure: %v, want ErrReplay", err)
	}
	if rm2.State() != StateWaiting {
		t.Fatalf("receiver state after rejected replay = %v", rm2.State())
	}
}

func TestReorderAttackRejected(t *testing.T) {
	// Two closures sent in order A, B; attacker delivers B then A.
	snd, rcv, smA, rm1, sconn, rconn := pair(t, []byte("first"))
	wireA := mustSend(t, smA, sconn, OwnershipTransfer)

	smB, err := snd.Acquire(1, connKey, sconn.NextCounter())
	if err != nil {
		t.Fatal(err)
	}
	if err := smB.WriteBytes(0, []byte("second")); err != nil {
		t.Fatal(err)
	}
	wireB := mustSend(t, smB, sconn, OwnershipTransfer)

	// Deliver B first: accepted (it is fresher).
	if err := rm1.Accept(rconn, wireB); err != nil {
		t.Fatalf("accept B: %v", err)
	}
	// Now deliver A: must be rejected — both its counter and address are
	// older than B's.
	rm2, err := rcv.Expect(1, rconn)
	if err != nil {
		t.Fatal(err)
	}
	err = rm2.Accept(rconn, wireA)
	if !errors.Is(err, ErrReplay) && !errors.Is(err, ErrReorder) {
		t.Fatalf("re-ordered closure: %v, want replay/reorder rejection", err)
	}
}

func mustSend(t *testing.T, m *MMT, conn *Conn, mode TransferMode) []byte {
	t.Helper()
	cl, err := m.BeginSend(conn, mode)
	if err != nil {
		t.Fatal(err)
	}
	return cl.Encode()
}

func TestTamperedRootRejected(t *testing.T) {
	_, _, sm, rm, sconn, rconn := pair(t, []byte("secret"))
	cl, err := sm.BeginSend(sconn, OwnershipTransfer)
	if err != nil {
		t.Fatal(err)
	}
	wire := cl.Encode()
	// Flip a bit inside the sealed root (after the 18-byte header + 4-byte
	// length prefix).
	wire[headerSize+4+2] ^= 0x40
	if err := rm.Accept(rconn, wire); !errors.Is(err, ErrAuth) {
		t.Fatalf("tampered sealed root: %v, want ErrAuth", err)
	}
}

func TestTamperedHeaderRejected(t *testing.T) {
	// The header is the seal's AAD: changing the cleartext counter hint
	// must break authentication, not redirect the freshness check.
	_, _, sm, rm, sconn, rconn := pair(t, []byte("secret"))
	cl, err := sm.BeginSend(sconn, OwnershipTransfer)
	if err != nil {
		t.Fatal(err)
	}
	cl.CounterHint += 1000 // attacker inflates the counter hint
	if err := rm.Accept(rconn, cl.Encode()); !errors.Is(err, ErrAuth) {
		t.Fatalf("inflated counter hint: %v, want ErrAuth", err)
	}
}

func TestTamperedDataRejected(t *testing.T) {
	_, _, sm, rm, sconn, rconn := pair(t, []byte("secret"))
	cl, err := sm.BeginSend(sconn, OwnershipTransfer)
	if err != nil {
		t.Fatal(err)
	}
	wire := cl.Encode()
	wire[len(wire)-1] ^= 1 // last data byte
	if err := rm.Accept(rconn, wire); !errors.Is(err, engine.ErrIntegrity) {
		t.Fatalf("tampered data: %v, want integrity failure", err)
	}
}

func TestTamperedTreeNodesRejected(t *testing.T) {
	_, _, sm, rm, sconn, rconn := pair(t, []byte("secret"))
	cl, err := sm.BeginSend(sconn, OwnershipTransfer)
	if err != nil {
		t.Fatal(err)
	}
	cl.TreeNodes[8]++ // bump a counter in the clear tree nodes
	if err := rm.Accept(rconn, cl.Encode()); !errors.Is(err, engine.ErrIntegrity) {
		t.Fatalf("tampered tree nodes: %v, want integrity failure", err)
	}
}

func TestWrongConnectionKeyRejected(t *testing.T) {
	_, rcv, sm, _, sconn, _ := pair(t, []byte("secret"))
	cl, err := sm.BeginSend(sconn, OwnershipTransfer)
	if err != nil {
		t.Fatal(err)
	}
	evil := NewConn(crypt.KeyFromBytes([]byte("evil")), 0)
	rm, err := rcv.Expect(1, evil)
	if err != nil {
		t.Fatal(err)
	}
	if err := rm.Accept(evil, cl.Encode()); !errors.Is(err, ErrAuth) {
		t.Fatalf("wrong key accept: %v, want ErrAuth", err)
	}
}

func TestBeginSendKeyMismatch(t *testing.T) {
	n := newTestNode(t, 1)
	m, err := n.Acquire(0, crypt.KeyFromBytes([]byte("buffer-key")), 1)
	if err != nil {
		t.Fatal(err)
	}
	conn := NewConn(connKey, 0)
	if _, err := m.BeginSend(conn, OwnershipTransfer); err == nil {
		t.Fatal("key mismatch between MMT and connection accepted")
	}
}

func TestRepeatedDelegationsSameConnection(t *testing.T) {
	// Stream of 5 messages over one connection — counters and addresses
	// must keep increasing and every closure must be accepted exactly once.
	snd := newTestNode(t, 1)
	rcv := newTestNode(t, 2)
	sconn, rconn := NewConn(connKey, 0), NewConn(connKey, 0)
	for i := 0; i < 5; i++ {
		payload := bytes.Repeat([]byte{byte(i + 1)}, 100)
		sm, err := snd.Acquire(i%3, connKey, sconn.NextCounter())
		if err != nil {
			t.Fatalf("acquire %d: %v", i, err)
		}
		if err := sm.WriteBytes(0, payload); err != nil {
			t.Fatal(err)
		}
		rm, err := rcv.Expect(i%3, rconn)
		if err != nil {
			t.Fatalf("expect %d: %v", i, err)
		}
		cl, err := sm.BeginSend(sconn, OwnershipTransfer)
		if err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
		if err := rm.Accept(rconn, cl.Encode()); err != nil {
			t.Fatalf("accept %d: %v", i, err)
		}
		got, err := rm.ReadBytes(0, len(payload))
		if err != nil || !bytes.Equal(got, payload) {
			t.Fatalf("payload %d corrupted: %v", i, err)
		}
		if err := sm.CompleteSend(true); err != nil {
			t.Fatal(err)
		}
		if err := rm.Reclaim(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestCopyOfCopyForbidden(t *testing.T) {
	// A read-only copy cannot be ownership-transferred onward ("there is
	// only one writable copy of secure memory in the whole system").
	_, rcv, sm, rm, sconn, rconn := pair(t, []byte("snapshot"))
	cl, err := sm.BeginSend(sconn, OwnershipCopy)
	if err != nil {
		t.Fatal(err)
	}
	if err := rm.Accept(rconn, cl.Encode()); err != nil {
		t.Fatal(err)
	}
	_ = rcv
	fwd := NewConn(connKey, rconn.lastCounter)
	if _, err := rm.BeginSend(fwd, OwnershipTransfer); !errors.Is(err, ErrState) {
		t.Fatalf("ownership transfer of read-only copy: %v, want ErrState", err)
	}
	// Forwarding a copy of the copy is allowed.
	if _, err := rm.BeginSend(fwd, OwnershipCopy); err != nil {
		t.Fatalf("copy of copy: %v", err)
	}
}

func TestAcceptInWrongState(t *testing.T) {
	_, _, sm, rm, sconn, rconn := pair(t, []byte("x"))
	cl, err := sm.BeginSend(sconn, OwnershipTransfer)
	if err != nil {
		t.Fatal(err)
	}
	wire := cl.Encode()
	if err := rm.Accept(rconn, wire); err != nil {
		t.Fatal(err)
	}
	// Second accept on the same (now valid) MMT.
	if err := rm.Accept(rconn, wire); !errors.Is(err, ErrState) {
		t.Fatalf("accept in valid state: %v, want ErrState", err)
	}
}
