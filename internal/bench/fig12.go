package bench

import (
	"fmt"

	"mmt/internal/mapreduce"
	"mmt/internal/par"
	"mmt/internal/sim"
	"mmt/internal/tree"
	"mmt/internal/workload"
)

// Fig12Row is one point of Figure 12: end-to-end WordCount time when the
// shuffle runs over MMT closure delegation versus the software secure
// channel on the Gem5 testbed, by transferred (shuffle) size.
type Fig12Row struct {
	InputBytes   int
	ShuffleBytes int
	Secure       sim.Time
	MMT          sim.Time
	Speedup      float64
}

// Fig12 runs WordCount at increasing input sizes with a single
// mapper/reducer pair (the paper's per-link view) on the Gem5 profile with
// the default 2 MB MMT geometry. The paper's shape: up to ~10x when the
// transferred size exceeds one closure, crossover below 8K.
func Fig12() ([]Fig12Row, error) {
	geo := tree.ForLevels(3)
	sizes := []int{1 << 10, 4 << 10, 32 << 10, 256 << 10, 1 << 20, 4 << 20}
	// Every size point builds its own corpus, profile and cluster; the
	// points fan out across Workers() goroutines.
	return par.Map(Workers(), sizes, func(_ int, input int) (Fig12Row, error) {
		corpus := workload.Corpus(12, input)
		cfg := mapreduce.Config{
			Mappers: 1, Reducers: 1,
			Profile:  sim.Gem5Profile(),
			Geometry: geo,
			// WordCount expands text ~1.7x into key-value bytes; size the
			// pool for the expanded shuffle.
			PoolRegions:       2*input/geo.DataSize() + 4,
			MapCyclesPerByte:  8,
			ReduceCyclesPerKV: 40,
		}
		cfg.Mode = mapreduce.SecureChannel
		sec, err := mapreduce.Run(cfg, corpus, mapreduce.WordCountMapper, mapreduce.WordCountReducer)
		if err != nil {
			return Fig12Row{}, fmt.Errorf("fig12 secure %d: %w", input, err)
		}
		cfg.Mode = mapreduce.MMT
		mmt, err := mapreduce.Run(cfg, corpus, mapreduce.WordCountMapper, mapreduce.WordCountReducer)
		if err != nil {
			return Fig12Row{}, fmt.Errorf("fig12 mmt %d: %w", input, err)
		}
		return Fig12Row{
			InputBytes:   input,
			ShuffleBytes: mmt.ShuffleBytes,
			Secure:       sec.Elapsed,
			MMT:          mmt.Elapsed,
			Speedup:      float64(sec.Elapsed) / float64(mmt.Elapsed),
		}, nil
	})
}

// RenderFig12 prints the series.
func RenderFig12(rows []Fig12Row) string {
	header := []string{"Input", "Shuffle", "SecureChannel", "MMT", "Speedup"}
	var out [][]string
	for _, r := range rows {
		out = append(out, []string{
			fmtSize(r.InputBytes), fmtSize(r.ShuffleBytes),
			r.Secure.String(), r.MMT.String(),
			fmt.Sprintf("%.2fx", r.Speedup),
		})
	}
	return renderTable("Figure 12: WordCount end-to-end by transferred size (paper: up to 10x; secure channel wins <8K)", header, out)
}
