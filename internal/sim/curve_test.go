package sim

import (
	"math"
	"testing"
)

func TestCurveAnchorsExact(t *testing.T) {
	c := NewCurve(
		CurvePoint{Size: 1024, PerByte: 0.5},
		CurvePoint{Size: 1 << 20, PerByte: 2.0},
	)
	if got := c.PerByte(1024); got != 0.5 {
		t.Fatalf("PerByte(1024) = %v, want 0.5", got)
	}
	if got := c.PerByte(1 << 20); got != 2.0 {
		t.Fatalf("PerByte(1M) = %v, want 2.0", got)
	}
}

func TestCurveClampsOutsideRange(t *testing.T) {
	c := NewCurve(
		CurvePoint{Size: 1024, PerByte: 0.5},
		CurvePoint{Size: 1 << 20, PerByte: 2.0},
	)
	if got := c.PerByte(1); got != 0.5 {
		t.Fatalf("PerByte below range = %v, want clamp to 0.5", got)
	}
	if got := c.PerByte(1 << 30); got != 2.0 {
		t.Fatalf("PerByte above range = %v, want clamp to 2.0", got)
	}
}

func TestCurveLogMidpoint(t *testing.T) {
	c := NewCurve(
		CurvePoint{Size: 1 << 10, PerByte: 1.0},
		CurvePoint{Size: 1 << 20, PerByte: 3.0},
	)
	// 1<<15 is the log2 midpoint of 1<<10 and 1<<20.
	if got := c.PerByte(1 << 15); math.Abs(got-2.0) > 1e-9 {
		t.Fatalf("PerByte(log midpoint) = %v, want 2.0", got)
	}
}

func TestCurveMonotoneBetweenMonotonePoints(t *testing.T) {
	c := NewCurve(
		CurvePoint{Size: 2 << 10, PerByte: 0.32},
		CurvePoint{Size: 32 << 10, PerByte: 0.71},
		CurvePoint{Size: 2 << 20, PerByte: 1.02},
	)
	prev := -1.0
	for n := 1 << 10; n <= 4<<20; n *= 2 {
		got := c.PerByte(n)
		if got < prev {
			t.Fatalf("PerByte not monotone at %d: %v < %v", n, got, prev)
		}
		prev = got
	}
}

func TestCurveCost(t *testing.T) {
	c := NewCurve(CurvePoint{Size: 1, PerByte: 2.0})
	if got := c.Cost(100); got != 200 {
		t.Fatalf("Cost(100) = %v, want 200", got)
	}
	if got := c.Cost(0); got != 0 {
		t.Fatalf("Cost(0) = %v, want 0", got)
	}
	if got := c.Cost(-5); got != 0 {
		t.Fatalf("Cost(-5) = %v, want 0", got)
	}
}

func TestCurvePanicsOnBadInput(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("empty", func() { NewCurve() })
	mustPanic("zero size", func() { NewCurve(CurvePoint{Size: 0, PerByte: 1}) })
	mustPanic("duplicate", func() {
		NewCurve(CurvePoint{Size: 8, PerByte: 1}, CurvePoint{Size: 8, PerByte: 2})
	})
}

func TestCurveUnsortedInputIsSorted(t *testing.T) {
	c := NewCurve(
		CurvePoint{Size: 1 << 20, PerByte: 2.0},
		CurvePoint{Size: 1024, PerByte: 0.5},
	)
	if got := c.PerByte(512); got != 0.5 {
		t.Fatalf("unsorted curve: PerByte(512) = %v, want 0.5", got)
	}
}
