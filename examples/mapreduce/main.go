// Trusted MapReduce (§VI-C1): WordCount over a simulated cluster with the
// shuffle carried three ways — unprotected remote writes, a software
// AES-GCM secure channel, and MMT closure delegation — and the end-to-end
// times compared.
//
//	go run ./examples/mapreduce
package main

import (
	"fmt"
	"log"
	"sort"

	"mmt/internal/mapreduce"
	"mmt/internal/sim"
	"mmt/internal/tree"
	"mmt/internal/workload"
)

func main() {
	corpus := workload.Corpus(42, 1<<20)
	fmt.Printf("WordCount over a %d-byte corpus, 2 mappers + 2 reducers\n\n", len(corpus))

	var times = map[mapreduce.Mode]float64{}
	var output map[string]int64
	for _, mode := range []mapreduce.Mode{mapreduce.Baseline, mapreduce.SecureChannel, mapreduce.MMT} {
		cfg := mapreduce.Config{
			Mappers: 2, Reducers: 2,
			Mode:              mode,
			Profile:           sim.Gem5Profile(),
			Geometry:          tree.ForLevels(3),
			PoolRegions:       4,
			MapCyclesPerByte:  10,
			ReduceCyclesPerKV: 50,
		}
		res, err := mapreduce.Run(cfg, corpus, mapreduce.WordCountMapper, mapreduce.WordCountReducer)
		if err != nil {
			log.Fatalf("%v: %v", mode, err)
		}
		times[mode] = float64(res.Elapsed)
		output = res.Output
		fmt.Printf("%-15s elapsed %-12v shuffle %8d bytes, comm %.0fk cycles\n",
			mode, res.Elapsed, res.ShuffleBytes, float64(res.CommCycles)/1e3)
	}

	fmt.Printf("\nsecure channel costs %.1fx the baseline; MMT costs %.2fx\n",
		times[mapreduce.SecureChannel]/times[mapreduce.Baseline],
		times[mapreduce.MMT]/times[mapreduce.Baseline])
	fmt.Printf("MMT is %.1fx faster than the secure channel end to end\n\n",
		times[mapreduce.SecureChannel]/times[mapreduce.MMT])

	// Show the top words (identical across modes).
	type kv struct {
		w string
		n int64
	}
	var top []kv
	for w, n := range output {
		top = append(top, kv{w, n})
	}
	sort.Slice(top, func(i, j int) bool { return top[i].n > top[j].n })
	fmt.Println("top words:")
	for _, e := range top[:5] {
		fmt.Printf("  %-8s %d\n", e.w, e.n)
	}
}
