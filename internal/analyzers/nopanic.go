package analyzers

import (
	"go/ast"
	"go/types"
)

// NoPanic forbids panic in library packages under internal/. A panicking
// constructor or verifier takes down the whole simulated cluster instead
// of failing one operation, and it hides error paths the experiments
// need to exercise (a rejected closure must surface as an error the
// protocol can nack, not as a crash).
//
// Panics that guard genuinely impossible states (bounds guards
// equivalent to built-in slice indexing, crypto constructors with
// fixed-size keys) are suppressed case by case with a justifying
// //mmt:allow nopanic comment.
var NoPanic = &Analyzer{
	Name: "nopanic",
	ID:   "MMT004",
	Doc: "no panic() in library packages under internal/; constructors and " +
		"verifiers must return errors (suppress impossible-state guards with " +
		"//mmt:allow nopanic: <reason>)",
	Run: runNoPanic,
}

func runNoPanic(pass *Pass) error {
	if !inScope(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			id, ok := ast.Unparen(call.Fun).(*ast.Ident)
			if !ok {
				return true
			}
			if b, ok := pass.TypesInfo.Uses[id].(*types.Builtin); ok && b.Name() == "panic" {
				pass.Reportf(call.Pos(), "panic in library package %s; return an error instead", pass.Pkg.Path())
			}
			return true
		})
	}
	return nil
}
