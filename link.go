package mmt

import (
	"errors"
	"fmt"

	"mmt/internal/engine"
	"mmt/internal/monitor"
)

// Link is an attested, keyed connection between two enclaves on different
// machines — the result of the Figure 6 connection setup. Buffers created
// on a link can be delegated across it.
type Link struct {
	cluster *Cluster
	id      string
	a, b    *Enclave
}

// Connect establishes a link between two enclaves: the monitors exchange
// attestation reports over the untrusted network, agree on an MMT key, and
// arm receive buffers on both sides.
func (c *Cluster) Connect(a, b *Enclave) (*Link, error) {
	if a.machine == b.machine {
		return nil, fmt.Errorf("mmt: both enclaves are on %q; links are cross-machine", a.machine.name)
	}
	id, err := monitor.Connect(a.machine.mon, a.id, b.machine.mon, b.id, 0)
	if err != nil {
		return nil, err
	}
	l := &Link{cluster: c, id: id, a: a, b: b}
	c.registerLink(l)
	return l, nil
}

// registerLink records a link for deterministic snapshot enumeration and
// Cluster.Link lookup. Shared by Connect and snapshot restore.
func (c *Cluster) registerLink(l *Link) {
	c.links[l.id] = l
	c.linkOrder = append(c.linkOrder, l.id)
	c.markStructural()
}

// Link looks up a link by its connection id (as reported by Link.ID and
// listed in a snapshot Manifest).
func (c *Cluster) Link(id string) (*Link, bool) {
	l, ok := c.links[id]
	return l, ok
}

// Links lists the cluster's links in the order they were connected.
func (c *Cluster) Links() []*Link {
	out := make([]*Link, 0, len(c.linkOrder))
	for _, id := range c.linkOrder {
		out = append(out, c.links[id])
	}
	return out
}

// ID reports the connection id (same on both monitors).
func (l *Link) ID() string { return l.id }

// Sender and Receiver report the link's enclaves in Connect order. The
// link itself is symmetric — delegation may flow either way — the names
// follow the common producer/consumer setup of the package tour.
func (l *Link) Sender() *Enclave { return l.a }

// Receiver reports the second enclave passed to Connect.
func (l *Link) Receiver() *Enclave { return l.b }

// Buffer is a secure memory buffer: one PMO with a live MMT, readable and
// writable at byte granularity through the protection engine.
type Buffer struct {
	machine *Machine
	owner   monitor.EnclaveID
	cap     monitor.CapID
}

// Link errors.
var (
	ErrNotOnLink = errors.New("mmt: enclave is not an endpoint of this link")
	ErrNoPending = errors.New("mmt: no delegation pending on this link")
)

// endpointOf maps an enclave to its link connection record.
func (l *Link) endpointOf(e *Enclave) (*monitor.Connection, error) {
	if e != l.a && e != l.b {
		return nil, ErrNotOnLink
	}
	conn, ok := e.machine.mon.Connection(l.id)
	if !ok {
		return nil, fmt.Errorf("mmt: link %s missing on %s", l.id, e.machine.name)
	}
	return conn, nil
}

// NewBuffer allocates a secure buffer owned by e, keyed to this link so it
// can later be delegated across it. The buffer covers one MMT granule
// (Cluster.Geometry().DataSize() bytes).
func (l *Link) NewBuffer(e *Enclave) (*Buffer, error) {
	conn, err := l.endpointOf(e)
	if err != nil {
		return nil, err
	}
	p, err := e.machine.mon.AllocPMO(e.id)
	if err != nil {
		return nil, err
	}
	if _, err := e.machine.mon.AcquireMMT(e.id, p.Cap, conn.Conn().Key(), conn.Conn().NextCounter()); err != nil {
		return nil, err
	}
	l.cluster.markStructural()
	return &Buffer{machine: e.machine, owner: e.id, cap: p.Cap}, nil
}

// Cap reports the buffer's monitor capability id (stable across snapshot
// save/load; Enclave.Buffer resolves it back to a Buffer).
func (b *Buffer) Cap() uint64 { return uint64(b.cap) }

// Buffer rebuilds a Buffer handle from a capability id owned by this
// enclave — the way to reclaim buffer handles after mmt.Load or mmt.Open,
// which restore monitor state but not host-side wrapper objects.
func (e *Enclave) Buffer(cap uint64) (*Buffer, error) {
	if _, err := e.machine.mon.PMOOf(e.id, monitor.CapID(cap)); err != nil {
		return nil, err
	}
	return &Buffer{machine: e.machine, owner: e.id, cap: monitor.CapID(cap)}, nil
}

// Buffers lists the capability ids of every buffer the enclave currently
// owns, in ascending id order.
func (e *Enclave) Buffers() []uint64 {
	caps := e.machine.mon.CapsOf(e.id)
	out := make([]uint64, len(caps))
	for i, c := range caps {
		out[i] = uint64(c)
	}
	return out
}

// Size reports the buffer's capacity in bytes.
func (b *Buffer) Size() int {
	return b.machine.mon.Node().Controller().Geometry().DataSize()
}

// mmtOf resolves the buffer's live MMT.
func (b *Buffer) mmtOf() (*monitor.PMO, error) {
	return b.machine.mon.PMOOf(b.owner, b.cap)
}

// Write stores p at byte offset off, read-modify-writing partial lines
// through the protection engine.
func (b *Buffer) Write(off int, p []byte) error {
	pmo, err := b.mmtOf()
	if err != nil {
		return err
	}
	m := pmo.MMT()
	if m == nil {
		return fmt.Errorf("mmt: buffer has no live MMT")
	}
	if off < 0 || off+len(p) > b.Size() {
		return fmt.Errorf("mmt: write [%d,+%d) outside buffer of %d bytes", off, len(p), b.Size())
	}
	for len(p) > 0 {
		line := off / engine.LineSize
		lo := off % engine.LineSize
		take := engine.LineSize - lo
		if take > len(p) {
			take = len(p)
		}
		if lo == 0 && take == engine.LineSize {
			if err := m.Write(line, p[:take]); err != nil {
				return err
			}
		} else {
			cur, err := m.Read(line)
			if err != nil {
				return err
			}
			copy(cur[lo:], p[:take])
			if err := m.Write(line, cur); err != nil {
				return err
			}
		}
		off += take
		p = p[take:]
	}
	return nil
}

// Read loads n bytes at byte offset off.
func (b *Buffer) Read(off, n int) ([]byte, error) {
	pmo, err := b.mmtOf()
	if err != nil {
		return nil, err
	}
	m := pmo.MMT()
	if m == nil {
		return nil, fmt.Errorf("mmt: buffer has no live MMT")
	}
	if off < 0 || n < 0 || off+n > b.Size() {
		return nil, fmt.Errorf("mmt: read [%d,+%d) outside buffer of %d bytes", off, n, b.Size())
	}
	out := make([]byte, 0, n)
	for n > 0 {
		line := off / engine.LineSize
		lo := off % engine.LineSize
		data, err := m.Read(line)
		if err != nil {
			return nil, err
		}
		take := engine.LineSize - lo
		if take > n {
			take = n
		}
		out = append(out, data[lo:lo+take]...)
		off += take
		n -= take
	}
	return out, nil
}

// ReadOnly reports whether the buffer arrived as an ownership copy.
func (b *Buffer) ReadOnly() bool {
	pmo, err := b.mmtOf()
	if err != nil || pmo.MMT() == nil {
		return false
	}
	return pmo.MMT().ReadOnly()
}

// Free releases the buffer's region back to its machine's pool.
func (b *Buffer) Free() error {
	if err := b.machine.mon.FreePMO(b.owner, b.cap); err != nil {
		return err
	}
	b.machine.cluster.markStructural()
	return nil
}

// Delegate sends the buffer's MMT closure to the link's other endpoint and
// pumps both monitors until the transfer completes (accept + ack). With
// OwnershipTransfer the local buffer is consumed; with OwnershipCopy it
// remains valid and writable after the ack. The received buffer waits on
// the peer until Receive collects it.
func (l *Link) Delegate(b *Buffer, mode TransferMode) error {
	var from, to *Enclave
	switch b.machine {
	case l.a.machine:
		from, to = l.a, l.b
	case l.b.machine:
		from, to = l.b, l.a
	default:
		return ErrNotOnLink
	}
	if b.owner != from.id {
		return ErrNotOnLink
	}
	if err := from.machine.mon.SendPMO(from.id, b.cap, l.id, mode); err != nil {
		return err
	}
	// Receiver verifies and acks; sender completes.
	l.cluster.markStructural()
	if err := to.machine.mon.PumpAll(); err != nil {
		// The sender still needs the nack to recover its buffer.
		if perr := from.machine.mon.PumpAll(); perr != nil {
			return errors.Join(err, perr)
		}
		return err
	}
	return from.machine.mon.PumpAll()
}

// Receive collects the oldest buffer delegated to e over this link.
func (l *Link) Receive(e *Enclave) (*Buffer, error) {
	if _, err := l.endpointOf(e); err != nil {
		return nil, err
	}
	p, ok := e.machine.mon.TakeReceived(l.id)
	if !ok {
		return nil, ErrNoPending
	}
	l.cluster.markStructural()
	return &Buffer{machine: e.machine, owner: p.Owner, cap: p.Cap}, nil
}
