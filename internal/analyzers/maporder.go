package analyzers

import (
	"go/ast"
	"go/types"
)

// MapOrder flags `range` over a map when the loop body has
// order-dependent effects. Go randomizes map iteration order, so a body
// that hashes, serializes, sends, charges simulated cycles, or appends
// to long-lived state produces run-to-run different results — the exact
// failure mode the deterministic-simulation contract forbids.
//
// The one sanctioned shape is collect-then-sort: a body that only
// appends keys/values to a function-local slice (later sorted), only
// accumulates into function-local integer counters, or only deletes from
// a map, is order-insensitive and passes. Everything else must either
// iterate a sorted key slice or carry a //mmt:allow maporder comment
// explaining why order cannot matter.
var MapOrder = &Analyzer{
	Name: "maporder",
	ID:   "MMT005",
	Doc: "flag range over a map whose body has order-dependent effects " +
		"(hashing, serialization, sends, cycle charging, appends to shared state); " +
		"iterate sorted keys instead",
	Run: runMapOrder,
}

func runMapOrder(pass *Pass) error {
	if !inScope(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			rng, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := pass.TypesInfo.TypeOf(rng.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			if bodyIsOrderInsensitive(pass, rng.Body.List) {
				return true
			}
			pass.Reportf(rng.Pos(), "map iteration order is randomized and this loop body has "+
				"order-dependent effects; iterate a sorted copy of the keys")
			return true
		})
	}
	return nil
}

// bodyIsOrderInsensitive reports whether every statement is one of the
// commutative shapes (local-slice append, local integer accumulation,
// map delete, continue, or an if around only such statements).
func bodyIsOrderInsensitive(pass *Pass, stmts []ast.Stmt) bool {
	for _, st := range stmts {
		if !stmtIsOrderInsensitive(pass, st) {
			return false
		}
	}
	return true
}

func stmtIsOrderInsensitive(pass *Pass, st ast.Stmt) bool {
	switch s := st.(type) {
	case *ast.AssignStmt:
		return assignIsOrderInsensitive(pass, s)
	case *ast.IncDecStmt:
		return isLocalInteger(pass, s.X)
	case *ast.ExprStmt:
		// delete(m, k) is commutative across iterations.
		if call, ok := s.X.(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
				if b, ok := pass.TypesInfo.Uses[id].(*types.Builtin); ok && b.Name() == "delete" {
					return true
				}
			}
		}
		return false
	case *ast.BranchStmt:
		return s.Label == nil
	case *ast.IfStmt:
		if s.Init != nil || !bodyIsOrderInsensitive(pass, s.Body.List) {
			return false
		}
		if s.Else == nil {
			return true
		}
		if blk, ok := s.Else.(*ast.BlockStmt); ok {
			return bodyIsOrderInsensitive(pass, blk.List)
		}
		return stmtIsOrderInsensitive(pass, s.Else)
	default:
		return false
	}
}

func assignIsOrderInsensitive(pass *Pass, s *ast.AssignStmt) bool {
	if len(s.Lhs) != 1 || len(s.Rhs) != 1 {
		return false
	}
	switch s.Tok.String() {
	case "=", ":=":
		// x = append(x, ...) with x function-local: the collect half of
		// collect-then-sort. Element order is unspecified until sorted.
		call, ok := ast.Unparen(s.Rhs[0]).(*ast.CallExpr)
		if !ok {
			return false
		}
		id, ok := ast.Unparen(call.Fun).(*ast.Ident)
		if !ok {
			return false
		}
		if b, ok := pass.TypesInfo.Uses[id].(*types.Builtin); !ok || b.Name() != "append" {
			return false
		}
		lhs, ok := ast.Unparen(s.Lhs[0]).(*ast.Ident)
		if !ok || len(call.Args) == 0 {
			return false
		}
		arg0, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
		if !ok || arg0.Name != lhs.Name {
			return false
		}
		return isLocalVar(pass, lhs)
	case "+=", "|=", "&=", "^=":
		// Commutative integer accumulation into a local.
		return isLocalInteger(pass, s.Lhs[0])
	default:
		return false
	}
}

// isLocalVar reports whether e is an identifier for a function-local
// variable (not a package global, not a field, not captured state).
func isLocalVar(pass *Pass, e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return false
	}
	v, ok := pass.TypesInfo.ObjectOf(id).(*types.Var)
	if !ok || v.IsField() {
		return false
	}
	return v.Parent() != nil && v.Parent() != pass.Pkg.Scope() && v.Parent() != types.Universe
}

// isLocalInteger reports whether e is a function-local variable of
// integer kind (float accumulation is order-sensitive through rounding).
func isLocalInteger(pass *Pass, e ast.Expr) bool {
	if !isLocalVar(pass, e) {
		return false
	}
	t, ok := pass.TypesInfo.TypeOf(e).Underlying().(*types.Basic)
	return ok && t.Info()&types.IsInteger != 0
}
