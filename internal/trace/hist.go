package trace

import (
	"math/bits"

	"mmt/internal/sim"
)

// Op is an operation kind with a cycle-latency distribution. Histograms
// are recorded at the same charge points that mirror cycles into phases,
// so every sample is a deterministic function of the cost model.
type Op uint8

const (
	// OpLocalRead is one protected read through the MMT controller
	// (data fetch + path walk + MAC checks).
	OpLocalRead Op = iota
	// OpLocalWrite is one protected write (verify + tree update +
	// re-encrypt + MAC).
	OpLocalWrite
	// OpRemoteRead is receive-side interconnect work: decrypt+copy on a
	// secure channel, or the simulated wire wait in netsim.
	OpRemoteRead
	// OpRemoteWrite is send-side interconnect work (NIC/DMA push, plus
	// encrypt+copy on a secure channel).
	OpRemoteWrite
	// OpMigrationSend is the sender-side cost of one MMT closure
	// delegation (DMA of the encoded closure + the fixed seal cost).
	OpMigrationSend
	// OpMigrationRecv is the receiver-side charged cost of accepting one
	// MMT closure (the delegation ack write).
	OpMigrationRecv
	// OpVerify is the integrity-verification share of one protected
	// access (root mount + node/line MAC latency on misses).
	OpVerify
	// OpReencrypt is one counter-recovery line re-encryption.
	OpReencrypt

	// NumOps is the number of operation kinds.
	NumOps = int(OpReencrypt) + 1
)

var opNames = [NumOps]string{
	OpLocalRead:     "local-read",
	OpLocalWrite:    "local-write",
	OpRemoteRead:    "remote-read",
	OpRemoteWrite:   "remote-write",
	OpMigrationSend: "migration-send",
	OpMigrationRecv: "migration-recv",
	OpVerify:        "verify",
	OpReencrypt:     "reencrypt",
}

func (o Op) String() string {
	if int(o) < NumOps {
		return opNames[o]
	}
	return "op?"
}

// HistBuckets is the fixed bucket count of every histogram. Bucket 0
// counts sub-cycle samples (< 1 cycle); bucket i counts samples in
// [2^(i-1), 2^i) cycles. The last bucket absorbs anything at or above
// 2^(HistBuckets-2) cycles (~2.3 simulated years at 2 GHz), so the
// layout never changes with the data — a requirement for byte-identical
// merges across serial and parallel runs.
const HistBuckets = 48

// Histogram is a fixed-bucket power-of-two cycle-latency histogram.
// The zero value is an empty histogram ready for use. All fields are
// integers or dyadic-safe float sums, so merging histograms in a fixed
// order reproduces the serial result bit for bit.
type Histogram struct {
	Count   uint64
	Sum     sim.Cycles // exact only up to float64 addition order; merged in input order
	Min     sim.Cycles // exact smallest sample; valid when Count > 0
	Max     sim.Cycles // exact largest sample; valid when Count > 0
	Buckets [HistBuckets]uint64
}

// bucketIndex maps a sample to its bucket. Negative samples cannot occur
// (costs are non-negative); sub-cycle samples land in bucket 0.
func bucketIndex(c sim.Cycles) int {
	if c < 1 {
		return 0
	}
	i := bits.Len64(uint64(c))
	if i >= HistBuckets {
		return HistBuckets - 1
	}
	return i
}

// BucketBound reports the exclusive upper bound of bucket i in cycles
// (the "le" edge reported by exporters): 1 for bucket 0, 2^i otherwise.
func BucketBound(i int) sim.Cycles {
	if i <= 0 {
		return 1
	}
	return sim.Cycles(uint64(1) << uint(i))
}

// Record adds one sample.
func (h *Histogram) Record(c sim.Cycles) {
	h.Count++
	h.Sum += c
	if h.Count == 1 || c < h.Min {
		h.Min = c
	}
	if c > h.Max {
		h.Max = c
	}
	h.Buckets[bucketIndex(c)]++
}

// MergeFrom folds src into h. Bucket counts and Count add; Sum adds in
// call order (callers merge in input order for determinism); Min/Max
// compare exactly.
func (h *Histogram) MergeFrom(src *Histogram) {
	if src.Count == 0 {
		return
	}
	if h.Count == 0 || src.Min < h.Min {
		h.Min = src.Min
	}
	if src.Max > h.Max {
		h.Max = src.Max
	}
	h.Count += src.Count
	h.Sum += src.Sum
	for i := range h.Buckets {
		h.Buckets[i] += src.Buckets[i]
	}
}

// Quantile reports the bucket upper bound containing the q-quantile
// sample (0 < q <= 1), i.e. an exact "latency <= this many cycles"
// statement for at least a q fraction of samples. Because bucket counts
// are integers, the result is byte-identical however the histogram was
// assembled. Returns 0 on an empty histogram. As a refinement, when the
// rank falls in the last occupied bucket the exact Max is returned
// instead of the (looser) bucket bound.
func (h *Histogram) Quantile(q float64) sim.Cycles {
	if h.Count == 0 {
		return 0
	}
	rank := uint64(q * float64(h.Count))
	if float64(rank) < q*float64(h.Count) { // ceil
		rank++
	}
	if rank < 1 {
		rank = 1
	}
	if rank > h.Count {
		rank = h.Count
	}
	var seen uint64
	first, last := -1, 0
	for i := HistBuckets - 1; i >= 0; i-- {
		if h.Buckets[i] != 0 {
			last = i
			break
		}
	}
	for i := 0; i <= last; i++ {
		if h.Buckets[i] != 0 && first < 0 {
			first = i
		}
		seen += h.Buckets[i]
		if seen >= rank {
			// Envelope refinement at the edges: every sample in the last
			// occupied bucket is <= Max and every sample in the first is
			// >= Min, so those ranks report the recorded extreme instead
			// of a power-of-two bucket bound (when one bucket holds all
			// samples, first == last and Max wins). Interior ranks keep
			// the bucket's upper bound. Still monotone in q: Min < every
			// interior bound <= BucketBound(last-1) < Max.
			if i == last {
				return h.Max
			}
			if i == first {
				return h.Min
			}
			return BucketBound(i)
		}
	}
	return h.Max
}

// Mean reports the average sample in cycles (0 when empty).
func (h *Histogram) Mean() sim.Cycles {
	if h.Count == 0 {
		return 0
	}
	return h.Sum / sim.Cycles(h.Count)
}

// RecordOp adds one cycle-latency sample for op to the probe's process.
// A nil probe records nothing and costs nothing.
//mmt:hotpath
func (p *Probe) RecordOp(op Op, c sim.Cycles) {
	if p == nil {
		return
	}
	p.sink.mu.Lock()
	p.proc.ops[op].Record(c)
	p.sink.mu.Unlock()
}
