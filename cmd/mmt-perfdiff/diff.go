package main

import (
	"encoding/json"
	"fmt"
	"math"

	"mmt/internal/sim"
)

// This file is the comparison core of mmt-perfdiff, kept free of CLI
// concerns so the regression/identity/mismatch behaviour is unit-tested
// directly against fixture files.

// ReportSchema identifies the machine-readable diff report format.
const ReportSchema = "mmt-perfdiff/v1"

// metric is one comparable number extracted from a sidecar. Every
// extracted metric is lower-is-better (cycles, seconds, ns/op), so a
// relative increase beyond the threshold is a regression.
type metric struct {
	Name  string
	Value float64
	Unit  string
}

// perfDoc is the extracted, comparable view of one BENCH_*.json file.
type perfDoc struct {
	// Kind identifies the document shape: "fig<N>" for figure sidecars,
	// the schema string for schema-tagged sidecars. Two documents compare
	// only when their kinds match.
	Kind    string
	Metrics []metric // extraction order: deterministic, baseline-driven
	// HasSeries records whether the sidecar carries the windowed-series
	// summary section. The section appears when the figure runs with
	// sampling on, so baseline and candidate gaining/losing it means the
	// two were produced by different schema generations — a shape
	// mismatch, not a perf delta.
	HasSeries bool
}

// sidecarDoc mirrors the subset of internal/bench.Sidecar the diff reads.
type sidecarDoc struct {
	Schema string `json:"schema"`
	Figure string `json:"figure"`
	Totals []struct {
		Name  string  `json:"name"`
		Value float64 `json:"value"`
		Unit  string  `json:"unit"`
	} `json:"totals"`
	PhaseCycles []struct {
		Phase  string     `json:"phase"`
		Cycles sim.Cycles `json:"cycles"`
	} `json:"phase_cycles"`
	Hists []struct {
		Proc string     `json:"proc"`
		Op   string     `json:"op"`
		P50  sim.Cycles `json:"p50_cycles"`
		P99  sim.Cycles `json:"p99_cycles"`
		Mean sim.Cycles `json:"mean_cycles"`
	} `json:"hists"`
	Metrics []struct {
		Name  string  `json:"name"`
		Value float64 `json:"value"`
		Unit  string  `json:"unit"`
	} `json:"metrics"` // wallclock sidecar shape
	Series json.RawMessage `json:"series"` // presence gates as shape
}

// comparableUnit reports whether a unit is lower-is-better and therefore
// diffable. Ratios ("x") and counts are shape, not speed, and byte sizes
// are workload parameters — none of them gate.
func comparableUnit(u string) bool {
	return u == "cycles" || u == "seconds" || u == "ns/op"
}

// extract parses one BENCH_*.json / BENCH_wallclock.json document into
// its comparable metrics.
func extract(data []byte) (*perfDoc, error) {
	var d sidecarDoc
	if err := json.Unmarshal(data, &d); err != nil {
		return nil, fmt.Errorf("not a JSON sidecar: %w", err)
	}
	doc := &perfDoc{}
	switch {
	case d.Schema == "mmt-wallclock/v1":
		doc.Kind = d.Schema
		for _, m := range d.Metrics {
			if comparableUnit(m.Unit) {
				doc.Metrics = append(doc.Metrics, metric{Name: "wallclock/" + m.Name, Value: m.Value, Unit: m.Unit})
			}
		}
	case d.Schema == "" && d.Figure != "":
		doc.Kind = "fig" + d.Figure
		doc.HasSeries = len(d.Series) > 0 && string(d.Series) != "null"
		for _, t := range d.Totals {
			if comparableUnit(t.Unit) {
				doc.Metrics = append(doc.Metrics, metric{Name: "total/" + t.Name, Value: t.Value, Unit: t.Unit})
			}
		}
		for _, p := range d.PhaseCycles {
			doc.Metrics = append(doc.Metrics, metric{Name: "phase/" + p.Phase, Value: float64(p.Cycles), Unit: "cycles"})
		}
		for _, h := range d.Hists {
			base := "hist/" + h.Proc + "/" + h.Op + "/"
			doc.Metrics = append(doc.Metrics,
				metric{Name: base + "p50", Value: float64(h.P50), Unit: "cycles"},
				metric{Name: base + "p99", Value: float64(h.P99), Unit: "cycles"},
				metric{Name: base + "mean", Value: float64(h.Mean), Unit: "cycles"})
		}
	default:
		return nil, fmt.Errorf("unsupported document (schema %q, figure %q): mmt-perfdiff reads BENCH_fig*.json and BENCH_wallclock.json", d.Schema, d.Figure)
	}
	return doc, nil
}

// MetricDiff is one metric's baseline/candidate comparison in the report.
type MetricDiff struct {
	Metric    string  `json:"metric"`
	Unit      string  `json:"unit"`
	Baseline  float64 `json:"baseline"`
	Candidate float64 `json:"candidate"`
	// DeltaRel is (candidate-baseline)/|baseline| (with a 1e-12 floor on
	// the denominator so a zero baseline still yields a finite, huge
	// delta).
	DeltaRel  float64 `json:"delta_rel"`
	Regressed bool    `json:"regressed"`
	Improved  bool    `json:"improved"`
}

// Comparison is one candidate file's diff against the baseline.
type Comparison struct {
	Candidate   string       `json:"candidate"`
	Regressions int          `json:"regressions"`
	Improved    int          `json:"improved"`
	Metrics     []MetricDiff `json:"metrics"`
}

// Report is the mmt-perfdiff/v1 document.
type Report struct {
	Schema      string       `json:"schema"`
	Threshold   float64      `json:"threshold"`
	Baseline    string       `json:"baseline"`
	Kind        string       `json:"kind"`
	Regressions int          `json:"regressions"`
	Comparisons []Comparison `json:"comparisons"`
}

// errMismatch marks schema/shape mismatches — always fatal (exit 2),
// even under -warn: a mismatch means the baseline is stale, not slow.
type errMismatch struct{ msg string }

func (e *errMismatch) Error() string { return e.msg }

// side names which document carries the series section in the mismatch
// message.
func side(candidateHas bool) string {
	if candidateHas {
		return "the candidate"
	}
	return "the baseline"
}

// diffDocs compares each candidate against the baseline. The baseline
// defines the metric set: a metric missing from a candidate is a shape
// mismatch; extra candidate metrics are ignored (they gate once the
// baseline is regenerated).
func diffDocs(threshold float64, basePath string, base *perfDoc, candPaths []string, cands []*perfDoc) (*Report, error) {
	rep := &Report{Schema: ReportSchema, Threshold: threshold, Baseline: basePath, Kind: base.Kind}
	for i, cand := range cands {
		if cand.Kind != base.Kind {
			return nil, &errMismatch{fmt.Sprintf("%s: document kind %q does not match baseline %q", candPaths[i], cand.Kind, base.Kind)}
		}
		if cand.HasSeries != base.HasSeries {
			return nil, &errMismatch{fmt.Sprintf("%s: series section present in %s but not the other — schema generations differ (regenerate baselines / bump the schema)", candPaths[i], side(cand.HasSeries))}
		}
		byName := make(map[string]metric, len(cand.Metrics))
		for _, m := range cand.Metrics {
			byName[m.Name] = m
		}
		cmp := Comparison{Candidate: candPaths[i]}
		for _, bm := range base.Metrics {
			cm, ok := byName[bm.Name]
			if !ok {
				return nil, &errMismatch{fmt.Sprintf("%s: metric %q present in baseline but missing from candidate (stale baseline? regenerate it)", candPaths[i], bm.Name)}
			}
			denom := math.Max(math.Abs(bm.Value), 1e-12)
			d := MetricDiff{
				Metric: bm.Name, Unit: bm.Unit,
				Baseline: bm.Value, Candidate: cm.Value,
				DeltaRel: (cm.Value - bm.Value) / denom,
			}
			d.Regressed = d.DeltaRel > threshold
			d.Improved = d.DeltaRel < -threshold
			if d.Regressed {
				cmp.Regressions++
			}
			if d.Improved {
				cmp.Improved++
			}
			cmp.Metrics = append(cmp.Metrics, d)
		}
		rep.Regressions += cmp.Regressions
		rep.Comparisons = append(rep.Comparisons, cmp)
	}
	return rep, nil
}
