package maporder

// Tests may range maps freely (e.g. asserting set membership); the
// invariant binds non-test code, so nothing here is flagged.
func testOnlyRange(m map[string]int) []int {
	var out []int
	for _, v := range m {
		out = append(out, v*2)
	}
	return out
}
