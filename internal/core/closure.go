package core

import (
	"encoding/binary"
	"errors"
	"fmt"

	"mmt/internal/crypt"
)

// TransferMode selects the delegation semantics of §V-B2.
type TransferMode uint8

const (
	// OwnershipTransfer moves the MMT: the receiver gets a writable tree
	// and the sender invalidates its copy on ack. The DAG programming
	// model.
	OwnershipTransfer TransferMode = 1
	// OwnershipCopy sends a read-only snapshot: the receiver may only
	// read; the sender keeps ownership and may keep writing after the ack.
	// The send/receive programming model.
	OwnershipCopy TransferMode = 2
)

func (m TransferMode) String() string {
	switch m {
	case OwnershipTransfer:
		return "ownership-transfer"
	case OwnershipCopy:
		return "ownership-copy"
	default:
		return fmt.Sprintf("TransferMode(%d)", uint8(m))
	}
}

// Closure is the MMT transfer unit (§IV-B2): "all data and metadata (i.e.,
// tree nodes, root and data MACs) used in decryption and authentication".
// The root travels sealed under the MMT key; tree nodes and ciphertext
// travel in the clear ("there is no need to encrypt intermediate tree
// nodes, as they are stored in memory as plaintext").
type Closure struct {
	Mode TransferMode
	// GUAddrHint and CounterHint are cleartext copies of the sealed root
	// fields. The receiver needs CounterHint to derive the unseal nonce;
	// both are authenticated because the whole header is the seal's
	// additional data, and they are cross-checked against the sealed
	// values after unsealing.
	GUAddrHint  uint64
	CounterHint uint64
	SealedRoot  []byte
	TreeNodes   []byte
	LineMACs    []uint64
	Data        []byte
}

const (
	closureMagic   = "MMTC"
	closureVersion = 1
	headerSize     = 4 + 1 + 1 + 8 + 8 // magic, version, mode, guaddr, counter
)

// WireSize reports the encoded size in bytes — what actually crosses the
// interconnect, and therefore what the cost model charges for.
func (c *Closure) WireSize() int {
	return headerSize + 4 + len(c.SealedRoot) + 4 + len(c.TreeNodes) +
		4 + 8*len(c.LineMACs) + 4 + len(c.Data)
}

// MetadataSize reports the non-data bytes of the closure (root, tree
// nodes, MACs): the delegation's bandwidth overhead versus a raw write.
func (c *Closure) MetadataSize() int { return c.WireSize() - len(c.Data) }

// header encodes the authenticated header.
func (c *Closure) header() []byte {
	h := make([]byte, headerSize)
	copy(h, closureMagic)
	h[4] = closureVersion
	h[5] = byte(c.Mode)
	binary.LittleEndian.PutUint64(h[6:], c.GUAddrHint)
	binary.LittleEndian.PutUint64(h[14:], c.CounterHint)
	return h
}

// Encode serializes the closure for the wire.
func (c *Closure) Encode() []byte {
	out := make([]byte, 0, c.WireSize())
	out = append(out, c.header()...)
	out = appendChunk(out, c.SealedRoot)
	out = appendChunk(out, c.TreeNodes)
	macs := make([]byte, 8*len(c.LineMACs))
	for i, m := range c.LineMACs {
		binary.LittleEndian.PutUint64(macs[i*8:], m)
	}
	out = appendChunk(out, macs)
	out = appendChunk(out, c.Data)
	return out
}

func appendChunk(dst, chunk []byte) []byte {
	var n [4]byte
	binary.LittleEndian.PutUint32(n[:], uint32(len(chunk)))
	dst = append(dst, n[:]...)
	return append(dst, chunk...)
}

// ErrBadClosure reports a structurally invalid wire closure.
var ErrBadClosure = errors.New("core: malformed MMT closure")

// DecodeClosure parses a wire closure. Structural validation only — the
// cryptographic checks happen in Accept.
func DecodeClosure(wire []byte) (*Closure, error) {
	if len(wire) < headerSize {
		return nil, fmt.Errorf("%w: %d bytes", ErrBadClosure, len(wire))
	}
	if string(wire[:4]) != closureMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrBadClosure)
	}
	if wire[4] != closureVersion {
		return nil, fmt.Errorf("%w: version %d", ErrBadClosure, wire[4])
	}
	c := &Closure{
		Mode:        TransferMode(wire[5]),
		GUAddrHint:  binary.LittleEndian.Uint64(wire[6:]),
		CounterHint: binary.LittleEndian.Uint64(wire[14:]),
	}
	if c.Mode != OwnershipTransfer && c.Mode != OwnershipCopy {
		return nil, fmt.Errorf("%w: mode %d", ErrBadClosure, wire[5])
	}
	rest := wire[headerSize:]
	var err error
	if c.SealedRoot, rest, err = readChunk(rest); err != nil {
		return nil, err
	}
	var macs []byte
	if c.TreeNodes, rest, err = readChunk(rest); err != nil {
		return nil, err
	}
	if macs, rest, err = readChunk(rest); err != nil {
		return nil, err
	}
	if len(macs)%8 != 0 {
		return nil, fmt.Errorf("%w: MAC chunk %d bytes", ErrBadClosure, len(macs))
	}
	c.LineMACs = make([]uint64, len(macs)/8)
	for i := range c.LineMACs {
		c.LineMACs[i] = binary.LittleEndian.Uint64(macs[i*8:])
	}
	if c.Data, rest, err = readChunk(rest); err != nil {
		return nil, err
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrBadClosure, len(rest))
	}
	return c, nil
}

func readChunk(b []byte) (chunk, rest []byte, err error) {
	if len(b) < 4 {
		return nil, nil, fmt.Errorf("%w: truncated length", ErrBadClosure)
	}
	n := int(binary.LittleEndian.Uint32(b))
	b = b[4:]
	if n < 0 || n > len(b) {
		return nil, nil, fmt.Errorf("%w: chunk length %d exceeds %d", ErrBadClosure, n, len(b))
	}
	return b[:n], b[n:], nil
}

// rootPlain is the sealed root payload: the fields of the extended MMT
// root (§IV-B1) that must not be forgeable in flight.
type rootPlain struct {
	GUAddr  uint64
	Counter uint64
	Mode    TransferMode
}

const rootPlainSize = 8 + 8 + 1

func (r rootPlain) encode() []byte {
	out := make([]byte, rootPlainSize)
	binary.LittleEndian.PutUint64(out[0:], r.GUAddr)
	binary.LittleEndian.PutUint64(out[8:], r.Counter)
	out[16] = byte(r.Mode)
	return out
}

func decodeRootPlain(b []byte) (rootPlain, error) {
	if len(b) != rootPlainSize {
		return rootPlain{}, fmt.Errorf("%w: root payload %d bytes", ErrBadClosure, len(b))
	}
	return rootPlain{
		GUAddr:  binary.LittleEndian.Uint64(b[0:]),
		Counter: binary.LittleEndian.Uint64(b[8:]),
		Mode:    TransferMode(b[16]),
	}, nil
}

// sealRoot seals the root fields under the MMT key, binding the cleartext
// header as additional data and deriving the nonce from the root counter
// (unique per key by protocol construction).
func sealRoot(e *crypt.Engine, c *Closure, r rootPlain) {
	c.SealedRoot = e.Seal(r.Counter, c.header(), r.encode())
}

// unsealRoot reverses sealRoot and cross-checks the cleartext hints.
func unsealRoot(e *crypt.Engine, c *Closure) (rootPlain, error) {
	pt, err := e.Unseal(c.CounterHint, c.header(), c.SealedRoot)
	if err != nil {
		return rootPlain{}, err
	}
	r, err := decodeRootPlain(pt)
	if err != nil {
		return rootPlain{}, err
	}
	if r.GUAddr != c.GUAddrHint || r.Counter != c.CounterHint || r.Mode != c.Mode {
		return rootPlain{}, fmt.Errorf("%w: sealed root disagrees with header", ErrBadClosure)
	}
	return r, nil
}
