package bench

import (
	"fmt"

	"mmt/internal/sim"
	"mmt/internal/tree"
)

// RenderTable1 prints the interconnect table (Table I).
func RenderTable1() string {
	header := []string{"Method", "Throughput", "Connection"}
	var out [][]string
	for _, l := range sim.TableILinks() {
		out = append(out, []string{l.Method, l.Throughput, l.Connection})
	}
	return renderTable("Table I: interconnect throughput", header, out)
}

// RenderConfigs prints the simulated testbed configurations (Tables II and
// III) as derived from the cost profiles and tree geometry in use.
func RenderConfigs() string {
	geo := tree.ForLevels(3)
	row := func(p *sim.Profile) []string {
		return []string{
			p.Name,
			fmt.Sprintf("%.1fGHz", p.FreqHz/1e9),
			fmtSize(p.MMTCacheBytes),
			fmtSize(p.RootTableSoC),
			fmtSize(p.SecureMemory),
			fmt.Sprintf("%d levels / %s closures", geo.Levels(), fmtSize(geo.DataSize())),
			fmt.Sprintf("%v cycles", float64(p.AESLatency)),
		}
	}
	header := []string{"Profile", "Clock", "MMT cache", "Roots in SoC", "Secure memory", "Tree", "Encrypt latency"}
	return renderTable("Tables II/III: testbed configurations", header,
		[][]string{row(sim.Gem5Profile()), row(sim.IntelProfile())})
}
