package bench

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"mmt/internal/sim"
	"mmt/internal/trace"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// tracedTransfer runs the 8K Table IV transfer with a fresh sink — the
// fully deterministic fixture (fixed channel key, no attestation
// signatures anywhere on the wire).
func tracedTransfer(t *testing.T) (*trace.Sink, Table4Row) {
	t.Helper()
	sink := trace.NewSink()
	row, err := table4Measure(sim.Gem5Profile(), 8<<10, sink)
	if err != nil {
		t.Fatal(err)
	}
	return sink, row
}

// TestPhaseSumAccountsForFigureTotals is the sidecar invariant at its
// source: every channel charge is mirrored into exactly one trace
// phase, so the sink's phase totals account for SecureChannel+MMT.
func TestPhaseSumAccountsForFigureTotals(t *testing.T) {
	sink, row := tracedTransfer(t)
	sc := &Sidecar{
		Figure:           "test",
		CheckTotalCycles: row.SecureChannel + row.MMT,
	}
	sc.fillFromMetrics(sink.Snapshot())
	if err := sc.Check(); err != nil {
		t.Fatal(err)
	}
	if sc.PhaseSumCycles == 0 {
		t.Fatal("no phases recorded")
	}
}

// TestSidecarFig10 runs the real figure-10 sidecar (the 2 MB point) and
// checks its invariant plus headline sanity.
func TestSidecarFig10(t *testing.T) {
	sc, err := SidecarForFigure("10", 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := sc.Check(); err != nil {
		t.Fatal(err)
	}
	if len(sc.Totals) != 6 || sc.Totals[0].Name != "secure-channel" || sc.Totals[1].Name != "mmt-delegation" {
		t.Fatalf("unexpected totals: %+v", sc.Totals)
	}
	if speedup := sc.Totals[2].Value; speedup < 100 {
		t.Fatalf("2M speedup %.1fx, want the paper's ~169x regime", speedup)
	}
	// The single 2 MB delegation shows up as exactly one causal trace.
	if sc.Totals[3].Name != "migrations" || sc.Totals[3].Value != 1 || len(sc.Migrations) != 1 {
		t.Fatalf("migration totals wrong: %+v / %+v", sc.Totals, sc.Migrations)
	}
	if _, err := sc.JSON(); err != nil {
		t.Fatal(err)
	}
}

// TestSidecarFig11 checks the engine-side invariant: the trace phases
// account for every measured protected-memory cycle.
func TestSidecarFig11(t *testing.T) {
	sc, err := SidecarForFigure("11", 2_000)
	if err != nil {
		t.Fatal(err)
	}
	if err := sc.Check(); err != nil {
		t.Fatal(err)
	}
}

// TestSidecarUnknownFigure: unsupported figures fail loudly.
func TestSidecarUnknownFigure(t *testing.T) {
	if _, err := SidecarForFigure("9", 0); err == nil {
		t.Fatal("want error for unsupported figure")
	}
}

// TestChromeTraceTwoRunsByteIdentical: two independent simulated runs
// export byte-identical Chrome traces — no normalization, the testbed
// has no variable-length crypto on the wire. The output is also pinned
// against a committed golden file (regenerate with -update).
func TestChromeTraceTwoRunsByteIdentical(t *testing.T) {
	var runs [2][]byte
	for i := range runs {
		sink, _ := tracedTransfer(t)
		var buf bytes.Buffer
		if err := sink.WriteChromeTrace(&buf); err != nil {
			t.Fatal(err)
		}
		runs[i] = buf.Bytes()
	}
	if !bytes.Equal(runs[0], runs[1]) {
		t.Fatal("two identical runs produced different traces")
	}

	golden := filepath.Join("testdata", "table4_8k_trace.golden.json")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, runs[0], 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if !bytes.Equal(runs[0], want) {
		t.Fatalf("trace deviates from golden file (run with -update if intended)\ngot:\n%s", runs[0])
	}
}

// TestSidecarJSONDeterministic: the same figure twice marshals to the
// same bytes (structs only, no map order anywhere near the encoder).
func TestSidecarJSONDeterministic(t *testing.T) {
	var runs [2][]byte
	for i := range runs {
		sink, row := tracedTransfer(t)
		sc := &Sidecar{Figure: "10", Profile: "gem5", CheckTotalCycles: row.SecureChannel + row.MMT}
		sc.fillFromMetrics(sink.Snapshot())
		b, err := sc.JSON()
		if err != nil {
			t.Fatal(err)
		}
		runs[i] = b
	}
	if !bytes.Equal(runs[0], runs[1]) {
		t.Fatal("sidecar JSON not deterministic")
	}
}
