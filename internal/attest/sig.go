package attest

import (
	"crypto/ecdsa"
	"crypto/rand"
	"math/big"
)

// Fixed-length ECDSA signature encoding.
//
// ASN.1/DER signatures are 70-72 bytes for P-256 depending on how many
// leading zero bits r and s happen to have, which makes every signed wire
// message variable-length and forces downstream consumers (trace goldens,
// closure framing, buffer sizing) to normalize or over-allocate. The wire
// format here is the raw scalars instead: r || s, each left-padded to the
// 32-byte curve order, always exactly SignatureSize bytes.

// SignatureSize is the length of every ECDSA signature on the wire.
const SignatureSize = 64

// SignDigest signs a digest with a P-256 key and returns the fixed-length
// r||s encoding.
func SignDigest(priv *ecdsa.PrivateKey, digest []byte) ([]byte, error) {
	r, s, err := ecdsa.Sign(rand.Reader, priv, digest)
	if err != nil {
		return nil, err
	}
	sig := make([]byte, SignatureSize)
	r.FillBytes(sig[:SignatureSize/2])
	s.FillBytes(sig[SignatureSize/2:])
	return sig, nil
}

// VerifyDigest checks a fixed-length r||s signature. Wrong-length input is
// simply an invalid signature, never a parse error: signatures are
// attacker-controlled bytes.
func VerifyDigest(pub *ecdsa.PublicKey, digest, sig []byte) bool {
	if len(sig) != SignatureSize {
		return false
	}
	r := new(big.Int).SetBytes(sig[:SignatureSize/2])
	s := new(big.Int).SetBytes(sig[SignatureSize/2:])
	return ecdsa.Verify(pub, digest, r, s)
}
