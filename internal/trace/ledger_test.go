package trace

import (
	"bufio"
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"mmt/internal/sim"
)

// TestEventKindNames: every kind has a distinct exporter name and the
// reverse lookup round-trips (mmt-tracecheck validates against this set).
func TestEventKindNames(t *testing.T) {
	seen := map[string]bool{}
	for k := EventKind(0); int(k) < NumEventKinds; k++ {
		n := k.String()
		if n == "" || n == "event?" || seen[n] {
			t.Fatalf("bad kind name %q for %d", n, k)
		}
		seen[n] = true
		got, ok := EventKindByName(n)
		if !ok || got != k {
			t.Fatalf("EventKindByName(%q) = %v, %v", n, got, ok)
		}
	}
	if _, ok := EventKindByName("no-such-kind"); ok {
		t.Fatalf("EventKindByName accepted unknown name")
	}
}

// TestLedgerRecordAndSnapshot: events carry monotonic sequence numbers
// and snapshots are oldest-first copies.
func TestLedgerRecordAndSnapshot(t *testing.T) {
	s := NewSink()
	p := s.Probe("alice")
	p.Event(EvMigrationSend, sim.Time(1e-6), 0x100, "first")
	p.Event(EvAuthFail, sim.Time(2e-6), 0x200, "second")
	evs := s.SecEvents()
	if len(evs) != 2 {
		t.Fatalf("events = %d, want 2", len(evs))
	}
	if evs[0].Seq != 1 || evs[0].Kind != EvMigrationSend || evs[0].Proc != "alice" || evs[0].Addr != 0x100 {
		t.Fatalf("event 0 = %+v", evs[0])
	}
	if evs[1].Seq != 2 || evs[1].Detail != "second" {
		t.Fatalf("event 1 = %+v", evs[1])
	}
	if s.EventsDropped() != 0 {
		t.Fatalf("dropped = %d, want 0", s.EventsDropped())
	}
	// Snapshot is a copy.
	evs[0].Detail = "mutated"
	if s.SecEvents()[0].Detail != "first" {
		t.Fatalf("SecEvents aliased ledger state")
	}
	s.Reset()
	if len(s.SecEvents()) != 0 || s.EventsDropped() != 0 {
		t.Fatalf("reset left ledger entries")
	}
	// Nil sink forms.
	var nilSink *Sink
	if nilSink.SecEvents() != nil || nilSink.EventsDropped() != 0 {
		t.Fatalf("nil sink ledger not empty")
	}
	nilSink.SetEventCapacity(4) // no-op, must not panic
}

// TestLedgerRingWrap: the bounded ring keeps the newest entries,
// oldest-first, and reports the eviction count.
func TestLedgerRingWrap(t *testing.T) {
	s := NewSink()
	s.SetEventCapacity(4)
	p := s.Probe("alice")
	for i := 0; i < 10; i++ {
		p.Event(EvReplayReject, sim.Time(float64(i)*1e-6), uint64(i), "e")
	}
	evs := s.SecEvents()
	if len(evs) != 4 {
		t.Fatalf("retained = %d, want 4", len(evs))
	}
	for i, ev := range evs {
		if want := uint64(7 + i); ev.Seq != want || ev.Addr != want-1 {
			t.Fatalf("retained[%d] = %+v, want seq %d", i, ev, want)
		}
	}
	if got := s.EventsDropped(); got != 6 {
		t.Fatalf("dropped = %d, want 6", got)
	}
	// Capacity changes after recording are refused (retention would
	// otherwise depend on call timing).
	s.SetEventCapacity(100)
	p.Event(EvReplayReject, 0, 99, "e")
	if len(s.SecEvents()) != 4 {
		t.Fatalf("mid-run capacity change took effect")
	}
	// After Reset the bound may change.
	s.Reset()
	s.SetEventCapacity(2)
	for i := 0; i < 3; i++ {
		p.Event(EvReplayReject, 0, uint64(i), "e")
	}
	if got := s.SecEvents(); len(got) != 2 || got[0].Addr != 1 {
		t.Fatalf("post-reset ring = %+v", got)
	}
}

// TestLedgerMergeOrder: merging worker sinks serially in input order
// reproduces the serial ledger — same kinds, times and sequence numbers.
func TestLedgerMergeOrder(t *testing.T) {
	serial := NewSink()
	sp := serial.Probe("alice")
	for i := 0; i < 6; i++ {
		sp.Event(EvMigrationAccept, sim.Time(float64(i)*1e-6), uint64(i), "m")
	}
	want := serial.SecEvents()

	root := NewSink()
	for w := 0; w < 3; w++ {
		part := NewSink()
		pp := part.Probe("alice")
		for i := w * 2; i < w*2+2; i++ {
			pp.Event(EvMigrationAccept, sim.Time(float64(i)*1e-6), uint64(i), "m")
		}
		root.Merge(part)
	}
	got := root.SecEvents()
	if len(got) != len(want) {
		t.Fatalf("merged = %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if !reflect.DeepEqual(got[i], want[i]) {
			t.Fatalf("merged[%d] = %+v, want %+v", i, got[i], want[i])
		}
	}
}

// TestEventsJSONLShape: header line carries schema/counts, each event
// line parses, and the export is byte-deterministic.
func TestEventsJSONLShape(t *testing.T) {
	build := func() *Sink {
		s := NewSink()
		p := s.Probe("alice")
		p.Event(EvIntegrityFail, sim.Time(1.5e-6), 0xdead, "read: data line MAC")
		p.Event(EvCapDestroy, sim.Time(2e-6), 0, "monitor: capability freed")
		return s
	}
	var out bytes.Buffer
	if err := build().WriteEventsJSONL(&out); err != nil {
		t.Fatalf("export: %v", err)
	}
	lines := strings.Split(strings.TrimRight(out.String(), "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d, want 3:\n%s", len(lines), out.String())
	}
	var hdr struct {
		Schema  string `json:"schema"`
		Events  int    `json:"events"`
		Dropped uint64 `json:"dropped"`
	}
	if err := json.Unmarshal([]byte(lines[0]), &hdr); err != nil {
		t.Fatalf("header: %v", err)
	}
	if hdr.Schema != EventsSchema || hdr.Events != 2 || hdr.Dropped != 0 {
		t.Fatalf("header = %+v", hdr)
	}
	var ev struct {
		Seq    uint64  `json:"seq"`
		Proc   string  `json:"proc"`
		Kind   string  `json:"kind"`
		TimeUs float64 `json:"time_us"`
		Addr   string  `json:"addr"`
		Detail string  `json:"detail"`
	}
	if err := json.Unmarshal([]byte(lines[1]), &ev); err != nil {
		t.Fatalf("event line: %v", err)
	}
	if ev.Seq != 1 || ev.Kind != "integrity-fail" || ev.Addr != "0xdead" || ev.TimeUs != 1.5 {
		t.Fatalf("event = %+v", ev)
	}
	if _, ok := EventKindByName(ev.Kind); !ok {
		t.Fatalf("exported kind %q not resolvable", ev.Kind)
	}
	var again bytes.Buffer
	if err := build().WriteEventsJSONL(&again); err != nil {
		t.Fatalf("re-export: %v", err)
	}
	if !bytes.Equal(out.Bytes(), again.Bytes()) {
		t.Fatalf("identical sinks exported differently")
	}
	// Nil sink writes a header with zero events.
	var empty bytes.Buffer
	if err := (*Sink)(nil).WriteEventsJSONL(&empty); err != nil {
		t.Fatalf("nil export: %v", err)
	}
	sc := bufio.NewScanner(bytes.NewReader(empty.Bytes()))
	if !sc.Scan() || !strings.Contains(sc.Text(), `"events":0`) || sc.Scan() {
		t.Fatalf("nil export = %q", empty.String())
	}
}
