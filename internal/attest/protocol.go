package attest

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/ecdh"
	"crypto/ecdsa"
	"crypto/rand"
	"crypto/sha256"
	"encoding/json"
	"errors"
	"fmt"

	"mmt/internal/forest"
)

// The attestation runs as four messages, each a JSON envelope, so that the
// exchange can cross the untrusted interconnect (netsim) unmodified:
//
//	node -> authority: Hello        {node ECDH public}
//	authority -> node: ServerHello  {authority ECDH public}
//	node -> authority: Evidence     {certificate, transcript signature,
//	                                 encrypted measurement+metadata}
//	authority -> node: Grant        {encrypted node id + signed report}
//
// Phase 2 and 3 of Figure 3 are folded into Evidence/Grant: the transcript
// signature proves machine-key possession (certificate check) and the
// encrypted payload carries the node-related messages.

type helloMsg struct {
	Type   string `json:"type"`
	Public []byte `json:"public"`
}

type evidenceMsg struct {
	Type       string      `json:"type"`
	Cert       Certificate `json:"cert"`
	Transcript []byte      `json:"transcript_sig"` // machine-key signature
	Sealed     []byte      `json:"sealed"`         // session-encrypted nodeInfo
}

type nodeInfo struct {
	Measurement Measurement `json:"measurement"`
	Meta        string      `json:"meta"`
}

type grantMsg struct {
	Type   string `json:"type"`
	Sealed []byte `json:"sealed"` // session-encrypted grantInfo
}

type grantInfo struct {
	NodeID forest.NodeID `json:"node_id"`
	Report Report        `json:"report"`
}

// Attestation errors.
var (
	ErrBadMessage  = errors.New("attest: malformed protocol message")
	ErrRejected    = errors.New("attest: authority rejected the node")
	ErrMeasurement = errors.New("attest: software measurement not in policy")
)

// seal encrypts a JSON payload under the session key with a random nonce.
func seal(key [32]byte, v any) ([]byte, error) {
	pt, err := json.Marshal(v)
	if err != nil {
		return nil, err
	}
	block, err := aes.NewCipher(key[:16])
	if err != nil {
		return nil, err
	}
	aead, err := cipher.NewGCM(block)
	if err != nil {
		return nil, err
	}
	nonce := make([]byte, aead.NonceSize())
	if _, err := rand.Read(nonce); err != nil {
		return nil, err
	}
	return append(nonce, aead.Seal(nil, nonce, pt, nil)...), nil
}

// unseal reverses seal into v.
func unseal(key [32]byte, box []byte, v any) error {
	block, err := aes.NewCipher(key[:16])
	if err != nil {
		return err
	}
	aead, err := cipher.NewGCM(block)
	if err != nil {
		return err
	}
	if len(box) < aead.NonceSize() {
		return ErrBadMessage
	}
	pt, err := aead.Open(nil, box[:aead.NonceSize()], box[aead.NonceSize():], nil)
	if err != nil {
		return fmt.Errorf("%w: session decryption failed", ErrBadMessage)
	}
	return json.Unmarshal(pt, v)
}

// transcriptDigest binds the key agreement into the machine-key signature
// so evidence cannot be cut-and-pasted between sessions.
func transcriptDigest(nodePub, authPub []byte) []byte {
	h := sha256.New()
	h.Write([]byte("mmt-transcript-v1\x00"))
	h.Write(nodePub)
	h.Write(authPub)
	return h.Sum(nil)
}

// NodeSession is the attested node's side of the protocol.
type NodeSession struct {
	machine     *Machine
	measurement Measurement
	meta        string
	ecdhPriv    *ecdh.PrivateKey
	authority   *ecdsa.PublicKey // for report verification
	session     [32]byte
	established bool
}

// NewNodeSession prepares a node to attest with its machine identity,
// software measurement and the authority's public key.
func NewNodeSession(m *Machine, meas Measurement, meta string, authority *ecdsa.PublicKey) (*NodeSession, error) {
	priv, err := newSessionKeys()
	if err != nil {
		return nil, err
	}
	return &NodeSession{machine: m, measurement: meas, meta: meta, ecdhPriv: priv, authority: authority}, nil
}

// Hello emits the first message.
func (s *NodeSession) Hello() ([]byte, error) {
	return json.Marshal(helloMsg{Type: "hello", Public: s.ecdhPriv.PublicKey().Bytes()})
}

// OnServerHello consumes the authority's key share and emits the evidence
// message.
func (s *NodeSession) OnServerHello(msg []byte) ([]byte, error) {
	var sh helloMsg
	if err := json.Unmarshal(msg, &sh); err != nil || sh.Type != "server-hello" {
		return nil, ErrBadMessage
	}
	authPub, err := ecdh.X25519().NewPublicKey(sh.Public)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadMessage, err)
	}
	shared, err := s.ecdhPriv.ECDH(authPub)
	if err != nil {
		return nil, err
	}
	nodePub := s.ecdhPriv.PublicKey().Bytes()
	s.session = sessionKey(shared, nodePub, sh.Public)
	s.established = true

	sig, err := SignDigest(s.machine.priv, transcriptDigest(nodePub, sh.Public))
	if err != nil {
		return nil, err
	}
	sealed, err := seal(s.session, nodeInfo{Measurement: s.measurement, Meta: s.meta})
	if err != nil {
		return nil, err
	}
	return json.Marshal(evidenceMsg{
		Type:       "evidence",
		Cert:       s.machine.Cert,
		Transcript: sig,
		Sealed:     sealed,
	})
}

// OnGrant consumes the authority's final message and returns the assigned
// node id and the signed attestation report (verified against the
// authority key).
func (s *NodeSession) OnGrant(msg []byte) (forest.NodeID, *Report, error) {
	if !s.established {
		return 0, nil, fmt.Errorf("%w: grant before key agreement", ErrBadMessage)
	}
	var g grantMsg
	if err := json.Unmarshal(msg, &g); err != nil || g.Type != "grant" {
		return 0, nil, ErrBadMessage
	}
	var info grantInfo
	if err := unseal(s.session, g.Sealed, &info); err != nil {
		return 0, nil, err
	}
	if err := VerifyReport(s.authority, &info.Report); err != nil {
		return 0, nil, err
	}
	if info.Report.NodeID != info.NodeID || info.Report.Measurement != s.measurement {
		return 0, nil, fmt.Errorf("%w: report does not match grant", ErrBadMessage)
	}
	return info.NodeID, &info.Report, nil
}

// SessionKey exposes the negotiated session key (tests only).
func (s *NodeSession) SessionKey() [32]byte { return s.session }

// AuthSession is the authority's per-connection state.
type AuthSession struct {
	a        *Authority
	ecdhPriv *ecdh.PrivateKey
	nodePub  []byte
	session  [32]byte
}

// NewSession starts serving one attestation connection.
func (a *Authority) NewSession() (*AuthSession, error) {
	priv, err := newSessionKeys()
	if err != nil {
		return nil, err
	}
	return &AuthSession{a: a, ecdhPriv: priv}, nil
}

// OnHello consumes the node's hello and emits the server hello.
func (s *AuthSession) OnHello(msg []byte) ([]byte, error) {
	var h helloMsg
	if err := json.Unmarshal(msg, &h); err != nil || h.Type != "hello" {
		return nil, ErrBadMessage
	}
	nodePub, err := ecdh.X25519().NewPublicKey(h.Public)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadMessage, err)
	}
	shared, err := s.ecdhPriv.ECDH(nodePub)
	if err != nil {
		return nil, err
	}
	s.nodePub = h.Public
	s.session = sessionKey(shared, h.Public, s.ecdhPriv.PublicKey().Bytes())
	return json.Marshal(helloMsg{Type: "server-hello", Public: s.ecdhPriv.PublicKey().Bytes()})
}

// OnEvidence verifies the certificate chain and measurement policy, then
// issues the node id and signed report.
func (s *AuthSession) OnEvidence(msg []byte) ([]byte, error) {
	var ev evidenceMsg
	if err := json.Unmarshal(msg, &ev); err != nil || ev.Type != "evidence" {
		return nil, ErrBadMessage
	}
	machinePub, err := VerifyCertificate(s.a.manufacturer, &ev.Cert)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrRejected, err)
	}
	digest := transcriptDigest(s.nodePub, s.ecdhPriv.PublicKey().Bytes())
	if !VerifyDigest(machinePub, digest, ev.Transcript) {
		return nil, fmt.Errorf("%w: transcript signature invalid", ErrRejected)
	}
	var info nodeInfo
	if err := unseal(s.session, ev.Sealed, &info); err != nil {
		return nil, err
	}
	if !s.a.policy[info.Measurement] {
		return nil, ErrMeasurement
	}

	id := s.a.nextID
	s.a.nextID++
	report := Report{NodeID: id, Subject: ev.Cert.Subject, Measurement: info.Measurement,
		MachinePublicKey: ev.Cert.PublicKey}
	sig, err := SignDigest(s.a.signing, report.digest())
	if err != nil {
		return nil, err
	}
	report.Signature = sig
	sealed, err := seal(s.session, grantInfo{NodeID: id, Report: report})
	if err != nil {
		return nil, err
	}
	return json.Marshal(grantMsg{Type: "grant", Sealed: sealed})
}

// Run drives the whole protocol in memory (no network), returning the node
// id and report. The monitor uses this for local setups; distributed
// setups push the same four messages through netsim.
func Run(node *NodeSession, authority *Authority) (forest.NodeID, *Report, error) {
	as, err := authority.NewSession()
	if err != nil {
		return 0, nil, err
	}
	hello, err := node.Hello()
	if err != nil {
		return 0, nil, err
	}
	sh, err := as.OnHello(hello)
	if err != nil {
		return 0, nil, err
	}
	ev, err := node.OnServerHello(sh)
	if err != nil {
		return 0, nil, err
	}
	grant, err := as.OnEvidence(ev)
	if err != nil {
		return 0, nil, err
	}
	return node.OnGrant(grant)
}
