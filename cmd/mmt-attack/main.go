// Command mmt-attack demonstrates the §IV-B2 threat model live: it builds
// a two-machine cluster, puts a man-in-the-middle on the interconnect, and
// shows each classic attack being rejected by the MMT closure delegation
// protocol — then shows the same attacks succeeding against the
// unprotected baseline, which is the whole point.
//
// Everything it prints comes from the cluster's public observability
// surface — the wire counters from Cluster.Metrics() and the rejection
// verdicts from the Cluster.Events() security ledger — so the output
// doubles as a demonstration that an auditor sees every attack without
// any private hooks into the protocol. The output is deterministic (all
// counts and timestamps read off the simulated run) and pinned by a
// golden test.
package main

import (
	"bytes"
	"fmt"
	"io"
	"os"

	"mmt"
)

// The adversaries below are written entirely against the public API —
// mmt.Interposer and mmt.WireMessage — the same surface any user of the
// package has for building their own wire-level threat models.

// spy copies every payload it sees without modifying anything — the
// passive eavesdropper. The demo asserts its captures reveal nothing.
type spy struct {
	Captured [][]byte
}

func (s *spy) Intercept(m mmt.WireMessage) []mmt.WireMessage {
	s.Captured = append(s.Captured, append([]byte(nil), m.Payload...))
	return []mmt.WireMessage{m}
}

// tamperer flips one bit at Offset (negative counts from the end) in
// every payload of the matching kind.
type tamperer struct {
	Kind   mmt.WireKind
	Offset int
	Bit    uint
}

func (t *tamperer) Intercept(m mmt.WireMessage) []mmt.WireMessage {
	if m.Kind == t.Kind && len(m.Payload) > 0 {
		p := append([]byte(nil), m.Payload...)
		off := t.Offset % len(p)
		if off < 0 {
			off += len(p)
		}
		p[off] ^= 1 << (t.Bit % 8)
		m.Payload = p
	}
	return []mmt.WireMessage{m}
}

// replayer delivers every matching message and, once armed, re-injects a
// recorded copy of the first one it saw after every subsequent delivery.
type replayer struct {
	Kind     mmt.WireKind
	recorded *mmt.WireMessage
}

func (r *replayer) Intercept(m mmt.WireMessage) []mmt.WireMessage {
	if m.Kind != r.Kind {
		return []mmt.WireMessage{m}
	}
	if r.recorded == nil {
		cp := m
		cp.Payload = append([]byte(nil), m.Payload...)
		r.recorded = &cp
		return []mmt.WireMessage{m}
	}
	replay := *r.recorded
	replay.ArriveAt = m.ArriveAt
	return []mmt.WireMessage{m, replay}
}

// reorderer buffers matching messages in pairs and delivers each pair
// swapped — the re-order attack.
type reorderer struct {
	Kind mmt.WireKind
	held *mmt.WireMessage
}

func (r *reorderer) Intercept(m mmt.WireMessage) []mmt.WireMessage {
	if m.Kind != r.Kind {
		return []mmt.WireMessage{m}
	}
	if r.held == nil {
		cp := m
		r.held = &cp
		return nil
	}
	first := *r.held
	r.held = nil
	first.ArriveAt = m.ArriveAt
	return []mmt.WireMessage{m, first}
}

// scenario is one attack demonstration.
type scenario struct {
	name       string
	interposer mmt.Interposer
	// wantReject: the delegation must fail under this adversary.
	wantReject bool
}

func scenarios() []scenario {
	return []scenario{
		{"passive spy (confidentiality)", &spy{}, false},
		{"bit flip in closure data", &tamperer{Kind: mmt.WireClosure, Offset: -3}, true},
		{"bit flip in sealed root", &tamperer{Kind: mmt.WireClosure, Offset: 40}, true},
		{"replay of a recorded closure", &replayer{Kind: mmt.WireClosure}, true},
		{"re-ordering of two closures", &reorderer{Kind: mmt.WireClosure}, true},
	}
}

func main() {
	if err := report(os.Stdout); err != nil {
		os.Exit(1)
	}
}

// report runs every scenario and renders the demonstration; it returns
// an error if any attack was not handled as expected.
func report(w io.Writer) error {
	var failed error
	for _, s := range scenarios() {
		line, err := run(s)
		if err != nil {
			fmt.Fprintf(w, "FAIL %-32s %v\n", s.name, err)
			failed = fmt.Errorf("scenario %q failed", s.name)
		} else {
			fmt.Fprintf(w, "ok   %-32s %s\n", s.name, line)
		}
	}
	if failed != nil {
		return failed
	}
	fmt.Fprintln(w, "\nAll adversaries defeated. The delegation protocol held: spying saw only")
	fmt.Fprintln(w, "ciphertext; tampering, replay and re-ordering were all rejected, and the")
	fmt.Fprintln(w, "sender recovered its buffer for retry each time. The wire column is")
	fmt.Fprintln(w, "everything each adversary got to see — message and byte counts per traffic")
	fmt.Fprintln(w, "kind, all of it ciphertext or protocol framing — and the ledger column is")
	fmt.Fprintln(w, "the security-event record an auditor reads from Cluster.Events().")
	return nil
}

// wireView renders what a wire adversary observed: per-kind message and
// byte counts, summed over both machines' outbound traffic.
func wireView(m mmt.Metrics) string {
	return fmt.Sprintf("wire: %d closure msgs / %d B, %d control msgs / %d B",
		m.Counter(mmt.CtrWireMsgsClosure), m.Counter(mmt.CtrWireBytesClosure),
		m.Counter(mmt.CtrWireMsgsControl), m.Counter(mmt.CtrWireBytesControl))
}

// ledgerView summarizes the security-event ledger: how many closures the
// receiving monitor accepted, how many it rejected, and the verdict kind
// of the newest rejection — the audit trail of the attack.
func ledgerView(events []mmt.SecurityEvent) string {
	accepts, rejects := 0, 0
	var last mmt.SecurityEvent
	for _, ev := range events {
		switch ev.Kind {
		case mmt.EvMigrationAccept:
			accepts++
		case mmt.EvIntegrityFail, mmt.EvAuthFail, mmt.EvReplayReject,
			mmt.EvReorderReject, mmt.EvStaleCounter, mmt.EvMigrationReject:
			rejects++
			last = ev
		}
	}
	if rejects == 0 {
		return fmt.Sprintf("ledger: %d accepted, 0 rejected", accepts)
	}
	return fmt.Sprintf("ledger: %d accepted, %d rejected (%s on %s)",
		accepts, rejects, last.Kind, last.Proc)
}

// run executes one scenario on a fresh (traced) cluster, verifies the
// outcome, and reports the adversary-visible wire traffic plus the
// ledger verdict.
func run(s scenario) (string, error) {
	sink := mmt.NewTraceSink()
	cluster, err := mmt.New(mmt.WithTreeLevels(2), mmt.WithRegions(8), mmt.WithTracing(sink))
	if err != nil {
		return "", err
	}
	alice, err := cluster.AddMachine("alice")
	if err != nil {
		return "", err
	}
	bob, err := cluster.AddMachine("bob")
	if err != nil {
		return "", err
	}
	sender := alice.Spawn("producer", nil)
	receiver := bob.Spawn("consumer", nil)
	link, err := cluster.Connect(sender, receiver)
	if err != nil {
		return "", err
	}
	secret := []byte("attack-target payload: 0123456789abcdef")

	send := func() error {
		buf, err := link.NewBuffer(sender)
		if err != nil {
			return err
		}
		if err := buf.Write(0, secret); err != nil {
			return err
		}
		return link.Delegate(buf, mmt.OwnershipTransfer)
	}

	cluster.SetInterposer(s.interposer)
	err = send()
	if err == nil {
		switch s.interposer.(type) {
		case *reorderer, *replayer:
			// These adversaries need a second message: the reorderer holds
			// the first closure until it can swap a pair; the replayer
			// re-injects its recording after the next delivery.
			err = send()
		}
	}
	cluster.SetInterposer(nil)
	// Snapshot before the clean retry: this is the traffic the adversary
	// itself was exposed to, and the verdicts it caused.
	line := wireView(cluster.Metrics()) + " | " + ledgerView(cluster.Events())

	if s.wantReject {
		if err == nil {
			return "", fmt.Errorf("attack was NOT rejected")
		}
		// Recovery: a clean retry must succeed.
		if err := send(); err != nil {
			return "", fmt.Errorf("retry after rejected attack failed: %v", err)
		}
		return line, nil
	}

	// Passive case: delegation succeeds, payload arrives intact, and the
	// spy saw no plaintext.
	if err != nil {
		return "", fmt.Errorf("delegation failed under passive adversary: %v", err)
	}
	got, err := link.Receive(receiver)
	if err != nil {
		return "", err
	}
	data, err := got.Read(0, len(secret))
	if err != nil {
		return "", err
	}
	if !bytes.Equal(data, secret) {
		return "", fmt.Errorf("payload corrupted")
	}
	if spy, ok := s.interposer.(*spy); ok {
		for _, p := range spy.Captured {
			if bytes.Contains(p, secret[:16]) {
				return "", fmt.Errorf("plaintext leaked on the wire")
			}
		}
		if len(spy.Captured) == 0 {
			return "", fmt.Errorf("spy captured nothing")
		}
	}
	return line, nil
}
