package sim

import (
	"math"
	"testing"
)

// within reports whether got is within frac (e.g. 0.10 for 10%) of want.
func within(got, want, frac float64) bool {
	if want == 0 {
		return got == 0
	}
	return math.Abs(got-want)/math.Abs(want) <= frac
}

// TestGem5CalibrationTable4 checks the Gem5 profile against the paper's
// Table IV breakdown (10^3 cycles). Tolerance 12%: the paper's own rows
// include measurement noise around the affine fit.
func TestGem5CalibrationTable4(t *testing.T) {
	p := Gem5Profile()
	cases := []struct {
		size                               int
		encrypt, decrypt, memcpy2, remoteW float64 // 10^3 cycles from Table IV
	}{
		{2 << 20, 34612, 32230, 4288, 367},
		{512 << 10, 8445, 8128, 989, 102},
		{128 << 10, 2066, 2085, 211, 36},
		{32 << 10, 530, 580, 46.4, 15.9},
		{8 << 10, 170.2, 204.7, 6.26, 9.47},
		{2 << 10, 77.4, 104.6, 1.31, 7.69},
	}
	for _, c := range cases {
		if got := float64(p.EncryptCost(c.size)) / 1e3; !within(got, c.encrypt, 0.12) {
			t.Errorf("encrypt(%d) = %.1fk cycles, paper %vk", c.size, got, c.encrypt)
		}
		if got := float64(p.DecryptCost(c.size)) / 1e3; !within(got, c.decrypt, 0.12) {
			t.Errorf("decrypt(%d) = %.1fk cycles, paper %vk", c.size, got, c.decrypt)
		}
		if got := 2 * float64(p.MemcpyCost(c.size)) / 1e3; !within(got, c.memcpy2, 0.25) {
			t.Errorf("memcpy*2(%d) = %.1fk cycles, paper %vk", c.size, got, c.memcpy2)
		}
		if got := float64(p.RemoteWriteCost(c.size)) / 1e3; !within(got, c.remoteW, 0.25) {
			t.Errorf("remote_w(%d) = %.1fk cycles, paper %vk", c.size, got, c.remoteW)
		}
	}
}

// TestIntelCalibrationTable4 checks the Intel profile against the paper's
// Table IV Intel columns (ms).
func TestIntelCalibrationTable4(t *testing.T) {
	p := IntelProfile()
	cases := []struct {
		size                               int
		memcpy2, remoteW, encrypt, decrypt float64 // ms
	}{
		{32 << 20, 8.84, 3.01, 16.5, 16.9},
		{64 << 20, 17.1, 6.02, 31.8, 32.7},
		{128 << 20, 34.0, 12.1, 63.6, 66.0},
	}
	for _, c := range cases {
		ms := func(cy Cycles) float64 { return float64(p.ToTime(cy).Milliseconds()) }
		if got := 2 * ms(p.MemcpyCost(c.size)); !within(got, c.memcpy2, 0.10) {
			t.Errorf("memcpy*2(%dM) = %.2fms, paper %v", c.size>>20, got, c.memcpy2)
		}
		if got := ms(p.RemoteWriteCost(c.size)); !within(got, c.remoteW, 0.10) {
			t.Errorf("remote_w(%dM) = %.2fms, paper %v", c.size>>20, got, c.remoteW)
		}
		if got := ms(p.EncryptCost(c.size)); !within(got, c.encrypt, 0.10) {
			t.Errorf("encrypt(%dM) = %.2fms, paper %v", c.size>>20, got, c.encrypt)
		}
		if got := ms(p.DecryptCost(c.size)); !within(got, c.decrypt, 0.10) {
			t.Errorf("decrypt(%dM) = %.2fms, paper %v", c.size>>20, got, c.decrypt)
		}
	}
}

func TestProfileCloneIsolated(t *testing.T) {
	p := Gem5Profile()
	q := p.Clone()
	q.NetLatency = 1e-2
	if p.NetLatency == q.NetLatency {
		t.Fatal("Clone shares NetLatency with original")
	}
}

func TestCostsZeroForNonPositiveSizes(t *testing.T) {
	p := Gem5Profile()
	for _, n := range []int{0, -1, -1024} {
		if p.EncryptCost(n) != 0 || p.DecryptCost(n) != 0 || p.MemcpyCost(n) != 0 || p.RemoteWriteCost(n) != 0 {
			t.Fatalf("cost for n=%d should be 0", n)
		}
	}
}

func TestCostsMonotonicInSize(t *testing.T) {
	p := Gem5Profile()
	sizes := []int{1 << 10, 4 << 10, 64 << 10, 1 << 20, 8 << 20}
	for i := 1; i < len(sizes); i++ {
		if p.EncryptCost(sizes[i]) <= p.EncryptCost(sizes[i-1]) {
			t.Errorf("encrypt cost not increasing at %d", sizes[i])
		}
		if p.MemcpyCost(sizes[i]) <= p.MemcpyCost(sizes[i-1]) {
			t.Errorf("memcpy cost not increasing at %d", sizes[i])
		}
		if p.RemoteWriteCost(sizes[i]) <= p.RemoteWriteCost(sizes[i-1]) {
			t.Errorf("remote write cost not increasing at %d", sizes[i])
		}
	}
}

func TestTableILinks(t *testing.T) {
	links := TableILinks()
	if len(links) != 4 {
		t.Fatalf("Table I has %d rows, want 4", len(links))
	}
	want := map[string]string{
		"PCI-E 5.0": "CPU-Device",
		"UCI-E":     "Chiplets",
		"RDMA":      "Remote Memory",
		"NVLINK":    "GPU",
	}
	for _, l := range links {
		if want[l.Method] != l.Connection {
			t.Errorf("link %q connection %q, want %q", l.Method, l.Connection, want[l.Method])
		}
		if l.BytesPerS <= 0 {
			t.Errorf("link %q has no data rate", l.Method)
		}
	}
}
