package trace

import (
	"bytes"
	"strings"
	"testing"

	"mmt/internal/sim"
)

// TestNilSafety: every operation on the disabled (nil) forms is a no-op
// that neither panics nor records.
func TestNilSafety(t *testing.T) {
	var s *Sink
	p := s.Probe("alice")
	if p != nil {
		t.Fatalf("nil sink returned non-nil probe")
	}
	if p.Enabled() {
		t.Fatalf("nil probe reports enabled")
	}
	p.Count(CtrMACVerifies, 3)
	p.AddCycles(PhaseMAC, 10)
	sp := p.Begin(PhaseSend, 1)
	sp.End(2)
	p.Span(PhaseRecv, 1, 2)
	s.Reset()
	if got := s.Events(); got != nil {
		t.Fatalf("nil sink events = %v", got)
	}
	if m := s.Snapshot(); len(m.Procs) != 0 {
		t.Fatalf("nil sink snapshot has procs")
	}
	var buf bytes.Buffer
	if err := s.WriteChromeTrace(&buf); err != nil {
		t.Fatalf("nil sink export: %v", err)
	}
	if buf.String() != "[]\n" {
		t.Fatalf("nil sink export = %q", buf.String())
	}
	if !strings.Contains(s.Summary(), "disabled") {
		t.Fatalf("nil sink summary = %q", s.Summary())
	}
}

// TestZeroAllocDisabled: the disabled probe's hot-path methods allocate
// nothing — this is the contract that lets the engine instrument its
// per-access path unconditionally.
func TestZeroAllocDisabled(t *testing.T) {
	var p *Probe
	allocs := testing.AllocsPerRun(1000, func() {
		p.Count(CtrNodeCacheHits, 1)
		p.AddCycles(PhaseTreeWalk, 8)
		p.Begin(PhaseData, 0).End(0)
	})
	if allocs != 0 {
		t.Fatalf("disabled probe allocates %v per op", allocs)
	}
}

// TestCountersAndCycles: accumulators sum per process and across the
// snapshot, and snapshots are copies.
func TestCountersAndCycles(t *testing.T) {
	s := NewSink()
	a := s.Probe("alice")
	b := s.Probe("bob")
	a.Count(CtrMACVerifies, 2)
	a.Count(CtrMACVerifies, 3)
	b.Count(CtrMACVerifies, 5)
	a.AddCycles(PhaseMAC, 40)
	b.AddCycles(PhaseMAC, 8)
	b.AddCycles(PhaseData, 110)

	m := s.Snapshot()
	if got := m.Counter(CtrMACVerifies); got != 10 {
		t.Fatalf("Counter total = %d, want 10", got)
	}
	if got := m.PhaseCycles(PhaseMAC); got != 48 {
		t.Fatalf("PhaseCycles(mac) = %v, want 48", got)
	}
	if got := m.TotalCycles(); got != 158 {
		t.Fatalf("TotalCycles = %v, want 158", got)
	}
	// Sorted by name.
	if len(m.Procs) != 2 || m.Procs[0].Proc != "alice" || m.Procs[1].Proc != "bob" {
		t.Fatalf("procs = %+v", m.Procs)
	}
	// Snapshot is a copy: mutating it does not affect the sink.
	m.Procs[0].Counters[CtrMACVerifies] = 999
	if got := s.Snapshot().Procs[0].Counters[CtrMACVerifies]; got != 5 {
		t.Fatalf("snapshot aliased sink state: %d", got)
	}

	// Probe identity: asking again for the same name hits the same record.
	s.Probe("alice").Count(CtrMACVerifies, 1)
	if got := s.Snapshot().Procs[0].Counters[CtrMACVerifies]; got != 6 {
		t.Fatalf("re-probed counter = %d, want 6", got)
	}

	s.Reset()
	if got := s.Snapshot().Counter(CtrMACVerifies); got != 0 {
		t.Fatalf("reset left counter = %d", got)
	}
	// Probes handed out before Reset still work.
	a.Count(CtrMACVerifies, 7)
	if got := s.Snapshot().Counter(CtrMACVerifies); got != 7 {
		t.Fatalf("post-reset probe counter = %d", got)
	}
}

// TestSpans: Begin/End and Span record events with clamped intervals.
func TestSpans(t *testing.T) {
	s := NewSink()
	p := s.Probe("alice")
	sp := p.Begin(PhaseSend, sim.Time(1e-6))
	sp.End(sim.Time(3e-6))
	p.Span(PhaseRecv, sim.Time(5e-6), sim.Time(4e-6)) // inverted: clamps

	evs := s.Events()
	if len(evs) != 2 {
		t.Fatalf("events = %d, want 2", len(evs))
	}
	if evs[0].Phase != PhaseSend || evs[0].Begin != sim.Time(1e-6) || evs[0].End != sim.Time(3e-6) {
		t.Fatalf("event 0 = %+v", evs[0])
	}
	if evs[1].End != evs[1].Begin {
		t.Fatalf("inverted span not clamped: %+v", evs[1])
	}
	// Events() returns a copy.
	evs[0].Phase = PhaseApp
	if s.Events()[0].Phase != PhaseSend {
		t.Fatalf("Events aliased sink state")
	}
}

// TestChromeTraceShape: the export is a JSON array with process
// metadata, X spans in microseconds, and C counter events; identical
// sinks export byte-identically.
func TestChromeTraceShape(t *testing.T) {
	build := func() *Sink {
		s := NewSink()
		b := s.Probe("bob")
		a := s.Probe("alice") // registered second; export must sort
		a.Span(PhaseSend, sim.Time(1e-6), sim.Time(3.5e-6))
		b.Count(CtrWireBytesClosure, 4096)
		b.Span(PhaseRecv, sim.Time(2e-6), sim.Time(4e-6))
		return s
	}
	var out bytes.Buffer
	if err := build().WriteChromeTrace(&out); err != nil {
		t.Fatalf("export: %v", err)
	}
	got := out.String()
	for _, want := range []string{
		`"ph":"M"`, `"name":"alice"`, `"name":"bob"`,
		`"ph":"X"`, `"name":"send"`, `"ts":1.000,"dur":2.500`,
		`"ph":"C"`, `"wire-bytes-closure":4096`,
	} {
		if !strings.Contains(got, want) {
			t.Fatalf("export missing %q:\n%s", want, got)
		}
	}
	// alice sorts first → pid 1; her span must carry pid 1.
	if !strings.Contains(got, `{"name":"send","cat":"mmt","ph":"X","pid":1,`) {
		t.Fatalf("alice span not pid 1:\n%s", got)
	}
	var again bytes.Buffer
	if err := build().WriteChromeTrace(&again); err != nil {
		t.Fatalf("re-export: %v", err)
	}
	if !bytes.Equal(out.Bytes(), again.Bytes()) {
		t.Fatalf("identical sinks exported differently")
	}
}

// TestSummary lists only nonzero phases/counters per process.
func TestSummary(t *testing.T) {
	s := NewSink()
	p := s.Probe("alice")
	p.AddCycles(PhaseMAC, 48)
	p.Count(CtrMACVerifies, 6)
	sum := s.Summary()
	for _, want := range []string{"== alice ==", "mac", "48", "mac-verifies", "6", "TOTAL"} {
		if !strings.Contains(sum, want) {
			t.Fatalf("summary missing %q:\n%s", want, sum)
		}
	}
	if strings.Contains(sum, "encrypt") {
		t.Fatalf("summary lists zero-valued phase:\n%s", sum)
	}
	if NewSink().Summary() != "trace: no activity recorded\n" {
		t.Fatalf("empty summary = %q", NewSink().Summary())
	}
}

// TestNames: every enum value has a distinct human-readable name (the
// exporter and the sidecar schema rely on this).
func TestNames(t *testing.T) {
	seen := map[string]bool{}
	for ph := Phase(0); ph < NumPhases; ph++ {
		n := ph.String()
		if n == "" || strings.HasPrefix(n, "Phase(") || seen[n] {
			t.Fatalf("bad phase name %q for %d", n, ph)
		}
		seen[n] = true
	}
	for c := Counter(0); c < NumCounters; c++ {
		n := c.String()
		if n == "" || strings.HasPrefix(n, "Counter(") || seen[n] {
			t.Fatalf("bad counter name %q for %d", n, c)
		}
		seen[n] = true
	}
}
