package analyzers

import (
	"go/ast"
	"go/types"
	"strings"
)

// CheckVerify forbids discarding the result of an authentication check.
// An ignored Verify*/Open/Unseal error turns a cryptographic rejection
// into silent acceptance — exactly the bug class that would invalidate
// the tamper and replay experiments while leaving every test green.
var CheckVerify = &Analyzer{
	Name: "checkverify",
	ID:   "MMT003",
	Doc: "error/bool results of Verify* functions, AEAD Open and Unseal must " +
		"not be discarded (no bare call statements, no assignment to _)",
	Run: runCheckVerify,
}

func runCheckVerify(pass *Pass) error {
	if !inScope(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.ExprStmt:
				if call, ok := st.X.(*ast.CallExpr); ok {
					checkDiscardedCall(pass, call, "result discarded")
				}
			case *ast.GoStmt:
				checkDiscardedCall(pass, st.Call, "result discarded by go statement")
			case *ast.DeferStmt:
				checkDiscardedCall(pass, st.Call, "result discarded by defer statement")
			case *ast.AssignStmt:
				checkBlankAssign(pass, st)
			}
			return true
		})
	}
	return nil
}

// isAuthCheck reports whether fn is an authentication-check function
// whose result encodes accept/reject: any Verify*, a method named
// Unseal, or crypto/cipher.AEAD.Open.
func isAuthCheck(fn *types.Func) bool {
	switch {
	case strings.HasPrefix(fn.Name(), "Verify"):
		return true
	case fn.Name() == "Unseal":
		return fn.Signature().Recv() != nil
	case fn.Name() == "Open":
		recv := fn.Signature().Recv()
		return recv != nil && types.TypeString(recv.Type(), nil) == "crypto/cipher.AEAD"
	}
	return false
}

func checkDiscardedCall(pass *Pass, call *ast.CallExpr, how string) {
	fn := funcObj(pass.TypesInfo, call)
	if fn == nil || !isAuthCheck(fn) {
		return
	}
	pass.Reportf(call.Pos(), "%s of authentication check %s: a rejected "+
		"input would be silently accepted", how, fn.Name())
}

// checkBlankAssign flags `v, _ := aead.Open(...)`-style statements where
// the verdict-carrying result (an error or bool) lands in the blank
// identifier.
func checkBlankAssign(pass *Pass, st *ast.AssignStmt) {
	if len(st.Rhs) != 1 {
		return
	}
	call, ok := ast.Unparen(st.Rhs[0]).(*ast.CallExpr)
	if !ok {
		return
	}
	fn := funcObj(pass.TypesInfo, call)
	if fn == nil || !isAuthCheck(fn) {
		return
	}
	results := fn.Signature().Results()
	if results.Len() != len(st.Lhs) {
		return
	}
	for i := 0; i < results.Len(); i++ {
		id, ok := st.Lhs[i].(*ast.Ident)
		if !ok || id.Name != "_" {
			continue
		}
		rt := results.At(i).Type()
		if t, ok := rt.(*types.Basic); ok && t.Kind() == types.Bool {
			pass.Reportf(id.Pos(), "bool verdict of authentication check %s assigned to _", fn.Name())
		} else if types.Identical(rt, types.Universe.Lookup("error").Type()) {
			pass.Reportf(id.Pos(), "error result of authentication check %s assigned to _", fn.Name())
		}
	}
}
