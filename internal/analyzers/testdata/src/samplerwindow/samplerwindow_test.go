package samplerwindow

import (
	"mmt/internal/trace"
)

// Test files are out of scope: a validation test may deliberately build
// a bad config to assert EnableSeries rejects it, and the analyzer must
// stay silent here.
func testOnlyBadWindow() trace.SeriesConfig {
	return trace.SeriesConfig{WindowCycles: 1000}
}
