package core

import (
	"bytes"
	"testing"
	"testing/quick"

	"mmt/internal/crypt"
)

func sampleClosure() *Closure {
	return &Closure{
		Mode:        OwnershipTransfer,
		GUAddrHint:  0xABCDEF,
		CounterHint: 42,
		SealedRoot:  []byte{1, 2, 3, 4},
		TreeNodes:   bytes.Repeat([]byte{9}, 100),
		LineMACs:    []uint64{11, 22, 33},
		Data:        bytes.Repeat([]byte{7}, 256),
	}
}

func TestClosureEncodeDecodeRoundTrip(t *testing.T) {
	c := sampleClosure()
	wire := c.Encode()
	if len(wire) != c.WireSize() {
		t.Fatalf("encoded %d bytes, WireSize says %d", len(wire), c.WireSize())
	}
	got, err := DecodeClosure(wire)
	if err != nil {
		t.Fatal(err)
	}
	if got.Mode != c.Mode || got.GUAddrHint != c.GUAddrHint || got.CounterHint != c.CounterHint {
		t.Fatal("header fields corrupted")
	}
	if !bytes.Equal(got.SealedRoot, c.SealedRoot) || !bytes.Equal(got.TreeNodes, c.TreeNodes) || !bytes.Equal(got.Data, c.Data) {
		t.Fatal("chunks corrupted")
	}
	if len(got.LineMACs) != 3 || got.LineMACs[1] != 22 {
		t.Fatal("line MACs corrupted")
	}
}

func TestMetadataSize(t *testing.T) {
	c := sampleClosure()
	if got := c.MetadataSize(); got != c.WireSize()-len(c.Data) {
		t.Fatalf("MetadataSize = %d", got)
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	cases := map[string][]byte{
		"empty":     {},
		"short":     []byte("MM"),
		"bad magic": append([]byte("XXXX"), make([]byte, 40)...),
	}
	for name, wire := range cases {
		if _, err := DecodeClosure(wire); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}

	good := sampleClosure().Encode()
	mut := append([]byte(nil), good...)
	mut[4] = 99 // version
	if _, err := DecodeClosure(mut); err == nil {
		t.Error("bad version accepted")
	}
	mut = append([]byte(nil), good...)
	mut[5] = 77 // mode
	if _, err := DecodeClosure(mut); err == nil {
		t.Error("bad mode accepted")
	}
	if _, err := DecodeClosure(good[:len(good)-1]); err == nil {
		t.Error("truncated closure accepted")
	}
	if _, err := DecodeClosure(append(append([]byte(nil), good...), 0)); err == nil {
		t.Error("trailing bytes accepted")
	}
}

func TestDecodeRejectsOversizedChunkLength(t *testing.T) {
	wire := sampleClosure().Encode()
	// Corrupt the first chunk length (sealed root) to exceed the buffer.
	wire[headerSize] = 0xFF
	wire[headerSize+1] = 0xFF
	wire[headerSize+2] = 0xFF
	wire[headerSize+3] = 0x7F
	if _, err := DecodeClosure(wire); err == nil {
		t.Fatal("oversized chunk length accepted")
	}
}

func TestDecodeNeverPanics(t *testing.T) {
	f := func(wire []byte) bool {
		_, _ = DecodeClosure(wire) // must not panic
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
	// Also fuzz mutations of a valid closure.
	good := sampleClosure().Encode()
	g := func(pos uint16, val byte) bool {
		mut := append([]byte(nil), good...)
		mut[int(pos)%len(mut)] = val
		_, _ = DecodeClosure(mut)
		return true
	}
	if err := quick.Check(g, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestSealUnsealRootRoundTrip(t *testing.T) {
	e := crypt.NewEngine(crypt.KeyFromBytes([]byte("root-key")))
	c := sampleClosure()
	r := rootPlain{GUAddr: c.GUAddrHint, Counter: c.CounterHint, Mode: c.Mode}
	sealRoot(e, c, r)
	got, err := unsealRoot(e, c)
	if err != nil {
		t.Fatal(err)
	}
	if got != r {
		t.Fatalf("unsealed %+v, want %+v", got, r)
	}
}

func TestUnsealRootRejectsHintMismatch(t *testing.T) {
	e := crypt.NewEngine(crypt.KeyFromBytes([]byte("root-key")))
	c := sampleClosure()
	sealRoot(e, c, rootPlain{GUAddr: c.GUAddrHint, Counter: c.CounterHint, Mode: c.Mode})
	// An attacker who could somehow re-seal with mismatching hints would
	// still be caught; here we simulate by changing the hint after sealing
	// (which also breaks the AAD, so ErrAuth fires first — both paths are
	// rejections).
	c.GUAddrHint++
	if _, err := unsealRoot(e, c); err == nil {
		t.Fatal("hint mismatch accepted")
	}
}

func TestUnsealRootWrongEngine(t *testing.T) {
	e := crypt.NewEngine(crypt.KeyFromBytes([]byte("root-key")))
	c := sampleClosure()
	sealRoot(e, c, rootPlain{GUAddr: c.GUAddrHint, Counter: c.CounterHint, Mode: c.Mode})
	e2 := crypt.NewEngine(crypt.KeyFromBytes([]byte("other")))
	if _, err := unsealRoot(e2, c); err == nil {
		t.Fatal("wrong key accepted")
	}
}

func TestCheckTransitionTable(t *testing.T) {
	allowed := []struct{ from, to State }{
		{StateInvalid, StateValid},
		{StateInvalid, StateWaiting},
		{StateValid, StateSending},
		{StateValid, StateInvalid},
		{StateSending, StateInvalid},
		{StateSending, StateValid},
		{StateWaiting, StateValid},
		{StateWaiting, StateInvalid},
	}
	for _, tr := range allowed {
		if err := checkTransition(tr.from, tr.to); err != nil {
			t.Errorf("%v -> %v rejected: %v", tr.from, tr.to, err)
		}
	}
	forbidden := []struct{ from, to State }{
		{StateInvalid, StateSending},
		{StateValid, StateWaiting},
		{StateWaiting, StateSending},
		{StateSending, StateWaiting},
	}
	for _, tr := range forbidden {
		if err := checkTransition(tr.from, tr.to); err == nil {
			t.Errorf("%v -> %v allowed", tr.from, tr.to)
		}
	}
}
