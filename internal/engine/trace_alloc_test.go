package engine

import (
	"testing"

	"mmt/internal/trace"
)

// TestAccessZeroAllocTracingDisabled enforces the trace layer's core
// contract on the engine hot path: with tracing disabled (the default
// nil probe) a warmed Access costs zero heap allocations, so the
// instrumentation is free when off.
func TestAccessZeroAllocTracingDisabled(t *testing.T) {
	c := testSetup(t)
	fill(c, 0, 1)
	if err := c.Enable(0, testKey, 0x11, 0); err != nil {
		t.Fatal(err)
	}
	// Warm the node cache and root table so steady-state accesses stay
	// on the hit path.
	for i := 0; i < 64; i++ {
		c.Access(0, i%c.geo.Lines(), i%2 == 0)
	}
	line := 0
	allocs := testing.AllocsPerRun(200, func() {
		c.Access(0, line, true)
		line = (line + 1) % c.geo.Lines()
	})
	if allocs != 0 {
		t.Fatalf("Access allocates %.1f objects/op with tracing disabled, want 0", allocs)
	}
}

// benchAccess measures the steady-state Access path; with a nil probe
// (tracing disabled) it must report 0 allocs/op.
func benchAccess(b *testing.B, sink *trace.Sink) {
	c := testSetup(b)
	fill(c, 0, 1)
	if err := c.Enable(0, testKey, 0x11, 0); err != nil {
		b.Fatal(err)
	}
	c.SetTrace(sink.Probe("bench"))
	for i := 0; i < 64; i++ {
		c.Access(0, i%c.geo.Lines(), i%2 == 0)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(0, i%c.geo.Lines(), i%2 == 0)
	}
}

func BenchmarkAccessTracingDisabled(b *testing.B) { benchAccess(b, nil) }

func BenchmarkAccessTracingEnabled(b *testing.B) { benchAccess(b, trace.NewSink()) }

// TestAccessTracedMatchesUntraced: attaching a probe must not change
// the cost model — only record it. The traced phase totals must account
// for exactly the charged cycles.
func TestAccessTracedMatchesUntraced(t *testing.T) {
	run := func(sink *trace.Sink) *Controller {
		c := testSetup(t)
		fill(c, 0, 1)
		if err := c.Enable(0, testKey, 0x11, 0); err != nil {
			t.Fatal(err)
		}
		c.ResetStats()
		c.SetTrace(sink.Probe("ctl"))
		for i := 0; i < 500; i++ {
			c.Access(0, (i*7)%c.geo.Lines(), i%3 == 0)
		}
		return c
	}
	plain := run(nil)
	sink := trace.NewSink()
	traced := run(sink)
	if plain.Stats().Cycles != traced.Stats().Cycles {
		t.Fatalf("tracing changed the cost model: %v vs %v cycles",
			plain.Stats().Cycles, traced.Stats().Cycles)
	}
	m := sink.Snapshot()
	if got := m.TotalCycles(); got != traced.Stats().Cycles {
		t.Fatalf("phase totals %v cycles != charged %v cycles", got, traced.Stats().Cycles)
	}
	// The per-op latency histograms mirror the same charge points: every
	// charged access recorded a sample, and the sampled cycles sum to the
	// charged total (reads + writes cover the whole access path; the
	// verify histogram re-counts the verification share of those samples).
	reads, writes := m.Op(trace.OpLocalRead), m.Op(trace.OpLocalWrite)
	if reads.Count == 0 || writes.Count == 0 {
		t.Fatalf("histograms empty: reads %d writes %d", reads.Count, writes.Count)
	}
	if got := reads.Sum + writes.Sum; got != traced.Stats().Cycles {
		t.Fatalf("histogram sums %v cycles != charged %v cycles", got, traced.Stats().Cycles)
	}
	if v := m.Op(trace.OpVerify); v.Count == 0 || v.Sum > traced.Stats().Cycles {
		t.Fatalf("verify histogram implausible: %+v", v)
	}
}
