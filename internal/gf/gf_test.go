package gf

import (
	"testing"
	"testing/quick"
)

func TestAddIsXor(t *testing.T) {
	if Add(0b1010, 0b0110) != 0b1100 {
		t.Fatal("Add is not XOR")
	}
	f := func(a uint64) bool { return Add(a, a) == 0 && Add(a, 0) == a }
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMulIdentityAndZero(t *testing.T) {
	f := func(a uint64) bool {
		return Mul(a, 1) == a && Mul(1, a) == a && Mul(a, 0) == 0 && Mul(0, a) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMulSmallKnownValues(t *testing.T) {
	// In GF(2)[x], (x+1)*(x+1) = x^2 + 1 (cross terms cancel).
	if got := Mul(0b11, 0b11); got != 0b101 {
		t.Fatalf("(x+1)^2 = %#b, want 0b101", got)
	}
	// x^3 * x^4 = x^7, no reduction needed.
	if got := Mul(1<<3, 1<<4); got != 1<<7 {
		t.Fatalf("x^3*x^4 = %#x, want x^7", got)
	}
}

func TestMulReduction(t *testing.T) {
	// x^63 * x = x^64 ≡ x^4 + x^3 + x + 1 (mod reduction polynomial).
	if got := Mul(1<<63, 2); got != 0x1B {
		t.Fatalf("x^63 * x = %#x, want 0x1B", got)
	}
	// x^63 * x^2 = x^65 ≡ x*(x^4+x^3+x+1) = x^5+x^4+x^2+x.
	if got := Mul(1<<63, 4); got != 0x36 {
		t.Fatalf("x^63 * x^2 = %#x, want 0x36", got)
	}
}

func TestMulCommutative(t *testing.T) {
	f := func(a, b uint64) bool { return Mul(a, b) == Mul(b, a) }
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMulAssociative(t *testing.T) {
	f := func(a, b, c uint64) bool { return Mul(Mul(a, b), c) == Mul(a, Mul(b, c)) }
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMulDistributesOverAdd(t *testing.T) {
	f := func(a, b, c uint64) bool { return Mul(a, Add(b, c)) == Add(Mul(a, b), Mul(a, c)) }
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPow(t *testing.T) {
	f := func(a uint64) bool {
		return Pow(a, 0) == 1 && Pow(a, 1) == a && Pow(a, 2) == Mul(a, a) &&
			Pow(a, 5) == Mul(Pow(a, 2), Pow(a, 3))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDot(t *testing.T) {
	a := []uint64{1, 2, 3}
	b := []uint64{5, 6, 7}
	want := Mul(1, 5) ^ Mul(2, 6) ^ Mul(3, 7)
	if got := Dot(a, b); got != want {
		t.Fatalf("Dot = %#x, want %#x", got, want)
	}
	// Shorter slice truncates.
	if got := Dot(a[:2], b); got != Mul(1, 5)^Mul(2, 6) {
		t.Fatal("Dot does not truncate to shorter slice")
	}
	if got := Dot(nil, b); got != 0 {
		t.Fatal("Dot(nil, b) != 0")
	}
}

func TestEvalHorner(t *testing.T) {
	// p(x) = 3 + 2x + x^2 at a random point must match the naive sum.
	f := func(x uint64) bool {
		naive := uint64(3) ^ Mul(2, x) ^ Mul(1, Mul(x, x))
		return Eval([]uint64{3, 2, 1}, x) == naive
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	if Eval(nil, 12345) != 0 {
		t.Fatal("Eval of empty polynomial should be 0")
	}
}

// TestEvalDetectsSingleCoefficientChange is the universal-hash property the
// tree MACs rely on: changing any coefficient changes the evaluation at a
// fixed secret point with overwhelming probability. We test it exactly:
// Eval(c) == Eval(c') with c != c' iff x is a root of the nonzero
// difference polynomial, which for a degree-<8 polynomial has at most 7
// roots — vanishingly unlikely for random x, so require inequality.
func TestEvalDetectsSingleCoefficientChange(t *testing.T) {
	x := uint64(0x9E3779B97F4A7C15)
	coeffs := []uint64{11, 22, 33, 44, 55, 66, 77, 88}
	base := Eval(coeffs, x)
	for i := range coeffs {
		mod := make([]uint64, len(coeffs))
		copy(mod, coeffs)
		mod[i] ^= 0x1
		if Eval(mod, x) == base {
			t.Fatalf("flipping coefficient %d did not change Eval", i)
		}
	}
}

func TestMulAgainstSlowReference(t *testing.T) {
	// Slow shift-and-reduce reference multiplier.
	slow := func(a, b uint64) uint64 {
		var acc uint64
		for i := 0; i < 64; i++ {
			if b&(1<<uint(i)) != 0 {
				// acc ^= a * x^i with stepwise reduction.
				t := a
				for j := 0; j < i; j++ {
					carry := t&(1<<63) != 0
					t <<= 1
					if carry {
						t ^= 0x1B
					}
				}
				acc ^= t
			}
		}
		return acc
	}
	f := func(a, b uint64) bool { return Mul(a, b) == slow(a, b) }
	cfg := &quick.Config{MaxCount: 50}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkMul(b *testing.B) {
	x, y := uint64(0xDEADBEEFCAFEBABE), uint64(0x0123456789ABCDEF)
	for i := 0; i < b.N; i++ {
		x = Mul(x, y)
	}
	sink = x
}

var sink uint64

func TestMulxMatchesMul(t *testing.T) {
	x := uint64(0x9E3779B97F4A7C15)
	m := NewMulx(x)
	f := func(a uint64) bool { return m.Mul(a) == Mul(a, x) }
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	if m.Mul(0) != 0 {
		t.Fatal("Mulx.Mul(0) != 0")
	}
}

func TestMulxEvalMatchesEval(t *testing.T) {
	x := uint64(0xDEADBEEF12345678)
	m := NewMulx(x)
	f := func(coeffs []uint64) bool { return m.Eval(coeffs) == Eval(coeffs, x) }
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkMulx(b *testing.B) {
	m := NewMulx(0x9E3779B97F4A7C15)
	x := uint64(0x0123456789ABCDEF)
	for i := 0; i < b.N; i++ {
		x = m.Mul(x)
	}
	sink = x
}
