package gf

// oracle.go retains the original bit-loop GF(2^64) implementation as the
// differential-test oracle for the table-driven fast path in gf.go. The
// shared reduction tables (red4, red8) are derived FROM these functions at
// init, and the KAT + property tests in gf_kat_test.go cross-check the
// fast path against them, so a table-generation bug cannot silently
// change MAC values.
//
// Nothing outside table construction and tests may call these: they are
// 64-iteration bit loops, exactly the hot-path cost the table-driven
// rewrite removed.

// clmulSlow computes the 128-bit carry-less product of a and b, returned
// as (hi, lo). This is the retained bit-loop oracle.
func clmulSlow(a, b uint64) (hi, lo uint64) {
	for i := 0; i < 64 && b != 0; i++ {
		if b&1 != 0 {
			lo ^= a << uint(i)
			if i > 0 {
				hi ^= a >> uint(64-i)
			}
		}
		b >>= 1
	}
	return hi, lo
}

// reduceSlow folds a 128-bit carry-less product back into GF(2^64).
func reduceSlow(hi, lo uint64) uint64 {
	// Each bit x^(64+k) in hi reduces to x^k * (x^4 + x^3 + x + 1).
	// Two folding rounds suffice because reduction has degree 4 < 64-4.
	for i := 0; i < 2 && hi != 0; i++ {
		h, l := clmulSlow(hi, reduction)
		hi = h
		lo ^= l
	}
	return lo
}

// mulSlow is the original Mul: bit-loop carry-less multiply plus
// fold-based reduction. It defines the field; Mul must agree with it on
// every input (TestMulMatchesOracle).
func mulSlow(a, b uint64) uint64 {
	return reduceSlow(clmulSlow(a, b))
}

// evalSlow is the original Horner evaluation over mulSlow, kept as the
// oracle for Eval and for the engine's Mulx tables.
func evalSlow(coeffs []uint64, x uint64) uint64 {
	var acc uint64
	for i := len(coeffs) - 1; i >= 0; i-- {
		acc = mulSlow(acc, x) ^ coeffs[i]
	}
	return acc
}
