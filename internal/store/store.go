package store

import (
	"fmt"
)

// File names inside a store directory.
const (
	DataFileName   = "data.mmt"
	CommitFileName = "commit.mmt"
)

// batchBytes is the staging threshold: appended records are buffered and
// written to the data file in batches of at least this size (sequential
// I/O, as in the mpt disk design), with a final flush at commit time.
const batchBytes = 64 << 10

// Store is an open mmt-store/v1: an append-only record log (data.mmt)
// pinned by a dual-slot commit file (commit.mmt). The data file is never
// compacted in v1 — every committed byte stays where the previous commit
// record saw it, which is what makes "old state or new state, never torn"
// a purely local property of the commit slots.
//
// A Store is not safe for concurrent use; the cluster layer serializes
// checkpoints.
type Store struct {
	fs        FS
	data      File
	commit    File
	committed CommitRecord
	hasCommit bool
	staged    []byte
	appendOff int64 // next data-file write offset (>= committed.DataLen)
}

// Open opens (or creates) a store in fs and recovers its committed state:
// both commit slots are read, the valid one with the highest epoch wins,
// and appends resume from its committed data length — discarding any
// bytes a crashed run had flushed but never committed.
func Open(fsys FS) (*Store, error) {
	data, err := fsys.OpenFile(DataFileName)
	if err != nil {
		return nil, err
	}
	commit, err := fsys.OpenFile(CommitFileName)
	if err != nil {
		return nil, err
	}
	s := &Store{fs: fsys, data: data, commit: commit}

	dataSize, err := data.Size()
	if err != nil {
		return nil, err
	}
	commitSize, err := commit.Size()
	if err != nil {
		return nil, err
	}
	var slots [2 * CommitSlotSize]byte
	if n := commitSize; n > 0 {
		if n > int64(len(slots)) {
			n = int64(len(slots))
		}
		if _, err := commit.ReadAt(slots[:n], 0); err != nil {
			return nil, err
		}
	}
	for off := 0; off+CommitSlotSize <= len(slots); off += CommitSlotSize {
		cr, ok := decodeCommit(slots[off : off+CommitSlotSize])
		if !ok {
			continue
		}
		// A commit record is only trustworthy if the data it pins is all
		// present: dataLen beyond the file means the slot survived a crash
		// that lost data writes — impossible under the sync protocol, so
		// treat it as an invalid slot rather than torn data.
		if cr.DataLen < HeaderSize || cr.DataLen > uint64(dataSize) {
			continue
		}
		if !s.hasCommit || cr.Epoch > s.committed.Epoch {
			s.committed, s.hasCommit = cr, true
		}
	}

	if s.hasCommit {
		hdr := make([]byte, HeaderSize)
		if _, err := data.ReadAt(hdr, 0); err != nil {
			return nil, err
		}
		if err := checkHeader(hdr); err != nil {
			return nil, err
		}
		s.appendOff = int64(s.committed.DataLen)
	} else {
		// Fresh store (or a crash before the first commit, which is the
		// same thing): (re)write the header and start empty.
		h := header()
		if _, err := data.WriteAt(h[:], 0); err != nil {
			return nil, err
		}
		s.appendOff = HeaderSize
	}
	return s, nil
}

// HasCommit reports whether the store holds a committed state.
func (s *Store) HasCommit() bool { return s.hasCommit }

// Committed reports the recovered (or last written) commit record.
func (s *Store) Committed() (CommitRecord, error) {
	if !s.hasCommit {
		return CommitRecord{}, ErrNoCommit
	}
	return s.committed, nil
}

// Epoch reports the committed epoch (0 when nothing is committed yet).
func (s *Store) Epoch() uint64 {
	if !s.hasCommit {
		return 0
	}
	return s.committed.Epoch
}

// CommittedRecords reads and verifies every record inside the committed
// prefix of the data file, in append order.
func (s *Store) CommittedRecords() ([]Record, error) {
	if !s.hasCommit {
		return nil, ErrNoCommit
	}
	n := int(s.committed.DataLen) - HeaderSize
	if n == 0 {
		return nil, nil
	}
	buf := make([]byte, n)
	if _, err := s.data.ReadAt(buf, HeaderSize); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrTruncated, err)
	}
	return parseRecords(buf)
}

// Append stages one record for the next commit, flushing full batches to
// the data file as it goes. Staged and flushed bytes are invisible to
// readers until Commit.
func (s *Store) Append(r Record) error {
	s.staged = appendRecord(s.staged, r)
	if len(s.staged) >= batchBytes {
		return s.flush()
	}
	return nil
}

// flush writes the staged batch at the append offset.
func (s *Store) flush() error {
	if len(s.staged) == 0 {
		return nil
	}
	if _, err := s.data.WriteAt(s.staged, s.appendOff); err != nil {
		return err
	}
	s.appendOff += int64(len(s.staged))
	s.staged = s.staged[:0]
	return nil
}

// Commit makes everything appended so far durable and visible: flush the
// tail batch, fsync the data file, then write the next commit record into
// the alternate slot and fsync that. rootHash pins the state the records
// encode; reload verifies it. If Commit returns an error the previous
// committed state is still intact.
func (s *Store) Commit(rootHash [32]byte) (CommitRecord, error) {
	if err := s.flush(); err != nil {
		return CommitRecord{}, err
	}
	if err := s.data.Sync(); err != nil {
		return CommitRecord{}, err
	}
	cr := CommitRecord{Epoch: s.committed.Epoch + 1, DataLen: uint64(s.appendOff), RootHash: rootHash}
	enc := cr.encode()
	slot := int64(cr.Epoch%2) * CommitSlotSize
	if _, err := s.commit.WriteAt(enc[:], slot); err != nil {
		return CommitRecord{}, err
	}
	if err := s.commit.Sync(); err != nil {
		return CommitRecord{}, err
	}
	s.committed, s.hasCommit = cr, true
	return cr, nil
}

// Close closes the underlying files. Staged, uncommitted records are
// dropped — exactly what a crash would do.
func (s *Store) Close() error {
	err1 := s.data.Close()
	err2 := s.commit.Close()
	if err1 != nil {
		return err1
	}
	return err2
}
