package netsim

import (
	"bytes"
	"testing"

	"mmt/internal/sim"
)

func twoNodes(t *testing.T, latency sim.Time) (*Network, *Endpoint, *Endpoint) {
	t.Helper()
	n := NewNetwork(latency)
	a, err := n.Attach("a", sim.NewClock(0))
	if err != nil {
		t.Fatal(err)
	}
	b, err := n.Attach("b", sim.NewClock(0))
	if err != nil {
		t.Fatal(err)
	}
	return n, a, b
}

func TestSendRecvRoundTrip(t *testing.T) {
	_, a, b := twoNodes(t, 0)
	a.Send("b", KindData, []byte("hello"))
	m, ok := b.Recv()
	if !ok {
		t.Fatal("no message delivered")
	}
	if m.From != "a" || m.To != "b" || m.Kind != KindData || !bytes.Equal(m.Payload, []byte("hello")) {
		t.Fatalf("message corrupted: %+v", m)
	}
	if _, ok := b.Recv(); ok {
		t.Fatal("phantom second message")
	}
}

func TestPayloadCopied(t *testing.T) {
	_, a, b := twoNodes(t, 0)
	p := []byte("mutable")
	a.Send("b", KindData, p)
	p[0] = 'X'
	m, _ := b.Recv()
	if m.Payload[0] != 'm' {
		t.Fatal("payload aliases sender buffer")
	}
}

func TestLatencyAdvancesReceiverClock(t *testing.T) {
	_, a, b := twoNodes(t, 5e-3)
	a.Clock().Advance(1e-3)
	a.Send("b", KindData, []byte("x"))
	m, _ := b.Recv()
	if got := float64(m.ArriveAt); got != 6e-3 {
		t.Fatalf("ArriveAt = %v, want 6ms", got)
	}
	if b.Clock().Now() < 6e-3 {
		t.Fatalf("receiver clock %v, want >= 6ms", b.Clock().Now())
	}
}

func TestReceiverClockNotRewound(t *testing.T) {
	_, a, b := twoNodes(t, 1e-3)
	b.Clock().Advance(1) // receiver is far ahead
	a.Send("b", KindData, []byte("x"))
	b.Recv()
	if b.Clock().Now() != 1 {
		t.Fatalf("receiver clock moved backwards: %v", b.Clock().Now())
	}
}

func TestUnknownDestinationDropped(t *testing.T) {
	n, a, _ := twoNodes(t, 0)
	a.Send("nobody", KindData, []byte("x"))
	if n.Delivered() != 0 {
		t.Fatal("message to unknown endpoint delivered")
	}
}

func TestDuplicateAttachRejected(t *testing.T) {
	n := NewNetwork(0)
	if _, err := n.Attach("a", nil); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Attach("a", nil); err == nil {
		t.Fatal("duplicate endpoint accepted")
	}
}

func TestPending(t *testing.T) {
	_, a, b := twoNodes(t, 0)
	for i := 0; i < 3; i++ {
		a.Send("b", KindData, []byte{byte(i)})
	}
	if b.Pending() != 3 {
		t.Fatalf("Pending = %d", b.Pending())
	}
	// FIFO order.
	for i := 0; i < 3; i++ {
		m, ok := b.Recv()
		if !ok || m.Payload[0] != byte(i) {
			t.Fatalf("message %d out of order: %+v", i, m)
		}
	}
}

func TestKindString(t *testing.T) {
	if KindData.String() != "data" || KindClosure.String() != "closure" || KindControl.String() != "control" {
		t.Fatal("kind strings wrong")
	}
	if Kind(9).String() == "" {
		t.Fatal("unknown kind should print")
	}
}

func TestTamperer(t *testing.T) {
	n, a, b := twoNodes(t, 0)
	n.SetInterposer(&Tamperer{Kind: KindClosure, Offset: 2, Bit: 3})
	a.Send("b", KindClosure, []byte{0, 0, 0, 0})
	m, _ := b.Recv()
	if m.Payload[2] != 1<<3 {
		t.Fatalf("payload not tampered: %v", m.Payload)
	}
	// Other kinds untouched.
	a.Send("b", KindData, []byte{0, 0, 0, 0})
	m, _ = b.Recv()
	if m.Payload[2] != 0 {
		t.Fatal("tamperer hit wrong kind")
	}
}

func TestReplayer(t *testing.T) {
	n, a, b := twoNodes(t, 0)
	r := &Replayer{Kind: KindClosure}
	n.SetInterposer(r)
	a.Send("b", KindClosure, []byte("first"))
	if b.Pending() != 1 {
		t.Fatalf("first send delivered %d messages", b.Pending())
	}
	if !r.Recorded() {
		t.Fatal("replayer did not record")
	}
	a.Send("b", KindClosure, []byte("second"))
	if b.Pending() != 3 { // first + second + replayed-first
		t.Fatalf("after second send: %d pending, want 3", b.Pending())
	}
	b.Recv()
	b.Recv()
	m, _ := b.Recv()
	if !bytes.Equal(m.Payload, []byte("first")) {
		t.Fatalf("replayed payload = %q", m.Payload)
	}
}

func TestReorderer(t *testing.T) {
	n, a, b := twoNodes(t, 0)
	n.SetInterposer(&Reorderer{Kind: KindClosure})
	a.Send("b", KindClosure, []byte("A"))
	if b.Pending() != 0 {
		t.Fatal("reorderer leaked first message early")
	}
	a.Send("b", KindClosure, []byte("B"))
	m1, _ := b.Recv()
	m2, _ := b.Recv()
	if string(m1.Payload) != "B" || string(m2.Payload) != "A" {
		t.Fatalf("order = %q, %q, want B, A", m1.Payload, m2.Payload)
	}
}

func TestDropper(t *testing.T) {
	n, a, b := twoNodes(t, 0)
	n.SetInterposer(&Dropper{Kind: KindData, Every: 2})
	for i := 0; i < 4; i++ {
		a.Send("b", KindData, []byte{byte(i)})
	}
	if b.Pending() != 2 {
		t.Fatalf("dropper kept %d of 4, want 2", b.Pending())
	}
	// Every<=0 drops all.
	n.SetInterposer(&Dropper{Kind: KindData})
	a.Send("b", KindData, []byte("x"))
	if b.Pending() != 2 {
		t.Fatal("drop-all dropper leaked")
	}
}

func TestSpy(t *testing.T) {
	n, a, b := twoNodes(t, 0)
	spy := &Spy{}
	n.SetInterposer(spy)
	a.Send("b", KindData, []byte("secret-ciphertext"))
	if len(spy.Captured) != 1 || !bytes.Equal(spy.Captured[0], []byte("secret-ciphertext")) {
		t.Fatal("spy missed the packet")
	}
	if b.Pending() != 1 {
		t.Fatal("spy disturbed delivery")
	}
}

func TestChain(t *testing.T) {
	n, a, b := twoNodes(t, 0)
	spy := &Spy{}
	n.SetInterposer(Chain{spy, &Tamperer{Kind: KindData, Offset: 0, Bit: 0}})
	a.Send("b", KindData, []byte{0})
	m, _ := b.Recv()
	if m.Payload[0] != 1 {
		t.Fatal("chain did not tamper")
	}
	if len(spy.Captured) != 1 || spy.Captured[0][0] != 0 {
		t.Fatal("chain order wrong: spy should see pre-tamper bytes")
	}
}

func TestSetInterposerNilRestoresPassThrough(t *testing.T) {
	n, a, b := twoNodes(t, 0)
	n.SetInterposer(&Dropper{Kind: KindData})
	n.SetInterposer(nil)
	a.Send("b", KindData, []byte("x"))
	if b.Pending() != 1 {
		t.Fatal("nil interposer did not restore pass-through")
	}
}
