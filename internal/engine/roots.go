package engine

import "container/list"

// rootEntryBytes is the SoC storage per mounted MMT root (Table V's
// root-size accounting: an 8-byte counter).
const rootEntryBytes = 8

// rootTable models the SoC root storage (Table II: "MMT Roots in SoC",
// 8 KB on the Gem5 testbed). When more MMTs are live than the table holds,
// roots are mounted on demand, Penglai-style [25] — the scalability path
// §VII points to. A mount costs a meta-zone access plus a verification of
// the sealed root copy; the charge lives in Controller.chargePath.
type rootTable struct {
	capacity int // entries; <= 0 means unlimited (all roots pinned)
	lru      *list.List
	items    map[int]*list.Element // region -> element holding region
}

func newRootTable(capacity int) *rootTable {
	return &rootTable{capacity: capacity, lru: list.New(), items: make(map[int]*list.Element)}
}

// touch reports whether region's root was already mounted, mounting it
// (and evicting the LRU root) if not.
func (t *rootTable) touch(region int) (mounted bool) {
	if t.capacity <= 0 {
		return true
	}
	if el, ok := t.items[region]; ok {
		t.lru.MoveToFront(el)
		return true
	}
	for len(t.items) >= t.capacity {
		victim := t.lru.Back()
		if victim == nil {
			break
		}
		delete(t.items, victim.Value.(int))
		t.lru.Remove(victim)
	}
	t.items[region] = t.lru.PushFront(region)
	return false
}

// evict drops a region's root (MMT invalidated or migrated away).
func (t *rootTable) evict(region int) {
	if el, ok := t.items[region]; ok {
		t.lru.Remove(el)
		delete(t.items, region)
	}
}
