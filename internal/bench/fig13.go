package bench

import (
	"fmt"

	"mmt/internal/mapreduce"
	"mmt/internal/par"
	"mmt/internal/sim"
	"mmt/internal/tree"
	"mmt/internal/workload"
)

// Fig13aRow is one workload of Figure 13(a): MapReduce end-to-end
// performance, normalized to the non-secure baseline, when communication
// accounts for CommPercent of the baseline execution.
type Fig13aRow struct {
	CommPercent int
	// Normalized performance (baseline = 1.0; higher is better).
	Baseline, MMT, SecureChannel float64
	// MMTImprovement is 1 - mmtTime/secureTime, the paper's 12%~58% metric.
	MMTImprovement float64
}

// fig13Input is the WordCount corpus used for the comm-ratio sweep.
const fig13Input = 2 << 20

// Fig13a reproduces Figure 13(a) on the Intel profile: for each comm-n%
// point the map/reduce compute costs are scaled so that communication is
// n% of baseline execution, then all three shuffle modes run the same job.
func Fig13a() ([]Fig13aRow, error) {
	geo := tree.ForLevels(3)
	corpus := workload.Corpus(13, fig13Input)
	base := mapreduce.Config{
		Mappers: 2, Reducers: 2,
		Mode:        mapreduce.Baseline,
		Profile:     sim.IntelProfile(),
		Geometry:    geo,
		PoolRegions: 8,
	}
	// First find the baseline communication time with zero compute.
	probe := base
	probe.MapCyclesPerByte, probe.ReduceCyclesPerKV = 0, 0
	res, err := mapreduce.Run(probe, corpus, mapreduce.WordCountMapper, mapreduce.WordCountReducer)
	if err != nil {
		return nil, err
	}
	commTime := float64(res.Elapsed)

	// The comm-n% points are independent once commTime is known; each one
	// copies the config (including the profile) and runs its three modes.
	return par.Map(Workers(), []int{5, 10, 25, 50}, func(_ int, pct int) (Fig13aRow, error) {
		computeTime := commTime * float64(100-pct) / float64(pct)
		// Split the compute budget between map (per input byte) and reduce
		// (per KV pair); WordCount emits roughly one pair per 6 bytes.
		cfg := base
		prof := *base.Profile
		cfg.Profile = &prof
		cyclesTotal := computeTime * cfg.Profile.FreqHz
		cfg.MapCyclesPerByte = 0.6 * cyclesTotal / float64(len(corpus))
		cfg.ReduceCyclesPerKV = 0.4 * cyclesTotal / (float64(len(corpus)) / 6)

		var elapsed [3]float64
		for i, mode := range []mapreduce.Mode{mapreduce.Baseline, mapreduce.MMT, mapreduce.SecureChannel} {
			cfg.Mode = mode
			r, err := mapreduce.Run(cfg, corpus, mapreduce.WordCountMapper, mapreduce.WordCountReducer)
			if err != nil {
				return Fig13aRow{}, fmt.Errorf("fig13a comm-%d%% %v: %w", pct, mode, err)
			}
			elapsed[i] = float64(r.Elapsed)
		}
		return Fig13aRow{
			CommPercent:    pct,
			Baseline:       1.0,
			MMT:            elapsed[0] / elapsed[1],
			SecureChannel:  elapsed[0] / elapsed[2],
			MMTImprovement: 1 - elapsed[1]/elapsed[2],
		}, nil
	})
}

// RenderFig13a prints the normalized-performance series.
func RenderFig13a(rows []Fig13aRow) string {
	header := []string{"Workload", "Baseline", "MMT", "SecureChannel", "MMT vs SC"}
	var out [][]string
	for _, r := range rows {
		out = append(out, []string{
			fmt.Sprintf("comm-%d%%", r.CommPercent),
			fmt.Sprintf("%.3f", r.Baseline),
			fmt.Sprintf("%.3f", r.MMT),
			fmt.Sprintf("%.3f", r.SecureChannel),
			fmt.Sprintf("+%.0f%%", 100*r.MMTImprovement),
		})
	}
	return renderTable("Figure 13a: normalized MapReduce performance by comm share (paper: MMT ~= baseline, 12-58% over secure channel)", header, out)
}

// Fig13bRow is one cluster size of Figure 13(b): MnRn — n mappers and n
// reducers on 2n machines.
type Fig13bRow struct {
	N                   int
	Baseline, MMT       sim.Time
	SpeedupVsM1Baseline float64
	SpeedupVsM1MMT      float64
}

// Fig13b reproduces the scalability experiment: a fixed input processed by
// growing clusters. MMT delegation is message passing, so it must scale
// like the baseline ("MMT delegation will not break the scalability").
func Fig13b() ([]Fig13bRow, error) {
	geo := tree.ForLevels(3)
	corpus := workload.Corpus(14, 2<<20)
	run := func(mode mapreduce.Mode, n int) (sim.Time, error) {
		// Pool sizing: the largest (Zipf-skewed) partition is a large
		// fraction of one mapper's output; size per-link pools for it.
		pool := 2*len(corpus)/(n*geo.DataSize()) + 3
		cfg := mapreduce.Config{
			Mappers: n, Reducers: n,
			Mode:              mode,
			Profile:           sim.IntelProfile(),
			Geometry:          geo,
			PoolRegions:       pool,
			MapCyclesPerByte:  60,
			ReduceCyclesPerKV: 300,
		}
		r, err := mapreduce.Run(cfg, corpus, mapreduce.WordCountMapper, mapreduce.WordCountReducer)
		if err != nil {
			return 0, err
		}
		return r.Elapsed, nil
	}
	// The cluster sizes run independently (every run() builds a fresh
	// profile and cluster); the M1R1 reference times needed for the
	// speedup columns are filled in serially afterwards.
	type pair struct{ b, m sim.Time }
	times, err := par.Map(Workers(), []int{1, 2, 4, 8}, func(_ int, n int) (pair, error) {
		b, err := run(mapreduce.Baseline, n)
		if err != nil {
			return pair{}, fmt.Errorf("fig13b baseline n=%d: %w", n, err)
		}
		m, err := run(mapreduce.MMT, n)
		if err != nil {
			return pair{}, fmt.Errorf("fig13b mmt n=%d: %w", n, err)
		}
		return pair{b, m}, nil
	})
	if err != nil {
		return nil, err
	}
	base1, mmt1 := times[0].b, times[0].m
	var rows []Fig13bRow
	for i, n := range []int{1, 2, 4, 8} {
		rows = append(rows, Fig13bRow{
			N: n, Baseline: times[i].b, MMT: times[i].m,
			SpeedupVsM1Baseline: float64(base1) / float64(times[i].b),
			SpeedupVsM1MMT:      float64(mmt1) / float64(times[i].m),
		})
	}
	return rows, nil
}

// RenderFig13b prints the scalability series.
func RenderFig13b(rows []Fig13bRow) string {
	header := []string{"Cluster", "Baseline", "MMT", "Baseline scaling", "MMT scaling"}
	var out [][]string
	for _, r := range rows {
		out = append(out, []string{
			fmt.Sprintf("M%dR%d", r.N, r.N),
			r.Baseline.String(), r.MMT.String(),
			fmt.Sprintf("%.2fx", r.SpeedupVsM1Baseline),
			fmt.Sprintf("%.2fx", r.SpeedupVsM1MMT),
		})
	}
	return renderTable("Figure 13b: MnRn scalability (paper: MMT scales like the baseline)", header, out)
}
