// Command mmt-attack demonstrates the §IV-B2 threat model live: it builds
// a two-machine cluster, puts a man-in-the-middle on the interconnect, and
// shows each classic attack being rejected by the MMT closure delegation
// protocol — then shows the same attacks succeeding against the
// unprotected baseline, which is the whole point.
//
// Everything it prints comes from the cluster's public observability
// surface — the wire counters from Cluster.Metrics() and the rejection
// verdicts from the Cluster.Events() security ledger — so the output
// doubles as a demonstration that an auditor sees every attack without
// any private hooks into the protocol. The output is deterministic (all
// counts and timestamps read off the simulated run) and pinned by a
// golden test.
package main

import (
	"bytes"
	"fmt"
	"io"
	"os"

	"mmt"
	"mmt/internal/netsim"
)

// scenario is one attack demonstration.
type scenario struct {
	name       string
	interposer netsim.Interposer
	// wantReject: the delegation must fail under this adversary.
	wantReject bool
}

func scenarios() []scenario {
	return []scenario{
		{"passive spy (confidentiality)", &netsim.Spy{}, false},
		{"bit flip in closure data", &netsim.Tamperer{Kind: netsim.KindClosure, Offset: -3}, true},
		{"bit flip in sealed root", &netsim.Tamperer{Kind: netsim.KindClosure, Offset: 40}, true},
		{"replay of a recorded closure", &netsim.Replayer{Kind: netsim.KindClosure}, true},
		{"re-ordering of two closures", &netsim.Reorderer{Kind: netsim.KindClosure}, true},
	}
}

func main() {
	if err := report(os.Stdout); err != nil {
		os.Exit(1)
	}
}

// report runs every scenario and renders the demonstration; it returns
// an error if any attack was not handled as expected.
func report(w io.Writer) error {
	var failed error
	for _, s := range scenarios() {
		line, err := run(s)
		if err != nil {
			fmt.Fprintf(w, "FAIL %-32s %v\n", s.name, err)
			failed = fmt.Errorf("scenario %q failed", s.name)
		} else {
			fmt.Fprintf(w, "ok   %-32s %s\n", s.name, line)
		}
	}
	if failed != nil {
		return failed
	}
	fmt.Fprintln(w, "\nAll adversaries defeated. The delegation protocol held: spying saw only")
	fmt.Fprintln(w, "ciphertext; tampering, replay and re-ordering were all rejected, and the")
	fmt.Fprintln(w, "sender recovered its buffer for retry each time. The wire column is")
	fmt.Fprintln(w, "everything each adversary got to see — message and byte counts per traffic")
	fmt.Fprintln(w, "kind, all of it ciphertext or protocol framing — and the ledger column is")
	fmt.Fprintln(w, "the security-event record an auditor reads from Cluster.Events().")
	return nil
}

// wireView renders what a wire adversary observed: per-kind message and
// byte counts, summed over both machines' outbound traffic.
func wireView(m mmt.Metrics) string {
	return fmt.Sprintf("wire: %d closure msgs / %d B, %d control msgs / %d B",
		m.Counter(mmt.CtrWireMsgsClosure), m.Counter(mmt.CtrWireBytesClosure),
		m.Counter(mmt.CtrWireMsgsControl), m.Counter(mmt.CtrWireBytesControl))
}

// ledgerView summarizes the security-event ledger: how many closures the
// receiving monitor accepted, how many it rejected, and the verdict kind
// of the newest rejection — the audit trail of the attack.
func ledgerView(events []mmt.SecurityEvent) string {
	accepts, rejects := 0, 0
	var last mmt.SecurityEvent
	for _, ev := range events {
		switch ev.Kind {
		case mmt.EvMigrationAccept:
			accepts++
		case mmt.EvIntegrityFail, mmt.EvAuthFail, mmt.EvReplayReject,
			mmt.EvReorderReject, mmt.EvStaleCounter, mmt.EvMigrationReject:
			rejects++
			last = ev
		}
	}
	if rejects == 0 {
		return fmt.Sprintf("ledger: %d accepted, 0 rejected", accepts)
	}
	return fmt.Sprintf("ledger: %d accepted, %d rejected (%s on %s)",
		accepts, rejects, last.Kind, last.Proc)
}

// run executes one scenario on a fresh (traced) cluster, verifies the
// outcome, and reports the adversary-visible wire traffic plus the
// ledger verdict.
func run(s scenario) (string, error) {
	sink := mmt.NewTraceSink()
	cluster, err := mmt.New(mmt.WithTreeLevels(2), mmt.WithRegions(8), mmt.WithTracing(sink))
	if err != nil {
		return "", err
	}
	alice, err := cluster.AddMachine("alice")
	if err != nil {
		return "", err
	}
	bob, err := cluster.AddMachine("bob")
	if err != nil {
		return "", err
	}
	sender := alice.Spawn("producer", nil)
	receiver := bob.Spawn("consumer", nil)
	link, err := cluster.Connect(sender, receiver)
	if err != nil {
		return "", err
	}
	secret := []byte("attack-target payload: 0123456789abcdef")

	send := func() error {
		buf, err := link.NewBuffer(sender)
		if err != nil {
			return err
		}
		if err := buf.Write(0, secret); err != nil {
			return err
		}
		return link.Delegate(buf, mmt.OwnershipTransfer)
	}

	cluster.Network().SetInterposer(s.interposer)
	err = send()
	if err == nil {
		switch s.interposer.(type) {
		case *netsim.Reorderer, *netsim.Replayer:
			// These adversaries need a second message: the reorderer holds
			// the first closure until it can swap a pair; the replayer
			// re-injects its recording after the next delivery.
			err = send()
		}
	}
	cluster.Network().SetInterposer(nil)
	// Snapshot before the clean retry: this is the traffic the adversary
	// itself was exposed to, and the verdicts it caused.
	line := wireView(cluster.Metrics()) + " | " + ledgerView(cluster.Events())

	if s.wantReject {
		if err == nil {
			return "", fmt.Errorf("attack was NOT rejected")
		}
		// Recovery: a clean retry must succeed.
		if err := send(); err != nil {
			return "", fmt.Errorf("retry after rejected attack failed: %v", err)
		}
		return line, nil
	}

	// Passive case: delegation succeeds, payload arrives intact, and the
	// spy saw no plaintext.
	if err != nil {
		return "", fmt.Errorf("delegation failed under passive adversary: %v", err)
	}
	got, err := link.Receive(receiver)
	if err != nil {
		return "", err
	}
	data, err := got.Read(0, len(secret))
	if err != nil {
		return "", err
	}
	if !bytes.Equal(data, secret) {
		return "", fmt.Errorf("payload corrupted")
	}
	if spy, ok := s.interposer.(*netsim.Spy); ok {
		for _, p := range spy.Captured {
			if bytes.Contains(p, secret[:16]) {
				return "", fmt.Errorf("plaintext leaked on the wire")
			}
		}
		if len(spy.Captured) == 0 {
			return "", fmt.Errorf("spy captured nothing")
		}
	}
	return line, nil
}
