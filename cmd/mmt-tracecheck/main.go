// Command mmt-tracecheck validates the repository's two JSON trace
// artifacts against their schemas:
//
//   - Chrome trace-event files (from TraceSink.WriteChromeTrace or
//     `quickstart -trace`): a JSON array of "M"/"X"/"C" events with the
//     fields chrome://tracing and Perfetto require.
//   - BENCH_fig<N>.json metrics sidecars (from `mmt-bench -fig`):
//     headline totals plus the per-phase cycle breakdown, including the
//     phase-sum invariant (phase_sum_cycles accounts for
//     check_total_cycles when the figure reports a cycle total).
//   - BENCH_wallclock.json host-speed sidecars (from `mmt-bench
//     -wallclock`): schema "mmt-wallclock/v1", ns-per-operation and
//     sweep-speedup metrics measured on the host clock.
//   - Latency-histogram exports (from TraceSink.WriteHistJSON or
//     `quickstart -stats`): schema "mmt-hist/v1", per-process
//     per-operation fixed-bucket histograms with power-of-two bounds.
//   - Security-event ledger exports (from TraceSink.WriteEventsJSONL or
//     `quickstart -events`): schema "mmt-events/v1", a JSONL header plus
//     one cycle-stamped event per line with strictly increasing
//     sequence numbers and known event kinds.
//   - Snapshot manifests (from Manifest.WriteJSON or Cluster.Save):
//     schema "mmt-manifest/v1", the root hash plus per-machine summary
//     of one persisted cluster snapshot.
//   - Causal trace exports (from TraceSink.WriteCausalJSON or
//     `quickstart -causal`): schema "mmt-causal/v1", per-migration span
//     trees. Validated causally: parents precede children (acyclic by
//     construction), child intervals nest inside their parent, each
//     trace's total_cycles equals the sum of its span cycles, and the
//     critical path is a real root-to-leaf chain.
//   - Time-series exports (from TraceSink.WriteSeriesJSON or `mmt-bench
//     -fig 11 -series`): schema "mmt-series/v1", per-machine per-window
//     delta samples from the simulated-clock sampler. Validated
//     exactly: window labels strictly increase, the ring bound holds,
//     label names come from the enum tables, and per key the evicted
//     aggregate plus the retained deltas (summed left to right in
//     float64) equal the cumulative totals bit for bit — the sampler's
//     exact-delta construction makes tolerance unnecessary.
//
// The file kind is detected from the JSON shape (array = Chrome trace;
// object with a "schema" field = that schema; other object = metrics
// sidecar). Exit status 0 means every file validated.
//
// Usage:
//
//	mmt-tracecheck trace.json BENCH_fig10.json ...
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"strconv"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: mmt-tracecheck <file.json> ...")
		os.Exit(2)
	}
	failed := false
	for _, path := range os.Args[1:] {
		if err := checkFile(path); err != nil {
			fmt.Fprintf(os.Stderr, "FAIL %s: %v\n", path, err)
			failed = true
			continue
		}
		fmt.Printf("ok   %s\n", path)
	}
	if failed {
		os.Exit(1)
	}
}

func checkFile(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	for _, c := range data {
		switch c {
		case ' ', '\t', '\n', '\r':
			continue
		case '[':
			return checkChromeTrace(data)
		case '{':
			// A "schema" field selects the flavour; metrics sidecars
			// predate schema tagging and are detected by shape. The probe
			// decodes only the first JSON value so JSONL files (whose
			// whole content is not one document) still identify.
			var probe struct {
				Schema string `json:"schema"`
			}
			if err := json.NewDecoder(bytes.NewReader(data)).Decode(&probe); err != nil {
				return fmt.Errorf("not a JSON object: %w", err)
			}
			switch probe.Schema {
			case "mmt-hist/v1":
				return checkHist(data)
			case "mmt-events/v1":
				return checkEvents(data)
			case "mmt-manifest/v1":
				return checkManifest(data)
			case "mmt-causal/v1":
				return checkCausal(data)
			case "mmt-series/v1":
				return checkSeries(data)
			case "":
				return checkSidecar(data)
			default:
				return checkWallclock(data, probe.Schema)
			}
		default:
			return fmt.Errorf("neither a JSON array (Chrome trace) nor object (sidecar)")
		}
	}
	return fmt.Errorf("empty file")
}

// chromeEvent is the subset of the trace-event format the exporter emits.
type chromeEvent struct {
	Name string                 `json:"name"`
	Cat  string                 `json:"cat"`
	Ph   string                 `json:"ph"`
	Pid  int                    `json:"pid"`
	Tid  int                    `json:"tid"`
	Ts   *float64               `json:"ts"`
	Dur  *float64               `json:"dur"`
	Args map[string]interface{} `json:"args"`
}

func checkChromeTrace(data []byte) error {
	var events []chromeEvent
	if err := json.Unmarshal(data, &events); err != nil {
		return fmt.Errorf("not a trace-event array: %w", err)
	}
	pids := map[int]bool{}
	for i, ev := range events {
		at := func(format string, args ...interface{}) error {
			return fmt.Errorf("event %d (%s %q): %s", i, ev.Ph, ev.Name, fmt.Sprintf(format, args...))
		}
		if ev.Pid < 1 || ev.Tid < 1 {
			return at("pid/tid must be >= 1, got %d/%d", ev.Pid, ev.Tid)
		}
		switch ev.Ph {
		case "M":
			if ev.Name != "process_name" {
				return at("metadata events must be process_name")
			}
			if name, ok := ev.Args["name"].(string); !ok || name == "" {
				return at("missing args.name")
			}
			pids[ev.Pid] = true
		case "X":
			if ev.Name == "" || ev.Cat == "" {
				return at("complete events need name and cat")
			}
			if ev.Ts == nil || ev.Dur == nil {
				return at("complete events need ts and dur")
			}
			if *ev.Ts < 0 || *ev.Dur < 0 {
				return at("negative ts/dur: %v/%v", *ev.Ts, *ev.Dur)
			}
			if !pids[ev.Pid] {
				return at("pid %d has no process_name metadata", ev.Pid)
			}
		case "C":
			if ev.Ts == nil || len(ev.Args) == 0 {
				return at("counter events need ts and non-empty args")
			}
			for k, v := range ev.Args {
				n, ok := v.(float64)
				if !ok || n < 0 || n != math.Trunc(n) {
					return at("counter %q must be a non-negative integer, got %v", k, v)
				}
			}
			if !pids[ev.Pid] {
				return at("pid %d has no process_name metadata", ev.Pid)
			}
		default:
			return at("unknown phase type %q (want M, X or C)", ev.Ph)
		}
	}
	return nil
}

// sidecar mirrors internal/bench.Sidecar (kept in sync by the CI step
// that validates generated sidecars with this command).
type sidecar struct {
	Figure      string `json:"figure"`
	Profile     string `json:"profile"`
	Description string `json:"description"`
	Totals      []struct {
		Name  string   `json:"name"`
		Value *float64 `json:"value"`
		Unit  string   `json:"unit"`
	} `json:"totals"`
	PhaseCycles []struct {
		Phase  string  `json:"phase"`
		Cycles float64 `json:"cycles"`
	} `json:"phase_cycles"`
	PhaseSumCycles   float64 `json:"phase_sum_cycles"`
	CheckTotalCycles float64 `json:"check_total_cycles"`
	Migrations       []struct {
		ID              string   `json:"id"`
		RootProc        string   `json:"root_proc"`
		Spans           *int     `json:"spans"`
		TotalCycles     *float64 `json:"total_cycles"`
		CriticalPathLen int      `json:"critical_path_len"`
		CriticalUs      *float64 `json:"critical_elapsed_us"`
	} `json:"migrations"`
	Series *struct {
		Schema       string  `json:"schema"`
		WindowCycles *uint64 `json:"window_cycles"`
		MaxSamples   *int    `json:"max_samples"`
		Procs        []struct {
			Proc       string   `json:"proc"`
			Windows    *uint64  `json:"windows"`
			Evicted    *uint64  `json:"evicted_windows"`
			LastWindow *uint64  `json:"last_window"`
			Cycles     *float64 `json:"cycles"`
		} `json:"procs"`
	} `json:"series"`
}

func checkSidecar(data []byte) error {
	var sc sidecar
	if err := json.Unmarshal(data, &sc); err != nil {
		return fmt.Errorf("not a sidecar object: %w", err)
	}
	if sc.Figure == "" || sc.Profile == "" || sc.Description == "" {
		return fmt.Errorf("figure, profile and description are required")
	}
	if len(sc.Totals) == 0 {
		return fmt.Errorf("no totals")
	}
	for i, tot := range sc.Totals {
		if tot.Name == "" || tot.Value == nil || tot.Unit == "" {
			return fmt.Errorf("total %d: name, value and unit are required", i)
		}
		switch tot.Unit {
		case "cycles", "seconds", "x", "bytes", "count":
		default:
			return fmt.Errorf("total %q: unknown unit %q", tot.Name, tot.Unit)
		}
	}
	var sum float64
	for _, ph := range sc.PhaseCycles {
		if ph.Phase == "" || ph.Cycles < 0 {
			return fmt.Errorf("phase entries need a name and non-negative cycles")
		}
		sum += ph.Cycles
	}
	if math.Abs(sum-sc.PhaseSumCycles) > 1e-9*math.Max(math.Abs(sum), math.Abs(sc.PhaseSumCycles)) {
		return fmt.Errorf("phase_cycles sum %.6f != phase_sum_cycles %.6f", sum, sc.PhaseSumCycles)
	}
	if sc.CheckTotalCycles != 0 {
		a, b := sc.PhaseSumCycles, sc.CheckTotalCycles
		if math.Abs(a-b) > 1e-9*math.Max(math.Abs(a), math.Abs(b)) {
			return fmt.Errorf("phase sum %.6f cycles does not account for reported total %.6f cycles", a, b)
		}
	}
	if len(sc.Migrations) > 0 {
		totals := map[string]float64{}
		for _, tot := range sc.Totals {
			totals[tot.Name] = *tot.Value
		}
		var sum float64
		for i, mg := range sc.Migrations {
			if mg.ID == "" || mg.RootProc == "" {
				return fmt.Errorf("migration %d: id and root_proc are required", i)
			}
			if mg.Spans == nil || mg.TotalCycles == nil || mg.CriticalUs == nil {
				return fmt.Errorf("migration %q: spans, total_cycles and critical_elapsed_us are required", mg.ID)
			}
			if *mg.Spans < 1 || *mg.TotalCycles < 0 || *mg.CriticalUs < 0 {
				return fmt.Errorf("migration %q: spans/total_cycles/critical_elapsed_us out of range", mg.ID)
			}
			if mg.CriticalPathLen < 1 || mg.CriticalPathLen > *mg.Spans {
				return fmt.Errorf("migration %q: critical_path_len %d outside [1,%d]", mg.ID, mg.CriticalPathLen, *mg.Spans)
			}
			sum += *mg.TotalCycles
		}
		if n, ok := totals["migrations"]; !ok || n != float64(len(sc.Migrations)) {
			return fmt.Errorf("migrations total %v does not match %d migration entries", totals["migrations"], len(sc.Migrations))
		}
		want := totals["migration-send-cycles"] + totals["migration-recv-cycles"]
		if math.Abs(sum-want) > 1e-9*math.Max(math.Abs(sum), math.Abs(want)) {
			return fmt.Errorf("migration trace cycles sum to %.6f, want send+recv totals %.6f", sum, want)
		}
	}
	if ss := sc.Series; ss != nil {
		if ss.Schema != "mmt-series/v1" {
			return fmt.Errorf("series: unknown schema %q (want mmt-series/v1)", ss.Schema)
		}
		if ss.WindowCycles == nil || ss.MaxSamples == nil {
			return fmt.Errorf("series: window_cycles and max_samples are required")
		}
		if w := *ss.WindowCycles; w == 0 || w&(w-1) != 0 {
			return fmt.Errorf("series: window_cycles %d is not a power of two", w)
		}
		if *ss.MaxSamples < 1 {
			return fmt.Errorf("series: max_samples %d must be >= 1", *ss.MaxSamples)
		}
		lastProc := ""
		for i, p := range ss.Procs {
			if p.Proc == "" {
				return fmt.Errorf("series proc %d: empty name", i)
			}
			if lastProc != "" && p.Proc <= lastProc {
				return fmt.Errorf("series procs not in name order: %q after %q", p.Proc, lastProc)
			}
			lastProc = p.Proc
			if p.Windows == nil || p.Evicted == nil || p.LastWindow == nil || p.Cycles == nil {
				return fmt.Errorf("series proc %q: windows, evicted_windows, last_window and cycles are required", p.Proc)
			}
			if *p.Windows < *p.Evicted {
				return fmt.Errorf("series proc %q: %d windows cannot include %d evicted", p.Proc, *p.Windows, *p.Evicted)
			}
			if *p.Cycles < 0 || math.IsNaN(*p.Cycles) || math.IsInf(*p.Cycles, 0) {
				return fmt.Errorf("series proc %q: cycles %v out of range", p.Proc, *p.Cycles)
			}
		}
	}
	return nil
}

// causalExport mirrors trace.WriteCausalJSON's document.
type causalExport struct {
	Schema string `json:"schema"`
	Traces []struct {
		ID           string   `json:"id"`
		RootProc     string   `json:"root_proc"`
		Seq          *uint64  `json:"seq"`
		TotalCycles  *float64 `json:"total_cycles"`
		CriticalUs   *float64 `json:"critical_elapsed_us"`
		CriticalPath []uint64 `json:"critical_path"`
		Spans        []struct {
			Span    *uint64  `json:"span"`
			Parent  *uint64  `json:"parent"`
			Proc    string   `json:"proc"`
			Phase   string   `json:"phase"`
			BeginUS *float64 `json:"begin_us"`
			EndUS   *float64 `json:"end_us"`
			Cycles  *float64 `json:"cycles"`
		} `json:"spans"`
	} `json:"traces"`
}

// checkCausal validates the causal invariants the exporter promises:
// span IDs strictly increase within a trace, every parent precedes its
// children (so the span graph is acyclic by construction), child
// intervals nest inside their parent's, per-trace total_cycles equals
// the sum of span cycles, and the critical path is a real chain from
// the root to a leaf whose elapsed time matches critical_elapsed_us.
func checkCausal(data []byte) error {
	var ce causalExport
	if err := json.Unmarshal(data, &ce); err != nil {
		return fmt.Errorf("not a causal export: %w", err)
	}
	for _, tr := range ce.Traces {
		at := func(format string, args ...interface{}) error {
			return fmt.Errorf("trace %q: %s", tr.ID, fmt.Sprintf(format, args...))
		}
		if tr.Seq == nil || tr.TotalCycles == nil || tr.CriticalUs == nil {
			return at("seq, total_cycles and critical_elapsed_us are required")
		}
		if tr.RootProc == "" || tr.ID != fmt.Sprintf("%s#%d", tr.RootProc, *tr.Seq) {
			return at("id must be root_proc#seq (root_proc %q, seq %d)", tr.RootProc, *tr.Seq)
		}
		if len(tr.Spans) == 0 {
			return at("no spans")
		}
		type spanInfo struct{ begin, end float64 }
		spans := map[uint64]spanInfo{}
		children := map[uint64][]uint64{}
		var cycleSum float64
		lastID := uint64(0)
		roots := 0
		for _, sp := range tr.Spans {
			if sp.Span == nil || sp.Parent == nil || sp.BeginUS == nil || sp.EndUS == nil || sp.Cycles == nil {
				return at("span, parent, begin_us, end_us and cycles are required")
			}
			id, parent := *sp.Span, *sp.Parent
			if id <= lastID {
				return at("span ids not strictly increasing: %d after %d", id, lastID)
			}
			lastID = id
			if sp.Proc == "" || sp.Phase == "" {
				return at("span %d: proc and phase are required", id)
			}
			if *sp.BeginUS < 0 || *sp.EndUS < *sp.BeginUS {
				return at("span %d: interval [%v,%v] out of order", id, *sp.BeginUS, *sp.EndUS)
			}
			if *sp.Cycles < 0 {
				return at("span %d: negative cycles", id)
			}
			if parent == 0 {
				roots++
			} else {
				// parent < id (checked transitively: parents must already be
				// in the map) makes the span graph acyclic by construction.
				p, ok := spans[parent]
				if !ok {
					return at("span %d: parent %d does not precede it", id, parent)
				}
				if *sp.BeginUS < p.begin || *sp.EndUS > p.end {
					return at("span %d: interval [%v,%v] escapes parent %d's [%v,%v]",
						id, *sp.BeginUS, *sp.EndUS, parent, p.begin, p.end)
				}
				children[parent] = append(children[parent], id)
			}
			spans[id] = spanInfo{*sp.BeginUS, *sp.EndUS}
			cycleSum += *sp.Cycles
		}
		if roots != 1 {
			return at("want exactly one root span (parent 0), got %d", roots)
		}
		if math.Abs(cycleSum-*tr.TotalCycles) > 1e-9*math.Max(math.Abs(cycleSum), math.Abs(*tr.TotalCycles)) {
			return at("span cycles sum to %.6f, want total_cycles %.6f", cycleSum, *tr.TotalCycles)
		}
		if len(tr.CriticalPath) == 0 {
			return at("empty critical_path")
		}
		rootID := *tr.Spans[0].Span
		if *tr.Spans[0].Parent != 0 {
			return at("first span %d is not the root", rootID)
		}
		if tr.CriticalPath[0] != rootID {
			return at("critical_path starts at %d, want root %d", tr.CriticalPath[0], rootID)
		}
		for i := 1; i < len(tr.CriticalPath); i++ {
			prev, cur := tr.CriticalPath[i-1], tr.CriticalPath[i]
			isChild := false
			for _, c := range children[prev] {
				if c == cur {
					isChild = true
					break
				}
			}
			if !isChild {
				return at("critical_path step %d -> %d is not a parent-child edge", prev, cur)
			}
		}
		leaf := tr.CriticalPath[len(tr.CriticalPath)-1]
		elapsed := spans[leaf].end - spans[rootID].begin
		// begin_us, end_us and critical_elapsed_us are each rounded to
		// 3 decimals independently, so the recomputed difference can
		// drift by up to 0.0015us from the exported value.
		if math.Abs(elapsed-*tr.CriticalUs) > 2e-3 {
			return at("critical path elapsed %.3fus does not match critical_elapsed_us %.3f", elapsed, *tr.CriticalUs)
		}
	}
	return nil
}

// validOps and validEventKinds mirror internal/trace's name tables (kept
// in sync by the CI step that validates generated exports with this
// command — an enum added without its name shows up here as FAIL).
var validOps = map[string]bool{
	"local-read": true, "local-write": true,
	"remote-read": true, "remote-write": true,
	"migration-send": true, "migration-recv": true,
	"verify": true, "reencrypt": true,
}

var validEventKinds = map[string]bool{
	"integrity-fail": true, "auth-fail": true,
	"replay-reject": true, "reorder-reject": true, "stale-counter": true,
	"migration-send": true, "migration-accept": true, "migration-reject": true,
	"delegation-ack": true, "cap-destroy": true,
}

// validPhases, validCounters and validSeverities mirror internal/trace's
// remaining name tables (same keep-in-sync contract as validOps above).
var validPhases = map[string]bool{
	"data-access": true, "root-mount": true, "tree-walk": true,
	"mac": true, "tree-update": true, "reencrypt": true,
	"memcpy": true, "encrypt": true, "decrypt": true, "dma": true,
	"delegation": true, "connect": true, "send": true, "recv": true,
	"app-compute": true, "wire": true,
}

var validCounters = map[string]bool{
	"tree-node-walks": true, "mac-verifies": true, "mac-updates": true,
	"node-cache-hits": true, "node-cache-misses": true, "root-mounts": true,
	"reencrypt-lines": true, "tree-node-verifies": true,
	"tree-node-verify-fails": true, "tree-node-rehashes": true,
	"closures-sent": true, "closures-accepted": true, "closures-rejected": true,
	"closure-encode-bytes": true, "closure-decode-bytes": true,
	"wire-msgs-data": true, "wire-msgs-closure": true, "wire-msgs-control": true,
	"wire-bytes-data": true, "wire-bytes-closure": true, "wire-bytes-control": true,
}

var validSeverities = map[string]bool{
	"info": true, "warn": true, "error": true,
}

// seriesSample and seriesExport mirror trace.WriteSeriesJSON's document.
type seriesSample struct {
	Window   *uint64            `json:"window"`
	Counters map[string]uint64  `json:"counters"`
	Cycles   map[string]float64 `json:"cycles"`
	Ops      map[string]struct {
		Count     *uint64  `json:"count"`
		SumCycles *float64 `json:"sum_cycles"`
	} `json:"ops"`
}

type seriesExport struct {
	Schema       string  `json:"schema"`
	WindowCycles *uint64 `json:"window_cycles"`
	MaxSamples   *int    `json:"max_samples"`
	Procs        []struct {
		Proc           string         `json:"proc"`
		EvictedWindows *uint64        `json:"evicted_windows"`
		EvictedThrough *uint64        `json:"evicted_through"`
		Evicted        *seriesSample  `json:"evicted"`
		Samples        []seriesSample `json:"samples"`
		Totals         *seriesSample  `json:"totals"`
	} `json:"procs"`
}

// checkSeriesNames validates one sample's label names and non-zero
// discipline (the exporter omits zero entries, so a zero here means a
// stale or hand-edited document).
func checkSeriesNames(d *seriesSample, what string, allowZero bool) error {
	if d.Window == nil || d.Counters == nil || d.Cycles == nil || d.Ops == nil {
		return fmt.Errorf("%s: window, counters, cycles and ops are required", what)
	}
	for k, v := range d.Counters {
		if !validCounters[k] {
			return fmt.Errorf("%s: unknown counter %q", what, k)
		}
		if v == 0 && !allowZero {
			return fmt.Errorf("%s: zero counter %q must be omitted", what, k)
		}
	}
	for k, v := range d.Cycles {
		if !validPhases[k] {
			return fmt.Errorf("%s: unknown phase %q", what, k)
		}
		if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("%s: phase %q cycles %v out of range", what, k, v)
		}
		if v == 0 && !allowZero {
			return fmt.Errorf("%s: zero phase %q must be omitted", what, k)
		}
	}
	for k, v := range d.Ops {
		if !validOps[k] {
			return fmt.Errorf("%s: unknown operation %q", what, k)
		}
		if v.Count == nil || v.SumCycles == nil {
			return fmt.Errorf("%s: op %q needs count and sum_cycles", what, k)
		}
		if *v.SumCycles < 0 || math.IsNaN(*v.SumCycles) || math.IsInf(*v.SumCycles, 0) {
			return fmt.Errorf("%s: op %q sum_cycles %v out of range", what, k, *v.SumCycles)
		}
		if *v.Count == 0 && *v.SumCycles == 0 && !allowZero {
			return fmt.Errorf("%s: zero op %q must be omitted", what, k)
		}
	}
	return nil
}

// checkSeries validates the sampler invariants the exporter promises:
// power-of-two window, name-ordered procs, strictly increasing window
// labels, the ring bound (max_samples retained deltas plus at most one
// synthesized tail), label names from the enum tables, and — the
// load-bearing one — that per key the evicted aggregate plus the
// retained deltas, summed left to right in float64, equal the
// cumulative totals EXACTLY. The sampler constructs every delta so the
// sum telescopes without rounding, so equality here is bit-for-bit.
func checkSeries(data []byte) error {
	var se seriesExport
	if err := json.Unmarshal(data, &se); err != nil {
		return fmt.Errorf("not a series export: %w", err)
	}
	if se.WindowCycles == nil || se.MaxSamples == nil {
		return fmt.Errorf("window_cycles and max_samples are required")
	}
	w := *se.WindowCycles
	if w == 0 || w&(w-1) != 0 {
		return fmt.Errorf("window_cycles %d is not a power of two", w)
	}
	if *se.MaxSamples < 1 {
		return fmt.Errorf("max_samples %d must be >= 1", *se.MaxSamples)
	}
	lastProc := ""
	for _, p := range se.Procs {
		at := func(format string, args ...interface{}) error {
			return fmt.Errorf("proc %q: %s", p.Proc, fmt.Sprintf(format, args...))
		}
		if p.Proc == "" {
			return fmt.Errorf("empty proc name")
		}
		if lastProc != "" && p.Proc <= lastProc {
			return fmt.Errorf("procs not in name order: %q after %q", p.Proc, lastProc)
		}
		lastProc = p.Proc
		if p.EvictedWindows == nil || p.EvictedThrough == nil || p.Totals == nil {
			return at("evicted_windows, evicted_through and totals are required")
		}
		if (*p.EvictedWindows > 0) != (p.Evicted != nil) {
			return at("evicted aggregate present iff evicted_windows > 0")
		}
		if len(p.Samples) == 0 && p.Evicted == nil {
			return at("idle proc must be omitted")
		}
		if len(p.Samples) > *se.MaxSamples+1 {
			return at("%d samples exceed the ring bound %d+1", len(p.Samples), *se.MaxSamples)
		}

		// Accumulate the exact left-to-right sum while walking the
		// samples; compare against totals afterwards.
		sumC := map[string]uint64{}
		sumCy := map[string]float64{}
		sumOpN := map[string]uint64{}
		sumOpS := map[string]float64{}
		fold := func(d *seriesSample) {
			for k, v := range d.Counters {
				sumC[k] += v
			}
			for k, v := range d.Cycles {
				sumCy[k] += v
			}
			for k, v := range d.Ops {
				sumOpN[k] += *v.Count
				sumOpS[k] += *v.SumCycles
			}
		}
		last := uint64(0)
		if p.Evicted != nil {
			if err := checkSeriesNames(p.Evicted, "evicted", true); err != nil {
				return at("%v", err)
			}
			if *p.Evicted.Window != *p.EvictedThrough {
				return at("evicted window %d != evicted_through %d", *p.Evicted.Window, *p.EvictedThrough)
			}
			last = *p.EvictedThrough
			fold(p.Evicted)
		}
		for i := range p.Samples {
			d := &p.Samples[i]
			if err := checkSeriesNames(d, fmt.Sprintf("sample %d", i), false); err != nil {
				return at("%v", err)
			}
			if (i > 0 || p.Evicted != nil) && *d.Window <= last {
				return at("sample %d: window %d not after %d", i, *d.Window, last)
			}
			last = *d.Window
			fold(d)
		}
		if err := checkSeriesNames(p.Totals, "totals", true); err != nil {
			return at("%v", err)
		}
		if *p.Totals.Window != last {
			return at("totals window %d != newest sample window %d", *p.Totals.Window, last)
		}

		// Exact equality in both key directions: a key missing from the
		// sum means a total appeared from nowhere; a key missing from
		// totals means deltas leaked.
		for k, v := range sumC {
			if tv := p.Totals.Counters[k]; tv != v {
				return at("counter %q: deltas sum to %d, totals say %d", k, v, tv)
			}
		}
		for k, v := range p.Totals.Counters {
			if sumC[k] != v {
				return at("counter %q: totals say %d, deltas sum to %d", k, v, sumC[k])
			}
		}
		for k, v := range sumCy {
			if tv := p.Totals.Cycles[k]; tv != v {
				return at("phase %q: deltas sum to %v, totals say %v (must be exact)", k, v, tv)
			}
		}
		for k, v := range p.Totals.Cycles {
			if sumCy[k] != v {
				return at("phase %q: totals say %v, deltas sum to %v (must be exact)", k, v, sumCy[k])
			}
		}
		for k, v := range sumOpN {
			if tv := p.Totals.Ops[k]; tv.Count == nil || *tv.Count != v || *tv.SumCycles != sumOpS[k] {
				return at("op %q: delta sums do not match totals exactly", k)
			}
		}
		for k := range p.Totals.Ops {
			if _, ok := sumOpN[k]; !ok {
				return at("op %q: in totals but absent from every delta", k)
			}
		}
	}
	return nil
}

// histExport mirrors trace.WriteHistJSON's document.
type histExport struct {
	Schema string `json:"schema"`
	Procs  []struct {
		Proc string `json:"proc"`
		Ops  []struct {
			Op      string   `json:"op"`
			Count   *uint64  `json:"count"`
			Sum     *float64 `json:"sum_cycles"`
			Min     *float64 `json:"min_cycles"`
			Max     *float64 `json:"max_cycles"`
			Mean    *float64 `json:"mean_cycles"`
			P50     *float64 `json:"p50_cycles"`
			P90     *float64 `json:"p90_cycles"`
			P99     *float64 `json:"p99_cycles"`
			Buckets []struct {
				LE    *float64 `json:"le_cycles"`
				Count *uint64  `json:"count"`
			} `json:"buckets"`
		} `json:"ops"`
	} `json:"procs"`
}

func checkHist(data []byte) error {
	var he histExport
	if err := json.Unmarshal(data, &he); err != nil {
		return fmt.Errorf("not a histogram export: %w", err)
	}
	lastProc := ""
	for _, p := range he.Procs {
		if p.Proc == "" {
			return fmt.Errorf("empty proc name")
		}
		if lastProc != "" && p.Proc <= lastProc {
			return fmt.Errorf("procs not in name order: %q after %q", p.Proc, lastProc)
		}
		lastProc = p.Proc
		if len(p.Ops) == 0 {
			return fmt.Errorf("proc %q: empty proc must be omitted", p.Proc)
		}
		for _, op := range p.Ops {
			at := func(format string, args ...interface{}) error {
				return fmt.Errorf("proc %q op %q: %s", p.Proc, op.Op, fmt.Sprintf(format, args...))
			}
			if !validOps[op.Op] {
				return at("unknown operation kind")
			}
			if op.Count == nil || op.Sum == nil || op.Min == nil || op.Max == nil ||
				op.Mean == nil || op.P50 == nil || op.P90 == nil || op.P99 == nil {
				return at("count, sum/min/max/mean and p50/p90/p99 are required")
			}
			if *op.Count == 0 {
				return at("empty histogram must be omitted")
			}
			if *op.Min > *op.Max || *op.Min < 0 {
				return at("min %v / max %v out of order", *op.Min, *op.Max)
			}
			if !(*op.P50 <= *op.P90 && *op.P90 <= *op.P99 && *op.P99 <= *op.Max) {
				return at("quantiles not monotone: p50=%v p90=%v p99=%v max=%v", *op.P50, *op.P90, *op.P99, *op.Max)
			}
			var n uint64
			lastLE := -1.0
			for _, b := range op.Buckets {
				if b.LE == nil || b.Count == nil || *b.Count == 0 {
					return at("buckets need le_cycles and a nonzero count")
				}
				if *b.LE <= lastLE {
					return at("bucket bounds not increasing: %v after %v", *b.LE, lastLE)
				}
				lastLE = *b.LE
				n += *b.Count
			}
			if n != *op.Count {
				return at("bucket counts sum to %d, want count %d", n, *op.Count)
			}
		}
	}
	return nil
}

// eventsHeader and eventLine mirror trace.WriteEventsJSONL's lines.
type eventsHeader struct {
	Schema  string  `json:"schema"`
	Events  *int    `json:"events"`
	Dropped *uint64 `json:"dropped"`
}

type eventLine struct {
	Seq      *uint64  `json:"seq"`
	Proc     string   `json:"proc"`
	Kind     string   `json:"kind"`
	Severity string   `json:"severity"`
	Window   *uint64  `json:"window"`
	TimeUS   *float64 `json:"time_us"`
	Addr     string   `json:"addr"`
	Detail   *string  `json:"detail"`
	Flight   []struct {
		Phase   string   `json:"phase"`
		BeginUS *float64 `json:"begin_us"`
		EndUS   *float64 `json:"end_us"`
	} `json:"flight"`
}

func checkEvents(data []byte) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	var hdr eventsHeader
	if err := dec.Decode(&hdr); err != nil {
		return fmt.Errorf("bad header line: %w", err)
	}
	if hdr.Events == nil || hdr.Dropped == nil {
		return fmt.Errorf("header needs events and dropped counts")
	}
	var lastSeq uint64
	n := 0
	for dec.More() {
		var ev eventLine
		if err := dec.Decode(&ev); err != nil {
			return fmt.Errorf("event %d: %w", n, err)
		}
		at := func(format string, args ...interface{}) error {
			return fmt.Errorf("event %d (%s): %s", n, ev.Kind, fmt.Sprintf(format, args...))
		}
		if ev.Seq == nil || ev.TimeUS == nil || ev.Detail == nil {
			return at("seq, time_us and detail are required")
		}
		if ev.Window == nil {
			return at("missing sampler window index")
		}
		if ev.Proc == "" {
			return at("empty proc")
		}
		if !validEventKinds[ev.Kind] {
			return at("unknown event kind")
		}
		if !validSeverities[ev.Severity] {
			return at("unknown severity %q", ev.Severity)
		}
		for i, fs := range ev.Flight {
			if !validPhases[fs.Phase] {
				return at("flight span %d: unknown phase %q", i, fs.Phase)
			}
			if fs.BeginUS == nil || fs.EndUS == nil || *fs.BeginUS < 0 || *fs.EndUS < *fs.BeginUS {
				return at("flight span %d: bad interval", i)
			}
		}
		if *ev.TimeUS < 0 {
			return at("negative timestamp %v", *ev.TimeUS)
		}
		if len(ev.Addr) < 3 || ev.Addr[:2] != "0x" {
			return at("addr %q is not 0x-prefixed hex", ev.Addr)
		}
		if _, err := strconv.ParseUint(ev.Addr[2:], 16, 64); err != nil {
			return at("addr %q is not 0x-prefixed hex", ev.Addr)
		}
		if n > 0 && *ev.Seq <= lastSeq {
			return at("seq %d not after %d", *ev.Seq, lastSeq)
		}
		lastSeq = *ev.Seq
		n++
	}
	if n != *hdr.Events {
		return fmt.Errorf("header says %d events, file has %d", *hdr.Events, n)
	}
	return nil
}

// wallclock mirrors cmd/mmt-bench's wallclockReport.
type wallclock struct {
	Schema     string `json:"schema"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	Workers    int    `json:"workers"`
	Profile    string `json:"profile"`
	Metrics    []struct {
		Name  string   `json:"name"`
		Value *float64 `json:"value"`
		Unit  string   `json:"unit"`
	} `json:"metrics"`
}

func checkWallclock(data []byte, schema string) error {
	if schema != "mmt-wallclock/v1" {
		return fmt.Errorf("unknown schema %q (want mmt-wallclock/v1)", schema)
	}
	var wc wallclock
	if err := json.Unmarshal(data, &wc); err != nil {
		return fmt.Errorf("not a wallclock sidecar: %w", err)
	}
	if wc.GOMAXPROCS < 1 || wc.Workers < 1 {
		return fmt.Errorf("gomaxprocs and workers must be >= 1, got %d/%d", wc.GOMAXPROCS, wc.Workers)
	}
	if wc.Profile == "" {
		return fmt.Errorf("profile is required")
	}
	if len(wc.Metrics) == 0 {
		return fmt.Errorf("no metrics")
	}
	for i, m := range wc.Metrics {
		if m.Name == "" || m.Value == nil || m.Unit == "" {
			return fmt.Errorf("metric %d: name, value and unit are required", i)
		}
		switch m.Unit {
		case "ns/op", "seconds", "x":
		default:
			return fmt.Errorf("metric %q: unknown unit %q", m.Name, m.Unit)
		}
		if *m.Value < 0 || math.IsNaN(*m.Value) || math.IsInf(*m.Value, 0) {
			return fmt.Errorf("metric %q: value %v out of range", m.Name, *m.Value)
		}
	}
	return nil
}

// manifest mirrors mmt.Manifest's JSON form (Manifest.WriteJSON).
type manifest struct {
	Schema        string  `json:"schema"`
	Epoch         *uint64 `json:"epoch"`
	RootHash      string  `json:"root_hash"`
	SnapshotBytes *int    `json:"snapshot_bytes"`
	TreeLevels    int     `json:"tree_levels"`
	Regions       int     `json:"regions"`
	Profile       string  `json:"profile"`
	Machines      []struct {
		Name        string   `json:"name"`
		NodeID      *uint16  `json:"node_id"`
		Clock       *float64 `json:"clock_seconds"`
		LiveRegions *int     `json:"live_regions"`
	} `json:"machines"`
	Links []string `json:"links"`
}

func checkManifest(data []byte) error {
	var m manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return fmt.Errorf("not a snapshot manifest: %w", err)
	}
	if m.Schema != "mmt-manifest/v1" {
		return fmt.Errorf("unknown schema %q (want mmt-manifest/v1)", m.Schema)
	}
	if m.Epoch == nil || m.SnapshotBytes == nil {
		return fmt.Errorf("epoch and snapshot_bytes are required")
	}
	if len(m.RootHash) != 64 {
		return fmt.Errorf("root_hash %q is not 64 hex chars", m.RootHash)
	}
	for _, c := range m.RootHash {
		if !(c >= '0' && c <= '9' || c >= 'a' && c <= 'f') {
			return fmt.Errorf("root_hash %q is not lowercase hex", m.RootHash)
		}
	}
	if *m.SnapshotBytes <= len(m.RootHash)/2 {
		return fmt.Errorf("snapshot_bytes %d cannot hold the hash trailer", *m.SnapshotBytes)
	}
	if m.TreeLevels < 2 || m.TreeLevels > 4 {
		return fmt.Errorf("tree_levels %d outside [2,4]", m.TreeLevels)
	}
	if m.Regions < 1 {
		return fmt.Errorf("regions must be >= 1, got %d", m.Regions)
	}
	if m.Profile == "" {
		return fmt.Errorf("profile is required")
	}
	if len(m.Machines) == 0 {
		return fmt.Errorf("no machines")
	}
	lastName := ""
	for i, mc := range m.Machines {
		if mc.Name == "" {
			return fmt.Errorf("machine %d: empty name", i)
		}
		if lastName != "" && mc.Name <= lastName {
			return fmt.Errorf("machines not in name order: %q after %q", mc.Name, lastName)
		}
		lastName = mc.Name
		if mc.NodeID == nil || mc.Clock == nil || mc.LiveRegions == nil {
			return fmt.Errorf("machine %q: node_id, clock_seconds and live_regions are required", mc.Name)
		}
		if *mc.Clock < 0 || math.IsNaN(*mc.Clock) || math.IsInf(*mc.Clock, 0) {
			return fmt.Errorf("machine %q: clock_seconds %v out of range", mc.Name, *mc.Clock)
		}
		if *mc.LiveRegions < 0 || *mc.LiveRegions > m.Regions {
			return fmt.Errorf("machine %q: live_regions %d outside [0,%d]", mc.Name, *mc.LiveRegions, m.Regions)
		}
	}
	for i, l := range m.Links {
		if l == "" {
			return fmt.Errorf("link %d: empty id", i)
		}
	}
	return nil
}
