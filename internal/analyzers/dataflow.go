package analyzers

// Shared dataflow plumbing for the CFG-based analyzers: string-canonical
// fact sets with the set algebra the worklist solvers need, expression
// canonicalisation, and the module-wide function index that lets noalloc
// and lockorder walk the static call graph across packages.
//
// Facts are canonical renderings of Go expressions (printer output), so
// "the same expression" means "prints the same" — exactly the contract
// the charge-mirror idiom relies on: the mirrored cost expression and
// the charged cost expression are textually identical or related by
// simple local aliasing.

import (
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"
	"strings"
)

// factSet is a set of canonical expression strings.
type factSet map[string]bool

func (s factSet) clone() factSet {
	out := make(factSet, len(s))
	for k := range s {
		out[k] = true
	}
	return out
}

func (s factSet) equal(o factSet) bool {
	if len(s) != len(o) {
		return false
	}
	for k := range s {
		if !o[k] {
			return false
		}
	}
	return true
}

// intersect keeps only facts present in both sets.
func (s factSet) intersect(o factSet) factSet {
	out := factSet{}
	for k := range s {
		if o[k] {
			out[k] = true
		}
	}
	return out
}

// union adds o's facts to a copy of s.
func (s factSet) union(o factSet) factSet {
	out := s.clone()
	for k := range o {
		out[k] = true
	}
	return out
}

// solveForward runs a forward dataflow over c to fixpoint and returns
// the converged entry fact set of every reachable block. The transfer
// function must be pure (analyzers re-run it with reporting enabled
// after convergence). With must=true the join over predecessors is
// intersection (a fact holds only if it holds on every path, unvisited
// predecessors optimistically ignored); with must=false it is union.
func solveForward(c *funcCFG, must bool, entryIn factSet, transfer func(*cfgBlock, factSet) factSet) map[*cfgBlock]factSet {
	ins := map[*cfgBlock]factSet{c.entry: entryIn}
	outs := map[*cfgBlock]factSet{}
	preds := map[*cfgBlock][]*cfgBlock{}
	for _, blk := range c.blocks {
		for _, s := range blk.succs {
			preds[s] = append(preds[s], blk)
		}
	}
	work := []*cfgBlock{c.entry}
	for len(work) > 0 {
		blk := work[0]
		work = work[1:]
		in, ok := ins[blk]
		if !ok {
			continue
		}
		out := transfer(blk, in)
		if prev, ok := outs[blk]; ok && prev.equal(out) {
			continue
		}
		outs[blk] = out
		for _, s := range blk.succs {
			var joined factSet
			for _, p := range preds[s] {
				po, ok := outs[p]
				if !ok {
					continue
				}
				if joined == nil {
					joined = po.clone()
				} else if must {
					joined = joined.intersect(po)
				} else {
					joined = joined.union(po)
				}
			}
			if joined == nil {
				joined = factSet{}
			}
			if prev, ok := ins[s]; !ok || !prev.equal(joined) {
				ins[s] = joined
				work = append(work, s)
			}
		}
	}
	return ins
}

// canonExpr renders e in canonical single-line form.
func canonExpr(fset *token.FileSet, e ast.Expr) string {
	var sb strings.Builder
	cfg := printer.Config{Mode: printer.RawFormat}
	if err := cfg.Fprint(&sb, fset, e); err != nil {
		return ""
	}
	return strings.Join(strings.Fields(sb.String()), " ")
}

// addTerms splits e on top-level + into its summands.
func addTerms(e ast.Expr) []ast.Expr {
	e = ast.Unparen(e)
	if b, ok := e.(*ast.BinaryExpr); ok && b.Op == token.ADD {
		return append(addTerms(b.X), addTerms(b.Y)...)
	}
	return []ast.Expr{e}
}

// identTokens reports the identifier tokens of a canonical rendering —
// maximal [A-Za-z0-9_] runs starting with a letter or underscore — used
// for kill sets: assigning to x invalidates every fact mentioning the
// identifier x (but not xs or max).
func identTokens(canon string) map[string]bool {
	out := map[string]bool{}
	isWordByte := func(b byte) bool {
		return b == '_' || (b >= 'a' && b <= 'z') || (b >= 'A' && b <= 'Z') || (b >= '0' && b <= '9')
	}
	for i := 0; i < len(canon); {
		if !isWordByte(canon[i]) || (canon[i] >= '0' && canon[i] <= '9') {
			i++
			continue
		}
		j := i
		for j < len(canon) && isWordByte(canon[j]) {
			j++
		}
		out[canon[i:j]] = true
		i = j
	}
	return out
}

// funcKey identifies a function declaration across packages in a form
// computable both from a source FuncDecl and from an export-data
// *types.Func: package path, receiver type name (empty for plain
// functions), function name.
type funcKey struct {
	pkg  string
	recv string
	name string
}

func (k funcKey) String() string {
	if k.recv != "" {
		return k.pkg + ".(" + k.recv + ")." + k.name
	}
	return k.pkg + "." + k.name
}

// namedRecv unwraps a receiver or operand type to its defining
// *types.TypeName: pointers are dereferenced and aliases resolved.
func namedRecv(t types.Type) *types.TypeName {
	t = types.Unalias(t)
	if p, ok := t.(*types.Pointer); ok {
		t = types.Unalias(p.Elem())
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj()
	}
	return nil
}

// keyOfFunc computes the funcKey of a resolved function object.
func keyOfFunc(fn *types.Func) (funcKey, bool) {
	if fn == nil || fn.Pkg() == nil {
		return funcKey{}, false
	}
	k := funcKey{pkg: fn.Pkg().Path(), name: fn.Name()}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return funcKey{}, false
	}
	if recv := sig.Recv(); recv != nil {
		tn := namedRecv(recv.Type())
		if tn == nil {
			// Interface method or unnameable receiver: not a unique decl.
			return funcKey{}, false
		}
		k.recv = tn.Name()
	}
	return k, true
}

// indexedFunc is one function declaration with its owning unit.
type indexedFunc struct {
	decl *ast.FuncDecl
	unit *PackageUnit
}

// funcIndex maps funcKeys to declarations across every loaded package.
type funcIndex struct {
	funcs map[funcKey]*indexedFunc
	// order lists the keys in deterministic (position) order.
	order []funcKey
}

// buildFuncIndex indexes every function declaration in units, skipping
// _test.go files (invariants bind non-test code only).
func buildFuncIndex(fset *token.FileSet, units []*PackageUnit) *funcIndex {
	idx := &funcIndex{funcs: map[funcKey]*indexedFunc{}}
	for _, unit := range units {
		for _, f := range unit.Files {
			if strings.HasSuffix(fset.Position(f.Pos()).Filename, "_test.go") {
				continue
			}
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, _ := unit.TypesInfo.Defs[fd.Name].(*types.Func)
				key, ok := keyOfFunc(obj)
				if !ok {
					continue
				}
				if _, dup := idx.funcs[key]; !dup {
					idx.order = append(idx.order, key)
				}
				idx.funcs[key] = &indexedFunc{decl: fd, unit: unit}
			}
		}
	}
	return idx
}

// lookupCall resolves a static call in unit to its indexed declaration.
// Dynamic calls (function values, interface methods) and functions whose
// packages were not loaded resolve to nil.
func (idx *funcIndex) lookupCall(unit *PackageUnit, call *ast.CallExpr) (*indexedFunc, funcKey) {
	fn := funcObj(unit.TypesInfo, call)
	key, ok := keyOfFunc(fn)
	if !ok {
		return nil, funcKey{}
	}
	return idx.funcs[key], key
}

// isPanicCall reports whether call is the builtin panic.
func isPanicCall(info *types.Info, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "panic"
}

// isErrorReturnFunc builds the cold-path classifier for a function: a
// return is an error return when the function's last result is an error
// and the returned value is not the nil literal. Naked returns count as
// success (conservative: named error results are rare here and a naked
// error return would only widen the hot region).
func isErrorReturnFunc(unit *PackageUnit, decl *ast.FuncDecl) func(*ast.ReturnStmt) bool {
	lastIsError := false
	if decl.Type.Results != nil && len(decl.Type.Results.List) > 0 {
		fields := decl.Type.Results.List
		last := fields[len(fields)-1]
		if t := unit.TypesInfo.Types[last.Type].Type; t != nil {
			lastIsError = types.Identical(t, types.Universe.Lookup("error").Type())
		}
	}
	return func(ret *ast.ReturnStmt) bool {
		if !lastIsError || len(ret.Results) == 0 {
			return false
		}
		last := ast.Unparen(ret.Results[len(ret.Results)-1])
		if id, ok := last.(*ast.Ident); ok && id.Name == "nil" {
			return false
		}
		return true
	}
}
