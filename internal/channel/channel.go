// Package channel implements the three enclave-to-enclave transfer paths
// the paper compares (§IV-C, §VI): the non-secure remote write (the
// baseline with no protection), the software secure channel (AES-GCM plus
// two extra memory copies — the state of the art MMT displaces), and MMT
// closure delegation.
//
// Each channel moves real bytes over the untrusted netsim interconnect and
// advances its node's simulated clock with costs from the sim.Profile, so
// one code path yields both functional results (what arrives, what is
// rejected) and the timing results of Table IV and Figures 10-14.
package channel

import (
	"errors"
	"fmt"

	"mmt/internal/netsim"
	"mmt/internal/sim"
	"mmt/internal/trace"
)

// Stats accumulates per-channel cost categories, mirroring the breakdown
// rows of Table IV.
type Stats struct {
	Messages    int
	Bytes       int
	Memcpy      sim.Cycles // copies between secure and non-secure memory
	RemoteWrite sim.Cycles // NIC/DMA serialization
	Encrypt     sim.Cycles
	Decrypt     sim.Cycles
	Delegation  sim.Cycles // MMT closure fixed costs (seal/unseal/ack)
}

// Total reports the accumulated cycles across categories.
func (s Stats) Total() sim.Cycles {
	return s.Memcpy + s.RemoteWrite + s.Encrypt + s.Decrypt + s.Delegation
}

// Channel errors.
var (
	ErrEmpty  = errors.New("channel: no pending message")
	ErrClosed = errors.New("channel: peer rejected the transfer")
)

// common holds the pieces every channel shares: the network endpoint, the
// peer's name, the cost profile and the running stats.
type common struct {
	ep    *netsim.Endpoint
	peer  string
	prof  *sim.Profile
	stats Stats
	probe *trace.Probe // nil = tracing disabled
}

// Stats returns a snapshot of the channel's accumulated costs.
func (c *common) Stats() Stats { return c.stats }

// ResetStats zeroes the accumulated costs.
func (c *common) ResetStats() { c.stats = Stats{} }

// Clock exposes the endpoint clock (benchmarks bracket it).
func (c *common) Clock() *sim.Clock { return c.ep.Clock() }

// SetTrace attaches a trace probe mirroring every cost charge into its
// phase accumulator. Nil disables tracing.
func (c *common) SetTrace(p *trace.Probe) { c.probe = p }

// charge advances the clock and the given stat bucket, mirroring the
// cost into the trace phase so per-phase totals sum to Stats.Total().
func (c *common) charge(bucket *sim.Cycles, ph trace.Phase, n sim.Cycles) {
	*bucket += n
	c.probe.AddCycles(ph, n)
	c.ep.Clock().AdvanceCycles(n)
}

// NonSecure is the unprotected remote-write channel: payload bytes go onto
// the wire as-is. It is the "Baseline" configuration of Figures 13 and 14.
type NonSecure struct {
	common
}

// NewNonSecure builds one side of a non-secure channel.
func NewNonSecure(ep *netsim.Endpoint, peer string, prof *sim.Profile) *NonSecure {
	return &NonSecure{common{ep: ep, peer: peer, prof: prof}}
}

// Send pushes payload to the peer: one remote write, no crypto, no copies.
func (c *NonSecure) Send(payload []byte) error {
	c.charge(&c.stats.RemoteWrite, trace.PhaseDMA, c.prof.RemoteWriteCost(len(payload)))
	c.probe.RecordOp(trace.OpRemoteWrite, c.prof.RemoteWriteCost(len(payload)))
	c.stats.Messages++
	c.stats.Bytes += len(payload)
	c.ep.Send(c.peer, netsim.KindData, payload)
	return nil
}

// Recv pops the next payload.
func (c *NonSecure) Recv() ([]byte, error) {
	m, ok := c.ep.Recv()
	if !ok {
		return nil, ErrEmpty
	}
	if m.Kind != netsim.KindData {
		return nil, fmt.Errorf("channel: unexpected %v message on non-secure channel", m.Kind)
	}
	return m.Payload, nil
}
