package core

import (
	"errors"
	"fmt"

	"mmt/internal/crypt"
	"mmt/internal/engine"
	"mmt/internal/forest"
)

// Delegation protocol errors.
var (
	// ErrReplay: the closure's root counter is not newer than the last one
	// accepted on this connection — a stale closure was re-injected.
	ErrReplay = errors.New("core: replayed MMT closure (counter not fresh)")
	// ErrReorder: the closure's global-unique address is not greater than
	// the previous one on this connection — packets were re-ordered.
	ErrReorder = errors.New("core: re-ordered MMT closure (address not monotonic)")
	// ErrAuth: the sealed root failed authentication (tampered or wrong
	// key).
	ErrAuth = crypt.ErrAuth
	// ErrIntegrity: a tree-node or line MAC inside the closure failed
	// verification during install (re-exported so delegation endpoints
	// can classify rejection verdicts without importing the tree).
	ErrIntegrity = engine.ErrIntegrity
	// ErrStaleCounter: the sender detected, before sealing, that this
	// MMT's root counter can no longer satisfy the connection's freshness
	// floor — a later delegation on the same connection already consumed a
	// higher counter. The peer would reject the closure with ErrReplay, so
	// BeginSend fails fast without mutating any state; re-acquire the
	// buffer (Conn.NextCounter) to delegate its contents.
	ErrStaleCounter = errors.New("core: stale root counter (connection floor has moved past this MMT)")
)

// Node is one machine's MMT runtime: the controller plus the integrity-
// forest address allocator and the per-region MMT state machines.
type Node struct {
	id    forest.NodeID
	ctl   *engine.Controller
	alloc *forest.Allocator
	mmts  map[int]*MMT
}

// NewNode binds a core runtime to an attested node id and its controller.
func NewNode(id forest.NodeID, ctl *engine.Controller) *Node {
	return &Node{id: id, ctl: ctl, alloc: forest.NewAllocator(id), mmts: make(map[int]*MMT)}
}

// ID reports the node's attested identity.
func (n *Node) ID() forest.NodeID { return n.id }

// Controller reports the node's MMT controller.
func (n *Node) Controller() *engine.Controller { return n.ctl }

// MMT is one migratable Merkle tree bound to a protection region, carrying
// the extended root state of §IV-B1 (state, key, counter, global-unique
// address — the key and counter themselves live in the controller/tree).
type MMT struct {
	node     *Node
	region   int
	state    State
	key      crypt.Key
	guaddr   uint64
	mode     TransferMode // how this MMT arrived / is being sent
	readOnly bool         // true for received ownership-copy MMTs
}

// Region reports the protection region this MMT covers.
func (m *MMT) Region() int { return m.region }

// State reports the MMT root state.
func (m *MMT) State() State { return m.state }

// GUAddr reports the MMT's global-unique address.
func (m *MMT) GUAddr() uint64 { return m.guaddr }

// Key reports the MMT key. The snapshot layer persists it: it is the only
// durable copy (hardware would keep it in the sealed root).
func (m *MMT) Key() crypt.Key { return m.key }

// Mode reports how this MMT arrived / is being sent.
func (m *MMT) Mode() TransferMode { return m.mode }

// ReadOnly reports whether this MMT arrived as an ownership copy.
func (m *MMT) ReadOnly() bool { return m.readOnly }

// Counter reports the current root counter.
func (m *MMT) Counter() uint64 { return m.node.ctl.RootCounter(m.region) }

// Acquire allocates an MMT over region: invalid -> valid with a fresh
// global-unique address and the given initial root counter ("a user can
// initialize the root counter with a given value when the MMT state is
// changed to valid"). Region contents are encrypted in place.
func (n *Node) Acquire(region int, key crypt.Key, initCounter uint64) (*MMT, error) {
	if old := n.mmts[region]; old != nil && old.state != StateInvalid {
		return nil, fmt.Errorf("%w: region %d is %v", ErrState, region, old.state)
	}
	guaddr := n.alloc.Next()
	if err := n.ctl.Enable(region, key, guaddr, initCounter); err != nil {
		return nil, err
	}
	m := &MMT{node: n, region: region, state: StateValid, key: key, guaddr: guaddr}
	n.mmts[region] = m
	return m, nil
}

// Get reports the MMT currently bound to region, if any.
func (n *Node) Get(region int) (*MMT, bool) {
	m, ok := n.mmts[region]
	if !ok || m.state == StateInvalid {
		return nil, false
	}
	return m, true
}

// AllocNext reports the allocator's next monotonic number (persisted so a
// reloaded node keeps its strictly-increasing address guarantee).
func (n *Node) AllocNext() uint64 { return n.alloc.NextValue() }

// RestoreNode rebuilds a core runtime from persisted state: the attested
// node id plus the allocator's next monotonic number. MMT records are
// reattached with RestoreMMT.
func RestoreNode(id forest.NodeID, ctl *engine.Controller, allocNext uint64) (*Node, error) {
	alloc, err := forest.RestoreAllocator(id, allocNext)
	if err != nil {
		return nil, err
	}
	return &Node{id: id, ctl: ctl, alloc: alloc, mmts: make(map[int]*MMT)}, nil
}

// RestoreMMT reattaches a persisted MMT record to region. It only rebuilds
// the root-state bookkeeping; the region's engine state (tree, ciphertext,
// MACs) must already have been installed — and therefore cryptographically
// verified — through the controller before calling this.
func (n *Node) RestoreMMT(region int, st State, key crypt.Key, guaddr uint64, mode TransferMode, readOnly bool) (*MMT, error) {
	if old := n.mmts[region]; old != nil && old.state != StateInvalid {
		return nil, fmt.Errorf("%w: region %d is %v", ErrState, region, old.state)
	}
	m := &MMT{node: n, region: region, state: st, key: key, guaddr: guaddr, mode: mode, readOnly: readOnly}
	n.mmts[region] = m
	return m, nil
}

// Read decrypts one line of the MMT's region (verifying the path).
func (m *MMT) Read(line int) ([]byte, error) {
	if m.state != StateValid && m.state != StateSending {
		return nil, fmt.Errorf("%w: read in state %v", ErrState, m.state)
	}
	return m.node.ctl.Read(m.region, line)
}

// Write encrypts one line into the MMT's region (updating the tree).
func (m *MMT) Write(line int, plaintext []byte) error {
	if m.state != StateValid {
		return fmt.Errorf("%w: write in state %v", ErrState, m.state)
	}
	if m.readOnly {
		return engine.ErrReadOnly
	}
	return m.node.ctl.Write(m.region, line, plaintext)
}

// WriteBytes writes a byte span starting at a line boundary, padding the
// final line with zeros. Convenience for message-passing payloads.
func (m *MMT) WriteBytes(startLine int, p []byte) error {
	lines := (len(p) + engine.LineSize - 1) / engine.LineSize
	for i := 0; i < lines; i++ {
		line := make([]byte, engine.LineSize)
		copy(line, p[i*engine.LineSize:])
		if err := m.Write(startLine+i, line); err != nil {
			return err
		}
	}
	return nil
}

// ReadBytes reads n bytes starting at a line boundary.
func (m *MMT) ReadBytes(startLine, n int) ([]byte, error) {
	out := make([]byte, 0, n)
	lines := (n + engine.LineSize - 1) / engine.LineSize
	for i := 0; i < lines; i++ {
		line, err := m.Read(startLine + i)
		if err != nil {
			return nil, err
		}
		out = append(out, line...)
	}
	return out[:n], nil
}

// Reclaim invalidates a valid MMT (valid -> invalid), dropping the key.
func (m *MMT) Reclaim() error {
	if err := checkTransition(m.state, StateInvalid); err != nil {
		return err
	}
	m.node.ctl.Invalidate(m.region)
	m.state = StateInvalid
	return nil
}

// Conn is one end's view of a delegation connection after the MMT key
// exchange (§IV-B2 step 1): the agreed MMT key, the last accepted root
// counter (freshness floor) and the last accepted global-unique address
// (ordering floor). Both endpoints hold a Conn initialised identically.
type Conn struct {
	key         crypt.Key
	lastCounter uint64
	lastGUAddr  uint64
}

// NewConn builds a connection endpoint with the agreed key and initial
// root counter.
func NewConn(key crypt.Key, initCounter uint64) *Conn {
	return &Conn{key: key, lastCounter: initCounter}
}

// Key reports the agreed MMT key.
func (c *Conn) Key() crypt.Key { return c.key }

// LastCounter reports the freshness floor (last accepted root counter).
func (c *Conn) LastCounter() uint64 { return c.lastCounter }

// LastGUAddr reports the ordering floor (last accepted global-unique
// address).
func (c *Conn) LastGUAddr() uint64 { return c.lastGUAddr }

// RestoreConn rebuilds a connection endpoint from persisted floors, so a
// reloaded cluster keeps rejecting exactly the replays and re-orderings
// the live one would have.
func RestoreConn(key crypt.Key, lastCounter, lastGUAddr uint64) *Conn {
	return &Conn{key: key, lastCounter: lastCounter, lastGUAddr: lastGUAddr}
}

// NextCounter returns a root-counter initial value guaranteed fresh for
// the next buffer acquired on this connection.
func (c *Conn) NextCounter() uint64 { return c.lastCounter + 1 }

// BeginSend starts a delegation (§IV-B2 steps 2-3 on the sender): the MMT
// moves valid -> sending, the region becomes read-only, the root counter
// is bumped, and the closure — sealed root, tree nodes, line MACs and raw
// ciphertext — is built. The caller puts the encoded closure on the wire.
func (m *MMT) BeginSend(conn *Conn, mode TransferMode) (*Closure, error) {
	if m.key != conn.key {
		return nil, fmt.Errorf("core: MMT key differs from connection key")
	}
	if err := checkTransition(m.state, StateSending); err != nil {
		return nil, err
	}
	if m.readOnly && mode == OwnershipTransfer {
		return nil, fmt.Errorf("%w: cannot transfer ownership of a read-only copy", ErrState)
	}
	ctl := m.node.ctl
	// Freshness pre-check: sealing bumps the root counter to cur+1 and the
	// peer rejects any closure whose counter is <= its floor. Failing here,
	// before any transition, keeps the MMT valid and writable.
	if cur := ctl.RootCounter(m.region); cur+1 <= conn.lastCounter {
		return nil, fmt.Errorf("%w: counter %d+1 <= floor %d", ErrStaleCounter, cur, conn.lastCounter)
	}
	if err := ctl.BumpRootCounter(m.region); err != nil {
		return nil, err
	}
	if err := ctl.SetMode(m.region, engine.ModeReadOnly); err != nil {
		return nil, err
	}
	m.state = StateSending
	m.mode = mode

	treeBytes, data, macs, rootCtr, guaddr, err := ctl.Export(m.region)
	if err != nil {
		return nil, err
	}
	e, err := ctl.Crypto(m.region)
	if err != nil {
		return nil, err
	}
	c := &Closure{
		Mode:        mode,
		GUAddrHint:  guaddr,
		CounterHint: rootCtr,
		TreeNodes:   treeBytes,
		LineMACs:    macs,
		Data:        data,
	}
	sealRoot(e, c, rootPlain{GUAddr: guaddr, Counter: rootCtr, Mode: mode})
	conn.lastCounter = rootCtr
	return c, nil
}

// CompleteSend finishes the sender side on ack (§IV-B2 step 4): ownership
// transfer invalidates the local MMT; ownership copy returns it to valid
// (writable again). A failed delegation (ack=false) also returns to valid
// so the sender can retry.
func (m *MMT) CompleteSend(ack bool) error {
	if m.state != StateSending {
		return fmt.Errorf("%w: CompleteSend in state %v", ErrState, m.state)
	}
	if ack && m.mode == OwnershipTransfer {
		m.node.ctl.Invalidate(m.region)
		m.state = StateInvalid
		return nil
	}
	var mode engine.Mode = engine.ModeReadWrite
	if m.readOnly {
		mode = engine.ModeReadOnly
	}
	if err := m.node.ctl.SetMode(m.region, mode); err != nil {
		return err
	}
	m.state = StateValid
	return nil
}

// Expect registers region as the receive buffer for the next delegation on
// conn: invalid -> waiting (§IV-B2 step 2 on the receiver).
func (n *Node) Expect(region int, conn *Conn) (*MMT, error) {
	if old := n.mmts[region]; old != nil && old.state != StateInvalid {
		return nil, fmt.Errorf("%w: region %d is %v", ErrState, region, old.state)
	}
	m := &MMT{node: n, region: region, state: StateWaiting, key: conn.key}
	n.mmts[region] = m
	return m, nil
}

// Cancel releases a waiting receive buffer (waiting -> invalid), freeing
// the region for a fresh Expect. Receivers call it when a delegation is
// rejected and the buffer record should not linger.
func (m *MMT) Cancel() error {
	if err := checkTransition(m.state, StateInvalid); err != nil {
		return err
	}
	if m.state != StateWaiting {
		return fmt.Errorf("%w: Cancel in state %v", ErrState, m.state)
	}
	m.state = StateInvalid
	return nil
}

// Accept runs the receiver side of the delegation (§IV-B2 step 3): unseal
// and authenticate the root under the connection key, enforce counter
// freshness and address monotonicity, verify every tree node and line MAC,
// and install the tree. On success the MMT is waiting -> valid (writable
// for ownership transfer, read-only for ownership copy) and the caller
// returns an ack to the sender. On any failure the region stays waiting
// and no state leaks.
func (m *MMT) Accept(conn *Conn, wire []byte) error {
	if m.state != StateWaiting {
		return fmt.Errorf("%w: Accept in state %v", ErrState, m.state)
	}
	c, err := DecodeClosure(wire)
	if err != nil {
		return err
	}
	e := crypt.NewEngine(conn.key)
	root, err := unsealRoot(e, c)
	if err != nil {
		return err
	}
	// Freshness: "reject any incoming MMT closure with less or the same
	// counter value".
	if root.Counter <= conn.lastCounter {
		return fmt.Errorf("%w: counter %d <= last %d", ErrReplay, root.Counter, conn.lastCounter)
	}
	// Ordering: "the address in the MMT root of the latter is larger than
	// the former".
	if root.GUAddr <= conn.lastGUAddr {
		return fmt.Errorf("%w: address %#x <= last %#x", ErrReorder, root.GUAddr, conn.lastGUAddr)
	}
	mode := engine.ModeReadWrite
	if c.Mode == OwnershipCopy {
		mode = engine.ModeReadOnly
	}
	if err := m.node.ctl.Install(m.region, conn.key, root.GUAddr, root.Counter,
		c.TreeNodes, c.Data, c.LineMACs, mode); err != nil {
		return err
	}
	conn.lastCounter = root.Counter
	conn.lastGUAddr = root.GUAddr
	m.state = StateValid
	m.guaddr = root.GUAddr
	m.mode = c.Mode
	m.readOnly = c.Mode == OwnershipCopy
	return nil
}
