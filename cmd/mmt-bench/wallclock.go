package main

// wallclock.go measures host wall-clock performance of the simulator
// itself: nanoseconds per protected line read/write/migration, and the
// wall-clock speedup of the parallel fig11 sweep over the serial one
// (with the two sidecars byte-compared — the speedup only counts if the
// output is identical). Wall-clock time is banned inside internal/ (the
// simclock analyzer: simulated results must be a pure function of the
// inputs); this file lives in cmd/ precisely because nothing here feeds
// back into a simulated number.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"mmt/internal/bench"
	"mmt/internal/crypt"
	"mmt/internal/engine"
	"mmt/internal/mem"
	"mmt/internal/sim"
	"mmt/internal/tree"
)

// WallclockSchema identifies the sidecar format to mmt-tracecheck.
const WallclockSchema = "mmt-wallclock/v1"

type wallclockMetric struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
	Unit  string  `json:"unit"` // "ns/op", "seconds", "x"
}

type wallclockReport struct {
	Schema     string            `json:"schema"`
	GOMAXPROCS int               `json:"gomaxprocs"`
	Workers    int               `json:"workers"`
	Profile    string            `json:"profile"`
	Metrics    []wallclockMetric `json:"metrics"`
}

// nsPerOp times f until the sample is long enough to trust (>= 100 ms),
// then keeps the best of three such samples: the minimum is the run
// least disturbed by the scheduler and the GC, which is the standard
// way to read a wall-clock microbenchmark on a shared machine.
func nsPerOp(f func()) float64 {
	sample := func() float64 {
		for n := 256; ; n *= 4 {
			start := time.Now()
			for i := 0; i < n; i++ {
				f()
			}
			if elapsed := time.Since(start); elapsed >= 100*time.Millisecond {
				return float64(elapsed.Nanoseconds()) / float64(n)
			}
		}
	}
	best := sample()
	for i := 0; i < 2; i++ {
		if s := sample(); s < best {
			best = s
		}
	}
	return best
}

// writeWallclock produces BENCH_wallclock.json in dir.
func writeWallclock(dir string, workers, accesses int) error {
	if accesses <= 0 {
		accesses = 20_000
	}
	prof := sim.Gem5Profile()
	geo := tree.ForLevels(3)
	pm := mem.New(mem.Config{
		Size:          2 * geo.DataSize(),
		RegionSize:    geo.DataSize(),
		MetaPerRegion: geo.MetaSize(),
	})
	ctl, err := engine.New(pm, geo, nil, prof)
	if err != nil {
		return err
	}
	key := crypt.KeyFromBytes([]byte("wallclock"))
	if err := ctl.Enable(0, key, 0x1000, 0); err != nil {
		return err
	}
	buf := make([]byte, mem.LineSize)
	lines := geo.Lines()
	for line := 0; line < lines; line++ {
		buf[0] = byte(line)
		if err := ctl.Write(0, line, buf); err != nil {
			return err
		}
	}

	var line int
	readNs := nsPerOp(func() {
		if err := ctl.ReadInto(0, line, buf); err != nil {
			panic(err)
		}
		line = (line + 1) % lines
	})
	writeNs := nsPerOp(func() {
		if err := ctl.Write(0, line, buf); err != nil {
			panic(err)
		}
		line = (line + 1) % lines
	})
	// One migration = export the region's closure and install it as a new
	// region on the same controller (the delegation round trip minus the
	// wire).
	migNs := nsPerOp(func() {
		treeBytes, data, macs, root, guaddr, err := ctl.Export(0)
		if err != nil {
			panic(err)
		}
		if err := ctl.Install(1, key, guaddr, root, treeBytes, data, macs, engine.ModeReadWrite); err != nil {
			panic(err)
		}
		ctl.Invalidate(1)
	})

	// Tree-only level-batched path verification at three heights: the
	// leaf-to-root walk alone (no controller, no data line), which is the
	// dominant crypto cost of a protected read. Deeper trees stress the
	// batch more: h7 verifies seven node MACs per walk in one
	// NodeHashBatch call.
	verifyNs := func(geo tree.Geometry) float64 {
		eng := crypt.NewEngine(key)
		tr, err := tree.New(geo, eng, 0x2000)
		if err != nil {
			panic(err)
		}
		ln := 0
		if err := tr.VerifyPath(eng, 0x2000, 0); err != nil {
			panic(err) // warm the scratch and mask caches
		}
		vlines := geo.Lines()
		return nsPerOp(func() {
			if err := tr.VerifyPath(eng, 0x2000, ln); err != nil {
				panic(err)
			}
			ln = (ln + 1) % vlines
		})
	}
	h3Ns := verifyNs(tree.ForLevels(3))
	h5Ns := verifyNs(tree.Geometry{Arities: []int{4, 4, 4, 4, 64}})
	h7Ns := verifyNs(tree.Geometry{Arities: []int{2, 2, 2, 2, 2, 2, 64}})

	// Serial vs parallel fig11 sweep: same bytes, less wall-clock.
	sweep := func(w int) ([]byte, float64, error) {
		bench.SetWorkers(w)
		defer bench.SetWorkers(workers)
		start := time.Now()
		sc, err := bench.SidecarForFigure("11", accesses)
		if err != nil {
			return nil, 0, err
		}
		b, err := sc.JSON()
		return b, time.Since(start).Seconds(), err
	}
	serialJSON, serialSec, err := sweep(1)
	if err != nil {
		return err
	}
	parallelJSON, parallelSec, err := sweep(workers)
	if err != nil {
		return err
	}
	if !bytes.Equal(serialJSON, parallelJSON) {
		return fmt.Errorf("wallclock: parallel fig11 sidecar differs from serial — determinism contract broken")
	}

	rep := &wallclockReport{
		Schema:     WallclockSchema,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Workers:    workers,
		Profile:    prof.Name,
		Metrics: []wallclockMetric{
			{Name: "protected-read", Value: readNs, Unit: "ns/op"},
			{Name: "protected-write", Value: writeNs, Unit: "ns/op"},
			{Name: "migration-export-install", Value: migNs, Unit: "ns/op"},
			{Name: "verifypath-h3", Value: h3Ns, Unit: "ns/op"},
			{Name: "verifypath-h5", Value: h5Ns, Unit: "ns/op"},
			{Name: "verifypath-h7", Value: h7Ns, Unit: "ns/op"},
			{Name: "fig11-serial", Value: serialSec, Unit: "seconds"},
			{Name: "fig11-parallel", Value: parallelSec, Unit: "seconds"},
			{Name: "fig11-speedup", Value: serialSec / parallelSec, Unit: "x"},
		},
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	path := filepath.Join(dir, "BENCH_wallclock.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s (read %.0f ns/op, write %.0f ns/op, migration %.0f ns/op, fig11 %.2fs -> %.2fs, %.2fx with %d workers)\n",
		path, readNs, writeNs, migNs, serialSec, parallelSec, serialSec/parallelSec, workers)
	return nil
}
