module mmt

go 1.24
