package forest

import (
	"sync"
	"testing"
	"testing/quick"
)

func TestComposeSplitRoundTrip(t *testing.T) {
	f := func(node uint16, mono uint32) bool {
		g := Compose(NodeID(node), uint64(mono))
		n, m := Split(g)
		return n == NodeID(node) && m == uint64(mono)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestComposeFitsGUAddrBits(t *testing.T) {
	g := Compose(NodeID(0xFFFF), 1<<42-1)
	if g >= 1<<GUAddrBits {
		t.Fatalf("address %#x exceeds %d bits", g, GUAddrBits)
	}
}

func TestComposePanicsOnOverflow(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Compose(1, 1<<42)
}

func TestAllocatorStrictlyIncreasing(t *testing.T) {
	a := NewAllocator(7)
	prev := uint64(0)
	for i := 0; i < 1000; i++ {
		g := a.Next()
		if g <= prev {
			t.Fatalf("address %#x not greater than previous %#x", g, prev)
		}
		prev = g
	}
}

func TestAllocatorsOnDifferentNodesDisjoint(t *testing.T) {
	a := NewAllocator(1)
	b := NewAllocator(2)
	seen := map[uint64]bool{}
	for i := 0; i < 100; i++ {
		for _, g := range []uint64{a.Next(), b.Next()} {
			if seen[g] {
				t.Fatalf("address %#x issued twice across nodes", g)
			}
			seen[g] = true
		}
	}
}

func TestAllocatorConcurrentUnique(t *testing.T) {
	a := NewAllocator(3)
	const workers, per = 8, 200
	out := make(chan uint64, workers*per)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				out <- a.Next()
			}
		}()
	}
	wg.Wait()
	close(out)
	seen := map[uint64]bool{}
	for g := range out {
		if seen[g] {
			t.Fatalf("duplicate address %#x under concurrency", g)
		}
		seen[g] = true
	}
	if len(seen) != workers*per {
		t.Fatalf("got %d unique addresses, want %d", len(seen), workers*per)
	}
}

func TestForestRegistry(t *testing.T) {
	f := NewForest()
	e := Entry{GUAddr: Compose(1, 5), Node: 1, Region: 3}
	if err := f.Add(e); err != nil {
		t.Fatal(err)
	}
	if err := f.Add(e); err == nil {
		t.Fatal("duplicate address accepted")
	}
	got, ok := f.Lookup(e.GUAddr)
	if !ok || got != e {
		t.Fatalf("Lookup = %+v, %v", got, ok)
	}
	if f.Size() != 1 {
		t.Fatalf("Size = %d", f.Size())
	}
	f.Remove(e.GUAddr)
	if _, ok := f.Lookup(e.GUAddr); ok {
		t.Fatal("entry survived Remove")
	}
}

func TestForestOnNode(t *testing.T) {
	f := NewForest()
	for i := 0; i < 5; i++ {
		node := NodeID(i % 2)
		if err := f.Add(Entry{GUAddr: Compose(node, uint64(i+1)), Node: node, Region: i}); err != nil {
			t.Fatal(err)
		}
	}
	if got := len(f.OnNode(0)); got != 3 {
		t.Fatalf("OnNode(0) = %d entries, want 3", got)
	}
	if got := len(f.OnNode(1)); got != 2 {
		t.Fatalf("OnNode(1) = %d entries, want 2", got)
	}
	if got := len(f.OnNode(9)); got != 0 {
		t.Fatalf("OnNode(9) = %d entries, want 0", got)
	}
}
