package nopanic

// Test helpers may panic (t.Fatal is unavailable in helpers without a
// testing.TB); the invariant binds non-test code, so nothing here is
// flagged.
func testOnlyPanic() {
	panic("test helper")
}
