package trace

import (
	"bytes"
	"encoding/json"
	"math"
	"testing"

	"mmt/internal/sim"
)

// TestBucketLayout: the fixed power-of-two layout — sub-cycle samples in
// bucket 0, sample c in bucket bits.Len64(c), clamped at the top.
func TestBucketLayout(t *testing.T) {
	cases := []struct {
		c    sim.Cycles
		want int
	}{
		{0, 0}, {0.25, 0}, {0.999, 0},
		{1, 1}, {1.5, 1},
		{2, 2}, {3, 2},
		{4, 3}, {7, 3},
		{1 << 20, 21},
		{math.MaxFloat64, HistBuckets - 1},
	}
	for _, tc := range cases {
		if got := bucketIndex(tc.c); got != tc.want {
			t.Errorf("bucketIndex(%v) = %d, want %d", tc.c, got, tc.want)
		}
	}
	if BucketBound(0) != 1 || BucketBound(1) != 2 || BucketBound(10) != 1024 {
		t.Fatalf("BucketBound broken: %v %v %v", BucketBound(0), BucketBound(1), BucketBound(10))
	}
	// Every sample is strictly below its bucket's upper bound (except the
	// clamped top bucket, which absorbs the tail).
	for i := 0; i < HistBuckets-1; i++ {
		b := BucketBound(i)
		if idx := bucketIndex(b - 0.5); idx != i {
			t.Errorf("sample just under bound %v landed in bucket %d, want %d", b, idx, i)
		}
	}
}

// TestHistogramStats: Record tracks exact count/min/max and the quantile
// walk returns bucket bounds, refined to the exact max in the last
// occupied bucket.
func TestHistogramStats(t *testing.T) {
	var h Histogram
	if h.Quantile(0.5) != 0 || h.Mean() != 0 {
		t.Fatalf("empty histogram not zero-valued")
	}
	for _, c := range []sim.Cycles{10, 20, 30, 40, 1000} {
		h.Record(c)
	}
	if h.Count != 5 || h.Min != 10 || h.Max != 1000 || h.Sum != 1100 {
		t.Fatalf("stats = %+v", h)
	}
	if got := h.Mean(); got != 220 {
		t.Fatalf("Mean = %v, want 220", got)
	}
	// p50 rank = ceil(0.5*5) = 3 → third sample (30) lives in [16,32).
	if got := h.Quantile(0.50); got != 32 {
		t.Fatalf("p50 = %v, want 32", got)
	}
	// p99 rank = 5 → last occupied bucket → exact max.
	if got := h.Quantile(0.99); got != 1000 {
		t.Fatalf("p99 = %v, want exact max 1000", got)
	}
	if got := h.Quantile(1.0); got != 1000 {
		t.Fatalf("p100 = %v, want 1000", got)
	}
	// Quantiles never decrease with q.
	prev := sim.Cycles(0)
	for _, q := range []float64{0.01, 0.25, 0.5, 0.75, 0.9, 0.99, 1} {
		v := h.Quantile(q)
		if v < prev {
			t.Fatalf("Quantile(%v) = %v < previous %v", q, v, prev)
		}
		prev = v
	}
}

// TestHistogramMergeMatchesSerial: splitting a sample stream across
// private histograms and merging them in input order reproduces the
// serial histogram bit for bit — the property the parallel runner's
// byte-identical exports rest on.
func TestHistogramMergeMatchesSerial(t *testing.T) {
	samples := make([]sim.Cycles, 0, 256)
	x := uint64(0x9e3779b97f4a7c15)
	for i := 0; i < 256; i++ {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		samples = append(samples, sim.Cycles(x%100000)+sim.Cycles(i)/3)
	}
	var serial Histogram
	for _, c := range samples {
		serial.Record(c)
	}
	for _, workers := range []int{2, 4, 8} {
		parts := make([]Histogram, workers)
		for i, c := range samples {
			// Contiguous chunks, as the parallel runner shards work units.
			parts[i*workers/len(samples)].Record(c)
		}
		var merged Histogram
		for i := range parts {
			merged.MergeFrom(&parts[i])
		}
		if merged != serial {
			t.Fatalf("workers=%d: merged != serial\nmerged: %+v\nserial: %+v", workers, merged, serial)
		}
		if math.Float64bits(float64(merged.Sum)) != math.Float64bits(float64(serial.Sum)) {
			t.Fatalf("workers=%d: Sum differs in bits", workers)
		}
	}
}

// TestRecordOpThroughSink: probes record into per-process histograms;
// Metrics.Op merges across processes; snapshots do not alias live state.
func TestRecordOpThroughSink(t *testing.T) {
	s := NewSink()
	a := s.Probe("alice")
	b := s.Probe("bob")
	a.RecordOp(OpLocalRead, 100)
	a.RecordOp(OpLocalRead, 200)
	b.RecordOp(OpLocalRead, 50)
	b.RecordOp(OpVerify, 40)

	m := s.Snapshot()
	h := m.Op(OpLocalRead)
	if h.Count != 3 || h.Min != 50 || h.Max != 200 {
		t.Fatalf("merged local-read = %+v", h)
	}
	if m.Op(OpVerify).Count != 1 || m.Op(OpReencrypt).Count != 0 {
		t.Fatalf("per-op separation broken")
	}
	// Snapshot is a copy.
	m.Procs[0].Ops[OpLocalRead].Count = 999
	if s.Snapshot().Procs[0].Ops[OpLocalRead].Count != 2 {
		t.Fatalf("snapshot aliased sink histograms")
	}
	// Reset zeroes histograms but keeps probes valid.
	s.Reset()
	if s.Snapshot().Op(OpLocalRead).Count != 0 {
		t.Fatalf("reset left histogram samples")
	}
	a.RecordOp(OpLocalRead, 7)
	if s.Snapshot().Op(OpLocalRead).Count != 1 {
		t.Fatalf("post-reset probe dead")
	}
}

// TestSinkMergeOpsAndLedger: Sink.Merge folds histograms per process and
// re-records ledger events with the destination's sequence numbers.
func TestSinkMergeOpsAndLedger(t *testing.T) {
	root := NewSink()
	root.Probe("alice").RecordOp(OpLocalWrite, 10)
	root.Probe("alice").Event(EvMigrationSend, 1e-6, 0x10, "d0")

	w := NewSink()
	w.Probe("alice").RecordOp(OpLocalWrite, 30)
	w.Probe("carol").RecordOp(OpRemoteRead, 5)
	w.Probe("carol").Event(EvAuthFail, 2e-6, 0x20, "d1")

	root.Merge(w)
	m := root.Snapshot()
	if h := m.Op(OpLocalWrite); h.Count != 2 || h.Max != 30 {
		t.Fatalf("merged local-write = %+v", h)
	}
	if m.Op(OpRemoteRead).Count != 1 {
		t.Fatalf("new proc histogram lost in merge")
	}
	evs := root.SecEvents()
	if len(evs) != 2 || evs[0].Seq != 1 || evs[1].Seq != 2 {
		t.Fatalf("merged ledger seqs = %+v", evs)
	}
	if evs[1].Proc != "carol" || evs[1].Kind != EvAuthFail {
		t.Fatalf("merged event = %+v", evs[1])
	}
}

// TestHistJSONShape: the export is valid JSON with the schema tag, name-
// sorted procs, enum-ordered ops, sparse buckets — and byte-identical
// across identically-assembled sinks regardless of merge topology.
func TestHistJSONShape(t *testing.T) {
	build := func(workers int) *Sink {
		root := NewSink()
		if workers <= 1 {
			p := root.Probe("bob")
			q := root.Probe("alice")
			for i := 0; i < 10; i++ {
				p.RecordOp(OpLocalRead, sim.Cycles(100+i*37))
				q.RecordOp(OpVerify, sim.Cycles(50+i*11))
			}
			return root
		}
		parts := make([]*Sink, workers)
		for wi := range parts {
			parts[wi] = NewSink()
		}
		for i := 0; i < 10; i++ {
			w := parts[i*workers/10]
			w.Probe("bob").RecordOp(OpLocalRead, sim.Cycles(100+i*37))
			w.Probe("alice").RecordOp(OpVerify, sim.Cycles(50+i*11))
		}
		for _, w := range parts {
			root.Merge(w)
		}
		return root
	}
	var ref bytes.Buffer
	if err := build(1).WriteHistJSON(&ref); err != nil {
		t.Fatalf("export: %v", err)
	}
	var doc struct {
		Schema string `json:"schema"`
		Procs  []struct {
			Proc string `json:"proc"`
			Ops  []struct {
				Op      string  `json:"op"`
				Count   uint64  `json:"count"`
				P50     float64 `json:"p50_cycles"`
				P99     float64 `json:"p99_cycles"`
				Buckets []struct {
					Le    float64 `json:"le_cycles"`
					Count uint64  `json:"count"`
				} `json:"buckets"`
			} `json:"ops"`
		} `json:"procs"`
	}
	if err := json.Unmarshal(ref.Bytes(), &doc); err != nil {
		t.Fatalf("export not valid JSON: %v\n%s", err, ref.String())
	}
	if doc.Schema != HistSchema {
		t.Fatalf("schema = %q", doc.Schema)
	}
	if len(doc.Procs) != 2 || doc.Procs[0].Proc != "alice" || doc.Procs[1].Proc != "bob" {
		t.Fatalf("procs not name-sorted: %+v", doc.Procs)
	}
	if len(doc.Procs[1].Ops) != 1 || doc.Procs[1].Ops[0].Op != "local-read" || doc.Procs[1].Ops[0].Count != 10 {
		t.Fatalf("bob ops = %+v", doc.Procs[1].Ops)
	}
	var total uint64
	for _, b := range doc.Procs[1].Ops[0].Buckets {
		if b.Count == 0 {
			t.Fatalf("export lists empty bucket")
		}
		total += b.Count
	}
	if total != 10 {
		t.Fatalf("bucket counts sum to %d, want 10", total)
	}
	for _, workers := range []int{2, 4, 8} {
		var out bytes.Buffer
		if err := build(workers).WriteHistJSON(&out); err != nil {
			t.Fatalf("workers=%d export: %v", workers, err)
		}
		if !bytes.Equal(ref.Bytes(), out.Bytes()) {
			t.Fatalf("workers=%d hist JSON differs from serial:\n%s\nvs\n%s", workers, ref.String(), out.String())
		}
	}
	// Nil sink still writes a valid, empty document.
	var empty bytes.Buffer
	if err := (*Sink)(nil).WriteHistJSON(&empty); err != nil {
		t.Fatalf("nil export: %v", err)
	}
	if err := json.Unmarshal(empty.Bytes(), &doc); err != nil {
		t.Fatalf("nil export invalid: %v", err)
	}
}

// TestZeroAllocDisabledOpsAndEvents: the new histogram and ledger entry
// points preserve the nil-probe zero-allocation contract, and enabled
// RecordOp stays allocation-free too (it only touches fixed arrays).
func TestZeroAllocDisabledOpsAndEvents(t *testing.T) {
	var p *Probe
	if a := testing.AllocsPerRun(1000, func() {
		p.RecordOp(OpLocalRead, 123)
		p.Event(EvIntegrityFail, 1e-6, 0x40, "tamper")
	}); a != 0 {
		t.Fatalf("disabled probe allocates %v per op", a)
	}
	s := NewSink()
	q := s.Probe("alice")
	q.RecordOp(OpLocalRead, 1) // warm
	if a := testing.AllocsPerRun(1000, func() {
		q.RecordOp(OpLocalRead, 123)
	}); a != 0 {
		t.Fatalf("enabled RecordOp allocates %v per op", a)
	}
}

func BenchmarkRecordOpDisabled(b *testing.B) {
	var p *Probe
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p.RecordOp(OpLocalRead, sim.Cycles(i))
	}
}

func BenchmarkRecordOpEnabled(b *testing.B) {
	p := NewSink().Probe("bench")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p.RecordOp(OpLocalRead, sim.Cycles(i))
	}
}
