package mmt

import (
	"bytes"
	"crypto/sha256"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"sync"
	"testing"

	"mmt/internal/sim"
	"mmt/internal/store"
)

// persistSecret is the payload every persistence test pushes through a
// delegated buffer; restored clusters must read it back verbatim.
var persistSecret = []byte("durable secret payload 0123456789")

// buildPersistCluster builds the standard two-machine workload: alice's
// producer delegates a written buffer to bob's consumer, who has received
// it. The cluster is quiescent on return. Error-returning so round-trip
// workers can run it off the test goroutine.
func buildPersistCluster() (*Cluster, *Link, error) {
	c, err := New(WithTreeLevels(2), WithRegions(4))
	if err != nil {
		return nil, nil, err
	}
	a, err := c.AddMachine("alice")
	if err != nil {
		return nil, nil, err
	}
	b, err := c.AddMachine("bob")
	if err != nil {
		return nil, nil, err
	}
	sender := a.Spawn("producer", []byte("code-a"))
	receiver := b.Spawn("consumer", []byte("code-b"))
	link, err := c.Connect(sender, receiver)
	if err != nil {
		return nil, nil, err
	}
	buf, err := link.NewBuffer(sender)
	if err != nil {
		return nil, nil, err
	}
	if err := buf.Write(0, persistSecret); err != nil {
		return nil, nil, err
	}
	if err := link.Delegate(buf, OwnershipTransfer); err != nil {
		return nil, nil, err
	}
	if _, err := link.Receive(receiver); err != nil {
		return nil, nil, err
	}
	return c, link, nil
}

func persistCluster(t testing.TB) (*Cluster, *Link) {
	t.Helper()
	c, link, err := buildPersistCluster()
	if err != nil {
		t.Fatal(err)
	}
	return c, link
}

// validBuffers resolves the named machine's first enclave's buffers that
// hold live (valid-state) data — filtering out the armed receive buffers
// every link endpoint also owns. This is the restored-handle path
// (Enclave.Buffers + Enclave.Buffer) every load test uses.
func validBuffers(c *Cluster, machine string) ([]*Buffer, error) {
	m, ok := c.Machine(machine)
	if !ok {
		return nil, fmt.Errorf("machine %q missing after restore", machine)
	}
	encs := m.Enclaves()
	if len(encs) == 0 {
		return nil, fmt.Errorf("no enclaves on %q after restore", machine)
	}
	var out []*Buffer
	for _, cap := range encs[0].Buffers() {
		buf, err := encs[0].Buffer(cap)
		if err != nil {
			return nil, err
		}
		st, err := buf.Stats()
		if err != nil {
			return nil, err
		}
		if st.State == "valid" {
			out = append(out, buf)
		}
	}
	return out, nil
}

// readBackE fetches n bytes from the single live buffer on machine.
func readBackE(c *Cluster, machine string, n int) ([]byte, error) {
	bufs, err := validBuffers(c, machine)
	if err != nil {
		return nil, err
	}
	if len(bufs) != 1 {
		return nil, fmt.Errorf("want 1 live buffer on %s, got %d", machine, len(bufs))
	}
	return bufs[0].Read(0, n)
}

func readBack(t *testing.T, c *Cluster, machine string, n int) []byte {
	t.Helper()
	data, err := readBackE(c, machine, n)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestSaveLoadSaveByteIdentical is the snapshot determinism contract:
// Save → Load → Save must reproduce the first snapshot byte for byte.
// The sweep runs the round trip on 1/2/4/8 concurrent clusters (the
// -race run then also proves the persistence surface shares no state
// across clusters).
func TestSaveLoadSaveByteIdentical(t *testing.T) {
	roundTrip := func() error {
		c, _, err := buildPersistCluster()
		if err != nil {
			return err
		}
		var first bytes.Buffer
		man, err := c.Save(&first)
		if err != nil {
			return fmt.Errorf("save: %w", err)
		}
		if man.Schema != "mmt-manifest/v1" || len(man.Machines) != 2 || len(man.Links) != 1 {
			return fmt.Errorf("bad manifest: %+v", man)
		}
		c2, err := Load(bytes.NewReader(first.Bytes()))
		if err != nil {
			return fmt.Errorf("load: %w", err)
		}
		// Byte-compare before touching the restored cluster: reading data
		// (correctly) advances its simulated clock and stats.
		var second bytes.Buffer
		if _, err := c2.Save(&second); err != nil {
			return fmt.Errorf("re-save: %w", err)
		}
		if !bytes.Equal(first.Bytes(), second.Bytes()) {
			return fmt.Errorf("second snapshot differs: %d vs %d bytes", first.Len(), second.Len())
		}
		if got, err := readBackE(c2, "bob", len(persistSecret)); err != nil || !bytes.Equal(got, persistSecret) {
			return fmt.Errorf("restored payload %q (%v)", got, err)
		}
		return nil
	}
	for _, workers := range []int{1, 2, 4, 8} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			errs := make([]error, workers)
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					errs[w] = roundTrip()
				}()
			}
			wg.Wait()
			for w, err := range errs {
				if err != nil {
					t.Errorf("worker %d: %v", w, err)
				}
			}
		})
	}
}

// TestLoadVerifiesHash: any flipped byte in a snapshot stream fails the
// load with ErrBadSnapshot — there is no partially-trusted restore.
func TestLoadVerifiesHash(t *testing.T) {
	c, _ := persistCluster(t)
	var snap bytes.Buffer
	if _, err := c.Save(&snap); err != nil {
		t.Fatal(err)
	}
	for _, off := range []int{len(snapMagic) + 3, snap.Len() / 2, snap.Len() - 1} {
		tampered := append([]byte(nil), snap.Bytes()...)
		tampered[off] ^= 1
		if _, err := Load(bytes.NewReader(tampered)); !errors.Is(err, ErrBadSnapshot) {
			t.Errorf("flip at %d: want ErrBadSnapshot, got %v", off, err)
		}
	}
}

// TestLoadRejectsStructuralOptions: the snapshot pins the structural
// settings; passing them to Load (or Open) is a caller error.
func TestLoadRejectsStructuralOptions(t *testing.T) {
	c, _ := persistCluster(t)
	var snap bytes.Buffer
	if _, err := c.Save(&snap); err != nil {
		t.Fatal(err)
	}
	for _, opt := range []Option{WithTreeLevels(3), WithRegions(2), WithProfile(sim.IntelProfile()), WithNetLatency(1e-6)} {
		if _, err := Load(bytes.NewReader(snap.Bytes()), opt); err == nil {
			t.Error("Load accepted a structural option")
		}
	}
	if _, err := Open(t.TempDir(), WithStore("x")); err == nil {
		t.Error("Open accepted WithStore")
	}
}

// TestSaveNotQuiescent: an unacked delegation in flight (an adversary is
// holding the closure) makes Save fail with ErrNotQuiescent rather than
// capture a torn cluster.
func TestSaveNotQuiescent(t *testing.T) {
	c, err := New(WithTreeLevels(2), WithRegions(6))
	if err != nil {
		t.Fatal(err)
	}
	a, _ := c.AddMachine("alice")
	b, _ := c.AddMachine("bob")
	sender := a.Spawn("producer", nil)
	receiver := b.Spawn("consumer", nil)
	link, err := c.Connect(sender, receiver)
	if err != nil {
		t.Fatal(err)
	}
	// Hold the first closure on the wire (reorderer semantics: it is
	// released swapped with the second).
	var held *WireMessage
	c.SetInterposer(tamperFunc(func(m WireMessage) []WireMessage {
		if m.Kind != WireClosure {
			return []WireMessage{m}
		}
		if held == nil {
			cp := m
			held = &cp
			return nil
		}
		first := *held
		held = nil
		first.ArriveAt = m.ArriveAt
		return []WireMessage{m, first}
	}))
	buf, err := link.NewBuffer(sender)
	if err != nil {
		t.Fatal(err)
	}
	if err := link.Delegate(buf, OwnershipTransfer); err != nil {
		t.Fatalf("held delegation should not error yet: %v", err)
	}
	if _, err := c.Save(&bytes.Buffer{}); !errors.Is(err, ErrNotQuiescent) {
		t.Fatalf("want ErrNotQuiescent with a held closure, got %v", err)
	}
	// Second delegation releases the swapped pair; the protocol rejects
	// the out-of-order closure and the cluster settles again.
	buf2, err := link.NewBuffer(sender)
	if err != nil {
		t.Fatal(err)
	}
	if err := link.Delegate(buf2, OwnershipTransfer); err == nil {
		t.Fatal("re-ordered delegation pair was accepted")
	}
	c.SetInterposer(nil)
	if _, err := c.Save(&bytes.Buffer{}); err != nil {
		t.Fatalf("save after settling: %v", err)
	}
}

// TestStoreLifecycle: New(WithStore) → work → Close (final checkpoint) →
// Open resumes the exact state and delegation keeps working; a second New
// on the same committed store is refused.
func TestStoreLifecycle(t *testing.T) {
	dir := t.TempDir()
	c, err := New(WithTreeLevels(2), WithRegions(4), WithStore(dir))
	if err != nil {
		t.Fatal(err)
	}
	a, _ := c.AddMachine("alice")
	b, _ := c.AddMachine("bob")
	sender := a.Spawn("producer", nil)
	receiver := b.Spawn("consumer", nil)
	link, err := c.Connect(sender, receiver)
	if err != nil {
		t.Fatal(err)
	}
	buf, err := link.NewBuffer(sender)
	if err != nil {
		t.Fatal(err)
	}
	if err := buf.Write(0, persistSecret); err != nil {
		t.Fatal(err)
	}
	if err := c.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// Dirty-only movement (past the secret) then a delta checkpoint.
	if err := buf.Write(64, []byte("moremoremore")); err != nil {
		t.Fatal(err)
	}
	if err := c.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	if _, err := New(WithStore(dir)); err == nil {
		t.Fatal("New accepted a committed store")
	}

	c2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got := readBack(t, c2, "alice", len(persistSecret)); !bytes.Equal(got, persistSecret) {
		t.Fatalf("restored payload %q", got)
	}
	// Delegation resumes on the restored link.
	links := c2.Links()
	if len(links) != 1 {
		t.Fatalf("want 1 restored link, got %d", len(links))
	}
	link2 := links[0]
	bufs, err := validBuffers(c2, "alice")
	if err != nil || len(bufs) != 1 {
		t.Fatalf("alice buffers after resume: %v (%v)", bufs, err)
	}
	if err := link2.Delegate(bufs[0], OwnershipTransfer); err != nil {
		t.Fatalf("delegation after resume: %v", err)
	}
	bm, _ := c2.Machine("bob")
	if _, err := link2.Receive(bm.Enclaves()[0]); err != nil {
		t.Fatal(err)
	}
	if err := c2.Close(); err != nil {
		t.Fatal(err)
	}

	// Third generation sees the delegation's outcome.
	c3, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got := readBack(t, c3, "bob", len(persistSecret)); !bytes.Equal(got, persistSecret) {
		t.Fatalf("delegated payload lost across resume: %q", got)
	}
	if err := c3.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestOpenEmptyStore: a store directory that never committed is not a
// resumable cluster.
func TestOpenEmptyStore(t *testing.T) {
	dir := t.TempDir()
	c, err := New(WithTreeLevels(2), WithRegions(4), WithStore(dir))
	if err != nil {
		t.Fatal(err)
	}
	// Attach only; never checkpoint. Close writes the final checkpoint, so
	// drop the store first (white box: simulate a crash before any commit).
	c.ckpt.Close()
	c.ckpt = nil
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); !errors.Is(err, ErrNoSnapshot) {
		t.Fatalf("want ErrNoSnapshot, got %v", err)
	}
	if _, err := Open(filepath.Join(dir, "never-existed")); !errors.Is(err, ErrNoSnapshot) {
		t.Fatalf("fresh dir: want ErrNoSnapshot, got %v", err)
	}
}

// TestCheckpointCrashConsistency is the end-to-end crash simulator: the
// cluster checkpoints into an in-memory journaled store while doing real
// work, then every kill point (not just batch boundaries) is replayed
// under every disk model. Each recovered image must open to exactly one
// of the committed cluster states — verified down to the snapshot hash by
// openFromStore's re-encode check — or hold no commit at all (a crash
// before the first commit became durable). Torn or hybrid state is a
// failure anywhere.
func TestCheckpointCrashConsistency(t *testing.T) {
	c, err := New(WithTreeLevels(2), WithRegions(4))
	if err != nil {
		t.Fatal(err)
	}
	fs := store.NewMemFS()
	st, err := store.Open(fs)
	if err != nil {
		t.Fatal(err)
	}
	c.ckpt = st // white box: an in-memory store instead of WithStore's Dir

	oracle := map[uint64]string{} // epoch -> hex-ish oracle key (hash bytes as string)
	checkpoint := func() {
		t.Helper()
		m, err := c.buildModel()
		if err != nil {
			t.Fatal(err)
		}
		want := sha256.Sum256(encodeModel(m))
		if err := c.Checkpoint(); err != nil {
			t.Fatal(err)
		}
		oracle[st.Epoch()] = string(want[:])
	}

	// Epoch 1: base (structure just appeared).
	a, _ := c.AddMachine("alice")
	b, _ := c.AddMachine("bob")
	sender := a.Spawn("producer", nil)
	receiver := b.Spawn("consumer", nil)
	link, err := c.Connect(sender, receiver)
	if err != nil {
		t.Fatal(err)
	}
	checkpoint()
	// Epoch 2: base again (buffer allocation is structural).
	buf, err := link.NewBuffer(sender)
	if err != nil {
		t.Fatal(err)
	}
	if err := buf.Write(0, persistSecret); err != nil {
		t.Fatal(err)
	}
	checkpoint()
	// Epoch 3: dirty-line delta only.
	if err := buf.Write(64, bytes.Repeat([]byte("x"), 200)); err != nil {
		t.Fatal(err)
	}
	checkpoint()
	// Epoch 4: base (delegation moved capabilities).
	if err := link.Delegate(buf, OwnershipTransfer); err != nil {
		t.Fatal(err)
	}
	if _, err := link.Receive(receiver); err != nil {
		t.Fatal(err)
	}
	checkpoint()

	if got := len(oracle); got != 4 {
		t.Fatalf("expected 4 committed epochs, got %d", got)
	}

	// The sweep. Every kill point k is "crashed just before journal op k".
	sawCommit := false
	for k := 0; k <= fs.Ops(); k++ {
		for _, mode := range store.ReplayModes {
			name := fmt.Sprintf("kill=%d/%s", k, mode)
			rfs := store.NewMemFSFrom(fs.StateAt(k, mode))
			rst, err := store.Open(rfs)
			if err != nil {
				t.Fatalf("%s: recovery open: %v", name, err)
			}
			if !rst.HasCommit() {
				rst.Close()
				continue
			}
			cr, err := rst.Committed()
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			wantHash, ok := oracle[cr.Epoch]
			if !ok {
				t.Fatalf("%s: recovered epoch %d was never committed", name, cr.Epoch)
			}
			if string(cr.RootHash[:]) != wantHash {
				t.Fatalf("%s: epoch %d hash mismatch", name, cr.Epoch)
			}
			rc, err := openFromStore(rst, defaultSettings())
			if err != nil {
				t.Fatalf("%s: resume: %v", name, err)
			}
			// openFromStore re-encoded the restored cluster and verified it
			// against cr.RootHash; reading the payload back is the cherry on
			// top for epochs that carried it.
			if cr.Epoch >= 2 {
				owner := "alice"
				if cr.Epoch >= 4 {
					owner = "bob"
				}
				if got := readBack(t, rc, owner, len(persistSecret)); !bytes.Equal(got, persistSecret) {
					t.Fatalf("%s: payload %q", name, got)
				}
			}
			rc.ckpt.Close()
			sawCommit = true
		}
	}
	if !sawCommit {
		t.Fatal("sweep never saw a committed store")
	}
	// A clean shutdown recovers the newest epoch under every disk model.
	for _, mode := range store.ReplayModes {
		rfs := store.NewMemFSFrom(fs.StateAt(fs.Ops(), mode))
		rst, err := store.Open(rfs)
		if err != nil {
			t.Fatal(err)
		}
		cr, err := rst.Committed()
		if err != nil {
			t.Fatal(err)
		}
		if cr.Epoch != 4 {
			t.Fatalf("clean shutdown under %s recovered epoch %d, want 4", mode, cr.Epoch)
		}
		rst.Close()
	}
}

// TestArtifactRoundTrip: export a closure from one cluster instance, load
// a snapshot of the same cluster elsewhere, and import the serialized
// artifact there — "save on machine A, load on machine B, delegation
// resumes". The artifact goes through WriteTo/ReadArtifact to prove the
// byte form carries everything.
func TestArtifactRoundTrip(t *testing.T) {
	c, err := New(WithTreeLevels(2), WithRegions(4))
	if err != nil {
		t.Fatal(err)
	}
	a, _ := c.AddMachine("alice")
	b, _ := c.AddMachine("bob")
	sender := a.Spawn("producer", nil)
	receiver := b.Spawn("consumer", nil)
	link, err := c.Connect(sender, receiver)
	if err != nil {
		t.Fatal(err)
	}
	buf, err := link.NewBuffer(sender)
	if err != nil {
		t.Fatal(err)
	}
	if err := buf.Write(0, persistSecret); err != nil {
		t.Fatal(err)
	}

	// Snapshot the cluster BEFORE the export: the loaded copy's link has
	// the old counter floor, so the artifact (sealed after the save) is
	// fresh for it.
	var snap bytes.Buffer
	if _, err := c.Save(&snap); err != nil {
		t.Fatal(err)
	}
	art, err := link.Export(buf, OwnershipTransfer)
	if err != nil {
		t.Fatal(err)
	}
	// Ownership left with the artifact: the local buffer is consumed.
	if _, err := buf.Read(0, 8); err == nil {
		t.Fatal("exported buffer still readable after ownership transfer")
	}
	var file bytes.Buffer
	if _, err := art.WriteTo(&file); err != nil {
		t.Fatal(err)
	}

	c2, err := Load(bytes.NewReader(snap.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	art2, err := ReadArtifact(bytes.NewReader(file.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if art2.LinkID() != link.ID() || art2.Mode() != OwnershipTransfer {
		t.Fatalf("artifact header: %q %v", art2.LinkID(), art2.Mode())
	}
	link2, ok := c2.Link(link.ID())
	if !ok {
		t.Fatal("link missing after load")
	}
	bm, _ := c2.Machine("bob")
	got, err := link2.Import(art2, bm.Enclaves()[0])
	if err != nil {
		t.Fatalf("import: %v", err)
	}
	data, err := got.Read(0, len(persistSecret))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, persistSecret) {
		t.Fatalf("imported payload %q", data)
	}
	// Replay: importing the same artifact again must be rejected (the
	// counter floor moved past it).
	if _, err := link2.Import(art2, bm.Enclaves()[0]); err == nil {
		t.Fatal("replayed artifact accepted")
	}
}

// TestArtifactTamperDetected: file-level corruption fails ReadArtifact's
// checksum; corruption past the checksum (a forged frame around a
// tampered closure) is rejected by the import's cryptographic checks.
func TestArtifactTamperDetected(t *testing.T) {
	c, err := New(WithTreeLevels(2), WithRegions(4))
	if err != nil {
		t.Fatal(err)
	}
	a, _ := c.AddMachine("alice")
	b, _ := c.AddMachine("bob")
	sender := a.Spawn("producer", nil)
	receiver := b.Spawn("consumer", nil)
	link, err := c.Connect(sender, receiver)
	if err != nil {
		t.Fatal(err)
	}
	buf, err := link.NewBuffer(sender)
	if err != nil {
		t.Fatal(err)
	}
	art, err := link.Export(buf, OwnershipTransfer)
	if err != nil {
		t.Fatal(err)
	}
	var file bytes.Buffer
	if _, err := art.WriteTo(&file); err != nil {
		t.Fatal(err)
	}
	flipped := append([]byte(nil), file.Bytes()...)
	flipped[len(flipped)/2] ^= 1
	if _, err := ReadArtifact(bytes.NewReader(flipped)); !errors.Is(err, ErrBadArtifact) {
		t.Fatalf("want ErrBadArtifact, got %v", err)
	}
	// Forge: tamper the closure and rewrite a valid frame around it.
	forged := &Artifact{linkID: art.linkID, mode: art.mode, wire: append([]byte(nil), art.wire...)}
	forged.wire[len(forged.wire)/2] ^= 1
	if _, err := link.Import(forged, receiver); err == nil {
		t.Fatal("tampered closure imported")
	}
}

// TestManifestJSON: the manifest round-trips through its JSON schema with
// the fields CI consumes.
func TestManifestJSON(t *testing.T) {
	c, _ := persistCluster(t)
	man, err := c.Manifest()
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := man.WriteJSON(&out); err != nil {
		t.Fatal(err)
	}
	var decoded map[string]any
	if err := json.Unmarshal(out.Bytes(), &decoded); err != nil {
		t.Fatal(err)
	}
	if decoded["schema"] != "mmt-manifest/v1" {
		t.Fatalf("schema = %v", decoded["schema"])
	}
	if len(man.RootHash) != 64 {
		t.Fatalf("root hash %q", man.RootHash)
	}
	if man.Machines[0].Name != "alice" || man.Machines[1].LiveRegions == 0 {
		t.Fatalf("machines: %+v", man.Machines)
	}
}

// TestCrossProcessMigration is the acceptance test for the two-file
// store: a cluster checkpointed by one OS process is opened by a second
// process (a re-exec of this test binary), which completes a delegation
// and checkpoints; the first process then reopens the store and observes
// the delegation's result.
func TestCrossProcessMigration(t *testing.T) {
	if dir := os.Getenv("MMT_MIGRATION_CHILD"); dir != "" {
		crossProcessChild(t, dir)
		return
	}
	dir := t.TempDir()
	c, err := New(WithTreeLevels(2), WithRegions(4), WithStore(dir))
	if err != nil {
		t.Fatal(err)
	}
	a, _ := c.AddMachine("alice")
	b, _ := c.AddMachine("bob")
	sender := a.Spawn("producer", nil)
	receiver := b.Spawn("consumer", nil)
	link, err := c.Connect(sender, receiver)
	if err != nil {
		t.Fatal(err)
	}
	buf, err := link.NewBuffer(sender)
	if err != nil {
		t.Fatal(err)
	}
	if err := buf.Write(0, persistSecret); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil { // final checkpoint commits the state
		t.Fatal(err)
	}

	cmd := exec.Command(os.Args[0], "-test.run", "^TestCrossProcessMigration$")
	cmd.Env = append(os.Environ(), "MMT_MIGRATION_CHILD="+dir)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("child process failed: %v\n%s", err, out)
	}

	c2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if got := readBack(t, c2, "bob", len(persistSecret)); !bytes.Equal(got, persistSecret) {
		t.Fatalf("delegation done in the child is not visible: %q", got)
	}
	if bufs, err := validBuffers(c2, "alice"); err != nil || len(bufs) != 0 {
		t.Fatalf("ownership transfer left the sender holding %v (%v)", bufs, err)
	}
}

// crossProcessChild is the second process: open, delegate, checkpoint.
func crossProcessChild(t *testing.T, dir string) {
	c, err := Open(dir)
	if err != nil {
		t.Fatalf("child open: %v", err)
	}
	links := c.Links()
	if len(links) != 1 {
		t.Fatalf("child: want 1 link, got %d", len(links))
	}
	link := links[0]
	bufs, err := validBuffers(c, "alice")
	if err != nil || len(bufs) != 1 {
		t.Fatalf("child: alice buffers %v (%v)", bufs, err)
	}
	if err := link.Delegate(bufs[0], OwnershipTransfer); err != nil {
		t.Fatalf("child delegation: %v", err)
	}
	bm, _ := c.Machine("bob")
	if _, err := link.Receive(bm.Enclaves()[0]); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestWireKindValuesAligned pins the public WireKind values to the
// internal transport's (the adapter converts by cast).
func TestWireKindValuesAligned(t *testing.T) {
	if WireData != 0 || WireClosure != 1 || WireControl != 2 {
		t.Fatalf("wire kinds drifted: %d %d %d", WireData, WireClosure, WireControl)
	}
	names := map[WireKind]string{WireData: "data", WireClosure: "closure", WireControl: "control", WireKind(9): "unknown"}
	for k, want := range names {
		if k.String() != want {
			t.Errorf("%d.String() = %q", k, k.String())
		}
	}
}
