package par

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
)

// TestMapStableOrder: results land in input order at every worker count.
func TestMapStableOrder(t *testing.T) {
	items := make([]int, 100)
	for i := range items {
		items[i] = i
	}
	for _, workers := range []int{0, 1, 2, 3, 8, 100, 1000} {
		got, err := Map(workers, items, func(i, v int) (int, error) {
			return v * v, nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(got) != len(items) {
			t.Fatalf("workers=%d: %d results, want %d", workers, len(got), len(items))
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: result[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

// TestMapSerialParallelEquivalence: parallel output equals the serial
// loop's output element for element.
func TestMapSerialParallelEquivalence(t *testing.T) {
	items := make([]float64, 257)
	for i := range items {
		items[i] = float64(i) * 1.5
	}
	f := func(i int, v float64) (string, error) {
		return fmt.Sprintf("%d:%.2f", i, v*3), nil
	}
	serial, err := Map(1, items, f)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Map(8, items, f)
	if err != nil {
		t.Fatal(err)
	}
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Fatalf("result[%d]: serial %q != parallel %q", i, serial[i], parallel[i])
		}
	}
}

// TestMapLowestIndexError: the reported error is the serial one — the
// lowest failing index — no matter which worker hits an error first.
func TestMapLowestIndexError(t *testing.T) {
	items := make([]int, 64)
	for i := range items {
		items[i] = i
	}
	fail := map[int]bool{9: true, 40: true, 63: true}
	for _, workers := range []int{1, 2, 16} {
		_, err := Map(workers, items, func(i, v int) (int, error) {
			if fail[i] {
				return 0, fmt.Errorf("item %d failed", i)
			}
			return v, nil
		})
		if err == nil || err.Error() != "item 9 failed" {
			t.Fatalf("workers=%d: error %v, want item 9 failed", workers, err)
		}
	}
}

// TestMapErrorStopsDispatch: after an error is observed, no new items are
// dispatched (in-flight ones may finish).
func TestMapErrorStopsDispatch(t *testing.T) {
	var ran atomic.Int64
	boom := errors.New("boom")
	items := make([]int, 10_000)
	_, err := Map(4, items, func(i, _ int) (int, error) {
		ran.Add(1)
		if i == 0 {
			return 0, boom
		}
		return 0, nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("error %v, want boom", err)
	}
	if n := ran.Load(); n == int64(len(items)) {
		t.Fatalf("all %d items ran despite early error", n)
	}
}

// TestMapEmptyAndSingle: edge cases.
func TestMapEmptyAndSingle(t *testing.T) {
	if got, err := Map(8, nil, func(i, v int) (int, error) { return v, nil }); err != nil || got != nil {
		t.Fatalf("empty input: got %v, %v", got, err)
	}
	got, err := Map(8, []int{7}, func(i, v int) (int, error) { return v + 1, nil })
	if err != nil || len(got) != 1 || got[0] != 8 {
		t.Fatalf("single input: got %v, %v", got, err)
	}
}

// TestForEach: ForEach shares Map's semantics.
func TestForEach(t *testing.T) {
	out := make([]int, 50)
	items := make([]int, 50)
	for i := range items {
		items[i] = i * 2
	}
	// Each work unit owns its own output slot: no shared mutable state.
	if err := ForEach(4, items, func(i, v int) error {
		out[i] = v + 1
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i*2+1 {
			t.Fatalf("out[%d] = %d, want %d", i, v, i*2+1)
		}
	}
	err := ForEach(4, items, func(i, v int) error {
		if i >= 10 {
			return fmt.Errorf("fail %d", i)
		}
		return nil
	})
	if err == nil || err.Error() != "fail 10" {
		t.Fatalf("error %v, want fail 10", err)
	}
}

// TestMapConcurrencyBound: no more than `workers` goroutines run fn at
// once (exercised under -race in CI).
func TestMapConcurrencyBound(t *testing.T) {
	const workers = 3
	var live, peak atomic.Int64
	items := make([]int, 200)
	_, err := Map(workers, items, func(i, v int) (int, error) {
		n := live.Add(1)
		for {
			p := peak.Load()
			if n <= p || peak.CompareAndSwap(p, n) {
				break
			}
		}
		live.Add(-1)
		return v, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > workers {
		t.Fatalf("observed %d concurrent work units, bound is %d", p, workers)
	}
}
