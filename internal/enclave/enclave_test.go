package enclave

import (
	"bytes"
	"errors"
	"testing"

	"mmt/internal/attest"
	"mmt/internal/crypt"
	"mmt/internal/engine"
	"mmt/internal/mem"
	"mmt/internal/monitor"
	"mmt/internal/sim"
	"mmt/internal/tree"
)

var testGeo = tree.Geometry{Arities: []int{2, 3, 4}} // 1536 B regions

func newRuntime(t *testing.T) *Runtime {
	t.Helper()
	mfr, err := attest.NewManufacturer()
	if err != nil {
		t.Fatal(err)
	}
	auth, err := attest.NewAuthority(mfr.PublicKey())
	if err != nil {
		t.Fatal(err)
	}
	meas := attest.MeasureSoftware([]byte("teeos"))
	auth.AllowMeasurement(meas)
	machine, err := mfr.Provision("node")
	if err != nil {
		t.Fatal(err)
	}
	pm := mem.New(mem.Config{
		Size:          8 * testGeo.DataSize(),
		RegionSize:    testGeo.DataSize(),
		MetaPerRegion: testGeo.MetaSize(),
	})
	ctl, err := engine.New(pm, testGeo, nil, sim.Gem5Profile())
	if err != nil {
		t.Fatal(err)
	}
	mon := monitor.New(machine, meas, auth.PublicKey(), ctl)
	if err := mon.Boot(auth); err != nil {
		t.Fatal(err)
	}
	return NewRuntime(mon)
}

var key = crypt.KeyFromBytes([]byte("enclave-key"))

func TestAllocBufferReadWrite(t *testing.T) {
	rt := newRuntime(t)
	e := rt.Spawn("app", []byte("code"))
	if _, err := e.AllocBuffer(0x1000, key, 1); err != nil {
		t.Fatal(err)
	}
	msg := []byte("byte-granular secure memory")
	if err := e.Write(0x1000+5, msg); err != nil {
		t.Fatal(err)
	}
	got, err := e.Read(0x1000+5, len(msg))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatal("round trip failed")
	}
}

func TestUnalignedWritePreservesNeighbors(t *testing.T) {
	rt := newRuntime(t)
	e := rt.Spawn("app", nil)
	if _, err := e.AllocBuffer(0, key, 1); err != nil {
		t.Fatal(err)
	}
	base := bytes.Repeat([]byte{0xEE}, 3*engine.LineSize)
	if err := e.Write(0, base); err != nil {
		t.Fatal(err)
	}
	// Overwrite a span crossing two line boundaries.
	if err := e.Write(uint64(engine.LineSize-10), bytes.Repeat([]byte{0x11}, engine.LineSize+20)); err != nil {
		t.Fatal(err)
	}
	got, err := e.Read(0, 3*engine.LineSize)
	if err != nil {
		t.Fatal(err)
	}
	for i, b := range got {
		want := byte(0xEE)
		if i >= engine.LineSize-10 && i < 2*engine.LineSize+10 {
			want = 0x11
		}
		if b != want {
			t.Fatalf("byte %d = %#x, want %#x", i, b, want)
		}
	}
}

func TestUnmappedAccessFails(t *testing.T) {
	rt := newRuntime(t)
	e := rt.Spawn("app", nil)
	if _, err := e.Read(0x5000, 4); !errors.Is(err, ErrUnmapped) {
		t.Fatalf("unmapped read: %v", err)
	}
	if err := e.Write(0x5000, []byte{1}); !errors.Is(err, ErrUnmapped) {
		t.Fatalf("unmapped write: %v", err)
	}
	if _, err := e.CapAt(0x5000); !errors.Is(err, ErrUnmapped) {
		t.Fatalf("unmapped CapAt: %v", err)
	}
}

func TestAccessBeyondMappingFails(t *testing.T) {
	rt := newRuntime(t)
	e := rt.Spawn("app", nil)
	if _, err := e.AllocBuffer(0, key, 1); err != nil {
		t.Fatal(err)
	}
	size := testGeo.DataSize()
	if _, err := e.Read(uint64(size-4), 8); !errors.Is(err, ErrUnmapped) {
		t.Fatalf("straddling read: %v", err)
	}
	if _, err := e.Read(uint64(size), 1); !errors.Is(err, ErrUnmapped) {
		t.Fatalf("past-end read: %v", err)
	}
}

func TestOverlappingMappingRejected(t *testing.T) {
	rt := newRuntime(t)
	e := rt.Spawn("app", nil)
	if _, err := e.AllocBuffer(0x1000, key, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := e.AllocBuffer(0x1000+uint64(testGeo.DataSize())-1, key, 2); !errors.Is(err, ErrOverlap) {
		t.Fatalf("overlap: %v", err)
	}
	// Adjacent mapping is fine.
	if _, err := e.AllocBuffer(0x1000+uint64(testGeo.DataSize()), key, 3); err != nil {
		t.Fatal(err)
	}
}

func TestTwoBuffersIndependent(t *testing.T) {
	rt := newRuntime(t)
	e := rt.Spawn("app", nil)
	size := uint64(testGeo.DataSize())
	if _, err := e.AllocBuffer(0, key, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := e.AllocBuffer(size, key, 2); err != nil {
		t.Fatal(err)
	}
	if err := e.Write(0, []byte("first")); err != nil {
		t.Fatal(err)
	}
	if err := e.Write(size, []byte("second")); err != nil {
		t.Fatal(err)
	}
	a, err := e.Read(0, 5)
	if err != nil {
		t.Fatal(err)
	}
	b, err := e.Read(size, 6)
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != "first" || string(b) != "second" {
		t.Fatalf("buffers interfered: %q %q", a, b)
	}
}

func TestUnmapStopsAccess(t *testing.T) {
	rt := newRuntime(t)
	e := rt.Spawn("app", nil)
	if _, err := e.AllocBuffer(0, key, 1); err != nil {
		t.Fatal(err)
	}
	if err := e.Unmap(0); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Read(0, 1); !errors.Is(err, ErrUnmapped) {
		t.Fatalf("read after unmap: %v", err)
	}
	if err := e.Unmap(0); !errors.Is(err, ErrUnmapped) {
		t.Fatalf("double unmap: %v", err)
	}
}

func TestCapAtReturnsDelegatableCap(t *testing.T) {
	rt := newRuntime(t)
	e := rt.Spawn("app", nil)
	cap1, err := e.AllocBuffer(0, key, 1)
	if err != nil {
		t.Fatal(err)
	}
	got, err := e.CapAt(100)
	if err != nil {
		t.Fatal(err)
	}
	if got != cap1 {
		t.Fatalf("CapAt = %d, want %d", got, cap1)
	}
}
