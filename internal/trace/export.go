package trace

import (
	"fmt"
	"io"
	"strconv"
	"strings"

	"mmt/internal/sim"
)

// This file renders a Sink into the Chrome trace-event JSON format
// (the "JSON Array Format" consumed by chrome://tracing and Perfetto)
// and into a compact text summary.
//
// Determinism contract: the writers below never iterate a map, never
// read wall-clock time, and format floats with a fixed precision, so
// two identical simulated runs serialize to byte-identical output. The
// JSON is assembled by hand instead of encoding/json both to keep field
// order pinned and to avoid float round-trip variance.

// pidOf maps a process name to its 1-based pid in name-sorted order.
func pidsByName(procs []ProcMetrics) map[string]int {
	pids := make(map[string]int, len(procs))
	for i := range procs {
		pids[procs[i].Proc] = i + 1
	}
	return pids
}

// jsonString escapes s as a JSON string literal. Process and phase
// names are ASCII identifiers in practice; the escape covers the
// general case anyway.
func jsonString(s string) string {
	var b strings.Builder
	b.WriteByte('"')
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '"' || c == '\\':
			b.WriteByte('\\')
			b.WriteByte(c)
		case c < 0x20:
			fmt.Fprintf(&b, "\\u%04x", c)
		default:
			b.WriteByte(c)
		}
	}
	b.WriteByte('"')
	return b.String()
}

// usec renders a simulated time as microseconds with fixed precision.
// Three fractional digits = nanosecond resolution, enough to keep
// distinct cycle stamps distinct at simulated GHz clocks.
func usec(t sim.Time) string {
	return strconv.FormatFloat(t.Microseconds(), 'f', 3, 64)
}

// cyc renders a cycle count. Cycle totals are sums of dyadic-rational
// costs, so 'g' at full precision round-trips exactly and stays stable.
func cyc(c sim.Cycles) string {
	return strconv.FormatFloat(float64(c), 'f', -1, 64)
}

// WriteChromeTrace serializes the sink as a Chrome trace-event JSON
// array: one process per machine ("M" process_name metadata), one "X"
// complete event per recorded span (ts/dur in microseconds of simulated
// time), and one "C" counter event per process carrying the final
// counter values. Safe on a nil sink (writes an empty array).
func (s *Sink) WriteChromeTrace(w io.Writer) error {
	bw := &errWriter{w: w}
	bw.str("[")
	if s == nil {
		bw.str("]\n")
		return bw.err
	}
	m := s.Snapshot()
	events := s.Events()
	pids := pidsByName(m.Procs)
	first := true
	emit := func(line string) {
		if !first {
			bw.str(",\n")
		} else {
			bw.str("\n")
			first = false
		}
		bw.str(line)
	}
	for i := range m.Procs {
		p := &m.Procs[i]
		emit(fmt.Sprintf(`{"name":"process_name","ph":"M","pid":%d,"tid":1,"args":{"name":%s}}`,
			pids[p.Proc], jsonString(p.Proc)))
	}
	for _, ev := range events {
		begin := ev.Begin.Microseconds()
		dur := ev.End.Microseconds() - begin
		if dur < 0 {
			dur = 0
		}
		// Causally linked spans carry their (trace, span, parent) link as
		// event args so Perfetto queries can stitch cross-machine trees.
		args := ""
		if ev.Trace.Valid() {
			args = fmt.Sprintf(`,"args":{"trace":%s,"span":%d,"parent":%d}`,
				jsonString(ev.Trace.String()), ev.Span, ev.Parent)
		}
		emit(fmt.Sprintf(`{"name":%s,"cat":"mmt","ph":"X","pid":%d,"tid":1,"ts":%s,"dur":%s%s}`,
			jsonString(ev.Phase.String()), pids[ev.Proc],
			usec(ev.Begin), strconv.FormatFloat(dur, 'f', 3, 64), args))
	}
	// Counter samples: one "C" event per process at its last span end (or
	// 0 if the process recorded no spans), carrying final counter values.
	lastEnd := make(map[string]sim.Time, len(m.Procs))
	for _, ev := range events {
		if ev.End > lastEnd[ev.Proc] {
			lastEnd[ev.Proc] = ev.End
		}
	}
	for i := range m.Procs {
		p := &m.Procs[i]
		var args strings.Builder
		n := 0
		for c := Counter(0); c < NumCounters; c++ {
			if p.Counters[c] == 0 {
				continue
			}
			if n > 0 {
				args.WriteString(",")
			}
			fmt.Fprintf(&args, "%s:%d", jsonString(c.String()), p.Counters[c])
			n++
		}
		if n == 0 {
			continue
		}
		emit(fmt.Sprintf(`{"name":"counters","ph":"C","pid":%d,"tid":1,"ts":%s,"args":{%s}}`,
			pids[p.Proc], usec(lastEnd[p.Proc]), args.String()))
	}
	if !first {
		bw.str("\n")
	}
	bw.str("]\n")
	return bw.err
}

// errWriter folds write errors so the exporter body stays linear.
type errWriter struct {
	w   io.Writer
	err error
}

func (e *errWriter) str(s string) {
	if e.err != nil {
		return
	}
	_, e.err = io.WriteString(e.w, s)
}

// Summary renders the sink's accumulators as a compact fixed-width text
// table: per-process phase cycle totals (phases with any cycles) and
// counters (counters with any count), processes in name order. Safe on
// a nil sink (returns a disabled notice).
func (s *Sink) Summary() string {
	if s == nil {
		return "trace: disabled\n"
	}
	return s.Snapshot().String()
}

// String renders the snapshot in the same compact text form as
// Sink.Summary.
func (m Metrics) String() string {
	var b strings.Builder
	for i := range m.Procs {
		p := &m.Procs[i]
		fmt.Fprintf(&b, "== %s ==\n", p.Proc)
		var total sim.Cycles
		for ph := Phase(0); ph < NumPhases; ph++ {
			if p.Cycles[ph] == 0 {
				continue
			}
			fmt.Fprintf(&b, "  %-14s %14s cycles\n", ph.String(), cyc(p.Cycles[ph]))
			total += p.Cycles[ph]
		}
		if total != 0 {
			fmt.Fprintf(&b, "  %-14s %14s cycles\n", "TOTAL", cyc(total))
		}
		for c := Counter(0); c < NumCounters; c++ {
			if p.Counters[c] == 0 {
				continue
			}
			fmt.Fprintf(&b, "  %-22s %12d\n", c.String(), p.Counters[c])
		}
	}
	if b.Len() == 0 {
		return "trace: no activity recorded\n"
	}
	return b.String()
}
