# Developer entry points. `make check` is what CI runs.

GO ?= go

.PHONY: build test race vet lint vet-json allow-prune bench bench-smoke check trace-demo par-demo stat-demo series-demo causal-demo perfdiff baselines profiles snapshot-demo crash-sim

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# First-class tier-1 target: the whole module under the race detector.
race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# mmt-vet: the project's own twelve-analyzer suite (simclock,
# cryptocompare, checkverify, nopanic, maporder, parclock, eventkind,
# noalloc, lockorder, phasecharge, tracectx, samplerwindow) plus the
# //mmt:allow suppression audit. Non-zero exit on any finding.
lint:
	$(GO) run ./cmd/mmt-vet ./...

# vet-json: same run, but also writes the machine-readable mmt-vet/v1
# findings document (CI uploads it as an artifact).
vet-json:
	$(GO) run ./cmd/mmt-vet -json -out mmt-vet.json ./...

# allow-prune: list stale //mmt:allow comments ready for removal.
allow-prune:
	$(GO) run ./cmd/mmt-vet -fix allow-prune ./...

# bench: measured run of the hot-path kernels (crypt scratch kernels,
# engine read/write path, cache) plus the public API. The scratch-path
# benchmarks must report 0 allocs/op.
bench:
	$(GO) test -bench=. -benchmem -run=^$$ ./internal/crypt ./internal/engine .

# bench-smoke: one iteration of every benchmark in the module — cheap CI
# proof that no benchmark has bit-rotted.
bench-smoke:
	$(GO) test -bench=. -benchmem -benchtime=1x -run=^$$ ./...

# trace-demo: run the quickstart with tracing, emit the fig10 metrics
# sidecar, and validate both artifacts against their schemas.
trace-demo:
	$(GO) run ./examples/quickstart -trace trace.json
	$(GO) run ./cmd/mmt-bench -fig 10 -out .
	$(GO) run ./cmd/mmt-tracecheck trace.json BENCH_fig10.json

# par-demo: the parallel runner's determinism contract, end to end — the
# fig11 sidecar must be byte-identical at any worker count, and the
# wallclock sidecar must validate against its schema.
par-demo:
	mkdir -p .bench/serial .bench/par
	$(GO) run ./cmd/mmt-bench -fig 11 -accesses 20000 -out .bench/serial
	$(GO) run ./cmd/mmt-bench -fig 11 -accesses 20000 -parallel 8 -out .bench/par
	cmp .bench/serial/BENCH_fig11.json .bench/par/BENCH_fig11.json
	$(GO) run ./cmd/mmt-bench -wallclock -parallel 8 -accesses 20000 -out .bench
	$(GO) run ./cmd/mmt-tracecheck .bench/serial/BENCH_fig11.json .bench/BENCH_wallclock.json

# stat-demo: the observability pipeline end to end — export the latency
# histograms and security-event ledger from a quickstart run, validate
# both against their schemas, render them with mmt-stat, and render the
# fig11 sidecar's embedded histogram summaries (which include the
# read-latency-under-migration quantiles).
stat-demo:
	mkdir -p .bench
	$(GO) run ./examples/quickstart -stats .bench/hist.json -events .bench/events.jsonl
	$(GO) run ./cmd/mmt-tracecheck .bench/hist.json .bench/events.jsonl
	$(GO) run ./cmd/mmt-stat .bench/hist.json .bench/events.jsonl
	$(GO) run ./cmd/mmt-bench -fig 11 -accesses 2000 -out .bench
	$(GO) run ./cmd/mmt-stat .bench/BENCH_fig11.json

# series-demo: the time-series pipeline end to end — run the fig11 sweep
# with windowed sampling on, validate both the sidecar (with its series
# summary section) and the mmt-series/v1 artifact — including the exact
# evicted+deltas==totals sum — with mmt-tracecheck, then render the
# per-machine sparklines with mmt-stat.
series-demo:
	mkdir -p .bench
	$(GO) run ./cmd/mmt-bench -fig 11 -accesses 2000 -series -out .bench
	$(GO) run ./cmd/mmt-tracecheck .bench/BENCH_fig11.json .bench/BENCH_fig11.series.json
	$(GO) run ./cmd/mmt-stat .bench/BENCH_fig11.series.json

# causal-demo: the causal-tracing pipeline end to end — export the
# causal span trees (mmt-causal/v1) from a quickstart run, validate the
# causal invariants with mmt-tracecheck, render the trees with mmt-stat,
# and cross-check the fig11 sidecar's per-migration causal accounting
# (every migration one rooted tree, cycle totals re-adding to the run's
# migration totals).
causal-demo:
	mkdir -p .bench
	$(GO) run ./examples/quickstart -causal .bench/causal.json
	$(GO) run ./cmd/mmt-bench -fig 11 -accesses 2000 -out .bench
	$(GO) run ./cmd/mmt-tracecheck .bench/causal.json .bench/BENCH_fig11.json
	$(GO) run ./cmd/mmt-stat .bench/causal.json

# perfdiff: regenerate the benchmark sidecars and diff them against the
# committed baselines. Soft gate: -warn reports regressions without
# failing the build; a schema or shape mismatch is always fatal (exit
# 2), because that means the artifact format drifted, not the numbers.
# The simulator is deterministic, so on an unchanged tree the diff is
# exactly zero on every metric.
perfdiff:
	mkdir -p .bench/current
	$(GO) run ./cmd/mmt-bench -fig 10,11 -accesses 2000 -out .bench/current
	$(GO) run ./cmd/mmt-bench -wallclock -parallel 8 -accesses 20000 -out .bench/current
	$(GO) run ./cmd/mmt-perfdiff -warn -out .bench/perfdiff_fig10.json testdata/baselines/BENCH_fig10.json .bench/current/BENCH_fig10.json
	$(GO) run ./cmd/mmt-perfdiff -warn -out .bench/perfdiff_fig11.json testdata/baselines/BENCH_fig11.json .bench/current/BENCH_fig11.json
	$(GO) run ./cmd/mmt-perfdiff -warn -threshold 0.25 -out .bench/perfdiff_wallclock.json testdata/baselines/BENCH_wallclock.json .bench/current/BENCH_wallclock.json

# baselines: regenerate every committed benchmark baseline in one step.
# The figure sidecars are cycle-domain and deterministic — on an unchanged
# tree the refresh is byte-identical — while the wallclock sidecar records
# the generating machine's host speed and is expected to drift. Every file
# is promoted through mmt-perfdiff -update, which runs it through the same
# extractor that later diffs it, so a malformed sidecar can never become
# the committed baseline.
baselines:
	mkdir -p .bench/current
	$(GO) run ./cmd/mmt-bench -fig 10,11 -accesses 2000 -out .bench/current
	$(GO) run ./cmd/mmt-bench -wallclock -parallel 8 -accesses 20000 -out .bench/current
	$(GO) run ./cmd/mmt-perfdiff -update testdata/baselines .bench/current/BENCH_fig10.json .bench/current/BENCH_fig11.json .bench/current/BENCH_wallclock.json

# profiles: capture CPU and heap pprof profiles of the fig11 sweep — the
# same workload the perfdiff gate regenerates. CI runs this once at the
# PR head and once at the merge base and uploads both, so any wallclock
# movement perfdiff flags ships with the before/after profiles needed to
# explain it (`go tool pprof -diff_base before/cpu.pprof after/cpu.pprof`).
profiles:
	mkdir -p .bench/prof
	$(GO) run ./cmd/mmt-bench -fig 11 -accesses 20000 -parallel 8 -cpuprofile cpu.pprof -memprofile mem.pprof -out .bench/prof

# snapshot-demo: the persistence lifecycle end to end — run the scenario
# with a store attached (checkpointing as it goes), resume the same
# cluster from disk in a second process, and validate the exported
# manifest against its schema.
snapshot-demo:
	rm -rf .bench/snapstore
	$(GO) run ./examples/snapshot -store .bench/snapstore -manifest .bench/manifest.json
	$(GO) run ./examples/snapshot -store .bench/snapstore -manifest .bench/manifest.json
	$(GO) run ./cmd/mmt-tracecheck .bench/manifest.json

# crash-sim: the crash simulator — every kill point of a checkpoint
# sequence under every disk-replay model must recover to a committed,
# hash-verified snapshot — plus the cross-process migration test.
crash-sim:
	$(GO) test -run 'TestCheckpointCrashConsistency|TestCrossProcessMigration|TestCrash' -v . ./internal/store

check: build vet lint test race
