package channel

// Transport is the message-passing face the distributed applications
// (MapReduce, GAS) program against, keeping them agnostic of which of the
// three protection schemes carries their traffic — the compatibility goal
// of §III-A.
type Transport interface {
	// Send delivers one whole message to the peer.
	Send(payload []byte) error
	// Recv returns the next whole message.
	Recv() ([]byte, error)
}

// delegationTransport adapts Delegation's chunked API to Transport.
type delegationTransport struct{ d *Delegation }

// AsTransport wraps a delegation channel as a whole-message Transport.
func AsTransport(d *Delegation) Transport { return delegationTransport{d} }

func (t delegationTransport) Send(p []byte) error   { return t.d.Send(p) }
func (t delegationTransport) Recv() ([]byte, error) { return t.d.RecvMessage() }
func (t delegationTransport) Stats() Stats          { return t.d.Stats() }

// Interface conformance for the two flat channels.
var (
	_ Transport = (*NonSecure)(nil)
	_ Transport = (*Secure)(nil)
)
