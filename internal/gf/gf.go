// Package gf implements arithmetic in the finite field GF(2^64), used by
// the MMT controller's Carter–Wegman MACs. The paper's integrity-tree hash
// "xors the OTP and a Galois Field (GF) dot product result" (§II-A); this
// package provides that dot product.
//
// Elements are uint64 values interpreted as polynomials over GF(2); the
// reduction polynomial is x^64 + x^4 + x^3 + x + 1 (the lexicographically
// smallest irreducible degree-64 pentanomial, the same one used by
// reference GHASH-style constructions over 64-bit words).
//
// The arithmetic is table-driven: generic multiplication uses a per-call
// 4-bit window over one operand plus two small shared reduction tables
// (red4 for shift-by-4 folds, red8 for shift-by-8 folds), turning the old
// 64-iteration bit loop into 16 window steps. The original bit-loop
// implementation survives in oracle.go as the differential-test oracle —
// the shared tables are built from it at init and the tests cross-check
// every fast path against it.
package gf

// reduction holds the low coefficients of the irreducible polynomial
// x^64 + x^4 + x^3 + x + 1: bits for x^4, x^3, x^1, x^0.
const reduction uint64 = 0x1B

// red4 and red8 are the shared (key-independent) reduction tables:
// red4[o] is the reduction of o·x^64 for the 4-bit overflow o shifted out
// by a multiply-by-x^4 step, red8[o] likewise for the 8-bit overflow of a
// multiply-by-x^8 step. Both are derived from the bit-loop oracle at
// init, so the fast path is definitionally anchored to it.
var (
	red4 [16]uint64
	red8 [256]uint64
)

func init() {
	for o := range red4 {
		red4[o] = reduceSlow(uint64(o), 0)
	}
	for o := range red8 {
		red8[o] = reduceSlow(uint64(o), 0)
	}
}

// Add returns a + b in GF(2^64) (carry-less addition, i.e. XOR).
func Add(a, b uint64) uint64 { return a ^ b }

// mulx4 returns v * x^4 in GF(2^64): shift by a nibble, folding the four
// overflow bits through the shared red4 table.
func mulx4(v uint64) uint64 { return v<<4 ^ red4[v>>60] }

// mulx8 returns v * x^8 in GF(2^64): shift by a byte, folding the eight
// overflow bits through the shared red8 table.
func mulx8(v uint64) uint64 { return v<<8 ^ red8[v>>56] }

// window16 builds the reduced 4-bit window of a into w: w[k] = a*k for
// every 4-bit polynomial k. Entries are filled by the doubling chain
// w[2k] = x*w[k], w[2k+1] = w[2k] + a, so construction costs ~14 shifts
// and xors rather than 15 multiplications.
//
//mmt:hotpath
func window16(a uint64, w *[16]uint64) {
	w[0] = 0
	w[1] = a
	for k := 2; k < 16; k += 2 {
		v := w[k>>1]
		w[k] = v<<1 ^ red4[v>>63] // x * w[k/2]; v>>63 is 0 or 1
		w[k+1] = w[k] ^ a
	}
}

// Mul returns a * b in GF(2^64).
//
// Table-driven: a 16-entry window of a (built per call by doubling) is
// combined over the 16 nibbles of b, high to low, with each step's
// 4-bit overflow folded immediately through red4 — no 128-bit
// intermediate, no bit loop. Agrees with the retained oracle mulSlow on
// every input (TestMulMatchesOracle, gf_kat.json).
//
//mmt:hotpath
func Mul(a, b uint64) uint64 {
	var w [16]uint64
	window16(a, &w)
	var acc uint64
	for s := 60; s >= 0; s -= 4 {
		acc = mulx4(acc) ^ w[(b>>uint(s))&0xF]
	}
	return acc
}

// Dot returns the dot product sum_i a[i]*b[i] in GF(2^64). Mismatched
// lengths use the shorter slice, mirroring a hardware engine that pads
// missing lanes with zero.
//
//mmt:hotpath
func Dot(a, b []uint64) uint64 {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	var acc uint64
	for i := 0; i < n; i++ {
		acc ^= Mul(a[i], b[i])
	}
	return acc
}

// Pow returns a^n in GF(2^64) by square-and-multiply. Pow(a, 0) is 1.
func Pow(a uint64, n uint) uint64 {
	result := uint64(1)
	for n > 0 {
		if n&1 != 0 {
			result = Mul(result, a)
		}
		a = Mul(a, a)
		n >>= 1
	}
	return result
}

// evalTableMin is the coefficient count from which Eval amortizes a full
// 16x16 nibble table of the evaluation point instead of windowing per
// Horner step. Below it the per-step window walk is cheaper.
const evalTableMin = 8

// Eval evaluates the polynomial with coefficients coeffs (constant term
// first) at point x, via Horner's rule. This is the universal-hash core:
// for a fixed secret x, Eval is an almost-universal family over messages.
//
// Short polynomials run Horner with a per-step window walk over the
// accumulator; longer ones first expand x into a 16x16 nibble table
// (nibble j of the accumulator -> contribution (nib<<4j)*x), making each
// Horner step 16 independent table lookups. Both agree exactly with the
// oracle evalSlow (TestEvalMatchesOracle).
//
//mmt:hotpath
func Eval(coeffs []uint64, x uint64) uint64 {
	if len(coeffs) < evalTableMin {
		var w [16]uint64
		window16(x, &w)
		var acc uint64
		for i := len(coeffs) - 1; i >= 0; i-- {
			// acc*x via the window over acc's nibbles, high to low.
			var m uint64
			for s := 60; s >= 0; s -= 4 {
				m = mulx4(m) ^ w[(acc>>uint(s))&0xF]
			}
			acc = m ^ coeffs[i]
		}
		return acc
	}
	var t [16][16]uint64
	evalTable(x, &t)
	var acc uint64
	for i := len(coeffs) - 1; i >= 0; i-- {
		acc = mulTable(&t, acc) ^ coeffs[i]
	}
	return acc
}

// evalTable fills t with the nibble tables of x: t[j][k] = (k << 4j) * x.
// Row 0 is the plain window of x; each higher row is the previous one
// advanced by x^4 through red4.
//
//mmt:hotpath
func evalTable(x uint64, t *[16][16]uint64) {
	window16(x, &t[0])
	for j := 1; j < 16; j++ {
		for k := 0; k < 16; k++ {
			t[j][k] = mulx4(t[j-1][k])
		}
	}
}

// mulTable returns a * x for the x the table was built from: 16
// independent lookups, one per nibble of a — no serial fold chain.
//
//mmt:hotpath
func mulTable(t *[16][16]uint64, a uint64) uint64 {
	return t[0][a&0xF] ^
		t[1][a>>4&0xF] ^
		t[2][a>>8&0xF] ^
		t[3][a>>12&0xF] ^
		t[4][a>>16&0xF] ^
		t[5][a>>20&0xF] ^
		t[6][a>>24&0xF] ^
		t[7][a>>28&0xF] ^
		t[8][a>>32&0xF] ^
		t[9][a>>36&0xF] ^
		t[10][a>>40&0xF] ^
		t[11][a>>44&0xF] ^
		t[12][a>>48&0xF] ^
		t[13][a>>52&0xF] ^
		t[14][a>>56&0xF] ^
		t[15][a>>60&0xF]
}
