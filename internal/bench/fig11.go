package bench

import (
	"fmt"

	"mmt/internal/engine"
	"mmt/internal/mem"
	"mmt/internal/par"
	"mmt/internal/sim"
	"mmt/internal/trace"
	"mmt/internal/tree"
	"mmt/internal/workload"
)

// Fig11Levels are the tree depths Figure 11 sweeps.
var Fig11Levels = []int{2, 3, 4}

// Fig11Row is one benchmark's slowdown (protected / unprotected execution
// time) at each tree level.
type Fig11Row struct {
	Benchmark string
	Overhead  map[int]float64 // level -> slowdown
}

// Fig11Result carries the rows plus the per-level averages the paper
// quotes (1.07 / 1.12 / 1.21 for 2/3/4 levels), and the read-latency
// contention scenario (fig11latency.go).
type Fig11Result struct {
	Rows     []Fig11Row
	Average  map[int]float64
	Accesses int
	Latency  *Fig11Latency
}

// Fig11 runs every SPEC-like trace through the MMT controller at each tree
// level and reports slowdown versus unprotected DRAM. accesses is the
// trace length per run (0 means the default 200k).
func Fig11(accesses int) (*Fig11Result, error) {
	res, _, err := fig11Traced(accesses, nil)
	return res, err
}

// fig11Traced is Fig11 with an optional trace sink: each (benchmark,
// level) cell records its measured phase into the "<name>/L<level>"
// process. It also returns the summed protected-memory cycles across all
// cells, which equals the sink's phase totals by construction (every
// engine charge is mirrored into exactly one phase).
//
// The cells are independent — each one builds its own profile, memory,
// controller and (when tracing) sink — so they fan out across Workers()
// goroutines. Merging happens serially in cfg-major cell order, which
// reproduces the serial loop's float-addition order and trace-process
// registration order exactly.
func fig11Traced(accesses int, sink *trace.Sink) (*Fig11Result, sim.Cycles, error) {
	if accesses <= 0 {
		accesses = 200_000
	}
	res := &Fig11Result{Average: make(map[int]float64), Accesses: accesses}
	traces := workload.SPECTraces()

	type cell struct {
		cfg   workload.TraceConfig
		level int
	}
	type cellOut struct {
		over float64
		mem  sim.Cycles
		sink *trace.Sink
	}
	cells := make([]cell, 0, len(traces)*len(Fig11Levels))
	for _, cfg := range traces {
		for _, level := range Fig11Levels {
			cells = append(cells, cell{cfg, level})
		}
	}
	outs, err := par.Map(Workers(), cells, func(_ int, c cell) (cellOut, error) {
		var cs *trace.Sink
		if sink != nil {
			cs = trace.NewSink()
			// Cells inherit the root sink's sampling config: window
			// indices come off the simulated clocks, so every worker
			// records identical samples and the serial merge reproduces
			// a single-sink run exactly.
			if cfg, ok := sink.SeriesConfigured(); ok {
				if err := cs.EnableSeries(cfg); err != nil {
					return cellOut{}, err
				}
			}
		}
		over, mem, err := fig11Run(c.cfg, c.level, accesses, cs)
		return cellOut{over, mem, cs}, err
	})
	if err != nil {
		return nil, 0, err
	}

	sums := make(map[int]float64)
	var protected sim.Cycles
	for i, c := range cells {
		if c.level == Fig11Levels[0] {
			res.Rows = append(res.Rows, Fig11Row{Benchmark: c.cfg.Name, Overhead: make(map[int]float64)})
		}
		row := &res.Rows[len(res.Rows)-1]
		row.Overhead[c.level] = outs[i].over
		sums[c.level] += outs[i].over
		protected += outs[i].mem
		sink.Merge(outs[i].sink)
	}
	for _, level := range Fig11Levels {
		res.Average[level] = sums[level] / float64(len(traces))
	}
	// The latency scenario runs serially after the sweep (its two passes
	// share one controller by design); its charged cycles join the
	// figure's protected total so the sidecar's phase-sum check covers it.
	lat, latCycles, err := fig11Latency(accesses, sink)
	if err != nil {
		return nil, 0, err
	}
	res.Latency = lat
	protected += latCycles
	return res, protected, nil
}

// fig11Run measures one (benchmark, level) cell: the trace's execution
// time with the MMT controller over the time with plain DRAM. It also
// returns the measured protected-memory cycles.
func fig11Run(cfg workload.TraceConfig, level, accesses int, sink *trace.Sink) (float64, sim.Cycles, error) {
	prof := sim.Gem5Profile()
	geo := tree.ForLevels(level)
	// Table V provisions SoC root storage per level (256K for 2-level over
	// 2 GB): every live root stays resident, so size the root table for
	// the footprint rather than keeping the 3-level default.
	regions := (cfg.FootprintLines*64 + geo.DataSize() - 1) / geo.DataSize()
	prof.RootTableSoC = (regions + 1) * 8
	// Access() is a pure timing path: it moves only the node cache and the
	// cycle counters, so the trace can cover a paper-scale (multi-GB)
	// footprint without backing memory. The controller gets one real
	// region; trace region indices are virtual cache-key coordinates.
	pm := mem.New(mem.Config{
		Size:          geo.DataSize(),
		RegionSize:    geo.DataSize(),
		MetaPerRegion: geo.MetaSize(),
	})
	ctl, err := engine.New(pm, geo, nil, prof)
	if err != nil {
		return 0, 0, err
	}

	// Warm the node cache with a prefix of the trace, then measure. The
	// probe attaches only after the warm-up reset so the trace phases
	// account for exactly the measured cycles.
	tr := workload.NewTrace(cfg, 11)
	warm := accesses / 10
	for i := 0; i < warm; i++ {
		line, w := tr.Next()
		ctl.Access(line/geo.Lines(), line%geo.Lines(), w)
	}
	ctl.ResetStats()
	pr := sink.Probe(fmt.Sprintf("%s/L%d", cfg.Name, level))
	ctl.SetTrace(pr)
	if w, ok := sink.SeriesWindow(); ok {
		ctl.Clock().SetWindowHook(w, pr.ObserveWindow)
	}
	for i := 0; i < accesses; i++ {
		line, w := tr.Next()
		ctl.Access(line/geo.Lines(), line%geo.Lines(), w)
	}
	memCycles := float64(ctl.Stats().Cycles)
	compute := cfg.ComputeCyclesPerAccess * float64(accesses)
	baseline := compute + float64(accesses)*float64(prof.DRAMAccess)
	return (compute + memCycles) / baseline, ctl.Stats().Cycles, nil
}

// RenderFig11 prints the per-benchmark overheads and the averages.
func RenderFig11(res *Fig11Result) string {
	header := []string{"Benchmark", "2-level", "3-level", "4-level"}
	var out [][]string
	for _, r := range res.Rows {
		out = append(out, []string{
			r.Benchmark,
			fmt.Sprintf("%.3fx", r.Overhead[2]),
			fmt.Sprintf("%.3fx", r.Overhead[3]),
			fmt.Sprintf("%.3fx", r.Overhead[4]),
		})
	}
	out = append(out, []string{
		"AVERAGE",
		fmt.Sprintf("%.3fx", res.Average[2]),
		fmt.Sprintf("%.3fx", res.Average[3]),
		fmt.Sprintf("%.3fx", res.Average[4]),
	})
	s := renderTable("Figure 11: SPEC-like overhead by tree level (paper averages: 1.07 / 1.12 / 1.21)", header, out)
	if lat := res.Latency; lat != nil {
		s += fmt.Sprintf("\nRead latency under migration (%d reads, %d delegations):\n", lat.Reads, lat.Migrations)
		s += fmt.Sprintf("  idle            p50 %v  p99 %v  max %v cycles\n",
			lat.Idle.Quantile(0.50), lat.Idle.Quantile(0.99), lat.Idle.Max)
		s += fmt.Sprintf("  with migration  p50 %v  p99 %v  max %v cycles\n",
			lat.Busy.Quantile(0.50), lat.Busy.Quantile(0.99), lat.Busy.Max)
	}
	return s
}
