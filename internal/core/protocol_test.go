package core

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"

	"mmt/internal/crypt"
	"mmt/internal/engine"
)

// TestMultiHopDelegation chains ownership transfers A -> B -> C: the DAG
// programming model of §V-B2. Each hop uses its own connection/key; the
// payload must survive both hops and exactly one writable copy must exist
// at every instant.
func TestMultiHopDelegation(t *testing.T) {
	a := newTestNode(t, 1)
	b := newTestNode(t, 2)
	c := newTestNode(t, 3)
	payload := bytes.Repeat([]byte("travels two hops without software re-encryption! "), 3) // > 2 lines

	keyAB := crypt.KeyFromBytes([]byte("ab"))
	keyBC := crypt.KeyFromBytes([]byte("bc"))
	sAB, rAB := NewConn(keyAB, 0), NewConn(keyAB, 0)
	sBC, rBC := NewConn(keyBC, 0), NewConn(keyBC, 0)

	// A -> B.
	ma, err := a.Acquire(0, keyAB, sAB.NextCounter())
	if err != nil {
		t.Fatal(err)
	}
	if err := ma.WriteBytes(0, payload); err != nil {
		t.Fatal(err)
	}
	mb, err := b.Expect(0, rAB)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := ma.BeginSend(sAB, OwnershipTransfer)
	if err != nil {
		t.Fatal(err)
	}
	if err := mb.Accept(rAB, cl.Encode()); err != nil {
		t.Fatal(err)
	}
	if err := ma.CompleteSend(true); err != nil {
		t.Fatal(err)
	}

	// B modifies the data in place — it owns it now.
	if err := mb.Write(0, bytes.Repeat([]byte{0xBB}, engine.LineSize)); err != nil {
		t.Fatal(err)
	}

	// B -> C needs the BC key: B re-keys by copying into a BC-keyed buffer
	// (keys are per-connection; the hardware re-encrypts locally, which is
	// a memory-speed operation, not a network crypto one).
	got, err := mb.ReadBytes(0, testGeo.DataSize())
	if err != nil {
		t.Fatal(err)
	}
	mb2, err := b.Acquire(1, keyBC, sBC.NextCounter())
	if err != nil {
		t.Fatal(err)
	}
	if err := mb2.WriteBytes(0, got); err != nil {
		t.Fatal(err)
	}
	mc, err := c.Expect(0, rBC)
	if err != nil {
		t.Fatal(err)
	}
	cl2, err := mb2.BeginSend(sBC, OwnershipTransfer)
	if err != nil {
		t.Fatal(err)
	}
	if err := mc.Accept(rBC, cl2.Encode()); err != nil {
		t.Fatal(err)
	}
	if err := mb2.CompleteSend(true); err != nil {
		t.Fatal(err)
	}

	final, err := mc.ReadBytes(0, len(payload))
	if err != nil {
		t.Fatal(err)
	}
	// Line 0 was overwritten by B; the rest is the original payload.
	want := append(bytes.Repeat([]byte{0xBB}, engine.LineSize), payload[engine.LineSize:]...)
	if !bytes.Equal(final, want[:len(payload)]) {
		t.Fatal("payload corrupted across two hops")
	}
}

// TestProtocolFuzz drives random sequences of protocol operations against
// a sender/receiver pair and checks global invariants after every step:
// the state machine never wedges, regions never leak, and a message is
// delivered at most once per send.
func TestProtocolFuzz(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 20; trial++ {
		snd := newTestNode(t, 1)
		rcv := newTestNode(t, 2)
		sconn := NewConn(connKey, 0)
		rconn := NewConn(connKey, 0)

		type pending struct {
			mmt  *MMT
			wire []byte
		}
		var inflight []pending
		var waiting []*MMT
		freeS := []int{0, 1, 2, 3}
		freeR := []int{0, 1, 2, 3}
		sent, accepted := 0, 0

		for step := 0; step < 60; step++ {
			switch rng.Intn(4) {
			case 0: // sender: acquire + begin send
				if len(freeS) == 0 {
					continue
				}
				region := freeS[0]
				freeS = freeS[1:]
				m, err := snd.Acquire(region, connKey, sconn.NextCounter())
				if err != nil {
					t.Fatalf("trial %d step %d acquire: %v", trial, step, err)
				}
				if err := m.WriteBytes(0, []byte{byte(step)}); err != nil {
					t.Fatal(err)
				}
				cl, err := m.BeginSend(sconn, OwnershipTransfer)
				if err != nil {
					t.Fatal(err)
				}
				inflight = append(inflight, pending{mmt: m, wire: cl.Encode()})
				sent++
			case 1: // receiver: arm a waiting buffer
				if len(freeR) == 0 {
					continue
				}
				region := freeR[0]
				freeR = freeR[1:]
				m, err := rcv.Expect(region, rconn)
				if err != nil {
					t.Fatalf("trial %d step %d expect: %v", trial, step, err)
				}
				waiting = append(waiting, m)
			case 2: // deliver oldest closure to oldest waiting buffer
				if len(inflight) == 0 || len(waiting) == 0 {
					continue
				}
				p := inflight[0]
				inflight = inflight[1:]
				w := waiting[0]
				waiting = waiting[1:]
				if err := w.Accept(rconn, p.wire); err != nil {
					t.Fatalf("trial %d step %d accept: %v", trial, step, err)
				}
				accepted++
				if err := p.mmt.CompleteSend(true); err != nil {
					t.Fatal(err)
				}
				freeS = append(freeS, p.mmt.Region())
				// Consume and free the receiver region.
				if err := w.Reclaim(); err != nil {
					t.Fatal(err)
				}
				freeR = append(freeR, w.Region())
			case 3: // adversary: replay the oldest wire copy if any was accepted
				if accepted == 0 || len(waiting) == 0 {
					continue
				}
				// Re-deliver a stale wire: must be rejected, buffer stays.
				stale := pendingWire(t, snd, sconn)
				_ = stale
				w := waiting[0]
				err := w.Accept(rconn, staleWire)
				if err == nil {
					t.Fatalf("trial %d step %d: stale closure accepted", trial, step)
				}
				if w.State() != StateWaiting {
					t.Fatalf("trial %d: rejected accept changed state to %v", trial, w.State())
				}
			}
		}
		if accepted > sent {
			t.Fatalf("trial %d: accepted %d > sent %d", trial, accepted, sent)
		}
	}
}

// staleWire is a closure recorded once and replayed by the fuzzer.
var staleWire []byte

// pendingWire lazily records one legitimate closure to replay later.
func pendingWire(t *testing.T, snd *Node, sconn *Conn) []byte {
	t.Helper()
	if staleWire != nil {
		return staleWire
	}
	// Build a standalone stale closure from a scratch node pair sharing
	// the key but an old counter.
	n := newTestNode(t, 7)
	old := NewConn(connKey, 0)
	m, err := n.Acquire(0, connKey, old.NextCounter())
	if err != nil {
		t.Fatal(err)
	}
	cl, err := m.BeginSend(old, OwnershipTransfer)
	if err != nil {
		t.Fatal(err)
	}
	staleWire = cl.Encode()
	return staleWire
}

// TestConnCounterProperties checks the Conn invariants the protocol rests
// on: NextCounter is strictly above everything previously seen, and a
// successful send always raises the floor.
func TestConnCounterProperties(t *testing.T) {
	snd := newTestNode(t, 1)
	conn := NewConn(connKey, 5)
	prevFloor := uint64(5)
	for i := 0; i < 6; i++ {
		init := conn.NextCounter()
		if init <= prevFloor {
			t.Fatalf("NextCounter %d not above floor %d", init, prevFloor)
		}
		m, err := snd.Acquire(i%2, connKey, init)
		if err != nil {
			t.Fatal(err)
		}
		// A few writes bump the root counter further.
		for w := 0; w < i; w++ {
			if err := m.Write(0, make([]byte, engine.LineSize)); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := m.BeginSend(conn, OwnershipCopy); err != nil {
			t.Fatal(err)
		}
		if conn.lastCounter <= prevFloor {
			t.Fatalf("send did not raise the counter floor: %d <= %d", conn.lastCounter, prevFloor)
		}
		prevFloor = conn.lastCounter
		if err := m.CompleteSend(true); err != nil {
			t.Fatal(err)
		}
		if err := m.Reclaim(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestCancelPaths covers the waiting-buffer cancellation added for the
// channel rejection path.
func TestCancelPaths(t *testing.T) {
	n := newTestNode(t, 1)
	conn := NewConn(connKey, 0)
	m, err := n.Expect(0, conn)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Cancel(); err != nil {
		t.Fatal(err)
	}
	if m.State() != StateInvalid {
		t.Fatal("cancel did not invalidate")
	}
	// Region is reusable.
	if _, err := n.Expect(0, conn); err != nil {
		t.Fatalf("re-expect after cancel: %v", err)
	}
	// Cancel only applies to waiting buffers.
	v, err := n.Acquire(1, connKey, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := v.Cancel(); !errors.Is(err, ErrState) {
		t.Fatalf("cancel of valid MMT: %v", err)
	}
}
