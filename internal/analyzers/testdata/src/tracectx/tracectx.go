// Package tracectx exercises the tracectx analyzer: work units passed to
// par.Map/par.ForEach must not use a trace.Context from the enclosing
// scope — each unit mints its own causal root.
package tracectx

import (
	"mmt/internal/par"
	"mmt/internal/sim"
	"mmt/internal/trace"
)

// captured threads one causal context through every work unit — flagged
// at each use, because concurrent spans would parent onto the same trace
// in scheduling order.
func captured(probe *trace.Probe, ctx trace.Context, items []int) error {
	return par.ForEach(4, items, func(_ int, it int) error {
		probe.CausalSpan(ctx, trace.PhaseApp, 0, sim.Time(it), 0) // want "captures trace\.Context"
		_ = ctx.Valid()                                           // want "captures trace\.Context"
		return nil
	})
}

// capturedPointer shows the pointer case through Map.
func capturedPointer(items []int) ([]bool, error) {
	ctx := &trace.Context{}
	return par.Map(2, items, func(_ int, it int) (bool, error) {
		return ctx.Valid(), nil // want "captures trace\.Context"
	})
}

// owned is the sanctioned shape: each work unit opens its own root, so
// its spans form an independent tree and the analyzer stays silent.
func owned(probe *trace.Probe, items []int) error {
	return par.ForEach(0, items, func(_ int, it int) error {
		ctx := probe.NewTrace()
		probe.CausalSpan(ctx, trace.PhaseApp, 0, sim.Time(it), 0)
		return nil
	})
}

// ownedField: field selectors on locally built state are fine — unit is
// owned by the work unit, and unit.Ctx's field identifier must not be
// mistaken for a captured variable.
type unit struct {
	Ctx trace.Context
}

func ownedField(probe *trace.Probe, items []int) error {
	return par.ForEach(0, items, func(_ int, it int) error {
		u := unit{Ctx: probe.NewTrace()}
		probe.CausalSpan(u.Ctx, trace.PhaseApp, 0, sim.Time(it), 0)
		return nil
	})
}

// serialUse reads a context outside any par call — no finding: the
// contract binds work-unit literals only.
func serialUse(ctx trace.Context, items []int) int {
	n := 0
	for range items {
		if ctx.Valid() {
			n++
		}
	}
	return n
}

// suppressed demonstrates a justified exception.
func suppressed(ctx trace.Context, items []int) error {
	return par.ForEach(1, items, func(_ int, it int) error {
		_ = ctx.Valid() //mmt:allow tracectx: workers pinned to 1 in this code path
		return nil
	})
}
