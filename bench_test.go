// Benchmarks regenerating the paper's evaluation, one per table and
// figure. Each iteration runs the full experiment on the simulated
// testbeds and reports the headline quantity as a custom metric (wall
// time per op mostly reflects host speed; the simulated results are the
// deliverable and are printed by `go run ./cmd/mmt-bench`).
//
//	go test -bench=. -benchmem
package mmt_test

import (
	"testing"

	"mmt"
	"mmt/internal/bench"
)

// BenchmarkTable4Gem5 regenerates the Gem5 half of Table IV and reports
// the 2M-transfer speedup of MMT delegation over the secure channel
// (paper: 169x).
func BenchmarkTable4Gem5(b *testing.B) {
	var speedup float64
	for i := 0; i < b.N; i++ {
		rows, err := bench.Table4Gem5()
		if err != nil {
			b.Fatal(err)
		}
		speedup = rows[0].Speedup
	}
	b.ReportMetric(speedup, "speedup@2M")
}

// BenchmarkTable4Intel regenerates the Intel half of Table IV (paper:
// ~13x with AES-NI). Heavy: three functional transfers up to 128 MB.
func BenchmarkTable4Intel(b *testing.B) {
	if testing.Short() {
		b.Skip("128MB functional transfers in -short mode")
	}
	var speedup float64
	for i := 0; i < b.N; i++ {
		rows, err := bench.Table4Intel()
		if err != nil {
			b.Fatal(err)
		}
		speedup = rows[0].Speedup
	}
	b.ReportMetric(speedup, "speedup@32M")
}

// BenchmarkFig10a regenerates the throughput comparison (paper: MMT
// 9.68 GB/s vs AES-GCM 2.2 GB/s).
func BenchmarkFig10a(b *testing.B) {
	var mmtGBps float64
	for i := 0; i < b.N; i++ {
		rows := bench.Fig10a()
		mmtGBps = rows[len(rows)-1].MMTGBps
	}
	b.ReportMetric(mmtGBps, "MMT-GB/s")
}

// BenchmarkFig10b regenerates the latency sensitivity sweep (paper:
// speedup falls from 169x to 4.5x at 10 ms).
func BenchmarkFig10b(b *testing.B) {
	var at10ms float64
	for i := 0; i < b.N; i++ {
		rows, err := bench.Fig10b()
		if err != nil {
			b.Fatal(err)
		}
		at10ms = rows[len(rows)-1].Speedup
	}
	b.ReportMetric(at10ms, "speedup@10ms")
}

// BenchmarkFig11 regenerates the SPEC-like overhead study (paper
// averages: 1.07 / 1.12 / 1.21 for 2/3/4 levels).
func BenchmarkFig11(b *testing.B) {
	var avg3 float64
	for i := 0; i < b.N; i++ {
		res, err := bench.Fig11(100_000)
		if err != nil {
			b.Fatal(err)
		}
		avg3 = res.Average[3]
	}
	b.ReportMetric(avg3, "avg-overhead-3lvl")
}

// BenchmarkTable5 regenerates the tree-level trade-off table.
func BenchmarkTable5(b *testing.B) {
	var overhead float64
	for i := 0; i < b.N; i++ {
		_, rows, err := bench.Table5(nil)
		if err != nil {
			b.Fatal(err)
		}
		overhead = rows[1].Overhead // 3-level
	}
	b.ReportMetric(overhead, "overhead-3lvl")
}

// BenchmarkFig12 regenerates the WordCount transfer-size sweep (paper: up
// to 10x, crossover below 8K).
func BenchmarkFig12(b *testing.B) {
	var maxSpeedup float64
	for i := 0; i < b.N; i++ {
		rows, err := bench.Fig12()
		if err != nil {
			b.Fatal(err)
		}
		maxSpeedup = rows[len(rows)-1].Speedup
	}
	b.ReportMetric(maxSpeedup, "speedup@max")
}

// BenchmarkFig13a regenerates the comm-share sweep (paper: MMT within
// ~1.5% of baseline at comm-10%).
func BenchmarkFig13a(b *testing.B) {
	var mmtAt10 float64
	for i := 0; i < b.N; i++ {
		rows, err := bench.Fig13a()
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.CommPercent == 10 {
				mmtAt10 = r.MMT
			}
		}
	}
	b.ReportMetric(mmtAt10, "MMT-normalized@10%")
}

// BenchmarkFig13b regenerates the MnRn scalability sweep.
func BenchmarkFig13b(b *testing.B) {
	if testing.Short() {
		b.Skip("cluster sweep in -short mode")
	}
	var scaling float64
	for i := 0; i < b.N; i++ {
		rows, err := bench.Fig13b()
		if err != nil {
			b.Fatal(err)
		}
		scaling = rows[len(rows)-1].SpeedupVsM1MMT
	}
	b.ReportMetric(scaling, "MMT-scaling@M8R8")
}

// BenchmarkFig14 regenerates the PageRank/GAS comparison (paper: MMT
// remote-transfer 5% of cycles, +35% end to end over the secure channel).
func BenchmarkFig14(b *testing.B) {
	var share float64
	for i := 0; i < b.N; i++ {
		rows, _, err := bench.Fig14(bench.DefaultFig14Config())
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Mode.String() == "mmt" {
				share = r.RemoteTransferShare
			}
		}
	}
	b.ReportMetric(100*share, "remote-transfer-%")
}

// BenchmarkAblations runs the beyond-the-paper design-choice sweeps.
func BenchmarkAblations(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.RenderAblations(50_000); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDelegation2M measures the full functional path of one 2 MB
// ownership-transfer delegation — acquire, seal, wire, verify, install —
// in host time (the simulated cost is Table IV's 437k cycles).
func BenchmarkDelegation2M(b *testing.B) {
	cluster, err := mmt.New(mmt.WithRegions(4))
	if err != nil {
		b.Fatal(err)
	}
	alice, err := cluster.AddMachine("alice")
	if err != nil {
		b.Fatal(err)
	}
	bob, err := cluster.AddMachine("bob")
	if err != nil {
		b.Fatal(err)
	}
	sender := alice.Spawn("s", nil)
	receiver := bob.Spawn("r", nil)
	link, err := cluster.Connect(sender, receiver)
	if err != nil {
		b.Fatal(err)
	}
	payload := make([]byte, 1<<20)
	b.SetBytes(2 << 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf, err := link.NewBuffer(sender)
		if err != nil {
			b.Fatal(err)
		}
		if err := buf.Write(0, payload); err != nil {
			b.Fatal(err)
		}
		if err := link.Delegate(buf, mmt.OwnershipTransfer); err != nil {
			b.Fatal(err)
		}
		got, err := link.Receive(receiver)
		if err != nil {
			b.Fatal(err)
		}
		if err := got.Free(); err != nil {
			b.Fatal(err)
		}
	}
}
