package simclock

import . "time" // want "dot-import of \"time\" hides wall-clock and global-rand calls"

// sleepy calls the dot-imported name; the use is flagged independently of
// the import itself.
func sleepy() {
	Sleep(Millisecond) // want "time\.Sleep reads the wall clock"
}
