package tree

import (
	"encoding/binary"
	"errors"
	"fmt"

	"mmt/internal/crypt"
	"mmt/internal/trace"
)

// Tree is one migratable Merkle tree's counter structure. It does not own
// the protected data or the per-line data MACs — the controller (package
// engine) does; Tree owns counters and node MACs, which together with the
// root counter pin both down.
//
// The root counter lives here but is conceptually stored in the SoC
// (trusted); everything else may live in the untrusted meta-zone.
//
// Storage is a flat arena, not per-node heap objects: all counters live in
// one packed []uint64 plane and all MACs in another, mirroring the
// contiguous meta-zone block the paper lays the tree out in (§IV-A1). Each
// node's counter record is its global counter word followed by its 16-bit
// local counters packed four per word, little-endian within the word —
// the same byte order the serialized meta-zone format uses, so
// serialization is a straight memory walk. An idle tree is a handful of
// fixed-size allocations regardless of node count; a path verification
// reads cache-line-adjacent words.
type Tree struct {
	geo     Geometry
	rootCtr uint64
	probe   *trace.Probe // nil = tracing disabled
	scr     treeScratch

	// The arena. ctr holds every node's packed counter record
	// (ctrBase[l] + i*ctrStride[l] words in); mac holds one word per node
	// (levelBase[l] + i).
	ctr []uint64
	mac []uint64

	levelBase  []int // flat node index of (l, 0), for mac/dirty/mask planes
	ctrBase    []int // ctr-plane word offset of (l, 0)
	ctrStride  []int // ctr words per node at level l: 1 + ceil(arity/4)
	totalNodes int

	// Dirty-node tracking for checkpoint streaming: one bit per node,
	// flattened level-major (levelBase[l]+i). Bits are set in rehashNode —
	// the single chokepoint every counter/MAC mutation funnels through —
	// and cleared by the store layer after a successful commit. The bitset
	// is preallocated at construction so the hot paths stay 0-alloc.
	dirty      []uint64
	dirtyCount int

	// MAC-mask memoization. A node's MAC mask is a pure function of
	// (engine, guaddr, nodeID, parentCounter); the tweak base underneath it
	// drops the counter too. Both are cached per node: maskBase holds the
	// 16-byte DomainNodeMAC tweak base (identity-keyed, valid while bound),
	// maskVal/maskCtr hold the last mask and the parent counter it was
	// derived at. The caches are keyed on exactly the mask inputs, so a
	// hit returns bit-identical values to recomputation — tampered parent
	// counters change the key and miss, preserving tamper detection. bind
	// flushes everything when the engine or address changes (wrong-key
	// verification, migration re-keying).
	bindEng  *crypt.Engine
	bindGU   uint64
	bound    bool
	maskVal  []uint64
	maskCtr  []uint64
	maskOK   []uint64 // bitset, parallel to maskVal
	maskBase []byte   // 16 B per node
	baseOK   []uint64 // bitset, parallel to maskBase
}

// initPlanes allocates the arena and every per-node plane for t.geo. All
// sizes are pure functions of the geometry; nothing here scales the
// allocation count with the node count.
func (t *Tree) initPlanes() {
	L := t.geo.Levels()
	t.levelBase = make([]int, L)
	t.ctrBase = make([]int, L)
	t.ctrStride = make([]int, L)
	nodes, words := 0, 0
	for l := 0; l < L; l++ {
		t.levelBase[l] = nodes
		t.ctrBase[l] = words
		t.ctrStride[l] = 1 + (t.geo.Arities[l]+3)/4
		n := t.geo.NodesAtLevel(l)
		nodes += n
		words += n * t.ctrStride[l]
	}
	t.totalNodes = nodes
	t.ctr = make([]uint64, words)
	t.mac = make([]uint64, nodes)
	t.dirty = make([]uint64, (nodes+63)/64)
	t.maskVal = make([]uint64, nodes)
	t.maskCtr = make([]uint64, nodes)
	t.maskOK = make([]uint64, (nodes+63)/64)
	t.maskBase = make([]byte, nodes*16)
	t.baseOK = make([]uint64, (nodes+63)/64)
}

// ctrOff reports the ctr-plane word offset of node (l, i)'s record.
//
//mmt:hotpath
func (t *Tree) ctrOff(l, i int) int { return t.ctrBase[l] + i*t.ctrStride[l] }

// packed returns node (l, i)'s counter record — global word plus packed
// locals — as a sub-slice of the arena. Callers only read it; it is the
// polynomial the node MAC hashes.
//
//mmt:hotpath
func (t *Tree) packed(l, i int) []uint64 {
	off := t.ctrOff(l, i)
	return t.ctr[off : off+t.ctrStride[l]]
}

// local reports the raw local counter of slot s in node (l, i).
//
//mmt:hotpath
func (t *Tree) local(l, i, s int) uint64 {
	w := t.ctr[t.ctrOff(l, i)+1+s>>2]
	return w >> (uint(s&3) * 16) & 0xFFFF
}

// counter reports the effective counter of slot s in node (l, i):
// Global<<LocalBits | Local[s] (§V-A2's "global-local counter layout").
//
//mmt:hotpath
func (t *Tree) counter(l, i, s int) uint64 {
	return t.ctr[t.ctrOff(l, i)]<<t.geo.localBits() | t.local(l, i, s)
}

// markDirty sets the dirty bit for node (l, i). Pure arithmetic on the
// preallocated bitset, safe on every hot path.
func (t *Tree) markDirty(l, i int) {
	bit := t.levelBase[l] + i
	w, m := bit>>6, uint64(1)<<(uint(bit)&63)
	if t.dirty[w]&m == 0 {
		t.dirty[w] |= m
		t.dirtyCount++
	}
}

// DirtyCount reports how many nodes changed since the last ClearDirty.
func (t *Tree) DirtyCount() int { return t.dirtyCount }

// DirtyNodes calls fn for every dirty node in ascending (level, index)
// order — the deterministic enumeration the checkpoint stream relies on.
func (t *Tree) DirtyNodes(fn func(level, index int)) {
	if t.dirtyCount == 0 {
		return
	}
	for l := 0; l < t.geo.Levels(); l++ {
		base := t.levelBase[l]
		for i, n := 0, t.geo.NodesAtLevel(l); i < n; i++ {
			bit := base + i
			if t.dirty[bit>>6]&(uint64(1)<<(uint(bit)&63)) != 0 {
				fn(l, i)
			}
		}
	}
}

// ClearDirty resets all dirty bits; the store layer calls it after the
// commit record for the batch containing these nodes is durable.
func (t *Tree) ClearDirty() {
	for i := range t.dirty {
		t.dirty[i] = 0
	}
	t.dirtyCount = 0
}

// MarkAllDirty flags every node, forcing the next checkpoint to stream
// the full node set (used after structural changes and on fresh trees).
func (t *Tree) MarkAllDirty() {
	t.dirtyCount = 0
	for l := 0; l < t.geo.Levels(); l++ {
		for i, n := 0, t.geo.NodesAtLevel(l); i < n; i++ {
			t.markDirty(l, i)
		}
	}
}

// verifyAllChunk bounds how many nodes one VerifyAll hash batch gathers;
// it caps the scratch job array on huge trees while keeping enough
// independent Horner chains in flight to saturate the pipeline.
const verifyAllChunk = 64

// treeScratch holds the tree's reusable working buffers so the per-access
// verify and update paths stay allocation-free. A tree belongs to one
// goroutine (each parallel work unit builds its own controller and trees),
// so one scratch per tree suffices.
type treeScratch struct {
	nodeIdx []int              // path node index per level
	slot    []int              // path slot per level
	ovf     []bool             // Update overflow markers per level
	jobs    []crypt.NodeMACJob // batched verify jobs
	macs    []uint64           // batched verify results
	cs      crypt.Scratch
}

// ensureScratch sizes the scratch for the tree's geometry. Cheap after the
// first call; the length check keys off nodeIdx.
func (t *Tree) ensureScratch() {
	L := t.geo.Levels()
	if len(t.scr.nodeIdx) == L {
		return
	}
	t.scr.nodeIdx = make([]int, L)
	t.scr.slot = make([]int, L)
	t.scr.ovf = make([]bool, L)
	batch := L
	if batch < verifyAllChunk {
		batch = verifyAllChunk
	}
	t.scr.jobs = make([]crypt.NodeMACJob, batch)
	t.scr.macs = make([]uint64, batch)
}

// SetTrace attaches a trace probe counting functional node MAC
// verifications and recomputations. Nil disables tracing.
func (t *Tree) SetTrace(p *trace.Probe) { t.probe = p }

// Probe reports the currently attached trace probe (nil when disabled).
func (t *Tree) Probe() *trace.Probe { return t.probe }

// New builds a tree with all counters zero and MACs computed for guaddr
// under e. It returns an error if the geometry is invalid.
func New(geo Geometry, e *crypt.Engine, guaddr uint64) (*Tree, error) {
	if err := geo.Validate(); err != nil {
		return nil, err
	}
	t := &Tree{geo: geo}
	t.initPlanes()
	t.RehashAll(e, guaddr)
	return t, nil
}

// Geometry reports the tree's shape.
func (t *Tree) Geometry() Geometry { return t.geo }

// RootCounter reports the trusted root counter.
func (t *Tree) RootCounter() uint64 { return t.rootCtr }

// SetRootCounter initialises the root counter. Users "can initialize the
// root counter with a given value when the MMT state is changed to valid"
// (§IV-B2); the delegation protocol relies on it only ever increasing
// afterwards. Callers must re-hash (RehashAll) afterwards since the top
// node MAC is keyed by the root counter.
func (t *Tree) SetRootCounter(v uint64) { t.rootCtr = v }

// BumpRootCounter increments the root counter by one and re-hashes the top
// level (whose MACs are keyed by it). The delegation protocol calls this
// when sealing a closure so that "the counter value in the sender is
// always larger than that in the receiver and is always increased during
// the delegation" (§IV-B2), even when no data write happened in between.
func (t *Tree) BumpRootCounter(e *crypt.Engine, guaddr uint64) {
	t.rootCtr++
	for i, n := 0, t.geo.NodesAtLevel(0); i < n; i++ {
		t.rehashNode(e, guaddr, 0, i)
	}
}

// NodeRef is a view of one node in the arena. It replaces the old
// *Node aliasing pointer: reads and writes go straight to the flat
// planes. The setters deliberately bypass MAC maintenance and dirty
// tracking — they model an attacker (or snapshot patcher) writing the
// untrusted meta-zone behind the controller's back; tests use them to
// simulate tampering.
type NodeRef struct {
	t     *Tree
	level int
	index int
}

// Node returns a view of the node at (level, index).
func (t *Tree) Node(level, index int) NodeRef {
	return NodeRef{t: t, level: level, index: index}
}

// Arity reports the node's slot count.
func (n NodeRef) Arity() int { return n.t.geo.Arities[n.level] }

// Global reads the node's global counter word.
func (n NodeRef) Global() uint64 { return n.t.ctr[n.t.ctrOff(n.level, n.index)] }

// SetGlobal overwrites the node's global counter word.
func (n NodeRef) SetGlobal(v uint64) { n.t.ctr[n.t.ctrOff(n.level, n.index)] = v }

// Local reads the raw local counter of slot s.
func (n NodeRef) Local(s int) uint64 { return n.t.local(n.level, n.index, s) }

// SetLocal overwrites the local counter of slot s (truncated to 16 bits,
// the packed field width).
func (n NodeRef) SetLocal(s int, v uint64) {
	t := n.t
	off := t.ctrOff(n.level, n.index) + 1 + s>>2
	sh := uint(s&3) * 16
	t.ctr[off] = t.ctr[off]&^(uint64(0xFFFF)<<sh) | (v&0xFFFF)<<sh
}

// MAC reads the node's stored MAC.
func (n NodeRef) MAC() uint64 { return n.t.mac[n.t.levelBase[n.level]+n.index] }

// SetMAC overwrites the node's stored MAC.
func (n NodeRef) SetMAC(v uint64) { n.t.mac[n.t.levelBase[n.level]+n.index] = v }

// LeafCounter reports the effective counter protecting the given line;
// this is the counter the crypto engine mixes into the line's OTP and MAC.
// Called once per protected access, so it computes the leaf coordinates
// directly instead of materialising the whole path.
//mmt:hotpath
func (t *Tree) LeafCounter(line int) uint64 {
	t.geo.checkLine(line)
	L := t.geo.Levels()
	leafArity := t.geo.Arities[L-1]
	return t.counter(L-1, line/leafArity, line%leafArity)
}

// parentCounter reports the counter covering node (l, i): the root counter
// for level 0, otherwise the effective counter in the parent's slot.
//
//mmt:hotpath
func (t *Tree) parentCounter(l, i int) uint64 {
	if l == 0 {
		return t.rootCtr
	}
	parent := i / t.geo.Arities[l-1]
	slot := i % t.geo.Arities[l-1]
	return t.counter(l-1, parent, slot)
}

// nodeID packs a node's coordinates into the 32-bit id mixed into its MAC,
// preventing node splicing within one MMT.
func nodeID(level, index int) uint32 { return uint32(level)<<24 | uint32(index)&0xFFFFFF }

// bind points the mask caches at (e, guaddr), flushing them if either
// changed since the last use. Engines are compared by identity: a
// re-created engine under the same key conservatively misses.
//
//mmt:hotpath
func (t *Tree) bind(e *crypt.Engine, guaddr uint64) {
	if t.bound && t.bindEng == e && t.bindGU == guaddr {
		return
	}
	for i := range t.maskOK {
		t.maskOK[i] = 0
	}
	for i := range t.baseOK {
		t.baseOK[i] = 0
	}
	t.bindEng, t.bindGU, t.bound = e, guaddr, true
}

// nodeMask returns the MAC mask of node (l, i) at parent counter pc,
// serving it from the per-node cache when the key matches. Callers must
// have bound (e, guaddr) first. The value is always exactly
// AES-mask(guaddr, nodeID, pc) — the cache changes cost, never output.
//
//mmt:hotpath
func (t *Tree) nodeMask(e *crypt.Engine, guaddr uint64, l, i int, pc uint64) uint64 {
	idx := t.levelBase[l] + i
	w, m := idx>>6, uint64(1)<<(uint(idx)&63)
	if t.maskOK[w]&m != 0 && t.maskCtr[idx] == pc {
		return t.maskVal[idx]
	}
	base := t.maskBase[idx*16 : idx*16+16]
	if t.baseOK[w]&m == 0 {
		e.MaskBaseInto(guaddr, nodeID(l, i), crypt.DomainNodeMAC, base, &t.scr.cs)
		t.baseOK[w] |= m
	}
	v := e.MaskFromBase(base, pc, &t.scr.cs)
	t.maskVal[idx] = v
	t.maskCtr[idx] = pc
	t.maskOK[w] |= m
	return v
}

// rehashNode recomputes the MAC of node (l, i).
func (t *Tree) rehashNode(e *crypt.Engine, guaddr uint64, l, i int) {
	t.probe.Count(trace.CtrTreeNodeRehashes, 1)
	t.markDirty(l, i)
	t.bind(e, guaddr)
	pc := t.parentCounter(l, i)
	h := e.NodeHash(pc, uint64(t.geo.Arities[l]), t.packed(l, i))
	t.mac[t.levelBase[l]+i] = h ^ t.nodeMask(e, guaddr, l, i, pc)
}

// RehashAll recomputes every node MAC bottom-up. Used after bulk
// initialisation or after SetRootCounter.
func (t *Tree) RehashAll(e *crypt.Engine, guaddr uint64) {
	for l := t.geo.Levels() - 1; l >= 0; l-- {
		for i, n := 0, t.geo.NodesAtLevel(l); i < n; i++ {
			t.rehashNode(e, guaddr, l, i)
		}
	}
}

// ErrIntegrity is returned when a node MAC check fails: the meta-zone or a
// transferred closure was tampered with, replayed, or decoded under the
// wrong key/address.
var ErrIntegrity = errors.New("tree: integrity check failed")

// VerifyPath checks node MACs from the leaf covering line up to the root
// counter — the integrity-tree engine's read-path check ("checks hashes
// stored in tree nodes recursively up to the MMT root", §V-A2).
//
// The expected MACs of the whole path are computed in one
// crypt.NodeHashBatch (the batched GF Horner kernel over the arena
// sub-slices, no copying) plus cached per-node masks before any
// comparison; computing a MAC is pure, so doing the upper levels' work
// eagerly cannot change behaviour. Comparisons — and the per-node verify
// trace counts — then run leaf to root exactly like the serial loop,
// stopping at the first mismatch, so traces and errors are identical to
// the unbatched implementation in both success and failure.
//mmt:hotpath
func (t *Tree) VerifyPath(e *crypt.Engine, guaddr uint64, line int) error {
	//mmt:allow noalloc: scratch grows once per geometry change, then steady-state reuse
	t.ensureScratch()
	t.bind(e, guaddr)
	s := &t.scr
	t.geo.pathInto(line, s.nodeIdx, s.slot)
	L := t.geo.Levels()
	jobs := s.jobs[:L]
	for l := 0; l < L; l++ {
		i := s.nodeIdx[l]
		jobs[l] = crypt.NodeMACJob{
			NodeID:        nodeID(l, i),
			ParentCounter: t.parentCounter(l, i),
			Arity:         uint64(t.geo.Arities[l]),
			Packed:        t.packed(l, i),
		}
	}
	e.NodeHashBatch(jobs, s.macs, &s.cs)
	for l := 0; l < L; l++ {
		s.macs[l] ^= t.nodeMask(e, guaddr, l, s.nodeIdx[l], jobs[l].ParentCounter)
	}
	for l := L - 1; l >= 0; l-- {
		t.probe.Count(trace.CtrTreeNodeVerifies, 1)
		if !crypt.TagEqual(t.mac[t.levelBase[l]+s.nodeIdx[l]], s.macs[l]) {
			t.probe.Count(trace.CtrTreeNodeVerifyFails, 1)
			return fmt.Errorf("%w: node level %d index %d", ErrIntegrity, l, s.nodeIdx[l])
		}
	}
	return nil
}

// VerifyAll checks every node MAC; the closure-delegation engine runs this
// after unsealing a transferred root. Each level is verified in hash
// batches of up to verifyAllChunk nodes — a whole level shares one pass of
// lock-step Horner chains — with comparisons, trace counts and first-error
// semantics identical to the old per-node walk in (level, index) order.
func (t *Tree) VerifyAll(e *crypt.Engine, guaddr uint64) error {
	t.ensureScratch()
	t.bind(e, guaddr)
	s := &t.scr
	for l := 0; l < t.geo.Levels(); l++ {
		n := t.geo.NodesAtLevel(l)
		for start := 0; start < n; start += verifyAllChunk {
			end := start + verifyAllChunk
			if end > n {
				end = n
			}
			jobs := s.jobs[:end-start]
			for i := start; i < end; i++ {
				jobs[i-start] = crypt.NodeMACJob{
					NodeID:        nodeID(l, i),
					ParentCounter: t.parentCounter(l, i),
					Arity:         uint64(t.geo.Arities[l]),
					Packed:        t.packed(l, i),
				}
			}
			e.NodeHashBatch(jobs, s.macs, &s.cs)
			for i := start; i < end; i++ {
				t.probe.Count(trace.CtrTreeNodeVerifies, 1)
				want := s.macs[i-start] ^ t.nodeMask(e, guaddr, l, i, jobs[i-start].ParentCounter)
				if !crypt.TagEqual(t.mac[t.levelBase[l]+i], want) {
					t.probe.Count(trace.CtrTreeNodeVerifyFails, 1)
					return fmt.Errorf("%w: node level %d index %d", ErrIntegrity, l, i)
				}
			}
		}
	}
	return nil
}

// UpdateResult describes the side effects of one write-path counter bump.
type UpdateResult struct {
	// LeafCounter is the new effective counter for the written line; the
	// caller re-encrypts the line under it.
	LeafCounter uint64
	// ReencryptLines lists the other lines whose counters changed because a
	// leaf-level local counter overflowed; the caller must re-encrypt and
	// re-MAC them at their new counters (returned by LeafCounter queries).
	ReencryptLines []int
	// NodesTouched counts node MAC recomputations (for cost accounting).
	NodesTouched int
	// Overflowed reports whether any level overflowed.
	Overflowed bool
}

// Update increments the counters along line's path — leaf slot, every
// interior slot, and the root counter — handling local-counter overflow,
// then recomputes the affected node MACs. This is the write path of the
// integrity tree engine.
//mmt:hotpath
func (t *Tree) Update(e *crypt.Engine, guaddr uint64, line int) UpdateResult {
	//mmt:allow noalloc: scratch grows once per geometry change, then steady-state reuse
	t.ensureScratch()
	nodeIdx, slot := t.scr.nodeIdx, t.scr.slot
	t.geo.pathInto(line, nodeIdx, slot)
	L := t.geo.Levels()
	res := UpdateResult{}
	maxLocal := uint64(1)<<t.geo.localBits() - 1

	// Bump every counter on the path first (leaf to root), tracking
	// overflow, then rehash: MACs depend on parent counters, so they must
	// be computed against the final values.
	overflowAt := t.scr.ovf
	for l := range overflowAt {
		overflowAt[l] = false
	}
	for l := L - 1; l >= 0; l-- {
		off := t.ctrOff(l, nodeIdx[l])
		w := off + 1 + slot[l]>>2
		sh := uint(slot[l]&3) * 16
		if t.ctr[w]>>sh&0xFFFF == maxLocal {
			t.ctr[off]++ // global counter
			for k := off + 1; k < off+t.ctrStride[l]; k++ {
				t.ctr[k] = 0
			}
			overflowAt[l] = true
			res.Overflowed = true
		} else {
			// The field is below maxLocal <= 0xFFFF, so the add never
			// carries into the neighbouring packed field.
			t.ctr[w] += 1 << sh
		}
	}
	t.rootCtr++

	// Rehash. Path nodes always need it (their counters and their parent
	// counters changed). An overflow at level l additionally invalidates
	// the MACs of all children of the overflowed node (their parent
	// counters were reset), and a leaf overflow forces data re-encryption.
	for l := 0; l < L; l++ {
		t.rehashNode(e, guaddr, l, nodeIdx[l])
		res.NodesTouched++
		if !overflowAt[l] {
			continue
		}
		if l == L-1 {
			// Leaf overflow: all lines under this leaf changed counters.
			base := nodeIdx[l] * t.geo.Arities[l]
			for s := 0; s < t.geo.Arities[l]; s++ {
				if ln := base + s; ln != line {
					//mmt:allow noalloc: overflow re-encryption list is the rare cold path; grows once per global-counter exhaustion
					res.ReencryptLines = append(res.ReencryptLines, ln)
				}
			}
		} else {
			// Interior overflow: all child nodes must be re-MACed.
			childBase := nodeIdx[l] * t.geo.Arities[l]
			for c := 0; c < t.geo.Arities[l]; c++ {
				child := childBase + c
				if child != nodeIdx[l+1] { // path child is rehashed anyway
					t.rehashNode(e, guaddr, l+1, child)
					res.NodesTouched++
				}
			}
		}
	}
	res.LeafCounter = t.counter(L-1, nodeIdx[L-1], slot[L-1])
	return res
}

// appendNode appends node (l, i)'s serialized record to dst: global u64,
// locals u16 in slot order, MAC u64, all little endian. Because the
// packed in-word field order is little-endian too, the locals are emitted
// by streaming each arena word's LE bytes and truncating the final
// partial word — the serialized format is unchanged from the per-node
// layout of earlier versions.
func (t *Tree) appendNode(dst []byte, l, i int) []byte {
	off := t.ctrOff(l, i)
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], t.ctr[off])
	dst = append(dst, buf[:]...)
	rem := 2 * t.geo.Arities[l] // local bytes still to emit
	for k := off + 1; rem > 0; k++ {
		binary.LittleEndian.PutUint64(buf[:], t.ctr[k])
		n := rem
		if n > 8 {
			n = 8
		}
		dst = append(dst, buf[:n]...)
		rem -= n
	}
	binary.LittleEndian.PutUint64(buf[:], t.mac[t.levelBase[l]+i])
	return append(dst, buf[:]...)
}

// setNodeFromBytes decodes one serialized node record into the arena.
// Unused high fields of a trailing partial word are zeroed — an invariant
// every arena record maintains so hashes and re-serialization agree.
func (t *Tree) setNodeFromBytes(l, i int, b []byte) {
	off := t.ctrOff(l, i)
	t.ctr[off] = binary.LittleEndian.Uint64(b)
	pos := 8
	rem := 2 * t.geo.Arities[l]
	for k := off + 1; k < off+t.ctrStride[l]; k++ {
		var w uint64
		n := rem
		if n > 8 {
			n = 8
		}
		for j := 0; j < n; j++ {
			w |= uint64(b[pos+j]) << (8 * uint(j))
		}
		t.ctr[k] = w
		pos += n
		rem -= n
	}
	t.mac[t.levelBase[l]+i] = binary.LittleEndian.Uint64(b[pos:])
}

// Serialize encodes all tree nodes (not the root counter — that travels
// sealed inside the MMT root) in the meta-zone layout: per node, global
// counter, locals, MAC, little endian, levels top-down.
func (t *Tree) Serialize() []byte {
	out := make([]byte, 0, t.geo.NodesSize())
	for l := 0; l < t.geo.Levels(); l++ {
		for i, n := 0, t.geo.NodesAtLevel(l); i < n; i++ {
			out = t.appendNode(out, l, i)
		}
	}
	return out
}

// Deserialize decodes a serialized node set into a tree with the given
// geometry. The root counter is zero until SetRootCounter; callers verify
// with VerifyAll after installing the unsealed root counter.
func Deserialize(geo Geometry, data []byte) (*Tree, error) {
	if err := geo.Validate(); err != nil {
		return nil, err
	}
	if len(data) != geo.NodesSize() {
		return nil, fmt.Errorf("tree: serialized size %d, want %d", len(data), geo.NodesSize())
	}
	t := &Tree{geo: geo}
	t.initPlanes()
	off := 0
	for l := 0; l < geo.Levels(); l++ {
		size := geo.NodeSize(l)
		for i, n := 0, geo.NodesAtLevel(l); i < n; i++ {
			t.setNodeFromBytes(l, i, data[off:off+size])
			off += size
		}
	}
	return t, nil
}

// AppendNode appends the serialized bytes of node (l, i) — the same
// per-node layout Serialize uses (global u64, locals u16, MAC u64, little
// endian) — to dst and returns the extended slice. This is the unit record
// of the mmt-store/v1 dirty-node stream.
func (t *Tree) AppendNode(dst []byte, l, i int) []byte {
	return t.appendNode(dst, l, i)
}

// SetNodeFromBytes overwrites node (l, i) from its serialized form. Used
// by snapshot recovery when patching a node delta into a reloaded tree;
// callers re-verify with VerifyAll afterwards.
func (t *Tree) SetNodeFromBytes(l, i int, b []byte) error {
	if l < 0 || l >= t.geo.Levels() || i < 0 || i >= t.geo.NodesAtLevel(l) {
		return fmt.Errorf("tree: node (%d,%d) out of range", l, i)
	}
	if len(b) != t.geo.NodeSize(l) {
		return fmt.Errorf("tree: node bytes %d, want %d", len(b), t.geo.NodeSize(l))
	}
	t.setNodeFromBytes(l, i, b)
	return nil
}

// Clone deep-copies the tree (used for read-only ownership-copy mode).
func (t *Tree) Clone() *Tree {
	c := &Tree{geo: t.geo, rootCtr: t.rootCtr, probe: t.probe}
	c.initPlanes()
	copy(c.ctr, t.ctr)
	copy(c.mac, t.mac)
	c.MarkAllDirty() // the clone has never been checkpointed
	return c
}
