// Package mapreduce is the in-memory MapReduce framework of §VI-C1: a
// coordinator, mappers and reducers on separate simulated machines that
// shuffle intermediate key-value results through one of the three transfer
// channels (non-secure baseline, software secure channel, MMT closure
// delegation).
//
// The framework follows the RDMA-based in-memory designs the paper cites:
// intermediate results live in memory, each mapper holds a connection
// (QP-like) to every reducer, and the shuffle is the only cross-machine
// traffic. End-to-end time is the makespan over all simulated node clocks.
package mapreduce

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"sort"
	"strings"
)

// KV is one intermediate or final key-value pair.
type KV struct {
	Key   string
	Value int64
}

// Mapper turns an input chunk into intermediate pairs via emit.
type Mapper func(chunk []byte, emit func(key string, value int64))

// Reducer folds all values of one key into a final value.
type Reducer func(key string, values []int64) int64

// WordCountMapper emits (word, 1) per whitespace-separated token.
func WordCountMapper(chunk []byte, emit func(string, int64)) {
	for _, w := range strings.Fields(string(chunk)) {
		emit(w, 1)
	}
}

// WordCountReducer sums the counts.
func WordCountReducer(_ string, values []int64) int64 {
	var sum int64
	for _, v := range values {
		sum += v
	}
	return sum
}

// GrepMapper returns a Mapper emitting (line, 1) for lines containing the
// pattern — the second classic VC3-style job.
func GrepMapper(pattern string) Mapper {
	return func(chunk []byte, emit func(string, int64)) {
		for _, line := range strings.Split(string(chunk), "\n") {
			if strings.Contains(line, pattern) {
				emit(line, 1)
			}
		}
	}
}

// combine pre-reduces a partition locally, preserving first-seen key
// order for determinism.
func combine(kvs []KV, combiner Reducer) []KV {
	byKey := make(map[string][]int64, len(kvs))
	var order []string
	for _, kv := range kvs {
		if _, seen := byKey[kv.Key]; !seen {
			order = append(order, kv.Key)
		}
		byKey[kv.Key] = append(byKey[kv.Key], kv.Value)
	}
	out := make([]KV, 0, len(order))
	for _, k := range order {
		out = append(out, KV{Key: k, Value: combiner(k, byKey[k])})
	}
	return out
}

// partitionOf assigns a key to a reducer.
func partitionOf(key string, reducers int) int {
	h := fnv.New32a()
	h.Write([]byte(key))
	return int(h.Sum32()) % reducers
}

// encodeKVs serializes a partition for the shuffle.
func encodeKVs(kvs []KV) []byte {
	size := 4
	for _, kv := range kvs {
		size += 4 + len(kv.Key) + 8
	}
	out := make([]byte, 0, size)
	var buf [8]byte
	binary.LittleEndian.PutUint32(buf[:4], uint32(len(kvs)))
	out = append(out, buf[:4]...)
	for _, kv := range kvs {
		binary.LittleEndian.PutUint32(buf[:4], uint32(len(kv.Key)))
		out = append(out, buf[:4]...)
		out = append(out, kv.Key...)
		binary.LittleEndian.PutUint64(buf[:], uint64(kv.Value))
		out = append(out, buf[:8]...)
	}
	return out
}

// decodeKVs reverses encodeKVs.
func decodeKVs(b []byte) ([]KV, error) {
	if len(b) < 4 {
		return nil, fmt.Errorf("mapreduce: short partition (%d bytes)", len(b))
	}
	n := int(binary.LittleEndian.Uint32(b))
	b = b[4:]
	// Each pair needs at least 12 bytes; a count beyond that is corrupt,
	// and pre-allocating from it would let a malformed message exhaust
	// memory.
	if n > len(b)/12 {
		return nil, fmt.Errorf("mapreduce: pair count %d exceeds payload", n)
	}
	kvs := make([]KV, 0, n)
	for i := 0; i < n; i++ {
		if len(b) < 4 {
			return nil, fmt.Errorf("mapreduce: truncated key length")
		}
		kl := int(binary.LittleEndian.Uint32(b))
		b = b[4:]
		if kl < 0 || len(b) < kl+8 {
			return nil, fmt.Errorf("mapreduce: truncated pair")
		}
		key := string(b[:kl])
		val := int64(binary.LittleEndian.Uint64(b[kl:]))
		b = b[kl+8:]
		kvs = append(kvs, KV{Key: key, Value: val})
	}
	if len(b) != 0 {
		return nil, fmt.Errorf("mapreduce: %d trailing bytes", len(b))
	}
	return kvs, nil
}

// splitInput cuts input into m chunks on whitespace boundaries.
func splitInput(input []byte, m int) [][]byte {
	chunks := make([][]byte, 0, m)
	approx := len(input) / m
	start := 0
	for i := 0; i < m; i++ {
		if i == m-1 {
			chunks = append(chunks, input[start:])
			break
		}
		end := start + approx
		if end >= len(input) {
			chunks = append(chunks, input[start:])
			for len(chunks) < m {
				chunks = append(chunks, nil)
			}
			break
		}
		for end < len(input) && input[end] != ' ' && input[end] != '\n' {
			end++
		}
		chunks = append(chunks, input[start:end])
		start = end
	}
	return chunks
}

// sortedKeys returns map keys in deterministic order.
func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
