package attest

import (
	"errors"
	"strings"
	"testing"

	"mmt/internal/netsim"
	"mmt/internal/sim"
)

// fixture builds a manufacturer, an authority trusting it, a provisioned
// machine and its software measurement (whitelisted).
func fixture(t *testing.T) (*Manufacturer, *Authority, *Machine, Measurement) {
	t.Helper()
	mfr, err := NewManufacturer()
	if err != nil {
		t.Fatal(err)
	}
	auth, err := NewAuthority(mfr.PublicKey())
	if err != nil {
		t.Fatal(err)
	}
	machine, err := mfr.Provision("node-a")
	if err != nil {
		t.Fatal(err)
	}
	meas := MeasureSoftware([]byte("trusted monitor v1"))
	auth.AllowMeasurement(meas)
	return mfr, auth, machine, meas
}

func newNodeSession(t *testing.T, m *Machine, meas Measurement, auth *Authority) *NodeSession {
	t.Helper()
	ns, err := NewNodeSession(m, meas, "rack-1", auth.PublicKey())
	if err != nil {
		t.Fatal(err)
	}
	return ns
}

func TestAttestationHappyPath(t *testing.T) {
	_, auth, machine, meas := fixture(t)
	ns := newNodeSession(t, machine, meas, auth)
	id, report, err := Run(ns, auth)
	if err != nil {
		t.Fatal(err)
	}
	if id == 0 {
		t.Fatal("node id 0 issued")
	}
	if report.NodeID != id || report.Subject != "node-a" || report.Measurement != meas {
		t.Fatalf("report fields wrong: %+v", report)
	}
	if err := VerifyReport(auth.PublicKey(), report); err != nil {
		t.Fatalf("issued report does not verify: %v", err)
	}
}

func TestNodeIDsUniqueAndIncreasing(t *testing.T) {
	mfr, auth, _, meas := fixture(t)
	seen := map[uint16]bool{}
	for i := 0; i < 5; i++ {
		m, err := mfr.Provision("node")
		if err != nil {
			t.Fatal(err)
		}
		ns := newNodeSession(t, m, meas, auth)
		id, _, err := Run(ns, auth)
		if err != nil {
			t.Fatal(err)
		}
		if seen[uint16(id)] {
			t.Fatalf("node id %d issued twice", id)
		}
		seen[uint16(id)] = true
	}
}

func TestUnknownMeasurementRejected(t *testing.T) {
	_, auth, machine, _ := fixture(t)
	rogue := MeasureSoftware([]byte("rootkit"))
	ns := newNodeSession(t, machine, rogue, auth)
	_, _, err := Run(ns, auth)
	if !errors.Is(err, ErrMeasurement) {
		t.Fatalf("rogue measurement: %v, want ErrMeasurement", err)
	}
}

func TestForgedCertificateRejected(t *testing.T) {
	_, auth, _, meas := fixture(t)
	// A machine provisioned by a different (rogue) manufacturer.
	rogueMfr, err := NewManufacturer()
	if err != nil {
		t.Fatal(err)
	}
	rogueMachine, err := rogueMfr.Provision("node-evil")
	if err != nil {
		t.Fatal(err)
	}
	ns := newNodeSession(t, rogueMachine, meas, auth)
	_, _, err = Run(ns, auth)
	if !errors.Is(err, ErrRejected) {
		t.Fatalf("rogue manufacturer: %v, want ErrRejected", err)
	}
}

func TestTamperedCertificateRejected(t *testing.T) {
	mfr, _, machine, _ := fixture(t)
	cert := machine.Cert
	cert.Subject = "node-imposter"
	if _, err := VerifyCertificate(mfr.PublicKey(), &cert); err == nil {
		t.Fatal("tampered certificate verified")
	}
}

func TestStolenCertificateWithoutKeyRejected(t *testing.T) {
	// An attacker replays node-a's (public) certificate but cannot sign
	// the transcript with node-a's machine key.
	mfr, auth, victim, meas := fixture(t)
	attacker, err := mfr.Provision("node-b")
	if err != nil {
		t.Fatal(err)
	}
	attacker.Cert = victim.Cert // stolen certificate, wrong private key
	ns := newNodeSession(t, attacker, meas, auth)
	_, _, err = Run(ns, auth)
	if !errors.Is(err, ErrRejected) {
		t.Fatalf("stolen certificate: %v, want ErrRejected", err)
	}
}

func TestReportForgeryRejected(t *testing.T) {
	_, auth, machine, meas := fixture(t)
	ns := newNodeSession(t, machine, meas, auth)
	_, report, err := Run(ns, auth)
	if err != nil {
		t.Fatal(err)
	}
	forged := *report
	forged.NodeID++
	if err := VerifyReport(auth.PublicKey(), &forged); err == nil {
		t.Fatal("forged report verified")
	}
	other, _ := NewAuthority(auth.manufacturer)
	if err := VerifyReport(other.PublicKey(), report); err == nil {
		t.Fatal("report verified under wrong authority")
	}
}

func TestProtocolRejectsGarbageMessages(t *testing.T) {
	_, auth, machine, meas := fixture(t)
	ns := newNodeSession(t, machine, meas, auth)
	as, err := auth.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := as.OnHello([]byte("not json")); err == nil {
		t.Error("garbage hello accepted")
	}
	if _, err := as.OnEvidence([]byte(`{"type":"evidence"}`)); err == nil {
		t.Error("empty evidence accepted")
	}
	if _, err := ns.OnServerHello([]byte(`{"type":"wrong"}`)); err == nil {
		t.Error("wrong-type server hello accepted")
	}
	if _, _, err := ns.OnGrant([]byte(`{"type":"grant"}`)); err == nil {
		t.Error("grant before key agreement accepted")
	}
}

func TestAttestationOverUntrustedNetwork(t *testing.T) {
	// Full protocol across netsim with a passive spy: it must succeed, and
	// the spy must never see the measurement in cleartext.
	_, auth, machine, meas := fixture(t)
	ns := newNodeSession(t, machine, meas, auth)
	as, err := auth.NewSession()
	if err != nil {
		t.Fatal(err)
	}

	net := netsim.NewNetwork(1e-6)
	nodeEP, _ := net.Attach("node", sim.NewClock(0))
	authEP, _ := net.Attach("authority", sim.NewClock(0))
	spy := &netsim.Spy{}
	net.SetInterposer(spy)

	send := func(from *netsim.Endpoint, to string, b []byte) []byte {
		from.Send(to, netsim.KindControl, b)
		var dst *netsim.Endpoint
		if to == "authority" {
			dst = authEP
		} else {
			dst = nodeEP
		}
		m, ok := dst.Recv()
		if !ok {
			t.Fatal("message lost")
		}
		return m.Payload
	}

	hello, err := ns.Hello()
	if err != nil {
		t.Fatal(err)
	}
	sh, err := as.OnHello(send(nodeEP, "authority", hello))
	if err != nil {
		t.Fatal(err)
	}
	ev, err := ns.OnServerHello(send(authEP, "node", sh))
	if err != nil {
		t.Fatal(err)
	}
	grant, err := as.OnEvidence(send(nodeEP, "authority", ev))
	if err != nil {
		t.Fatal(err)
	}
	id, _, err := ns.OnGrant(send(authEP, "node", grant))
	if err != nil {
		t.Fatal(err)
	}
	if id == 0 {
		t.Fatal("no node id")
	}

	for _, captured := range spy.Captured {
		if strings.Contains(string(captured), "rack-1") {
			t.Fatal("node metadata leaked in cleartext on the wire")
		}
	}
	if len(spy.Captured) != 4 {
		t.Fatalf("spy saw %d messages, want 4", len(spy.Captured))
	}
}

func TestSessionKeysAgree(t *testing.T) {
	_, auth, machine, meas := fixture(t)
	ns := newNodeSession(t, machine, meas, auth)
	as, err := auth.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	hello, _ := ns.Hello()
	sh, err := as.OnHello(hello)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ns.OnServerHello(sh); err != nil {
		t.Fatal(err)
	}
	if ns.SessionKey() != as.session {
		t.Fatal("ECDH endpoints derived different session keys")
	}
	var zero [32]byte
	if ns.SessionKey() == zero {
		t.Fatal("session key is zero")
	}
}

func TestMeasureSoftwareDeterministic(t *testing.T) {
	if MeasureSoftware([]byte("a")) != MeasureSoftware([]byte("a")) {
		t.Fatal("measurement not deterministic")
	}
	if MeasureSoftware([]byte("a")) == MeasureSoftware([]byte("b")) {
		t.Fatal("measurement collision")
	}
}

func TestEvidenceBoundToSession(t *testing.T) {
	// Cut-and-paste attack: evidence produced for one attestation session
	// must not be accepted by another (the machine-key signature covers
	// the session transcript).
	_, auth, machine, meas := fixture(t)
	ns := newNodeSession(t, machine, meas, auth)
	as1, err := auth.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	hello, _ := ns.Hello()
	sh, err := as1.OnHello(hello)
	if err != nil {
		t.Fatal(err)
	}
	evidence, err := ns.OnServerHello(sh)
	if err != nil {
		t.Fatal(err)
	}
	// A second authority session with a different ECDH share sees the
	// same hello but must reject the first session's evidence.
	as2, err := auth.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := as2.OnHello(hello); err != nil {
		t.Fatal(err)
	}
	if _, err := as2.OnEvidence(evidence); err == nil {
		t.Fatal("evidence from another session accepted")
	}
	// The original session still works.
	if _, err := as1.OnEvidence(evidence); err != nil {
		t.Fatalf("legitimate evidence rejected: %v", err)
	}
}

func TestGrantUnreadableByEavesdropper(t *testing.T) {
	// The grant (node id + report) travels under the session key; a third
	// party replaying it into its own session cannot decrypt it.
	_, auth, machine, meas := fixture(t)
	ns := newNodeSession(t, machine, meas, auth)
	as, err := auth.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	hello, _ := ns.Hello()
	sh, _ := as.OnHello(hello)
	ev, err := ns.OnServerHello(sh)
	if err != nil {
		t.Fatal(err)
	}
	grant, err := as.OnEvidence(ev)
	if err != nil {
		t.Fatal(err)
	}
	// A different node session (different ECDH keys) cannot open it.
	other := newNodeSession(t, machine, meas, auth)
	oHello, _ := other.Hello()
	oAS, _ := auth.NewSession()
	oSH, _ := oAS.OnHello(oHello)
	if _, err := other.OnServerHello(oSH); err != nil {
		t.Fatal(err)
	}
	if _, _, err := other.OnGrant(grant); err == nil {
		t.Fatal("grant decrypted under the wrong session key")
	}
	// The right session can.
	if _, _, err := ns.OnGrant(grant); err != nil {
		t.Fatalf("legitimate grant rejected: %v", err)
	}
}
