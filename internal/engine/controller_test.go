package engine

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"mmt/internal/crypt"
	"mmt/internal/mem"
	"mmt/internal/sim"
	"mmt/internal/tree"
)

// testSetup builds a controller over a small geometry: 2*3*4 = 24 lines
// (1536 B regions), 4 regions.
func testSetup(t testing.TB) *Controller {
	t.Helper()
	geo := tree.Geometry{Arities: []int{2, 3, 4}}
	m := mem.New(mem.Config{
		Size:          4 * geo.DataSize(),
		RegionSize:    geo.DataSize(),
		MetaPerRegion: geo.MetaSize(),
	})
	c, err := New(m, geo, nil, sim.Gem5Profile())
	if err != nil {
		t.Fatal(err)
	}
	return c
}

var testKey = crypt.KeyFromBytes([]byte("engine-test"))

func fill(c *Controller, r int, seed byte) {
	data := c.Memory().RegionData(r)
	for i := range data {
		data[i] = seed + byte(i%251)
	}
}

func TestNewValidatesGeometryAgainstMemory(t *testing.T) {
	geo := tree.ForLevels(2) // 64 KB regions
	m := mem.New(mem.Config{Size: 1 << 20, RegionSize: 128 << 10, MetaPerRegion: 16 << 10})
	if _, err := New(m, geo, nil, sim.Gem5Profile()); err == nil {
		t.Fatal("mismatched region size accepted")
	}
	m2 := mem.New(mem.Config{Size: 1 << 20, RegionSize: geo.DataSize(), MetaPerRegion: 64})
	if _, err := New(m2, geo, nil, sim.Gem5Profile()); err == nil {
		t.Fatal("undersized meta-zone accepted")
	}
}

func TestEnableEncryptsInPlace(t *testing.T) {
	c := testSetup(t)
	fill(c, 0, 1)
	plain := append([]byte(nil), c.Memory().RegionData(0)...)
	if err := c.Enable(0, testKey, 0x11, 0); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(c.Memory().RegionData(0), plain) {
		t.Fatal("region not encrypted after Enable")
	}
	if c.Memory().RegionKind(0) != mem.KindSecure {
		t.Fatal("region kind not secure")
	}
	// Reads decrypt back to the original plaintext.
	for line := 0; line < c.Geometry().Lines(); line++ {
		got, err := c.Read(0, line)
		if err != nil {
			t.Fatalf("read line %d: %v", line, err)
		}
		if !bytes.Equal(got, plain[line*mem.LineSize:(line+1)*mem.LineSize]) {
			t.Fatalf("line %d decrypts wrong", line)
		}
	}
}

func TestEnableTwiceFails(t *testing.T) {
	c := testSetup(t)
	if err := c.Enable(0, testKey, 0x11, 0); err != nil {
		t.Fatal(err)
	}
	if err := c.Enable(0, testKey, 0x12, 0); !errors.Is(err, ErrBusy) {
		t.Fatalf("second Enable: %v, want ErrBusy", err)
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	c := testSetup(t)
	if err := c.Enable(0, testKey, 0x11, 0); err != nil {
		t.Fatal(err)
	}
	line := bytes.Repeat([]byte{0x5C}, mem.LineSize)
	if err := c.Write(0, 7, line); err != nil {
		t.Fatal(err)
	}
	got, err := c.Read(0, 7)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, line) {
		t.Fatal("write/read round trip failed")
	}
	if c.RootCounter(0) != 1 {
		t.Fatalf("root counter = %d, want 1", c.RootCounter(0))
	}
}

func TestDisabledRegionRejectsAccess(t *testing.T) {
	c := testSetup(t)
	if _, err := c.Read(0, 0); !errors.Is(err, ErrDisabled) {
		t.Fatalf("Read on disabled region: %v", err)
	}
	if err := c.Write(0, 0, make([]byte, mem.LineSize)); !errors.Is(err, ErrDisabled) {
		t.Fatalf("Write on disabled region: %v", err)
	}
	if err := c.SetMode(0, ModeReadOnly); !errors.Is(err, ErrDisabled) {
		t.Fatalf("SetMode on disabled region: %v", err)
	}
	if _, _, _, _, _, err := c.Export(0); !errors.Is(err, ErrDisabled) {
		t.Fatalf("Export on disabled region: %v", err)
	}
}

func TestReadOnlyModeRejectsWrites(t *testing.T) {
	c := testSetup(t)
	if err := c.Enable(0, testKey, 0x11, 0); err != nil {
		t.Fatal(err)
	}
	if err := c.SetMode(0, ModeReadOnly); err != nil {
		t.Fatal(err)
	}
	if err := c.Write(0, 0, make([]byte, mem.LineSize)); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("Write in read-only mode: %v, want ErrReadOnly", err)
	}
	if _, err := c.Read(0, 0); err != nil {
		t.Fatalf("Read in read-only mode failed: %v", err)
	}
}

func TestPhysicalTamperOnDataDetected(t *testing.T) {
	c := testSetup(t)
	fill(c, 0, 3)
	if err := c.Enable(0, testKey, 0x11, 0); err != nil {
		t.Fatal(err)
	}
	// Off-chip attacker flips a bit in DRAM (raw write, no checks).
	c.Memory().Write(5, []byte{c.Memory().Read(5, 1)[0] ^ 1})
	if _, err := c.Read(0, 0); !errors.Is(err, ErrIntegrity) {
		t.Fatalf("tampered data read: %v, want integrity failure", err)
	}
}

func TestPhysicalReplayOnDataDetected(t *testing.T) {
	c := testSetup(t)
	fill(c, 0, 3)
	if err := c.Enable(0, testKey, 0x11, 0); err != nil {
		t.Fatal(err)
	}
	// Attacker snapshots line 0's ciphertext, waits for a legitimate
	// update, then restores the stale ciphertext.
	stale := c.Memory().ReadLine(0)
	if err := c.Write(0, 0, bytes.Repeat([]byte{9}, mem.LineSize)); err != nil {
		t.Fatal(err)
	}
	c.Memory().WriteLine(0, stale)
	if _, err := c.Read(0, 0); !errors.Is(err, ErrIntegrity) {
		t.Fatalf("replayed stale line read: %v, want integrity failure", err)
	}
}

func TestMetaZoneTamperDetected(t *testing.T) {
	c := testSetup(t)
	fill(c, 0, 3)
	if err := c.Enable(0, testKey, 0x11, 0); err != nil {
		t.Fatal(err)
	}
	if err := c.Write(0, 1, bytes.Repeat([]byte{7}, mem.LineSize)); err != nil {
		t.Fatal(err)
	}
	c.FlushMeta(0)
	// Attacker rewrites a counter in the meta-zone.
	meta := c.Memory().MetaRegion(0)
	meta[8]++ // first node's first local counter
	if err := c.LoadMeta(0); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Read(0, 0); !errors.Is(err, ErrIntegrity) {
		t.Fatalf("tampered meta read: %v, want integrity failure", err)
	}
}

func TestMetaZoneRoundTripVerifies(t *testing.T) {
	c := testSetup(t)
	fill(c, 0, 4)
	if err := c.Enable(0, testKey, 0x11, 0); err != nil {
		t.Fatal(err)
	}
	if err := c.Write(0, 2, bytes.Repeat([]byte{8}, mem.LineSize)); err != nil {
		t.Fatal(err)
	}
	c.FlushMeta(0)
	if err := c.LoadMeta(0); err != nil {
		t.Fatal(err)
	}
	for line := 0; line < c.Geometry().Lines(); line++ {
		if _, err := c.Read(0, line); err != nil {
			t.Fatalf("read after meta round trip, line %d: %v", line, err)
		}
	}
}

func TestExportInstallRoundTrip(t *testing.T) {
	// Local migration: export region 0, install into region 1 of the same
	// controller (the cross-node path goes through core/netsim).
	c := testSetup(t)
	fill(c, 0, 5)
	if err := c.Enable(0, testKey, 0x11, 0); err != nil {
		t.Fatal(err)
	}
	want0, err := c.Read(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	tb, data, macs, rootCtr, guaddr, err := c.Export(0)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Install(1, testKey, guaddr, rootCtr, tb, data, macs, ModeReadWrite); err != nil {
		t.Fatal(err)
	}
	got, err := c.Read(1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want0) {
		t.Fatal("installed region decrypts differently")
	}
	// The installed region is writable and stays consistent.
	if err := c.Write(1, 0, bytes.Repeat([]byte{1}, mem.LineSize)); err != nil {
		t.Fatal(err)
	}
}

func TestInstallRejectsTamperedData(t *testing.T) {
	c := testSetup(t)
	fill(c, 0, 5)
	if err := c.Enable(0, testKey, 0x11, 0); err != nil {
		t.Fatal(err)
	}
	tb, data, macs, rootCtr, guaddr, err := c.Export(0)
	if err != nil {
		t.Fatal(err)
	}
	mutate := func(f func(tb, data []byte, macs []uint64)) error {
		tb2 := append([]byte(nil), tb...)
		d2 := append([]byte(nil), data...)
		m2 := append([]uint64(nil), macs...)
		f(tb2, d2, m2)
		return c.Install(1, testKey, guaddr, rootCtr, tb2, d2, m2, ModeReadWrite)
	}
	if err := mutate(func(_, d []byte, _ []uint64) { d[0] ^= 1 }); !errors.Is(err, ErrIntegrity) {
		t.Errorf("tampered data accepted: %v", err)
	}
	if err := mutate(func(tb, _ []byte, _ []uint64) { tb[8]++ }); !errors.Is(err, ErrIntegrity) {
		t.Errorf("tampered tree accepted: %v", err)
	}
	if err := mutate(func(_, _ []byte, m []uint64) { m[0] ^= 1 }); !errors.Is(err, ErrIntegrity) {
		t.Errorf("tampered line MAC accepted: %v", err)
	}
	if err := c.Install(1, testKey, guaddr, rootCtr+1, tb, data, macs, ModeReadWrite); !errors.Is(err, ErrIntegrity) {
		t.Errorf("wrong root counter accepted: %v", err)
	}
	if err := c.Install(1, crypt.KeyFromBytes([]byte("wrong")), guaddr, rootCtr, tb, data, macs, ModeReadWrite); !errors.Is(err, ErrIntegrity) {
		t.Errorf("wrong key accepted: %v", err)
	}
	if err := c.Install(1, testKey, guaddr+1, rootCtr, tb, data, macs, ModeReadWrite); !errors.Is(err, ErrIntegrity) {
		t.Errorf("wrong address accepted: %v", err)
	}
}

func TestInstallRejectsMalformed(t *testing.T) {
	c := testSetup(t)
	fill(c, 0, 5)
	if err := c.Enable(0, testKey, 0x11, 0); err != nil {
		t.Fatal(err)
	}
	tb, data, macs, rootCtr, guaddr, err := c.Export(0)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Install(1, testKey, guaddr, rootCtr, tb, data[:10], macs, ModeReadWrite); err == nil {
		t.Error("short data accepted")
	}
	if err := c.Install(1, testKey, guaddr, rootCtr, tb[:4], data, macs, ModeReadWrite); err == nil {
		t.Error("short tree accepted")
	}
	if err := c.Install(1, testKey, guaddr, rootCtr, tb, data, macs[:1], ModeReadWrite); err == nil {
		t.Error("short MACs accepted")
	}
	if err := c.Install(1, testKey, guaddr, rootCtr, tb, data, macs, ModeDisabled); err == nil {
		t.Error("disabled install mode accepted")
	}
	if err := c.Enable(1, testKey, 0x99, 0); err != nil {
		t.Fatal(err)
	}
	if err := c.Install(1, testKey, guaddr, rootCtr, tb, data, macs, ModeReadWrite); !errors.Is(err, ErrBusy) {
		t.Errorf("install over live MMT: %v, want ErrBusy", err)
	}
}

func TestInvalidateLeavesCiphertext(t *testing.T) {
	c := testSetup(t)
	fill(c, 0, 6)
	plain := append([]byte(nil), c.Memory().RegionData(0)...)
	if err := c.Enable(0, testKey, 0x11, 0); err != nil {
		t.Fatal(err)
	}
	c.Invalidate(0)
	if c.Mode(0) != ModeDisabled {
		t.Fatal("mode not disabled after Invalidate")
	}
	if bytes.Equal(c.Memory().RegionData(0), plain) {
		t.Fatal("Invalidate should leave ciphertext, not plaintext")
	}
	if c.Memory().RegionKind(0) != mem.KindNormal {
		t.Fatal("region kind not normal after Invalidate")
	}
}

func TestReleaseRestoresPlaintext(t *testing.T) {
	c := testSetup(t)
	fill(c, 0, 6)
	plain := append([]byte(nil), c.Memory().RegionData(0)...)
	if err := c.Enable(0, testKey, 0x11, 0); err != nil {
		t.Fatal(err)
	}
	if err := c.Release(0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(c.Memory().RegionData(0), plain) {
		t.Fatal("Release did not restore plaintext")
	}
	if err := c.Release(0); !errors.Is(err, ErrDisabled) {
		t.Fatalf("double Release: %v", err)
	}
}

func TestCounterOverflowEndToEnd(t *testing.T) {
	// Small local counters force overflow; data must stay readable.
	geo := tree.Geometry{Arities: []int{2, 4}, LocalBits: 2}
	m := mem.New(mem.Config{Size: 2 * geo.DataSize(), RegionSize: geo.DataSize(), MetaPerRegion: geo.MetaSize()})
	c, err := New(m, geo, nil, sim.Gem5Profile())
	if err != nil {
		t.Fatal(err)
	}
	fill(c, 0, 7)
	want := append([]byte(nil), c.Memory().RegionData(0)...)
	if err := c.Enable(0, testKey, 0x22, 0); err != nil {
		t.Fatal(err)
	}
	// Hammer line 0 to wrap its local counter several times.
	for i := 0; i < 20; i++ {
		if err := c.Write(0, 0, want[:mem.LineSize]); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	if c.Stats().ReencryptedLines == 0 {
		t.Fatal("no overflow re-encryption happened; test is vacuous")
	}
	for line := 0; line < geo.Lines(); line++ {
		got, err := c.Read(0, line)
		if err != nil {
			t.Fatalf("read line %d after overflow: %v", line, err)
		}
		if !bytes.Equal(got, want[line*mem.LineSize:(line+1)*mem.LineSize]) {
			t.Fatalf("line %d corrupted after overflow", line)
		}
	}
}

func TestStatsAndCycleAccounting(t *testing.T) {
	c := testSetup(t)
	fill(c, 0, 8)
	if err := c.Enable(0, testKey, 0x11, 0); err != nil {
		t.Fatal(err)
	}
	c.ResetStats()
	before := c.Clock().Now()
	if _, err := c.Read(0, 0); err != nil {
		t.Fatal(err)
	}
	s := c.Stats()
	if s.Reads != 1 || s.DataAccesses != 1 {
		t.Fatalf("stats after one read: %+v", s)
	}
	if s.NodeMisses == 0 {
		t.Fatal("first read should miss the node cache")
	}
	if c.Clock().Now() <= before {
		t.Fatal("read did not advance the clock")
	}
	// Second read of the same line hits the cache and is cheaper.
	costFirst := s.Cycles
	if _, err := c.Read(0, 0); err != nil {
		t.Fatal(err)
	}
	s2 := c.Stats()
	if s2.NodeHits == 0 {
		t.Fatal("second read should hit the node cache")
	}
	if s2.Cycles-costFirst >= costFirst {
		t.Fatalf("cached read (%v cycles) not cheaper than cold read (%v)", s2.Cycles-costFirst, costFirst)
	}
}

func TestAccessTimingPath(t *testing.T) {
	c := testSetup(t)
	c.ResetStats()
	c.Access(0, 0, false)
	c.Access(0, 0, true)
	s := c.Stats()
	if s.Reads != 1 || s.Writes != 1 || s.DataAccesses != 2 {
		t.Fatalf("timing access stats: %+v", s)
	}
	base := c.Stats().Cycles
	c.AccessUnprotected()
	if got := c.Stats().Cycles - base; got != sim.Gem5Profile().DRAMAccess {
		t.Fatalf("unprotected access cost %v, want %v", got, sim.Gem5Profile().DRAMAccess)
	}
}

func TestModeString(t *testing.T) {
	if ModeDisabled.String() != "disabled" || ModeReadWrite.String() != "read-write" || ModeReadOnly.String() != "read-only" {
		t.Fatal("Mode strings wrong")
	}
	if Mode(9).String() == "" {
		t.Fatal("unknown mode should print")
	}
}

// testProfileWithRoots clones the Gem5 profile with a given SoC root-table
// size.
func testProfileWithRoots(t *testing.T, bytes int) *sim.Profile {
	t.Helper()
	p := sim.Gem5Profile()
	p.RootTableSoC = bytes
	return p
}

// controllerWith builds the small-geometry test controller over a profile.
func controllerWith(t *testing.T, prof *sim.Profile) *Controller {
	t.Helper()
	geo := tree.Geometry{Arities: []int{2, 3, 4}}
	m := mem.New(mem.Config{
		Size:          4 * geo.DataSize(),
		RegionSize:    geo.DataSize(),
		MetaPerRegion: geo.MetaSize(),
	})
	c, err := New(m, geo, nil, prof)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestRandomOpSequenceProperty drives random read/write sequences against
// a shadow model (a plain byte slice) and checks the protected memory
// always agrees — the engine's fundamental storage contract.
func TestRandomOpSequenceProperty(t *testing.T) {
	f := func(ops []uint16, seed byte) bool {
		geo := tree.Geometry{Arities: []int{2, 3, 4}, LocalBits: 3} // overflow often
		m := mem.New(mem.Config{Size: geo.DataSize(), RegionSize: geo.DataSize(), MetaPerRegion: geo.MetaSize()})
		c, err := New(m, geo, nil, sim.Gem5Profile())
		if err != nil {
			t.Fatal(err)
		}
		fill(c, 0, seed)
		shadow := append([]byte(nil), c.Memory().RegionData(0)...)
		if err := c.Enable(0, testKey, uint64(seed)+1, 0); err != nil {
			t.Fatal(err)
		}
		for _, op := range ops {
			line := int(op) % geo.Lines()
			if op&0x8000 != 0 { // write
				buf := bytes.Repeat([]byte{byte(op)}, mem.LineSize)
				if err := c.Write(0, line, buf); err != nil {
					return false
				}
				copy(shadow[line*mem.LineSize:], buf)
			} else { // read
				got, err := c.Read(0, line)
				if err != nil {
					return false
				}
				if !bytes.Equal(got, shadow[line*mem.LineSize:(line+1)*mem.LineSize]) {
					return false
				}
			}
		}
		// Full sweep at the end.
		for line := 0; line < geo.Lines(); line++ {
			got, err := c.Read(0, line)
			if err != nil || !bytes.Equal(got, shadow[line*mem.LineSize:(line+1)*mem.LineSize]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestExportInstallPreservesEveryLineProperty: migrating a randomly
// mutated region must preserve every line exactly.
func TestExportInstallPreservesEveryLineProperty(t *testing.T) {
	f := func(writes []uint8) bool {
		c := testSetup(t)
		fill(c, 0, 9)
		if err := c.Enable(0, testKey, 0x77, 0); err != nil {
			t.Fatal(err)
		}
		for _, w := range writes {
			line := int(w) % c.Geometry().Lines()
			if err := c.Write(0, line, bytes.Repeat([]byte{w}, mem.LineSize)); err != nil {
				return false
			}
		}
		var want [][]byte
		for line := 0; line < c.Geometry().Lines(); line++ {
			got, err := c.Read(0, line)
			if err != nil {
				return false
			}
			want = append(want, got)
		}
		tb, data, macs, rootCtr, guaddr, err := c.Export(0)
		if err != nil {
			return false
		}
		if err := c.Install(1, testKey, guaddr, rootCtr, tb, data, macs, ModeReadWrite); err != nil {
			return false
		}
		for line := 0; line < c.Geometry().Lines(); line++ {
			got, err := c.Read(1, line)
			if err != nil || !bytes.Equal(got, want[line]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}
