// Command mmt-perfdiff diffs two or more mmt-bench sidecars — the
// BENCH_fig*.json figure sidecars and the BENCH_wallclock.json host-speed
// sidecar — against configurable regression thresholds, producing a
// machine-readable mmt-perfdiff/v1 report. It is the perf-regression
// gate: CI regenerates the sidecars and diffs them against the committed
// baselines under testdata/baselines/, so the bench trajectory is
// recorded and a perf-affecting change announces itself.
//
// Usage:
//
//	mmt-perfdiff baseline.json candidate.json [candidate2.json ...]
//	mmt-perfdiff -threshold 0.10 base.json cand.json   # 10% gate
//	mmt-perfdiff -warn -out report.json base.json cand.json
//	mmt-perfdiff -update testdata/baselines new1.json new2.json ...
//
// -update is the baseline-refresh mode (`make baselines` drives it): each
// named sidecar is parsed and validated exactly like a diff input, then
// copied verbatim into the given directory under its base name. Promoting
// a sidecar to baseline goes through the same extractor that will later
// diff it, so a malformed file can never become the committed baseline.
//
// The first file is the baseline and defines the metric set: every
// lower-is-better number it carries (per-op ns/op, per-phase cycles,
// per-histogram p50/p99/mean quantiles, cycle/second totals) must be
// present in each candidate and must not exceed the baseline by more
// than the relative threshold.
//
// Exit status: 0 = no regressions (or -warn), 1 = at least one metric
// regressed beyond the threshold, 2 = schema or shape mismatch (always
// fatal, even under -warn: a mismatch means the baseline is stale, not
// that the code is slow).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
)

func main() {
	threshold := flag.Float64("threshold", 0.05, "relative regression threshold (0.05 = 5%)")
	warn := flag.Bool("warn", false, "report regressions but exit 0 (CI soft gate); schema mismatches stay fatal")
	out := flag.String("out", "", "write the mmt-perfdiff/v1 JSON report to this file")
	quiet := flag.Bool("quiet", false, "suppress the per-metric text summary")
	update := flag.String("update", "", "validate the named sidecars and install them as baselines in this directory")
	flag.Parse()

	if *update != "" {
		if flag.NArg() < 1 {
			fmt.Fprintln(os.Stderr, "usage: mmt-perfdiff -update <dir> sidecar.json ...")
			os.Exit(2)
		}
		if err := updateBaselines(*update, flag.Args(), *quiet); err != nil {
			fmt.Fprintln(os.Stderr, "mmt-perfdiff:", err)
			os.Exit(2)
		}
		return
	}

	if flag.NArg() < 2 {
		fmt.Fprintln(os.Stderr, "usage: mmt-perfdiff [-threshold 0.05] [-warn] [-out report.json] baseline.json candidate.json ...")
		os.Exit(2)
	}

	rep, err := run(*threshold, flag.Arg(0), flag.Args()[1:])
	if err != nil {
		fmt.Fprintln(os.Stderr, "mmt-perfdiff:", err)
		os.Exit(2)
	}
	if *out != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "mmt-perfdiff:", err)
			os.Exit(2)
		}
		if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "mmt-perfdiff:", err)
			os.Exit(2)
		}
	}
	if !*quiet {
		printSummary(rep)
	}
	if rep.Regressions > 0 && !*warn {
		os.Exit(1)
	}
}

// updateBaselines validates each sidecar through the diff extractor and
// copies it into dir under its base name.
func updateBaselines(dir string, paths []string, quiet bool) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, p := range paths {
		data, err := os.ReadFile(p)
		if err != nil {
			return err
		}
		doc, err := extract(data)
		if err != nil {
			return fmt.Errorf("%s: %w", p, err)
		}
		dst := filepath.Join(dir, filepath.Base(p))
		if err := os.WriteFile(dst, data, 0o644); err != nil {
			return err
		}
		if !quiet {
			fmt.Printf("baseline %s <- %s (%s, %d metrics)\n", dst, p, doc.Kind, len(doc.Metrics))
		}
	}
	return nil
}

// run loads the baseline and candidates and produces the report.
func run(threshold float64, basePath string, candPaths []string) (*Report, error) {
	base, err := load(basePath)
	if err != nil {
		return nil, err
	}
	cands := make([]*perfDoc, 0, len(candPaths))
	for _, p := range candPaths {
		c, err := load(p)
		if err != nil {
			return nil, err
		}
		cands = append(cands, c)
	}
	return diffDocs(threshold, basePath, base, candPaths, cands)
}

func load(path string) (*perfDoc, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	doc, err := extract(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return doc, nil
}

// printSummary renders the regressions (and improvements) as text; clean
// comparisons print one line each.
func printSummary(rep *Report) {
	for _, c := range rep.Comparisons {
		if c.Regressions == 0 && c.Improved == 0 {
			fmt.Printf("%s vs %s: %d metrics within %.1f%%\n",
				c.Candidate, rep.Baseline, len(c.Metrics), rep.Threshold*100)
			continue
		}
		fmt.Printf("%s vs %s: %d regressed, %d improved (threshold %.1f%%)\n",
			c.Candidate, rep.Baseline, c.Regressions, c.Improved, rep.Threshold*100)
		for _, m := range c.Metrics {
			if !m.Regressed && !m.Improved {
				continue
			}
			tag := "IMPROVED"
			if m.Regressed {
				tag = "REGRESSED"
			}
			fmt.Printf("  %-9s %-40s %14.3f -> %14.3f %s (%+.2f%%)\n",
				tag, m.Metric, m.Baseline, m.Candidate, m.Unit, m.DeltaRel*100)
		}
	}
}
