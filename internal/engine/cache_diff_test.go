package engine

import (
	"math/rand"
	"testing"
)

// TestCacheShardDifferential drives one shard's open-addressed table
// against a plain map through a long random set/remove/lookup schedule.
// Backward-shift deletion is the only subtle code in the table — a wrong
// move condition silently strands entries past a hole, which this
// differential catches immediately because every key is re-checked after
// every operation.
func TestCacheShardDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(0x5eed))
	s := &cacheShard{}
	model := map[uint64]int32{}
	// A small key universe forces heavy slot reuse and long probe chains.
	keys := make([]uint64, 64)
	for i := range keys {
		// Mix levels and indices, including adjacent values that collide
		// after multiplicative hashing is masked down to few bits.
		keys[i] = uint64(i%4)<<48 | uint64(rng.Intn(32))
	}
	for op := 0; op < 20000; op++ {
		k := keys[rng.Intn(len(keys))]
		switch rng.Intn(3) {
		case 0: // set (insert-if-absent, like touch's miss path)
			if _, ok := model[k]; !ok {
				v := int32(op)
				s.set(k, v)
				model[k] = v
			}
		case 1: // remove
			if _, ok := model[k]; ok {
				s.remove(k)
				delete(model, k)
			} else {
				s.remove(k) // removing an absent key must be a no-op
			}
		case 2: // lookup only
		}
		if s.used != len(model) {
			t.Fatalf("op %d: used=%d model=%d", op, s.used, len(model))
		}
		for _, k := range keys {
			got := s.lookup(k)
			want, ok := model[k]
			if !ok {
				want = nilIdx
			}
			if got != want {
				t.Fatalf("op %d: lookup(%#x)=%d want %d", op, k, got, want)
			}
		}
	}
	// Reset must empty the table but keep it usable.
	s.reset()
	for _, k := range keys {
		if s.lookup(k) != nilIdx {
			t.Fatalf("lookup(%#x) after reset", k)
		}
	}
	s.set(keys[0], 7)
	if s.lookup(keys[0]) != 7 {
		t.Fatal("set after reset")
	}
}

// TestCacheLRUDifferential drives the full nodeCache against a naive
// model (map + recency slice) through a random touch/invalidate schedule
// across several regions, checking that every hit/miss verdict matches.
// The cycle-domain sidecars derive from exactly this hit/miss sequence,
// so the model equivalence here is what keeps them byte-identical.
func TestCacheLRUDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	c := newNodeCache(1024)
	type entry struct {
		key  nodeKey
		size int
	}
	var order []entry // order[0] is LRU, last is MRU
	find := func(k nodeKey) int {
		for i := range order {
			if order[i].key == k {
				return i
			}
		}
		return -1
	}
	usedBytes := func() int {
		n := 0
		for _, e := range order {
			n += e.size
		}
		return n
	}
	for op := 0; op < 30000; op++ {
		if rng.Intn(50) == 0 {
			region := rng.Intn(4)
			c.invalidateRegion(region)
			kept := order[:0]
			for _, e := range order {
				if e.key.region != region {
					kept = append(kept, e)
				}
			}
			order = kept
			continue
		}
		k := nodeKey{region: rng.Intn(4), level: rng.Intn(3), index: rng.Intn(8)}
		size := 16 + 16*rng.Intn(3)
		gotHit := c.touch(k, size)
		i := find(k)
		wantHit := i >= 0
		if gotHit != wantHit {
			t.Fatalf("op %d: touch(%v) hit=%v want %v", op, k, gotHit, wantHit)
		}
		if wantHit {
			e := order[i]
			order = append(append(order[:i:i], order[i+1:]...), e)
		} else {
			for usedBytes()+size > 1024 && len(order) > 0 {
				order = order[1:]
			}
			order = append(order, entry{key: k, size: size})
		}
		if c.len() != len(order) || c.usedBytes() != usedBytes() {
			t.Fatalf("op %d: len/bytes %d/%d want %d/%d", op, c.len(), c.usedBytes(), len(order), usedBytes())
		}
	}
}
