package gf

import (
	"encoding/json"
	"os"
	"strconv"
	"testing"
	"testing/quick"
)

// gf_kat_test.go is the differential harness for the table-driven fast
// path: every exported operation is checked against the retained bit-loop
// oracle (oracle.go), both on fuzz-style random inputs and on the pinned
// vectors in testdata/gf_kat.json. The KAT file was generated from the
// oracle before the table rewrite landed, so a bug in red4/red8 table
// construction (which init derives from the oracle in-process, and so
// could mask an oracle regression) cannot silently change MAC values.

type mulKAT struct {
	A, B, Want string
}

type evalKAT struct {
	Coeffs []string
	X      string
	Want   string
}

type katFile struct {
	Mul  []mulKAT
	Eval []evalKAT
}

func parseHex64(t *testing.T, s string) uint64 {
	t.Helper()
	v, err := strconv.ParseUint(s, 16, 64)
	if err != nil {
		t.Fatalf("bad KAT hex %q: %v", s, err)
	}
	return v
}

func loadKAT(t *testing.T) *katFile {
	t.Helper()
	raw, err := os.ReadFile("testdata/gf_kat.json")
	if err != nil {
		t.Fatalf("read KAT file: %v", err)
	}
	var k katFile
	if err := json.Unmarshal(raw, &k); err != nil {
		t.Fatalf("parse KAT file: %v", err)
	}
	if len(k.Mul) == 0 || len(k.Eval) == 0 {
		t.Fatal("KAT file has no vectors")
	}
	return &k
}

func TestMulKAT(t *testing.T) {
	for i, v := range loadKAT(t).Mul {
		a, b, want := parseHex64(t, v.A), parseHex64(t, v.B), parseHex64(t, v.Want)
		if got := Mul(a, b); got != want {
			t.Errorf("Mul KAT %d: Mul(%#x, %#x) = %#x, want %#x", i, a, b, got, want)
		}
		if got := mulSlow(a, b); got != want {
			t.Errorf("oracle drifted from KAT %d: mulSlow(%#x, %#x) = %#x, want %#x", i, a, b, got, want)
		}
	}
}

func TestEvalKAT(t *testing.T) {
	for i, v := range loadKAT(t).Eval {
		coeffs := make([]uint64, len(v.Coeffs))
		for j, c := range v.Coeffs {
			coeffs[j] = parseHex64(t, c)
		}
		x, want := parseHex64(t, v.X), parseHex64(t, v.Want)
		if got := Eval(coeffs, x); got != want {
			t.Errorf("Eval KAT %d (len %d): got %#x, want %#x", i, len(coeffs), got, want)
		}
		if got := evalSlow(coeffs, x); got != want {
			t.Errorf("oracle drifted from Eval KAT %d: got %#x, want %#x", i, got, want)
		}
		m := NewMulx(x)
		if got := m.Eval(coeffs); got != want {
			t.Errorf("Mulx.Eval KAT %d (len %d): got %#x, want %#x", i, len(coeffs), got, want)
		}
	}
}

func TestMulMatchesOracle(t *testing.T) {
	f := func(a, b uint64) bool { return Mul(a, b) == mulSlow(a, b) }
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
	// Sparse/dense edge cases the generator rarely hits.
	edges := []uint64{0, 1, 2, reduction, 1 << 63, ^uint64(0), 0x8000000000000001}
	for _, a := range edges {
		for _, b := range edges {
			if Mul(a, b) != mulSlow(a, b) {
				t.Fatalf("Mul(%#x, %#x) disagrees with oracle", a, b)
			}
		}
	}
}

func TestDotMatchesOracle(t *testing.T) {
	f := func(a, b []uint64) bool {
		n := len(a)
		if len(b) < n {
			n = len(b)
		}
		var want uint64
		for i := 0; i < n; i++ {
			want ^= mulSlow(a[i], b[i])
		}
		return Dot(a, b) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestEvalMatchesOracle(t *testing.T) {
	f := func(coeffs []uint64, x uint64) bool { return Eval(coeffs, x) == evalSlow(coeffs, x) }
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
	// Exercise both sides of the window/table crossover at every length.
	seed := uint64(0x5DEECE66D)
	coeffs := make([]uint64, 0, 2*evalTableMin)
	for len(coeffs) < cap(coeffs) {
		seed = seed*6364136223846793005 + 1442695040888963407
		coeffs = append(coeffs, seed)
		x := seed ^ 0xA5A5A5A5A5A5A5A5
		if Eval(coeffs, x) != evalSlow(coeffs, x) {
			t.Fatalf("Eval disagrees with oracle at len %d", len(coeffs))
		}
	}
}

func TestReductionTablesMatchOracle(t *testing.T) {
	// red4/red8 entries are definitionally reduceSlow(o, 0); re-derive via
	// mulSlow to cross-check through an independent oracle path:
	// o·x^64 = (o<<60)·x^4 ... except o<<60 overflows, so use
	// (o<<32)·(1<<32) which stays in range for o < 2^8.
	for o := uint64(0); o < 256; o++ {
		want := mulSlow(o<<32, 1<<32)
		if o < 16 && red4[o] != want {
			t.Fatalf("red4[%d] = %#x, want %#x", o, red4[o], want)
		}
		if red8[o] != want {
			t.Fatalf("red8[%d] = %#x, want %#x", o, red8[o], want)
		}
	}
}

func TestMulxTablesMatchOracle(t *testing.T) {
	// The doubling-chain construction must reproduce the naive per-entry
	// definition tbl[i][b] = (b << 8i) · x for a couple of points.
	for _, x := range []uint64{0x9E3779B97F4A7C15, 1, ^uint64(0)} {
		m := NewMulx(x)
		for i := 0; i < 8; i++ {
			for b := 0; b < 256; b++ {
				want := mulSlow(uint64(b)<<(8*i), x)
				if m.tbl[i][b] != want {
					t.Fatalf("NewMulx(%#x).tbl[%d][%d] = %#x, want %#x", x, i, b, m.tbl[i][b], want)
				}
			}
		}
	}
}

func TestEvalBatchMatchesEval(t *testing.T) {
	x := uint64(0xC3A5C85C97CB3127)
	m := NewMulx(x)
	f := func(polys [][]uint64) bool {
		out := make([]uint64, len(polys))
		m.EvalBatch(polys, out)
		for j, p := range polys {
			if out[j] != evalSlow(p, x) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkMulOracle(b *testing.B) {
	x, y := uint64(0xDEADBEEFCAFEBABE), uint64(0x0123456789ABCDEF)
	for i := 0; i < b.N; i++ {
		x = mulSlow(x, y)
	}
	sink = x
}

func BenchmarkEval(b *testing.B) {
	coeffs := make([]uint64, 9) // line-MAC polynomial length
	for i := range coeffs {
		coeffs[i] = uint64(i) * 0x9E3779B97F4A7C15
	}
	x := uint64(0xC3A5C85C97CB3127)
	var acc uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		acc ^= Eval(coeffs, x)
	}
	sink = acc
}

func BenchmarkNewMulx(b *testing.B) {
	var m *Mulx
	for i := 0; i < b.N; i++ {
		m = NewMulx(uint64(i) | 1)
	}
	sink = m.tbl[7][255]
}
