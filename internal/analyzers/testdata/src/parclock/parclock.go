// Package parclock exercises the parclock analyzer: work units passed to
// par.Map/par.ForEach must own every sim.Clock they touch.
package parclock

import (
	"mmt/internal/par"
	"mmt/internal/sim"
)

// captured advances a clock shared by every work unit — flagged at each
// use, because simulated time would depend on goroutine interleaving.
func captured(clock *sim.Clock, items []int) ([]sim.Time, error) {
	return par.Map(4, items, func(_ int, it int) (sim.Time, error) {
		clock.Advance(sim.Time(it)) // want "captures sim\.Clock"
		return clock.Now(), nil     // want "captures sim\.Clock"
	})
}

// capturedValue shows the value-type (non-pointer) case through ForEach.
func capturedValue(items []int) error {
	var shared sim.Clock
	return par.ForEach(2, items, func(_ int, it int) error {
		shared.AdvanceCycles(sim.Cycles(it)) // want "captures sim\.Clock"
		return nil
	})
}

// owned is the sanctioned shape: each work unit builds its own clock, so
// the analyzer stays silent.
func owned(items []int) ([]sim.Time, error) {
	return par.Map(0, items, func(_ int, it int) (sim.Time, error) {
		clock := sim.NewClock(0)
		clock.Advance(sim.Time(it))
		return clock.Now(), nil
	})
}

// field selectors on locally built state are fine: cfg is owned by the
// work unit, and cfg.Clock's field identifier must not be mistaken for a
// captured variable.
type unit struct {
	Clock *sim.Clock
}

func ownedField(items []int) ([]sim.Time, error) {
	return par.Map(0, items, func(_ int, it int) (sim.Time, error) {
		cfg := unit{Clock: sim.NewClock(0)}
		cfg.Clock.Advance(sim.Time(it))
		return cfg.Clock.Now(), nil
	})
}

// serialReadOnly reads a clock outside any par call — no finding: the
// contract binds work-unit literals only.
func serialReadOnly(clock *sim.Clock, items []int) []sim.Time {
	out := make([]sim.Time, 0, len(items))
	for range items {
		out = append(out, clock.Now())
	}
	return out
}

// suppressed demonstrates a justified exception.
func suppressed(clock *sim.Clock, items []int) error {
	return par.ForEach(1, items, func(_ int, it int) error {
		clock.Advance(sim.Time(it)) //mmt:allow parclock: workers pinned to 1 in this code path
		return nil
	})
}
