// Package workload generates the deterministic synthetic inputs that stand
// in for the paper's proprietary workloads: SPEC CPU memory traces for the
// Figure 11 overhead study, Zipf text corpora for the MapReduce WordCount
// experiments (Figures 12-13), and power-law graphs for the PageRank/GAS
// experiment (Figure 14).
//
// SPEC binaries cannot ship with this repository, so each benchmark is
// modeled by its memory behaviour: footprint, temporal locality, write
// fraction and memory intensity. Those four parameters are what determine
// the MMT controller's tree-node cache behaviour, which is all Figure 11
// measures. The parameter sets below span the same spectrum the SPEC suite
// does, from cache-friendly (perlbench-like) to streaming (lbm-like) and
// pointer-chasing (mcf-like); DESIGN.md records this substitution.
package workload

import (
	"math/rand"
)

// TraceConfig parameterises one benchmark-like memory trace.
type TraceConfig struct {
	Name string
	// FootprintLines is the working set in 64-byte lines.
	FootprintLines int
	// HotFrac is the fraction of the footprint forming the hot set.
	HotFrac float64
	// Locality is the probability an access lands in the hot set.
	Locality float64
	// WriteFrac is the store fraction.
	WriteFrac float64
	// ComputeCyclesPerAccess models memory intensity: average CPU cycles
	// of pure compute between memory accesses (lower = more memory bound,
	// hence more sensitive to protection overhead).
	ComputeCyclesPerAccess float64
}

// SPECTraces returns the benchmark models used for Figure 11, ordered as
// plotted. Footprints are paper scale (up to ~1.5 GB of secure heap in
// 64-byte lines) so that the upper tree levels contend for the 32 KB MMT
// node cache exactly as they would on the 2 GB Gem5 configuration; the
// trace substrate is timing-only, so no real memory backs them.
//
// The traces model post-LLC behaviour: each access is a DRAM access, and
// ComputeCyclesPerAccess is the CPU work (including cache hits) between
// two DRAM accesses, taken from the usual memory-intensity ordering of the
// suite (mcf/lbm/libquantum memory-bound; perlbench/sjeng/gobmk
// compute-bound).
func SPECTraces() []TraceConfig {
	return []TraceConfig{
		{Name: "perlbench", FootprintLines: 512 << 10, HotFrac: 0.002, Locality: 0.97, WriteFrac: 0.30, ComputeCyclesPerAccess: 3860},
		{Name: "bzip2", FootprintLines: 2 << 20, HotFrac: 0.004, Locality: 0.92, WriteFrac: 0.35, ComputeCyclesPerAccess: 1659},
		{Name: "gcc", FootprintLines: 3 << 20, HotFrac: 0.003, Locality: 0.88, WriteFrac: 0.30, ComputeCyclesPerAccess: 960},
		{Name: "mcf", FootprintLines: 16 << 20, HotFrac: 0.001, Locality: 0.35, WriteFrac: 0.25, ComputeCyclesPerAccess: 576},
		{Name: "milc", FootprintLines: 12 << 20, HotFrac: 0.002, Locality: 0.50, WriteFrac: 0.40, ComputeCyclesPerAccess: 736},
		{Name: "gobmk", FootprintLines: 1 << 20, HotFrac: 0.004, Locality: 0.93, WriteFrac: 0.25, ComputeCyclesPerAccess: 2085},
		{Name: "sjeng", FootprintLines: 1536 << 10, HotFrac: 0.003, Locality: 0.90, WriteFrac: 0.20, ComputeCyclesPerAccess: 3066},
		{Name: "libquantum", FootprintLines: 8 << 20, HotFrac: 0.001, Locality: 0.20, WriteFrac: 0.50, ComputeCyclesPerAccess: 745},
		{Name: "omnetpp", FootprintLines: 6 << 20, HotFrac: 0.002, Locality: 0.60, WriteFrac: 0.35, ComputeCyclesPerAccess: 796},
		{Name: "xalancbmk", FootprintLines: 4 << 20, HotFrac: 0.002, Locality: 0.75, WriteFrac: 0.30, ComputeCyclesPerAccess: 922},
		{Name: "lbm", FootprintLines: 24 << 20, HotFrac: 0.001, Locality: 0.10, WriteFrac: 0.55, ComputeCyclesPerAccess: 691},
		{Name: "astar", FootprintLines: 5 << 20, HotFrac: 0.002, Locality: 0.70, WriteFrac: 0.30, ComputeCyclesPerAccess: 987},
	}
}

// Trace is a deterministic access-stream generator.
type Trace struct {
	cfg TraceConfig
	rng *rand.Rand
	hot int // hot-set size in lines
}

// NewTrace builds a generator for cfg with a fixed seed.
func NewTrace(cfg TraceConfig, seed int64) *Trace {
	hot := int(float64(cfg.FootprintLines) * cfg.HotFrac)
	if hot < 1 {
		hot = 1
	}
	return &Trace{cfg: cfg, rng: rand.New(rand.NewSource(seed)), hot: hot}
}

// Config reports the trace's parameters.
func (t *Trace) Config() TraceConfig { return t.cfg }

// Next returns the next access: a line index within the footprint and
// whether it is a store.
func (t *Trace) Next() (line int, write bool) {
	if t.rng.Float64() < t.cfg.Locality {
		line = t.rng.Intn(t.hot)
	} else {
		line = t.rng.Intn(t.cfg.FootprintLines)
	}
	return line, t.rng.Float64() < t.cfg.WriteFrac
}

// vocabulary for corpus generation; ranks follow a Zipf law like natural
// text, which gives WordCount a realistically skewed reduce phase.
var vocabulary = []string{
	"the", "of", "and", "to", "in", "a", "is", "that", "for", "it",
	"as", "was", "with", "be", "by", "on", "not", "he", "i", "this",
	"are", "or", "his", "from", "at", "which", "but", "have", "an", "had",
	"they", "you", "were", "their", "one", "all", "we", "can", "her", "has",
	"there", "been", "if", "more", "when", "will", "would", "who", "so", "no",
	"memory", "secure", "tree", "node", "enclave", "counter", "cache", "root",
	"integrity", "network", "transfer", "remote", "closure", "forest", "key",
}

// Corpus generates approximately targetBytes of Zipf-distributed text.
func Corpus(seed int64, targetBytes int) []byte {
	rng := rand.New(rand.NewSource(seed))
	zipf := rand.NewZipf(rng, 1.3, 1.0, uint64(len(vocabulary)-1))
	out := make([]byte, 0, targetBytes+16)
	for len(out) < targetBytes {
		out = append(out, vocabulary[zipf.Uint64()]...)
		out = append(out, ' ')
	}
	return out[:targetBytes]
}

// Graph is an unweighted directed graph in edge-list form.
type Graph struct {
	N     int
	Edges [][2]int32
}

// RandomGraph builds a graph with Zipf-distributed edge lengths: most
// edges land near their source (community locality), a heavy tail reaches
// far away. Real partitioned graphs look like this, and it is what gives
// the paper's regime of ~100k vertices with only ~60k cross-machine edges
// under a blocked partition.
func RandomGraph(seed int64, n, avgDeg int) *Graph {
	rng := rand.New(rand.NewSource(seed))
	zipf := rand.NewZipf(rng, 1.2, 8, uint64(n-2))
	g := &Graph{N: n, Edges: make([][2]int32, 0, n*avgDeg)}
	for v := 0; v < n; v++ {
		deg := 1 + rng.Intn(2*avgDeg-1) // mean avgDeg
		for e := 0; e < deg; e++ {
			offset := int(zipf.Uint64()) + 1
			if rng.Intn(2) == 0 {
				offset = -offset
			}
			u := ((v+offset)%n + n) % n
			if u == v {
				continue
			}
			g.Edges = append(g.Edges, [2]int32{int32(v), int32(u)})
		}
	}
	return g
}

// Partition assigns contiguous vertex blocks to machines (the locality-
// preserving layout distributed graph engines use) and reports the
// cross-machine edge count — the traffic the remote-transfer phase of
// Figure 14 must carry.
func (g *Graph) Partition(machines int) (owner []int, crossEdges int) {
	owner = make([]int, g.N)
	per := (g.N + machines - 1) / machines
	for v := range owner {
		owner[v] = v / per
	}
	for _, e := range g.Edges {
		if owner[e[0]] != owner[e[1]] {
			crossEdges++
		}
	}
	return owner, crossEdges
}
