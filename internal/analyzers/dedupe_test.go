package analyzers

import (
	"go/token"
	"testing"
)

// TestDedupeFindings: two analyzers wording the same defect identically
// at one position collapse to a single finding; distinct messages at the
// same position survive.
func TestDedupeFindings(t *testing.T) {
	at := func(analyzer, msg string, line int) Finding {
		return Finding{
			Analyzer: analyzer,
			Pos:      token.Position{Filename: "x.go", Line: line, Column: 4},
			Message:  msg,
		}
	}
	fs := []Finding{
		at("noalloc", "make allocates", 7),
		at("other", "make allocates", 7),
		at("noalloc", "append may grow and allocate", 7),
		at("noalloc", "make allocates", 9),
	}
	sortFindings(fs)
	out := dedupeFindings(fs)
	if len(out) != 3 {
		t.Fatalf("got %d findings after dedupe, want 3: %v", len(out), out)
	}
	for i := 1; i < len(out); i++ {
		if out[i-1].Pos.Line > out[i].Pos.Line {
			t.Errorf("dedupe broke position order: %v", out)
		}
	}
}
