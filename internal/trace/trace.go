// Package trace is the MMT stack's observability layer: span-style
// events and monotonic counters, all stamped from the simulated clocks
// (sim.Time), never from the host. It exists to reproduce the paper's
// evaluation *breakdowns* — which cycles go to MAC verification, tree
// walks, DMA serialization, closure encode/decode (Figs. 10-14,
// Tables IV-V) — instead of only final numbers.
//
// Design rules, in priority order:
//
//   - Off by default and allocation-free when disabled. Every component
//     holds a *Probe; a nil Probe is the disabled state and all methods
//     are nil-safe no-ops, so the hot path pays one predictable branch.
//   - Deterministic. Two identical runs produce byte-identical exports:
//     no wall-clock time, no map iteration in any export path, stable
//     float formatting.
//   - Zero dependencies beyond internal/sim.
//
// A Sink aggregates per-process (per-machine) metrics and an event list.
// Components obtain a Probe with Sink.Probe(name) and then:
//
//	probe.Count(trace.CtrNodeCacheMisses, 1)      // monotonic counter
//	probe.AddCycles(trace.PhaseMAC, cost)         // per-phase cycle total
//	sp := probe.Begin(trace.PhaseSend, clk.Now()) // span start
//	...
//	sp.End(clk.Now())                             // span end
//
// Beyond phases and counters, a Sink also aggregates per-operation
// cycle-latency histograms (hist.go) and a bounded security-event ledger
// (ledger.go), recorded through the same nil-safe probes.
//
// Concurrency: simulated nodes are single-threaded (as in the paper's
// Gem5 model), but a Sink may be *observed* — Snapshot, Events,
// SecEvents, the exporters — from other goroutines while a run is in
// flight (the /debug endpoint does exactly that), and the parallel
// runner merges worker sinks into a shared root. All mutating and
// reading entry points therefore take an internal mutex; a nil probe
// still short-circuits before the lock, so the disabled hot path stays
// a single branch with zero allocations.
package trace

import (
	"fmt"
	"sync"

	"mmt/internal/sim"
)

// Phase labels one cost category. Phases serve double duty: cycle
// accumulators (AddCycles) break an experiment's total into the paper's
// breakdown rows, and spans (Begin/End) carry the same labels into the
// Chrome-trace timeline.
type Phase uint8

const (
	// PhaseData: DRAM data-line access plus the OTP XOR (engine).
	PhaseData Phase = iota
	// PhaseRootMount: loading and verifying a root counter into the SoC
	// root table (engine).
	PhaseRootMount
	// PhaseTreeWalk: tree-node queue occupancy and node fetches on the
	// access path (engine).
	PhaseTreeWalk
	// PhaseMAC: MAC latencies for node verification and update (engine).
	PhaseMAC
	// PhaseTreeUpdate: write-path per-level counter bump and MAC
	// recomputation charges (engine).
	PhaseTreeUpdate
	// PhaseReencrypt: counter-overflow sibling re-encryption (engine).
	PhaseReencrypt
	// PhaseMemcpy: copies across the enclave boundary (secure channel).
	PhaseMemcpy
	// PhaseEncrypt: software AEAD encryption (secure channel).
	PhaseEncrypt
	// PhaseDecrypt: software AEAD decryption (secure channel).
	PhaseDecrypt
	// PhaseDMA: NIC/DMA serialization of outbound bytes (all channels).
	PhaseDMA
	// PhaseDelegation: MMT closure fixed costs — seal, unseal, ack.
	PhaseDelegation
	// PhaseConnect: monitor connection handshake (span only).
	PhaseConnect
	// PhaseSend: one outbound transfer operation (span only).
	PhaseSend
	// PhaseRecv: one inbound accept operation (span only).
	PhaseRecv
	// PhaseApp: application compute (map/reduce/vertex work).
	PhaseApp
	// PhaseWire: one message's flight time on the untrusted interconnect
	// (causal span only, recorded by the receiving endpoint; carries no
	// cycles — propagation delay is wait, not work).
	PhaseWire

	// NumPhases bounds the Phase enum; keep it last.
	NumPhases
)

var phaseNames = [NumPhases]string{
	PhaseData:       "data-access",
	PhaseRootMount:  "root-mount",
	PhaseTreeWalk:   "tree-walk",
	PhaseMAC:        "mac",
	PhaseTreeUpdate: "tree-update",
	PhaseReencrypt:  "reencrypt",
	PhaseMemcpy:     "memcpy",
	PhaseEncrypt:    "encrypt",
	PhaseDecrypt:    "decrypt",
	PhaseDMA:        "dma",
	PhaseDelegation: "delegation",
	PhaseConnect:    "connect",
	PhaseSend:       "send",
	PhaseRecv:       "recv",
	PhaseApp:        "app-compute",
	PhaseWire:       "wire",
}

func (p Phase) String() string {
	if int(p) < len(phaseNames) {
		return phaseNames[p]
	}
	return fmt.Sprintf("Phase(%d)", uint8(p))
}

// Counter labels one monotonic count.
type Counter uint8

const (
	// CtrTreeNodeWalks: tree-node lookups on the controller access path
	// (one per level per access).
	CtrTreeNodeWalks Counter = iota
	// CtrMACVerifies: cost-model MAC checks (node-cache misses, root
	// mounts excluded).
	CtrMACVerifies
	// CtrMACUpdates: write-path MAC recomputations.
	CtrMACUpdates
	// CtrNodeCacheHits / CtrNodeCacheMisses: on-chip MMT cache outcomes.
	CtrNodeCacheHits
	CtrNodeCacheMisses
	// CtrRootMounts: Penglai-style root loads into the SoC root table.
	CtrRootMounts
	// CtrReencryptLines: sibling lines re-encrypted on counter overflow.
	CtrReencryptLines
	// CtrTreeNodeVerifies: functional node-MAC verifications in the tree
	// (unlike CtrMACVerifies these ignore the cost model's cache).
	CtrTreeNodeVerifies
	// CtrTreeNodeVerifyFails: functional node-MAC verifications that
	// failed — direct tamper evidence, rendered by mmt-attack.
	CtrTreeNodeVerifyFails
	// CtrTreeNodeRehashes: functional node-MAC recomputations.
	CtrTreeNodeRehashes
	// CtrClosuresSent / Accepted / Rejected: delegation outcomes.
	CtrClosuresSent
	CtrClosuresAccepted
	CtrClosuresRejected
	// CtrClosureEncodeBytes / DecodeBytes: encoded closure sizes.
	CtrClosureEncodeBytes
	CtrClosureDecodeBytes
	// CtrWireMsgs* / CtrWireBytes*: interconnect traffic per
	// netsim.Kind, counted at the sender — exactly what a wire
	// adversary observes.
	CtrWireMsgsData
	CtrWireMsgsClosure
	CtrWireMsgsControl
	CtrWireBytesData
	CtrWireBytesClosure
	CtrWireBytesControl

	// NumCounters bounds the Counter enum; keep it last.
	NumCounters
)

var counterNames = [NumCounters]string{
	CtrTreeNodeWalks:       "tree-node-walks",
	CtrMACVerifies:         "mac-verifies",
	CtrMACUpdates:          "mac-updates",
	CtrNodeCacheHits:       "node-cache-hits",
	CtrNodeCacheMisses:     "node-cache-misses",
	CtrRootMounts:          "root-mounts",
	CtrReencryptLines:      "reencrypt-lines",
	CtrTreeNodeVerifies:    "tree-node-verifies",
	CtrTreeNodeVerifyFails: "tree-node-verify-fails",
	CtrTreeNodeRehashes:    "tree-node-rehashes",
	CtrClosuresSent:        "closures-sent",
	CtrClosuresAccepted:    "closures-accepted",
	CtrClosuresRejected:    "closures-rejected",
	CtrClosureEncodeBytes:  "closure-encode-bytes",
	CtrClosureDecodeBytes:  "closure-decode-bytes",
	CtrWireMsgsData:        "wire-msgs-data",
	CtrWireMsgsClosure:     "wire-msgs-closure",
	CtrWireMsgsControl:     "wire-msgs-control",
	CtrWireBytesData:       "wire-bytes-data",
	CtrWireBytesClosure:    "wire-bytes-closure",
	CtrWireBytesControl:    "wire-bytes-control",
}

func (c Counter) String() string {
	if int(c) < len(counterNames) {
		return counterNames[c]
	}
	return fmt.Sprintf("Counter(%d)", uint8(c))
}

// Event is one completed span on the simulated timeline. The causal
// fields are optional: a zero Trace marks a plain (unlinked) span; a
// valid Trace links the span into that trace's tree (see causal.go).
type Event struct {
	Proc  string
	Phase Phase
	Begin sim.Time
	End   sim.Time
	// Trace/Span/Parent are the causal link: which trace this span
	// belongs to, its 1-based span ID within that trace, and its parent
	// span's ID (0 = this span is the trace root).
	Trace  TraceID
	Span   uint32
	Parent uint32
	// Cycles is the span's own attributed cost (children excluded).
	Cycles sim.Cycles
}

// procMetrics is one process's (machine's) accumulators.
type procMetrics struct {
	name     string
	counters [NumCounters]uint64
	cycles   [NumPhases]sim.Cycles
	ops      [NumOps]Histogram
	// causalSeq is the process's monotonic trace-ID counter (causal.go).
	causalSeq uint64
	// series is the windowed sampler state, allocated lazily on the
	// first clock window tick (series.go); nil when sampling is off or
	// the process's clock has not crossed a window yet.
	series *procSeries
	// flight is the flight-recorder ring of recent spans (series.go).
	flight     []FlightSpan
	flightHead int
}

// Sink aggregates trace data for one cluster or testbed. The zero value
// is not usable; construct with NewSink. A nil *Sink is valid and means
// tracing is disabled everywhere it is handed out.
type Sink struct {
	mu     sync.Mutex
	procs  []*procMetrics // registration order; exports sort by name
	byName map[string]*procMetrics
	events []Event
	ledger secLedger
	// spanSeq allocates per-trace span IDs (1-based, parents before
	// children — see causal.go).
	spanSeq map[TraceID]uint32
	// seriesOn/seriesCfg configure the windowed sampler (series.go).
	seriesOn  bool
	seriesCfg SeriesConfig
	// flightCap bounds the per-process flight rings; 0 means
	// DefaultFlightCap.
	flightCap int
}

// NewSink returns an empty sink.
func NewSink() *Sink {
	return &Sink{byName: make(map[string]*procMetrics)}
}

// Probe returns the named process's probe, creating the process record
// on first use. On a nil sink it returns nil — the disabled probe.
func (s *Sink) Probe(name string) *Probe {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	p, ok := s.byName[name]
	if !ok {
		p = &procMetrics{name: name}
		s.byName[name] = p
		s.procs = append(s.procs, p)
	}
	return &Probe{sink: s, proc: p}
}

// Reset zeroes all counters, cycle accumulators and events, keeping the
// registered processes (and any probes already handed out) valid.
func (s *Sink) Reset() {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, p := range s.procs {
		p.counters = [NumCounters]uint64{}
		p.cycles = [NumPhases]sim.Cycles{}
		p.ops = [NumOps]Histogram{}
		p.causalSeq = 0
		p.series = nil
		p.flight = nil
		p.flightHead = 0
	}
	s.events = nil
	s.ledger.reset()
	s.spanSeq = nil
}

// Merge folds src's accumulators, events and ledger into s: counters,
// cycle totals and histograms add per process (new processes append in
// src registration order), span events and security events append in src
// record order (ledger sequence numbers are reassigned to s's sequence).
// It is the reduction step of the deterministic parallel runner
// (internal/par): work units record into private sinks and the caller
// merges them serially in input order, which reproduces the serial run's
// registration order, float addition order and event order exactly.
// Nil-safe on either side; src must not be concurrently mutated.
func (s *Sink) Merge(src *Sink) {
	if s == nil || src == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	// s and src are distinct instances by contract: src is a worker's
	// private sink being folded into the shared one, and merges run
	// serially on the coordinating goroutine (see internal/par).
	//mmt:allow lockorder: distinct Sink instances, serial merge protocol
	src.mu.Lock()
	defer src.mu.Unlock()
	// Causal trace IDs are per-process sequences, so folding a worker's
	// sink in re-bases its trace sequence numbers onto the destination's
	// counters: worker trace (proc, k) becomes (proc, base+k) where base
	// is the destination's counter before the merge. Merging workers
	// serially in input order therefore reproduces exactly the IDs a
	// serial run would have minted. Traces must be complete within one
	// work unit (the mmt-vet tracectx rule) for this to be sound.
	base := make(map[string]uint64, len(src.procs))
	for _, sp := range src.procs {
		dst, ok := s.byName[sp.name]
		if !ok {
			dst = &procMetrics{name: sp.name}
			s.byName[sp.name] = dst
			s.procs = append(s.procs, dst)
		}
		for c := range sp.counters {
			dst.counters[c] += sp.counters[c]
		}
		for ph := range sp.cycles {
			dst.cycles[ph] += sp.cycles[ph]
		}
		for op := range sp.ops {
			dst.ops[op].MergeFrom(&sp.ops[op])
		}
		base[sp.name] = dst.causalSeq
		dst.causalSeq += sp.causalSeq
		s.mergeSeriesLocked(dst, sp)
		for _, fs := range sp.flightSnapshot() {
			dst.recordFlight(fs, s.flightCap)
		}
	}
	for _, ev := range src.events {
		if ev.Trace.Valid() {
			ev.Trace.Seq += base[ev.Trace.Proc]
		}
		s.events = append(s.events, ev)
	}
	if len(src.spanSeq) > 0 && s.spanSeq == nil {
		s.spanSeq = make(map[TraceID]uint32, len(src.spanSeq))
	}
	// Keys are distinct after re-basing (worker trace IDs map injectively
	// into the destination's ID space), so insertion order is irrelevant.
	//mmt:allow maporder: independent keys, insertions commute
	for id, n := range src.spanSeq {
		id.Seq += base[id.Proc]
		s.spanSeq[id] = n
	}
	for _, ev := range src.ledger.snapshot() {
		s.ledger.record(ev)
	}
}

// Events returns a copy of the recorded spans in record order.
func (s *Sink) Events() []Event {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Event(nil), s.events...)
}

// Probe is one component's handle into a Sink. A nil *Probe is the
// disabled state: every method is a nil-safe no-op, so instrumented hot
// paths cost a single branch and zero allocations when tracing is off.
type Probe struct {
	sink *Sink
	proc *procMetrics
}

// Enabled reports whether the probe records anything.
func (p *Probe) Enabled() bool { return p != nil }

// Count adds n to a monotonic counter.
//mmt:hotpath
func (p *Probe) Count(c Counter, n uint64) {
	if p == nil || c >= NumCounters {
		return
	}
	p.sink.mu.Lock()
	p.proc.counters[c] += n
	p.sink.mu.Unlock()
}

// AddCycles adds n simulated cycles to a phase accumulator.
//mmt:hotpath
func (p *Probe) AddCycles(ph Phase, n sim.Cycles) {
	if p == nil || ph >= NumPhases {
		return
	}
	p.sink.mu.Lock()
	p.proc.cycles[ph] += n
	p.sink.mu.Unlock()
}

// Begin opens a span at the given simulated instant. The returned Span
// is a value; nothing is recorded until End.
func (p *Probe) Begin(ph Phase, now sim.Time) Span {
	if p == nil {
		return Span{}
	}
	return Span{probe: p, phase: ph, begin: now}
}

// Span records a completed [begin, end] interval immediately.
func (p *Probe) Span(ph Phase, begin, end sim.Time) {
	if p == nil {
		return
	}
	if end < begin {
		end = begin
	}
	p.sink.mu.Lock()
	p.sink.events = append(p.sink.events, Event{Proc: p.proc.name, Phase: ph, Begin: begin, End: end})
	p.proc.recordFlight(FlightSpan{Phase: ph, Begin: begin, End: end}, p.sink.flightCap)
	p.sink.mu.Unlock()
}

// Span is an open interval started by Probe.Begin. The zero value (from
// a disabled probe) is valid; End on it is a no-op.
type Span struct {
	probe *Probe
	phase Phase
	begin sim.Time
}

// End closes the span at the given simulated instant and records it.
func (s Span) End(now sim.Time) {
	if s.probe == nil {
		return
	}
	s.probe.Span(s.phase, s.begin, now)
}

// ProcMetrics is the exported snapshot of one process's accumulators.
type ProcMetrics struct {
	Proc     string
	Counters [NumCounters]uint64
	Cycles   [NumPhases]sim.Cycles
	Ops      [NumOps]Histogram
}

// Metrics is a copied, immutable snapshot of a sink's accumulators,
// sorted by process name. No interior mutable state escapes: arrays are
// copied by value and the slice is freshly allocated.
type Metrics struct {
	Procs []ProcMetrics
}

// Snapshot captures the sink's current accumulators. Safe on a nil sink
// (returns an empty Metrics).
func (s *Sink) Snapshot() Metrics {
	if s == nil {
		return Metrics{}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	m := Metrics{Procs: make([]ProcMetrics, 0, len(s.procs))}
	for _, p := range s.procs {
		m.Procs = append(m.Procs, ProcMetrics{Proc: p.name, Counters: p.counters, Cycles: p.cycles, Ops: p.ops})
	}
	sortProcs(m.Procs)
	return m
}

// sortProcs orders snapshots by process name (insertion sort: the proc
// count is the machine count, single digits in practice).
func sortProcs(ps []ProcMetrics) {
	for i := 1; i < len(ps); i++ {
		for j := i; j > 0 && ps[j].Proc < ps[j-1].Proc; j-- {
			ps[j], ps[j-1] = ps[j-1], ps[j]
		}
	}
}

// Counter totals c across all processes.
func (m Metrics) Counter(c Counter) uint64 {
	var total uint64
	if c >= NumCounters {
		return 0
	}
	for i := range m.Procs {
		total += m.Procs[i].Counters[c]
	}
	return total
}

// PhaseCycles totals ph across all processes.
func (m Metrics) PhaseCycles(ph Phase) sim.Cycles {
	var total sim.Cycles
	if ph >= NumPhases {
		return 0
	}
	for i := range m.Procs {
		total += m.Procs[i].Cycles[ph]
	}
	return total
}

// TotalCycles sums every phase accumulator across all processes.
func (m Metrics) TotalCycles() sim.Cycles {
	var total sim.Cycles
	for ph := Phase(0); ph < NumPhases; ph++ {
		total += m.PhaseCycles(ph)
	}
	return total
}

// Op merges the named operation's histogram across all processes
// (process-name order, which is deterministic).
func (m Metrics) Op(op Op) Histogram {
	var h Histogram
	if int(op) >= NumOps {
		return h
	}
	for i := range m.Procs {
		h.MergeFrom(&m.Procs[i].Ops[op])
	}
	return h
}
