package mapreduce

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"mmt/internal/sim"
	"mmt/internal/tree"
	"mmt/internal/workload"
)

var smallGeo = tree.Geometry{Arities: []int{4, 4, 8}} // 8 KB regions

func testConfig(mode Mode) Config {
	return Config{
		Mappers:           2,
		Reducers:          2,
		Mode:              mode,
		Profile:           sim.Gem5Profile(),
		Geometry:          smallGeo,
		PoolRegions:       48,
		MapCyclesPerByte:  10,
		ReduceCyclesPerKV: 50,
	}
}

func TestEncodeDecodeKVsRoundTrip(t *testing.T) {
	kvs := []KV{{"alpha", 1}, {"beta", -7}, {"", 42}, {"long key with spaces", 1 << 40}}
	got, err := decodeKVs(encodeKVs(kvs))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(kvs) {
		t.Fatalf("got %d pairs", len(got))
	}
	for i := range kvs {
		if got[i] != kvs[i] {
			t.Fatalf("pair %d: %+v != %+v", i, got[i], kvs[i])
		}
	}
	if _, err := decodeKVs(encodeKVs(nil)); err != nil {
		t.Fatalf("empty list: %v", err)
	}
}

func TestDecodeKVsRejectsGarbage(t *testing.T) {
	good := encodeKVs([]KV{{"k", 1}})
	cases := [][]byte{
		nil,
		{1, 2},
		good[:len(good)-1],
		append(append([]byte(nil), good...), 0xFF),
	}
	for i, b := range cases {
		if _, err := decodeKVs(b); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
	f := func(b []byte) bool { _, _ = decodeKVs(b); return true } // no panics
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSplitInputCoversEverything(t *testing.T) {
	input := []byte(strings.Repeat("alpha beta gamma ", 100))
	for _, m := range []int{1, 2, 3, 7} {
		chunks := splitInput(input, m)
		if len(chunks) != m {
			t.Fatalf("m=%d: %d chunks", m, len(chunks))
		}
		if !bytes.Equal(bytes.Join(chunks, nil), input) {
			t.Fatalf("m=%d: chunks do not reassemble input", m)
		}
	}
}

// reference runs WordCount sequentially for comparison.
func reference(input []byte) map[string]int64 {
	out := make(map[string]int64)
	for _, w := range strings.Fields(string(input)) {
		out[w]++
	}
	return out
}

func runWordCount(t *testing.T, mode Mode, input []byte) *Result {
	t.Helper()
	res, err := Run(testConfig(mode), input, WordCountMapper, WordCountReducer)
	if err != nil {
		t.Fatalf("%v wordcount: %v", mode, err)
	}
	return res
}

func TestWordCountCorrectAcrossModes(t *testing.T) {
	input := workload.Corpus(7, 20_000)
	want := reference(input)
	for _, mode := range []Mode{Baseline, SecureChannel, MMT} {
		res := runWordCount(t, mode, input)
		if len(res.Output) != len(want) {
			t.Fatalf("%v: %d keys, want %d", mode, len(res.Output), len(want))
		}
		for k, v := range want {
			if res.Output[k] != v {
				t.Fatalf("%v: count[%q] = %d, want %d", mode, k, res.Output[k], v)
			}
		}
		if res.Elapsed <= 0 {
			t.Fatalf("%v: no simulated time elapsed", mode)
		}
		if res.ShuffleBytes <= 0 {
			t.Fatalf("%v: no shuffle traffic", mode)
		}
	}
}

func TestModesAgreeOnOutput(t *testing.T) {
	input := workload.Corpus(8, 10_000)
	base := runWordCount(t, Baseline, input)
	sec := runWordCount(t, SecureChannel, input)
	mmt := runWordCount(t, MMT, input)
	for k, v := range base.Output {
		if sec.Output[k] != v || mmt.Output[k] != v {
			t.Fatalf("outputs disagree on %q", k)
		}
	}
}

func TestSecureChannelSlowerThanBaselineAndMMTClose(t *testing.T) {
	// The Figure 13 shape: secure channel pays for crypto; MMT stays close
	// to the baseline.
	input := workload.Corpus(9, 200_000)
	base := runWordCount(t, Baseline, input)
	sec := runWordCount(t, SecureChannel, input)
	mmt := runWordCount(t, MMT, input)
	if sec.Elapsed <= base.Elapsed {
		t.Fatalf("secure channel (%v) not slower than baseline (%v)", sec.Elapsed, base.Elapsed)
	}
	secOver := float64(sec.Elapsed) / float64(base.Elapsed)
	mmtOver := float64(mmt.Elapsed) / float64(base.Elapsed)
	if mmtOver >= secOver {
		t.Fatalf("MMT overhead %.3f not below secure channel %.3f", mmtOver, secOver)
	}
}

func TestGrepJob(t *testing.T) {
	input := []byte("error: disk full\nok\nwarn: retry\nerror: disk full\nok")
	res, err := Run(testConfig(MMT), input, GrepMapper("error"), WordCountReducer)
	if err != nil {
		t.Fatal(err)
	}
	if res.Output["error: disk full"] != 2 {
		t.Fatalf("grep output: %+v", res.Output)
	}
}

func TestScalingWorkers(t *testing.T) {
	// MnRn scalability shape (Figure 13b): more workers must not break
	// correctness, and per-worker work shrinks.
	input := workload.Corpus(10, 60_000)
	want := reference(input)
	for _, n := range []int{1, 2, 4} {
		cfg := testConfig(MMT)
		cfg.Mappers, cfg.Reducers = n, n
		res, err := Run(cfg, input, WordCountMapper, WordCountReducer)
		if err != nil {
			t.Fatalf("M%dR%d: %v", n, n, err)
		}
		for k, v := range want {
			if res.Output[k] != v {
				t.Fatalf("M%dR%d: wrong count for %q", n, n, k)
			}
		}
	}
}

func TestConfigValidation(t *testing.T) {
	bad := testConfig(MMT)
	bad.Mappers = 0
	if _, err := Run(bad, nil, WordCountMapper, WordCountReducer); err == nil {
		t.Error("zero mappers accepted")
	}
	bad = testConfig(MMT)
	bad.Profile = nil
	if _, err := Run(bad, nil, WordCountMapper, WordCountReducer); err == nil {
		t.Error("nil profile accepted")
	}
	bad = testConfig(MMT)
	bad.Geometry = tree.Geometry{}
	if _, err := Run(bad, nil, WordCountMapper, WordCountReducer); err == nil {
		t.Error("invalid geometry accepted in MMT mode")
	}
}

func TestModeString(t *testing.T) {
	if Baseline.String() != "baseline" || SecureChannel.String() != "secure-channel" || MMT.String() != "mmt" {
		t.Fatal("mode strings wrong")
	}
	if Mode(9).String() == "" {
		t.Fatal("unknown mode should print")
	}
}

func TestCommCyclesTracked(t *testing.T) {
	input := workload.Corpus(11, 50_000)
	res := runWordCount(t, SecureChannel, input)
	if res.CommCycles == 0 {
		t.Fatal("no communication cycles recorded")
	}
	base := runWordCount(t, Baseline, input)
	if res.CommCycles <= base.CommCycles {
		t.Fatal("secure channel comm cycles not above baseline")
	}
}

func TestCombinerShrinksShuffleSameOutput(t *testing.T) {
	input := workload.Corpus(15, 100_000)
	plain := testConfig(MMT)
	combined := testConfig(MMT)
	combined.Combiner = WordCountReducer

	a, err := Run(plain, input, WordCountMapper, WordCountReducer)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(combined, input, WordCountMapper, WordCountReducer)
	if err != nil {
		t.Fatal(err)
	}
	if b.ShuffleBytes >= a.ShuffleBytes/4 {
		t.Fatalf("combiner shrank shuffle only %d -> %d", a.ShuffleBytes, b.ShuffleBytes)
	}
	if len(a.Output) != len(b.Output) {
		t.Fatalf("outputs differ in size: %d vs %d", len(a.Output), len(b.Output))
	}
	for k, v := range a.Output {
		if b.Output[k] != v {
			t.Fatalf("combiner changed count for %q: %d vs %d", k, b.Output[k], v)
		}
	}
	if b.Elapsed >= a.Elapsed {
		t.Fatalf("combined run (%v) not faster than plain (%v) under MMT", b.Elapsed, a.Elapsed)
	}
}

func TestCombineHelper(t *testing.T) {
	in := []KV{{"a", 1}, {"b", 2}, {"a", 3}, {"c", 4}, {"b", 5}}
	out := combine(in, WordCountReducer)
	if len(out) != 3 {
		t.Fatalf("combine produced %d pairs", len(out))
	}
	want := []KV{{"a", 4}, {"b", 7}, {"c", 4}} // first-seen order
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("pair %d = %+v, want %+v", i, out[i], want[i])
		}
	}
	if got := combine(nil, WordCountReducer); len(got) != 0 {
		t.Fatal("combine(nil) not empty")
	}
}
