package tracectx

import (
	"mmt/internal/par"
	"mmt/internal/trace"
)

// Test files are out of scope: a determinism test may thread one context
// through a worker-count-1 par call to assert byte identity, and the
// analyzer must stay silent here.
func testOnlyCapture(ctx trace.Context, items []int) error {
	return par.ForEach(1, items, func(_ int, it int) error {
		_ = ctx.Valid()
		return nil
	})
}
