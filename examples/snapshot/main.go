// Snapshot demo: the persistence lifecycle end to end.
//
// First run (the store directory is empty): build a two-machine cluster
// with a durable store attached, delegate a secure buffer from alice to
// bob, checkpoint after each step (base checkpoint, then a delta), and
// write the snapshot manifest (schema mmt-manifest/v1 — validate it with
// `mmt-tracecheck`).
//
// Second run (the store holds a committed snapshot): reopen the cluster
// from disk with mmt.Open, verify bob still holds the delegated secret,
// and hand the buffer back to alice — proof that links, keys and tree
// state all survive a process restart.
//
//	go run ./examples/snapshot -store .bench/snapstore -manifest manifest.json
//	go run ./examples/snapshot -store .bench/snapstore -manifest manifest.json  # again: resumes
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"os"

	"mmt"
)

const secret = "checkpointed secret: survives restarts"

func main() {
	storeDir := flag.String("store", ".bench/snapstore", "directory for the crash-consistent snapshot store")
	manifestPath := flag.String("manifest", "", "write the snapshot manifest JSON here")
	flag.Parse()

	cluster, err := mmt.Open(*storeDir)
	switch {
	case err == nil:
		resume(cluster)
	case errors.Is(err, mmt.ErrNoSnapshot):
		fresh(*storeDir)
	default:
		log.Fatal(err)
	}

	if *manifestPath != "" {
		writeManifest(*storeDir, *manifestPath)
	}
}

// fresh runs the paper's delegation scenario with a store attached,
// checkpointing after every durable step.
func fresh(storeDir string) {
	fmt.Println("no committed snapshot — running the scenario from scratch")
	cluster, err := mmt.New(mmt.WithStore(storeDir))
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	alice, err := cluster.AddMachine("alice")
	if err != nil {
		log.Fatal(err)
	}
	bob, err := cluster.AddMachine("bob")
	if err != nil {
		log.Fatal(err)
	}
	producer := alice.Spawn("producer", []byte("producer-code-v1"))
	consumer := bob.Spawn("consumer", []byte("consumer-code-v1"))
	link, err := cluster.Connect(producer, consumer)
	if err != nil {
		log.Fatal(err)
	}
	buf, err := link.NewBuffer(producer)
	if err != nil {
		log.Fatal(err)
	}
	if err := buf.Write(0, []byte(secret)); err != nil {
		log.Fatal(err)
	}
	if err := cluster.Checkpoint(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("checkpoint 1: base snapshot committed (buffer lives on alice)")

	if err := link.Delegate(buf, mmt.OwnershipTransfer); err != nil {
		log.Fatal(err)
	}
	got, err := link.Receive(consumer)
	if err != nil {
		log.Fatal(err)
	}
	data, err := got.Read(0, len(secret))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("bob received: %q\n", data)
	if err := cluster.Checkpoint(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("checkpoint 2: delegation committed — run this demo again to resume from disk")
}

// resume reopens the persisted cluster and hands the buffer back.
func resume(cluster *mmt.Cluster) {
	defer cluster.Close()
	fmt.Println("committed snapshot found — resuming from the store")

	buf, err := liveBuffer(cluster, "bob")
	if err != nil {
		log.Fatal(err)
	}
	data, err := buf.Read(0, len(secret))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("bob still holds: %q\n", data)

	// Hand it back: the restored link still carries the session keys.
	links := cluster.Links()
	if len(links) != 1 {
		log.Fatalf("want 1 restored link, got %d", len(links))
	}
	link := links[0]
	if err := link.Delegate(buf, mmt.OwnershipTransfer); err != nil {
		log.Fatal(err)
	}
	dst := link.Sender()
	if dst.Machine().Name() == "bob" {
		dst = link.Receiver()
	}
	back, err := link.Receive(dst)
	if err != nil {
		log.Fatal(err)
	}
	data, err = back.Read(0, len(secret))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("alice took it back: %q\n", data)
	if err := cluster.Checkpoint(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("checkpoint 3: the return trip is durable too")
}

// liveBuffer finds the machine's buffer that holds data (Connect also
// arms a receive-buffer capability, which stays in the armed state).
func liveBuffer(c *mmt.Cluster, machine string) (*mmt.Buffer, error) {
	m, ok := c.Machine(machine)
	if !ok {
		return nil, fmt.Errorf("no machine %q in the restored cluster", machine)
	}
	for _, e := range m.Enclaves() {
		for _, cap := range e.Buffers() {
			buf, err := e.Buffer(cap)
			if err != nil {
				return nil, err
			}
			st, err := buf.Stats()
			if err != nil {
				return nil, err
			}
			if st.State == "valid" {
				return buf, nil
			}
		}
	}
	return nil, fmt.Errorf("machine %q holds no live buffer", machine)
}

// writeManifest reopens the store and exports the manifest of its
// committed snapshot.
func writeManifest(storeDir, path string) {
	cluster, err := mmt.Open(storeDir)
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()
	m, err := cluster.Manifest()
	if err != nil {
		log.Fatal(err)
	}
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	if err := m.WriteJSON(f); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s — snapshot manifest (epoch %d, root %s…), validate with `mmt-tracecheck`\n",
		path, m.Epoch, m.RootHash[:12])
}
