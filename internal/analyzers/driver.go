package analyzers

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

// Finding is one reported, unsuppressed diagnostic with its resolved
// source position.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: [%s] %s", f.Pos, f.Analyzer, f.Message)
}

// listedPackage is the subset of `go list -json` output the driver uses.
type listedPackage struct {
	ImportPath  string
	Dir         string
	Export      string
	GoFiles     []string
	TestGoFiles []string
	Standard    bool
	ForTest     string
	Error       *packageError
}

// packageError mirrors go list's PackageError JSON shape.
type packageError struct {
	Err string
}

// Run loads the packages matching patterns (resolved relative to dir,
// which must lie inside the module), typechecks them, applies every
// analyzer, and returns the surviving findings sorted by position.
//
// Packages are enumerated and compiled with `go list -export`; imports
// are satisfied from the resulting export data, so the driver needs no
// dependencies beyond the go toolchain already required by tier-1.
func Run(dir string, patterns []string, as []*Analyzer) ([]Finding, error) {
	exports, err := exportData(dir, patterns)
	if err != nil {
		return nil, err
	}
	targets, err := listPackages(dir, patterns)
	if err != nil {
		return nil, err
	}
	if len(targets) == 0 {
		return nil, fmt.Errorf("no packages match %v", patterns)
	}
	fset := token.NewFileSet()
	imp := newExportImporter(fset, exports)
	var findings []Finding
	for _, pkg := range targets {
		// go list -e tolerates broken patterns so ./... keeps working in a
		// partially broken tree, but a pattern that resolves to nothing or
		// to a load error must not pass vacuously.
		if pkg.Error != nil {
			return nil, fmt.Errorf("%s: %s", pkg.ImportPath, pkg.Error.Err)
		}
		fs, err := parsePackage(fset, pkg.Dir, append(append([]string{}, pkg.GoFiles...), pkg.TestGoFiles...))
		if err != nil {
			return nil, err
		}
		pf, err := checkAndRun(fset, fs, pkg.ImportPath, imp, as)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", pkg.ImportPath, err)
		}
		findings = append(findings, pf...)
	}
	sortFindings(findings)
	return findings, nil
}

// checkAndRun typechecks one parsed package and applies the analyzers,
// returning unsorted findings. The analysistest harness shares it.
func checkAndRun(fset *token.FileSet, files []*ast.File, pkgPath string, imp types.Importer, as []*Analyzer) ([]Finding, error) {
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	conf := types.Config{Importer: imp}
	pkg, err := conf.Check(pkgPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck: %w", err)
	}
	allow := collectAllows(fset, files)
	var findings []Finding
	for _, a := range as {
		a := a
		pass := &Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     files,
			Pkg:       pkg,
			TypesInfo: info,
			Report: func(d Diagnostic) {
				pos := fset.Position(d.Pos)
				if strings.HasSuffix(pos.Filename, "_test.go") {
					return // invariants bind non-test code only
				}
				if allow.allows(a.Name, pos) {
					return
				}
				findings = append(findings, Finding{Analyzer: a.Name, Pos: pos, Message: d.Message})
			},
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("analyzer %s: %w", a.Name, err)
		}
	}
	return findings, nil
}

func sortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
}

// allowSet records //mmt:allow comments: analyzer names allowed per
// (file, line). A comment suppresses findings on its own line and, for
// standalone comment lines, on the line below.
type allowSet map[string]map[int]map[string]bool

var allowRe = regexp.MustCompile(`mmt:allow\s+([a-z][a-z0-9_,\s]*)`)

func collectAllows(fset *token.FileSet, files []*ast.File) allowSet {
	set := allowSet{}
	add := func(file string, line int, name string) {
		if set[file] == nil {
			set[file] = map[int]map[string]bool{}
		}
		if set[file][line] == nil {
			set[file][line] = map[string]bool{}
		}
		set[file][line][name] = true
	}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := allowRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				names := m[1]
				if i := strings.IndexByte(names, ':'); i >= 0 {
					names = names[:i]
				}
				pos := fset.Position(c.Pos())
				for _, name := range strings.FieldsFunc(names, func(r rune) bool { return r == ',' || r == ' ' || r == '\t' }) {
					add(pos.Filename, pos.Line, name)
					add(pos.Filename, pos.Line+1, name)
				}
			}
		}
	}
	return set
}

func (s allowSet) allows(analyzer string, pos token.Position) bool {
	return s[pos.Filename][pos.Line][analyzer]
}

func parsePackage(fset *token.FileSet, dir string, names []string) ([]*ast.File, error) {
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// listPackages enumerates the target packages for analysis.
func listPackages(dir string, patterns []string) ([]listedPackage, error) {
	return goList(dir, append([]string{"-json=ImportPath,Dir,GoFiles,TestGoFiles,Error"}, patterns...))
}

// exportData compiles the patterns (with their test dependencies) and
// returns import path -> export data file for every reachable package.
func exportData(dir string, patterns []string) (map[string]string, error) {
	pkgs, err := goList(dir, append([]string{"-deps", "-test", "-export", "-json=ImportPath,Export,ForTest"}, patterns...))
	if err != nil {
		return nil, err
	}
	exports := map[string]string{}
	for _, p := range pkgs {
		// Skip per-test package variants ("p [p.test]"): importers want
		// the plain build of p, and test mains are not importable.
		if p.ForTest != "" || strings.Contains(p.ImportPath, " [") || strings.HasSuffix(p.ImportPath, ".test") {
			continue
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	return exports, nil
}

func goList(dir string, args []string) ([]listedPackage, error) {
	cmd := exec.Command("go", append([]string{"list", "-e"}, args...)...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list: %v\n%s", err, stderr.String())
	}
	var pkgs []listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list output: %v", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// newExportImporter returns a types.Importer backed by gc export data
// files produced by `go list -export`.
func newExportImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	return importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
}

// ModuleRoot locates the root of the enclosing module (the directory
// holding go.mod), so mmt-vet can be invoked from any subdirectory.
func ModuleRoot() (string, error) {
	out, err := exec.Command("go", "env", "GOMOD").Output()
	if err != nil {
		return "", fmt.Errorf("go env GOMOD: %v", err)
	}
	gomod := strings.TrimSpace(string(out))
	if gomod == "" || gomod == os.DevNull {
		return "", fmt.Errorf("not inside a Go module")
	}
	return filepath.Dir(gomod), nil
}
