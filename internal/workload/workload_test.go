package workload

import (
	"bytes"
	"strings"
	"testing"
)

func TestSPECTracesWellFormed(t *testing.T) {
	traces := SPECTraces()
	if len(traces) < 10 {
		t.Fatalf("only %d benchmark models", len(traces))
	}
	seen := map[string]bool{}
	for _, c := range traces {
		if c.Name == "" || seen[c.Name] {
			t.Fatalf("bad/duplicate name %q", c.Name)
		}
		seen[c.Name] = true
		if c.FootprintLines <= 0 || c.HotFrac <= 0 || c.HotFrac > 1 ||
			c.Locality < 0 || c.Locality > 1 || c.WriteFrac < 0 || c.WriteFrac > 1 ||
			c.ComputeCyclesPerAccess <= 0 {
			t.Fatalf("%s: parameters out of range: %+v", c.Name, c)
		}
	}
}

func TestTraceDeterministic(t *testing.T) {
	cfg := SPECTraces()[0]
	a := NewTrace(cfg, 42)
	b := NewTrace(cfg, 42)
	for i := 0; i < 1000; i++ {
		la, wa := a.Next()
		lb, wb := b.Next()
		if la != lb || wa != wb {
			t.Fatalf("trace diverged at access %d", i)
		}
	}
}

func TestTraceStaysInFootprint(t *testing.T) {
	for _, cfg := range SPECTraces() {
		tr := NewTrace(cfg, 7)
		for i := 0; i < 2000; i++ {
			line, _ := tr.Next()
			if line < 0 || line >= cfg.FootprintLines {
				t.Fatalf("%s: access %d outside footprint", cfg.Name, line)
			}
		}
	}
}

func TestTraceLocalityShapesDistribution(t *testing.T) {
	// A high-locality trace must concentrate accesses far more than a
	// streaming one.
	count := func(cfg TraceConfig) float64 {
		tr := NewTrace(cfg, 1)
		hot := int(float64(cfg.FootprintLines) * cfg.HotFrac)
		inHot := 0
		const n = 20000
		for i := 0; i < n; i++ {
			line, _ := tr.Next()
			if line < hot {
				inHot++
			}
		}
		return float64(inHot) / n
	}
	local := count(TraceConfig{Name: "l", FootprintLines: 10000, HotFrac: 0.05, Locality: 0.95, WriteFrac: 0.3, ComputeCyclesPerAccess: 100})
	stream := count(TraceConfig{Name: "s", FootprintLines: 10000, HotFrac: 0.05, Locality: 0.10, WriteFrac: 0.3, ComputeCyclesPerAccess: 100})
	if local < 0.90 {
		t.Fatalf("high-locality trace only %.2f in hot set", local)
	}
	if stream > 0.30 {
		t.Fatalf("streaming trace %.2f in hot set", stream)
	}
}

func TestCorpus(t *testing.T) {
	c := Corpus(1, 10000)
	if len(c) != 10000 {
		t.Fatalf("corpus %d bytes, want 10000", len(c))
	}
	if !bytes.Equal(c, Corpus(1, 10000)) {
		t.Fatal("corpus not deterministic")
	}
	if bytes.Equal(c, Corpus(2, 10000)) {
		t.Fatal("different seeds gave identical corpora")
	}
	// Zipf skew: the most common word should dominate.
	counts := map[string]int{}
	for _, w := range strings.Fields(string(c)) {
		counts[w]++
	}
	if len(counts) < 10 {
		t.Fatalf("only %d distinct words", len(counts))
	}
	max, total := 0, 0
	for _, n := range counts {
		total += n
		if n > max {
			max = n
		}
	}
	if frac := float64(max) / float64(total); frac < 0.10 {
		t.Fatalf("top word only %.2f of corpus; expected Zipf skew", frac)
	}
}

func TestRandomGraph(t *testing.T) {
	g := RandomGraph(3, 1000, 6)
	if g.N != 1000 {
		t.Fatalf("N = %d", g.N)
	}
	if len(g.Edges) < 3000 || len(g.Edges) > 12000 {
		t.Fatalf("edge count %d not near N*avgDeg", len(g.Edges))
	}
	for _, e := range g.Edges {
		if e[0] < 0 || int(e[0]) >= g.N || e[1] < 0 || int(e[1]) >= g.N {
			t.Fatalf("edge %v out of range", e)
		}
		if e[0] == e[1] {
			t.Fatalf("self loop %v", e)
		}
	}
	// Edge-length locality: most edges are short (community structure),
	// so a blocked 2-way partition cuts only a small fraction.
	short := 0
	for _, e := range g.Edges {
		d := int(e[1]) - int(e[0])
		if d < 0 {
			d = -d
		}
		if d > g.N/2 {
			d = g.N - d // wrap-around distance
		}
		if d <= g.N/10 {
			short++
		}
	}
	if frac := float64(short) / float64(len(g.Edges)); frac < 0.6 {
		t.Fatalf("only %.2f of edges are local; generator lost locality", frac)
	}
}

func TestPartition(t *testing.T) {
	g := RandomGraph(3, 1000, 6)
	owner, cross := g.Partition(2)
	if len(owner) != g.N {
		t.Fatal("owner length wrong")
	}
	counts := map[int]int{}
	for _, o := range owner {
		counts[o]++
	}
	if counts[0] != 500 || counts[1] != 500 {
		t.Fatalf("unbalanced partition: %v", counts)
	}
	// Blocked partition: cross edges are a minority on a local graph.
	if float64(cross)/float64(len(g.Edges)) > 0.5 {
		t.Fatalf("blocked partition cut %d of %d edges", cross, len(g.Edges))
	}
	if cross == 0 || cross > len(g.Edges) {
		t.Fatalf("cross edges %d implausible", cross)
	}
	// One machine: no cross edges.
	if _, c1 := g.Partition(1); c1 != 0 {
		t.Fatalf("single machine has %d cross edges", c1)
	}
}

func TestPaperScaleGraph(t *testing.T) {
	// Figure 14's graph: ~100k vertices with ~60k cross-machine edges on 2
	// machines. Verify our generator can be configured into that regime.
	if testing.Short() {
		t.Skip("large graph in -short mode")
	}
	g := RandomGraph(14, 100_000, 5)
	_, cross := g.Partition(2)
	// Paper: ~60k cross-machine edges on ~100k vertices / 2 machines.
	if cross < 20_000 || cross > 150_000 {
		t.Fatalf("%d cross edges; want the paper's ~60k regime", cross)
	}
}
