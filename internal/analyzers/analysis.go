// Package analyzers is the mmt-vet static-analysis suite: ten custom
// analyzers that machine-enforce the repository's determinism,
// crypto-safety and hot-path invariants.
//
// Every figure and table this repository reproduces must be a pure
// function of the seed and the internal/sim clock, and every security
// claim rests on authentication code in internal/crypt and
// internal/channel. Both properties are one careless diff away from
// silently breaking, so they are enforced by analysis rather than by
// reviewer vigilance:
//
//   - simclock: no wall-clock time or unseeded global randomness in
//     simulation code; all timing flows through internal/sim.
//   - cryptocompare: MAC/tag values from crypt.Engine must be compared
//     in constant time (crypt.TagEqual / crypto/subtle), never ==.
//   - checkverify: results of Verify*/Open/Unseal calls must be checked.
//   - nopanic: library packages return errors instead of panicking.
//   - maporder: no map iteration with order-dependent effects.
//   - parclock: par.Map/par.ForEach work units must own the sim.Clocks
//     they touch; a clock captured from the enclosing scope is shared
//     across goroutines and breaks the determinism contract.
//   - eventkind: security-ledger record sites must pass compile-time
//     constant event kinds, keeping the auditable vocabulary closed.
//
// Three analyzers are built on the shared intra-procedural CFG/dataflow
// layer (cfg.go, dataflow.go) and see the whole module at once:
//
//   - noalloc: functions annotated //mmt:hotpath — and everything they
//     statically call within the module — must contain no allocation
//     sites on any path that can reach a success exit, statically
//     proving the 0-allocs/op claims the crypt/engine benchmarks assert
//     dynamically.
//   - lockorder: derives the global mutex-acquisition order from every
//     Lock/RLock pair and flags pairs acquired in inconsistent order,
//     plus re-acquisition of a mutex already held.
//   - phasecharge: every sim.Clock.AdvanceCycles charge site must be
//     mirrored into exactly one trace phase (Probe.AddCycles) on all
//     CFG paths, making PR 2's charge-mirror contract a compile-time
//     guarantee.
//
// The framework mirrors the golang.org/x/tools/go/analysis API surface
// (Analyzer, Pass, Diagnostic) but is self-contained: the module has no
// external dependencies, so the driver loads packages with `go list
// -export` and typechecks them with go/types directly. Swapping the
// framework for x/tools later is a mechanical import change.
//
// A finding can be suppressed with a justifying comment on the same
// line (or the line above):
//
//	//mmt:allow nopanic: bounds guard; mirrors built-in slice indexing
package analyzers

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Analyzer describes one static check, mirroring the shape of
// golang.org/x/tools/go/analysis.Analyzer.
//
// Exactly one of Run and RunModule is set: Run analyzers see one package
// at a time, RunModule analyzers (the call-graph walkers) see every
// loaded package in a single pass.
type Analyzer struct {
	// Name identifies the analyzer in output and in //mmt:allow comments.
	Name string
	// ID is the stable machine-readable diagnostic ID (MMT001…) used in
	// -json and -sarif output. IDs are append-only: an analyzer keeps its
	// ID forever so CI baselines and suppressions stay comparable.
	ID string
	// Doc is the one-paragraph description shown by mmt-vet -list.
	Doc string
	// Run applies the analyzer to one package.
	Run func(*Pass) error
	// RunModule applies the analyzer to the whole loaded module.
	RunModule func(*ModulePass) error
}

// Pass carries one package's syntax and type information to an analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	Report    func(Diagnostic)
}

// Diagnostic is one finding at one source position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Reportf reports a formatted finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// PackageUnit is one typechecked package inside a ModulePass.
type PackageUnit struct {
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
}

// ModulePass carries every loaded package to a module-wide analyzer.
type ModulePass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Units    []*PackageUnit
	Report   func(Diagnostic)
	// Suppressed reports whether a //mmt:allow comment for this analyzer
	// covers pos, and marks that comment as used. Analyzers query it to
	// prune traversals (e.g. noalloc stopping at an allowed call site)
	// without emitting a diagnostic first; Report applies the same check
	// automatically.
	Suppressed func(token.Pos) bool
}

// Reportf reports a formatted finding at pos.
func (p *ModulePass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// All returns the full mmt-vet suite in stable order. Diagnostic IDs are
// assigned in this order and are append-only.
func All() []*Analyzer {
	return []*Analyzer{
		SimClock,      // MMT001
		CryptoCompare, // MMT002
		CheckVerify,   // MMT003
		NoPanic,       // MMT004
		MapOrder,      // MMT005
		ParClock,      // MMT006
		EventKind,     // MMT007
		NoAlloc,       // MMT008
		LockOrder,     // MMT009
		PhaseCharge,   // MMT010
		TraceCtx,      // MMT011
		SamplerWindow, // MMT012
	}
}

// UnusedAllowID is the pseudo-rule ID of the suppression audit: an
// //mmt:allow comment that suppressed nothing in a full run is itself a
// finding (analyzer name "unusedallow").
const UnusedAllowID = "MMT900"

// analyzerID resolves an analyzer name to its stable diagnostic ID.
func analyzerID(name string) string {
	if name == "unusedallow" {
		return UnusedAllowID
	}
	for _, a := range All() {
		if a.Name == name {
			return a.ID
		}
	}
	return "MMT000"
}

// inScope reports whether a package path is simulation/library code the
// invariants apply to: everything under mmt/internal/ except the
// analysis tooling itself, which is host-side and never contributes to
// figures or security claims.
func inScope(pkgPath string) bool {
	return strings.HasPrefix(pkgPath, "mmt/internal/") &&
		!strings.HasPrefix(pkgPath, "mmt/internal/analyzers")
}

// funcObj resolves a call's callee to its *types.Func, or nil.
func funcObj(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}
