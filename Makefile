# Developer entry points. `make check` is what CI runs.

GO ?= go

.PHONY: build test race vet lint bench check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# First-class tier-1 target: the whole module under the race detector.
race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# mmt-vet: the project's own analyzer suite (simclock, cryptocompare,
# checkverify, nopanic, maporder). Non-zero exit on any finding.
lint:
	$(GO) run ./cmd/mmt-vet ./...

bench:
	$(GO) test -bench=. -benchmem -run=^$$ .

check: build vet lint test race
