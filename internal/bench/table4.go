package bench

import (
	"fmt"

	"mmt/internal/sim"
	"mmt/internal/trace"
	"mmt/internal/tree"
)

// Table4Row is one column of the paper's Table IV: the cost breakdown of
// the software secure channel versus MMT closure delegation for one
// transferred memory size. All costs are in cycles on the row's profile;
// rendering converts to the paper's units (10^3 cycles for Gem5,
// milliseconds for the Intel testbed).
type Table4Row struct {
	Size int

	Memcpy2     sim.Cycles // two copies across the enclave boundary
	RemoteWrite sim.Cycles
	Encrypt     sim.Cycles
	Decrypt     sim.Cycles

	SecureChannel sim.Cycles // sum of the four above
	MMT           sim.Cycles // closure delegation, wire + fixed + ack

	Speedup      float64
	PaperSpeedup float64
}

// table4Measure runs both transfer schemes for one size on a fresh testbed
// and reads the breakdown off the channel stats. A non-nil sink records
// the same run into trace accumulators; because every channel charge is
// mirrored into exactly one trace phase, the sink's phase totals sum to
// SecureChannel+MMT by construction (the fig10 sidecar relies on this).
func table4Measure(prof *sim.Profile, size int, sink *trace.Sink) (Table4Row, error) {
	geo := tree.ForLevels(3)
	closures := (size + geo.DataSize() - 1) / geo.DataSize()
	if closures < 1 {
		closures = 1
	}
	tb, err := newTestbed(prof, geo, closures+1)
	if err != nil {
		return Table4Row{}, err
	}
	tb.attachTrace(sink)
	p := payload(size)
	// The paper transfers `size` bytes of secure memory; our channel frames
	// each closure with a 16-byte header, so shave the headers off the
	// payload to keep the closure count (and hence the transferred region
	// bytes) equal to the paper's.
	mmtPayload := p[:size-16*closures]

	// Secure channel: send + receive, then read the per-phase stats.
	secR, err := tb.secureReceiver()
	if err != nil {
		return Table4Row{}, err
	}
	if err := tb.secure.Send(p); err != nil {
		return Table4Row{}, err
	}
	if _, err := secR.Recv(); err != nil {
		return Table4Row{}, err
	}
	ss, rs := tb.secure.Stats(), secR.Stats()

	// MMT closure delegation of the same payload.
	if err := tb.deleg.Send(mmtPayload); err != nil {
		return Table4Row{}, err
	}
	if _, err := tb.delegR.RecvMessage(); err != nil {
		return Table4Row{}, err
	}
	if err := tb.deleg.DrainAcks(); err != nil {
		return Table4Row{}, err
	}
	ds, dr := tb.deleg.Stats(), tb.delegR.Stats()

	row := Table4Row{
		Size:          size,
		Memcpy2:       ss.Memcpy + rs.Memcpy,
		RemoteWrite:   ss.RemoteWrite + rs.RemoteWrite,
		Encrypt:       ss.Encrypt,
		Decrypt:       rs.Decrypt,
		SecureChannel: ss.Total() + rs.Total(),
		MMT:           ds.Total() + dr.Total(),
	}
	row.Speedup = float64(row.SecureChannel) / float64(row.MMT)
	return row, nil
}

// paperTable4 holds the published speedups for the comparison column.
var paperTable4 = map[string]map[int]float64{
	"gem5": {
		2 << 20: 169.1, 512 << 10: 41.77, 128 << 10: 10.43,
		32 << 10: 2.77, 8 << 10: 0.92, 2 << 10: 0.45,
	},
	"intel-e5-2650": {
		32 << 20: 13.1, 64 << 20: 12.7, 128 << 20: 12.7,
	},
}

// Table4Gem5 reproduces the Gem5 half of Table IV (sizes 2K..2M).
func Table4Gem5() ([]Table4Row, error) {
	return table4(sim.Gem5Profile(), []int{2 << 20, 512 << 10, 128 << 10, 32 << 10, 8 << 10, 2 << 10})
}

// Table4Intel reproduces the Intel/AES-NI half of Table IV (32M..128M).
func Table4Intel() ([]Table4Row, error) {
	return table4(sim.IntelProfile(), []int{32 << 20, 64 << 20, 128 << 20})
}

func table4(prof *sim.Profile, sizes []int) ([]Table4Row, error) {
	rows := make([]Table4Row, 0, len(sizes))
	for _, size := range sizes {
		row, err := table4Measure(prof, size, nil)
		if err != nil {
			return nil, fmt.Errorf("table4 size %d: %w", size, err)
		}
		row.PaperSpeedup = paperTable4[prof.Name][size]
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderTable4 prints rows in the paper's layout.
func RenderTable4(title string, prof *sim.Profile, rows []Table4Row) string {
	ms := prof.Name != "gem5"
	unit := "10^3 cycles"
	conv := func(c sim.Cycles) string { return fmt.Sprintf("%.1f", float64(c)/1e3) }
	if ms {
		unit = "ms"
		conv = func(c sim.Cycles) string { return fmt.Sprintf("%.2f", prof.ToTime(c).Milliseconds()) }
	}
	header := []string{"Size", "Memcpy*2", "Remote_W", "Encrypt", "Decrypt",
		"SecureChannel", "MMT", "Speedup", "PaperSpeedup"}
	var out [][]string
	for _, r := range rows {
		out = append(out, []string{
			fmtSize(r.Size), conv(r.Memcpy2), conv(r.RemoteWrite), conv(r.Encrypt), conv(r.Decrypt),
			conv(r.SecureChannel), conv(r.MMT),
			fmt.Sprintf("%.2fx", r.Speedup), fmt.Sprintf("%.2fx", r.PaperSpeedup),
		})
	}
	return renderTable(fmt.Sprintf("%s (%s)", title, unit), header, out)
}
