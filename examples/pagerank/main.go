// Distributed PageRank under the GAS model (§VI-C2): a partitioned graph
// on two machines whose cross-machine scatter messages travel through the
// remote-transfer phase, carried either unprotected, via the software
// secure channel, or via MMT closure delegation.
//
//	go run ./examples/pagerank
package main

import (
	"fmt"
	"log"
	"sort"

	"mmt/internal/graph"
	"mmt/internal/sim"
	"mmt/internal/tree"
	"mmt/internal/workload"
)

func main() {
	g := workload.RandomGraph(7, 20_000, 8)
	_, cross := g.Partition(2)
	fmt.Printf("PageRank: %d vertices, %d edges (%d cross-machine), 2 machines, 5 iterations\n\n",
		g.N, len(g.Edges), cross)

	var ranks []float64
	var secure, mmt float64
	for _, mode := range []graph.Mode{graph.NonSecure, graph.SecureChannel, graph.MMT} {
		cfg := graph.Config{
			Machines:             2,
			Mode:                 mode,
			Profile:              sim.Gem5Profile(),
			Geometry:             tree.ForLevels(3),
			PoolRegions:          6,
			GatherCyclesPerMsg:   40,
			ApplyCyclesPerVertex: 30,
			ScatterCyclesPerEdge: 12,
			Iterations:           5,
		}
		res, err := graph.PageRank(cfg, g)
		if err != nil {
			log.Fatalf("%v: %v", mode, err)
		}
		share := 100 * float64(res.Breakdown.RemoteTransfer) / float64(res.Breakdown.Total())
		fmt.Printf("%-15s elapsed %-12v remote-transfer %5.1f%% of cycles\n", mode, res.Elapsed, share)
		ranks = res.Ranks
		switch mode {
		case graph.SecureChannel:
			secure = float64(res.Elapsed)
		case graph.MMT:
			mmt = float64(res.Elapsed)
		}
	}
	fmt.Printf("\nMMT improves end-to-end time over the secure channel by %.0f%%\n\n", 100*(1-mmt/secure))

	idx := make([]int, g.N)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return ranks[idx[a]] > ranks[idx[b]] })
	fmt.Println("highest-ranked vertices:")
	for _, v := range idx[:5] {
		fmt.Printf("  v%-6d rank %.6f\n", v, ranks[v])
	}
}
