package crypt

import (
	"bytes"
	"testing"
	"testing/quick"
)

// TestPadLineMatchesEncryptZero: the one-shot OTP keystream equals the
// incremental pad path (ciphertext of a zero line IS the pad).
func TestPadLineMatchesEncryptZero(t *testing.T) {
	e := testEngine()
	zero := make([]byte, LineSize)
	var s Scratch
	f := func(guaddr, counter uint64, lineIdx uint32) bool {
		tw := Tweak{GUAddr: guaddr, Line: lineIdx, Counter: counter}
		got := e.PadLine(tw, &s)
		return bytes.Equal(got[:], e.EncryptLine(tw, zero))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestEncryptLineIntoMatchesEncryptLine: the zero-alloc variant is
// byte-identical to the allocating one, including in-place (aliased) use.
func TestEncryptLineIntoMatchesEncryptLine(t *testing.T) {
	e := testEngine()
	var s Scratch
	tw := Tweak{GUAddr: 0xABC, Line: 9, Counter: 1234}
	pt := line(5)

	want := e.EncryptLine(tw, pt)
	dst := make([]byte, LineSize)
	e.EncryptLineInto(tw, pt, dst, &s)
	if !bytes.Equal(dst, want) {
		t.Fatal("EncryptLineInto differs from EncryptLine")
	}

	back := make([]byte, LineSize)
	e.DecryptLineInto(tw, dst, back, &s)
	if !bytes.Equal(back, pt) {
		t.Fatal("DecryptLineInto round trip failed")
	}

	// In-place: src and dst alias.
	buf := append([]byte(nil), pt...)
	e.EncryptLineInto(tw, buf, buf, &s)
	if !bytes.Equal(buf, want) {
		t.Fatal("aliased EncryptLineInto differs from EncryptLine")
	}
}

func TestEncryptLineIntoPanicsOnWrongSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for short line")
		}
	}()
	var s Scratch
	testEngine().EncryptLineInto(Tweak{}, make([]byte, 10), make([]byte, LineSize), &s)
}

// TestLineMACBufMatchesLineMAC: scratch-buffer MAC equals the allocating one.
func TestLineMACBufMatchesLineMAC(t *testing.T) {
	e := testEngine()
	var s Scratch
	f := func(guaddr, counter uint64, lineIdx uint32, seed byte) bool {
		tw := Tweak{GUAddr: guaddr, Line: lineIdx, Counter: counter}
		ct := e.EncryptLine(tw, line(seed))
		return e.LineMACBuf(tw, ct, &s) == e.LineMAC(tw, ct)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestNodeMACBufMatchesNodeMAC: scratch-buffer node MAC equals NodeMAC.
func TestNodeMACBufMatchesNodeMAC(t *testing.T) {
	e := testEngine()
	var s Scratch
	f := func(guaddr, parent uint64, nodeID uint32, arity uint8, packed []uint64) bool {
		return e.NodeMACBuf(guaddr, nodeID, parent, uint64(arity), packed, &s) ==
			e.NodeMAC(guaddr, nodeID, parent, uint64(arity), packed)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestNodeMACBatchMatchesNodeMAC: a batch of mixed-arity jobs produces
// exactly the per-job NodeMAC values, and the scratch is reusable.
func TestNodeMACBatchMatchesNodeMAC(t *testing.T) {
	e := testEngine()
	var s Scratch
	const guaddr = 0x700
	jobs := []NodeMACJob{
		{NodeID: 0, ParentCounter: 9, Arity: 4, Packed: []uint64{1, 2}},
		{NodeID: 17, ParentCounter: 0, Arity: 1, Packed: []uint64{5, 0x7}},
		{NodeID: 2, ParentCounter: 1 << 40, Arity: 8, Packed: []uint64{0, 0, 7}},
		{NodeID: 3, ParentCounter: 12, Arity: 0, Packed: nil},
		{NodeID: 4, ParentCounter: 12, Arity: 64, Packed: make([]uint64, 17)},
	}
	out := make([]uint64, len(jobs))
	for round := 0; round < 3; round++ { // reuse the same scratch
		e.NodeMACBatch(guaddr, jobs, out, &s)
		for i, j := range jobs {
			want := e.NodeMAC(guaddr, j.NodeID, j.ParentCounter, j.Arity, j.Packed)
			if out[i] != want {
				t.Fatalf("round %d job %d: batch %#x, want %#x", round, i, out[i], want)
			}
		}
	}
	// Empty batch is a no-op.
	e.NodeMACBatch(guaddr, nil, nil, &s)
}

// TestNodeHashBatchMatchesNodeMAC: the unmasked hash batch plus a
// separately derived mask reconstructs NodeMAC exactly — the contract the
// tree's mask cache relies on.
func TestNodeHashBatchMatchesNodeMAC(t *testing.T) {
	e := testEngine()
	var s Scratch
	const guaddr = 0x900
	jobs := []NodeMACJob{
		{NodeID: 5, ParentCounter: 3, Arity: 4, Packed: []uint64{9, 0x20001}},
		{NodeID: 1 << 24, ParentCounter: 0, Arity: 64, Packed: make([]uint64, 17)},
	}
	out := make([]uint64, len(jobs))
	e.NodeHashBatch(jobs, out, &s)
	for i, j := range jobs {
		var base [16]byte
		e.MaskBaseInto(guaddr, j.NodeID, DomainNodeMAC, base[:], &s)
		mac := out[i] ^ e.MaskFromBase(base[:], j.ParentCounter, &s)
		want := e.NodeMAC(guaddr, j.NodeID, j.ParentCounter, j.Arity, j.Packed)
		if mac != want {
			t.Fatalf("job %d: hash^mask = %#x, want %#x", i, mac, want)
		}
	}
}

// TestMaskFromBaseMatchesLineMAC: LineHash plus a mask replayed from a
// cached DomainLineMAC base equals LineMAC — the engine's per-line mask
// cache contract.
func TestMaskFromBaseMatchesLineMAC(t *testing.T) {
	e := testEngine()
	var s Scratch
	f := func(guaddr, counter uint64, lineIdx uint32, seed byte) bool {
		tw := Tweak{GUAddr: guaddr, Line: lineIdx, Counter: counter}
		ct := e.EncryptLine(tw, line(seed))
		var base [16]byte
		e.MaskBaseInto(guaddr, lineIdx, DomainLineMAC, base[:], &s)
		got := e.LineHash(ct, &s) ^ e.MaskFromBase(base[:], counter, &s)
		return got == e.LineMAC(tw, ct)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestPadLineFromBaseMatchesPadLine: keystream replayed from a cached
// DomainPad base is byte-identical to the full PadLine derivation, and
// the FromBase encrypt/decrypt wrappers round-trip.
func TestPadLineFromBaseMatchesPadLine(t *testing.T) {
	e := testEngine()
	var s, s2 Scratch
	f := func(guaddr, counter uint64, lineIdx uint32) bool {
		tw := Tweak{GUAddr: guaddr, Line: lineIdx, Counter: counter}
		want := e.PadLine(tw, &s)
		var base [16]byte
		e.MaskBaseInto(guaddr, lineIdx, DomainPad, base[:], &s2)
		got := e.PadLineFromBase(base[:], counter, &s2)
		return bytes.Equal(got[:], want[:])
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}

	tw := Tweak{GUAddr: 0xABC, Line: 9, Counter: 77}
	var base [16]byte
	e.MaskBaseInto(tw.GUAddr, tw.Line, DomainPad, base[:], &s)
	pt := line(3)
	ct := make([]byte, LineSize)
	e.EncryptLineFromBase(base[:], tw.Counter, pt, ct, &s)
	if !bytes.Equal(ct, e.EncryptLine(tw, pt)) {
		t.Fatal("EncryptLineFromBase differs from EncryptLine")
	}
	back := make([]byte, LineSize)
	e.DecryptLineFromBase(base[:], tw.Counter, ct, back, &s)
	if !bytes.Equal(back, pt) {
		t.Fatal("DecryptLineFromBase round trip failed")
	}
}

// TestScratchPathsAllocFree: the Into/Buf variants are allocation-free
// once the scratch is warm — the hardware data path they model does not
// call malloc per memory access.
func TestScratchPathsAllocFree(t *testing.T) {
	e := testEngine()
	var s Scratch
	tw := Tweak{GUAddr: 1, Line: 2, Counter: 3}
	buf := line(0)
	jobs := []NodeMACJob{
		{NodeID: 0, ParentCounter: 9, Arity: 4, Packed: []uint64{1, 2}},
		{NodeID: 1, ParentCounter: 9, Arity: 4, Packed: []uint64{5, 6}},
	}
	out := make([]uint64, len(jobs))
	var base [16]byte
	e.NodeMACBatch(1, jobs, out, &s) // warm polys

	var macSink uint64
	allocs := testing.AllocsPerRun(100, func() {
		e.EncryptLineInto(tw, buf, buf, &s)
		macSink ^= e.LineMACBuf(tw, buf, &s)
		macSink ^= e.NodeMACBuf(1, 0, 9, 4, jobs[0].Packed, &s)
		e.NodeMACBatch(1, jobs, out, &s)
		e.NodeHashBatch(jobs, out, &s)
		e.MaskBaseInto(1, 2, DomainLineMAC, base[:], &s)
		macSink ^= e.MaskFromBase(base[:], 3, &s)
		macSink ^= e.LineHash(buf, &s)
		e.EncryptLineFromBase(base[:], 3, buf, buf, &s)
		e.DecryptLineFromBase(base[:], 3, buf, buf, &s)
		e.DecryptLineInto(tw, buf, buf, &s)
	})
	if allocs != 0 {
		t.Fatalf("scratch paths allocated %.1f times per op, want 0", allocs)
	}
	_ = macSink
}
