// Package attest implements the global attestation of §IV-A1 (Figure 3).
// A node joining the distributed computation runs three phases against the
// authority node:
//
//  1. Key agreement: an ECDH exchange yields a session key protecting the
//     rest of the conversation on the untrusted network.
//  2. Certificate check: the node presents its manufacturer certificate
//     (its machine public key signed by the manufacturer) and proves
//     possession of the machine key by signing the session transcript; the
//     authority verifies both and answers with a CA report.
//  3. Node registration: the node sends its software measurement and
//     metadata under the session key; the authority checks the measurement
//     against its policy and issues the global-unique node id that seeds
//     the integrity forest.
//
// The paper's machine keys live in efuses and its certificates come from
// the CPU vendor; here the Manufacturer type plays the vendor, ECDSA P-256
// plays the efuse key, and X25519 plays the key agreement.
package attest

import (
	"crypto/ecdh"
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"crypto/sha256"
	"crypto/x509"
	"errors"
	"fmt"

	"mmt/internal/forest"
)

// Measurement is the SHA-256 digest of a node's trusted software stack
// (monitor + TEEOS image).
type Measurement [32]byte

// MeasureSoftware hashes a software image into a Measurement.
func MeasureSoftware(image []byte) Measurement { return sha256.Sum256(image) }

// Certificate is a manufacturer-signed binding of a machine name to its
// machine public key.
type Certificate struct {
	Subject   string
	PublicKey []byte // PKIX-marshaled ECDSA public key
	Signature []byte // manufacturer's fixed-length (r||s) signature over digest()
}

func (c *Certificate) digest() []byte {
	h := sha256.New()
	h.Write([]byte("mmt-cert-v1\x00"))
	h.Write([]byte(c.Subject))
	h.Write([]byte{0})
	h.Write(c.PublicKey)
	return h.Sum(nil)
}

// Manufacturer is the hardware vendor: the root of trust whose public key
// every authority knows.
type Manufacturer struct {
	priv *ecdsa.PrivateKey
}

// NewManufacturer generates a vendor signing key.
func NewManufacturer() (*Manufacturer, error) {
	priv, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		return nil, err
	}
	return &Manufacturer{priv: priv}, nil
}

// PublicKey returns the vendor verification key (distributed to
// authorities out of band).
func (m *Manufacturer) PublicKey() *ecdsa.PublicKey { return &m.priv.PublicKey }

// Machine is one provisioned machine: its sealed machine key and the
// manufacturer certificate for it.
type Machine struct {
	Name string
	priv *ecdsa.PrivateKey
	Cert Certificate
}

// Provision creates a machine identity: a fresh machine key whose public
// half the manufacturer certifies.
func (m *Manufacturer) Provision(name string) (*Machine, error) {
	priv, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		return nil, err
	}
	pub, err := x509.MarshalPKIXPublicKey(&priv.PublicKey)
	if err != nil {
		return nil, err
	}
	cert := Certificate{Subject: name, PublicKey: pub}
	sig, err := SignDigest(m.priv, cert.digest())
	if err != nil {
		return nil, err
	}
	cert.Signature = sig
	return &Machine{Name: name, priv: priv, Cert: cert}, nil
}

// VerifyCertificate checks a certificate against a manufacturer public key
// and returns the machine public key it certifies.
func VerifyCertificate(manufacturer *ecdsa.PublicKey, c *Certificate) (*ecdsa.PublicKey, error) {
	if !VerifyDigest(manufacturer, c.digest(), c.Signature) {
		return nil, errors.New("attest: certificate signature invalid")
	}
	pub, err := x509.ParsePKIXPublicKey(c.PublicKey)
	if err != nil {
		return nil, fmt.Errorf("attest: certificate key: %w", err)
	}
	ek, ok := pub.(*ecdsa.PublicKey)
	if !ok {
		return nil, errors.New("attest: certificate key is not ECDSA")
	}
	return ek, nil
}

// Report is the authority-signed outcome of a successful attestation: the
// binding of node id, machine certificate subject and software
// measurement. Nodes exchange reports to establish mutual trust before
// opening delegation connections (§IV-A2 "an attested node can send its
// attestation report to others").
type Report struct {
	NodeID      forest.NodeID
	Subject     string
	Measurement Measurement
	// MachinePublicKey is the PKIX-encoded machine key the authority
	// verified during attestation. Peers use it to authenticate key
	// exchanges: a signature under this key proves the share came from
	// the attested machine, closing the man-in-the-middle hole of an
	// unauthenticated Diffie-Hellman.
	MachinePublicKey []byte
	Signature        []byte // authority's signature
}

func (r *Report) digest() []byte {
	h := sha256.New()
	h.Write([]byte("mmt-report-v1\x00"))
	h.Write([]byte{byte(r.NodeID >> 8), byte(r.NodeID)})
	h.Write([]byte(r.Subject))
	h.Write([]byte{0})
	h.Write(r.Measurement[:])
	h.Write(r.MachinePublicKey)
	return h.Sum(nil)
}

// MachineKey parses the report's attested machine public key.
func (r *Report) MachineKey() (*ecdsa.PublicKey, error) {
	pub, err := x509.ParsePKIXPublicKey(r.MachinePublicKey)
	if err != nil {
		return nil, fmt.Errorf("attest: report machine key: %w", err)
	}
	ek, ok := pub.(*ecdsa.PublicKey)
	if !ok {
		return nil, errors.New("attest: report machine key is not ECDSA")
	}
	return ek, nil
}

// VerifyReport checks a report against the authority public key.
func VerifyReport(authority *ecdsa.PublicKey, r *Report) error {
	if !VerifyDigest(authority, r.digest(), r.Signature) {
		return errors.New("attest: report signature invalid")
	}
	return nil
}

// Authority is the global attestation server: it knows the manufacturer's
// public key, enforces a software-measurement policy, and issues
// global-unique node ids.
type Authority struct {
	manufacturer *ecdsa.PublicKey
	signing      *ecdsa.PrivateKey
	policy       map[Measurement]bool
	nextID       forest.NodeID
}

// NewAuthority builds an authority trusting the given manufacturer. Node
// ids are issued from 1 (0 is reserved as "unattested").
func NewAuthority(manufacturer *ecdsa.PublicKey) (*Authority, error) {
	priv, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		return nil, err
	}
	return &Authority{
		manufacturer: manufacturer,
		signing:      priv,
		policy:       make(map[Measurement]bool),
		nextID:       1,
	}, nil
}

// PublicKey returns the authority's report-verification key.
func (a *Authority) PublicKey() *ecdsa.PublicKey { return &a.signing.PublicKey }

// AllowMeasurement whitelists a software measurement.
func (a *Authority) AllowMeasurement(m Measurement) { a.policy[m] = true }

// newSessionKeys generates an X25519 key pair.
func newSessionKeys() (*ecdh.PrivateKey, error) {
	return ecdh.X25519().GenerateKey(rand.Reader)
}

// sessionKey derives the 32-byte session key from an ECDH shared secret
// and the two public keys (transcript binding).
func sessionKey(shared, pubA, pubB []byte) [32]byte {
	h := sha256.New()
	h.Write([]byte("mmt-session-v1\x00"))
	h.Write(shared)
	h.Write(pubA)
	h.Write(pubB)
	var out [32]byte
	copy(out[:], h.Sum(nil))
	return out
}

// Sign signs a digest with the machine key (sealed in efuses on real
// hardware; only the monitor may invoke it). Peers verify against the
// machine public key carried in the authority-signed report.
func (m *Machine) Sign(digest []byte) ([]byte, error) {
	return SignDigest(m.priv, digest)
}
