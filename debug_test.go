package mmt

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"

	"mmt/internal/trace"
)

// get fetches one debug endpoint and returns the body.
func get(t *testing.T, url string) []byte {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return body
}

// TestDebugServer boots a traced cluster with the /debug endpoint, runs
// the quickstart tour, and validates every endpoint: schema'd histogram
// JSON, ledger JSONL, the expvar-style vars document, the text summary
// and the pprof index. The server observes read-only snapshots, so none
// of these requests disturb the simulated timeline.
func TestDebugServer(t *testing.T) {
	sink := NewTraceSink()
	c, err := New(WithTreeLevels(2), WithRegions(6), WithTracing(sink), WithDebugServer("127.0.0.1:0"))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	addr := c.DebugAddr()
	if addr == "" || !strings.HasPrefix(addr, "127.0.0.1:") {
		t.Fatalf("bad DebugAddr: %q", addr)
	}

	// Drive the tour so the endpoints have something to show.
	alice, err := c.AddMachine("alice")
	if err != nil {
		t.Fatal(err)
	}
	bob, err := c.AddMachine("bob")
	if err != nil {
		t.Fatal(err)
	}
	link, err := c.Connect(alice.Spawn("p", nil), bob.Spawn("q", nil))
	if err != nil {
		t.Fatal(err)
	}
	buf, err := link.NewBuffer(link.Sender())
	if err != nil {
		t.Fatal(err)
	}
	if err := buf.Write(0, []byte("secret")); err != nil {
		t.Fatal(err)
	}
	timelineBefore := c.Metrics().TotalCycles()
	if err := link.Delegate(buf, OwnershipTransfer); err != nil {
		t.Fatal(err)
	}
	if _, err := link.Receive(link.Receiver()); err != nil {
		t.Fatal(err)
	}

	base := "http://" + addr

	var hist struct {
		Schema string `json:"schema"`
		Procs  []struct {
			Proc string `json:"proc"`
			Ops  []struct {
				Op    string `json:"op"`
				Count uint64 `json:"count"`
			} `json:"ops"`
		} `json:"procs"`
	}
	if err := json.Unmarshal(get(t, base+"/debug/mmt/hist"), &hist); err != nil {
		t.Fatalf("hist endpoint: %v", err)
	}
	if hist.Schema != trace.HistSchema {
		t.Fatalf("hist schema = %q, want %q", hist.Schema, trace.HistSchema)
	}
	if len(hist.Procs) != 2 || hist.Procs[0].Proc != "alice" {
		t.Fatalf("hist procs: %+v", hist.Procs)
	}

	events := get(t, base+"/debug/mmt/events")
	lines := strings.Split(strings.TrimSpace(string(events)), "\n")
	var header struct {
		Schema string `json:"schema"`
		Events int    `json:"events"`
	}
	if err := json.Unmarshal([]byte(lines[0]), &header); err != nil {
		t.Fatalf("events header: %v", err)
	}
	if header.Schema != trace.EventsSchema || header.Events != len(lines)-1 {
		t.Fatalf("events header %+v for %d lines", header, len(lines))
	}
	if !strings.Contains(string(events), "migration-accept") {
		t.Fatalf("ledger misses the delegation:\n%s", events)
	}

	var vars struct {
		MMT struct {
			Events int `json:"events"`
		} `json:"mmt"`
	}
	if err := json.Unmarshal(get(t, base+"/debug/vars"), &vars); err != nil {
		t.Fatalf("vars endpoint: %v", err)
	}
	if vars.MMT.Events != header.Events {
		t.Fatalf("vars events %d != ledger %d", vars.MMT.Events, header.Events)
	}

	if sum := get(t, base+"/debug/mmt/summary"); !strings.Contains(string(sum), "alice") {
		t.Fatalf("summary misses alice:\n%s", sum)
	}
	if idx := get(t, base+"/debug/pprof/"); !strings.Contains(string(idx), "goroutine") {
		t.Fatal("pprof index not served")
	}

	// Serving is free on the simulated timeline: the only cycles since the
	// pre-transfer snapshot are the delegation's own.
	delegated := c.Metrics().TotalCycles() - timelineBefore
	again := get(t, base+"/debug/mmt/hist")
	if c.Metrics().TotalCycles()-timelineBefore != delegated {
		t.Fatal("serving /debug charged simulated cycles")
	}
	_ = again

	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := http.Get(base + "/debug/vars"); err == nil {
		t.Fatal("server still serving after Close")
	}
}

// TestDebugServerWithoutTracing: the endpoint works (empty documents) on
// an untraced cluster, and a second Close is a no-op.
func TestDebugServerWithoutTracing(t *testing.T) {
	c, err := New(WithTreeLevels(2), WithRegions(2), WithDebugServer("127.0.0.1:0"))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var hist struct {
		Schema string `json:"schema"`
	}
	if err := json.Unmarshal(get(t, "http://"+c.DebugAddr()+"/debug/mmt/hist"), &hist); err != nil {
		t.Fatal(err)
	}
	if hist.Schema != trace.HistSchema {
		t.Fatalf("schema = %q", hist.Schema)
	}
}

// TestDebugServerBadAddr: an unusable listen address surfaces as a New
// error instead of a background panic.
func TestDebugServerBadAddr(t *testing.T) {
	if _, err := New(WithDebugServer("256.0.0.1:bad")); err == nil {
		t.Fatal("want listen error")
	}
}
