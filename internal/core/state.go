// Package core implements the paper's primary contribution: the Migratable
// Merkle Tree scheme (§IV-B). It owns the MMT root state machine
// (valid / invalid / sending / waiting), the MMT closure — the transfer
// unit bundling sealed root, tree nodes, data MACs and ciphertext — and
// the MMT closure delegation protocol with its freshness (counter) and
// ordering (global-unique address monotonicity) checks that defeat replay
// and re-order attacks on the untrusted interconnect.
//
// The single-node protection machinery it builds on lives in package
// engine; the wire and its adversaries live in package netsim. This
// package is where the two meet.
package core

import (
	"errors"
	"fmt"
)

// State is an MMT root state (§IV-B1).
type State uint8

const (
	// StateInvalid: the MMT is un-allocated or reclaimed; the memory is
	// regarded as non-secure.
	StateInvalid State = iota
	// StateValid: the MMT is active and checks every access.
	StateValid
	// StateSending: a delegation is in flight; the region is read-only
	// until the protocol completes.
	StateSending
	// StateWaiting: the region is registered to receive a transferred MMT.
	StateWaiting
)

func (s State) String() string {
	switch s {
	case StateInvalid:
		return "invalid"
	case StateValid:
		return "valid"
	case StateSending:
		return "sending"
	case StateWaiting:
		return "waiting"
	default:
		return fmt.Sprintf("State(%d)", uint8(s))
	}
}

// validTransitions is the MMT root state machine. Acquire: invalid->valid;
// BeginSend: valid->sending; CompleteSend: sending->invalid (ownership
// transfer) or sending->valid (ownership copy); Expect: invalid->waiting;
// Accept: waiting->valid; Reclaim: valid->invalid.
var validTransitions = map[State][]State{
	StateInvalid: {StateValid, StateWaiting},
	StateValid:   {StateSending, StateInvalid},
	StateSending: {StateInvalid, StateValid},
	StateWaiting: {StateValid, StateInvalid},
}

// ErrState reports a forbidden state transition or an operation applied in
// the wrong state.
var ErrState = errors.New("core: invalid MMT state transition")

// checkTransition returns an error unless from -> to is permitted.
func checkTransition(from, to State) error {
	for _, ok := range validTransitions[from] {
		if ok == to {
			return nil
		}
	}
	return fmt.Errorf("%w: %v -> %v", ErrState, from, to)
}
