package mmt

// Artifact is the single-buffer counterpart of a full snapshot: one
// exported MMT closure, sealed under a link's key, that can leave the
// process as bytes and be imported by the link's other endpoint in a
// different process ("save on machine A, load on machine B, delegation
// resumes"). The closure inside is exactly what delegation puts on the
// wire, so an imported artifact goes through the same freshness,
// ordering, authenticity and integrity checks as a live transfer — a
// stale, replayed or tampered artifact is rejected with the same typed
// errors.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// artifactMagic tags the serialized artifact framing.
const artifactMagic = "mmt-artifact/v1\x00"

// ErrBadArtifact: the artifact framing is malformed or its checksum fails
// (the sealed closure inside has its own cryptographic protection; this
// error is about the plain file framing around it).
var ErrBadArtifact = errors.New("mmt: malformed artifact")

// Artifact is one exported MMT closure bound to a link.
type Artifact struct {
	linkID string
	mode   TransferMode
	wire   []byte
}

// LinkID reports the link the artifact was exported on; Import must be
// called on the same link (the closure is sealed under its key).
func (a *Artifact) LinkID() string { return a.linkID }

// Mode reports the delegation semantics the artifact carries.
func (a *Artifact) Mode() TransferMode { return a.mode }

// Export seals the buffer's MMT closure into an Artifact instead of
// sending it over the interconnect. With OwnershipTransfer the local
// buffer is consumed (its region returns to the pool) the moment the
// artifact exists — ownership now lives in the artifact until Import
// accepts it. With OwnershipCopy the local buffer stays live and
// writable, and the artifact carries a read-only snapshot.
func (l *Link) Export(b *Buffer, mode TransferMode) (*Artifact, error) {
	var from *Enclave
	switch b.machine {
	case l.a.machine:
		from = l.a
	case l.b.machine:
		from = l.b
	default:
		return nil, ErrNotOnLink
	}
	if b.owner != from.id {
		return nil, ErrNotOnLink
	}
	wire, err := from.machine.mon.ExportPMO(from.id, b.cap, l.id, mode)
	if err != nil {
		return nil, err
	}
	l.cluster.markStructural()
	return &Artifact{linkID: l.id, mode: mode, wire: wire}, nil
}

// Import accepts an artifact at the link's other endpoint, exactly as if
// it had arrived by delegation: the receiving monitor verifies freshness
// against the link's counter floor, ordering against the GUAddr
// monotonicity rule, and the sealed root's authenticity and integrity
// before any byte becomes readable. e must be an endpoint of the link
// and must not be on the exporting machine.
func (l *Link) Import(a *Artifact, e *Enclave) (*Buffer, error) {
	if a.linkID != l.id {
		return nil, fmt.Errorf("mmt: artifact belongs to link %s, not %s", a.linkID, l.id)
	}
	if e != l.a && e != l.b {
		return nil, ErrNotOnLink
	}
	p, err := e.machine.mon.ImportClosure(l.id, a.wire)
	if err != nil {
		return nil, err
	}
	l.cluster.markStructural()
	return &Buffer{machine: e.machine, owner: p.Owner, cap: p.Cap}, nil
}

// WriteTo serializes the artifact: magic, mode, link id, sealed closure,
// CRC-32 over everything before it. (The checksum catches file-level
// corruption early with a clear error; security does not rest on it —
// the closure's own MACs do that at Import.)
func (a *Artifact) WriteTo(w io.Writer) (int64, error) {
	buf := make([]byte, 0, len(artifactMagic)+1+8+len(a.linkID)+len(a.wire)+4)
	buf = append(buf, artifactMagic...)
	buf = append(buf, byte(a.mode))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(a.linkID)))
	buf = append(buf, a.linkID...)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(a.wire)))
	buf = append(buf, a.wire...)
	buf = binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf))
	n, err := w.Write(buf)
	return int64(n), err
}

// ReadArtifact deserializes an artifact written by WriteTo.
func ReadArtifact(r io.Reader) (*Artifact, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	if len(data) < len(artifactMagic)+1+4+4+4 {
		return nil, fmt.Errorf("%w: %d bytes is shorter than the fixed framing", ErrBadArtifact, len(data))
	}
	if string(data[:len(artifactMagic)]) != artifactMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrBadArtifact)
	}
	body, sum := data[:len(data)-4], binary.LittleEndian.Uint32(data[len(data)-4:])
	if got := crc32.ChecksumIEEE(body); got != sum {
		return nil, fmt.Errorf("%w: checksum mismatch (%08x != %08x)", ErrBadArtifact, got, sum)
	}
	off := len(artifactMagic)
	mode := TransferMode(body[off])
	off++
	take := func(n int) ([]byte, error) {
		if n < 0 || off+n > len(body) {
			return nil, fmt.Errorf("%w: truncated field at offset %d", ErrBadArtifact, off)
		}
		b := body[off : off+n]
		off += n
		return b, nil
	}
	lenField := func() (int, error) {
		b, err := take(4)
		if err != nil {
			return 0, err
		}
		return int(binary.LittleEndian.Uint32(b)), nil
	}
	n, err := lenField()
	if err != nil {
		return nil, err
	}
	linkID, err := take(n)
	if err != nil {
		return nil, err
	}
	n, err = lenField()
	if err != nil {
		return nil, err
	}
	wire, err := take(n)
	if err != nil {
		return nil, err
	}
	if off != len(body) {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrBadArtifact, len(body)-off)
	}
	return &Artifact{
		linkID: string(linkID),
		mode:   mode,
		wire:   append([]byte(nil), wire...),
	}, nil
}
