package trace

import (
	"sort"
	"strconv"

	"mmt/internal/sim"
)

// This file is the causal half of the trace layer: deterministic trace
// identities minted at migration/connect roots, span links that tie one
// machine's spans to another's, and the per-migration tree/critical-path
// views the mmt-causal/v1 exporter and the sidecars render.
//
// Identity rules (see DESIGN.md §13):
//
//   - A TraceID is (process name, per-process monotonic sequence) — never
//     randomness, never wall-clock — so identical runs mint identical IDs
//     and the export stays byte-identical at any worker count.
//   - Span IDs are allocated per trace, 1-based, parents before children,
//     so parent < span always holds and the span set of a trace forms a
//     tree by construction.
//   - A Context travels across machines as observability metadata riding
//     alongside the wire payload (netsim.Message.Trace); it is never part
//     of any MAC'd or sealed byte string, so tracing cannot perturb the
//     security protocol and a tampered context can at worst mislabel a
//     span.

// TraceID names one causal trace: a migration or connect root. The zero
// value is the invalid ID (tracing disabled at the root).
type TraceID struct {
	// Proc is the process (machine) that opened the trace root.
	Proc string
	// Seq is the root process's monotonic trace counter, 1-based.
	Seq uint64
}

// Valid reports whether the ID names a real trace.
func (id TraceID) Valid() bool { return id.Proc != "" }

// String renders the ID as "proc#seq".
func (id TraceID) String() string {
	if !id.Valid() {
		return "invalid"
	}
	return id.Proc + "#" + strconv.FormatUint(id.Seq, 10)
}

// Context is the causal propagation token: which trace, and which span
// inside it is the parent of whatever happens next. The zero value is
// the disabled context; every consumer treats it as "do not record".
type Context struct {
	ID TraceID
	// Span is the parent span ID for the next child (0 = the root itself
	// has not recorded yet, i.e. children of the zero context's trace
	// attach to the root).
	Span uint32
}

// Valid reports whether the context carries a live trace.
func (c Context) Valid() bool { return c.ID.Valid() }

// NewTrace mints a fresh trace identity rooted at this probe's process.
// On a nil probe it returns the zero (disabled) Context.
func (p *Probe) NewTrace() Context {
	if p == nil {
		return Context{}
	}
	p.sink.mu.Lock()
	p.proc.causalSeq++
	id := TraceID{Proc: p.proc.name, Seq: p.proc.causalSeq}
	p.sink.mu.Unlock()
	return Context{ID: id}
}

// nextSpanLocked allocates the next span ID of a trace. Caller holds
// s.mu.
func (s *Sink) nextSpanLocked(id TraceID) uint32 {
	if s.spanSeq == nil {
		s.spanSeq = make(map[TraceID]uint32)
	}
	s.spanSeq[id]++
	return s.spanSeq[id]
}

// BeginSpan opens a causal span: a child of ctx's parent span, on this
// probe's process, in the given phase. Returns nil — the universal
// no-op — when the probe is disabled or the context is invalid, so call
// sites need no branches. Nothing is recorded until End.
func (p *Probe) BeginSpan(ctx Context, ph Phase, now sim.Time) *ActiveSpan {
	if p == nil || !ctx.Valid() {
		return nil
	}
	p.sink.mu.Lock()
	id := p.sink.nextSpanLocked(ctx.ID)
	p.sink.mu.Unlock()
	return &ActiveSpan{probe: p, trace: ctx.ID, span: id, parent: ctx.Span, phase: ph, begin: now}
}

// CausalSpan records a completed child span of ctx immediately and
// returns the context for *its* children. On a nil probe or invalid
// context it records nothing and returns ctx unchanged.
func (p *Probe) CausalSpan(ctx Context, ph Phase, begin, end sim.Time, cycles sim.Cycles) Context {
	sp := p.BeginSpan(ctx, ph, begin)
	if sp == nil {
		return ctx
	}
	sp.AddCycles(cycles)
	sp.End(end)
	return sp.Context()
}

// ActiveSpan is an open causal span. A nil *ActiveSpan is the disabled
// state: every method is a nil-safe no-op, mirroring the nil-Probe
// convention.
type ActiveSpan struct {
	probe  *Probe
	trace  TraceID
	span   uint32
	parent uint32
	phase  Phase
	begin  sim.Time
	cycles sim.Cycles
}

// Context returns the propagation token that parents children under this
// span. On a nil span it returns the zero (disabled) Context.
func (a *ActiveSpan) Context() Context {
	if a == nil {
		return Context{}
	}
	return Context{ID: a.trace, Span: a.span}
}

// AddCycles attributes simulated cycles to this span (the span's own
// cost, excluding its children's).
func (a *ActiveSpan) AddCycles(n sim.Cycles) {
	if a == nil {
		return
	}
	a.cycles += n
}

// End closes the span at the given simulated instant and records it as
// an Event carrying the causal link fields.
func (a *ActiveSpan) End(now sim.Time) {
	if a == nil {
		return
	}
	if now < a.begin {
		now = a.begin
	}
	p := a.probe
	p.sink.mu.Lock()
	p.sink.events = append(p.sink.events, Event{
		Proc: p.proc.name, Phase: a.phase, Begin: a.begin, End: now,
		Trace: a.trace, Span: a.span, Parent: a.parent, Cycles: a.cycles,
	})
	p.proc.recordFlight(FlightSpan{
		Phase: a.phase, Begin: a.begin, End: now, Trace: a.trace, Span: a.span,
	}, p.sink.flightCap)
	p.sink.mu.Unlock()
}

// CausalSpan is one recorded span of a causal trace (the exported view).
type CausalSpan struct {
	// Span is the 1-based span ID within the trace; Parent is the parent
	// span's ID (0 for the root).
	Span, Parent uint32
	// Proc is the machine that recorded the span.
	Proc  string
	Phase Phase
	Begin sim.Time
	End   sim.Time
	// Cycles is the span's own attributed cost (children excluded).
	Cycles sim.Cycles
}

// CausalTrace is one migration's (or connect handshake's) complete span
// tree, plus the derived end-to-end accounting.
type CausalTrace struct {
	ID TraceID
	// Spans in ascending span-ID order (parents precede children).
	Spans []CausalSpan
	// TotalCycles sums every span's attributed cycles: the migration's
	// end-to-end simulated cost across all machines.
	TotalCycles sim.Cycles
	// CriticalPath is the root-to-leaf chain of span IDs that ends
	// latest; CriticalElapsed is that leaf's End minus the root's Begin —
	// the migration's end-to-end simulated latency.
	CriticalPath    []uint32
	CriticalElapsed sim.Time
}

// CausalTraces assembles the recorded causal spans into per-trace trees,
// ordered by (root process, sequence). Safe on a nil sink (returns nil).
func (s *Sink) CausalTraces() []CausalTrace {
	events := s.Events()
	if len(events) == 0 {
		return nil
	}
	byID := make(map[TraceID]*CausalTrace)
	var order []*CausalTrace
	for i := range events {
		ev := &events[i]
		if !ev.Trace.Valid() {
			continue
		}
		t, ok := byID[ev.Trace]
		if !ok {
			t = &CausalTrace{ID: ev.Trace}
			byID[ev.Trace] = t
			order = append(order, t)
		}
		t.Spans = append(t.Spans, CausalSpan{
			Span: ev.Span, Parent: ev.Parent, Proc: ev.Proc,
			Phase: ev.Phase, Begin: ev.Begin, End: ev.End, Cycles: ev.Cycles,
		})
		t.TotalCycles += ev.Cycles
	}
	sort.Slice(order, func(i, j int) bool {
		a, b := order[i].ID, order[j].ID
		if a.Proc != b.Proc {
			return a.Proc < b.Proc
		}
		return a.Seq < b.Seq
	})
	out := make([]CausalTrace, 0, len(order))
	for _, t := range order {
		sort.Slice(t.Spans, func(i, j int) bool { return t.Spans[i].Span < t.Spans[j].Span })
		t.CriticalPath, t.CriticalElapsed = criticalPath(t.Spans)
		out = append(out, *t)
	}
	return out
}

// criticalPath walks from the root, at each step descending into the
// child whose interval ends latest (ties broken toward the smaller span
// ID), and reports the chain plus leaf-End minus root-Begin. An empty or
// rootless span set yields a nil path.
func criticalPath(spans []CausalSpan) ([]uint32, sim.Time) {
	var root *CausalSpan
	for i := range spans {
		if spans[i].Parent == 0 {
			root = &spans[i]
			break
		}
	}
	if root == nil {
		return nil, 0
	}
	path := []uint32{root.Span}
	cur := root
	for {
		var next *CausalSpan
		for i := range spans {
			sp := &spans[i]
			if sp.Parent != cur.Span {
				continue
			}
			if next == nil || sp.End > next.End || (sp.End == next.End && sp.Span < next.Span) {
				next = sp
			}
		}
		if next == nil {
			break
		}
		path = append(path, next.Span)
		cur = next
	}
	return path, cur.End - root.Begin
}
