package tree

import (
	"errors"
	"testing"
	"testing/quick"

	"mmt/internal/crypt"
)

// smallGeo is a tiny tree for fast exhaustive tests: 2*3*4 = 24 lines.
func smallGeo() Geometry { return Geometry{Arities: []int{2, 3, 4}} }

func testEngine() *crypt.Engine { return crypt.NewEngine(crypt.KeyFromBytes([]byte("tree-test"))) }

const guaddr = 0xABCD0000

// mustNew builds a tree or panics; test geometries are valid by
// construction.
func mustNew(geo Geometry, e *crypt.Engine, guaddr uint64) *Tree {
	tr, err := New(geo, e, guaddr)
	if err != nil {
		panic(err)
	}
	return tr
}

func TestNewTreeVerifies(t *testing.T) {
	e := testEngine()
	tr := mustNew(smallGeo(), e, guaddr)
	if err := tr.VerifyAll(e, guaddr); err != nil {
		t.Fatalf("fresh tree does not verify: %v", err)
	}
	if tr.RootCounter() != 0 {
		t.Fatalf("fresh root counter = %d", tr.RootCounter())
	}
	if tr.LeafCounter(0) != 0 {
		t.Fatalf("fresh leaf counter = %d", tr.LeafCounter(0))
	}
}

func TestUpdateAdvancesCounters(t *testing.T) {
	e := testEngine()
	tr := mustNew(smallGeo(), e, guaddr)
	res := tr.Update(e, guaddr, 5)
	if res.LeafCounter != 1 {
		t.Fatalf("leaf counter after one write = %d, want 1", res.LeafCounter)
	}
	if tr.RootCounter() != 1 {
		t.Fatalf("root counter = %d, want 1", tr.RootCounter())
	}
	if tr.LeafCounter(5) != 1 || tr.LeafCounter(6) != 0 {
		t.Fatal("wrong leaf counters after update")
	}
	if res.Overflowed || len(res.ReencryptLines) != 0 {
		t.Fatal("unexpected overflow on first write")
	}
	if res.NodesTouched != 3 {
		t.Fatalf("NodesTouched = %d, want 3 (one per level)", res.NodesTouched)
	}
}

func TestUpdateKeepsTreeVerified(t *testing.T) {
	e := testEngine()
	tr := mustNew(smallGeo(), e, guaddr)
	for i := 0; i < 100; i++ {
		line := (i * 7) % tr.Geometry().Lines()
		tr.Update(e, guaddr, line)
		if err := tr.VerifyAll(e, guaddr); err != nil {
			t.Fatalf("tree invalid after update %d (line %d): %v", i, line, err)
		}
	}
}

func TestVerifyPathMatchesVerifyAll(t *testing.T) {
	e := testEngine()
	tr := mustNew(smallGeo(), e, guaddr)
	tr.Update(e, guaddr, 3)
	for line := 0; line < tr.Geometry().Lines(); line++ {
		if err := tr.VerifyPath(e, guaddr, line); err != nil {
			t.Fatalf("VerifyPath(%d): %v", line, err)
		}
	}
}

func TestTamperCounterDetected(t *testing.T) {
	e := testEngine()
	tr := mustNew(smallGeo(), e, guaddr)
	tr.Update(e, guaddr, 0)
	n := tr.Node(2, 0) // attacker bumps a leaf counter in the meta-zone
	n.SetLocal(0, n.Local(0)+1)
	if err := tr.VerifyPath(e, guaddr, 0); !errors.Is(err, ErrIntegrity) {
		t.Fatalf("tampered counter not detected: %v", err)
	}
}

func TestTamperGlobalCounterDetected(t *testing.T) {
	e := testEngine()
	tr := mustNew(smallGeo(), e, guaddr)
	tr.Node(1, 0).SetGlobal(42)
	if err := tr.VerifyPath(e, guaddr, 0); !errors.Is(err, ErrIntegrity) {
		t.Fatalf("tampered global counter not detected: %v", err)
	}
}

func TestTamperMACDetected(t *testing.T) {
	e := testEngine()
	tr := mustNew(smallGeo(), e, guaddr)
	n := tr.Node(0, 0)
	n.SetMAC(n.MAC() ^ 1)
	if err := tr.VerifyAll(e, guaddr); !errors.Is(err, ErrIntegrity) {
		t.Fatalf("tampered MAC not detected: %v", err)
	}
}

func TestReplayedNodeDetected(t *testing.T) {
	// An attacker records a node (counters+MAC) and restores it after a
	// later legitimate update. The restored node is self-consistent but its
	// parent counter has moved on, so the path check must fail.
	e := testEngine()
	tr := mustNew(smallGeo(), e, guaddr)
	tr.Update(e, guaddr, 0)
	saved := tr.AppendNode(nil, 2, 0) // recorded node bytes (counters+MAC)

	tr.Update(e, guaddr, 0) // legitimate second write

	if err := tr.SetNodeFromBytes(2, 0, saved); err != nil {
		t.Fatal(err)
	}
	if err := tr.VerifyPath(e, guaddr, 0); !errors.Is(err, ErrIntegrity) {
		t.Fatalf("replayed stale node not detected: %v", err)
	}
}

func TestWrongAddressDetected(t *testing.T) {
	// The same tree bytes interpreted at a different global-unique address
	// must not verify (anti-splicing across the integrity forest).
	e := testEngine()
	tr := mustNew(smallGeo(), e, guaddr)
	if err := tr.VerifyAll(e, guaddr+1); !errors.Is(err, ErrIntegrity) {
		t.Fatalf("tree verified at wrong address: %v", err)
	}
}

func TestWrongKeyDetected(t *testing.T) {
	e := testEngine()
	tr := mustNew(smallGeo(), e, guaddr)
	other := crypt.NewEngine(crypt.KeyFromBytes([]byte("other-key")))
	if err := tr.VerifyAll(other, guaddr); !errors.Is(err, ErrIntegrity) {
		t.Fatalf("tree verified under wrong key: %v", err)
	}
}

func TestLeafOverflowReencryptsSiblingLines(t *testing.T) {
	e := testEngine()
	geo := Geometry{Arities: []int{2, 4}, LocalBits: 2} // locals wrap at 3
	tr := mustNew(geo, e, guaddr)
	var res UpdateResult
	overflowed := false
	for i := 0; i < 4; i++ {
		res = tr.Update(e, guaddr, 0)
		if res.Overflowed {
			overflowed = true
			break
		}
	}
	if !overflowed {
		t.Fatal("no overflow after wrapping local counter")
	}
	// Leaf 0 covers lines 0..3; all but the written line must be re-encrypted.
	want := map[int]bool{1: true, 2: true, 3: true}
	if len(res.ReencryptLines) != len(want) {
		t.Fatalf("ReencryptLines = %v", res.ReencryptLines)
	}
	for _, ln := range res.ReencryptLines {
		if !want[ln] {
			t.Fatalf("unexpected re-encrypt line %d", ln)
		}
	}
	if err := tr.VerifyAll(e, guaddr); err != nil {
		t.Fatalf("tree invalid after overflow: %v", err)
	}
	// Global counter advanced: effective counter continues to grow.
	if got := tr.LeafCounter(0); got != 4 {
		t.Fatalf("leaf counter after overflow = %d, want 4", got)
	}
}

func TestInteriorOverflowRehashesChildren(t *testing.T) {
	e := testEngine()
	geo := Geometry{Arities: []int{2, 2, 2}, LocalBits: 1} // locals wrap at 1
	tr := mustNew(geo, e, guaddr)
	for i := 0; i < 8; i++ {
		tr.Update(e, guaddr, i%geo.Lines())
		if err := tr.VerifyAll(e, guaddr); err != nil {
			t.Fatalf("tree invalid after update %d: %v", i, err)
		}
	}
}

func TestCounterMonotonicProperty(t *testing.T) {
	e := testEngine()
	geo := Geometry{Arities: []int{2, 3, 4}, LocalBits: 3}
	tr := mustNew(geo, e, guaddr)
	f := func(lines []uint8) bool {
		prevRoot := tr.RootCounter()
		for _, l := range lines {
			line := int(l) % geo.Lines()
			before := tr.LeafCounter(line)
			res := tr.Update(e, guaddr, line)
			if res.LeafCounter <= before {
				return false // per-line counter must strictly increase
			}
			if tr.RootCounter() <= prevRoot {
				return false // root counter must strictly increase
			}
			prevRoot = tr.RootCounter()
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestSerializeRoundTrip(t *testing.T) {
	e := testEngine()
	tr := mustNew(smallGeo(), e, guaddr)
	for i := 0; i < 10; i++ {
		tr.Update(e, guaddr, i%tr.Geometry().Lines())
	}
	blob := tr.Serialize()
	if len(blob) != tr.Geometry().NodesSize() {
		t.Fatalf("serialized %d bytes, want %d", len(blob), tr.Geometry().NodesSize())
	}
	back, err := Deserialize(tr.Geometry(), blob)
	if err != nil {
		t.Fatal(err)
	}
	back.SetRootCounter(tr.RootCounter())
	if err := back.VerifyAll(e, guaddr); err != nil {
		t.Fatalf("deserialized tree does not verify: %v", err)
	}
	if back.LeafCounter(0) != tr.LeafCounter(0) {
		t.Fatal("leaf counters differ after round trip")
	}
}

func TestDeserializeRejectsWrongSize(t *testing.T) {
	if _, err := Deserialize(smallGeo(), make([]byte, 10)); err == nil {
		t.Fatal("wrong-size blob accepted")
	}
	if _, err := Deserialize(Geometry{}, nil); err == nil {
		t.Fatal("invalid geometry accepted")
	}
}

func TestDeserializedStaleRootRejected(t *testing.T) {
	// Replay of old tree nodes with the current root counter fails: the top
	// node MAC is keyed by the root counter, which has since advanced.
	e := testEngine()
	tr := mustNew(smallGeo(), e, guaddr)
	stale := tr.Serialize()
	tr.Update(e, guaddr, 0)

	back, err := Deserialize(tr.Geometry(), stale)
	if err != nil {
		t.Fatal(err)
	}
	back.SetRootCounter(tr.RootCounter()) // current (newer) root counter
	if err := back.VerifyAll(e, guaddr); !errors.Is(err, ErrIntegrity) {
		t.Fatalf("stale nodes verified under new root counter: %v", err)
	}
}

func TestSetRootCounterRequiresRehash(t *testing.T) {
	e := testEngine()
	tr := mustNew(smallGeo(), e, guaddr)
	tr.SetRootCounter(100)
	if err := tr.VerifyAll(e, guaddr); !errors.Is(err, ErrIntegrity) {
		t.Fatal("root counter change without rehash still verifies")
	}
	tr.RehashAll(e, guaddr)
	if err := tr.VerifyAll(e, guaddr); err != nil {
		t.Fatalf("rehash after SetRootCounter: %v", err)
	}
}

func TestCloneIndependent(t *testing.T) {
	e := testEngine()
	tr := mustNew(smallGeo(), e, guaddr)
	cl := tr.Clone()
	tr.Update(e, guaddr, 0)
	if cl.RootCounter() != 0 || cl.LeafCounter(0) != 0 {
		t.Fatal("clone shares state with original")
	}
	if err := cl.VerifyAll(e, guaddr); err != nil {
		t.Fatalf("clone does not verify: %v", err)
	}
}

func TestPaperGeometryEndToEnd(t *testing.T) {
	// A real 3-level (2 MB) tree: build, update a few lines, verify.
	if testing.Short() {
		t.Skip("2MB tree in -short mode")
	}
	e := testEngine()
	tr := mustNew(ForLevels(3), e, guaddr)
	for _, line := range []int{0, 1, 63, 64, 2047, 2048, 32767} {
		res := tr.Update(e, guaddr, line)
		if res.LeafCounter != 1 {
			t.Fatalf("line %d leaf counter = %d", line, res.LeafCounter)
		}
		if err := tr.VerifyPath(e, guaddr, line); err != nil {
			t.Fatal(err)
		}
	}
	if tr.RootCounter() != 7 {
		t.Fatalf("root counter = %d, want 7", tr.RootCounter())
	}
}

func BenchmarkUpdate3Level(b *testing.B) {
	e := testEngine()
	tr := mustNew(ForLevels(3), e, guaddr)
	lines := tr.Geometry().Lines()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Update(e, guaddr, i%lines)
	}
}

func BenchmarkVerifyPath3Level(b *testing.B) {
	e := testEngine()
	tr := mustNew(ForLevels(3), e, guaddr)
	lines := tr.Geometry().Lines()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := tr.VerifyPath(e, guaddr, i%lines); err != nil {
			b.Fatal(err)
		}
	}
}

// benchVerifyPath measures VerifyPath over a cycling line set for an
// arbitrary geometry. Heights 5 and 7 use narrow interior arities: the
// paper geometry at those heights would cover gigabytes of data, and the
// benchmark measures path length, not fan-out.
func benchVerifyPath(b *testing.B, geo Geometry) {
	b.Helper()
	e := testEngine()
	tr := mustNew(geo, e, guaddr)
	lines := tr.Geometry().Lines()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := tr.VerifyPath(e, guaddr, i%lines); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkVerifyPath(b *testing.B) {
	b.Run("h3", func(b *testing.B) { benchVerifyPath(b, ForLevels(3)) })
	b.Run("h5", func(b *testing.B) { benchVerifyPath(b, Geometry{Arities: []int{4, 4, 4, 4, 64}}) })
	b.Run("h7", func(b *testing.B) { benchVerifyPath(b, Geometry{Arities: []int{2, 2, 2, 2, 2, 2, 64}}) })
}
