package main

// Experiment checkpointing: -checkpoint <dir> journals every finished
// experiment (name + rendered output) into an mmt-store/v1 two-file
// store, committing after each one; -resume skips experiments the store
// already holds and reprints their stored output byte-identically. A
// crash mid-run therefore loses at most the experiment in flight — the
// same crash-consistency protocol the cluster checkpoints use, applied
// to a long evaluation sweep.

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"

	"mmt/internal/store"
)

// recExperiment is the record type for one completed experiment (the
// snapshot record types 1-5 are reserved by the mmt package).
const recExperiment store.RecordType = 16

// benchStore accumulates completed experiments over an mmt-store/v1 log.
type benchStore struct {
	st    *store.Store
	done  map[string]string // name -> rendered output
	order []string          // completion order, for the commit hash
}

// openBenchStore opens (or creates) the checkpoint store. With resume
// the committed experiments are loaded for skipping; without it a store
// that already holds results is refused so two sweeps cannot silently
// interleave.
func openBenchStore(dir string, resume bool) (*benchStore, error) {
	st, err := store.Open(store.Dir{Path: dir})
	if err != nil {
		return nil, err
	}
	b := &benchStore{st: st, done: map[string]string{}}
	if !st.HasCommit() {
		return b, nil
	}
	if !resume {
		st.Close()
		return nil, fmt.Errorf("checkpoint store %q already holds committed results (epoch %d); pass -resume to continue it", dir, st.Epoch())
	}
	recs, err := st.CommittedRecords()
	if err != nil {
		st.Close()
		return nil, err
	}
	for i, r := range recs {
		if r.Type != recExperiment {
			st.Close()
			return nil, fmt.Errorf("checkpoint store %q record %d has unexpected type %d", dir, i, r.Type)
		}
		name, out, err := decodeExperimentRec(r.Payload)
		if err != nil {
			st.Close()
			return nil, fmt.Errorf("checkpoint store %q record %d: %w", dir, i, err)
		}
		if _, dup := b.done[name]; !dup {
			b.order = append(b.order, name)
		}
		b.done[name] = out
	}
	return b, nil
}

// resumed returns the stored output for name, if the experiment already
// completed in a previous run.
func (b *benchStore) resumed(name string) (string, bool) {
	out, ok := b.done[name]
	return out, ok
}

// complete journals one finished experiment and commits: after this
// returns, the result is durable.
func (b *benchStore) complete(name, output string) error {
	if err := b.st.Append(store.Record{Type: recExperiment, Payload: encodeExperimentRec(name, output)}); err != nil {
		return err
	}
	if _, dup := b.done[name]; !dup {
		b.order = append(b.order, name)
	}
	b.done[name] = output
	_, err := b.st.Commit(b.hash())
	return err
}

func (b *benchStore) close() error { return b.st.Close() }

// hash pins the commit to the full completed-result set, in completion
// order — reopening verifies the log replays to exactly this state.
func (b *benchStore) hash() [32]byte {
	h := sha256.New()
	for _, name := range b.order {
		h.Write(encodeExperimentRec(name, b.done[name]))
	}
	var out [32]byte
	h.Sum(out[:0])
	return out
}

func encodeExperimentRec(name, output string) []byte {
	buf := binary.LittleEndian.AppendUint32(nil, uint32(len(name)))
	buf = append(buf, name...)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(output)))
	buf = append(buf, output...)
	return buf
}

func decodeExperimentRec(p []byte) (name, output string, err error) {
	take := func(what string) (string, error) {
		if len(p) < 4 {
			return "", fmt.Errorf("truncated %s length", what)
		}
		n := int(binary.LittleEndian.Uint32(p))
		p = p[4:]
		if n < 0 || n > len(p) {
			return "", fmt.Errorf("%s length %d exceeds %d payload bytes", what, n, len(p))
		}
		s := string(p[:n])
		p = p[n:]
		return s, nil
	}
	if name, err = take("name"); err != nil {
		return "", "", err
	}
	if output, err = take("output"); err != nil {
		return "", "", err
	}
	if len(p) != 0 {
		return "", "", fmt.Errorf("%d trailing bytes", len(p))
	}
	return name, output, nil
}
