package tree

import (
	"testing"

	"mmt/internal/crypt"
)

// TestVerifyUpdateAllocFree pins the steady-state integrity-tree paths at
// zero allocations per access: VerifyPath (read path), Update without
// overflow (write path) and LeafCounter. The batched NodeMACBatch verify
// and the tree scratch exist for exactly this.
func TestVerifyUpdateAllocFree(t *testing.T) {
	e := crypt.NewEngine(crypt.KeyFromBytes([]byte("alloc")))
	const guaddr = 0x9000
	tr, err := New(ForLevels(3), e, guaddr)
	if err != nil {
		t.Fatal(err)
	}
	// Warm the lazily-sized scratch buffers.
	if err := tr.VerifyPath(e, guaddr, 0); err != nil {
		t.Fatal(err)
	}
	tr.Update(e, guaddr, 0)

	line := 1
	var ctr uint64
	allocs := testing.AllocsPerRun(100, func() {
		if err := tr.VerifyPath(e, guaddr, line); err != nil {
			t.Fatal(err)
		}
		res := tr.Update(e, guaddr, line)
		if res.Overflowed {
			t.Fatal("unexpected overflow in alloc test")
		}
		ctr ^= tr.LeafCounter(line)
	})
	if allocs != 0 {
		t.Fatalf("verify/update path allocated %.1f times per access, want 0", allocs)
	}
	_ = ctr
}

// TestIdleTreeAllocsConstant pins the flat-arena storage guarantee: a
// freshly built tree costs a constant number of heap allocations (the
// counter plane, MAC plane, dirty bitset, mask caches and index tables),
// independent of how many nodes the geometry has. The old per-node
// layout allocated one Local slice per node — 529 allocations for the
// 3-level paper tree; the arena brings that to O(1).
func TestIdleTreeAllocsConstant(t *testing.T) {
	e := crypt.NewEngine(crypt.KeyFromBytes([]byte("idle")))
	const guaddr = 0x9200
	build := func(geo Geometry) float64 {
		return testing.AllocsPerRun(10, func() {
			if _, err := New(geo, e, guaddr); err != nil {
				t.Fatal(err)
			}
		})
	}
	small := build(Geometry{Arities: []int{2, 3, 4}}) // 1+2+6 = 9 nodes
	big := build(ForLevels(3))                        // 1+16+512 = 529 nodes
	if small != big {
		t.Fatalf("tree allocations scale with node count: %v (9 nodes) vs %v (529 nodes)", small, big)
	}
	// The exact count is implementation detail; the bound guards against a
	// regression back to per-node heap objects.
	if big > 16 {
		t.Fatalf("idle tree costs %v allocations, want O(1) (<= 16)", big)
	}
}

// TestBatchedVerifyMatchesPerNode: the batched VerifyPath agrees with
// node-by-node verification (verifyNode) on both healthy and tampered
// trees, including the identity of the reported node.
func TestBatchedVerifyMatchesPerNode(t *testing.T) {
	e := crypt.NewEngine(crypt.KeyFromBytes([]byte("batch")))
	const guaddr = 0x9100
	tr, err := New(ForLevels(3), e, guaddr)
	if err != nil {
		t.Fatal(err)
	}
	lines := []int{0, 1, 63, 64, 2047, tr.Geometry().Lines() - 1}
	for _, ln := range lines {
		if err := tr.VerifyPath(e, guaddr, ln); err != nil {
			t.Fatalf("line %d: healthy tree failed verify: %v", ln, err)
		}
	}
	// Tamper with one interior node; every line under it must fail, and the
	// error must name that node (level 1), matching serial leaf-to-root
	// order: the leaf verifies fine, level 1 is the first mismatch.
	n := tr.Node(1, 0)
	n.SetGlobal(n.Global() + 1)
	err = tr.VerifyPath(e, guaddr, 0)
	if err == nil {
		t.Fatal("tampered tree verified")
	}
	if got, want := err.Error(), "tree: integrity check failed: node level 2 index 0"; got != want {
		// Bumping an interior global changes that node's counters, which
		// breaks the MAC keyed over the *leaf* (its parent counter changed)
		// first in leaf-to-root order.
		t.Fatalf("error %q, want %q", got, want)
	}
}
