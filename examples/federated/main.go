// Federated aggregation: a parameter-server pattern over MMT delegation.
//
// A coordinator machine holds the global model in a secure buffer. Each
// round it broadcasts the model to every worker as an ownership *copy*
// (read-only snapshots; the coordinator keeps the writable original —
// §V-B2's send/receive mode), the workers compute updates in their own
// secure buffers and send them back as ownership *transfers* (the DAG
// mode), and the coordinator folds them in. All cross-machine bytes are
// MMT closures: never re-encrypted in software, never visible in
// plaintext on the wire.
//
//	go run ./examples/federated
package main

import (
	"encoding/binary"
	"fmt"
	"log"
	"math"

	"mmt"
)

const (
	workers = 3
	dims    = 64
	rounds  = 3
)

func encode(v []float64) []byte {
	out := make([]byte, 8*len(v))
	for i, x := range v {
		binary.LittleEndian.PutUint64(out[i*8:], math.Float64bits(x))
	}
	return out
}

func decode(b []byte) []float64 {
	out := make([]float64, len(b)/8)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[i*8:]))
	}
	return out
}

func main() {
	cluster, err := mmt.New(mmt.WithTreeLevels(2), mmt.WithRegions(12))
	if err != nil {
		log.Fatal(err)
	}
	server, err := cluster.AddMachine("server")
	if err != nil {
		log.Fatal(err)
	}
	coordinator := server.Spawn("coordinator", []byte("aggregator-v1"))

	type worker struct {
		enclave *mmt.Enclave
		link    *mmt.Link
	}
	var ws []worker
	for i := 0; i < workers; i++ {
		m, err := cluster.AddMachine(fmt.Sprintf("worker-%d", i))
		if err != nil {
			log.Fatal(err)
		}
		e := m.Spawn("trainer", []byte("trainer-v1"))
		link, err := cluster.Connect(coordinator, e)
		if err != nil {
			log.Fatal(err)
		}
		ws = append(ws, worker{enclave: e, link: link})
	}

	model := make([]float64, dims)
	for round := 1; round <= rounds; round++ {
		// Broadcast: one read-only copy per worker.
		for _, w := range ws {
			buf, err := w.link.NewBuffer(coordinator)
			if err != nil {
				log.Fatal(err)
			}
			if err := buf.Write(0, encode(model)); err != nil {
				log.Fatal(err)
			}
			if err := w.link.Delegate(buf, mmt.OwnershipCopy); err != nil {
				log.Fatal(err)
			}
			if err := buf.Free(); err != nil { // coordinator's copy, done with it
				log.Fatal(err)
			}
		}
		// Workers: read the snapshot, compute an update, send it back.
		for wi, w := range ws {
			snap, err := w.link.Receive(w.enclave)
			if err != nil {
				log.Fatal(err)
			}
			data, err := snap.Read(0, 8*dims)
			if err != nil {
				log.Fatal(err)
			}
			local := decode(data)
			if err := snap.Free(); err != nil {
				log.Fatal(err)
			}
			// "Training": each worker nudges a disjoint slice of the model.
			update := make([]float64, dims)
			for d := wi; d < dims; d += workers {
				update[d] = local[d]*0.5 + float64(round)
			}
			out, err := w.link.NewBuffer(w.enclave)
			if err != nil {
				log.Fatal(err)
			}
			if err := out.Write(0, encode(update)); err != nil {
				log.Fatal(err)
			}
			if err := w.link.Delegate(out, mmt.OwnershipTransfer); err != nil {
				log.Fatal(err)
			}
		}
		// Aggregate.
		for _, w := range ws {
			got, err := w.link.Receive(coordinator)
			if err != nil {
				log.Fatal(err)
			}
			data, err := got.Read(0, 8*dims)
			if err != nil {
				log.Fatal(err)
			}
			for d, x := range decode(data) {
				if x != 0 {
					model[d] = x
				}
			}
			if err := got.Free(); err != nil {
				log.Fatal(err)
			}
		}
		norm := 0.0
		for _, x := range model {
			norm += x * x
		}
		fmt.Printf("round %d complete: model norm %.3f, server clock %v\n",
			round, math.Sqrt(norm), server.Clock().Now())
	}
	fmt.Printf("\n%d rounds, %d workers: every model and update crossed machines as an MMT closure.\n", rounds, workers)
}
