package mmt

import (
	"bytes"
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// quickstartTraced runs the package-doc tour (two machines, one 64K
// buffer, one ownership transfer) on a traced cluster and returns the
// sink and cluster.
func quickstartTraced(t *testing.T) (*TraceSink, *Cluster) {
	t.Helper()
	sink := NewTraceSink()
	c, err := New(WithTreeLevels(2), WithRegions(6), WithTracing(sink))
	if err != nil {
		t.Fatal(err)
	}
	alice, err := c.AddMachine("alice")
	if err != nil {
		t.Fatal(err)
	}
	bob, err := c.AddMachine("bob")
	if err != nil {
		t.Fatal(err)
	}
	producer := alice.Spawn("producer", []byte("app"))
	consumer := bob.Spawn("consumer", []byte("app"))
	link, err := c.Connect(producer, consumer)
	if err != nil {
		t.Fatal(err)
	}
	buf, err := link.NewBuffer(producer)
	if err != nil {
		t.Fatal(err)
	}
	if err := buf.Write(0, []byte("secret bytes")); err != nil {
		t.Fatal(err)
	}
	if err := link.Delegate(buf, OwnershipTransfer); err != nil {
		t.Fatal(err)
	}
	got, err := link.Receive(consumer)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := got.Read(0, 12); err != nil {
		t.Fatal(err)
	}
	return sink, c
}

// TestChromeTraceGoldenQuickstart pins the exporter's output for the
// quickstart run against a committed golden file (regenerate with
// `go test -run Golden -update .`). No normalization: since attestation
// signatures moved to the fixed-length r||s encoding, every wire message
// in the handshake — and therefore every counter in the trace — is
// length-stable across runs.
func TestChromeTraceGoldenQuickstart(t *testing.T) {
	sink, _ := quickstartTraced(t)
	var out bytes.Buffer
	if err := sink.WriteChromeTrace(&out); err != nil {
		t.Fatal(err)
	}
	got := out.Bytes()

	golden := filepath.Join("testdata", "quickstart_trace.golden.json")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("chrome trace deviates from golden file (run with -update if intended)\ngot:\n%s", got)
	}
}

// TestChromeTraceDeterminism runs the quickstart twice on fresh clusters:
// the exports must be byte-identical with no normalization — the trace is
// a pure function of the simulated run, and fixed-length signatures keep
// even the handshake wire counters stable.
func TestChromeTraceDeterminism(t *testing.T) {
	var runs [2][]byte
	for i := range runs {
		sink, _ := quickstartTraced(t)
		var a, b bytes.Buffer
		if err := sink.WriteChromeTrace(&a); err != nil {
			t.Fatal(err)
		}
		if err := sink.WriteChromeTrace(&b); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a.Bytes(), b.Bytes()) {
			t.Fatal("re-exporting the same sink changed the output")
		}
		runs[i] = a.Bytes()
	}
	if !bytes.Equal(runs[0], runs[1]) {
		t.Fatal("two identical simulated runs produced different traces")
	}
}

// TestCausalGoldenQuickstart pins the causal span-tree export (what
// `quickstart -causal` writes) against a committed golden file
// (regenerate with `go test -run Golden -update .`). The quickstart has
// exactly two causal roots — the connect handshake and the delegation —
// and both span trees cross machines.
func TestCausalGoldenQuickstart(t *testing.T) {
	sink, _ := quickstartTraced(t)
	var out bytes.Buffer
	if err := sink.WriteCausalJSON(&out); err != nil {
		t.Fatal(err)
	}
	got := out.Bytes()

	golden := filepath.Join("testdata", "quickstart_causal.golden.json")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("causal export deviates from golden file (run with -update if intended)\ngot:\n%s", got)
	}
}

// TestClusterTraces checks the public causal-trace snapshot: the
// quickstart yields one connect tree rooted at alice and one migration
// tree rooted at alice, every child span nests inside its root's
// interval, and both trees reach bob.
func TestClusterTraces(t *testing.T) {
	_, c := quickstartTraced(t)
	traces := c.Traces()
	if len(traces) != 2 {
		t.Fatalf("want 2 causal traces (connect + migration), got %d", len(traces))
	}
	for _, tr := range traces {
		if tr.ID.Proc != "alice" {
			t.Errorf("trace %s not rooted at the initiator", tr.ID)
		}
		if len(tr.Spans) == 0 || tr.Spans[0].Parent != 0 {
			t.Fatalf("trace %s: first span is not the root: %+v", tr.ID, tr.Spans)
		}
		root := tr.Spans[0]
		crossed := false
		for _, sp := range tr.Spans[1:] {
			if sp.Parent == 0 {
				t.Errorf("trace %s: second root span %d", tr.ID, sp.Span)
			}
			if sp.Begin < root.Begin || sp.End > root.End {
				t.Errorf("trace %s: span %d [%v,%v] escapes root [%v,%v]",
					tr.ID, sp.Span, sp.Begin, sp.End, root.Begin, root.End)
			}
			if sp.Proc == "bob" {
				crossed = true
			}
		}
		if !crossed {
			t.Errorf("trace %s never reached bob", tr.ID)
		}
	}
}

// TestClusterMetrics checks the public metrics snapshot after the tour.
func TestClusterMetrics(t *testing.T) {
	_, c := quickstartTraced(t)
	m := c.Metrics()
	if len(m.Procs) != 2 || m.Procs[0].Proc != "alice" || m.Procs[1].Proc != "bob" {
		t.Fatalf("want [alice bob], got %+v", m.Procs)
	}
	if got := m.Counter(CtrClosuresSent); got != 1 {
		t.Fatalf("closures sent = %d, want 1", got)
	}
	if got := m.Counter(CtrClosuresAccepted); got != 1 {
		t.Fatalf("closures accepted = %d, want 1", got)
	}
	if m.Counter(CtrWireBytesClosure) == 0 || m.Counter(CtrWireMsgsClosure) != 1 {
		t.Fatal("closure wire traffic not recorded")
	}
	if m.PhaseCycles(PhaseDelegation) == 0 || m.PhaseCycles(PhaseDMA) == 0 {
		t.Fatal("delegation phases not recorded")
	}
	if m.TotalCycles() <= 0 {
		t.Fatal("no cycles recorded")
	}
	if !strings.Contains(m.String(), "== alice ==") {
		t.Fatalf("summary misses alice:\n%s", m.String())
	}
}

// TestUntracedClusterMetricsEmpty: without WithTracing, Metrics is empty
// and the sink accessor reports nil.
func TestUntracedClusterMetricsEmpty(t *testing.T) {
	c := smallCluster(t)
	if _, err := c.AddMachine("solo"); err != nil {
		t.Fatal(err)
	}
	if c.TraceSink() != nil {
		t.Fatal("untraced cluster has a sink")
	}
	if m := c.Metrics(); len(m.Procs) != 0 || m.TotalCycles() != 0 {
		t.Fatalf("untraced metrics not empty: %+v", m)
	}
}

// TestBufferStats checks the buffer snapshot accessor across a transfer.
func TestBufferStats(t *testing.T) {
	c := smallCluster(t)
	alice, err := c.AddMachine("alice")
	if err != nil {
		t.Fatal(err)
	}
	bob, err := c.AddMachine("bob")
	if err != nil {
		t.Fatal(err)
	}
	link, err := c.Connect(alice.Spawn("p", nil), bob.Spawn("q", nil))
	if err != nil {
		t.Fatal(err)
	}
	buf, err := link.NewBuffer(link.Sender())
	if err != nil {
		t.Fatal(err)
	}
	st, err := buf.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Machine != "alice" || st.Size != buf.Size() || st.Mode != "read-write" || st.ReadOnly {
		t.Fatalf("bad stats: %+v", st)
	}
	if !strings.Contains(st.String(), "buffer{alice") {
		t.Fatalf("bad String: %s", st.String())
	}
	before := st.RootCounter
	if err := buf.Write(0, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := link.Delegate(buf, OwnershipTransfer); err != nil {
		t.Fatal(err)
	}
	got, err := link.Receive(link.Receiver())
	if err != nil {
		t.Fatal(err)
	}
	st2, err := got.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st2.Machine != "bob" || st2.RootCounter <= before {
		t.Fatalf("post-transfer stats wrong: %+v (sender counter was %d)", st2, before)
	}
}

// TestMidRunSnapshotConsistency drives a stream of delegations while a
// concurrent observer goroutine polls Metrics() and Events() (the /debug
// server's access pattern). Every snapshot must be internally consistent
// — histogram bucket sums match counts, ledger sequence numbers strictly
// increase, cycle totals never go backwards — and must be a detached
// copy: mutating a returned snapshot never leaks into later ones. Run
// with -race this also proves the sink's locking discipline.
// BufferStats snapshots are taken on the driving goroutine (buffers are
// single-owner objects; only the trace accessors are concurrency-safe).
func TestMidRunSnapshotConsistency(t *testing.T) {
	sink := NewTraceSink()
	c, err := New(WithTreeLevels(2), WithRegions(8), WithTracing(sink))
	if err != nil {
		t.Fatal(err)
	}
	alice, err := c.AddMachine("alice")
	if err != nil {
		t.Fatal(err)
	}
	bob, err := c.AddMachine("bob")
	if err != nil {
		t.Fatal(err)
	}
	link, err := c.Connect(alice.Spawn("p", nil), bob.Spawn("q", nil))
	if err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	obsErr := make(chan error, 1)
	go func() {
		var lastTotal float64
		for {
			m := c.Metrics()
			for i := range m.Procs {
				p := &m.Procs[i]
				for op := range p.Ops {
					h := &p.Ops[op]
					var n uint64
					for _, b := range h.Buckets {
						n += b
					}
					if n != h.Count {
						obsErr <- fmt.Errorf("proc %s op %d: bucket sum %d != count %d", p.Proc, op, n, h.Count)
						return
					}
					if h.Count > 0 && h.Min > h.Max {
						obsErr <- fmt.Errorf("proc %s op %d: min %v > max %v", p.Proc, op, h.Min, h.Max)
						return
					}
				}
			}
			if tot := float64(m.TotalCycles()); tot < lastTotal {
				obsErr <- fmt.Errorf("cycle total went backwards: %v -> %v", lastTotal, tot)
				return
			} else {
				lastTotal = tot
			}
			evs := c.Events()
			for i := range evs {
				if evs[i].Detail == "poisoned by observer" {
					obsErr <- fmt.Errorf("mutated snapshot leaked into the live ledger")
					return
				}
				if i > 0 && evs[i].Seq <= evs[i-1].Seq {
					obsErr <- fmt.Errorf("ledger seq not increasing: %d after %d", evs[i].Seq, evs[i-1].Seq)
					return
				}
			}
			// Poison the copies; later snapshots must not see it.
			for i := range evs {
				evs[i].Detail = "poisoned by observer"
			}
			for i := range m.Procs {
				m.Procs[i].Ops[0].Count += 1 << 40
				m.Procs[i].Cycles[0] += 1e12
			}
			select {
			case <-stop:
				obsErr <- nil
				return
			default:
			}
		}
	}()

	for round := 0; round < 6; round++ {
		buf, err := link.NewBuffer(link.Sender())
		if err != nil {
			t.Fatal(err)
		}
		if err := buf.Write(0, []byte("round")); err != nil {
			t.Fatal(err)
		}
		st, err := buf.Stats()
		if err != nil {
			t.Fatal(err)
		}
		if st.Machine != "alice" || st.Mode != "read-write" {
			t.Fatalf("round %d: bad pre-transfer stats: %+v", round, st)
		}
		if err := link.Delegate(buf, OwnershipTransfer); err != nil {
			t.Fatal(err)
		}
		got, err := link.Receive(link.Receiver())
		if err != nil {
			t.Fatal(err)
		}
		st2, err := got.Stats()
		if err != nil {
			t.Fatal(err)
		}
		if st2.Machine != "bob" {
			t.Fatalf("round %d: bad post-transfer stats: %+v", round, st2)
		}
		if err := got.Free(); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	if err := <-obsErr; err != nil {
		t.Fatal(err)
	}
	// The poisoned copies never reached the sink: the final snapshot's
	// totals are sane (a leaked 1e12-cycle bump would dwarf the run).
	if tot := float64(c.Metrics().TotalCycles()); tot > 1e11 {
		t.Fatalf("cycle total %v suggests a poisoned snapshot leaked back", tot)
	}
}

// TestOptionsValidateEagerly: every With* option rejects bad input at
// construction time with a descriptive error, never at first use.
func TestOptionsValidateEagerly(t *testing.T) {
	cases := []struct {
		name string
		opt  Option
	}{
		{"nil profile", WithProfile(nil)},
		{"levels too low", WithTreeLevels(1)},
		{"levels too high", WithTreeLevels(5)},
		{"zero regions", WithRegions(0)},
		{"negative latency", WithNetLatency(-1)},
		{"nil sink", WithTracing(nil)},
		{"empty debug addr", WithDebugServer("")},
		{"empty store path", WithStore("")},
		{"nil option", nil},
	}
	for _, tc := range cases {
		if _, err := New(tc.opt); err == nil {
			t.Errorf("%s: New accepted invalid option", tc.name)
		}
	}
	// Defaults still resolve when no options are given.
	c, err := New(WithTreeLevels(2), WithRegions(6))
	if err != nil {
		t.Fatal(err)
	}
	if c.set.regions != 6 || c.set.profile.Name != "gem5" {
		t.Fatalf("options resolved wrong: %+v", c.set)
	}
}

// TestErrStaleCounter: acquiring a buffer, letting a later delegation
// move the connection's freshness floor past it, then delegating it must
// fail fast with ErrStaleCounter on the sender side — and the buffer
// must stay usable.
func TestErrStaleCounter(t *testing.T) {
	c := smallCluster(t)
	alice, err := c.AddMachine("alice")
	if err != nil {
		t.Fatal(err)
	}
	bob, err := c.AddMachine("bob")
	if err != nil {
		t.Fatal(err)
	}
	link, err := c.Connect(alice.Spawn("p", nil), bob.Spawn("q", nil))
	if err != nil {
		t.Fatal(err)
	}
	stale, err := link.NewBuffer(link.Sender())
	if err != nil {
		t.Fatal(err)
	}
	// Move the floor: delegate fresher buffers until one outruns stale's
	// next counter value.
	moved := false
	for i := 0; i < 4 && !moved; i++ {
		fresh, err := link.NewBuffer(link.Sender())
		if err != nil {
			t.Fatal(err)
		}
		if err := fresh.Write(0, []byte("fresh")); err != nil {
			t.Fatal(err)
		}
		if err := link.Delegate(fresh, OwnershipTransfer); err != nil {
			t.Fatal(err)
		}
		if _, err := link.Receive(link.Receiver()); err != nil {
			t.Fatal(err)
		}
		err = link.Delegate(stale, OwnershipTransfer)
		switch {
		case err == nil:
			t.Fatal("stale delegation unexpectedly accepted before floor moved")
		case errors.Is(err, ErrStaleCounter):
			moved = true
		default:
			t.Fatalf("unexpected delegation error: %v", err)
		}
	}
	if !moved {
		t.Fatal("never hit ErrStaleCounter")
	}
	// The sender-side check fires before any state mutation: the buffer
	// is still readable and writable.
	if err := stale.Write(0, []byte("still mine")); err != nil {
		t.Fatalf("stale buffer unusable after rejected delegation: %v", err)
	}
}
