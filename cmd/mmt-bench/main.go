// Command mmt-bench regenerates the paper's evaluation: every table and
// figure of "Efficient Distributed Secure Memory with Migratable Merkle
// Tree" (HPCA 2023), printed as text tables with the paper's published
// numbers alongside for comparison.
//
// Usage:
//
//	mmt-bench -exp all          # everything (minutes)
//	mmt-bench -exp table4       # Gem5 half of Table IV
//	mmt-bench -exp table4-intel # Intel/AES-NI half (slow: 128MB functional transfers)
//	mmt-bench -exp fig10a,fig11 # comma-separated selection
//	mmt-bench -list             # list experiments
//	mmt-bench -fig 10           # write the BENCH_fig10.json metrics sidecar
//	mmt-bench -fig 10,11 -out . # several sidecars into a directory
//	mmt-bench -fig 11 -parallel 8   # same bytes, less wall-clock
//	mmt-bench -wallclock -parallel 8 # write the BENCH_wallclock.json host-speed sidecar
//	mmt-bench -exp all -checkpoint ck        # commit each result durably as it lands
//	mmt-bench -exp all -checkpoint ck -resume # after a crash: reprint done, run the rest
//
// Sidecars are machine-readable companions to the rendered figures: the
// headline numbers plus the trace-layer breakdown (per-phase simulated
// cycles and counters) of the run that produced them. For figures that
// report cycle totals the per-phase cycles sum to the reported total
// exactly (check_total_cycles == phase_sum_cycles).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"

	"mmt/internal/bench"
	"mmt/internal/sim"
)

// experiment is one runnable table/figure.
type experiment struct {
	name string
	desc string
	run  func(opts opts) (string, error)
}

type opts struct {
	accesses int
}

var experiments = []experiment{
	{"table1", "interconnect throughput (Table I)", func(opts) (string, error) {
		return bench.RenderTable1(), nil
	}},
	{"config", "testbed configurations (Tables II/III)", func(opts) (string, error) {
		return bench.RenderConfigs(), nil
	}},
	{"table4", "secure channel vs MMT delegation, Gem5 (Table IV left)", func(opts) (string, error) {
		rows, err := bench.Table4Gem5()
		if err != nil {
			return "", err
		}
		return bench.RenderTable4("Table IV (Gem5)", sim.Gem5Profile(), rows), nil
	}},
	{"table4-intel", "secure channel vs MMT delegation, Intel AES-NI (Table IV right)", func(opts) (string, error) {
		rows, err := bench.Table4Intel()
		if err != nil {
			return "", err
		}
		return bench.RenderTable4("Table IV (Intel)", sim.IntelProfile(), rows), nil
	}},
	{"fig10a", "max throughput: AES-GCM vs RDMA vs MMT (Figure 10a)", func(opts) (string, error) {
		return bench.RenderFig10a(bench.Fig10a()), nil
	}},
	{"fig10b", "end-to-end latency vs network latency (Figure 10b)", func(opts) (string, error) {
		rows, err := bench.Fig10b()
		if err != nil {
			return "", err
		}
		return bench.RenderFig10b(rows), nil
	}},
	{"fig11", "SPEC-like overhead by tree level (Figure 11)", func(o opts) (string, error) {
		res, err := bench.Fig11(o.accesses)
		if err != nil {
			return "", err
		}
		return bench.RenderFig11(res), nil
	}},
	{"table5", "tree-level trade-offs (Table V)", func(o opts) (string, error) {
		_, rows, err := bench.Table5(nil)
		if err != nil {
			return "", err
		}
		return bench.RenderTable5(rows), nil
	}},
	{"fig12", "WordCount end-to-end by transferred size (Figure 12)", func(opts) (string, error) {
		rows, err := bench.Fig12()
		if err != nil {
			return "", err
		}
		return bench.RenderFig12(rows), nil
	}},
	{"fig13a", "MapReduce normalized performance by comm share (Figure 13a)", func(opts) (string, error) {
		rows, err := bench.Fig13a()
		if err != nil {
			return "", err
		}
		return bench.RenderFig13a(rows), nil
	}},
	{"fig13b", "MnRn scalability (Figure 13b)", func(opts) (string, error) {
		rows, err := bench.Fig13b()
		if err != nil {
			return "", err
		}
		return bench.RenderFig13b(rows), nil
	}},
	{"fig14", "PageRank under the GAS model (Figure 14)", func(opts) (string, error) {
		rows, cross, err := bench.Fig14(bench.DefaultFig14Config())
		if err != nil {
			return "", err
		}
		return bench.RenderFig14(rows, cross), nil
	}},
	{"ablation", "tree geometry and cache-size ablations (beyond the paper)", func(o opts) (string, error) {
		return bench.RenderAblations(o.accesses)
	}},
	{"extension", "counter-width and packet-loss extensions (beyond the paper)", func(o opts) (string, error) {
		return bench.RenderExtendedAblations()
	}},
}

func main() {
	exp := flag.String("exp", "all", "experiment(s) to run, comma separated, or 'all'")
	list := flag.Bool("list", false, "list experiments and exit")
	accesses := flag.Int("accesses", 0, "trace length for fig11/ablation (default 200000)")
	fig := flag.String("fig", "", "figure number(s): write BENCH_fig<N>.json metrics sidecar(s) and exit")
	series := flag.Bool("series", false, "with -fig: also write BENCH_fig<N>.series.json (mmt-series/v1) for figures that sample (fig 11)")
	out := flag.String("out", ".", "output directory for -fig sidecars")
	parallel := flag.Int("parallel", 1, "worker goroutines for figure sweeps (results are byte-identical at any setting)")
	wallclock := flag.Bool("wallclock", false, "write the BENCH_wallclock.json host-speed sidecar and exit")
	checkpoint := flag.String("checkpoint", "", "directory for the crash-consistent experiment checkpoint store")
	resume := flag.Bool("resume", false, "with -checkpoint: skip experiments already committed there and reprint their stored output")
	cpuprofile := flag.String("cpuprofile", "", "write a pprof CPU profile to FILE (relative paths land next to the sidecars in -out)")
	memprofile := flag.String("memprofile", "", "write a pprof heap profile to FILE at exit (relative paths land next to the sidecars in -out)")
	flag.Parse()

	bench.SetWorkers(*parallel)

	// Host-speed profiling (the ROADMAP's profile-driven item): the pprof
	// files describe the simulator itself, not the simulated machines, so
	// they sit beside the sidecars they explain.
	if *cpuprofile != "" {
		f, err := os.Create(profilePath(*out, *cpuprofile))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(profilePath(*out, *memprofile))
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return
			}
			defer f.Close()
			runtime.GC() // materialize the final live set
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, err)
			}
		}()
	}

	if *list {
		for _, e := range experiments {
			fmt.Printf("%-13s %s\n", e.name, e.desc)
		}
		return
	}

	if *wallclock {
		if err := writeWallclock(*out, *parallel, *accesses); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	if *fig != "" {
		if err := writeSidecars(*fig, *out, *accesses, *series); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	var bs *benchStore
	if *checkpoint != "" {
		var err error
		bs, err = openBenchStore(*checkpoint, *resume)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer bs.close()
	} else if *resume {
		fmt.Fprintln(os.Stderr, "-resume needs -checkpoint <dir>")
		os.Exit(2)
	}

	runExperiments(opts{accesses: *accesses}, *exp, bs)
}

// profilePath resolves a -cpuprofile/-memprofile argument: relative
// names land in the -out directory, next to the sidecars they explain.
func profilePath(dir, name string) string {
	if filepath.IsAbs(name) {
		return name
	}
	return filepath.Join(dir, name)
}

// writeSidecars emits BENCH_fig<N>.json for each requested figure and,
// with -series, the BENCH_fig<N>.series.json mmt-series/v1 companion
// for figures that sample (both from the same run).
func writeSidecars(figs, dir string, accesses int, series bool) error {
	for _, f := range strings.Split(figs, ",") {
		f = strings.TrimSpace(f)
		var (
			sc         *bench.Sidecar
			seriesData []byte
			err        error
		)
		if series {
			sc, seriesData, err = bench.SeriesForFigure(f, accesses)
		} else {
			sc, err = bench.SidecarForFigure(f, accesses)
		}
		if err != nil {
			return err
		}
		if err := sc.Check(); err != nil {
			return err
		}
		data, err := sc.JSON()
		if err != nil {
			return fmt.Errorf("fig %s: %w", f, err)
		}
		path := filepath.Join(dir, "BENCH_fig"+f+".json")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s (%d totals, %d traced procs, phase sum %.1f cycles)\n",
			path, len(sc.Totals), len(sc.Procs), float64(sc.PhaseSumCycles))
		if series {
			if seriesData == nil {
				fmt.Printf("fig %s does not sample; no series sidecar\n", f)
				continue
			}
			spath := filepath.Join(dir, "BENCH_fig"+f+".series.json")
			if err := os.WriteFile(spath, seriesData, 0o644); err != nil {
				return err
			}
			fmt.Printf("wrote %s (%d procs)\n", spath, len(sc.Series.Procs))
		}
	}
	return nil
}

// runExperiments runs the selected rendered tables/figures. With a
// checkpoint store, completed experiments come back from the store
// byte-identically and each fresh result is committed as soon as it
// renders.
func runExperiments(o opts, exp string, bs *benchStore) {
	selected := map[string]bool{}
	runAll := exp == "all"
	for _, name := range strings.Split(exp, ",") {
		selected[strings.TrimSpace(name)] = true
	}
	known := map[string]bool{}
	for _, e := range experiments {
		known[e.name] = true
	}
	var unknown []string
	for name := range selected {
		if !runAll && !known[name] {
			unknown = append(unknown, name)
		}
	}
	if len(unknown) > 0 {
		sort.Strings(unknown)
		fmt.Fprintf(os.Stderr, "unknown experiment(s): %s (use -list)\n", strings.Join(unknown, ", "))
		os.Exit(2)
	}

	failed := false
	for _, e := range experiments {
		if !runAll && !selected[e.name] {
			continue
		}
		if bs != nil {
			if out, done := bs.resumed(e.name); done {
				fmt.Fprintf(os.Stderr, "mmt-bench: %s resumed from checkpoint\n", e.name)
				fmt.Println(out)
				continue
			}
		}
		out, err := e.run(o)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", e.name, err)
			failed = true
			continue
		}
		if bs != nil {
			if err := bs.complete(e.name, out); err != nil {
				fmt.Fprintf(os.Stderr, "%s: checkpoint: %v\n", e.name, err)
				failed = true
			}
		}
		fmt.Println(out)
	}
	if failed {
		os.Exit(1)
	}
}
