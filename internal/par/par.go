// Package par is the repository's deterministic parallel runner: a
// bounded worker pool that fans independent work units across OS threads
// while keeping every observable output byte-identical to a serial run.
//
// The determinism contract (DESIGN.md §9) has two halves:
//
//   - The runner's half: results land in input order regardless of
//     completion order, the reported error is the one the serial loop
//     would have returned (lowest input index), and worker count never
//     influences the value of any result — only wall-clock time.
//   - The caller's half: each work unit must own all mutable simulation
//     state it touches. In this codebase that means a work unit builds
//     its own sim.Clock, Controller and trace.Sink (enforced by the
//     parclock analyzer in mmt-vet) and the caller merges per-unit sinks
//     serially in input order afterwards.
//
// Simulated time is unaffected by construction: simulated clocks are
// per-unit state, so cycle totals are a pure function of the inputs. Only
// host wall-clock time changes with the worker count.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Map applies fn to every item on up to workers goroutines and returns
// the results in input order. workers <= 0 means runtime.GOMAXPROCS(0);
// workers == 1 runs the plain serial loop with no goroutines at all.
//
// On error, Map returns the error of the lowest-indexed failing item —
// the same one the serial loop would return — and a nil result slice.
// Unlike the serial loop, items dispatched before the failure was
// observed still run to completion (their results are discarded), so fn
// must not have side effects outside its own work unit.
func Map[T, R any](workers int, items []T, fn func(int, T) (R, error)) ([]R, error) {
	n := len(items)
	if n == 0 {
		return nil, nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	out := make([]R, n)
	if workers == 1 {
		for i := range items {
			r, err := fn(i, items[i])
			if err != nil {
				return nil, err
			}
			out[i] = r
		}
		return out, nil
	}

	var (
		next    atomic.Int64 // next item index to dispatch
		stop    atomic.Bool  // set on first error: no new dispatches
		wg      sync.WaitGroup
		errs    = make([]error, n)
		errSeen atomic.Bool
	)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				if stop.Load() {
					return
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				r, err := fn(i, items[i])
				if err != nil {
					errs[i] = err
					errSeen.Store(true)
					stop.Store(true)
					continue
				}
				out[i] = r
			}
		}()
	}
	wg.Wait()
	if errSeen.Load() {
		// Items are dispatched in index order, so every index below the
		// lowest recorded error ran to completion without error; the
		// lowest recorded error is therefore exactly the serial one.
		for _, err := range errs {
			if err != nil {
				return nil, err
			}
		}
	}
	return out, nil
}

// ForEach applies fn to every item on up to workers goroutines, with the
// same ordering and error semantics as Map.
func ForEach[T any](workers int, items []T, fn func(int, T) error) error {
	_, err := Map(workers, items, func(i int, item T) (struct{}, error) {
		return struct{}{}, fn(i, item)
	})
	return err
}
