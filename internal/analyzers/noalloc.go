package analyzers

// The noalloc analyzer statically proves the repository's 0-allocs/op
// hot-path claims. A function whose doc comment carries a line
//
//	//mmt:hotpath
//
// promises that its steady-state execution performs no heap allocation —
// the modelled hardware data path certainly does not — and noalloc
// verifies the promise over the function and everything it statically
// calls within the module.
//
// Per function it builds the CFG and discards cold blocks: blocks from
// which every path ends in a panic or an error return. Error paths model
// tamper detection and caller bugs; the hardware never takes them in
// steady state, and the runtime benchmarks that cross-check this
// analyzer (BenchmarkReadInto et al.) never take them either. Hot blocks
// are then scanned for allocation sites:
//
//   - make, new, the builtin append (unless appending into reserved
//     capacity, below), slice/map/pointer composite literals
//   - string concatenation, []byte/string/[]rune conversions
//   - closures that capture variables, method values, go statements
//   - map assignment (rehash may allocate)
//   - interface boxing: passing, assigning or returning a concrete
//     non-pointer value where an interface is expected
//
// Calls from hot code are classified: static calls to module functions
// are traversed recursively (suppressing a call site with //mmt:allow
// noalloc prunes the walk — the idiom for amortized or slow-path
// callees); calls into a small whitelist of allocation-free stdlib
// packages (encoding/binary, math, math/bits, crypto/subtle, sync,
// sync/atomic) pass; any other stdlib call, dynamic function value or
// interface method call is a finding — except methods of crypto/cipher
// interfaces, whose stdlib implementations are allocation-free after
// construction and which the scratch-buffer design exists to serve.
//
// Reserved capacity: `s := buf[:0]` followed by `s = append(s, …)` is
// the caller-owned scratch idiom — append fills capacity reserved
// elsewhere. noalloc trusts the reslice and exempts such appends; the
// allocation site is the guarded make that reserves the capacity, which
// is still flagged (and suppressed with a justification where the
// amortization argument lives). The benchmarks remain the dynamic
// cross-check that the reserved capacity really is enough.
//
// Cross-package traversal sees only packages matched by the run's
// patterns: full coverage therefore requires running over ./..., which
// CI does. Callees in unmatched packages are skipped silently.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

var NoAlloc = &Analyzer{
	Name: "noalloc",
	ID:   "MMT008",
	Doc: "functions annotated //mmt:hotpath (and all module functions they " +
		"statically call) must contain no allocation sites on any path that " +
		"can reach a success exit; proves the 0-allocs/op benchmarks statically",
	RunModule: runNoAlloc,
}

// noallocStdlibOK lists stdlib packages whose exported functions do not
// allocate (for the call shapes this codebase uses).
var noallocStdlibOK = map[string]bool{
	"encoding/binary": true,
	"math":            true,
	"math/bits":       true,
	"crypto/subtle":   true,
	"sync":            true,
	"sync/atomic":     true,
}

// noallocIfaceOK lists packages whose interface methods are trusted not
// to allocate: cipher.Block.Encrypt/Decrypt write into caller buffers.
var noallocIfaceOK = map[string]bool{
	"crypto/cipher": true,
}

type noallocChecker struct {
	pass *ModulePass
	idx  *funcIndex
	// reported dedupes (pos, message) across traversals from different
	// hot roots.
	reported map[string]bool
	// visited functions, so shared callees are scanned once.
	visited map[funcKey]bool
	// reservedNow is the reserved-capacity locals of the function being
	// scanned (saved/restored around recursive traversal).
	reservedNow map[types.Object]bool
}

func runNoAlloc(pass *ModulePass) error {
	c := &noallocChecker{
		pass:     pass,
		idx:      buildFuncIndex(pass.Fset, pass.Units),
		reported: map[string]bool{},
		visited:  map[funcKey]bool{},
	}
	// Deterministic worklist: roots in index (position) order.
	for _, key := range c.idx.order {
		f := c.idx.funcs[key]
		if !inScope(f.unit.Pkg.Path()) || !isHotPath(f.decl) {
			continue
		}
		c.check(key, f)
	}
	return nil
}

// isHotPath reports whether decl's doc comment carries //mmt:hotpath.
func isHotPath(decl *ast.FuncDecl) bool {
	return hasDocDirective(decl, "//mmt:hotpath")
}

// isColdPath reports whether decl's doc comment carries //mmt:coldpath —
// the declaration-side opt-out: the function runs off the critical path
// (checkpointing, persistence, teardown) and the hot-path walk does not
// descend into it, however it is reached.
func isColdPath(decl *ast.FuncDecl) bool {
	return hasDocDirective(decl, "//mmt:coldpath")
}

func hasDocDirective(decl *ast.FuncDecl, directive string) bool {
	if decl.Doc == nil {
		return false
	}
	for _, ln := range decl.Doc.List {
		if strings.HasPrefix(strings.TrimSpace(ln.Text), directive) {
			return true
		}
	}
	return false
}

func (c *noallocChecker) reportf(pos token.Pos, format string, args ...any) {
	msg := fmt.Sprintf(format, args...)
	key := fmt.Sprintf("%d\x00%s", pos, msg)
	if c.reported[key] {
		return
	}
	c.reported[key] = true
	c.pass.Report(Diagnostic{Pos: pos, Message: msg})
}

// check scans one function's hot blocks and recurses into module callees.
func (c *noallocChecker) check(key funcKey, f *indexedFunc) {
	if c.visited[key] {
		return
	}
	c.visited[key] = true
	info := f.unit.TypesInfo
	cfg := buildCFG(f.decl.Body, func(call *ast.CallExpr) bool { return isPanicCall(info, call) })
	hot := cfg.hotBlocks(isErrorReturnFunc(f.unit, f.decl))

	// Collect call positions first: a method selector in call position is
	// a call, not an allocating method value.
	callFuns := map[ast.Expr]bool{}
	reserved := map[types.Object]bool{} // locals holding [:0]-style reslices
	for _, blk := range cfg.blocks {
		for _, n := range blk.nodes {
			ast.Inspect(n, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.FuncLit:
					return false
				case *ast.CallExpr:
					callFuns[ast.Unparen(n.Fun)] = true
				case *ast.AssignStmt:
					c.trackReserved(f.unit, n, reserved)
				}
				return true
			})
		}
	}

	prev := c.reservedNow
	c.reservedNow = reserved
	for _, blk := range cfg.blocks {
		if !hot[blk] {
			continue
		}
		for _, n := range blk.nodes {
			c.scanNode(key, f, n, callFuns)
		}
	}
	c.reservedNow = prev
}

// trackReserved records locals assigned a capacity-reserving reslice:
// x := buf[:0] (any operand) or x := arr[i:j] of an array. Appending to
// such a local is staging into pre-reserved storage, not growth.
func (c *noallocChecker) trackReserved(unit *PackageUnit, as *ast.AssignStmt, reserved map[types.Object]bool) {
	if len(as.Lhs) != len(as.Rhs) {
		return
	}
	for i, lhs := range as.Lhs {
		id, ok := ast.Unparen(lhs).(*ast.Ident)
		if !ok {
			continue
		}
		obj := unit.TypesInfo.Defs[id]
		if obj == nil {
			obj = unit.TypesInfo.Uses[id]
		}
		if obj == nil {
			continue
		}
		if c.isReservedExpr(unit, as.Rhs[i], reserved) {
			reserved[obj] = true
		}
	}
}

func (c *noallocChecker) isReservedExpr(unit *PackageUnit, e ast.Expr, reserved map[types.Object]bool) bool {
	e = ast.Unparen(e)
	switch e := e.(type) {
	case *ast.SliceExpr:
		// Slicing an array (or *array) never allocates and aliases the
		// array's storage; x[:0] of anything keeps existing capacity.
		opType := unit.TypesInfo.Types[e.X].Type
		if opType != nil {
			t := types.Unalias(opType)
			if p, ok := t.(*types.Pointer); ok {
				t = types.Unalias(p.Elem())
			}
			if _, ok := t.Underlying().(*types.Array); ok {
				return true
			}
		}
		if e.Low == nil && e.High != nil {
			if lit, ok := ast.Unparen(e.High).(*ast.BasicLit); ok && lit.Value == "0" {
				return true
			}
		}
		return false
	case *ast.CallExpr:
		// x := append(y, …) with y reserved keeps the reservation.
		if id, ok := ast.Unparen(e.Fun).(*ast.Ident); ok && id.Name == "append" && len(e.Args) > 0 {
			return c.isReservedVar(unit, e.Args[0], reserved)
		}
	case *ast.Ident:
		return c.isReservedVar(unit, e, reserved)
	}
	return false
}

func (c *noallocChecker) isReservedVar(unit *PackageUnit, e ast.Expr, reserved map[types.Object]bool) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return false
	}
	obj := unit.TypesInfo.Uses[id]
	if obj == nil {
		obj = unit.TypesInfo.Defs[id]
	}
	return obj != nil && reserved[obj]
}

func (c *noallocChecker) scanNode(key funcKey, f *indexedFunc, node ast.Node, callFuns map[ast.Expr]bool) {
	unit := f.unit
	info := unit.TypesInfo
	where := key.String()
	ast.Inspect(node, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			if capturesOuter(unit, n) {
				c.reportf(n.Pos(), "hot path %s: closure captures outer variables and allocates", where)
			}
			return false

		case *ast.GoStmt:
			c.reportf(n.Pos(), "hot path %s: go statement allocates a goroutine", where)
			return false

		case *ast.CompositeLit:
			t := info.Types[n].Type
			if t == nil {
				return true
			}
			switch types.Unalias(t).Underlying().(type) {
			case *types.Slice:
				c.reportf(n.Pos(), "hot path %s: slice literal allocates", where)
			case *types.Map:
				c.reportf(n.Pos(), "hot path %s: map literal allocates", where)
			}
			return true

		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					c.reportf(n.Pos(), "hot path %s: &composite literal allocates", where)
				}
			}
			return true

		case *ast.BinaryExpr:
			if n.Op == token.ADD {
				if t := info.Types[n].Type; t != nil {
					if b, ok := types.Unalias(t).Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
						if cv := info.Types[n]; cv.Value == nil { // constant folding is free
							c.reportf(n.Pos(), "hot path %s: string concatenation allocates", where)
						}
					}
				}
			}
			return true

		case *ast.AssignStmt:
			c.checkAssign(where, unit, n)
			return true

		case *ast.ReturnStmt:
			c.checkReturn(where, f, n)
			return true

		case *ast.SelectorExpr:
			if callFuns[n] {
				return true
			}
			if sel := info.Selections[n]; sel != nil && sel.Kind() == types.MethodVal {
				c.reportf(n.Pos(), "hot path %s: method value allocates a bound-method closure", where)
			}
			return true

		case *ast.CallExpr:
			c.checkCall(key, f, n)
			return true
		}
		return true
	})
}

// checkAssign flags map writes and interface boxing in assignments.
func (c *noallocChecker) checkAssign(where string, unit *PackageUnit, as *ast.AssignStmt) {
	info := unit.TypesInfo
	for _, lhs := range as.Lhs {
		if ix, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok {
			if t := info.Types[ix.X].Type; t != nil {
				if _, ok := types.Unalias(t).Underlying().(*types.Map); ok {
					c.reportf(lhs.Pos(), "hot path %s: map assignment may rehash and allocate", where)
				}
			}
		}
	}
	if len(as.Lhs) == len(as.Rhs) {
		for i, rhs := range as.Rhs {
			var lhsType types.Type
			if t := info.Types[as.Lhs[i]].Type; t != nil {
				lhsType = t
			} else if id, ok := ast.Unparen(as.Lhs[i]).(*ast.Ident); ok {
				if obj := info.Defs[id]; obj != nil {
					lhsType = obj.Type()
				}
			}
			c.checkBoxing(where, unit, rhs, lhsType)
		}
	}
}

func (c *noallocChecker) checkReturn(where string, f *indexedFunc, ret *ast.ReturnStmt) {
	results := f.decl.Type.Results
	if results == nil || len(ret.Results) == 0 {
		return
	}
	var resultTypes []types.Type
	for _, field := range results.List {
		t := f.unit.TypesInfo.Types[field.Type].Type
		n := len(field.Names)
		if n == 0 {
			n = 1
		}
		for i := 0; i < n; i++ {
			resultTypes = append(resultTypes, t)
		}
	}
	if len(ret.Results) != len(resultTypes) {
		return // f() returning multiple values; boxing handled at the call
	}
	for i, r := range ret.Results {
		c.checkBoxing(where, f.unit, r, resultTypes[i])
	}
}

// checkBoxing flags storing a concrete non-pointer-shaped value into an
// interface, which heap-allocates the value.
func (c *noallocChecker) checkBoxing(where string, unit *PackageUnit, e ast.Expr, target types.Type) {
	if target == nil || !types.IsInterface(types.Unalias(target)) {
		return
	}
	tv := unit.TypesInfo.Types[e]
	if tv.Type == nil || tv.Value != nil || tv.IsNil() {
		return // constants and nil box without allocating
	}
	src := types.Unalias(tv.Type)
	if types.IsInterface(src) {
		return
	}
	switch src.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return // pointer-shaped: stored directly in the iface word
	}
	c.reportf(e.Pos(), "hot path %s: storing %s in an interface allocates", where, tv.Type)
}

func (c *noallocChecker) checkCall(key funcKey, f *indexedFunc, call *ast.CallExpr) {
	unit := f.unit
	info := unit.TypesInfo
	where := key.String()

	// Conversions.
	if tv, ok := info.Types[ast.Unparen(call.Fun)]; ok && tv.IsType() && len(call.Args) == 1 {
		if conversionAllocates(info, call) {
			c.reportf(call.Pos(), "hot path %s: conversion %s allocates", where, canonExpr(c.pass.Fset, call.Fun))
		}
		return
	}

	// Builtins.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				c.reportf(call.Pos(), "hot path %s: make allocates", where)
			case "new":
				c.reportf(call.Pos(), "hot path %s: new allocates", where)
			case "append":
				if len(call.Args) > 0 && !c.appendReserved(unit, call) {
					c.reportf(call.Pos(), "hot path %s: append may grow and allocate", where)
				}
			}
			return
		}
	}

	fn := funcObj(info, call)
	if fn == nil {
		// Call through a function value (or method expression): the target
		// is unknown statically.
		if c.pass.Suppressed(call.Pos()) {
			return
		}
		c.reportf(call.Pos(), "hot path %s: call through function value cannot be statically verified", where)
		return
	}
	pkg := fn.Pkg()
	if pkg == nil {
		return // error.Error etc. on universe types
	}

	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		if types.IsInterface(sig.Recv().Type()) {
			if noallocIfaceOK[pkg.Path()] {
				return
			}
			if c.pass.Suppressed(call.Pos()) {
				return
			}
			c.reportf(call.Pos(), "hot path %s: dynamic call to %s.%s cannot be statically verified", where, pkg.Path(), fn.Name())
			return
		}
	}

	if strings.HasPrefix(pkg.Path(), "mmt/") {
		// Module callee: traverse, unless the call site is suppressed —
		// the pruning idiom for amortized/slow-path callees — or the callee
		// itself is declared cold (//mmt:coldpath), the idiom for rare
		// maintenance work like checkpoint I/O reached from hot code.
		if c.pass.Suppressed(call.Pos()) {
			return
		}
		callee, calleeKey := c.idx.lookupCall(unit, call)
		if callee != nil && !isColdPath(callee.decl) {
			c.check(calleeKey, callee)
		}
		return
	}

	if noallocStdlibOK[pkg.Path()] {
		return
	}
	if c.pass.Suppressed(call.Pos()) {
		return
	}
	c.reportf(call.Pos(), "hot path %s: call to %s.%s may allocate", where, pkg.Path(), fn.Name())
}

// appendReserved reports whether an append targets reserved capacity:
// the first argument is a reserved local or itself a [:0]/array reslice.
func (c *noallocChecker) appendReserved(unit *PackageUnit, call *ast.CallExpr) bool {
	arg := ast.Unparen(call.Args[0])
	if se, ok := arg.(*ast.SliceExpr); ok {
		return c.isReservedExpr(unit, se, c.reservedNow)
	}
	return c.isReservedVar(unit, arg, c.reservedNow)
}

// conversionAllocates reports whether a type conversion copies into
// fresh storage: string <-> []byte / []rune.
func conversionAllocates(info *types.Info, call *ast.CallExpr) bool {
	to := info.Types[call.Fun].Type
	from := info.Types[call.Args[0]].Type
	if to == nil || from == nil {
		return false
	}
	isStr := func(t types.Type) bool {
		b, ok := types.Unalias(t).Underlying().(*types.Basic)
		return ok && b.Info()&types.IsString != 0
	}
	isByteOrRuneSlice := func(t types.Type) bool {
		s, ok := types.Unalias(t).Underlying().(*types.Slice)
		if !ok {
			return false
		}
		b, ok := types.Unalias(s.Elem()).Underlying().(*types.Basic)
		return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune ||
			b.Kind() == types.Uint8 || b.Kind() == types.Int32)
	}
	return (isStr(from) && isByteOrRuneSlice(to)) || (isByteOrRuneSlice(from) && isStr(to))
}

// capturesOuter reports whether lit references variables declared
// outside it (excluding package-level objects): such closures allocate.
func capturesOuter(unit *PackageUnit, lit *ast.FuncLit) bool {
	info := unit.TypesInfo
	pkgScope := unit.Pkg.Scope()
	captured := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || captured {
			return !captured
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		if v.Parent() == pkgScope || v.Parent() == types.Universe {
			return true
		}
		if v.Pos() < lit.Pos() || v.Pos() > lit.End() {
			captured = true
		}
		return true
	})
	return captured
}
