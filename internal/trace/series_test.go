package trace

import (
	"bytes"
	"sync"
	"testing"

	"mmt/internal/sim"
)

// driveWindows advances the clock through n windows, charging a mix of
// counters, fractional phase cycles and op latencies into p each step.
// The fractional charges (0.3 is not dyadic) are the point: they force
// the sampler's exact-delta construction to actually correct rounding.
func driveWindows(clock *sim.Clock, p *Probe, n, stepsPerWindow int, windowCycles uint64) {
	for i := 0; i < n*stepsPerWindow; i++ {
		p.Count(CtrNodeCacheHits, 2)
		p.Count(CtrMACVerifies, 1)
		p.AddCycles(PhaseTreeWalk, sim.Cycles(float64(i%7)+0.3))
		p.AddCycles(PhaseMAC, 11.7)
		p.RecordOp(OpLocalRead, sim.Cycles(float64(i%13)+0.1))
		clock.AdvanceCycles(sim.Cycles(float64(windowCycles) / float64(stepsPerWindow)))
	}
}

// TestSeriesDeltaSumExact is the sampler's core invariant: the evicted
// aggregate plus the retained per-window deltas, summed left to right
// in float64, equal the cumulative accumulator totals EXACTLY — no
// tolerance — even with non-dyadic charges and ring eviction folding
// old deltas into the base. This is what lets mmt-tracecheck verify
// series artifacts with ==.
func TestSeriesDeltaSumExact(t *testing.T) {
	const window = uint64(1024)
	s := NewSink()
	if err := s.EnableSeries(SeriesConfig{WindowCycles: window, MaxSamples: 4}); err != nil {
		t.Fatal(err)
	}
	p := s.Probe("alice")
	clock := sim.NewClock(1e9)
	clock.SetWindowHook(window, p.ObserveWindow)

	// 20 windows against a 4-sample ring: most deltas evict into the base.
	driveWindows(clock, p, 20, 8, window)

	v, ok := s.SeriesSnapshot()
	if !ok || len(v.Procs) != 1 {
		t.Fatalf("snapshot: ok=%v procs=%d", ok, len(v.Procs))
	}
	pr := &v.Procs[0]
	if pr.EvictedWindows == 0 {
		t.Fatal("scenario must evict: grow the window count")
	}
	if len(pr.Samples) > v.MaxSamples+1 {
		t.Fatalf("ring bound violated: %d samples > %d+1", len(pr.Samples), v.MaxSamples)
	}

	var sum seriesAccum
	if pr.EvictedWindows > 0 {
		sum.add(&pr.Evicted)
	}
	last := pr.EvictedThrough
	for i := range pr.Samples {
		d := &pr.Samples[i]
		if (i > 0 || pr.EvictedWindows > 0) && d.Window <= last {
			t.Fatalf("sample %d: window %d not after %d", i, d.Window, last)
		}
		last = d.Window
		sum.add(d)
	}
	for c := Counter(0); c < NumCounters; c++ {
		if sum.counters[c] != pr.Totals.Counters[c] {
			t.Errorf("counter %v: deltas sum to %d, totals %d", c, sum.counters[c], pr.Totals.Counters[c])
		}
	}
	for ph := Phase(0); ph < NumPhases; ph++ {
		if sum.cycles[ph] != pr.Totals.Cycles[ph] {
			t.Errorf("phase %v: deltas sum to %v, totals %v (must be bit-exact)", ph, sum.cycles[ph], pr.Totals.Cycles[ph])
		}
	}
	for op := Op(0); int(op) < NumOps; op++ {
		if sum.opCount[op] != pr.Totals.OpCount[op] || sum.opSum[op] != pr.Totals.OpSum[op] {
			t.Errorf("op %v: delta sums (%d, %v) != totals (%d, %v)",
				op, sum.opCount[op], sum.opSum[op], pr.Totals.OpCount[op], pr.Totals.OpSum[op])
		}
	}
	// And the totals match the live accumulators — nothing was lost
	// between the per-window images and the cumulative state.
	m := s.Snapshot()
	if got := pr.Totals.Cycles[PhaseMAC]; got != m.Procs[0].Cycles[PhaseMAC] {
		t.Errorf("series totals %v != accumulator %v", got, m.Procs[0].Cycles[PhaseMAC])
	}
}

// TestSeriesMergeReproducesSerial: sharded sinks (each machine's series
// recorded in its own worker sink, merged serially in input order)
// export byte-identical mmt-series/v1 documents to a single-sink run.
func TestSeriesMergeReproducesSerial(t *testing.T) {
	const window = uint64(512)
	cfg := SeriesConfig{WindowCycles: window, MaxSamples: 8}
	run := func(p *Probe, clock *sim.Clock, seed int) {
		for i := 0; i < 60; i++ {
			p.Count(CtrTreeNodeWalks, uint64(seed))
			p.AddCycles(PhaseData, sim.Cycles(float64((i+seed)%5)+0.9))
			p.RecordOp(OpLocalWrite, sim.Cycles(float64(seed)+0.25))
			clock.AdvanceCycles(150)
		}
	}

	serial := NewSink()
	if err := serial.EnableSeries(cfg); err != nil {
		t.Fatal(err)
	}
	for seed, name := range []string{"m0", "m1", "m2"} {
		p := serial.Probe(name)
		clock := sim.NewClock(1e9)
		clock.SetWindowHook(window, p.ObserveWindow)
		run(p, clock, seed+1)
	}

	root := NewSink()
	if err := root.EnableSeries(cfg); err != nil {
		t.Fatal(err)
	}
	for seed, name := range []string{"m0", "m1", "m2"} {
		part := NewSink()
		if err := part.EnableSeries(cfg); err != nil {
			t.Fatal(err)
		}
		p := part.Probe(name)
		clock := sim.NewClock(1e9)
		clock.SetWindowHook(window, p.ObserveWindow)
		run(p, clock, seed+1)
		root.Merge(part)
	}

	var a, b bytes.Buffer
	if err := serial.WriteSeriesJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := root.WriteSeriesJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("merged series differs from serial:\nserial:\n%s\nmerged:\n%s", a.String(), b.String())
	}
}

// TestFlightRecorderFreeze mirrors the package-level mid-run snapshot
// test for the flight recorder: one goroutine records spans while the
// driver fires warn-severity events and observers poison the returned
// copies. Every frozen flight must be a detached, oldest-first copy of
// recent spans; poisoned snapshots must never leak back. Run with -race
// this also proves the recorder's locking discipline.
func TestFlightRecorderFreeze(t *testing.T) {
	s := NewSink()
	p := s.Probe("alice")

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			begin := sim.Time(float64(i) * 1e-6)
			p.Span(PhaseTreeWalk, begin, begin+1e-7)
		}
	}()

	for round := 0; round < 200; round++ {
		p.Event(EvReplayReject, sim.Time(float64(round)*1e-6), uint64(round), "stale counter value")
		evs := s.SecEvents()
		for i := range evs {
			ev := &evs[i]
			if ev.Kind.Severity() < SevWarn {
				t.Fatalf("event %d: kind %v below warn made it into this test", i, ev.Kind)
			}
			for j := range ev.Flight {
				fs := &ev.Flight[j]
				if fs.Begin < 0 {
					t.Fatal("poisoned flight span leaked into the ledger")
				}
				if j > 0 && fs.Begin < ev.Flight[j-1].Begin {
					t.Fatalf("event %d: flight not oldest-first: %v after %v", i, fs.Begin, ev.Flight[j-1].Begin)
				}
			}
			// Poison the copy; later snapshots must not see it.
			for j := range ev.Flight {
				ev.Flight[j].Begin = -1
			}
		}
	}
	close(stop)
	wg.Wait()

	// Info-severity events stay lean: no flight freeze.
	p.Event(EvMigrationSend, 0, 0, "routine")
	evs := s.SecEvents()
	last := evs[len(evs)-1]
	if last.Kind != EvMigrationSend || last.Flight != nil {
		t.Fatalf("info event froze a flight: %+v", last)
	}
}

// TestSeriesDisabledZeroAlloc is the MMT008 acceptance contract: with
// tracing on but sampling off, the hot line path — counter bumps, cycle
// charges, op records, clock advances — allocates nothing. Sampling
// must be pay-for-what-you-enable.
func TestSeriesDisabledZeroAlloc(t *testing.T) {
	s := NewSink()
	p := s.Probe("alice")
	clock := sim.NewClock(1e9)
	if allocs := testing.AllocsPerRun(1000, func() {
		p.Count(CtrNodeCacheHits, 1)
		p.AddCycles(PhaseTreeWalk, 8)
		p.RecordOp(OpLocalRead, 12)
		clock.AdvanceCycles(64)
	}); allocs != 0 {
		t.Fatalf("sampling-disabled hot path allocates %v per op", allocs)
	}
}

// TestEnableSeriesValidation: bad configs are rejected eagerly and
// reconfiguration with a different shape is refused (retention would
// depend on call timing otherwise, like SetEventCapacity).
func TestEnableSeriesValidation(t *testing.T) {
	s := NewSink()
	if err := s.EnableSeries(SeriesConfig{WindowCycles: 1000}); err == nil {
		t.Fatal("non-power-of-two window accepted")
	}
	if err := s.EnableSeries(SeriesConfig{WindowCycles: 0}); err == nil {
		t.Fatal("zero window accepted")
	}
	// Non-positive ring sizes take the default rather than erroring
	// (the public WithSampling option rejects them eagerly instead).
	if err := s.EnableSeries(SeriesConfig{WindowCycles: 1 << 12, MaxSamples: -1}); err != nil {
		t.Fatal(err)
	}
	if cfg, ok := s.SeriesConfigured(); !ok || cfg.MaxSamples != DefaultSeriesCap {
		t.Fatalf("defaulted ring = %+v, %v", cfg, ok)
	}
	if err := s.EnableSeries(SeriesConfig{WindowCycles: 1 << 13}); err == nil {
		t.Fatal("reconfiguration with a different window accepted")
	}
	if err := s.EnableSeries(SeriesConfig{WindowCycles: 1 << 12}); err != nil {
		t.Fatalf("idempotent re-enable refused: %v", err)
	}
	if w, ok := s.SeriesWindow(); !ok || w != 1<<12 {
		t.Fatalf("SeriesWindow = %d, %v", w, ok)
	}
	// Disabled sinks export nothing.
	var buf bytes.Buffer
	if err := NewSink().WriteSeriesJSON(&buf); err == nil {
		t.Fatal("disabled sink exported a series document")
	}
}
