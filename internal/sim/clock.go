package sim

import (
	"fmt"
	"math"
)

// Cycles counts simulated processor cycles. It is a float so that
// per-byte cost curves can be fractional; totals are rounded only when
// displayed.
type Cycles float64

// Time is a simulated wall-clock instant or duration in seconds.
type Time float64

// Milliseconds reports t in milliseconds.
func (t Time) Milliseconds() float64 { return float64(t) * 1e3 }

// Microseconds reports t in microseconds.
func (t Time) Microseconds() float64 { return float64(t) * 1e6 }

func (t Time) String() string {
	switch {
	case t == 0:
		return "0s"
	case t < 1e-6:
		return fmt.Sprintf("%.1fns", float64(t)*1e9)
	case t < 1e-3:
		return fmt.Sprintf("%.2fus", float64(t)*1e6)
	case t < 1:
		return fmt.Sprintf("%.3fms", float64(t)*1e3)
	default:
		return fmt.Sprintf("%.3fs", float64(t))
	}
}

// Clock is a simulated per-node clock. The zero value is a clock at time
// zero; it is not safe for concurrent use (simulated nodes are
// single-threaded, as in the paper's Gem5 model).
type Clock struct {
	now  Time
	freq float64 // cycles per second; 0 means unset (use DefaultFreqHz)

	// Window sampling hook. When winHook is non-nil, every forward move
	// of the clock checks whether it crossed into a new window of
	// 2^winShift cycles and, if so, fires the hook once with the new
	// window index. The hook must not advance this clock.
	winShift uint
	winHook  func(window uint64)
	lastWin  uint64
}

// DefaultFreqHz is the processor frequency of the paper's Gem5
// configuration (Table II: 2.0 GHz).
const DefaultFreqHz = 2e9

// NewClock returns a clock ticking at freqHz cycles per second.
func NewClock(freqHz float64) *Clock {
	if freqHz <= 0 {
		freqHz = DefaultFreqHz
	}
	return &Clock{freq: freqHz}
}

// Freq reports the clock frequency in Hz.
func (c *Clock) Freq() float64 {
	if c.freq == 0 {
		return DefaultFreqHz
	}
	return c.freq
}

// Now reports the current simulated time.
func (c *Clock) Now() Time { return c.now }

// NowCycles reports the current simulated time expressed in cycles.
func (c *Clock) NowCycles() Cycles { return Cycles(float64(c.now) * c.Freq()) }

// Advance moves the clock forward by d. Negative durations are ignored so
// that cost arithmetic can never move time backwards.
func (c *Clock) Advance(d Time) {
	if d > 0 {
		c.now += d
		if c.winHook != nil {
			c.windowTick()
		}
	}
}

// AdvanceCycles moves the clock forward by n cycles.
func (c *Clock) AdvanceCycles(n Cycles) {
	if n > 0 {
		c.now += Time(float64(n) / c.Freq())
		if c.winHook != nil {
			c.windowTick()
		}
	}
}

// SyncTo moves the clock forward to t if t is later than the current time.
// It models a blocking receive: the receiver cannot observe a message
// before the (simulated) instant it arrives.
func (c *Clock) SyncTo(t Time) {
	if t > c.now {
		c.now = t
		if c.winHook != nil {
			c.windowTick()
		}
	}
}

// Reset rewinds the clock to time zero. Benchmarks use it between trials.
// The sampling window position rewinds with it; the hook does not fire.
func (c *Clock) Reset() {
	c.now = 0
	c.lastWin = 0
}

// SetNow forces the clock to an absolute instant. Snapshot recovery uses
// it to resume a reloaded node at exactly its saved simulated time.
func (c *Clock) SetNow(t Time) {
	forward := t > c.now
	c.now = t
	if forward && c.winHook != nil {
		c.windowTick()
	} else if !forward {
		// A rewind repositions the window cursor silently so a later
		// forward move does not re-announce windows already sampled.
		c.lastWin = c.curWindow()
	}
}

// SetWindowHook installs a sampling hook that fires whenever the clock
// crosses into a new window of windowCycles simulated cycles. The window
// size must be a power of two (mmt-vet MMT012 enforces this for
// constants); other values are rounded up to the next power of two so
// the window index stays a cheap shift. A nil hook uninstalls sampling.
func (c *Clock) SetWindowHook(windowCycles uint64, hook func(window uint64)) {
	if hook == nil {
		c.winHook = nil
		return
	}
	shift := uint(0)
	for windowCycles > 1<<shift {
		shift++
	}
	c.winShift = shift
	c.winHook = hook
	c.lastWin = c.curWindow()
}

// curWindow reports the window index of the current instant.
func (c *Clock) curWindow() uint64 {
	cyc := float64(c.NowCycles())
	if cyc <= 0 {
		return 0
	}
	return uint64(cyc) >> c.winShift
}

// windowTick fires the sampling hook if the last forward move crossed a
// window boundary. It is the one dynamic call on the clock-advance path,
// kept out of line (and out of MMT008's hot-path traversal) so that
// advancing a clock with no hook stays a nil check.
//
//mmt:coldpath
func (c *Clock) windowTick() {
	w := c.curWindow()
	if w > c.lastWin {
		c.lastWin = w
		c.winHook(w)
	}
}

// CyclesToTime converts a cycle count to simulated seconds at freqHz.
func CyclesToTime(n Cycles, freqHz float64) Time {
	if freqHz <= 0 {
		freqHz = DefaultFreqHz
	}
	return Time(float64(n) / freqHz)
}

// TimeToCycles converts simulated seconds to cycles at freqHz.
func TimeToCycles(t Time, freqHz float64) Cycles {
	if freqHz <= 0 {
		freqHz = DefaultFreqHz
	}
	return Cycles(float64(t) * freqHz)
}

// MaxTime returns the later of two instants.
func MaxTime(a, b Time) Time { return Time(math.Max(float64(a), float64(b))) }
