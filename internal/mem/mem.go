// Package mem models a node's physical memory as seen by the MMT
// controller: a flat byte-addressable DRAM divided into fixed-size
// protection regions, each of which is normal (unprotected) memory, secure
// memory covered by an MMT, or part of the MMT meta-zone that stores tree
// nodes and data MACs (§V-A2).
//
// The controller "first checks a bitmap which records the type of physical
// memory"; Memory.Kind is that bitmap. The meta-zone "is a separate memory
// range which can only be accessed by MMT monitor" and "each MMT metadata
// has a fixed mapping with its data memory"; MetaBase implements that fixed
// mapping.
package mem

import (
	"fmt"

	"mmt/internal/crypt"
)

// Addr is a physical byte address inside one node's DRAM.
type Addr uint64

// LineSize is the cache-line granularity of the protection engine.
const LineSize = crypt.LineSize

// Kind classifies a protection region.
type Kind uint8

const (
	// KindNormal is unprotected memory: no encryption, no integrity tree.
	KindNormal Kind = iota
	// KindSecure is MMT-protected memory.
	KindSecure
	// KindMeta is the MMT meta-zone holding tree nodes and data MACs.
	KindMeta
)

func (k Kind) String() string {
	switch k {
	case KindNormal:
		return "normal"
	case KindSecure:
		return "secure"
	case KindMeta:
		return "meta-zone"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Config sizes a Memory.
type Config struct {
	// Size is the total DRAM size in bytes.
	Size int
	// RegionSize is the protection granularity — the amount of data
	// memory one MMT covers (2 MB for the paper's default 3-level tree).
	RegionSize int
	// MetaPerRegion is the meta-zone bytes reserved per region for tree
	// nodes and data MACs.
	MetaPerRegion int
}

// Validate checks the configuration for internal consistency.
func (c Config) Validate() error {
	switch {
	case c.Size <= 0:
		return fmt.Errorf("mem: non-positive size %d", c.Size)
	case c.RegionSize <= 0 || c.RegionSize%LineSize != 0:
		return fmt.Errorf("mem: region size %d not a positive multiple of %d", c.RegionSize, LineSize)
	case c.MetaPerRegion < 0 || c.MetaPerRegion%LineSize != 0:
		return fmt.Errorf("mem: meta per region %d not a non-negative multiple of %d", c.MetaPerRegion, LineSize)
	case c.Size%c.RegionSize != 0:
		return fmt.Errorf("mem: size %d not a multiple of region size %d", c.Size, c.RegionSize)
	}
	return nil
}

// Memory is one node's physical DRAM plus its meta-zone. The meta-zone is
// modeled as a parallel array rather than carved out of the data range so
// that region<->metadata mapping stays fixed (as in the hardware), while
// region indices remain contiguous.
type Memory struct {
	cfg   Config
	data  []byte
	meta  []byte
	kinds []Kind
}

// New allocates a Memory from cfg. It panics on an invalid Config because
// configurations are static (they come from sim profiles or tests).
func New(cfg Config) *Memory {
	if err := cfg.Validate(); err != nil {
		panic(err) //mmt:allow nopanic: static experiment configuration; a bad Config is a programming error, not runtime input
	}
	n := cfg.Size / cfg.RegionSize
	return &Memory{
		cfg:   cfg,
		data:  make([]byte, cfg.Size),
		meta:  make([]byte, n*cfg.MetaPerRegion),
		kinds: make([]Kind, n),
	}
}

// Config reports the sizing used to build this memory.
func (m *Memory) Config() Config { return m.cfg }

// Size reports the total data DRAM size in bytes.
func (m *Memory) Size() int { return m.cfg.Size }

// Regions reports the number of protection regions.
func (m *Memory) Regions() int { return len(m.kinds) }

// RegionOf maps a physical address to its protection-region index.
func (m *Memory) RegionOf(a Addr) int { return int(uint64(a) / uint64(m.cfg.RegionSize)) }

// RegionBase reports the base address of region r.
func (m *Memory) RegionBase(r int) Addr { return Addr(uint64(r) * uint64(m.cfg.RegionSize)) }

// Kind reports the protection kind of the region containing a.
func (m *Memory) Kind(a Addr) Kind {
	return m.kinds[m.mustRegion(a)]
}

// SetRegionKind reclassifies region r. The MMT monitor is the only caller
// in a full system (§IV-C); enforcement of that privilege lives in the
// monitor package.
func (m *Memory) SetRegionKind(r int, k Kind) {
	if r < 0 || r >= len(m.kinds) {
		panic(fmt.Sprintf("mem: region %d out of range [0,%d)", r, len(m.kinds))) //mmt:allow nopanic: internal bounds guard; models a hardware fault on an impossible region index
	}
	m.kinds[r] = k
}

// RegionKind reports the kind of region r.
func (m *Memory) RegionKind(r int) Kind {
	if r < 0 || r >= len(m.kinds) {
		panic(fmt.Sprintf("mem: region %d out of range [0,%d)", r, len(m.kinds))) //mmt:allow nopanic: internal bounds guard; models a hardware fault on an impossible region index
	}
	return m.kinds[r]
}

// FindFree returns the index of the first KindNormal region, or -1 when
// none is free. The TEEOS allocates secure PMOs from such regions.
func (m *Memory) FindFree() int {
	for i, k := range m.kinds {
		if k == KindNormal {
			return i
		}
	}
	return -1
}

func (m *Memory) mustRegion(a Addr) int {
	r := m.RegionOf(a)
	if r < 0 || r >= len(m.kinds) {
		panic(fmt.Sprintf("mem: address %#x out of range (size %#x)", uint64(a), m.cfg.Size)) //mmt:allow nopanic: internal bounds guard; models a hardware fault on an impossible address
	}
	return r
}

func (m *Memory) checkSpan(a Addr, n int) {
	if n < 0 || uint64(a)+uint64(n) > uint64(m.cfg.Size) {
		panic(fmt.Sprintf("mem: span [%#x,+%d) out of range (size %#x)", uint64(a), n, m.cfg.Size)) //mmt:allow nopanic: internal bounds guard; models a hardware fault on an impossible span
	}
}

// ReadLine returns a copy of the LineSize-aligned line at a.
func (m *Memory) ReadLine(a Addr) []byte {
	m.checkLine(a)
	out := make([]byte, LineSize)
	copy(out, m.data[a:])
	return out
}

// LineView returns the LineSize-aligned line at a, aliased to the DRAM
// backing store (see MetaRegion). The engine's zero-allocation read path
// uses it in place of ReadLine; callers must not hold the slice across
// writes.
func (m *Memory) LineView(a Addr) []byte {
	m.checkLine(a)
	return m.data[a : a+LineSize]
}

// WriteLine stores one line at the LineSize-aligned address a.
func (m *Memory) WriteLine(a Addr, line []byte) {
	m.checkLine(a)
	if len(line) != LineSize {
		panic(fmt.Sprintf("mem: WriteLine with %d bytes", len(line))) //mmt:allow nopanic: internal invariant; callers always pass LineSize bytes
	}
	copy(m.data[a:], line)
}

func (m *Memory) checkLine(a Addr) {
	if uint64(a)%LineSize != 0 {
		panic(fmt.Sprintf("mem: unaligned line address %#x", uint64(a))) //mmt:allow nopanic: internal invariant; line addresses are engine-computed and always aligned
	}
	m.checkSpan(a, LineSize)
}

// Read copies n bytes starting at a. It models raw DRAM/DMA access with no
// protection checks — exactly what an off-chip attacker or a DMA engine
// sees (ciphertext for secure regions).
func (m *Memory) Read(a Addr, n int) []byte {
	m.checkSpan(a, n)
	out := make([]byte, n)
	copy(out, m.data[a:])
	return out
}

// Write stores p starting at a, with no protection checks (see Read).
func (m *Memory) Write(a Addr, p []byte) {
	m.checkSpan(a, len(p))
	copy(m.data[a:], p)
}

// MetaRegion returns the meta-zone bytes backing region r. The slice
// aliases the meta-zone so the engine can update tree nodes in place; it
// is also what a physical attacker can overwrite, which the integrity
// checks must detect.
func (m *Memory) MetaRegion(r int) []byte {
	if r < 0 || r >= len(m.kinds) {
		panic(fmt.Sprintf("mem: region %d out of range [0,%d)", r, len(m.kinds))) //mmt:allow nopanic: internal bounds guard; models a hardware fault on an impossible region index
	}
	return m.meta[r*m.cfg.MetaPerRegion : (r+1)*m.cfg.MetaPerRegion]
}

// RegionData returns the data bytes of region r, aliased (see MetaRegion).
func (m *Memory) RegionData(r int) []byte {
	base := int(m.RegionBase(r))
	return m.data[base : base+m.cfg.RegionSize]
}
