package monitor

import (
	"crypto/ecdh"
	"crypto/ecdsa"
	"crypto/rand"
	"crypto/sha256"
	"encoding/json"
	"errors"
	"fmt"

	"mmt/internal/attest"
	"mmt/internal/core"
	"mmt/internal/crypt"
	"mmt/internal/netsim"
	"mmt/internal/sim"
	"mmt/internal/trace"
)

// Connection is the enclave manager's record of a live channel between a
// local and a remote enclave (§IV-C). The MMT key negotiated at connect
// time seeds the core.Conn whose counter/address floors implement the
// delegation protocol's replay and re-order defences.
type Connection struct {
	ID          string
	Local       EnclaveID
	PeerMonitor string // network name of the remote monitor
	PeerEnclave EnclaveID
	conn        *core.Conn
	// recv is the armed waiting PMO for the next inbound delegation.
	recv *PMO
	// pending maps in-flight delegations (by MMT global-unique address)
	// to their PMOs; several may be pipelined on one connection.
	pending map[uint64]*PMO
	// pendingSpan holds the open causal root span of each in-flight
	// delegation, keyed like pending. Lazily allocated; absent when
	// tracing is disabled (snapshots never serialize it).
	pendingSpan map[uint64]*trace.ActiveSpan
	// Received queues PMOs accepted from the peer, oldest first.
	Received []*PMO
	// Acked counts completed outbound delegations.
	Acked int
}

// Conn exposes the underlying protocol connection (tests).
func (c *Connection) Conn() *core.Conn { return c.conn }

// connectMsg is the control message used during connection setup. The
// report and ECDH shares establish who is on the other side; the rest
// mirrors Figure 6 step 1 (buffer negotiation).
type connectMsg struct {
	Type       string         `json:"type"`
	ConnID     string         `json:"conn_id"`
	Report     *attest.Report `json:"report"`
	ECDHPublic []byte         `json:"ecdh_public"`
	// ShareSig is the machine-key signature over (type, conn id, share):
	// the report attests the machine key, the signature binds this DH
	// share to it, so a man in the middle cannot substitute shares.
	ShareSig    []byte    `json:"share_sig"`
	Enclave     EnclaveID `json:"enclave"`
	PeerEnclave EnclaveID `json:"peer_enclave"`
	InitCounter uint64    `json:"init_counter"`
}

// shareDigest is what ShareSig signs.
func shareDigest(typ, connID string, share []byte) []byte {
	h := sha256.New()
	h.Write([]byte("mmt-connect-v1\x00"))
	h.Write([]byte(typ))
	h.Write([]byte{0})
	h.Write([]byte(connID))
	h.Write([]byte{0})
	h.Write(share)
	return h.Sum(nil)
}

// verifyConnectMsg checks the report against the authority and the share
// signature against the report's attested machine key.
func verifyConnectMsg(authority *ecdsa.PublicKey, m *connectMsg) error {
	if err := attest.VerifyReport(authority, m.Report); err != nil {
		return fmt.Errorf("monitor: peer attestation: %w", err)
	}
	mk, err := m.Report.MachineKey()
	if err != nil {
		return err
	}
	if !attest.VerifyDigest(mk, shareDigest(m.Type, m.ConnID, m.ECDHPublic), m.ShareSig) {
		return fmt.Errorf("monitor: key-exchange share not signed by the attested machine")
	}
	return nil
}

type ackMsg struct {
	Type   string `json:"type"`
	ConnID string `json:"conn_id"`
	OK     bool   `json:"ok"`
	// GUAddr names the delegation being acknowledged, so acks survive
	// adversarial re-ordering without completing the wrong transfer.
	GUAddr uint64 `json:"guaddr"`
}

// closure frames are binary, not JSON: a closure is bulk data whose bytes
// the delegation protocol itself authenticates, and wrapping it in JSON
// would make unrelated framing bytes (not covered by any MAC) able to
// swallow the whole message. Layout: 2-byte conn-id length, conn id, wire.
func encodeClosureFrame(connID string, wire []byte) []byte {
	out := make([]byte, 2+len(connID)+len(wire))
	out[0] = byte(len(connID))
	out[1] = byte(len(connID) >> 8)
	copy(out[2:], connID)
	copy(out[2+len(connID):], wire)
	return out
}

func decodeClosureFrame(b []byte) (connID string, wire []byte, err error) {
	if len(b) < 2 {
		return "", nil, fmt.Errorf("monitor: short closure frame")
	}
	n := int(b[0]) | int(b[1])<<8
	if len(b) < 2+n {
		return "", nil, fmt.Errorf("monitor: truncated closure frame")
	}
	return string(b[2 : 2+n]), b[2+n:], nil
}

// Connect establishes a delegation connection between a local enclave on
// monitor a and a remote enclave on monitor b, running the attestation-
// report exchange and MMT key agreement across the untrusted network. It
// returns the connection id, valid on both monitors.
//
// The two monitors live in one process here, so the handshake pumps the
// message queue inline; on real hardware each side runs its half in its
// own firmware.
func Connect(a *Monitor, aEnc EnclaveID, b *Monitor, bEnc EnclaveID, initCounter uint64) (string, error) {
	if a.endpoint == nil || b.endpoint == nil {
		return "", fmt.Errorf("monitor: both monitors must be attached to the network")
	}
	if a.report == nil || b.report == nil {
		return "", ErrNotAttested
	}
	if _, ok := a.enclaves[aEnc]; !ok {
		return "", ErrNoEnclave
	}
	if _, ok := b.enclaves[bEnc]; !ok {
		return "", ErrNoEnclave
	}

	// Each side generates an ECDH share; the shared secret becomes the MMT
	// key ("similar to the TLS handshake", §IV-B1).
	aPriv, err := ecdh.X25519().GenerateKey(rand.Reader)
	if err != nil {
		return "", err
	}
	bPriv, err := ecdh.X25519().GenerateKey(rand.Reader)
	if err != nil {
		return "", err
	}
	connID := fmt.Sprintf("%s/%d<->%s/%d#%d", a.endpoint.Name(), aEnc, b.endpoint.Name(), bEnc, len(a.conns))

	// a -> b: connect request with a's report and machine-signed ECDH share.
	aSig, err := a.machine.Sign(shareDigest("connect", connID, aPriv.PublicKey().Bytes()))
	if err != nil {
		return "", err
	}
	req := connectMsg{
		Type: "connect", ConnID: connID, Report: a.report,
		ECDHPublic: aPriv.PublicKey().Bytes(), ShareSig: aSig,
		Enclave: aEnc, PeerEnclave: bEnc,
		InitCounter: initCounter,
	}
	reqBytes, err := json.Marshal(req)
	if err != nil {
		return "", err
	}
	// The handshake is the root of a causal connect trace: minted at the
	// initiator, carried alongside both control messages, closed once a
	// verifies b's response.
	connectRoot := a.ctl.Trace().BeginSpan(a.ctl.Trace().NewTrace(), trace.PhaseConnect, a.ctl.Clock().Now())
	a.endpoint.SendTraced(b.endpoint.Name(), netsim.KindControl, reqBytes, connectRoot.Context())
	inbound, ok := b.endpoint.Recv()
	if !ok {
		return "", fmt.Errorf("monitor: connect request lost on the network")
	}
	var got connectMsg
	if err := json.Unmarshal(inbound.Payload, &got); err != nil || got.Type != "connect" {
		return "", fmt.Errorf("monitor: malformed connect request")
	}
	// b verifies a's attestation report and the binding of the DH share to
	// a's attested machine key before accepting the connection.
	if err := verifyConnectMsg(b.authority, &got); err != nil {
		return "", err
	}

	// b -> a: response with b's report and machine-signed share.
	bSig, err := b.machine.Sign(shareDigest("connect-ok", got.ConnID, bPriv.PublicKey().Bytes()))
	if err != nil {
		return "", err
	}
	resp := connectMsg{
		Type: "connect-ok", ConnID: got.ConnID, Report: b.report,
		ECDHPublic: bPriv.PublicKey().Bytes(), ShareSig: bSig,
		Enclave: bEnc, PeerEnclave: got.Enclave,
		InitCounter: got.InitCounter,
	}
	respBytes, err := json.Marshal(resp)
	if err != nil {
		return "", err
	}
	b.endpoint.SendTraced(inbound.From, netsim.KindControl, respBytes, inbound.Trace)
	back, ok := a.endpoint.Recv()
	if !ok {
		return "", fmt.Errorf("monitor: connect response lost on the network")
	}
	var gotResp connectMsg
	if err := json.Unmarshal(back.Payload, &gotResp); err != nil || gotResp.Type != "connect-ok" {
		return "", fmt.Errorf("monitor: malformed connect response")
	}
	if err := verifyConnectMsg(a.authority, &gotResp); err != nil {
		return "", err
	}

	// Derive the MMT key on both sides, from the *verified* wire shares.
	bPub, err := ecdh.X25519().NewPublicKey(gotResp.ECDHPublic)
	if err != nil {
		return "", err
	}
	aShared, err := aPriv.ECDH(bPub)
	if err != nil {
		return "", err
	}
	aPub, err := ecdh.X25519().NewPublicKey(got.ECDHPublic)
	if err != nil {
		return "", err
	}
	bShared, err := bPriv.ECDH(aPub)
	if err != nil {
		return "", err
	}
	key := mmtKeyFromShared(aShared)
	if key != mmtKeyFromShared(bShared) {
		return "", fmt.Errorf("monitor: key agreement mismatch")
	}

	// Both sides record the connection and arm a receive buffer. The
	// handshake itself charges no cycles (see ROADMAP: connection setup is
	// off the steady-state path): b's side is a zero-duration child marker
	// in the connect trace, and a's root span closes here, spanning the
	// full request/response round trip.
	b.ctl.Trace().CausalSpan(inbound.Trace, trace.PhaseConnect, b.ctl.Clock().Now(), b.ctl.Clock().Now(), 0)
	connectRoot.End(a.ctl.Clock().Now())
	ca := &Connection{ID: connID, Local: aEnc, PeerMonitor: b.endpoint.Name(), PeerEnclave: bEnc,
		conn: core.NewConn(key, initCounter), pending: make(map[uint64]*PMO)}
	cb := &Connection{ID: connID, Local: bEnc, PeerMonitor: a.endpoint.Name(), PeerEnclave: aEnc,
		conn: core.NewConn(key, initCounter), pending: make(map[uint64]*PMO)}
	a.conns[connID] = ca
	b.conns[connID] = cb
	if err := a.armReceive(ca); err != nil {
		return "", err
	}
	if err := b.armReceive(cb); err != nil {
		return "", err
	}
	return connID, nil
}

// mmtKeyFromShared derives the 128-bit MMT key from an ECDH secret.
func mmtKeyFromShared(shared []byte) crypt.Key {
	sum := sha256.Sum256(append([]byte("mmt-key-v1\x00"), shared...))
	var k crypt.Key
	copy(k[:], sum[:crypt.KeySize])
	return k
}

// armReceive allocates a waiting PMO for the next inbound delegation on c
// (Figure 6 step 2: the receiver sets the buffer's MMT state to waiting).
// The PMO is owned by the connection's local enclave.
func (m *Monitor) armReceive(c *Connection) error {
	p, err := m.AllocPMO(c.Local)
	if err != nil {
		return err
	}
	mmt, err := m.node.Expect(p.Region, c.conn)
	if err != nil {
		return err
	}
	p.mmt = mmt
	c.recv = p
	return nil
}

// Connection looks up a connection by id.
func (m *Monitor) Connection(id string) (*Connection, bool) {
	c, ok := m.conns[id]
	return c, ok
}

// SendPMO delegates the PMO's MMT closure to the connection's peer
// (Figure 6 step 3). Owner only; the MMT must be valid. The closure goes
// onto the untrusted network; the sender's region is read-only until the
// peer's ack arrives (Pump processes it).
func (m *Monitor) SendPMO(caller EnclaveID, cap CapID, connID string, mode core.TransferMode) error {
	c, ok := m.conns[connID]
	if !ok {
		return ErrNoConn
	}
	p, err := m.checkOwner(caller, cap)
	if err != nil {
		return err
	}
	if p.mmt == nil {
		return fmt.Errorf("monitor: PMO %d has no MMT", cap)
	}
	closure, err := p.mmt.BeginSend(c.conn, mode)
	if err != nil {
		if errors.Is(err, core.ErrStaleCounter) {
			m.ctl.Trace().Event(trace.EvStaleCounter, m.ctl.Clock().Now(), p.mmt.GUAddr(), "monitor: delegation aborted before seal")
		}
		return err
	}
	c.pending[p.mmt.GUAddr()] = p
	frame := encodeClosureFrame(connID, closure.Encode())
	// Charge the NIC/DMA serialization and the fixed delegation cost to
	// this machine's clock, exactly as the channel layer does. The send is
	// the root of this migration's causal trace; the root span stays open
	// until the peer's ack or nack arrives (Pump's KindControl branch).
	probe := m.ctl.Trace()
	root := probe.BeginSpan(probe.NewTrace(), trace.PhaseSend, m.ctl.Clock().Now())
	probe.Count(trace.CtrClosuresSent, 1)
	probe.Count(trace.CtrClosureEncodeBytes, uint64(len(frame)))
	prof := m.ctl.Profile()
	probe.AddCycles(trace.PhaseDMA, prof.RemoteWriteCost(len(frame)))
	probe.AddCycles(trace.PhaseDelegation, prof.DelegationFixed)
	probe.RecordOp(trace.OpMigrationSend, prof.RemoteWriteCost(len(frame))+prof.DelegationFixed)
	root.AddCycles(prof.RemoteWriteCost(len(frame)) + prof.DelegationFixed)
	m.ctl.Clock().AdvanceCycles(prof.RemoteWriteCost(len(frame)) + prof.DelegationFixed)
	m.endpoint.SendTraced(c.PeerMonitor, netsim.KindClosure, frame, root.Context())
	probe.Event(trace.EvMigrationSend, m.ctl.Clock().Now(), p.mmt.GUAddr(), "monitor: closure on wire")
	if root != nil {
		if c.pendingSpan == nil {
			c.pendingSpan = make(map[uint64]*trace.ActiveSpan)
		}
		c.pendingSpan[p.mmt.GUAddr()] = root
	}
	return nil
}

// Pump processes one pending network message: an inbound closure is
// verified and accepted into the armed waiting buffer (then acked), and an
// inbound ack completes the matching outbound delegation. It reports
// whether a message was processed. Delegation-protocol rejections
// (replay, re-order, tamper) are returned as errors but leave the monitor
// consistent: the waiting buffer stays armed.
func (m *Monitor) Pump() (bool, error) {
	msg, ok := m.endpoint.Recv()
	if !ok {
		return false, nil
	}
	switch msg.Kind {
	case netsim.KindClosure:
		connID, wire, err := decodeClosureFrame(msg.Payload)
		if err != nil {
			return true, err
		}
		probe := m.ctl.Trace()
		// Child of the migration root carried in the message metadata; a
		// receiver of untraced traffic roots a local trace instead.
		ctx := msg.Trace
		if !ctx.Valid() {
			ctx = probe.NewTrace()
		}
		sp := probe.BeginSpan(ctx, trace.PhaseRecv, m.ctl.Clock().Now())
		probe.Count(trace.CtrClosureDecodeBytes, uint64(len(msg.Payload)))
		c, ok := m.conns[connID]
		if !ok {
			return true, ErrNoConn
		}
		if c.recv == nil || c.recv.mmt == nil {
			return true, fmt.Errorf("monitor: no armed receive buffer on %s", connID)
		}
		// The controller records the functional install as a child of sp.
		m.ctl.SetCausal(sp.Context())
		acceptErr := c.recv.mmt.Accept(c.conn, wire)
		m.ctl.SetCausal(trace.Context{})
		if err := acceptErr; err != nil {
			// Rejected: nack the specific delegation (its cleartext address
			// hint is readable even when verification fails) and keep the
			// buffer armed. Ledger verdicts take constant kinds (mmt-vet
			// eventkind), hence the explicit classification branches.
			probe.Count(trace.CtrClosuresRejected, 1)
			now := m.ctl.Clock().Now()
			var hint uint64
			decoded, derr := core.DecodeClosure(wire)
			if derr == nil {
				hint = decoded.GUAddrHint
			}
			switch {
			case errors.Is(err, core.ErrReplay):
				probe.Event(trace.EvReplayReject, now, hint, "monitor: counter not fresh")
			case errors.Is(err, core.ErrReorder):
				probe.Event(trace.EvReorderReject, now, hint, "monitor: address not monotonic")
			case errors.Is(err, core.ErrAuth):
				probe.Event(trace.EvAuthFail, now, hint, "monitor: sealed root unauthentic")
			case errors.Is(err, core.ErrIntegrity):
				probe.Event(trace.EvIntegrityFail, now, hint, "monitor: closure contents tampered")
			default:
				probe.Event(trace.EvMigrationReject, now, hint, "monitor: malformed closure")
			}
			if derr == nil {
				m.sendAck(c, false, hint, ctx)
			}
			sp.End(m.ctl.Clock().Now())
			return true, err
		}
		c.Received = append(c.Received, c.recv)
		accepted := c.recv.mmt.GUAddr()
		c.recv = nil
		probe.Count(trace.CtrClosuresAccepted, 1)
		ackCost := m.sendAck(c, true, accepted, ctx)
		probe.RecordOp(trace.OpMigrationRecv, ackCost)
		sp.AddCycles(ackCost)
		probe.Event(trace.EvMigrationAccept, m.ctl.Clock().Now(), accepted, "monitor: closure installed")
		sp.End(m.ctl.Clock().Now())
		// Re-arm for the next delegation if the pool allows it.
		if len(m.pool) > 0 {
			if err := m.armReceive(c); err != nil {
				return true, err
			}
		}
		return true, nil

	case netsim.KindControl:
		var am ackMsg
		if err := json.Unmarshal(msg.Payload, &am); err != nil || am.Type != "ack" {
			return true, fmt.Errorf("monitor: malformed control message")
		}
		c, ok := m.conns[am.ConnID]
		if !ok {
			return true, ErrNoConn
		}
		p, ok := c.pending[am.GUAddr]
		if !ok {
			return true, fmt.Errorf("monitor: ack for unknown delegation %#x on %s", am.GUAddr, am.ConnID)
		}
		delete(c.pending, am.GUAddr)
		// The ack closes the migration's causal root span.
		if root, ok := c.pendingSpan[am.GUAddr]; ok {
			delete(c.pendingSpan, am.GUAddr)
			root.End(m.ctl.Clock().Now())
		}
		if err := p.mmt.CompleteSend(am.OK); err != nil {
			return true, err
		}
		if am.OK {
			m.ctl.Trace().Event(trace.EvDelegationAck, m.ctl.Clock().Now(), am.GUAddr, "monitor: transfer acknowledged")
		} else {
			m.ctl.Trace().Event(trace.EvDelegationAck, m.ctl.Clock().Now(), am.GUAddr, "monitor: transfer nacked")
		}
		if am.OK {
			c.Acked++
			if !p.mmt.ReadOnly() && p.mmt.State() == core.StateInvalid {
				// Ownership moved to the peer: free the local region.
				delete(m.enclaves[p.Owner].caps, p.Cap)
				delete(m.pmos, p.Cap)
				m.pool = append(m.pool, p.Region)
			}
		}
		return true, nil

	default:
		return true, fmt.Errorf("monitor: unexpected message kind %v", msg.Kind)
	}
}

// sendAck pushes an ack/nack control frame and reports the cycles it
// charged, so the caller can mirror them into the per-op histograms. The
// frame rides ctx — the migration's root context — so its wire flight
// lands in the same causal trace as the transfer it completes.
func (m *Monitor) sendAck(c *Connection, ok bool, guaddr uint64, ctx trace.Context) sim.Cycles {
	body, err := json.Marshal(ackMsg{Type: "ack", ConnID: c.ID, OK: ok, GUAddr: guaddr})
	if err != nil {
		return 0
	}
	cost := m.ctl.Profile().RemoteWriteCost(len(body))
	m.ctl.Trace().AddCycles(trace.PhaseDelegation, cost)
	m.ctl.Clock().AdvanceCycles(cost)
	m.endpoint.SendTraced(c.PeerMonitor, netsim.KindControl, body, ctx)
	return cost
}

// PumpAll drains the inbox, returning the first error but continuing to
// drain (a rejected closure must not wedge later traffic).
func (m *Monitor) PumpAll() error {
	var first error
	for {
		processed, err := m.Pump()
		if err != nil && first == nil {
			first = err
		}
		if !processed {
			return first
		}
	}
}

// TakeReceived pops the oldest received PMO on a connection, if any.
func (m *Monitor) TakeReceived(connID string) (*PMO, bool) {
	c, ok := m.conns[connID]
	if !ok || len(c.Received) == 0 {
		return nil, false
	}
	p := c.Received[0]
	c.Received = c.Received[1:]
	return p, true
}
