package channel

import (
	"encoding/binary"
	"errors"
	"fmt"

	"mmt/internal/core"
	"mmt/internal/netsim"
	"mmt/internal/sim"
	"mmt/internal/trace"
)

// Delegation is the MMT closure delegation channel: message passing where
// the payload travels as whole MMT closures — ciphertext, tree nodes, MACs
// and sealed root — with no re-encryption and no extra copies (§IV-B2).
//
// Each side owns a pool of protection regions used as send and receive
// buffers (the paper's pinned sPMO pool). A message larger than one MMT's
// granularity is split across several closures; a smaller one still costs
// a whole closure — the constant-below-2M behaviour of Table IV.
type Delegation struct {
	common
	node *core.Node
	conn *core.Conn
	pool []int
	// inflight are MMTs in sending state awaiting acks, oldest first.
	inflight []inflightDeleg
	// stash holds messages popped while looking for a different kind.
	stash []netsim.Message
}

// inflightDeleg pairs an in-flight MMT with its open causal root span:
// the migration's end-to-end span stays open from send until the ack or
// nack completes it (drainAcks) or the sender gives up (AbandonInFlight).
type inflightDeleg struct {
	mmt *core.MMT
	sp  *trace.ActiveSpan // nil when tracing is disabled
}

// msgHeader frames one chunk inside a region's plaintext.
const (
	msgMagic      = 0x4753534D // "MSSG"
	msgHeaderSize = 16
)

// NewDelegation builds one side of a delegation channel. regions is the
// pool of free protection regions this side may use for buffers; it must
// be disjoint from regions used elsewhere on the node.
func NewDelegation(ep *netsim.Endpoint, peer string, prof *sim.Profile, node *core.Node, conn *core.Conn, regions []int) *Delegation {
	return &Delegation{
		common: common{ep: ep, peer: peer, prof: prof},
		node:   node,
		conn:   conn,
		pool:   append([]int(nil), regions...),
	}
}

// Capacity reports the payload bytes one closure carries.
func (c *Delegation) Capacity() int {
	return c.node.Controller().Geometry().DataSize() - msgHeaderSize
}

// PoolFree reports the free buffer regions (tests).
func (c *Delegation) PoolFree() int { return len(c.pool) }

// popRegion takes a free region.
func (c *Delegation) popRegion() (int, error) {
	if len(c.pool) == 0 {
		return 0, fmt.Errorf("channel: delegation buffer pool exhausted")
	}
	r := c.pool[0]
	c.pool = c.pool[1:]
	return r, nil
}

// popKind returns the next pending message of the wanted kind, stashing
// others (acks and closures interleave on a bidirectional endpoint).
func (c *Delegation) popKind(kind netsim.Kind) (netsim.Message, bool) {
	for i, m := range c.stash {
		if m.Kind == kind {
			c.stash = append(c.stash[:i], c.stash[i+1:]...)
			return m, true
		}
	}
	for {
		m, ok := c.ep.Recv()
		if !ok {
			return netsim.Message{}, false
		}
		if m.Kind == kind {
			return m, true
		}
		c.stash = append(c.stash, m)
	}
}

// ack frames are 9 bytes: a status byte plus the global-unique address of
// the delegated MMT, so acks and in-flight delegations match even when an
// adversary re-orders traffic.
func encodeAck(ok bool, guaddr uint64) []byte {
	out := make([]byte, 9)
	if ok {
		out[0] = 1
	}
	binary.LittleEndian.PutUint64(out[1:], guaddr)
	return out
}

func decodeAck(b []byte) (ok bool, guaddr uint64, err error) {
	if len(b) != 9 {
		return false, 0, fmt.Errorf("channel: malformed ack (%d bytes)", len(b))
	}
	return b[0] == 1, binary.LittleEndian.Uint64(b[1:]), nil
}

// errUnknownAck reports an ack naming no in-flight delegation — stale, or
// its closure's address hint was destroyed in transit.
var errUnknownAck = errors.New("channel: ack for unknown delegation")

// drainAcks processes pending acks, completing in-flight delegations and
// recycling their regions. Acks are matched to in-flight MMTs by
// global-unique address; an ack that matches nothing (e.g. a nack for a
// closure whose header an attacker destroyed) is dropped like a lost
// packet.
func (c *Delegation) drainAcks() error {
	// A nack for one of our in-flight delegations (ErrClosed) outranks a
	// stale or unknown ack: the latter is delivery noise an adversary can
	// always inject, the former means our transfer definitively failed.
	var closedErr, otherErr error
	for {
		m, ok := c.popKind(netsim.KindControl)
		if !ok {
			if closedErr != nil {
				return closedErr
			}
			return otherErr
		}
		okByte, guaddr, err := decodeAck(m.Payload)
		if err != nil {
			if otherErr == nil {
				otherErr = err
			}
			continue
		}
		matched := false
		for i, d := range c.inflight {
			mmt := d.mmt
			if mmt.GUAddr() != guaddr {
				continue
			}
			c.inflight = append(c.inflight[:i], c.inflight[i+1:]...)
			// The ack closes the migration's causal root: the span now
			// encloses send, flight, remote accept and the ack's return trip.
			d.sp.End(c.ep.Clock().Now())
			region := mmt.Region()
			if err := mmt.CompleteSend(okByte); err != nil {
				return err
			}
			if okByte {
				c.probe.Event(trace.EvDelegationAck, c.ep.Clock().Now(), guaddr, "delegation: transfer acknowledged")
			} else {
				c.probe.Event(trace.EvDelegationAck, c.ep.Clock().Now(), guaddr, "delegation: transfer nacked")
			}
			if mmt.State() == core.StateInvalid {
				c.pool = append(c.pool, region)
			}
			if !okByte && closedErr == nil {
				closedErr = ErrClosed
			}
			matched = true
			break
		}
		if !matched && otherErr == nil {
			otherErr = fmt.Errorf("%w: %#x", errUnknownAck, guaddr)
		}
	}
}

// Send transfers payload to the peer as one or more ownership-transfer
// closures. The per-chunk cost is a remote write of the whole closure
// (data + metadata) plus the fixed seal/ack cost — never encryption.
func (c *Delegation) Send(payload []byte) error {
	if err := c.drainAcks(); err != nil {
		return err
	}
	capacity := c.Capacity()
	total := (len(payload) + capacity - 1) / capacity
	if total == 0 {
		total = 1
	}
	for i := 0; i < total; i++ {
		lo := i * capacity
		hi := lo + capacity
		if hi > len(payload) {
			hi = len(payload)
		}
		if err := c.sendChunk(payload[lo:hi], i, total); err != nil {
			return err
		}
	}
	c.stats.Messages++
	c.stats.Bytes += len(payload)
	return nil
}

func (c *Delegation) sendChunk(chunk []byte, idx, total int) error {
	region, err := c.popRegion()
	if err != nil {
		return err
	}
	// The application produces its message directly into the secure buffer;
	// that production is not part of the transfer cost (unlike the secure
	// channel's extra copies, which exist only to cross the enclave
	// boundary).
	ctl := c.node.Controller()
	base := ctl.Memory().RegionBase(region)
	header := make([]byte, msgHeaderSize)
	binary.LittleEndian.PutUint32(header[0:], msgMagic)
	binary.LittleEndian.PutUint32(header[4:], uint32(idx))
	binary.LittleEndian.PutUint32(header[8:], uint32(total))
	binary.LittleEndian.PutUint32(header[12:], uint32(len(chunk)))
	ctl.Memory().Write(base, header)
	ctl.Memory().Write(base+msgHeaderSize, chunk)

	mmt, err := c.node.Acquire(region, c.conn.Key(), c.conn.NextCounter())
	if err != nil {
		return err
	}
	closure, err := mmt.BeginSend(c.conn, core.OwnershipTransfer)
	if err != nil {
		if errors.Is(err, core.ErrStaleCounter) {
			c.probe.Event(trace.EvStaleCounter, c.ep.Clock().Now(), mmt.GUAddr(), "delegation: send aborted before seal")
		}
		return err
	}
	wire := closure.Encode()
	// Root of this migration's causal trace: the span stays open until the
	// peer's ack or nack completes the transfer (drainAcks / Abandon).
	root := c.probe.BeginSpan(c.probe.NewTrace(), trace.PhaseSend, c.ep.Clock().Now())
	c.probe.Count(trace.CtrClosuresSent, 1)
	c.probe.Count(trace.CtrClosureEncodeBytes, uint64(len(wire)))
	c.charge(&c.stats.RemoteWrite, trace.PhaseDMA, c.prof.RemoteWriteCost(len(wire)))
	c.charge(&c.stats.Delegation, trace.PhaseDelegation, c.prof.DelegationFixed)
	c.probe.RecordOp(trace.OpMigrationSend,
		c.prof.RemoteWriteCost(len(wire))+c.prof.DelegationFixed)
	root.AddCycles(c.prof.RemoteWriteCost(len(wire)) + c.prof.DelegationFixed)
	c.inflight = append(c.inflight, inflightDeleg{mmt: mmt, sp: root})
	c.ep.SendTraced(c.peer, netsim.KindClosure, wire, root.Context())
	c.probe.Event(trace.EvMigrationSend, c.ep.Clock().Now(), mmt.GUAddr(), "delegation: closure on wire")
	return nil
}

// Received is one accepted closure, still resident in secure memory.
type Received struct {
	ch     *Delegation
	mmt    *core.MMT
	Index  int
	Total  int
	Length int
}

// MMT exposes the received tree (the data stays in secure memory; reads
// verify and decrypt on demand).
func (r *Received) MMT() *core.MMT { return r.mmt }

// Payload reads the chunk's bytes out of secure memory. The reads verify
// and decrypt as usual but are not charged to the simulated clock: payload
// consumption is application work that every transfer mode performs and
// none of the channels accounts for.
func (r *Received) Payload() ([]byte, error) {
	ctl := r.ch.node.Controller()
	ctl.SetQuiet(true)
	defer ctl.SetQuiet(false)
	raw, err := r.mmt.ReadBytes(0, msgHeaderSize+r.Length)
	if err != nil {
		return nil, err
	}
	return raw[msgHeaderSize:], nil
}

// Release reclaims the buffer region for future receives.
func (r *Received) Release() error {
	region := r.mmt.Region()
	if err := r.mmt.Reclaim(); err != nil {
		return err
	}
	r.ch.pool = append(r.ch.pool, region)
	return nil
}

// Recv accepts the next inbound closure: unseal, freshness and order
// checks, full verification, install — then acks the sender. A rejected
// closure (tampered, replayed, re-ordered) returns the protocol error and
// nacks the sender, whose buffer returns to valid for retry.
func (c *Delegation) Recv() (*Received, error) {
	m, ok := c.popKind(netsim.KindClosure)
	if !ok {
		return nil, ErrEmpty
	}
	// The accept is a child of the migration's root span carried in the
	// message metadata; if the sender was untraced, the receiver roots a
	// trace of its own so local accounting survives.
	ctx := m.Trace
	if !ctx.Valid() {
		ctx = c.probe.NewTrace()
	}
	sp := c.probe.BeginSpan(ctx, trace.PhaseRecv, c.ep.Clock().Now())
	c.probe.Count(trace.CtrClosureDecodeBytes, uint64(len(m.Payload)))
	region, err := c.popRegion()
	if err != nil {
		return nil, err
	}
	mmt, err := c.node.Expect(region, c.conn)
	if err != nil {
		return nil, err
	}
	// The controller records the functional install (tree + line-MAC
	// verification) as a child of the accept span.
	ctl := c.node.Controller()
	ctl.SetCausal(sp.Context())
	err = mmt.Accept(c.conn, m.Payload)
	ctl.SetCausal(trace.Context{})
	if err != nil {
		c.probe.Count(trace.CtrClosuresRejected, 1)
		// Ledger verdict. The kind argument must be a compile-time constant
		// (mmt-vet eventkind), hence the explicit classification branches.
		now := c.ep.Clock().Now()
		var hint uint64
		decoded, derr := core.DecodeClosure(m.Payload)
		if derr == nil {
			hint = decoded.GUAddrHint
		}
		switch {
		case errors.Is(err, core.ErrReplay):
			c.probe.Event(trace.EvReplayReject, now, hint, "delegation: counter not fresh")
		case errors.Is(err, core.ErrReorder):
			c.probe.Event(trace.EvReorderReject, now, hint, "delegation: address not monotonic")
		case errors.Is(err, core.ErrAuth):
			c.probe.Event(trace.EvAuthFail, now, hint, "delegation: sealed root unauthentic")
		case errors.Is(err, core.ErrIntegrity):
			c.probe.Event(trace.EvIntegrityFail, now, hint, "delegation: closure contents tampered")
		default:
			c.probe.Event(trace.EvMigrationReject, now, hint, "delegation: malformed closure")
		}
		// Free the waiting buffer and nack the specific delegation (its
		// cleartext address hint survives even when verification fails).
		if cerr := mmt.Cancel(); cerr != nil {
			return nil, cerr
		}
		c.pool = append(c.pool, region)
		if derr == nil {
			// The nack rides the migration's root context so its wire flight
			// lands in the same trace as the failed transfer.
			c.ep.SendTraced(c.peer, netsim.KindControl, encodeAck(false, hint), ctx)
		}
		sp.End(c.ep.Clock().Now())
		return nil, err
	}
	// Ack (Figure 6 step 4): a tiny control message naming the delegation.
	c.probe.Count(trace.CtrClosuresAccepted, 1)
	c.charge(&c.stats.Delegation, trace.PhaseDelegation, c.prof.RemoteWriteCost(9))
	c.probe.RecordOp(trace.OpMigrationRecv, c.prof.RemoteWriteCost(9))
	sp.AddCycles(c.prof.RemoteWriteCost(9))
	c.ep.SendTraced(c.peer, netsim.KindControl, encodeAck(true, mmt.GUAddr()), ctx)
	c.probe.Event(trace.EvMigrationAccept, c.ep.Clock().Now(), mmt.GUAddr(), "delegation: closure installed")
	sp.End(c.ep.Clock().Now())

	c.node.Controller().SetQuiet(true)
	hdr, err := mmt.ReadBytes(0, msgHeaderSize)
	c.node.Controller().SetQuiet(false)
	if err != nil {
		return nil, err
	}
	if binary.LittleEndian.Uint32(hdr) != msgMagic {
		return nil, fmt.Errorf("channel: received closure is not a framed message")
	}
	return &Received{
		ch:     c,
		mmt:    mmt,
		Index:  int(binary.LittleEndian.Uint32(hdr[4:])),
		Total:  int(binary.LittleEndian.Uint32(hdr[8:])),
		Length: int(binary.LittleEndian.Uint32(hdr[12:])),
	}, nil
}

// RecvMessage assembles a whole multi-chunk message, releasing the buffer
// regions as it goes.
func (c *Delegation) RecvMessage() ([]byte, error) {
	var out []byte
	for {
		r, err := c.Recv()
		if err != nil {
			return nil, err
		}
		p, err := r.Payload()
		if err != nil {
			return nil, err
		}
		out = append(out, p...)
		done := r.Index == r.Total-1
		if err := r.Release(); err != nil {
			return nil, err
		}
		if done {
			return out, nil
		}
	}
}

// InFlight reports delegations awaiting acks (tests).
func (c *Delegation) InFlight() int { return len(c.inflight) }

// AbandonInFlight gives up on every delegation still awaiting an ack: the
// local timeout path of a reliable sender. Each sending MMT returns to
// valid and is then reclaimed, freeing its buffer for the retry. The data
// lives on in the caller's retry payload; the abandoned closures, if they
// ever arrive, fail the receiver's freshness check.
func (c *Delegation) AbandonInFlight() error {
	for _, d := range c.inflight {
		// Close the migration's causal root at the give-up instant.
		d.sp.End(c.ep.Clock().Now())
		region := d.mmt.Region()
		if err := d.mmt.CompleteSend(false); err != nil {
			return err
		}
		if err := d.mmt.Reclaim(); err != nil {
			return err
		}
		c.pool = append(c.pool, region)
	}
	c.inflight = nil
	return nil
}

// DrainAcks exposes ack processing for callers that interleave sends and
// receives manually.
func (c *Delegation) DrainAcks() error { return c.drainAcks() }
