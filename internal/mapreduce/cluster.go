package mapreduce

import (
	"fmt"

	"mmt/internal/channel"
	"mmt/internal/core"
	"mmt/internal/crypt"
	"mmt/internal/engine"
	"mmt/internal/forest"
	"mmt/internal/mem"
	"mmt/internal/netsim"
	"mmt/internal/par"
	"mmt/internal/sim"
	"mmt/internal/trace"
	"mmt/internal/tree"
)

// Mode selects the shuffle protection scheme (the three configurations of
// Figure 13).
type Mode int

const (
	// Baseline shuffles over unprotected remote writes.
	Baseline Mode = iota
	// SecureChannel shuffles over software AES-GCM.
	SecureChannel
	// MMT shuffles over MMT closure delegation.
	MMT
)

func (m Mode) String() string {
	switch m {
	case Baseline:
		return "baseline"
	case SecureChannel:
		return "secure-channel"
	case MMT:
		return "mmt"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Config sizes one MapReduce job.
type Config struct {
	Mappers  int
	Reducers int
	Mode     Mode
	// Profile is the node cost model (cloned per machine so clocks stay
	// independent).
	Profile *sim.Profile
	// Geometry is the MMT tree shape (MMT mode only).
	Geometry tree.Geometry
	// PoolRegions is the buffer-region pool per delegation channel (MMT
	// mode only). It must cover the chunks of one partition in flight.
	PoolRegions int
	// MapCyclesPerByte and ReduceCyclesPerKV model the compute phases;
	// Figure 13a sweeps these to set the communication fraction.
	MapCyclesPerByte  float64
	ReduceCyclesPerKV float64
	// Combiner, when set, folds each mapper's partition locally before the
	// shuffle (the classic combiner optimization): values of equal keys
	// are pre-reduced, shrinking the intermediate transfer.
	Combiner Reducer
	// NetLatency is the interconnect one-way propagation delay.
	NetLatency sim.Time
	// Trace, when non-nil, collects per-machine phase cycles, counters and
	// spans for the whole job (one trace process per simulated host).
	Trace *trace.Sink
	// Workers caps the host goroutines used for machine construction and
	// the pure compute halves of the map and reduce epochs. <= 1 (the
	// default) runs the job entirely on the calling goroutine. The result
	// — outputs, simulated times, trace bytes — is identical at any
	// setting: all clock, trace and network effects are applied serially
	// in machine order.
	Workers int
}

// workers reports the effective fan-out width (always >= 1).
func (c Config) workers() int {
	if c.Workers > 1 {
		return c.Workers
	}
	return 1
}

func (c Config) validate() error {
	switch {
	case c.Mappers < 1 || c.Reducers < 1:
		return fmt.Errorf("mapreduce: need at least one mapper and one reducer")
	case c.Profile == nil:
		return fmt.Errorf("mapreduce: nil profile")
	case c.Mode == MMT && c.Geometry.Validate() != nil:
		return fmt.Errorf("mapreduce: MMT mode needs a valid geometry")
	}
	return nil
}

// Result is the outcome of one job.
type Result struct {
	// Elapsed is the makespan: the latest simulated clock across machines.
	Elapsed sim.Time
	// Output is the final reduced key-value map.
	Output map[string]int64
	// ShuffleBytes counts intermediate bytes crossing machines.
	ShuffleBytes int
	// CommCycles aggregates channel costs across all machines.
	CommCycles sim.Cycles
	// MapTime and ReduceTime are per-machine finish times.
	MapTime    []sim.Time
	ReduceTime []sim.Time
}

// machine is one simulated host.
type machine struct {
	name  string
	clock *sim.Clock
	node  *core.Node   // MMT mode only
	probe *trace.Probe // nil = tracing disabled
	// nextRegion hands out disjoint region ranges to this machine's
	// delegation channels.
	nextRegion int
}

// newMachine builds one host. The trace probe is passed in rather than
// registered here so that machines can be constructed in parallel:
// Sink.Probe mutates the shared sink, so Run registers all probes
// serially first.
func newMachine(cfg Config, name string, id int, channels int, probe *trace.Probe) (*machine, error) {
	m := &machine{name: name, clock: sim.NewClock(cfg.Profile.FreqHz), probe: probe}
	if cfg.Mode != MMT {
		return m, nil
	}
	regions := channels * cfg.PoolRegions
	if regions < 1 {
		regions = 1
	}
	pm := mem.New(mem.Config{
		Size:          regions * cfg.Geometry.DataSize(),
		RegionSize:    cfg.Geometry.DataSize(),
		MetaPerRegion: cfg.Geometry.MetaSize(),
	})
	ctl, err := engine.New(pm, cfg.Geometry, m.clock, cfg.Profile)
	if err != nil {
		return nil, err
	}
	ctl.SetTrace(m.probe)
	m.node = core.NewNode(forest.NodeID(id), ctl)
	return m, nil
}

// takeRegions reserves n regions for one channel.
func (m *machine) takeRegions(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = m.nextRegion
		m.nextRegion++
	}
	return out
}

// link wires one direction of a mapper<->reducer pair: a dedicated
// endpoint pair (QP-like), returning the transports for each side.
func link(cfg Config, net *netsim.Network, a, b *machine, tag string) (channel.Transport, channel.Transport, error) {
	nameA := a.name + "/" + tag
	nameB := b.name + "/" + tag
	epA, err := net.Attach(nameA, a.clock)
	if err != nil {
		return nil, nil, err
	}
	epB, err := net.Attach(nameB, b.clock)
	if err != nil {
		return nil, nil, err
	}
	// Endpoint and channel activity both land under the owning machine's
	// trace process, so a host's wire bytes and channel cycles aggregate.
	epA.SetTrace(a.probe)
	epB.SetTrace(b.probe)
	key := crypt.KeyFromBytes([]byte("mr/" + tag))
	switch cfg.Mode {
	case Baseline:
		nsA := channel.NewNonSecure(epA, nameB, cfg.Profile)
		nsB := channel.NewNonSecure(epB, nameA, cfg.Profile)
		nsA.SetTrace(a.probe)
		nsB.SetTrace(b.probe)
		return nsA, nsB, nil
	case SecureChannel:
		scA, err := channel.NewSecure(epA, nameB, cfg.Profile, key)
		if err != nil {
			return nil, nil, err
		}
		scB, err := channel.NewSecure(epB, nameA, cfg.Profile, key)
		if err != nil {
			return nil, nil, err
		}
		scA.SetTrace(a.probe)
		scB.SetTrace(b.probe)
		return scA, scB, nil
	case MMT:
		connA := core.NewConn(key, 0)
		connB := core.NewConn(key, 0)
		da := channel.NewDelegation(epA, nameB, cfg.Profile, a.node, connA, a.takeRegions(cfg.PoolRegions))
		db := channel.NewDelegation(epB, nameA, cfg.Profile, b.node, connB, b.takeRegions(cfg.PoolRegions))
		da.SetTrace(a.probe)
		db.SetTrace(b.probe)
		return channel.AsTransport(da), channel.AsTransport(db), nil
	default:
		return nil, nil, fmt.Errorf("mapreduce: unknown mode %v", cfg.Mode)
	}
}

// statser lets Run aggregate channel costs regardless of transport type.
type statser interface{ Stats() channel.Stats }

// Run executes a full job: split, map, shuffle, reduce.
func Run(cfg Config, input []byte, mapf Mapper, redf Reducer) (*Result, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.PoolRegions == 0 {
		cfg.PoolRegions = 4
	}
	net := netsim.NewNetwork(cfg.NetLatency)

	// Machine construction fans out across workers: in MMT mode each host
	// builds a full engine (trees, pools), which dominates small-job setup.
	// Probes register serially first — Sink.Probe mutates the shared sink —
	// so process order in the trace matches the serial run.
	type mdesc struct {
		name     string
		id       int
		channels int
		probe    *trace.Probe
	}
	descs := make([]mdesc, 0, cfg.Mappers+cfg.Reducers)
	for i := 0; i < cfg.Mappers; i++ {
		descs = append(descs, mdesc{fmt.Sprintf("mapper-%d", i), 1 + i, cfg.Reducers, nil})
	}
	for j := 0; j < cfg.Reducers; j++ {
		descs = append(descs, mdesc{fmt.Sprintf("reducer-%d", j), 1 + cfg.Mappers + j, cfg.Mappers, nil})
	}
	for i := range descs {
		descs[i].probe = cfg.Trace.Probe(descs[i].name)
	}
	machines, err := par.Map(cfg.workers(), descs, func(_ int, d mdesc) (*machine, error) {
		return newMachine(cfg, d.name, d.id, d.channels, d.probe)
	})
	if err != nil {
		return nil, err
	}
	mappers := machines[:cfg.Mappers]
	reducers := machines[cfg.Mappers:]

	// All-to-all links: sendside[m][j] on the mapper, recvside[j][m] on the
	// reducer.
	sendSide := make([][]channel.Transport, cfg.Mappers)
	recvSide := make([][]channel.Transport, cfg.Reducers)
	for j := range recvSide {
		recvSide[j] = make([]channel.Transport, cfg.Mappers)
	}
	var allTransports []channel.Transport
	for i := range mappers {
		sendSide[i] = make([]channel.Transport, cfg.Reducers)
		for j := range reducers {
			a, b, err := link(cfg, net, mappers[i], reducers[j], fmt.Sprintf("m%dr%d", i, j))
			if err != nil {
				return nil, err
			}
			sendSide[i][j] = a
			recvSide[j][i] = b
			allTransports = append(allTransports, a, b)
		}
	}

	res := &Result{Output: make(map[string]int64)}

	// Map phase. The epoch splits in two: the pure compute half (run the
	// map function, partition, combine, encode) fans out across workers —
	// it touches only the mapper's own chunk — while the effect half
	// (cycle charges, trace spans, shuffle sends through the shared
	// network) replays serially in mapper order, reproducing the serial
	// schedule exactly.
	chunks := splitInput(input, cfg.Mappers)
	type mapOut struct {
		payloads [][]byte // encoded partition per reducer
		rawLens  []int    // pre-combine KV counts (combiner cost model)
	}
	mapOuts, err := par.Map(cfg.workers(), chunks, func(_ int, chunk []byte) (mapOut, error) {
		parts := make([][]KV, cfg.Reducers)
		mapf(chunk, func(k string, v int64) {
			p := partitionOf(k, cfg.Reducers)
			parts[p] = append(parts[p], KV{Key: k, Value: v})
		})
		out := mapOut{payloads: make([][]byte, cfg.Reducers), rawLens: make([]int, cfg.Reducers)}
		for j, part := range parts {
			out.rawLens[j] = len(part)
			if cfg.Combiner != nil {
				part = combine(part, cfg.Combiner)
			}
			out.payloads[j] = encodeKVs(part)
		}
		return out, nil
	})
	if err != nil {
		return nil, err
	}
	for i, m := range mappers {
		mapSpan := m.probe.Begin(trace.PhaseApp, m.clock.Now())
		mapCost := sim.Cycles(float64(len(chunks[i])) * cfg.MapCyclesPerByte)
		m.probe.AddCycles(trace.PhaseApp, mapCost)
		m.clock.AdvanceCycles(mapCost)
		mapSpan.End(m.clock.Now())
		for j := range reducers {
			if cfg.Combiner != nil {
				combineCost := sim.Cycles(float64(mapOuts[i].rawLens[j]) * cfg.ReduceCyclesPerKV / 2)
				m.probe.AddCycles(trace.PhaseApp, combineCost)
				m.clock.AdvanceCycles(combineCost)
			}
			payload := mapOuts[i].payloads[j]
			res.ShuffleBytes += len(payload)
			if err := sendSide[i][j].Send(payload); err != nil {
				return nil, fmt.Errorf("mapper %d -> reducer %d: %w", i, j, err)
			}
		}
		res.MapTime = append(res.MapTime, m.clock.Now())
	}

	// Reduce phase, split like the map phase: receives go first, serially
	// in reducer order (they advance clocks and move messages through the
	// shared network); the pure fold — decode, merge, sort, reduce — fans
	// out across workers; the cycle charges, spans and output merge replay
	// serially in reducer order.
	received := make([][][]byte, cfg.Reducers)
	for j := range reducers {
		received[j] = make([][]byte, cfg.Mappers)
		for i := range mappers {
			payload, err := recvSide[j][i].Recv()
			if err != nil {
				return nil, fmt.Errorf("reducer %d <- mapper %d: %w", j, i, err)
			}
			received[j][i] = payload
		}
	}
	type redOut struct {
		pairs int
		keys  []string // sorted
		vals  map[string]int64
	}
	redOuts, err := par.Map(cfg.workers(), received, func(_ int, payloads [][]byte) (redOut, error) {
		byKey := make(map[string][]int64)
		out := redOut{vals: make(map[string]int64)}
		for _, payload := range payloads {
			kvs, err := decodeKVs(payload)
			if err != nil {
				return redOut{}, err
			}
			for _, kv := range kvs {
				byKey[kv.Key] = append(byKey[kv.Key], kv.Value)
				out.pairs++
			}
		}
		out.keys = sortedKeys(byKey)
		for _, k := range out.keys {
			out.vals[k] = redf(k, byKey[k])
		}
		return out, nil
	})
	if err != nil {
		return nil, err
	}
	for j, r := range reducers {
		redSpan := r.probe.Begin(trace.PhaseApp, r.clock.Now())
		redCost := sim.Cycles(float64(redOuts[j].pairs) * cfg.ReduceCyclesPerKV)
		r.probe.AddCycles(trace.PhaseApp, redCost)
		r.clock.AdvanceCycles(redCost)
		redSpan.End(r.clock.Now())
		for _, k := range redOuts[j].keys {
			res.Output[k] = redOuts[j].vals[k]
		}
		res.ReduceTime = append(res.ReduceTime, r.clock.Now())
	}

	// Makespan and aggregate comm costs.
	for _, m := range append(append([]*machine(nil), mappers...), reducers...) {
		if m.clock.Now() > res.Elapsed {
			res.Elapsed = m.clock.Now()
		}
	}
	for _, tr := range allTransports {
		if s, ok := tr.(statser); ok {
			res.CommCycles += s.Stats().Total()
		}
	}
	return res, nil
}
