package attest

import (
	"crypto/ecdsa"
	"crypto/x509"
	"errors"
	"fmt"
	"sort"

	"mmt/internal/forest"
)

// This file is the snapshot layer's view of the attestation identities.
// Keys are persisted as SEC1 EC private key DER (deterministic encoding,
// so a save→load→save round trip is byte-identical); everything signed —
// certificates and reports — is persisted verbatim and re-verified on
// restore instead of re-signed, because ECDSA signing is randomized and
// re-signing would break snapshot byte stability.

// MarshalKey exports the manufacturer's signing key.
func (m *Manufacturer) MarshalKey() ([]byte, error) {
	return x509.MarshalECPrivateKey(m.priv)
}

// RestoreManufacturer rebuilds a manufacturer from a MarshalKey blob.
func RestoreManufacturer(keyDER []byte) (*Manufacturer, error) {
	priv, err := x509.ParseECPrivateKey(keyDER)
	if err != nil {
		return nil, fmt.Errorf("attest: manufacturer key: %w", err)
	}
	return &Manufacturer{priv: priv}, nil
}

// MarshalKey exports the machine's sealed private key.
func (m *Machine) MarshalKey() ([]byte, error) {
	return x509.MarshalECPrivateKey(m.priv)
}

// RestoreMachine rebuilds a machine identity from its persisted key and
// certificate, re-verifying the certificate against the manufacturer and
// checking that it certifies exactly the restored key.
func RestoreMachine(manufacturer *ecdsa.PublicKey, name string, keyDER []byte, cert Certificate) (*Machine, error) {
	priv, err := x509.ParseECPrivateKey(keyDER)
	if err != nil {
		return nil, fmt.Errorf("attest: machine key: %w", err)
	}
	pub, err := VerifyCertificate(manufacturer, &cert)
	if err != nil {
		return nil, err
	}
	if !pub.Equal(&priv.PublicKey) {
		return nil, errors.New("attest: restored certificate does not certify the restored machine key")
	}
	if cert.Subject != name {
		return nil, fmt.Errorf("attest: restored certificate subject %q != machine %q", cert.Subject, name)
	}
	return &Machine{Name: name, priv: priv, Cert: cert}, nil
}

// AuthorityState is the authority's persistable state: signing key,
// measurement whitelist (sorted for deterministic encoding) and the next
// node id to issue.
type AuthorityState struct {
	KeyDER []byte
	Policy []Measurement
	NextID forest.NodeID
}

// MarshalState exports the authority for a snapshot.
func (a *Authority) MarshalState() (*AuthorityState, error) {
	keyDER, err := x509.MarshalECPrivateKey(a.signing)
	if err != nil {
		return nil, err
	}
	policy := make([]Measurement, 0, len(a.policy))
	for m, ok := range a.policy {
		if ok {
			policy = append(policy, m)
		}
	}
	sort.Slice(policy, func(i, j int) bool {
		for k := range policy[i] {
			if policy[i][k] != policy[j][k] {
				return policy[i][k] < policy[j][k]
			}
		}
		return false
	})
	return &AuthorityState{KeyDER: keyDER, Policy: policy, NextID: a.nextID}, nil
}

// RestoreAuthority rebuilds an authority trusting manufacturer from a
// persisted state.
func RestoreAuthority(manufacturer *ecdsa.PublicKey, st *AuthorityState) (*Authority, error) {
	priv, err := x509.ParseECPrivateKey(st.KeyDER)
	if err != nil {
		return nil, fmt.Errorf("attest: authority key: %w", err)
	}
	if st.NextID < 1 {
		return nil, fmt.Errorf("attest: authority next id %d < 1", st.NextID)
	}
	a := &Authority{
		manufacturer: manufacturer,
		signing:      priv,
		policy:       make(map[Measurement]bool, len(st.Policy)),
		nextID:       st.NextID,
	}
	for _, m := range st.Policy {
		a.policy[m] = true
	}
	return a, nil
}
