package analyzers

import (
	"go/ast"
	"go/types"
	"sort"
)

// SimClock forbids wall-clock time and unseeded global randomness in
// simulation code. Every cycle count, queue delay and generated workload
// must be a pure function of the seed and the internal/sim clock, or the
// calibrated cost model silently stops being reproducible.
var SimClock = &Analyzer{
	Name: "simclock",
	ID:   "MMT001",
	Doc: "forbid time.Now/time.Sleep/etc. and unseeded math/rand globals in " +
		"internal/ simulation code; all timing must flow through internal/sim " +
		"and all randomness through a seeded *rand.Rand",
	Run: runSimClock,
}

// bannedTimeFuncs are package time functions that read or wait on the
// wall clock. Pure conversions/constructors (time.Duration arithmetic,
// time.Unix, time.Date) stay legal: they do not observe the host.
var bannedTimeFuncs = map[string]bool{
	"Now":       true,
	"Sleep":     true,
	"Since":     true,
	"Until":     true,
	"After":     true,
	"AfterFunc": true,
	"Tick":      true,
	"NewTicker": true,
	"NewTimer":  true,
}

// allowedRandFuncs are the math/rand package-level functions that do not
// touch the process-global (unseeded) source.
var allowedRandFuncs = map[string]bool{
	"New":       true,
	"NewSource": true,
	"NewZipf":   true,
}

func runSimClock(pass *Pass) error {
	path := pass.Pkg.Path()
	if !inScope(path) || path == "mmt/internal/sim" {
		// internal/sim is the sanctioned clock abstraction; it may wrap
		// package time (e.g. time.Duration formatting) as it sees fit.
		return nil
	}
	// Walk every use of an imported function object. Iterating
	// TypesInfo.Uses (a map) is fine here: the driver sorts diagnostics
	// by position before anything order-sensitive happens.
	var diags []Diagnostic
	for id, obj := range pass.TypesInfo.Uses {
		fn, ok := obj.(*types.Func)
		if !ok || fn.Pkg() == nil {
			continue
		}
		switch fn.Pkg().Path() {
		case "time":
			if bannedTimeFuncs[fn.Name()] {
				diags = append(diags, Diagnostic{Pos: id.Pos(), Message: "time." + fn.Name() +
					" reads the wall clock; simulation code must derive timing from internal/sim"})
			}
		case "math/rand", "math/rand/v2":
			if fn.Signature().Recv() == nil && !allowedRandFuncs[fn.Name()] {
				diags = append(diags, Diagnostic{Pos: id.Pos(), Message: "rand." + fn.Name() +
					" uses the process-global random source; use a seeded rand.New(rand.NewSource(seed))"})
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool { return diags[i].Pos < diags[j].Pos })
	for _, d := range diags {
		pass.Report(d)
	}
	// Separately flag dot-imports of time/math/rand, which would let the
	// banned names appear unqualified.
	for _, f := range pass.Files {
		for _, imp := range f.Imports {
			if imp.Name != nil && imp.Name.Name == "." {
				if p := importPath(imp); p == "time" || p == "math/rand" || p == "math/rand/v2" {
					pass.Reportf(imp.Pos(), "dot-import of %q hides wall-clock and global-rand calls", p)
				}
			}
		}
	}
	return nil
}

func importPath(spec *ast.ImportSpec) string {
	if spec.Path == nil {
		return ""
	}
	s := spec.Path.Value
	if len(s) >= 2 && s[0] == '"' {
		s = s[1 : len(s)-1]
	}
	return s
}
