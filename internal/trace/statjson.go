package trace

import (
	"fmt"
	"io"
	"strconv"
)

// This file renders the histogram and security-event views of a Sink as
// machine-readable JSON, under the same determinism contract as
// export.go: hand-assembled output, no map iteration, no wall-clock
// reads, fixed float formatting — identical runs serialize to identical
// bytes at any worker count.

// HistSchema identifies the histogram export format.
const HistSchema = "mmt-hist/v1"

// EventsSchema identifies the security-event ledger export format
// (JSON Lines: one header object, then one object per event).
const EventsSchema = "mmt-events/v1"

// WriteHistJSON serializes every non-empty per-operation histogram as a
// single JSON object (schema mmt-hist/v1). Processes appear in name
// order, operations in enum order, and only occupied buckets are
// listed, each with its exclusive upper bound in cycles. Safe on a nil
// sink (writes an empty procs list).
func (s *Sink) WriteHistJSON(w io.Writer) error {
	bw := &errWriter{w: w}
	bw.str("{\n  \"schema\": \"" + HistSchema + "\",\n  \"procs\": [")
	if s != nil {
		m := s.Snapshot()
		firstProc := true
		for i := range m.Procs {
			p := &m.Procs[i]
			if !procHasSamples(p) {
				continue
			}
			if !firstProc {
				bw.str(",")
			}
			firstProc = false
			bw.str("\n    {\"proc\": " + jsonString(p.Proc) + ", \"ops\": [")
			firstOp := true
			for op := Op(0); int(op) < NumOps; op++ {
				h := &p.Ops[op]
				if h.Count == 0 {
					continue
				}
				if !firstOp {
					bw.str(",")
				}
				firstOp = false
				bw.str("\n      ")
				writeHistObject(bw, op, h)
			}
			bw.str("\n    ]}")
		}
		if !firstProc {
			bw.str("\n  ")
		}
	}
	bw.str("]\n}\n")
	return bw.err
}

func procHasSamples(p *ProcMetrics) bool {
	for op := range p.Ops {
		if p.Ops[op].Count != 0 {
			return true
		}
	}
	return false
}

func writeHistObject(bw *errWriter, op Op, h *Histogram) {
	bw.str("{\"op\": " + jsonString(op.String()) +
		", \"count\": " + strconv.FormatUint(h.Count, 10) +
		", \"sum_cycles\": " + cyc(h.Sum) +
		", \"min_cycles\": " + cyc(h.Min) +
		", \"max_cycles\": " + cyc(h.Max) +
		", \"mean_cycles\": " + cyc(h.Mean()) +
		", \"p50_cycles\": " + cyc(h.Quantile(0.50)) +
		", \"p90_cycles\": " + cyc(h.Quantile(0.90)) +
		", \"p99_cycles\": " + cyc(h.Quantile(0.99)) +
		", \"buckets\": [")
	first := true
	for i := 0; i < HistBuckets; i++ {
		if h.Buckets[i] == 0 {
			continue
		}
		if !first {
			bw.str(", ")
		}
		first = false
		bw.str("{\"le_cycles\": " + cyc(BucketBound(i)) +
			", \"count\": " + strconv.FormatUint(h.Buckets[i], 10) + "}")
	}
	bw.str("]}")
}

// WriteEventsJSONL serializes the security-event ledger as JSON Lines
// (schema mmt-events/v1): a header object carrying the schema name, the
// retained event count and the dropped count, then one object per event,
// oldest first. Safe on a nil sink (writes a header with zero events).
func (s *Sink) WriteEventsJSONL(w io.Writer) error {
	bw := &errWriter{w: w}
	events := s.SecEvents()
	var dropped uint64
	if s != nil {
		dropped = s.EventsDropped()
	}
	bw.str(fmt.Sprintf(`{"schema":"%s","events":%d,"dropped":%d}`+"\n",
		EventsSchema, len(events), dropped))
	for i := range events {
		writeSecEventLine(bw, &events[i])
	}
	return bw.err
}

func writeSecEventLine(bw *errWriter, ev *SecEvent) {
	bw.str(`{"seq":` + strconv.FormatUint(ev.Seq, 10) +
		`,"proc":` + jsonString(ev.Proc) +
		`,"kind":` + jsonString(ev.Kind.String()) +
		`,"severity":` + jsonString(ev.Kind.Severity().String()) +
		`,"window":` + strconv.FormatUint(ev.Window, 10) +
		`,"time_us":` + usec(ev.Time) +
		`,"addr":"0x` + strconv.FormatUint(ev.Addr, 16) + `"` +
		`,"detail":` + jsonString(ev.Detail))
	if len(ev.Flight) > 0 {
		bw.str(`,"flight":[`)
		for i := range ev.Flight {
			fs := &ev.Flight[i]
			if i > 0 {
				bw.str(",")
			}
			bw.str(`{"phase":` + jsonString(fs.Phase.String()) +
				`,"begin_us":` + usec(fs.Begin) +
				`,"end_us":` + usec(fs.End))
			if fs.Trace.Valid() {
				bw.str(`,"trace":` + jsonString(fs.Trace.String()) +
					`,"span":` + strconv.FormatUint(uint64(fs.Span), 10))
			}
			bw.str("}")
		}
		bw.str("]")
	}
	bw.str("}\n")
}
