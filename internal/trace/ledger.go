package trace

import "mmt/internal/sim"

// EventKind classifies one entry in the security-event ledger. Kinds at
// record sites must be compile-time constants (enforced by the mmt-vet
// eventkind analyzer) so the set of auditable verdicts is statically
// known.
type EventKind uint8

const (
	// EvIntegrityFail: a data-line MAC or tree-path verification failed
	// (engine ErrIntegrity).
	EvIntegrityFail EventKind = iota
	// EvAuthFail: a sealed root or AEAD frame failed authentication
	// (ErrAuth).
	EvAuthFail
	// EvReplayReject: a closure was rejected for a non-fresh root counter
	// (ErrReplay).
	EvReplayReject
	// EvReorderReject: a closure was rejected for a non-monotonic
	// global-unique address (ErrReorder).
	EvReorderReject
	// EvStaleCounter: a sender aborted a delegation before sealing
	// because the connection floor had passed the MMT's counter
	// (ErrStaleCounter).
	EvStaleCounter
	// EvMigrationSend: an MMT closure was sealed and put on the wire.
	EvMigrationSend
	// EvMigrationAccept: an incoming MMT closure verified and installed.
	EvMigrationAccept
	// EvMigrationReject: an incoming MMT closure was rejected for a
	// reason other than the specific verdicts above.
	EvMigrationReject
	// EvDelegationAck: a delegation ack (or nack) completed the sender
	// side of a transfer.
	EvDelegationAck
	// EvCapDestroy: a capability was destroyed and its region reclaimed.
	EvCapDestroy

	// NumEventKinds is the number of ledger event kinds.
	NumEventKinds = int(EvCapDestroy) + 1
)

var eventKindNames = [NumEventKinds]string{
	EvIntegrityFail:   "integrity-fail",
	EvAuthFail:        "auth-fail",
	EvReplayReject:    "replay-reject",
	EvReorderReject:   "reorder-reject",
	EvStaleCounter:    "stale-counter",
	EvMigrationSend:   "migration-send",
	EvMigrationAccept: "migration-accept",
	EvMigrationReject: "migration-reject",
	EvDelegationAck:   "delegation-ack",
	EvCapDestroy:      "cap-destroy",
}

func (k EventKind) String() string {
	if int(k) < NumEventKinds {
		return eventKindNames[k]
	}
	return "event?"
}

// EventKindByName reports the kind with the given exporter name.
func EventKindByName(name string) (EventKind, bool) {
	for i, n := range eventKindNames {
		if n == name {
			return EventKind(i), true
		}
	}
	return 0, false
}

// SecEvent is one cycle-stamped entry in the security-event ledger.
type SecEvent struct {
	// Seq numbers events in record order across the whole sink, starting
	// at 1. Gaps at the front of a snapshot mean the bounded ledger
	// dropped the oldest entries.
	Seq  uint64
	Proc string
	Kind EventKind
	// Time is the recording node's simulated clock at the event.
	Time sim.Time
	// Addr is the global-unique address (or region-derived address) the
	// event concerns; 0 when not applicable.
	Addr uint64
	// Detail is a short constant tag chosen at the record site.
	Detail string
	// Window is the sampling window index current on the recording node
	// when the event was recorded (0 when windowed sampling is off), so
	// ledger entries — and any droppage between them — are localizable
	// on the series timeline.
	Window uint64
	// Flight is the recording process's flight-recorder ring, frozen
	// (copied oldest-first) at record time for kinds of severity >=
	// SevWarn; nil otherwise.
	Flight []FlightSpan
}

// DefaultEventCap is the default bound of the ledger ring buffer. It is
// a fixed constant (not tuned per run) so identical workloads keep
// identical ledgers.
const DefaultEventCap = 1024

// secLedger is a bounded ring of SecEvents owned by a Sink.
type secLedger struct {
	buf  []SecEvent
	head int    // index of the oldest entry once the ring is full
	seq  uint64 // total events ever recorded
	cap  int    // bound; 0 means DefaultEventCap
}

func (l *secLedger) bound() int {
	if l.cap <= 0 {
		return DefaultEventCap
	}
	return l.cap
}

func (l *secLedger) record(ev SecEvent) {
	l.seq++
	ev.Seq = l.seq
	if n := l.bound(); len(l.buf) < n {
		l.buf = append(l.buf, ev)
		return
	}
	l.buf[l.head] = ev
	l.head++
	if l.head == len(l.buf) {
		l.head = 0
	}
}

// snapshot returns the retained events oldest-first. Flight rings are
// deep-copied so no mutable state is shared with the ledger (observers
// may poison what they get back; see observability tests).
func (l *secLedger) snapshot() []SecEvent {
	out := make([]SecEvent, 0, len(l.buf))
	out = append(out, l.buf[l.head:]...)
	out = append(out, l.buf[:l.head]...)
	for i := range out {
		if len(out[i].Flight) > 0 {
			out[i].Flight = append([]FlightSpan(nil), out[i].Flight...)
		}
	}
	return out
}

func (l *secLedger) reset() {
	l.buf = l.buf[:0]
	l.head = 0
	l.seq = 0
}

// dropped reports how many events fell off the bounded ring.
func (l *secLedger) dropped() uint64 { return l.seq - uint64(len(l.buf)) }

// Event appends one security event to the sink's ledger, stamped with
// the recording node's simulated time. The kind argument must be a
// compile-time constant (mmt-vet eventkind); detail should be a constant
// tag so recording stays allocation-free. A nil probe records nothing.
func (p *Probe) Event(kind EventKind, at sim.Time, addr uint64, detail string) {
	if p == nil {
		return
	}
	p.sink.mu.Lock()
	ev := SecEvent{Proc: p.proc.name, Kind: kind, Time: at, Addr: addr, Detail: detail}
	if ps := p.proc.series; ps != nil {
		ev.Window = ps.curWindow
	}
	if kind.Severity() >= SevWarn {
		ev.Flight = p.proc.flightSnapshot()
	}
	p.sink.ledger.record(ev)
	p.sink.mu.Unlock()
}

// SecEvents returns a copy of the retained security-event ledger,
// oldest first. A nil sink returns nil.
func (s *Sink) SecEvents() []SecEvent {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ledger.snapshot()
}

// EventsDropped reports how many ledger entries were evicted by the
// ring bound. A nil sink reports 0.
func (s *Sink) EventsDropped() uint64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ledger.dropped()
}

// SetEventCapacity bounds the ledger ring at n entries (n <= 0 restores
// DefaultEventCap). It must be called before any events are recorded;
// changing the bound mid-run would make retention depend on call timing.
func (s *Sink) SetEventCapacity(n int) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ledger.seq == 0 {
		s.ledger.cap = n
		s.ledger.buf = nil
		s.ledger.head = 0
	}
}
