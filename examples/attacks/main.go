// Attacks: the threat model of §III-B made concrete. A man-in-the-middle
// sits on the interconnect between two machines and tries, in turn, to
// spy on, tamper with, replay and re-order MMT closures — and, for
// contrast, succeeds effortlessly against the unprotected baseline
// channel the paper's Figure 13 compares against.
//
//	go run ./examples/attacks
package main

import (
	"bytes"
	"fmt"
	"log"

	"mmt/internal/channel"
	"mmt/internal/core"
	"mmt/internal/crypt"
	"mmt/internal/engine"
	"mmt/internal/forest"
	"mmt/internal/mem"
	"mmt/internal/netsim"
	"mmt/internal/sim"
	"mmt/internal/tree"
)

var geo = tree.ForLevels(2) // 64K regions keep the demo snappy

func buildNode(net *netsim.Network, name string, id int) (*core.Node, *netsim.Endpoint) {
	pm := mem.New(mem.Config{
		Size:          8 * geo.DataSize(),
		RegionSize:    geo.DataSize(),
		MetaPerRegion: geo.MetaSize(),
	})
	ctl, err := engine.New(pm, geo, nil, sim.Gem5Profile())
	if err != nil {
		log.Fatal(err)
	}
	ep, err := net.Attach(name, ctl.Clock())
	if err != nil {
		log.Fatal(err)
	}
	return core.NewNode(forest.NodeID(id), ctl), ep
}

func main() {
	secret := []byte("account table fragment: alice=9000 bob=17")

	fmt.Println("== against the unprotected baseline ==")
	{
		net := netsim.NewNetwork(0)
		_, epA := buildNode(net, "a", 1)
		_, epB := buildNode(net, "b", 2)
		spy := &netsim.Spy{}
		net.SetInterposer(netsim.Chain{spy, &netsim.Tamperer{Kind: netsim.KindData, Offset: 30}})
		s := channel.NewNonSecure(epA, "b", sim.Gem5Profile())
		r := channel.NewNonSecure(epB, "a", sim.Gem5Profile())
		if err := s.Send(secret); err != nil {
			log.Fatal(err)
		}
		got, err := r.Recv()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("spy read the plaintext off the wire: %v\n", bytes.Contains(spy.Captured[0], secret[:16]))
		fmt.Printf("receiver accepted silently tampered data: %v (got %q)\n\n",
			!bytes.Equal(got, secret), got)
	}

	fmt.Println("== against MMT closure delegation ==")
	net := netsim.NewNetwork(0)
	nodeA, epA := buildNode(net, "a", 1)
	nodeB, epB := buildNode(net, "b", 2)
	key := crypt.KeyFromBytes([]byte("demo-link"))
	pool := []int{0, 1, 2, 3}
	mk := func(ep *netsim.Endpoint, peer string, n *core.Node) *channel.Delegation {
		return channel.NewDelegation(ep, peer, sim.Gem5Profile(), n, core.NewConn(key, 0), append([]int(nil), pool...))
	}
	send := mk(epA, "b", nodeA)
	recv := mk(epB, "a", nodeB)

	run := func(name string, adversary netsim.Interposer, sends int) {
		net.SetInterposer(adversary)
		for i := 0; i < sends; i++ {
			if err := send.Send(secret); err != nil {
				log.Fatalf("%s: send: %v", name, err)
			}
		}
		var firstErr error
		for i := 0; i < sends+1; i++ { // +1 covers injected replays
			r, err := recv.Recv()
			if err != nil {
				if err == channel.ErrEmpty {
					break
				}
				if firstErr == nil {
					firstErr = err
				}
				continue
			}
			if _, err := r.Payload(); err != nil {
				log.Fatalf("%s: payload: %v", name, err)
			}
			if err := r.Release(); err != nil {
				log.Fatalf("%s: release: %v", name, err)
			}
		}
		net.SetInterposer(nil)
		send.DrainAcks() // observe nacks, recover buffers
		if firstErr != nil {
			fmt.Printf("%-28s REJECTED: %v\n", name, firstErr)
		} else {
			fmt.Printf("%-28s delivered intact\n", name)
		}
	}

	spy := &netsim.Spy{}
	run("passive spy", spy, 1)
	leaked := false
	for _, p := range spy.Captured {
		if bytes.Contains(p, secret[:16]) {
			leaked = true
		}
	}
	fmt.Printf("%-28s plaintext on the wire: %v\n", "  (what the spy saw)", leaked)
	run("tampered ciphertext", &netsim.Tamperer{Kind: netsim.KindClosure, Offset: -5}, 1)
	run("tampered sealed root", &netsim.Tamperer{Kind: netsim.KindClosure, Offset: 30}, 1)
	run("replayed closure", &netsim.Replayer{Kind: netsim.KindClosure}, 2)
	run("re-ordered closures", &netsim.Reorderer{Kind: netsim.KindClosure}, 2)

	fmt.Println("\nThe baseline leaked and lied; the delegation protocol rejected everything.")
}
