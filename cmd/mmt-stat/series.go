package main

import (
	"encoding/json"
	"fmt"
	"io"
)

// This file renders mmt-series/v1 documents (from TraceSink.WriteSeriesJSON
// or `mmt-bench -fig 11 -series`): one sparkline per process over its
// retained window deltas, plus a summary table. Like every renderer here
// the output is a pure function of the input bytes.

// sparks are the eight-level block glyphs, lowest to highest.
var sparks = []rune("▁▂▃▄▅▆▇█")

// seriesDoc mirrors the subset of trace.WriteSeriesJSON mmt-stat renders.
type seriesDoc struct {
	WindowCycles uint64 `json:"window_cycles"`
	MaxSamples   int    `json:"max_samples"`
	Procs        []struct {
		Proc           string `json:"proc"`
		EvictedWindows uint64 `json:"evicted_windows"`
		EvictedThrough uint64 `json:"evicted_through"`
		Samples        []struct {
			Window uint64             `json:"window"`
			Cycles map[string]float64 `json:"cycles"`
			Ops    map[string]struct {
				Count uint64 `json:"count"`
			} `json:"ops"`
		} `json:"samples"`
		Totals struct {
			Window uint64             `json:"window"`
			Cycles map[string]float64 `json:"cycles"`
		} `json:"totals"`
	} `json:"procs"`
}

// renderSeries prints each process's busy-cycles-per-window sparkline
// (retained samples oldest to newest, scaled to the process's own peak)
// and a summary table. Idle windows produce no sample, so a glyph is one
// *active* window; the window labels under the summary give the span.
func renderSeries(w io.Writer, data []byte) error {
	var sd seriesDoc
	if err := json.Unmarshal(data, &sd); err != nil {
		return fmt.Errorf("bad mmt-series/v1 document: %w", err)
	}
	fmt.Fprintf(w, "time series: %d procs, window %d cycles, ring %d samples\n",
		len(sd.Procs), sd.WindowCycles, sd.MaxSamples)
	rows := [][]string{{"proc", "windows", "evicted", "span", "ops", "cycles", "activity"}}
	for _, p := range sd.Procs {
		vals := make([]float64, len(p.Samples))
		peak := 0.0
		var ops uint64
		for i, s := range p.Samples {
			for _, c := range s.Cycles {
				vals[i] += c
			}
			for _, op := range s.Ops {
				ops += op.Count
			}
			if vals[i] > peak {
				peak = vals[i]
			}
		}
		var total float64
		for _, c := range p.Totals.Cycles {
			total += c
		}
		span := "-"
		if n := len(p.Samples); n > 0 {
			span = fmt.Sprintf("%d..%d", p.Samples[0].Window, p.Samples[n-1].Window)
		}
		rows = append(rows, []string{
			p.Proc,
			fmt.Sprintf("%d", p.EvictedWindows+uint64(len(p.Samples))),
			fmt.Sprintf("%d", p.EvictedWindows),
			span,
			fmt.Sprintf("%d", ops),
			cycWide(total),
			sparkline(vals, peak),
		})
	}
	table(w, rows)
	return nil
}

// cycWide formats a cycle total without falling into %g's scientific
// notation (series totals routinely pass 1e6 with sub-cycle fractions).
func cycWide(v float64) string {
	if v == float64(int64(v)) {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%.1f", v)
}

// sparkline maps each value to one of eight glyphs scaled against peak.
// A zero-cycle sample (ops charged no time, e.g. pure counter traffic)
// still gets the lowest glyph: the window was active.
func sparkline(vals []float64, peak float64) string {
	if len(vals) == 0 {
		return ""
	}
	out := make([]rune, len(vals))
	for i, v := range vals {
		idx := 0
		if peak > 0 {
			idx = int(v / peak * float64(len(sparks)-1))
			if idx >= len(sparks) {
				idx = len(sparks) - 1
			}
		}
		out[i] = sparks[idx]
	}
	return string(out)
}
