// Package analyzers is the mmt-vet static-analysis suite: seven custom
// analyzers that machine-enforce the repository's determinism and
// crypto-safety invariants.
//
// Every figure and table this repository reproduces must be a pure
// function of the seed and the internal/sim clock, and every security
// claim rests on authentication code in internal/crypt and
// internal/channel. Both properties are one careless diff away from
// silently breaking, so they are enforced by analysis rather than by
// reviewer vigilance:
//
//   - simclock: no wall-clock time or unseeded global randomness in
//     simulation code; all timing flows through internal/sim.
//   - cryptocompare: MAC/tag values from crypt.Engine must be compared
//     in constant time (crypt.TagEqual / crypto/subtle), never ==.
//   - checkverify: results of Verify*/Open/Unseal calls must be checked.
//   - nopanic: library packages return errors instead of panicking.
//   - maporder: no map iteration with order-dependent effects.
//   - parclock: par.Map/par.ForEach work units must own the sim.Clocks
//     they touch; a clock captured from the enclosing scope is shared
//     across goroutines and breaks the determinism contract.
//   - eventkind: security-ledger record sites must pass compile-time
//     constant event kinds, keeping the auditable vocabulary closed.
//
// The framework mirrors the golang.org/x/tools/go/analysis API surface
// (Analyzer, Pass, Diagnostic) but is self-contained: the module has no
// external dependencies, so the driver loads packages with `go list
// -export` and typechecks them with go/types directly. Swapping the
// framework for x/tools later is a mechanical import change.
//
// A finding can be suppressed with a justifying comment on the same
// line (or the line above):
//
//	//mmt:allow nopanic: bounds guard; mirrors built-in slice indexing
package analyzers

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Analyzer describes one static check, mirroring the shape of
// golang.org/x/tools/go/analysis.Analyzer.
type Analyzer struct {
	// Name identifies the analyzer in output and in //mmt:allow comments.
	Name string
	// Doc is the one-paragraph description shown by mmt-vet -list.
	Doc string
	// Run applies the analyzer to one package.
	Run func(*Pass) error
}

// Pass carries one package's syntax and type information to an analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	Report    func(Diagnostic)
}

// Diagnostic is one finding at one source position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Reportf reports a formatted finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// All returns the full mmt-vet suite in stable order.
func All() []*Analyzer {
	return []*Analyzer{
		SimClock,
		CryptoCompare,
		CheckVerify,
		NoPanic,
		MapOrder,
		ParClock,
		EventKind,
	}
}

// inScope reports whether a package path is simulation/library code the
// invariants apply to: everything under mmt/internal/ except the
// analysis tooling itself, which is host-side and never contributes to
// figures or security claims.
func inScope(pkgPath string) bool {
	return strings.HasPrefix(pkgPath, "mmt/internal/") &&
		!strings.HasPrefix(pkgPath, "mmt/internal/analyzers")
}

// funcObj resolves a call's callee to its *types.Func, or nil.
func funcObj(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}
