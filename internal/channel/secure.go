package channel

import (
	"crypto/aes"
	"crypto/cipher"
	"encoding/binary"
	"fmt"

	"mmt/internal/crypt"
	"mmt/internal/netsim"
	"mmt/internal/sim"
	"mmt/internal/trace"
)

// Secure is the software secure channel (§II-C): the sender encrypts and
// authenticates the message with AES-GCM, copies it into a shared
// non-secure buffer, and remote-writes it; the receiver copies it out of
// the shared buffer and decrypts. Compared with the plain channel this
// adds exactly the four operations of Table IV: memcpy x2, encrypt,
// decrypt (remote write is common to both).
//
// Nonces are strictly increasing sequence numbers checked by the receiver,
// so the secure channel also rejects replays and re-orders — it is the
// full-strength baseline the paper compares against, not a strawman.
type Secure struct {
	common
	aead    cipher.AEAD
	sendSeq uint64
	recvSeq uint64
}

// NewSecure builds one side of a secure channel. Both sides must use the
// same key (negotiated by Diffie-Hellman in a full system). It returns
// an error if the AEAD cannot be constructed from the key.
func NewSecure(ep *netsim.Endpoint, peer string, prof *sim.Profile, key crypt.Key) (*Secure, error) {
	block, err := aes.NewCipher(key[:])
	if err != nil {
		return nil, fmt.Errorf("channel: aes.NewCipher: %w", err)
	}
	aead, err := cipher.NewGCM(block)
	if err != nil {
		return nil, fmt.Errorf("channel: cipher.NewGCM: %w", err)
	}
	return &Secure{common: common{ep: ep, peer: peer, prof: prof}, aead: aead}, nil
}

// Send encrypts payload, copies it to the shared buffer, and remote-writes
// it to the peer's receive buffer.
func (c *Secure) Send(payload []byte) error {
	n := len(payload)
	// Encrypt inside the enclave.
	c.charge(&c.stats.Encrypt, trace.PhaseEncrypt, c.prof.EncryptCost(n))
	nonce := make([]byte, c.aead.NonceSize())
	binary.LittleEndian.PutUint64(nonce, c.sendSeq)
	wire := make([]byte, 8, 8+n+c.aead.Overhead())
	binary.LittleEndian.PutUint64(wire, c.sendSeq)
	wire = c.aead.Seal(wire, nonce, payload, nil)
	c.sendSeq++
	// Copy ciphertext from enclave memory to the shared non-secure buffer.
	c.charge(&c.stats.Memcpy, trace.PhaseMemcpy, c.prof.MemcpyCost(n))
	// Remote write of the shared buffer.
	c.charge(&c.stats.RemoteWrite, trace.PhaseDMA, c.prof.RemoteWriteCost(len(wire)))
	// One send-side op: the sum of the three charges above.
	c.probe.RecordOp(trace.OpRemoteWrite,
		c.prof.EncryptCost(n)+c.prof.MemcpyCost(n)+c.prof.RemoteWriteCost(len(wire)))
	c.stats.Messages++
	c.stats.Bytes += n
	c.ep.Send(c.peer, netsim.KindData, wire)
	return nil
}

// Recv copies the next message out of the shared receive buffer into
// enclave memory and decrypts it. Replayed or re-ordered messages fail the
// sequence check; tampered ones fail authentication.
func (c *Secure) Recv() ([]byte, error) {
	m, ok := c.ep.Recv()
	if !ok {
		return nil, ErrEmpty
	}
	if m.Kind != netsim.KindData || len(m.Payload) < 8+16 {
		return nil, fmt.Errorf("channel: malformed secure-channel message")
	}
	seq := binary.LittleEndian.Uint64(m.Payload)
	if seq != c.recvSeq {
		if seq < c.recvSeq {
			c.probe.Event(trace.EvReplayReject, c.ep.Clock().Now(), seq, "secure channel: stale sequence")
		} else {
			c.probe.Event(trace.EvReorderReject, c.ep.Clock().Now(), seq, "secure channel: sequence gap")
		}
		return nil, fmt.Errorf("channel: sequence %d, want %d (replay or re-order)", seq, c.recvSeq)
	}
	n := len(m.Payload) - 8 - c.aead.Overhead()
	// Copy from the shared buffer into enclave memory.
	c.charge(&c.stats.Memcpy, trace.PhaseMemcpy, c.prof.MemcpyCost(n))
	// Decrypt and authenticate inside the enclave.
	c.charge(&c.stats.Decrypt, trace.PhaseDecrypt, c.prof.DecryptCost(n))
	// One receive-side op: the copy plus the decrypt.
	c.probe.RecordOp(trace.OpRemoteRead, c.prof.MemcpyCost(n)+c.prof.DecryptCost(n))
	nonce := make([]byte, c.aead.NonceSize())
	binary.LittleEndian.PutUint64(nonce, seq)
	pt, err := c.aead.Open(nil, nonce, m.Payload[8:], nil)
	if err != nil {
		c.probe.Event(trace.EvAuthFail, c.ep.Clock().Now(), seq, "secure channel: AEAD open failed")
		return nil, fmt.Errorf("channel: %w", crypt.ErrAuth)
	}
	c.recvSeq++
	return pt, nil
}
