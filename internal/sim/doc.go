// Package sim provides the simulated-time substrate for the MMT
// reproduction: per-node clocks, cycle accounting, and cost profiles
// calibrated from the paper's published measurements (Table II/III/IV and
// Figure 10 of "Efficient Distributed Secure Memory with Migratable Merkle
// Tree", HPCA 2023).
//
// The repository is a functional simulation: all cryptographic and
// integrity-tree work is real code, but time never comes from the host; it
// comes from a Clock that components advance using the costs defined here.
// Two profiles mirror the paper's two testbeds:
//
//   - Gem5Profile: the 8-core 2 GHz out-of-order system of Table II, where
//     AES-GCM runs in software on the CPU (no AES-NI).
//   - IntelProfile: the Xeon E5-2650 v4 testbed of Table III, where AES-GCM
//     uses AES-NI and transfers ride a 100 Gbps RDMA NIC.
//
// Costs are affine (fixed setup + per-byte) or, where the paper's own
// breakdown shows cache effects (memcpy), piecewise log-linear curves
// anchored on the published points.
package sim
