// Package phasecharge exercises the phasecharge analyzer: every
// sim.Clock.AdvanceCycles charge must be mirrored into a trace phase
// (Probe.AddCycles of the same cost expression) on all paths reaching
// it, and each mirror attributes exactly one charge.
package phasecharge

import (
	"mmt/internal/sim"
	"mmt/internal/trace"
)

// unmirrored charges with no mirror anywhere.
func unmirrored(clk *sim.Clock, n sim.Cycles) {
	clk.AdvanceCycles(n) // want "not mirrored into a trace phase"
}

// mirrored is the contract shape: mirror, then charge.
func mirrored(clk *sim.Clock, p *trace.Probe, n sim.Cycles) {
	p.AddCycles(trace.PhaseMAC, n)
	clk.AdvanceCycles(n)
}

// branchOnly mirrors on one branch only; the must-join over paths drops
// the fact, so the charge is flagged.
func branchOnly(clk *sim.Clock, p *trace.Probe, n sim.Cycles, ok bool) {
	if ok {
		p.AddCycles(trace.PhaseMAC, n)
	}
	clk.AdvanceCycles(n) // want "not mirrored into a trace phase"
}

// bothBranches mirrors on every path — silent.
func bothBranches(clk *sim.Clock, p *trace.Probe, n sim.Cycles, ok bool) {
	if ok {
		p.AddCycles(trace.PhaseMAC, n)
	} else {
		p.AddCycles(trace.PhaseData, n)
	}
	clk.AdvanceCycles(n)
}

// double mirrors the same cost into two phases — double attribution.
func double(p *trace.Probe, n sim.Cycles) {
	p.AddCycles(trace.PhaseMAC, n)
	p.AddCycles(trace.PhaseData, n) // want "double attribution"
}

// summed charges a+b with the summands mirrored into different phases.
func summed(clk *sim.Clock, p *trace.Probe, a, b sim.Cycles) {
	p.AddCycles(trace.PhaseMAC, a)
	p.AddCycles(trace.PhaseData, b)
	clk.AdvanceCycles(a + b)
}

// alias is the `cost := a + b` idiom: the alias inherits the mirrors.
func alias(clk *sim.Clock, p *trace.Probe, a, b sim.Cycles) {
	p.AddCycles(trace.PhaseMAC, a)
	p.AddCycles(trace.PhaseData, b)
	cost := a + b
	clk.AdvanceCycles(cost)
}

// consumed shows that one mirror attributes one charge: the second
// charge of the same cost has no live mirror left.
func consumed(clk *sim.Clock, p *trace.Probe, n sim.Cycles) {
	p.AddCycles(trace.PhaseMAC, n)
	clk.AdvanceCycles(n)
	clk.AdvanceCycles(n) // want "not mirrored into a trace phase"
}

// clobbered rewrites the cost after mirroring, invalidating the fact.
func clobbered(clk *sim.Clock, p *trace.Probe, n sim.Cycles) {
	p.AddCycles(trace.PhaseMAC, n)
	n = n * 2
	clk.AdvanceCycles(n) // want "not mirrored into a trace phase"
}

// inLiteral: literals are analyzed independently — a mirror in the
// enclosing function does not cover a charge inside the literal.
func inLiteral(clk *sim.Clock, p *trace.Probe, n sim.Cycles) func() {
	p.AddCycles(trace.PhaseMAC, n)
	return func() {
		clk.AdvanceCycles(n) // want "not mirrored into a trace phase"
	}
}

// allowedCharge is the suppression idiom for costs accounted elsewhere.
func allowedCharge(clk *sim.Clock, n sim.Cycles) {
	//mmt:allow phasecharge: cost is attributed by the caller's wrapper
	clk.AdvanceCycles(n)
}
