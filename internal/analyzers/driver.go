package analyzers

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

// Finding is one reported, unsuppressed diagnostic with its resolved
// source position.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: [%s] %s", f.Pos, f.Analyzer, f.Message)
}

// ID reports the finding's stable diagnostic ID (MMT001…).
func (f Finding) ID() string { return analyzerID(f.Analyzer) }

// Options tunes a driver run.
type Options struct {
	// Audit reports //mmt:allow comments that suppressed nothing during
	// the run (for analyzers that actually ran) and comments naming
	// analyzers that do not exist. The findings carry analyzer name
	// "unusedallow".
	Audit bool
}

// listedPackage is the subset of `go list -json` output the driver uses.
type listedPackage struct {
	ImportPath  string
	Dir         string
	Export      string
	GoFiles     []string
	TestGoFiles []string
	Standard    bool
	ForTest     string
	Error       *packageError
	DepsErrors  []*packageError
}

// packageError mirrors go list's PackageError JSON shape.
type packageError struct {
	ImportStack []string
	Err         string
}

// Run loads the packages matching patterns (resolved relative to dir,
// which must lie inside the module), typechecks them, applies every
// analyzer, and returns the surviving findings sorted by position, with
// the suppression audit enabled.
func Run(dir string, patterns []string, as []*Analyzer) ([]Finding, error) {
	return RunWith(dir, patterns, as, Options{Audit: true})
}

// RunWith is Run with explicit Options.
//
// Packages are enumerated and compiled with `go list -export`; imports
// are satisfied from the resulting export data, so the driver needs no
// dependencies beyond the go toolchain already required by tier-1.
// Per-package analyzers see one package at a time; module analyzers see
// every matched package in one pass (their cross-package call-graph
// coverage is therefore only complete under ./...).
func RunWith(dir string, patterns []string, as []*Analyzer, opts Options) ([]Finding, error) {
	exports, err := exportData(dir, patterns)
	if err != nil {
		return nil, err
	}
	targets, err := listPackages(dir, patterns)
	if err != nil {
		return nil, err
	}
	if len(targets) == 0 {
		return nil, fmt.Errorf("no packages match %v", patterns)
	}
	fset := token.NewFileSet()
	imp := newExportImporter(fset, exports)
	allow := newAllowIndex()
	var units []*PackageUnit
	var findings []Finding
	for _, pkg := range targets {
		// go list -e tolerates broken patterns so ./... keeps working in a
		// partially broken tree, but a pattern that resolves to nothing or
		// to a load error must not pass vacuously.
		if pkg.Error != nil {
			return nil, fmt.Errorf("%s: %s", pkg.ImportPath, strings.TrimSpace(pkg.Error.Err))
		}
		fs, err := parsePackage(fset, pkg.Dir, append(append([]string{}, pkg.GoFiles...), pkg.TestGoFiles...))
		if err != nil {
			return nil, err
		}
		unit, err := checkPackage(fset, fs, pkg.ImportPath, imp)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", pkg.ImportPath, err)
		}
		allow.collect(fset, fs)
		units = append(units, unit)
		pf, err := runPackageAnalyzers(fset, unit, as, allow)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", pkg.ImportPath, err)
		}
		findings = append(findings, pf...)
	}
	mf, err := runModuleAnalyzers(fset, units, as, allow)
	if err != nil {
		return nil, err
	}
	findings = append(findings, mf...)
	if opts.Audit {
		findings = append(findings, allow.auditFindings(as)...)
	}
	sortFindings(findings)
	return dedupeFindings(findings), nil
}

// checkPackage typechecks one parsed package into a PackageUnit.
func checkPackage(fset *token.FileSet, files []*ast.File, pkgPath string, imp types.Importer) (*PackageUnit, error) {
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	conf := types.Config{Importer: imp}
	pkg, err := conf.Check(pkgPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck: %w", err)
	}
	return &PackageUnit{Files: files, Pkg: pkg, TypesInfo: info}, nil
}

// report wraps an analyzer's Report callback with the shared filters:
// findings in _test.go files are dropped (invariants bind non-test code
// only) and //mmt:allow suppressions are honored and marked used.
func report(fset *token.FileSet, name string, allow *allowIndex, findings *[]Finding) func(Diagnostic) {
	return func(d Diagnostic) {
		pos := fset.Position(d.Pos)
		if strings.HasSuffix(pos.Filename, "_test.go") {
			return
		}
		if allow.use(name, pos) {
			return
		}
		*findings = append(*findings, Finding{Analyzer: name, Pos: pos, Message: d.Message})
	}
}

func runPackageAnalyzers(fset *token.FileSet, unit *PackageUnit, as []*Analyzer, allow *allowIndex) ([]Finding, error) {
	var findings []Finding
	for _, a := range as {
		if a.Run == nil {
			continue
		}
		pass := &Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     unit.Files,
			Pkg:       unit.Pkg,
			TypesInfo: unit.TypesInfo,
			Report:    report(fset, a.Name, allow, &findings),
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("analyzer %s: %w", a.Name, err)
		}
	}
	return findings, nil
}

func runModuleAnalyzers(fset *token.FileSet, units []*PackageUnit, as []*Analyzer, allow *allowIndex) ([]Finding, error) {
	var findings []Finding
	for _, a := range as {
		if a.RunModule == nil {
			continue
		}
		name := a.Name
		mp := &ModulePass{
			Analyzer: a,
			Fset:     fset,
			Units:    units,
			Report:   report(fset, name, allow, &findings),
			Suppressed: func(pos token.Pos) bool {
				return allow.use(name, fset.Position(pos))
			},
		}
		if err := a.RunModule(mp); err != nil {
			return nil, fmt.Errorf("analyzer %s: %w", a.Name, err)
		}
	}
	return findings, nil
}

func sortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
}

// dedupeFindings drops findings that repeat an already-reported message
// at the same position — either the same analyzer firing twice (e.g. a
// module analyzer reaching one allocation site from two hot roots) or
// two analyzers wording the same defect identically. Input must be
// sorted; position order is preserved.
func dedupeFindings(fs []Finding) []Finding {
	seen := map[string]bool{}
	out := fs[:0]
	for _, f := range fs {
		key := fmt.Sprintf("%s:%d:%d\x00%s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Message)
		if seen[key] {
			continue
		}
		seen[key] = true
		out = append(out, f)
	}
	return out
}

// allowRecord is one //mmt:allow comment for one analyzer name.
type allowRecord struct {
	analyzer string
	pos      token.Position // the comment's own position
	used     bool
}

// allowIndex holds every //mmt:allow comment seen during a run. A
// comment suppresses findings on its own line and, for standalone
// comment lines, on the line below; both lines resolve to the same
// record so a use through either marks the comment live for the audit.
type allowIndex struct {
	records []*allowRecord
	byLine  map[string]map[int]map[string]*allowRecord
}

// A suppression comment begins with the marker — prose that merely
// mentions //mmt:allow mid-sentence is not a suppression.
var allowRe = regexp.MustCompile(`^//mmt:allow\s+([a-z][a-z0-9_]*(?:\s*,\s*[a-z][a-z0-9_]*)*)`)

func newAllowIndex() *allowIndex {
	return &allowIndex{byLine: map[string]map[int]map[string]*allowRecord{}}
}

func (ai *allowIndex) collect(fset *token.FileSet, files []*ast.File) {
	put := func(file string, line int, rec *allowRecord) {
		if ai.byLine[file] == nil {
			ai.byLine[file] = map[int]map[string]*allowRecord{}
		}
		if ai.byLine[file][line] == nil {
			ai.byLine[file][line] = map[string]*allowRecord{}
		}
		ai.byLine[file][line][rec.analyzer] = rec
	}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := allowRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				names := m[1]
				if i := strings.IndexByte(names, ':'); i >= 0 {
					names = names[:i]
				}
				pos := fset.Position(c.Pos())
				for _, name := range strings.FieldsFunc(names, func(r rune) bool { return r == ',' || r == ' ' || r == '\t' }) {
					rec := &allowRecord{analyzer: name, pos: pos}
					ai.records = append(ai.records, rec)
					put(pos.Filename, pos.Line, rec)
					put(pos.Filename, pos.Line+1, rec)
				}
			}
		}
	}
}

// use reports whether an allow for analyzer covers pos, marking the
// comment used.
func (ai *allowIndex) use(analyzer string, pos token.Position) bool {
	rec := ai.byLine[pos.Filename][pos.Line][analyzer]
	if rec == nil {
		return false
	}
	rec.used = true
	return true
}

// auditFindings turns stale suppressions into findings: allows naming an
// analyzer that ran but suppressed nothing, and allows naming analyzers
// that do not exist at all. Allows for known analyzers outside the run
// set are left alone — a partial -run invocation must not flag them.
func (ai *allowIndex) auditFindings(ran []*Analyzer) []Finding {
	ranSet := map[string]bool{}
	for _, a := range ran {
		ranSet[a.Name] = true
	}
	known := map[string]bool{}
	for _, a := range All() {
		known[a.Name] = true
	}
	var out []Finding
	for _, rec := range ai.records {
		if rec.used || strings.HasSuffix(rec.pos.Filename, "_test.go") {
			continue
		}
		switch {
		case !known[rec.analyzer]:
			out = append(out, Finding{
				Analyzer: "unusedallow",
				Pos:      rec.pos,
				Message:  fmt.Sprintf("//mmt:allow names unknown analyzer %q", rec.analyzer),
			})
		case ranSet[rec.analyzer]:
			out = append(out, Finding{
				Analyzer: "unusedallow",
				Pos:      rec.pos,
				Message:  fmt.Sprintf("unused //mmt:allow %s: comment suppresses nothing and should be removed", rec.analyzer),
			})
		}
	}
	return out
}

func parsePackage(fset *token.FileSet, dir string, names []string) ([]*ast.File, error) {
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// listPackages enumerates the target packages for analysis.
func listPackages(dir string, patterns []string) ([]listedPackage, error) {
	pkgs, _, err := goList(dir, append([]string{"-json=ImportPath,Dir,GoFiles,TestGoFiles,Error"}, patterns...))
	return pkgs, err
}

// exportData compiles the patterns (with their test dependencies) and
// returns import path -> export data file for every reachable package.
// Compile failures in dependencies do not fail the load here — the
// importer surfaces them with context when the package is actually
// needed (see exportProblem).
func exportData(dir string, patterns []string) (map[string]exportEntry, error) {
	pkgs, stderr, err := goList(dir, append([]string{"-deps", "-test", "-export", "-json=ImportPath,Export,ForTest,Error,DepsErrors"}, patterns...))
	if err != nil {
		return nil, err
	}
	exports := map[string]exportEntry{}
	for _, p := range pkgs {
		// Skip per-test package variants ("p [p.test]"): importers want
		// the plain build of p, and test mains are not importable.
		if p.ForTest != "" || strings.Contains(p.ImportPath, " [") || strings.HasSuffix(p.ImportPath, ".test") {
			continue
		}
		e := exportEntry{file: p.Export, stderr: stderr}
		if p.Error != nil {
			e.problem = strings.TrimSpace(p.Error.Err)
		}
		exports[p.ImportPath] = e
	}
	return exports, nil
}

// exportEntry is one package's compile outcome from `go list -export`:
// the export data file when it compiled, and everything known about why
// it did not otherwise.
type exportEntry struct {
	file    string
	problem string // the package's own load/compile error, if any
	stderr  string // full go list stderr, for errors reported only there
}

func goList(dir string, args []string) ([]listedPackage, string, error) {
	cmd := exec.Command("go", append([]string{"list", "-e"}, args...)...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, stderr.String(), fmt.Errorf("go list: %v\n%s", err, stderr.String())
	}
	var pkgs []listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, stderr.String(), fmt.Errorf("go list output: %v", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, stderr.String(), nil
}

// newExportImporter returns a types.Importer backed by gc export data
// files produced by `go list -export`. A missing export (the package
// failed to compile) produces an error carrying the compiler's own
// diagnostics instead of an opaque lookup failure: `go list -e -export`
// exits 0 on compile errors, so without this the only symptom would be
// "no export data" with the cause swallowed.
func newExportImporter(fset *token.FileSet, exports map[string]exportEntry) types.Importer {
	return importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		e, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q (package not reachable from the analysis patterns)", path)
		}
		if e.file == "" {
			if e.problem != "" {
				return nil, fmt.Errorf("no export data for %q: %s", path, e.problem)
			}
			if s := strings.TrimSpace(e.stderr); s != "" {
				return nil, fmt.Errorf("no export data for %q; go list -export reported:\n%s", path, s)
			}
			return nil, fmt.Errorf("no export data for %q (package failed to compile)", path)
		}
		return os.Open(e.file)
	})
}

// ModuleRoot locates the root of the enclosing module (the directory
// holding go.mod), so mmt-vet can be invoked from any subdirectory.
func ModuleRoot() (string, error) {
	out, err := exec.Command("go", "env", "GOMOD").Output()
	if err != nil {
		return "", fmt.Errorf("go env GOMOD: %v", err)
	}
	gomod := strings.TrimSpace(string(out))
	if gomod == "" || gomod == os.DevNull {
		return "", fmt.Errorf("not inside a Go module")
	}
	return filepath.Dir(gomod), nil
}
