package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"
)

// CryptoCompare forbids variable-time comparison of authentication tags.
// A `mac == stored` check leaks, through its timing, how early the
// values diverge; an attacker who can submit guesses and time the
// verifier recovers the tag byte by byte. MAC values produced by
// crypt.Engine (LineMAC, NodeMAC) must be compared with crypt.TagEqual
// (crypto/subtle.ConstantTimeCompare underneath), never with ==, != or
// bytes.Equal.
var CryptoCompare = &Analyzer{
	Name: "cryptocompare",
	ID:   "MMT002",
	Doc: "MAC/tag values from crypt.Engine.LineMAC/NodeMAC must not be compared " +
		"with == / != / bytes.Equal in verification paths; use crypt.TagEqual " +
		"(constant time) instead",
	Run: runCryptoCompare,
}

// macSources are the fully-qualified methods whose results are
// authentication tags.
var macSources = map[string]bool{
	"(*mmt/internal/crypt.Engine).LineMAC": true,
	"(*mmt/internal/crypt.Engine).NodeMAC": true,
	"(*mmt/internal/crypt.Engine).macMask": true,
}

func runCryptoCompare(pass *Pass) error {
	if !inScope(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			default:
				return true
			}
			if body != nil {
				checkFuncForMACCompares(pass, body)
			}
			return true
		})
	}
	return nil
}

// checkFuncForMACCompares does a simple flow-insensitive pass over one
// function body: any identifier ever assigned a MAC-source call result
// is tainted, and comparisons involving tainted values or direct
// MAC-source calls are reported.
func checkFuncForMACCompares(pass *Pass, body *ast.BlockStmt) {
	tainted := map[types.Object]bool{}
	record := func(lhs ast.Expr, rhs ast.Expr) {
		if !isMACSourceCall(pass.TypesInfo, rhs) {
			return
		}
		if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
			if obj := pass.TypesInfo.ObjectOf(id); obj != nil {
				tainted[obj] = true
			}
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			if len(st.Lhs) == len(st.Rhs) {
				for i := range st.Lhs {
					record(st.Lhs[i], st.Rhs[i])
				}
			}
		case *ast.ValueSpec:
			if len(st.Names) == len(st.Values) {
				for i := range st.Names {
					record(st.Names[i], st.Values[i])
				}
			}
		}
		return true
	})

	isMAC := func(e ast.Expr) bool {
		e = ast.Unparen(e)
		if isMACSourceCall(pass.TypesInfo, e) {
			return true
		}
		if id, ok := e.(*ast.Ident); ok {
			if obj := pass.TypesInfo.ObjectOf(id); obj != nil {
				return tainted[obj]
			}
		}
		return false
	}

	ast.Inspect(body, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.BinaryExpr:
			if (e.Op == token.EQL || e.Op == token.NEQ) && (isMAC(e.X) || isMAC(e.Y)) {
				pass.Reportf(e.OpPos, "MAC value compared with %s leaks tag bytes through timing; "+
					"use crypt.TagEqual (crypto/subtle) instead", e.Op)
			}
		case *ast.CallExpr:
			fn := funcObj(pass.TypesInfo, e)
			if fn == nil {
				return true
			}
			full := fn.FullName()
			if full == "bytes.Equal" || full == "reflect.DeepEqual" {
				for _, arg := range e.Args {
					if isMAC(arg) {
						pass.Reportf(e.Pos(), "MAC value compared with %s leaks tag bytes through timing; "+
							"use crypt.TagEqual or crypto/subtle.ConstantTimeCompare", full)
						break
					}
				}
			}
		}
		return true
	})
}

func isMACSourceCall(info *types.Info, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	fn := funcObj(info, call)
	return fn != nil && macSources[fn.FullName()]
}
