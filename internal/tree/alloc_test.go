package tree

import (
	"testing"

	"mmt/internal/crypt"
)

// TestVerifyUpdateAllocFree pins the steady-state integrity-tree paths at
// zero allocations per access: VerifyPath (read path), Update without
// overflow (write path) and LeafCounter. The batched NodeMACBatch verify
// and the tree scratch exist for exactly this.
func TestVerifyUpdateAllocFree(t *testing.T) {
	e := crypt.NewEngine(crypt.KeyFromBytes([]byte("alloc")))
	const guaddr = 0x9000
	tr, err := New(ForLevels(3), e, guaddr)
	if err != nil {
		t.Fatal(err)
	}
	// Warm the lazily-sized scratch buffers.
	if err := tr.VerifyPath(e, guaddr, 0); err != nil {
		t.Fatal(err)
	}
	tr.Update(e, guaddr, 0)

	line := 1
	var ctr uint64
	allocs := testing.AllocsPerRun(100, func() {
		if err := tr.VerifyPath(e, guaddr, line); err != nil {
			t.Fatal(err)
		}
		res := tr.Update(e, guaddr, line)
		if res.Overflowed {
			t.Fatal("unexpected overflow in alloc test")
		}
		ctr ^= tr.LeafCounter(line)
	})
	if allocs != 0 {
		t.Fatalf("verify/update path allocated %.1f times per access, want 0", allocs)
	}
	_ = ctr
}

// TestBatchedVerifyMatchesPerNode: the batched VerifyPath agrees with
// node-by-node verification (verifyNode) on both healthy and tampered
// trees, including the identity of the reported node.
func TestBatchedVerifyMatchesPerNode(t *testing.T) {
	e := crypt.NewEngine(crypt.KeyFromBytes([]byte("batch")))
	const guaddr = 0x9100
	tr, err := New(ForLevels(3), e, guaddr)
	if err != nil {
		t.Fatal(err)
	}
	lines := []int{0, 1, 63, 64, 2047, tr.Geometry().Lines() - 1}
	for _, ln := range lines {
		if err := tr.VerifyPath(e, guaddr, ln); err != nil {
			t.Fatalf("line %d: healthy tree failed verify: %v", ln, err)
		}
	}
	// Tamper with one interior node; every line under it must fail, and the
	// error must name that node (level 1), matching serial leaf-to-root
	// order: the leaf verifies fine, level 1 is the first mismatch.
	tr.Node(1, 0).Global++
	err = tr.VerifyPath(e, guaddr, 0)
	if err == nil {
		t.Fatal("tampered tree verified")
	}
	if got, want := err.Error(), "tree: integrity check failed: node level 2 index 0"; got != want {
		// Bumping an interior global changes that node's counters, which
		// breaks the MAC keyed over the *leaf* (its parent counter changed)
		// first in leaf-to-root order.
		t.Fatalf("error %q, want %q", got, want)
	}
}
