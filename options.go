package mmt

import (
	"errors"
	"fmt"

	"mmt/internal/sim"
	"mmt/internal/trace"
)

// settings is the resolved cluster configuration. It is private: the only
// way to configure a cluster is through the With* options, each of which
// validates its argument eagerly — New reports a bad value at the call
// site that supplied it, not as a delayed construction failure.
type settings struct {
	profile    *sim.Profile
	treeLevels int
	regions    int
	netLatency sim.Time
	trace      *trace.Sink
	series     *trace.SeriesConfig
	debugAddr  string
	storePath  string
	set        uint32 // bitmask of set* flags for the options applied
}

// set* flags record which options were supplied. Load and Open use the
// structural mask to reject options that would contradict the snapshot
// being restored (the snapshot is authoritative for geometry and timing).
const (
	setProfile = 1 << iota
	setTreeLevels
	setRegions
	setNetLatency
	setTracing
	setDebugServer
	setStore
	setSampling
)

// structuralSettings are the options a snapshot pins: geometry and the
// timing model travel inside the snapshot and cannot be overridden at
// load time.
const structuralSettings = setProfile | setTreeLevels | setRegions | setNetLatency

// defaultSettings is the paper's default system: the Gem5 cost profile,
// 3-level (2 MB) trees, 8 secure regions per machine, a zero-latency
// interconnect, tracing disabled.
func defaultSettings() settings {
	return settings{
		profile:    sim.Gem5Profile(),
		treeLevels: 3,
		regions:    8,
	}
}

// applySettings folds opts over the defaults, stopping at the first
// option error.
func applySettings(opts []Option) (settings, error) {
	s := defaultSettings()
	for _, opt := range opts {
		if opt == nil {
			return settings{}, errors.New("mmt: nil Option")
		}
		if err := opt(&s); err != nil {
			return settings{}, err
		}
	}
	return s, nil
}

// Option configures a Cluster at construction time. Options validate
// eagerly: a With* constructor given an invalid argument returns an
// Option that fails New (or Load/Open) with a descriptive error. Options
// are applied in order; later options override earlier ones.
type Option func(*settings) error

// optionErr returns an Option that fails immediately.
func optionErr(err error) Option {
	return func(*settings) error { return err }
}

// WithProfile selects the timing model (sim.Gem5Profile,
// sim.IntelProfile, or a custom calibration). Default: Gem5.
func WithProfile(p *sim.Profile) Option {
	if p == nil {
		return optionErr(errors.New("mmt: WithProfile(nil)"))
	}
	if p.Name == "" {
		return optionErr(errors.New("mmt: WithProfile: profile needs a name"))
	}
	if p.FreqHz <= 0 {
		return optionErr(fmt.Errorf("mmt: WithProfile(%q): non-positive FreqHz %v", p.Name, p.FreqHz))
	}
	return func(s *settings) error {
		s.profile = p
		s.set |= setProfile
		return nil
	}
}

// WithTreeLevels sets the MMT depth (2, 3 or 4 — 512 KB, 2 MB or 32 MB
// granules). Default: 3.
func WithTreeLevels(levels int) Option {
	if levels < 2 || levels > 4 {
		return optionErr(fmt.Errorf("mmt: WithTreeLevels(%d): want 2, 3 or 4", levels))
	}
	return func(s *settings) error {
		s.treeLevels = levels
		s.set |= setTreeLevels
		return nil
	}
}

// WithRegions sizes each machine's secure-memory pool in regions of one
// MMT granule each. Default: 8.
func WithRegions(n int) Option {
	if n < 1 {
		return optionErr(fmt.Errorf("mmt: WithRegions(%d): want at least 1", n))
	}
	return func(s *settings) error {
		s.regions = n
		s.set |= setRegions
		return nil
	}
}

// WithNetLatency sets the one-way interconnect propagation delay
// (Figure 10b sweeps this). Default: 0.
func WithNetLatency(d sim.Time) Option {
	if d < 0 {
		return optionErr(fmt.Errorf("mmt: WithNetLatency(%v): negative delay", d))
	}
	return func(s *settings) error {
		s.netLatency = d
		s.set |= setNetLatency
		return nil
	}
}

// WithTracing attaches a trace sink: every machine added to the cluster
// records its per-phase cycle totals, counters and spans (all stamped
// from the simulated clocks) into sink. Pass the sink to NewTraceSink's
// result; read it back via Cluster.Metrics, TraceSink.Summary, or
// TraceSink.WriteChromeTrace. To run untraced (the default — the
// instrumented paths then cost one branch and zero allocations), simply
// omit the option; WithTracing(nil) is an error, not a disable switch.
func WithTracing(sink *TraceSink) Option {
	if sink == nil {
		return optionErr(errors.New("mmt: WithTracing(nil): omit the option to disable tracing"))
	}
	return func(s *settings) error {
		s.trace = sink
		s.set |= setTracing
		return nil
	}
}

// WithSampling switches on the deterministic time-series sampler for
// the cluster's trace sink: every machine's clock samples its phase
// cycles, counters and per-op histogram deltas once per window of
// windowCycles simulated cycles into a bounded per-machine ring.
// windowCycles must be a power of two. Requires WithTracing; read the
// series back via TraceSink.WriteSeriesJSON / SeriesSnapshot, or scrape
// the OpenMetrics exposition at /debug/mmt/metrics when a debug server
// is attached. cfg.MaxSamples zero means DefaultSeriesCap.
func WithSampling(cfg SamplingConfig) Option {
	if cfg.WindowCycles == 0 || cfg.WindowCycles&(cfg.WindowCycles-1) != 0 {
		return optionErr(fmt.Errorf("mmt: WithSampling: window of %d cycles is not a power of two", cfg.WindowCycles))
	}
	if cfg.MaxSamples < 0 {
		return optionErr(fmt.Errorf("mmt: WithSampling: negative MaxSamples %d", cfg.MaxSamples))
	}
	return func(s *settings) error {
		c := cfg
		s.series = &c
		s.set |= setSampling
		return nil
	}
}

// WithDebugServer starts a read-only HTTP introspection endpoint on addr
// (e.g. "localhost:6070", or "127.0.0.1:0" to pick a free port — read it
// back with Cluster.DebugAddr). The server exposes:
//
//	/debug/mmt/hist     per-operation latency histograms (mmt-hist/v1)
//	/debug/mmt/events   the security-event ledger (mmt-events/v1 JSONL)
//	/debug/mmt/summary  the compact text summary (plus ledger droppage)
//	/debug/mmt/metrics  OpenMetrics text exposition (scrapeable; includes
//	                    the time series when WithSampling is on)
//	/debug/mmt/series   the mmt-series/v1 artifact (404 without sampling)
//	/debug/vars         expvar-style metrics JSON
//	/debug/pprof/       the standard Go profiling endpoints
//
// Every response is rendered from a copied snapshot: serving never blocks
// a running simulation, never mutates it, and never charges simulated
// cycles — the simulated timeline is byte-identical with and without the
// server attached. Shut it down with Cluster.Close.
func WithDebugServer(addr string) Option {
	if addr == "" {
		return optionErr(errors.New("mmt: WithDebugServer(\"\"): empty address"))
	}
	return func(s *settings) error {
		s.debugAddr = addr
		s.set |= setDebugServer
		return nil
	}
}

// WithStore attaches an on-disk mmt-store/v1 checkpoint store at dir:
// Cluster.Checkpoint (and the final checkpoint Close performs) stream the
// cluster's dirty state into it under the two-file crash-consistency
// protocol, and mmt.Open(dir) restores the last committed state in a
// later process.
//
// With New, dir must not already hold a committed snapshot — resuming an
// existing store is Open's job, and silently overwriting a committed
// state would defeat the crash-consistency contract. Load accepts a
// fresh-or-committed store and re-bases it from the loaded snapshot.
func WithStore(dir string) Option {
	if dir == "" {
		return optionErr(errors.New("mmt: WithStore(\"\"): empty directory"))
	}
	return func(s *settings) error {
		s.storePath = dir
		s.set |= setStore
		return nil
	}
}

// TraceSink collects cycle-stamped events and monotonic counters from
// every component of a traced cluster. See package mmt/internal/trace
// for the schema; DESIGN.md documents the phase and counter names.
type TraceSink = trace.Sink

// Metrics is a copied snapshot of a trace sink's accumulators: one
// entry per machine, sorted by name. Returned by Cluster.Metrics.
type Metrics = trace.Metrics

// NewTraceSink returns an empty trace sink for WithTracing.
func NewTraceSink() *TraceSink { return trace.NewSink() }

// TracePhase labels one cost category in Metrics (see the Phase* re-
// exports); TraceCounter labels one monotonic count (see Ctr*).
type (
	TracePhase   = trace.Phase
	TraceCounter = trace.Counter
)

// TraceOp labels one operation kind with a cycle-latency histogram in
// Metrics (see the Op* re-exports); Histogram is the fixed-bucket
// power-of-two latency distribution itself.
type (
	TraceOp   = trace.Op
	Histogram = trace.Histogram
)

// Operation re-exports for Metrics.Op.
const (
	OpLocalRead     = trace.OpLocalRead
	OpLocalWrite    = trace.OpLocalWrite
	OpRemoteRead    = trace.OpRemoteRead
	OpRemoteWrite   = trace.OpRemoteWrite
	OpMigrationSend = trace.OpMigrationSend
	OpMigrationRecv = trace.OpMigrationRecv
	OpVerify        = trace.OpVerify
	OpReencrypt     = trace.OpReencrypt
)

// CausalTrace is one migration's (or connect handshake's) cross-machine
// span tree with its end-to-end cycle total and critical path (returned
// by Cluster.Traces); CausalSpan is one span of such a tree; TraceID
// names the trace (root machine + per-machine monotonic sequence — IDs
// are deterministic, never random).
type (
	CausalTrace = trace.CausalTrace
	CausalSpan  = trace.CausalSpan
	TraceID     = trace.TraceID
)

// SecurityEvent is one cycle-stamped entry of the bounded security-event
// ledger (returned by Cluster.Events); SecurityEventKind classifies it;
// Severity ranks kinds (info/warn/error) and selects which events carry
// a frozen FlightSpan ring of the recording machine's recent spans.
type (
	SecurityEvent     = trace.SecEvent
	SecurityEventKind = trace.EventKind
	Severity          = trace.Severity
	FlightSpan        = trace.FlightSpan
)

// Severity re-exports for SecurityEventKind.Severity.
const (
	SevInfo  = trace.SevInfo
	SevWarn  = trace.SevWarn
	SevError = trace.SevError
)

// SamplingConfig configures the windowed time-series sampler
// (WithSampling); SampleSeries is its copied snapshot (returned by
// TraceSink.SeriesSnapshot), made of per-machine ProcSeries whose
// SeriesSample window deltas sum exactly to the end-of-run accumulator
// totals.
type (
	SamplingConfig = trace.SeriesConfig
	SampleSeries   = trace.SeriesView
	ProcSeries     = trace.ProcSeries
	SeriesSample   = trace.SeriesSample
)

// Security-event kind re-exports for Cluster.Events.
const (
	EvIntegrityFail   = trace.EvIntegrityFail
	EvAuthFail        = trace.EvAuthFail
	EvReplayReject    = trace.EvReplayReject
	EvReorderReject   = trace.EvReorderReject
	EvStaleCounter    = trace.EvStaleCounter
	EvMigrationSend   = trace.EvMigrationSend
	EvMigrationAccept = trace.EvMigrationAccept
	EvMigrationReject = trace.EvMigrationReject
	EvDelegationAck   = trace.EvDelegationAck
	EvCapDestroy      = trace.EvCapDestroy
)

// Phase re-exports for Metrics.PhaseCycles.
const (
	PhaseData       = trace.PhaseData
	PhaseRootMount  = trace.PhaseRootMount
	PhaseTreeWalk   = trace.PhaseTreeWalk
	PhaseMAC        = trace.PhaseMAC
	PhaseTreeUpdate = trace.PhaseTreeUpdate
	PhaseReencrypt  = trace.PhaseReencrypt
	PhaseMemcpy     = trace.PhaseMemcpy
	PhaseEncrypt    = trace.PhaseEncrypt
	PhaseDecrypt    = trace.PhaseDecrypt
	PhaseDMA        = trace.PhaseDMA
	PhaseDelegation = trace.PhaseDelegation
	PhaseConnect    = trace.PhaseConnect
	PhaseSend       = trace.PhaseSend
	PhaseRecv       = trace.PhaseRecv
	PhaseApp        = trace.PhaseApp
)

// Counter re-exports for Metrics.Counter. The CtrWire* counters are the
// adversary's view: messages and bytes per traffic kind, counted at the
// sending endpoint — exactly what an interposer on the interconnect sees.
const (
	CtrTreeNodeWalks       = trace.CtrTreeNodeWalks
	CtrMACVerifies         = trace.CtrMACVerifies
	CtrMACUpdates          = trace.CtrMACUpdates
	CtrNodeCacheHits       = trace.CtrNodeCacheHits
	CtrNodeCacheMisses     = trace.CtrNodeCacheMisses
	CtrRootMounts          = trace.CtrRootMounts
	CtrReencryptLines      = trace.CtrReencryptLines
	CtrTreeNodeVerifies    = trace.CtrTreeNodeVerifies
	CtrTreeNodeVerifyFails = trace.CtrTreeNodeVerifyFails
	CtrTreeNodeRehashes    = trace.CtrTreeNodeRehashes
	CtrClosuresSent        = trace.CtrClosuresSent
	CtrClosuresAccepted    = trace.CtrClosuresAccepted
	CtrClosuresRejected    = trace.CtrClosuresRejected
	CtrClosureEncodeBytes  = trace.CtrClosureEncodeBytes
	CtrClosureDecodeBytes  = trace.CtrClosureDecodeBytes
	CtrWireMsgsData        = trace.CtrWireMsgsData
	CtrWireMsgsClosure     = trace.CtrWireMsgsClosure
	CtrWireMsgsControl     = trace.CtrWireMsgsControl
	CtrWireBytesData       = trace.CtrWireBytesData
	CtrWireBytesClosure    = trace.CtrWireBytesClosure
	CtrWireBytesControl    = trace.CtrWireBytesControl
)

// New builds the trust roots and the interconnect. With no options it
// gives the paper's default system: the Gem5 cost profile, 3-level
// (2 MB) trees, 8 secure regions per machine, a zero-latency
// interconnect, and tracing disabled.
func New(opts ...Option) (*Cluster, error) {
	s, err := applySettings(opts)
	if err != nil {
		return nil, err
	}
	return newCluster(s)
}
