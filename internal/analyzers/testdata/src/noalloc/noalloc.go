// Package noalloc exercises the noalloc analyzer: //mmt:hotpath
// functions (and everything they statically call in the module) must be
// free of allocation sites on every path that can reach a success exit.
package noalloc

import (
	"encoding/binary"
	"errors"
	"fmt"
)

var errBad = errors.New("bad")

// hotMake allocates unconditionally on the hot path.
//mmt:hotpath
func hotMake(n int) []byte {
	buf := make([]byte, n) // want "make allocates"
	return buf
}

// coldAlloc allocates only en route to an error return: the hardware
// never takes tamper paths in steady state, so the block is cold and the
// analyzer stays silent.
//mmt:hotpath
func coldAlloc(ok bool) ([]byte, error) {
	if !ok {
		detail := make([]byte, 8)
		detail[0] = 1
		return detail, errBad
	}
	return nil, nil
}

// hotGuard's allocation feeds a panic: panic-only blocks are cold too.
//mmt:hotpath
func hotGuard(n int) int {
	if n < 0 {
		panic(fmt.Sprintf("negative %d", n))
	}
	return n
}

// helper is not annotated, but hotCallsHelper reaches it statically, so
// its allocation is a finding attributed to the helper.
func helper(n int) []int {
	out := make([]int, n) // want "make allocates"
	return out
}

//mmt:hotpath
func hotCallsHelper(n int) int {
	return len(helper(n))
}

// amortized grows a table; callers vouch for the amortization by
// suppressing the call site, which prunes the traversal.
func amortized(n int) []int {
	return make([]int, n)
}

//mmt:hotpath
func hotSuppressedCallee(n int) int {
	//mmt:allow noalloc: amortized growth, cross-checked by benchmarks
	return len(amortized(n))
}

// scratch is the caller-owned buffer idiom: appending into a [:0]
// reslice fills capacity reserved elsewhere and is exempt.
type scratch struct {
	buf []uint64
}

//mmt:hotpath
func fill(s *scratch, xs []uint64) uint64 {
	w := s.buf[:0]
	for _, x := range xs {
		w = append(w, x)
	}
	var sum uint64
	for _, v := range w {
		sum += v
	}
	return sum
}

// hotAppend appends into an unreserved slice — may grow.
//mmt:hotpath
func hotAppend(dst []int, v int) []int {
	dst = append(dst, v) // want "append may grow and allocate"
	return dst
}

// hotMapWrite may rehash.
//mmt:hotpath
func hotMapWrite(m map[int]int, k int) {
	m[k] = 1 // want "map assignment may rehash and allocate"
}

// hotClosure captures n, which forces a heap-allocated closure.
//mmt:hotpath
func hotClosure(n int) func() int {
	return func() int { return n } // want "closure captures outer variables"
}

// hotGo spawns a goroutine.
//mmt:hotpath
func hotGo(ch chan int) {
	go send(ch) // want "go statement allocates"
}

func send(ch chan int) { ch <- 1 }

// hotConcat builds a new string.
//mmt:hotpath
func hotConcat(a, b string) string {
	return a + b // want "string concatenation allocates"
}

// hotConv copies the string into fresh storage.
//mmt:hotpath
func hotConv(s string) []byte {
	return []byte(s) // want "conversion .* allocates"
}

// hotBox stores a non-pointer concrete value in an interface.
//mmt:hotpath
func hotBox(v int) any {
	return v // want "storing int in an interface allocates"
}

// hotStdlib calls outside the allocation-free whitelist are findings;
// whitelisted packages (encoding/binary here) pass silently.
//mmt:hotpath
func hotStdlib(b []byte, v int) string {
	_ = binary.LittleEndian.Uint64(b)
	return fmt.Sprintf("%d", v) // want "call to fmt.Sprintf may allocate"
}

// checkpointFlush is declared cold: checkpoint I/O runs off the critical
// path, so the traversal never descends into it — no call-site
// suppression needed at its hot callers.
//mmt:coldpath
func checkpointFlush(n int) []byte {
	return make([]byte, n)
}

//mmt:hotpath
func hotCallsColdpath(n int) int {
	return len(checkpointFlush(n))
}
