package analyzers_test

import (
	"testing"

	"mmt/internal/analyzers"
	"mmt/internal/analyzers/analysistest"
)

// Each analyzer runs over its fixture package in testdata/src/<name>;
// // want comments mark the expected diagnostics, *_test.go fixture files
// must stay silent, and //mmt:allow comments exercise suppression.

func TestSimClock(t *testing.T) {
	analysistest.Run(t, analyzers.SimClock, "simclock")
}

func TestCryptoCompare(t *testing.T) {
	analysistest.Run(t, analyzers.CryptoCompare, "cryptocompare")
}

func TestCheckVerify(t *testing.T) {
	analysistest.Run(t, analyzers.CheckVerify, "checkverify")
}

func TestNoPanic(t *testing.T) {
	analysistest.Run(t, analyzers.NoPanic, "nopanic")
}

func TestMapOrder(t *testing.T) {
	analysistest.Run(t, analyzers.MapOrder, "maporder")
}

func TestParClock(t *testing.T) {
	analysistest.Run(t, analyzers.ParClock, "parclock")
}

func TestEventKind(t *testing.T) {
	analysistest.Run(t, analyzers.EventKind, "eventkind")
}

func TestNoAlloc(t *testing.T) {
	analysistest.Run(t, analyzers.NoAlloc, "noalloc")
}

func TestLockOrder(t *testing.T) {
	analysistest.Run(t, analyzers.LockOrder, "lockorder")
}

func TestPhaseCharge(t *testing.T) {
	analysistest.Run(t, analyzers.PhaseCharge, "phasecharge")
}

func TestTraceCtx(t *testing.T) {
	analysistest.Run(t, analyzers.TraceCtx, "tracectx")
}

func TestSamplerWindow(t *testing.T) {
	analysistest.Run(t, analyzers.SamplerWindow, "samplerwindow")
}

// TestDriverOnRealPackage smoke-tests the go-list driver end to end: the
// shipped tree must be clean under the full suite for at least one real
// package (the crypto core, which is also the most invariant-dense).
func TestDriverOnRealPackage(t *testing.T) {
	if testing.Short() {
		t.Skip("invokes the go tool")
	}
	root, err := analyzers.ModuleRoot()
	if err != nil {
		t.Fatal(err)
	}
	findings, err := analyzers.Run(root, []string{"./internal/crypt"}, analyzers.All())
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		t.Errorf("unexpected finding: %s", f)
	}
}
