package cryptocompare

import "mmt/internal/crypt"

// Test code may compare MACs directly (tests routinely assert exact tag
// values); the invariant binds non-test code only, so nothing here is
// flagged.
func testOnlyCompare(e *crypt.Engine, tw crypt.Tweak, ct []byte, stored uint64) bool {
	return e.LineMAC(tw, ct) == stored
}
