package bench

import (
	"fmt"

	"mmt/internal/graph"
	"mmt/internal/par"
	"mmt/internal/sim"
	"mmt/internal/tree"
	"mmt/internal/workload"
)

// Fig14Row is one configuration of Figure 14: PageRank under the GAS model
// on two machines, with the remote-transfer phase carried by one of the
// three schemes.
type Fig14Row struct {
	Mode graph.Mode
	// Elapsed is the end-to-end time for the run.
	Elapsed sim.Time
	// RemoteTransferShare is the remote-transfer phase's share of total
	// cycles (paper: ~5% for MMT, ~37.5% for the secure channel).
	RemoteTransferShare float64
	// VsSecureChannel is 1 - elapsed/secureElapsed (paper: MMT +35%).
	VsSecureChannel float64
}

// Fig14Config mirrors the paper's graph: ~100k vertices with ~60k
// cross-machine edges on two machines.
type Fig14Config struct {
	Vertices   int
	AvgDegree  int
	Machines   int
	Iterations int
}

// DefaultFig14Config returns the paper-scale setup.
func DefaultFig14Config() Fig14Config {
	return Fig14Config{Vertices: 100_000, AvgDegree: 8, Machines: 2, Iterations: 3}
}

// Fig14 runs PageRank in the three modes and reports phase breakdowns and
// end-to-end gains.
func Fig14(fc Fig14Config) ([]Fig14Row, int, error) {
	g := workload.RandomGraph(14, fc.Vertices, fc.AvgDegree)
	_, cross := g.Partition(fc.Machines)
	base := graph.Config{
		Machines:             fc.Machines,
		Profile:              sim.Gem5Profile(),
		Geometry:             tree.ForLevels(3),
		PoolRegions:          6,
		GatherCyclesPerMsg:   40,
		ApplyCyclesPerVertex: 30,
		ScatterCyclesPerEdge: 12,
		Iterations:           fc.Iterations,
	}
	modes := []graph.Mode{graph.NonSecure, graph.MMT, graph.SecureChannel}
	// The three modes share only the read-only graph; each run copies the
	// config and profile and builds its own machines and network.
	outs, err := par.Map(Workers(), modes, func(_ int, mode graph.Mode) (*graph.Result, error) {
		cfg := base
		prof := *base.Profile
		cfg.Profile = &prof
		cfg.Mode = mode
		r, err := graph.PageRank(cfg, g)
		if err != nil {
			return nil, fmt.Errorf("fig14 %v: %w", mode, err)
		}
		return r, nil
	})
	if err != nil {
		return nil, 0, err
	}
	results := make(map[graph.Mode]*graph.Result)
	for i, mode := range modes {
		results[mode] = outs[i]
	}
	secure := float64(results[graph.SecureChannel].Elapsed)
	var rows []Fig14Row
	for _, mode := range modes {
		r := results[mode]
		rows = append(rows, Fig14Row{
			Mode:                mode,
			Elapsed:             r.Elapsed,
			RemoteTransferShare: float64(r.Breakdown.RemoteTransfer) / float64(r.Breakdown.Total()),
			VsSecureChannel:     1 - float64(r.Elapsed)/secure,
		})
	}
	return rows, cross, nil
}

// RenderFig14 prints the comparison.
func RenderFig14(rows []Fig14Row, crossEdges int) string {
	header := []string{"Mode", "Elapsed", "RemoteTransfer%", "vs SecureChannel"}
	var out [][]string
	for _, r := range rows {
		out = append(out, []string{
			r.Mode.String(), r.Elapsed.String(),
			fmt.Sprintf("%.1f%%", 100*r.RemoteTransferShare),
			fmt.Sprintf("%+.0f%%", 100*r.VsSecureChannel),
		})
	}
	title := fmt.Sprintf("Figure 14: PageRank/GAS on 2 machines, %d cross edges (paper: MMT transfer 5%% vs 37.5%%, +35%% end-to-end)", crossEdges)
	return renderTable(title, header, out)
}
