package bench

import (
	"bytes"
	"testing"

	"mmt/internal/trace"
)

// TestFig11SeriesSerialParallelEquivalence: the windowed time series
// rides the same determinism contract as every other export — the
// mmt-series/v1 document of a fig11 sweep (engine cells fanned out
// across workers, each with its own clock and sink, merged serially in
// input order) is byte-identical at 1/2/4/8 workers. Window indices
// come off the simulated clocks, so the fan-out cannot move a sample
// between windows; the merge's fresh-copy path preserves the deltas
// bit for bit. Run with -race this also covers the sampler's locking.
func TestFig11SeriesSerialParallelEquivalence(t *testing.T) {
	seriesBytes := func(workers int) []byte {
		SetWorkers(workers)
		defer SetWorkers(1)
		sink := trace.NewSink()
		if err := sink.EnableSeries(trace.SeriesConfig{WindowCycles: fig11SeriesWindow}); err != nil {
			t.Fatal(err)
		}
		if _, _, err := fig11Traced(2_000, sink); err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := sink.WriteSeriesJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	serial := seriesBytes(1)
	if !bytes.Contains(serial, []byte("mmt-series/v1")) || !bytes.Contains(serial, []byte(`"samples"`)) {
		t.Fatalf("series export looks empty:\n%.400s", serial)
	}
	for _, workers := range []int{2, 4, 8} {
		if parallel := seriesBytes(workers); !bytes.Equal(serial, parallel) {
			t.Errorf("workers=%d: mmt-series/v1 export differs from serial", workers)
		}
	}
}
