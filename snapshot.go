package mmt

// This file is the tentpole of the persistence surface: a canonical
// binary model of a quiescent cluster ("mmt-snap/v1"), Save/Load over
// any io.Writer/io.Reader, and the mmt-store/v1 checkpoint path
// (WithStore + Checkpoint + Open) that streams dirty deltas between full
// base snapshots under the two-file crash-consistency protocol.
//
// The integrity design: the snapshot hash is SHA-256 over the full
// canonical encoding of the model. Save appends it as a trailer; the
// store pins it in each commit record. Every reload rebuilds the model
// (base + deltas), restores the cluster through the normal cryptographic
// verification paths (certificates and reports re-verified, every tree
// node and line MAC re-checked by Controller.Install), then re-encodes
// the restored cluster and requires the hash to match — a reload is
// byte-for-byte the state that was saved, or it is an error.

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"

	"mmt/internal/attest"
	"mmt/internal/core"
	"mmt/internal/enclave"
	"mmt/internal/engine"
	"mmt/internal/forest"
	"mmt/internal/mem"
	"mmt/internal/monitor"
	"mmt/internal/netsim"
	"mmt/internal/sim"
	"mmt/internal/store"
	"mmt/internal/tree"
)

// snapMagic tags the canonical snapshot encoding.
const snapMagic = "mmt-snap/v1\x00"

// Persistence errors.
var (
	// ErrNotQuiescent: delegation traffic is in flight; pump or complete
	// it before saving (a consistent snapshot needs every MMT settled).
	ErrNotQuiescent = monitor.ErrNotQuiescent
	// ErrNoStore: Checkpoint on a cluster built without WithStore.
	ErrNoStore = errors.New("mmt: no checkpoint store attached (build the cluster with WithStore)")
	// ErrNoSnapshot: Open on a store directory with no committed state.
	ErrNoSnapshot = errors.New("mmt: store holds no committed snapshot")
	// ErrBadSnapshot: the snapshot bytes are malformed or fail their hash.
	ErrBadSnapshot = errors.New("mmt: malformed snapshot")
)

// Checkpoint record types inside an mmt-store/v1 data file.
const (
	recBase    store.RecordType = 1 // full canonical model blob
	recMachine store.RecordType = 2 // clock + stats patch for one machine
	recRoot    store.RecordType = 3 // root-counter patch for one region
	recNode    store.RecordType = 4 // one serialized tree node
	recLine    store.RecordType = 5 // one data line (ciphertext + MAC)
)

// ---------------------------------------------------------------------------
// The model: a plain-struct image of everything a cluster persists.

type snapModel struct {
	treeLevels int
	regions    int
	netLatency sim.Time
	profile    *sim.Profile
	mfrKey     []byte
	authority  *attest.AuthorityState
	machines   []*machineModel
	links      []linkModel
}

type machineModel struct {
	name     string
	keyDER   []byte
	cert     attest.Certificate
	clockNow sim.Time
	stats    engine.Stats
	mon      *monitor.Snapshot
	regions  []*regionModel
}

type regionModel struct {
	region      int
	rootCounter uint64
	tree        []byte
	data        []byte
	lineMACs    []uint64
}

type linkModel struct {
	id                 string
	machineA, machineB string
	enclaveA, enclaveB monitor.EnclaveID
}

func (m *snapModel) machine(name string) *machineModel {
	for _, mm := range m.machines {
		if mm.name == name {
			return mm
		}
	}
	return nil
}

func (m *machineModel) regionModel(r int) *regionModel {
	for _, rm := range m.regions {
		if rm.region == r {
			return rm
		}
	}
	return nil
}

// buildModel captures the cluster into a model. It requires quiescence:
// nothing in flight on the interconnect and every monitor at a settled
// delegation state.
func (c *Cluster) buildModel() (*snapModel, error) {
	if n := c.net.PendingTotal(); n != 0 {
		return nil, fmt.Errorf("%w (%d messages on the interconnect)", ErrNotQuiescent, n)
	}
	mfrKey, err := c.mfr.MarshalKey()
	if err != nil {
		return nil, err
	}
	auth, err := c.authority.MarshalState()
	if err != nil {
		return nil, err
	}
	m := &snapModel{
		treeLevels: c.set.treeLevels,
		regions:    c.set.regions,
		netLatency: c.set.netLatency,
		profile:    c.set.profile,
		mfrKey:     mfrKey,
		authority:  auth,
	}
	for _, name := range c.machineOrder {
		mach := c.machines[name]
		keyDER, err := mach.ident.MarshalKey()
		if err != nil {
			return nil, err
		}
		snap, err := mach.mon.Snapshot()
		if err != nil {
			return nil, err
		}
		ctl := mach.mon.Node().Controller()
		mm := &machineModel{
			name:     name,
			keyDER:   keyDER,
			cert:     mach.ident.Cert,
			clockNow: mach.Clock().Now(),
			stats:    ctl.Stats(),
			mon:      snap,
		}
		for r := 0; r < c.set.regions; r++ {
			if ctl.Mode(r) == engine.ModeDisabled {
				continue
			}
			treeBytes, data, lineMACs, rootCounter, _, err := ctl.Export(r)
			if err != nil {
				return nil, err
			}
			mm.regions = append(mm.regions, &regionModel{
				region: r, rootCounter: rootCounter,
				tree: treeBytes, data: data, lineMACs: lineMACs,
			})
		}
		m.machines = append(m.machines, mm)
	}
	for _, id := range c.linkOrder {
		l := c.links[id]
		m.links = append(m.links, linkModel{
			id:       l.id,
			machineA: l.a.machine.name, enclaveA: l.a.id,
			machineB: l.b.machine.name, enclaveB: l.b.id,
		})
	}
	return m, nil
}

// ---------------------------------------------------------------------------
// Canonical encoding. Every integer is little-endian and fixed-width,
// every float is its IEEE-754 bit pattern, every slice is length-prefixed
// and emitted in a deterministic order — so save→load→save is
// byte-identical and the SHA-256 over the blob is a faithful state hash.

type snapWriter struct{ buf []byte }

func (w *snapWriter) u8(v uint8)   { w.buf = append(w.buf, v) }
func (w *snapWriter) u32(v uint32) { w.buf = binary.LittleEndian.AppendUint32(w.buf, v) }
func (w *snapWriter) u64(v uint64) { w.buf = binary.LittleEndian.AppendUint64(w.buf, v) }
func (w *snapWriter) f64(v float64) {
	w.buf = binary.LittleEndian.AppendUint64(w.buf, math.Float64bits(v))
}
func (w *snapWriter) boolean(v bool) {
	if v {
		w.u8(1)
	} else {
		w.u8(0)
	}
}
func (w *snapWriter) bytes(b []byte) {
	w.u32(uint32(len(b)))
	w.buf = append(w.buf, b...)
}
func (w *snapWriter) str(s string) { w.bytes([]byte(s)) }

type snapReader struct {
	buf []byte
	off int
	err error
}

func (r *snapReader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf("%w: %s", ErrBadSnapshot, fmt.Sprintf(format, args...))
	}
}

func (r *snapReader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || r.off+n > len(r.buf) {
		r.fail("truncated at offset %d (need %d bytes)", r.off, n)
		return nil
	}
	b := r.buf[r.off : r.off+n]
	r.off += n
	return b
}

func (r *snapReader) u8() uint8 {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}
func (r *snapReader) u32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}
func (r *snapReader) u64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}
func (r *snapReader) f64() float64 { return math.Float64frombits(r.u64()) }
func (r *snapReader) boolean() bool {
	switch r.u8() {
	case 0:
		return false
	case 1:
		return true
	default:
		r.fail("bad bool at offset %d", r.off-1)
		return false
	}
}
func (r *snapReader) bytes() []byte {
	n := int(r.u32())
	b := r.take(n)
	if b == nil {
		return nil
	}
	return append([]byte(nil), b...)
}
func (r *snapReader) str() string { return string(r.bytes()) }

// count reads a length prefix and bounds it: no field of a well-formed
// snapshot has more elements than remaining bytes.
func (r *snapReader) count() int {
	n := int(r.u32())
	if r.err == nil && n > len(r.buf)-r.off {
		r.fail("implausible count %d at offset %d", n, r.off-4)
		return 0
	}
	return n
}

func encodeModel(m *snapModel) []byte {
	w := &snapWriter{}
	w.buf = append(w.buf, snapMagic...)
	w.u32(uint32(m.treeLevels))
	w.u32(uint32(m.regions))
	w.f64(float64(m.netLatency))
	encodeProfile(w, m.profile)
	w.bytes(m.mfrKey)
	w.bytes(m.authority.KeyDER)
	w.u32(uint32(len(m.authority.Policy)))
	for _, p := range m.authority.Policy {
		w.buf = append(w.buf, p[:]...)
	}
	w.u32(uint32(m.authority.NextID))
	w.u32(uint32(len(m.machines)))
	for _, mm := range m.machines {
		encodeMachine(w, mm)
	}
	w.u32(uint32(len(m.links)))
	for _, l := range m.links {
		w.str(l.id)
		w.str(l.machineA)
		w.u32(uint32(l.enclaveA))
		w.str(l.machineB)
		w.u32(uint32(l.enclaveB))
	}
	return w.buf
}

func decodeModel(blob []byte) (*snapModel, error) {
	if len(blob) < len(snapMagic) || string(blob[:len(snapMagic)]) != snapMagic {
		return nil, fmt.Errorf("%w: bad magic (want %q)", ErrBadSnapshot, snapMagic)
	}
	r := &snapReader{buf: blob, off: len(snapMagic)}
	m := &snapModel{
		treeLevels: int(r.u32()),
		regions:    int(r.u32()),
		netLatency: sim.Time(r.f64()),
	}
	m.profile = decodeProfile(r)
	m.mfrKey = r.bytes()
	auth := &attest.AuthorityState{KeyDER: r.bytes()}
	for range r.count() {
		var meas attest.Measurement
		copy(meas[:], r.take(len(meas)))
		auth.Policy = append(auth.Policy, meas)
	}
	auth.NextID = forest.NodeID(r.u32())
	m.authority = auth
	for range r.count() {
		m.machines = append(m.machines, decodeMachine(r))
	}
	for range r.count() {
		m.links = append(m.links, linkModel{
			id:       r.str(),
			machineA: r.str(), enclaveA: monitor.EnclaveID(r.u32()),
			machineB: r.str(), enclaveB: monitor.EnclaveID(r.u32()),
		})
	}
	if r.err != nil {
		return nil, r.err
	}
	if r.off != len(r.buf) {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrBadSnapshot, len(r.buf)-r.off)
	}
	return m, nil
}

func encodeProfile(w *snapWriter, p *sim.Profile) {
	w.str(p.Name)
	w.f64(p.FreqHz)
	w.f64(float64(p.EncryptSetup))
	w.f64(p.EncryptPerByte)
	w.f64(float64(p.DecryptSetup))
	w.f64(p.DecryptPerByte)
	pts := p.Memcpy.Points()
	w.u32(uint32(len(pts)))
	for _, pt := range pts {
		w.u64(uint64(pt.Size))
		w.f64(pt.PerByte)
	}
	w.f64(float64(p.MemcpySetup))
	w.f64(float64(p.RemoteWriteSetup))
	w.f64(p.RemoteWritePerByte)
	w.f64(float64(p.DelegationFixed))
	w.f64(float64(p.NetLatency))
	w.f64(float64(p.DRAMAccess))
	w.f64(float64(p.AESLatency))
	w.f64(float64(p.MACLatency))
	w.u64(uint64(p.MMTCacheBytes))
	w.u64(uint64(p.RootTableSoC))
	w.u64(uint64(p.SecureMemory))
}

func decodeProfile(r *snapReader) *sim.Profile {
	p := &sim.Profile{Name: r.str(), FreqHz: r.f64()}
	p.EncryptSetup = sim.Cycles(r.f64())
	p.EncryptPerByte = r.f64()
	p.DecryptSetup = sim.Cycles(r.f64())
	p.DecryptPerByte = r.f64()
	n := r.count()
	pts := make([]sim.CurvePoint, 0, n)
	for range n {
		pts = append(pts, sim.CurvePoint{Size: int(r.u64()), PerByte: r.f64()})
	}
	p.MemcpySetup = sim.Cycles(r.f64())
	p.RemoteWriteSetup = sim.Cycles(r.f64())
	p.RemoteWritePerByte = r.f64()
	p.DelegationFixed = sim.Cycles(r.f64())
	p.NetLatency = sim.Time(r.f64())
	p.DRAMAccess = sim.Cycles(r.f64())
	p.AESLatency = sim.Cycles(r.f64())
	p.MACLatency = sim.Cycles(r.f64())
	p.MMTCacheBytes = int(r.u64())
	p.RootTableSoC = int(r.u64())
	p.SecureMemory = int(r.u64())
	if r.err != nil {
		return p
	}
	if len(pts) == 0 {
		r.fail("profile has no memcpy curve points")
		return p
	}
	p.Memcpy = sim.NewCurve(pts...)
	return p
}

func encodeMachine(w *snapWriter, m *machineModel) {
	w.str(m.name)
	w.bytes(m.keyDER)
	w.str(m.cert.Subject)
	w.bytes(m.cert.PublicKey)
	w.bytes(m.cert.Signature)
	w.f64(float64(m.clockNow))
	encodeStats(w, m.stats)
	encodeMonitor(w, m.mon)
	w.u32(uint32(len(m.regions)))
	for _, rm := range m.regions {
		w.u32(uint32(rm.region))
		w.u64(rm.rootCounter)
		w.bytes(rm.tree)
		w.bytes(rm.data)
		w.u32(uint32(len(rm.lineMACs)))
		for _, mac := range rm.lineMACs {
			w.u64(mac)
		}
	}
}

func decodeMachine(r *snapReader) *machineModel {
	m := &machineModel{name: r.str(), keyDER: r.bytes()}
	m.cert = attest.Certificate{Subject: r.str(), PublicKey: r.bytes(), Signature: r.bytes()}
	m.clockNow = sim.Time(r.f64())
	m.stats = decodeStats(r)
	m.mon = decodeMonitor(r)
	for range r.count() {
		rm := &regionModel{region: int(r.u32()), rootCounter: r.u64(), tree: r.bytes(), data: r.bytes()}
		for range r.count() {
			rm.lineMACs = append(rm.lineMACs, r.u64())
		}
		m.regions = append(m.regions, rm)
	}
	return m
}

func encodeStats(w *snapWriter, s engine.Stats) {
	w.u64(s.Reads)
	w.u64(s.Writes)
	w.u64(s.NodeHits)
	w.u64(s.NodeMisses)
	w.u64(s.RootMounts)
	w.u64(s.DataAccesses)
	w.u64(s.ReencryptedLines)
	w.f64(float64(s.Cycles))
}

func decodeStats(r *snapReader) engine.Stats {
	return engine.Stats{
		Reads: r.u64(), Writes: r.u64(),
		NodeHits: r.u64(), NodeMisses: r.u64(),
		RootMounts: r.u64(), DataAccesses: r.u64(),
		ReencryptedLines: r.u64(), Cycles: sim.Cycles(r.f64()),
	}
}

func encodeMonitor(w *snapWriter, s *monitor.Snapshot) {
	w.u32(uint32(s.NodeID))
	w.u32(uint32(s.Report.NodeID))
	w.str(s.Report.Subject)
	w.buf = append(w.buf, s.Report.Measurement[:]...)
	w.bytes(s.Report.MachinePublicKey)
	w.bytes(s.Report.Signature)
	w.u32(uint32(s.NextEnclave))
	w.u64(uint64(s.NextCap))
	w.u64(s.AllocNext)
	w.u32(uint32(len(s.Pool)))
	for _, r := range s.Pool {
		w.u32(uint32(r))
	}
	w.u32(uint32(len(s.Enclaves)))
	for _, e := range s.Enclaves {
		w.u32(uint32(e.ID))
		w.str(e.Name)
		w.buf = append(w.buf, e.Measurement[:]...)
		w.u32(uint32(len(e.Caps)))
		for _, c := range e.Caps {
			w.u64(uint64(c))
		}
	}
	w.u32(uint32(len(s.PMOs)))
	for _, p := range s.PMOs {
		w.u64(uint64(p.Cap))
		w.u32(uint32(p.Region))
		w.u32(uint32(p.Owner))
	}
	w.u32(uint32(len(s.MMTs)))
	for _, m := range s.MMTs {
		w.u32(uint32(m.Region))
		w.u8(uint8(m.State))
		w.buf = append(w.buf, m.Key[:]...)
		w.u64(m.GUAddr)
		w.u8(uint8(m.Mode))
		w.boolean(m.ReadOnly)
	}
	w.u32(uint32(len(s.Conns)))
	for _, c := range s.Conns {
		w.str(c.ID)
		w.u32(uint32(c.Local))
		w.str(c.PeerMonitor)
		w.u32(uint32(c.PeerEnclave))
		w.buf = append(w.buf, c.Key[:]...)
		w.u64(c.LastCounter)
		w.u64(c.LastGUAddr)
		w.u64(uint64(c.RecvCap))
		w.u32(uint32(len(c.Received)))
		for _, cap := range c.Received {
			w.u64(uint64(cap))
		}
		w.u64(uint64(c.Acked))
	}
}

func decodeMonitor(r *snapReader) *monitor.Snapshot {
	s := &monitor.Snapshot{NodeID: forest.NodeID(r.u32())}
	rep := &attest.Report{NodeID: forest.NodeID(r.u32()), Subject: r.str()}
	copy(rep.Measurement[:], r.take(len(rep.Measurement)))
	rep.MachinePublicKey = r.bytes()
	rep.Signature = r.bytes()
	s.Report = rep
	s.NextEnclave = monitor.EnclaveID(r.u32())
	s.NextCap = monitor.CapID(r.u64())
	s.AllocNext = r.u64()
	for range r.count() {
		s.Pool = append(s.Pool, int(r.u32()))
	}
	for range r.count() {
		e := monitor.EnclaveRec{ID: monitor.EnclaveID(r.u32()), Name: r.str()}
		copy(e.Measurement[:], r.take(len(e.Measurement)))
		for range r.count() {
			e.Caps = append(e.Caps, monitor.CapID(r.u64()))
		}
		s.Enclaves = append(s.Enclaves, e)
	}
	for range r.count() {
		s.PMOs = append(s.PMOs, monitor.PMORec{
			Cap: monitor.CapID(r.u64()), Region: int(r.u32()), Owner: monitor.EnclaveID(r.u32()),
		})
	}
	for range r.count() {
		m := monitor.MMTRec{Region: int(r.u32()), State: core.State(r.u8())}
		copy(m.Key[:], r.take(len(m.Key)))
		m.GUAddr = r.u64()
		m.Mode = core.TransferMode(r.u8())
		m.ReadOnly = r.boolean()
		s.MMTs = append(s.MMTs, m)
	}
	for range r.count() {
		c := monitor.ConnRec{ID: r.str(), Local: monitor.EnclaveID(r.u32()), PeerMonitor: r.str(), PeerEnclave: monitor.EnclaveID(r.u32())}
		copy(c.Key[:], r.take(len(c.Key)))
		c.LastCounter = r.u64()
		c.LastGUAddr = r.u64()
		c.RecvCap = monitor.CapID(r.u64())
		for range r.count() {
			c.Received = append(c.Received, monitor.CapID(r.u64()))
		}
		c.Acked = int(r.u64())
		s.Conns = append(s.Conns, c)
	}
	return s
}

// ---------------------------------------------------------------------------
// Restore: model -> running cluster, through the verification paths.

// restoreCluster rebuilds a cluster from a model, then re-encodes the
// result and requires its hash to equal wantHash — the verified-reload
// contract. Structural options in s were already rejected by the caller;
// trace/debug settings apply to the restored cluster.
func restoreCluster(m *snapModel, s settings, wantHash [32]byte) (*Cluster, error) {
	s.profile = m.profile
	s.treeLevels = m.treeLevels
	s.regions = m.regions
	s.netLatency = m.netLatency
	geo := tree.ForLevels(s.treeLevels)
	if err := geo.Validate(); err != nil {
		return nil, err
	}
	mfr, err := attest.RestoreManufacturer(m.mfrKey)
	if err != nil {
		return nil, err
	}
	authority, err := attest.RestoreAuthority(mfr.PublicKey(), m.authority)
	if err != nil {
		return nil, err
	}
	c := &Cluster{
		set:         s,
		geometry:    geo,
		mfr:         mfr,
		authority:   authority,
		measurement: attest.MeasureSoftware([]byte("mmt-monitor-v1")),
		net:         netsim.NewNetwork(s.netLatency),
		machines:    make(map[string]*Machine),
		links:       make(map[string]*Link),
		needBase:    true,
	}
	if s.debugAddr != "" {
		dbg, err := startDebugServer(s.debugAddr, s.trace)
		if err != nil {
			return nil, err
		}
		c.debug = dbg
	}
	fail := func(err error) (*Cluster, error) {
		c.closeDebug()
		return nil, err
	}
	for _, mm := range m.machines {
		mach, err := c.restoreMachine(mm)
		if err != nil {
			return fail(fmt.Errorf("mmt: restoring machine %q: %w", mm.name, err))
		}
		c.machines[mm.name] = mach
		c.machineOrder = append(c.machineOrder, mm.name)
	}
	for _, lm := range m.links {
		a, err := c.restoredEnclave(lm.machineA, lm.enclaveA)
		if err != nil {
			return fail(fmt.Errorf("mmt: restoring link %s: %w", lm.id, err))
		}
		b, err := c.restoredEnclave(lm.machineB, lm.enclaveB)
		if err != nil {
			return fail(fmt.Errorf("mmt: restoring link %s: %w", lm.id, err))
		}
		l := &Link{cluster: c, id: lm.id, a: a, b: b}
		c.links[lm.id] = l
		c.linkOrder = append(c.linkOrder, lm.id)
	}

	// The verified-reload check: the restored cluster must re-encode to
	// exactly the hashed bytes. Any drift — a patch applied wrong, a
	// record lost, nondeterminism in the encoding — fails the load.
	again, err := c.buildModel()
	if err != nil {
		return fail(fmt.Errorf("mmt: re-snapshotting restored cluster: %w", err))
	}
	if got := sha256.Sum256(encodeModel(again)); got != wantHash {
		return fail(fmt.Errorf("%w: restored state hashes to %x, snapshot pinned %x",
			ErrBadSnapshot, got, wantHash))
	}
	return c, nil
}

// restoreMachine rebuilds one machine: identity re-verified, every live
// region cryptographically re-installed, monitor bookkeeping reattached,
// enclave handles adopted in id order.
func (c *Cluster) restoreMachine(mm *machineModel) (*Machine, error) {
	ident, err := attest.RestoreMachine(c.mfr.PublicKey(), mm.name, mm.keyDER, mm.cert)
	if err != nil {
		return nil, err
	}
	pm := mem.New(mem.Config{
		Size:          c.set.regions * c.geometry.DataSize(),
		RegionSize:    c.geometry.DataSize(),
		MetaPerRegion: c.geometry.MetaSize(),
	})
	ctl, err := engine.New(pm, c.geometry, nil, c.set.profile)
	if err != nil {
		return nil, err
	}
	ctl.SetTrace(c.set.trace.Probe(mm.name))

	// Region state first (Controller.Install verifies every node and line
	// MAC under the persisted key before enabling anything), so the
	// monitor's RestoreMMT finds live regions where its records say.
	for _, rm := range mm.regions {
		rec, ok := mmtRecFor(mm.mon, rm.region)
		if !ok {
			return nil, fmt.Errorf("region %d has controller state but no MMT record", rm.region)
		}
		if rec.State != core.StateValid {
			return nil, fmt.Errorf("region %d: controller state with MMT in state %v", rm.region, rec.State)
		}
		mode := engine.ModeReadWrite
		if rec.ReadOnly {
			mode = engine.ModeReadOnly
		}
		if err := ctl.Install(rm.region, rec.Key, rec.GUAddr, rm.rootCounter, rm.tree, rm.data, rm.lineMACs, mode); err != nil {
			return nil, fmt.Errorf("region %d: %w", rm.region, err)
		}
	}
	ctl.Clock().SetNow(mm.clockNow)
	ctl.RestoreStats(mm.stats)

	mon := monitor.New(ident, c.measurement, c.authority.PublicKey(), ctl)
	if err := mon.Restore(mm.mon); err != nil {
		return nil, err
	}
	if err := mon.AttachNetwork(c.net, mm.name); err != nil {
		return nil, err
	}
	m := &Machine{name: mm.name, cluster: c, ident: ident, mon: mon, rt: enclave.NewRuntime(mon)}
	for _, rec := range mm.mon.Enclaves {
		m.enclaves = append(m.enclaves, &Enclave{machine: m, name: rec.Name, id: rec.ID, rt: m.rt.Adopt(rec.ID)})
	}
	return m, nil
}

func mmtRecFor(s *monitor.Snapshot, region int) (monitor.MMTRec, bool) {
	for _, rec := range s.MMTs {
		if rec.Region == region {
			return rec, true
		}
	}
	return monitor.MMTRec{}, false
}

func (c *Cluster) restoredEnclave(machine string, id monitor.EnclaveID) (*Enclave, error) {
	m, ok := c.machines[machine]
	if !ok {
		return nil, fmt.Errorf("unknown machine %q", machine)
	}
	for _, e := range m.enclaves {
		if e.id == id {
			return e, nil
		}
	}
	return nil, fmt.Errorf("no enclave %d on %q", id, machine)
}

// ---------------------------------------------------------------------------
// Save / Load: one-shot portable snapshots.

// Save writes a verified snapshot of the quiescent cluster to w: the
// canonical mmt-snap/v1 blob followed by its SHA-256. The cluster keeps
// running; Save does not mutate simulated state. The returned Manifest
// describes what was saved (mmt-tracecheck validates its JSON form).
func (c *Cluster) Save(w io.Writer) (*Manifest, error) {
	m, err := c.buildModel()
	if err != nil {
		return nil, err
	}
	blob := encodeModel(m)
	hash := sha256.Sum256(blob)
	if _, err := w.Write(blob); err != nil {
		return nil, err
	}
	if _, err := w.Write(hash[:]); err != nil {
		return nil, err
	}
	return manifestFor(m, 0, hash, len(blob)+len(hash)), nil
}

// Load rebuilds a cluster from a Save stream — in this process or any
// other. The snapshot is authoritative for structure: WithProfile,
// WithTreeLevels, WithRegions and WithNetLatency are rejected here;
// WithTracing, WithDebugServer and WithStore apply to the restored
// cluster. Every certificate, attestation report, tree node and line MAC
// is re-verified, and the restored cluster must re-encode to the exact
// hash the stream pinned.
func Load(r io.Reader, opts ...Option) (*Cluster, error) {
	s, err := applySettings(opts)
	if err != nil {
		return nil, err
	}
	if s.set&structuralSettings != 0 {
		return nil, errors.New("mmt: Load: the snapshot pins profile, tree levels, regions and net latency; drop the structural options")
	}
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	if len(data) < len(snapMagic)+sha256.Size {
		return nil, fmt.Errorf("%w: %d bytes is shorter than magic + hash", ErrBadSnapshot, len(data))
	}
	blob, trailer := data[:len(data)-sha256.Size], data[len(data)-sha256.Size:]
	var want [32]byte
	copy(want[:], trailer)
	if got := sha256.Sum256(blob); got != want {
		return nil, fmt.Errorf("%w: blob hashes to %x, trailer says %x", ErrBadSnapshot, got, want)
	}
	m, err := decodeModel(blob)
	if err != nil {
		return nil, err
	}
	storePath := s.storePath
	s.storePath = "" // the store is attached below, after restore succeeds
	c, err := restoreCluster(m, s, want)
	if err != nil {
		return nil, err
	}
	if storePath != "" {
		st, err := store.Open(store.Dir{Path: storePath})
		if err != nil {
			c.Close()
			return nil, err
		}
		c.set.storePath = storePath
		c.ckpt = st
		c.needBase = true
	}
	return c, nil
}

// ---------------------------------------------------------------------------
// The checkpoint store: WithStore + Checkpoint + Open.

// Checkpoint streams the cluster's state into the attached store and
// commits it crash-consistently: after a structural change (machines,
// links, delegations) a full base snapshot, otherwise just the dirty
// deltas — per-machine clocks and stats, changed tree nodes, changed
// data lines — batched into sequential writes. On return the committed
// state is durable: a crash at any later point recovers to it (or to a
// newer commit), never to a torn hybrid. Requires quiescence, like Save.
func (c *Cluster) Checkpoint() error {
	if c.ckpt == nil {
		return ErrNoStore
	}
	// The full model is always built: deltas bound disk I/O, not hash
	// computation — the commit record pins the hash of the whole state.
	m, err := c.buildModel()
	if err != nil {
		return err
	}
	blob := encodeModel(m)
	hash := sha256.Sum256(blob)
	if c.needBase {
		if err := c.ckpt.Append(store.Record{Type: recBase, Payload: blob}); err != nil {
			return err
		}
	} else if err := c.appendDeltas(m); err != nil {
		return err
	}
	if _, err := c.ckpt.Commit(hash); err != nil {
		return err
	}
	// Only after the commit is durable do the dirty bits clear — a failed
	// commit leaves them set, so the next attempt re-streams everything.
	c.needBase = false
	for _, name := range c.machineOrder {
		ctl := c.machines[name].mon.Node().Controller()
		for r := 0; r < c.set.regions; r++ {
			ctl.ClearRegionDirty(r)
		}
	}
	return nil
}

// appendDeltas stages the dirty state as patch records. Structural facts
// (membership, links, capability tables) are covered by the base the
// deltas patch: every structural mutation sets needBase, so a delta
// commit only ever carries clock/stats movement and data-path writes.
func (c *Cluster) appendDeltas(m *snapModel) error {
	for _, name := range c.machineOrder {
		mach := c.machines[name]
		ctl := mach.mon.Node().Controller()
		mm := m.machine(name)
		w := &snapWriter{}
		w.str(name)
		w.f64(float64(mm.clockNow))
		encodeStats(w, mm.stats)
		if err := c.ckpt.Append(store.Record{Type: recMachine, Payload: w.buf}); err != nil {
			return err
		}
		for r := 0; r < c.set.regions; r++ {
			if ctl.Mode(r) == engine.ModeDisabled {
				continue
			}
			rm := mm.regionModel(r)
			rw := &snapWriter{}
			rw.str(name)
			rw.u32(uint32(r))
			rw.u64(rm.rootCounter)
			if err := c.ckpt.Append(store.Record{Type: recRoot, Payload: rw.buf}); err != nil {
				return err
			}
			if !ctl.RegionDirty(r) {
				continue
			}
			tr := ctl.Tree(r)
			var nodeErr error
			var nodeBuf []byte // scratch: nw.bytes copies, so one buffer serves every dirty node
			tr.DirtyNodes(func(level, index int) {
				if nodeErr != nil {
					return
				}
				nw := &snapWriter{}
				nw.str(name)
				nw.u32(uint32(r))
				nw.u32(uint32(level))
				nw.u32(uint32(index))
				nodeBuf = tr.AppendNode(nodeBuf[:0], level, index)
				nw.bytes(nodeBuf)
				nodeErr = c.ckpt.Append(store.Record{Type: recNode, Payload: nw.buf})
			})
			if nodeErr != nil {
				return nodeErr
			}
			var lineErr error
			ctl.DirtyLines(r, func(line int) {
				if lineErr != nil {
					return
				}
				ct, mac := ctl.LineState(r, line)
				lw := &snapWriter{}
				lw.str(name)
				lw.u32(uint32(r))
				lw.u32(uint32(line))
				lw.bytes(ct)
				lw.u64(mac)
				lineErr = c.ckpt.Append(store.Record{Type: recLine, Payload: lw.buf})
			})
			if lineErr != nil {
				return lineErr
			}
		}
	}
	return nil
}

// replayRecords folds a committed record log into the model it encodes:
// the latest base, patched by every delta after it. Patches are absolute
// state (idempotent), so replaying a log twice gives the same model.
func replayRecords(recs []store.Record, geo tree.Geometry) (*snapModel, error) {
	var m *snapModel
	machineOf := func(r *snapReader) (*machineModel, error) {
		if m == nil {
			return nil, fmt.Errorf("%w: delta record before any base snapshot", ErrBadSnapshot)
		}
		name := r.str()
		mm := m.machine(name)
		if mm == nil {
			return nil, fmt.Errorf("%w: delta for unknown machine %q", ErrBadSnapshot, name)
		}
		return mm, nil
	}
	regionOf := func(mm *machineModel, r *snapReader) (*regionModel, error) {
		region := int(r.u32())
		rm := mm.regionModel(region)
		if rm == nil {
			return nil, fmt.Errorf("%w: delta for region %d outside the base snapshot of %q", ErrBadSnapshot, region, mm.name)
		}
		return rm, nil
	}
	for i, rec := range recs {
		switch rec.Type {
		case recBase:
			base, err := decodeModel(rec.Payload)
			if err != nil {
				return nil, fmt.Errorf("record %d: %w", i, err)
			}
			m = base
		case recMachine:
			r := &snapReader{buf: rec.Payload}
			mm, err := machineOf(r)
			if err != nil {
				return nil, fmt.Errorf("record %d: %w", i, err)
			}
			mm.clockNow = sim.Time(r.f64())
			mm.stats = decodeStats(r)
			if r.err != nil {
				return nil, fmt.Errorf("record %d: %w", i, r.err)
			}
		case recRoot:
			r := &snapReader{buf: rec.Payload}
			mm, err := machineOf(r)
			if err != nil {
				return nil, fmt.Errorf("record %d: %w", i, err)
			}
			rm, err := regionOf(mm, r)
			if err != nil {
				return nil, fmt.Errorf("record %d: %w", i, err)
			}
			rm.rootCounter = r.u64()
			if r.err != nil {
				return nil, fmt.Errorf("record %d: %w", i, r.err)
			}
		case recNode:
			r := &snapReader{buf: rec.Payload}
			mm, err := machineOf(r)
			if err != nil {
				return nil, fmt.Errorf("record %d: %w", i, err)
			}
			rm, err := regionOf(mm, r)
			if err != nil {
				return nil, fmt.Errorf("record %d: %w", i, err)
			}
			level, index := int(r.u32()), int(r.u32())
			node := r.bytes()
			if r.err != nil {
				return nil, fmt.Errorf("record %d: %w", i, r.err)
			}
			if level < 0 || level >= geo.Levels() || index < 0 || index >= geo.NodesAtLevel(level) ||
				len(node) != geo.NodeSize(level) {
				return nil, fmt.Errorf("%w: record %d patches node (%d,%d) with %d bytes", ErrBadSnapshot, i, level, index, len(node))
			}
			off := geo.NodeOffset(level, index)
			if off+len(node) > len(rm.tree) {
				return nil, fmt.Errorf("%w: record %d node patch outside serialized tree", ErrBadSnapshot, i)
			}
			copy(rm.tree[off:], node)
		case recLine:
			r := &snapReader{buf: rec.Payload}
			mm, err := machineOf(r)
			if err != nil {
				return nil, fmt.Errorf("record %d: %w", i, err)
			}
			rm, err := regionOf(mm, r)
			if err != nil {
				return nil, fmt.Errorf("record %d: %w", i, err)
			}
			line := int(r.u32())
			ct := r.bytes()
			mac := r.u64()
			if r.err != nil {
				return nil, fmt.Errorf("record %d: %w", i, r.err)
			}
			if line < 0 || line >= len(rm.lineMACs) || len(ct) != engine.LineSize ||
				(line+1)*engine.LineSize > len(rm.data) {
				return nil, fmt.Errorf("%w: record %d patches line %d with %d bytes", ErrBadSnapshot, i, line, len(ct))
			}
			copy(rm.data[line*engine.LineSize:], ct)
			rm.lineMACs[line] = mac
		default:
			return nil, fmt.Errorf("%w: record %d has unknown type %d", ErrBadSnapshot, i, rec.Type)
		}
	}
	if m == nil {
		return nil, fmt.Errorf("%w: log holds no base snapshot", ErrBadSnapshot)
	}
	return m, nil
}

// Open resumes a cluster from the last committed state of a WithStore
// directory: recover the commit record, replay base + deltas, restore
// with full re-verification, and keep checkpointing into the same store.
// A store that never committed returns ErrNoSnapshot. Structural options
// are rejected as in Load; WithStore is implied by path and rejected too.
func Open(path string, opts ...Option) (*Cluster, error) {
	s, err := applySettings(opts)
	if err != nil {
		return nil, err
	}
	if s.set&structuralSettings != 0 {
		return nil, errors.New("mmt: Open: the snapshot pins profile, tree levels, regions and net latency; drop the structural options")
	}
	if s.set&setStore != 0 {
		return nil, errors.New("mmt: Open: the path argument names the store; drop WithStore")
	}
	st, err := store.Open(store.Dir{Path: path})
	if err != nil {
		return nil, err
	}
	c, err := openFromStore(st, s)
	if err != nil {
		st.Close()
		return nil, err
	}
	c.set.storePath = path
	return c, nil
}

// openFromStore resumes from an already-open store (shared by Open and
// the in-memory crash tests).
func openFromStore(st *store.Store, s settings) (*Cluster, error) {
	if !st.HasCommit() {
		return nil, ErrNoSnapshot
	}
	cr, err := st.Committed()
	if err != nil {
		return nil, err
	}
	recs, err := st.CommittedRecords()
	if err != nil {
		return nil, err
	}
	// The geometry needed to interpret node patches comes from the base
	// record inside the log itself.
	var geoLevels int
	for _, rec := range recs {
		if rec.Type == recBase {
			base, err := decodeModel(rec.Payload)
			if err != nil {
				return nil, err
			}
			geoLevels = base.treeLevels
		}
	}
	if geoLevels == 0 {
		return nil, fmt.Errorf("%w: log holds no base snapshot", ErrBadSnapshot)
	}
	geo := tree.ForLevels(geoLevels)
	if err := geo.Validate(); err != nil {
		return nil, err
	}
	m, err := replayRecords(recs, geo)
	if err != nil {
		return nil, err
	}
	c, err := restoreCluster(m, s, cr.RootHash)
	if err != nil {
		return nil, err
	}
	c.ckpt = st
	c.needBase = true // the first commit after resume re-bases the log
	return c, nil
}

// ---------------------------------------------------------------------------
// Manifest: the human/CI-facing description of a snapshot.

// Manifest describes one saved snapshot or store commit. Its JSON form
// (WriteJSON) carries schema "mmt-manifest/v1" and validates with
// cmd/mmt-tracecheck.
type Manifest struct {
	Schema string `json:"schema"`
	// Epoch is the store commit epoch (0 for a direct Save).
	Epoch uint64 `json:"epoch"`
	// RootHash is the hex SHA-256 of the canonical snapshot blob.
	RootHash string `json:"root_hash"`
	// SnapshotBytes is the encoded size (blob + hash trailer for Save;
	// base blob size for store commits).
	SnapshotBytes int    `json:"snapshot_bytes"`
	TreeLevels    int    `json:"tree_levels"`
	Regions       int    `json:"regions"`
	Profile       string `json:"profile"`
	Machines      []ManifestMachine `json:"machines"`
	Links         []string          `json:"links"`
}

// ManifestMachine is one machine's row in a Manifest.
type ManifestMachine struct {
	Name        string  `json:"name"`
	NodeID      uint16  `json:"node_id"`
	Clock       float64 `json:"clock_seconds"`
	LiveRegions int     `json:"live_regions"`
}

func manifestFor(m *snapModel, epoch uint64, hash [32]byte, size int) *Manifest {
	mf := &Manifest{
		Schema:        "mmt-manifest/v1",
		Epoch:         epoch,
		RootHash:      hex.EncodeToString(hash[:]),
		SnapshotBytes: size,
		TreeLevels:    m.treeLevels,
		Regions:       m.regions,
		Profile:       m.profile.Name,
		Machines:      []ManifestMachine{},
		Links:         []string{},
	}
	for _, mm := range m.machines {
		mf.Machines = append(mf.Machines, ManifestMachine{
			Name:        mm.name,
			NodeID:      uint16(mm.mon.NodeID),
			Clock:       float64(mm.clockNow),
			LiveRegions: len(mm.regions),
		})
	}
	for _, l := range m.links {
		mf.Links = append(mf.Links, l.id)
	}
	return mf
}

// Manifest describes the cluster's current state as Save would snapshot
// it (Epoch reflects the attached store's committed epoch, 0 without a
// store). Requires quiescence.
func (c *Cluster) Manifest() (*Manifest, error) {
	m, err := c.buildModel()
	if err != nil {
		return nil, err
	}
	blob := encodeModel(m)
	hash := sha256.Sum256(blob)
	var epoch uint64
	if c.ckpt != nil {
		epoch = c.ckpt.Epoch()
	}
	return manifestFor(m, epoch, hash, len(blob)+sha256.Size), nil
}

// WriteJSON renders the manifest as indented mmt-manifest/v1 JSON.
func (m *Manifest) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(m)
}
