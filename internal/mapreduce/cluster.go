package mapreduce

import (
	"fmt"

	"mmt/internal/channel"
	"mmt/internal/core"
	"mmt/internal/crypt"
	"mmt/internal/engine"
	"mmt/internal/forest"
	"mmt/internal/mem"
	"mmt/internal/netsim"
	"mmt/internal/sim"
	"mmt/internal/trace"
	"mmt/internal/tree"
)

// Mode selects the shuffle protection scheme (the three configurations of
// Figure 13).
type Mode int

const (
	// Baseline shuffles over unprotected remote writes.
	Baseline Mode = iota
	// SecureChannel shuffles over software AES-GCM.
	SecureChannel
	// MMT shuffles over MMT closure delegation.
	MMT
)

func (m Mode) String() string {
	switch m {
	case Baseline:
		return "baseline"
	case SecureChannel:
		return "secure-channel"
	case MMT:
		return "mmt"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Config sizes one MapReduce job.
type Config struct {
	Mappers  int
	Reducers int
	Mode     Mode
	// Profile is the node cost model (cloned per machine so clocks stay
	// independent).
	Profile *sim.Profile
	// Geometry is the MMT tree shape (MMT mode only).
	Geometry tree.Geometry
	// PoolRegions is the buffer-region pool per delegation channel (MMT
	// mode only). It must cover the chunks of one partition in flight.
	PoolRegions int
	// MapCyclesPerByte and ReduceCyclesPerKV model the compute phases;
	// Figure 13a sweeps these to set the communication fraction.
	MapCyclesPerByte  float64
	ReduceCyclesPerKV float64
	// Combiner, when set, folds each mapper's partition locally before the
	// shuffle (the classic combiner optimization): values of equal keys
	// are pre-reduced, shrinking the intermediate transfer.
	Combiner Reducer
	// NetLatency is the interconnect one-way propagation delay.
	NetLatency sim.Time
	// Trace, when non-nil, collects per-machine phase cycles, counters and
	// spans for the whole job (one trace process per simulated host).
	Trace *trace.Sink
}

func (c Config) validate() error {
	switch {
	case c.Mappers < 1 || c.Reducers < 1:
		return fmt.Errorf("mapreduce: need at least one mapper and one reducer")
	case c.Profile == nil:
		return fmt.Errorf("mapreduce: nil profile")
	case c.Mode == MMT && c.Geometry.Validate() != nil:
		return fmt.Errorf("mapreduce: MMT mode needs a valid geometry")
	}
	return nil
}

// Result is the outcome of one job.
type Result struct {
	// Elapsed is the makespan: the latest simulated clock across machines.
	Elapsed sim.Time
	// Output is the final reduced key-value map.
	Output map[string]int64
	// ShuffleBytes counts intermediate bytes crossing machines.
	ShuffleBytes int
	// CommCycles aggregates channel costs across all machines.
	CommCycles sim.Cycles
	// MapTime and ReduceTime are per-machine finish times.
	MapTime    []sim.Time
	ReduceTime []sim.Time
}

// machine is one simulated host.
type machine struct {
	name  string
	clock *sim.Clock
	node  *core.Node   // MMT mode only
	probe *trace.Probe // nil = tracing disabled
	// nextRegion hands out disjoint region ranges to this machine's
	// delegation channels.
	nextRegion int
}

func newMachine(cfg Config, name string, id int, channels int) (*machine, error) {
	m := &machine{name: name, clock: sim.NewClock(cfg.Profile.FreqHz), probe: cfg.Trace.Probe(name)}
	if cfg.Mode != MMT {
		return m, nil
	}
	regions := channels * cfg.PoolRegions
	if regions < 1 {
		regions = 1
	}
	pm := mem.New(mem.Config{
		Size:          regions * cfg.Geometry.DataSize(),
		RegionSize:    cfg.Geometry.DataSize(),
		MetaPerRegion: cfg.Geometry.MetaSize(),
	})
	ctl, err := engine.New(pm, cfg.Geometry, m.clock, cfg.Profile)
	if err != nil {
		return nil, err
	}
	ctl.SetTrace(m.probe)
	m.node = core.NewNode(forest.NodeID(id), ctl)
	return m, nil
}

// takeRegions reserves n regions for one channel.
func (m *machine) takeRegions(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = m.nextRegion
		m.nextRegion++
	}
	return out
}

// link wires one direction of a mapper<->reducer pair: a dedicated
// endpoint pair (QP-like), returning the transports for each side.
func link(cfg Config, net *netsim.Network, a, b *machine, tag string) (channel.Transport, channel.Transport, error) {
	nameA := a.name + "/" + tag
	nameB := b.name + "/" + tag
	epA, err := net.Attach(nameA, a.clock)
	if err != nil {
		return nil, nil, err
	}
	epB, err := net.Attach(nameB, b.clock)
	if err != nil {
		return nil, nil, err
	}
	// Endpoint and channel activity both land under the owning machine's
	// trace process, so a host's wire bytes and channel cycles aggregate.
	epA.SetTrace(a.probe)
	epB.SetTrace(b.probe)
	key := crypt.KeyFromBytes([]byte("mr/" + tag))
	switch cfg.Mode {
	case Baseline:
		nsA := channel.NewNonSecure(epA, nameB, cfg.Profile)
		nsB := channel.NewNonSecure(epB, nameA, cfg.Profile)
		nsA.SetTrace(a.probe)
		nsB.SetTrace(b.probe)
		return nsA, nsB, nil
	case SecureChannel:
		scA, err := channel.NewSecure(epA, nameB, cfg.Profile, key)
		if err != nil {
			return nil, nil, err
		}
		scB, err := channel.NewSecure(epB, nameA, cfg.Profile, key)
		if err != nil {
			return nil, nil, err
		}
		scA.SetTrace(a.probe)
		scB.SetTrace(b.probe)
		return scA, scB, nil
	case MMT:
		connA := core.NewConn(key, 0)
		connB := core.NewConn(key, 0)
		da := channel.NewDelegation(epA, nameB, cfg.Profile, a.node, connA, a.takeRegions(cfg.PoolRegions))
		db := channel.NewDelegation(epB, nameA, cfg.Profile, b.node, connB, b.takeRegions(cfg.PoolRegions))
		da.SetTrace(a.probe)
		db.SetTrace(b.probe)
		return channel.AsTransport(da), channel.AsTransport(db), nil
	default:
		return nil, nil, fmt.Errorf("mapreduce: unknown mode %v", cfg.Mode)
	}
}

// statser lets Run aggregate channel costs regardless of transport type.
type statser interface{ Stats() channel.Stats }

// Run executes a full job: split, map, shuffle, reduce.
func Run(cfg Config, input []byte, mapf Mapper, redf Reducer) (*Result, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.PoolRegions == 0 {
		cfg.PoolRegions = 4
	}
	net := netsim.NewNetwork(cfg.NetLatency)

	mappers := make([]*machine, cfg.Mappers)
	reducers := make([]*machine, cfg.Reducers)
	for i := range mappers {
		m, err := newMachine(cfg, fmt.Sprintf("mapper-%d", i), 1+i, cfg.Reducers)
		if err != nil {
			return nil, err
		}
		mappers[i] = m
	}
	for j := range reducers {
		r, err := newMachine(cfg, fmt.Sprintf("reducer-%d", j), 1+cfg.Mappers+j, cfg.Mappers)
		if err != nil {
			return nil, err
		}
		reducers[j] = r
	}

	// All-to-all links: sendside[m][j] on the mapper, recvside[j][m] on the
	// reducer.
	sendSide := make([][]channel.Transport, cfg.Mappers)
	recvSide := make([][]channel.Transport, cfg.Reducers)
	for j := range recvSide {
		recvSide[j] = make([]channel.Transport, cfg.Mappers)
	}
	var allTransports []channel.Transport
	for i := range mappers {
		sendSide[i] = make([]channel.Transport, cfg.Reducers)
		for j := range reducers {
			a, b, err := link(cfg, net, mappers[i], reducers[j], fmt.Sprintf("m%dr%d", i, j))
			if err != nil {
				return nil, err
			}
			sendSide[i][j] = a
			recvSide[j][i] = b
			allTransports = append(allTransports, a, b)
		}
	}

	res := &Result{Output: make(map[string]int64)}

	// Map phase: compute, partition, shuffle out.
	chunks := splitInput(input, cfg.Mappers)
	for i, m := range mappers {
		mapSpan := m.probe.Begin(trace.PhaseApp, m.clock.Now())
		mapCost := sim.Cycles(float64(len(chunks[i])) * cfg.MapCyclesPerByte)
		m.probe.AddCycles(trace.PhaseApp, mapCost)
		m.clock.AdvanceCycles(mapCost)
		mapSpan.End(m.clock.Now())
		parts := make([][]KV, cfg.Reducers)
		mapf(chunks[i], func(k string, v int64) {
			p := partitionOf(k, cfg.Reducers)
			parts[p] = append(parts[p], KV{Key: k, Value: v})
		})
		for j := range reducers {
			part := parts[j]
			if cfg.Combiner != nil {
				part = combine(part, cfg.Combiner)
				combineCost := sim.Cycles(float64(len(parts[j])) * cfg.ReduceCyclesPerKV / 2)
				m.probe.AddCycles(trace.PhaseApp, combineCost)
				m.clock.AdvanceCycles(combineCost)
			}
			payload := encodeKVs(part)
			res.ShuffleBytes += len(payload)
			if err := sendSide[i][j].Send(payload); err != nil {
				return nil, fmt.Errorf("mapper %d -> reducer %d: %w", i, j, err)
			}
		}
		res.MapTime = append(res.MapTime, m.clock.Now())
	}

	// Reduce phase: collect, merge, fold.
	for j, r := range reducers {
		byKey := make(map[string][]int64)
		pairs := 0
		for i := range mappers {
			payload, err := recvSide[j][i].Recv()
			if err != nil {
				return nil, fmt.Errorf("reducer %d <- mapper %d: %w", j, i, err)
			}
			kvs, err := decodeKVs(payload)
			if err != nil {
				return nil, err
			}
			for _, kv := range kvs {
				byKey[kv.Key] = append(byKey[kv.Key], kv.Value)
				pairs++
			}
		}
		redSpan := r.probe.Begin(trace.PhaseApp, r.clock.Now())
		redCost := sim.Cycles(float64(pairs) * cfg.ReduceCyclesPerKV)
		r.probe.AddCycles(trace.PhaseApp, redCost)
		r.clock.AdvanceCycles(redCost)
		redSpan.End(r.clock.Now())
		for _, k := range sortedKeys(byKey) {
			res.Output[k] = redf(k, byKey[k])
		}
		res.ReduceTime = append(res.ReduceTime, r.clock.Now())
	}

	// Makespan and aggregate comm costs.
	for _, m := range append(append([]*machine(nil), mappers...), reducers...) {
		if m.clock.Now() > res.Elapsed {
			res.Elapsed = m.clock.Now()
		}
	}
	for _, tr := range allTransports {
		if s, ok := tr.(statser); ok {
			res.CommCycles += s.Stats().Total()
		}
	}
	return res, nil
}
