package noalloc

// Test files are exempt: hot-path promises bind non-test code only, so
// this annotated allocating function must produce no findings.

//mmt:hotpath
func hotTestOnly(n int) []byte {
	return make([]byte, n)
}
