package mmt

import (
	"mmt/internal/sim"
	"mmt/internal/trace"
)

// Option configures a Cluster at construction time. Options are applied
// in order by New; later options override earlier ones.
type Option func(*Options)

// WithProfile selects the timing model (sim.Gem5Profile,
// sim.IntelProfile, or a custom calibration). Default: Gem5.
func WithProfile(p *sim.Profile) Option {
	return func(o *Options) { o.Profile = p }
}

// WithTreeLevels sets the MMT depth (2, 3 or 4 — 512 KB, 2 MB or 32 MB
// granules). Default: 3.
func WithTreeLevels(levels int) Option {
	return func(o *Options) { o.TreeLevels = levels }
}

// WithRegions sizes each machine's secure-memory pool in regions of one
// MMT granule each. Default: 8.
func WithRegions(n int) Option {
	return func(o *Options) { o.RegionsPerMachine = n }
}

// WithNetLatency sets the one-way interconnect propagation delay
// (Figure 10b sweeps this). Default: 0.
func WithNetLatency(d sim.Time) Option {
	return func(o *Options) { o.NetLatency = d }
}

// WithTracing attaches a trace sink: every machine added to the cluster
// records its per-phase cycle totals, counters and spans (all stamped
// from the simulated clocks) into sink. Pass the sink to NewTraceSink's
// result; read it back via Cluster.Metrics, TraceSink.Summary, or
// TraceSink.WriteChromeTrace. A nil sink leaves tracing disabled (the
// default): the instrumented paths then cost one branch and zero
// allocations.
func WithTracing(sink *TraceSink) Option {
	return func(o *Options) { o.Trace = sink }
}

// WithDebugServer starts a read-only HTTP introspection endpoint on addr
// (e.g. "localhost:6070", or "127.0.0.1:0" to pick a free port — read it
// back with Cluster.DebugAddr). The server exposes:
//
//	/debug/mmt/hist     per-operation latency histograms (mmt-hist/v1)
//	/debug/mmt/events   the security-event ledger (mmt-events/v1 JSONL)
//	/debug/mmt/summary  the compact text summary
//	/debug/vars         expvar-style metrics JSON
//	/debug/pprof/       the standard Go profiling endpoints
//
// Every response is rendered from a copied snapshot: serving never blocks
// a running simulation, never mutates it, and never charges simulated
// cycles — the simulated timeline is byte-identical with and without the
// server attached. Shut it down with Cluster.Close.
func WithDebugServer(addr string) Option {
	return func(o *Options) { o.DebugAddr = addr }
}

// TraceSink collects cycle-stamped events and monotonic counters from
// every component of a traced cluster. See package mmt/internal/trace
// for the schema; DESIGN.md documents the phase and counter names.
type TraceSink = trace.Sink

// Metrics is a copied snapshot of a trace sink's accumulators: one
// entry per machine, sorted by name. Returned by Cluster.Metrics.
type Metrics = trace.Metrics

// NewTraceSink returns an empty trace sink for WithTracing.
func NewTraceSink() *TraceSink { return trace.NewSink() }

// TracePhase labels one cost category in Metrics (see the Phase* re-
// exports); TraceCounter labels one monotonic count (see Ctr*).
type (
	TracePhase   = trace.Phase
	TraceCounter = trace.Counter
)

// TraceOp labels one operation kind with a cycle-latency histogram in
// Metrics (see the Op* re-exports); Histogram is the fixed-bucket
// power-of-two latency distribution itself.
type (
	TraceOp   = trace.Op
	Histogram = trace.Histogram
)

// Operation re-exports for Metrics.Op.
const (
	OpLocalRead     = trace.OpLocalRead
	OpLocalWrite    = trace.OpLocalWrite
	OpRemoteRead    = trace.OpRemoteRead
	OpRemoteWrite   = trace.OpRemoteWrite
	OpMigrationSend = trace.OpMigrationSend
	OpMigrationRecv = trace.OpMigrationRecv
	OpVerify        = trace.OpVerify
	OpReencrypt     = trace.OpReencrypt
)

// SecurityEvent is one cycle-stamped entry of the bounded security-event
// ledger (returned by Cluster.Events); SecurityEventKind classifies it.
type (
	SecurityEvent     = trace.SecEvent
	SecurityEventKind = trace.EventKind
)

// Security-event kind re-exports for Cluster.Events.
const (
	EvIntegrityFail   = trace.EvIntegrityFail
	EvAuthFail        = trace.EvAuthFail
	EvReplayReject    = trace.EvReplayReject
	EvReorderReject   = trace.EvReorderReject
	EvStaleCounter    = trace.EvStaleCounter
	EvMigrationSend   = trace.EvMigrationSend
	EvMigrationAccept = trace.EvMigrationAccept
	EvMigrationReject = trace.EvMigrationReject
	EvDelegationAck   = trace.EvDelegationAck
	EvCapDestroy      = trace.EvCapDestroy
)

// Phase re-exports for Metrics.PhaseCycles.
const (
	PhaseData       = trace.PhaseData
	PhaseRootMount  = trace.PhaseRootMount
	PhaseTreeWalk   = trace.PhaseTreeWalk
	PhaseMAC        = trace.PhaseMAC
	PhaseTreeUpdate = trace.PhaseTreeUpdate
	PhaseReencrypt  = trace.PhaseReencrypt
	PhaseMemcpy     = trace.PhaseMemcpy
	PhaseEncrypt    = trace.PhaseEncrypt
	PhaseDecrypt    = trace.PhaseDecrypt
	PhaseDMA        = trace.PhaseDMA
	PhaseDelegation = trace.PhaseDelegation
	PhaseConnect    = trace.PhaseConnect
	PhaseSend       = trace.PhaseSend
	PhaseRecv       = trace.PhaseRecv
	PhaseApp        = trace.PhaseApp
)

// Counter re-exports for Metrics.Counter. The CtrWire* counters are the
// adversary's view: messages and bytes per traffic kind, counted at the
// sending endpoint — exactly what an interposer on the interconnect sees.
const (
	CtrTreeNodeWalks       = trace.CtrTreeNodeWalks
	CtrMACVerifies         = trace.CtrMACVerifies
	CtrMACUpdates          = trace.CtrMACUpdates
	CtrNodeCacheHits       = trace.CtrNodeCacheHits
	CtrNodeCacheMisses     = trace.CtrNodeCacheMisses
	CtrRootMounts          = trace.CtrRootMounts
	CtrReencryptLines      = trace.CtrReencryptLines
	CtrTreeNodeVerifies    = trace.CtrTreeNodeVerifies
	CtrTreeNodeVerifyFails = trace.CtrTreeNodeVerifyFails
	CtrTreeNodeRehashes    = trace.CtrTreeNodeRehashes
	CtrClosuresSent        = trace.CtrClosuresSent
	CtrClosuresAccepted    = trace.CtrClosuresAccepted
	CtrClosuresRejected    = trace.CtrClosuresRejected
	CtrClosureEncodeBytes  = trace.CtrClosureEncodeBytes
	CtrClosureDecodeBytes  = trace.CtrClosureDecodeBytes
	CtrWireMsgsData        = trace.CtrWireMsgsData
	CtrWireMsgsClosure     = trace.CtrWireMsgsClosure
	CtrWireMsgsControl     = trace.CtrWireMsgsControl
	CtrWireBytesData       = trace.CtrWireBytesData
	CtrWireBytesClosure    = trace.CtrWireBytesClosure
	CtrWireBytesControl    = trace.CtrWireBytesControl
)

// New builds the trust roots and the interconnect. With no options it
// gives the paper's default system: the Gem5 cost profile, 3-level
// (2 MB) trees, 8 secure regions per machine, a zero-latency
// interconnect, and tracing disabled.
func New(opts ...Option) (*Cluster, error) {
	var o Options
	for _, opt := range opts {
		opt(&o)
	}
	return newCluster(o)
}
