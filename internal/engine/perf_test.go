package engine

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"mmt/internal/trace"
)

// TestReadWriteZeroAlloc pins the full protected line path — batched tree
// verify, counter update, line MAC, OTP crypto, DRAM copy — at zero heap
// allocations per access once warm, with tracing both disabled and
// enabled. The modelled hardware pipeline has no allocator; neither may
// the steady-state software path.
func TestReadWriteZeroAlloc(t *testing.T) {
	for _, traced := range []bool{false, true} {
		t.Run(fmt.Sprintf("traced=%v", traced), func(t *testing.T) {
			c := testSetup(t)
			fill(c, 0, 1)
			if err := c.Enable(0, testKey, 0x11, 0); err != nil {
				t.Fatal(err)
			}
			if traced {
				c.SetTrace(trace.NewSink().Probe("alloc"))
			}
			buf := make([]byte, LineSize)
			// Warm scratch buffers, node cache and root table.
			for i := 0; i < c.geo.Lines(); i++ {
				if err := c.ReadInto(0, i, buf); err != nil {
					t.Fatal(err)
				}
				if err := c.Write(0, i, buf); err != nil {
					t.Fatal(err)
				}
			}
			line := 0
			allocs := testing.AllocsPerRun(200, func() {
				if err := c.ReadInto(0, line, buf); err != nil {
					t.Fatal(err)
				}
				if err := c.Write(0, line, buf); err != nil {
					t.Fatal(err)
				}
				line = (line + 1) % c.geo.Lines()
			})
			if allocs != 0 {
				t.Fatalf("Read+Write allocates %.1f objects/op, want 0", allocs)
			}
		})
	}
}

// TestReadIntoMatchesRead: the zero-alloc read variant returns the same
// plaintext and errors as Read.
func TestReadIntoMatchesRead(t *testing.T) {
	c := testSetup(t)
	fill(c, 0, 7)
	if err := c.Enable(0, testKey, 0x21, 0); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, LineSize)
	for line := 0; line < c.geo.Lines(); line++ {
		want, err := c.Read(0, line)
		if err != nil {
			t.Fatal(err)
		}
		if err := c.ReadInto(0, line, buf); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf, want) {
			t.Fatalf("line %d: ReadInto differs from Read", line)
		}
	}
	if err := c.ReadInto(1, 0, buf); !errors.Is(err, ErrDisabled) {
		t.Fatalf("disabled region: err = %v, want ErrDisabled", err)
	}
}

// TestVerifyRegionsParallel: the batch scrub passes on healthy regions at
// any worker count, detects tampering in tree nodes and data lines, and
// reports the lowest-indexed failing region regardless of parallelism.
func TestVerifyRegionsParallel(t *testing.T) {
	setup := func() *Controller {
		c := testSetup(t)
		for r := 0; r < 3; r++ {
			fill(c, r, byte(r+1))
			if err := c.Enable(r, testKey, uint64(0x100*(r+1)), 0); err != nil {
				t.Fatal(err)
			}
		}
		return c
	}
	for _, workers := range []int{1, 2, 8} {
		c := setup()
		if err := c.VerifyRegions([]int{0, 1, 2}, workers); err != nil {
			t.Fatalf("workers=%d: healthy regions failed scrub: %v", workers, err)
		}
	}

	// Tamper with region 1's tree and region 2's data; region 1 is the
	// lowest failing input index at every worker count.
	for _, workers := range []int{1, 2, 8} {
		c := setup()
		n := c.Tree(1).Node(0, 0)
		n.SetGlobal(n.Global() + 1)
		c.Memory().RegionData(2)[5] ^= 1
		err := c.VerifyRegions([]int{0, 1, 2}, workers)
		if !errors.Is(err, ErrIntegrity) {
			t.Fatalf("workers=%d: err = %v, want integrity failure", workers, err)
		}
		serial := setup()
		sn := serial.Tree(1).Node(0, 0)
		sn.SetGlobal(sn.Global() + 1)
		serial.Memory().RegionData(2)[5] ^= 1
		serialErr := serial.VerifyRegions([]int{0, 1, 2}, 1)
		if err.Error() != serialErr.Error() {
			t.Fatalf("workers=%d: error %q differs from serial %q", workers, err, serialErr)
		}
	}

	// Trace counts are applied deterministically on success.
	counts := func(workers int) uint64 {
		c := setup()
		sink := trace.NewSink()
		c.SetTrace(sink.Probe("scrub"))
		if err := c.VerifyRegions([]int{0, 1, 2}, workers); err != nil {
			t.Fatal(err)
		}
		return sink.Snapshot().Counter(trace.CtrTreeNodeVerifies)
	}
	if s, p := counts(1), counts(4); s != p || s == 0 {
		t.Fatalf("trace counts differ: serial %d, parallel %d", s, p)
	}

	c := setup()
	if err := c.VerifyRegions([]int{0, 0}, 2); err == nil {
		t.Fatal("duplicate region accepted")
	}
	if err := c.VerifyRegions([]int{3}, 2); !errors.Is(err, ErrDisabled) {
		t.Fatalf("disabled region: err = %v, want ErrDisabled", err)
	}
}

// BenchmarkReadLine / BenchmarkWriteLine: steady-state protected access
// cost; both must report 0 allocs/op.
func BenchmarkReadLine(b *testing.B) {
	c := testSetup(b)
	fill(c, 0, 1)
	if err := c.Enable(0, testKey, 0x11, 0); err != nil {
		b.Fatal(err)
	}
	buf := make([]byte, LineSize)
	if err := c.ReadInto(0, 0, buf); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(LineSize)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.ReadInto(0, i%c.geo.Lines(), buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWriteLine(b *testing.B) {
	c := testSetup(b)
	fill(c, 0, 1)
	if err := c.Enable(0, testKey, 0x11, 0); err != nil {
		b.Fatal(err)
	}
	buf := make([]byte, LineSize)
	if err := c.Write(0, 0, buf); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(LineSize)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.Write(0, i%c.geo.Lines(), buf); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCacheInvalidateRegion measures invalidating one region's nodes
// while many other regions keep the cache full — the migration-path cost
// the per-region index exists for. Before the index this walked every
// resident node; now it touches only the victim region's.
func BenchmarkCacheInvalidateRegion(b *testing.B) {
	const regions, nodesPer = 64, 32
	c := newNodeCache(regions * nodesPer * 16)
	for r := 0; r < regions; r++ {
		for i := 0; i < nodesPer; i++ {
			c.touch(nodeKey{region: r, index: i}, 16)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := i % regions
		c.invalidateRegion(r)
		for n := 0; n < nodesPer; n++ { // repopulate for the next round
			c.touch(nodeKey{region: r, index: n}, 16)
		}
	}
}

// BenchmarkCacheInvalidateRegionContended is the multi-region steady state:
// between each invalidation, every other region keeps touching its own
// nodes, so the LRU list is churning and full when the migration-path
// invalidation lands. This is the closest software rendition of many
// enclaves sharing one MMT cache while one of them migrates away.
func BenchmarkCacheInvalidateRegionContended(b *testing.B) {
	const regions, nodesPer = 64, 32
	c := newNodeCache(regions * nodesPer * 16)
	for r := 0; r < regions; r++ {
		for i := 0; i < nodesPer; i++ {
			c.touch(nodeKey{region: r, index: i}, 16)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		victim := i % regions
		// Background traffic: every other region touches a node, keeping
		// the cache full and the recency list interleaved across regions.
		for r := 0; r < regions; r++ {
			if r != victim {
				c.touch(nodeKey{region: r, index: i % nodesPer}, 16)
			}
		}
		c.invalidateRegion(victim)
		for n := 0; n < nodesPer; n++ { // repopulate for the next round
			c.touch(nodeKey{region: victim, index: n}, 16)
		}
	}
}
