// Package engine implements the MMT controller of §V-A2: the memory
// controller extension that divides physical memory into normal memory,
// secure memory and the MMT meta-zone, verifies and updates the
// counter-based integrity tree on every secure access, caches tree nodes
// on chip, and accounts simulated cycles against a sim.Profile.
//
// The controller is purely single-node; the migratable parts of the scheme
// (root states, closures, delegation) live in package core and drive the
// controller through Export/Install and SetMode.
package engine

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math/bits"

	"mmt/internal/crypt"
	"mmt/internal/mem"
	"mmt/internal/sim"
	"mmt/internal/trace"
	"mmt/internal/tree"
)

// Mode is the access mode the controller enforces for one secure region.
// It is the hardware-visible projection of the MMT state machine: valid ->
// ModeReadWrite, sending/read-only -> ModeReadOnly, invalid/waiting ->
// ModeDisabled.
type Mode uint8

const (
	// ModeDisabled: no MMT active; the region is normal memory to the
	// controller and secure accesses fail.
	ModeDisabled Mode = iota
	// ModeReadWrite: MMT valid; reads verify, writes update the tree.
	ModeReadWrite
	// ModeReadOnly: MMT in sending or received-read-only state; writes are
	// rejected ("the content in this memory range cannot be modified").
	ModeReadOnly
)

func (m Mode) String() string {
	switch m {
	case ModeDisabled:
		return "disabled"
	case ModeReadWrite:
		return "read-write"
	case ModeReadOnly:
		return "read-only"
	default:
		return fmt.Sprintf("Mode(%d)", uint8(m))
	}
}

// Controller errors.
var (
	ErrDisabled  = errors.New("engine: region has no valid MMT")
	ErrReadOnly  = errors.New("engine: region is read-only (MMT sending or received read-only)")
	ErrIntegrity = tree.ErrIntegrity
	ErrBusy      = errors.New("engine: region already has an MMT")
)

// Stats counts controller activity; the Figure 11 experiment reads these.
type Stats struct {
	Reads, Writes    uint64
	NodeHits         uint64
	NodeMisses       uint64
	RootMounts       uint64
	DataAccesses     uint64
	ReencryptedLines uint64
	Cycles           sim.Cycles
}

// regionState is the controller-side state of one protection region.
type regionState struct {
	mode     Mode
	eng      *crypt.Engine
	tr       *tree.Tree
	guaddr   uint64
	lineMACs []uint64
	// dirtyLines is a preallocated bitset of data lines mutated since the
	// last checkpoint commit; together with the tree's dirty-node bits it
	// drives the mmt-store/v1 delta stream. Marked on the hot write path
	// (pure bit arithmetic, no allocation).
	dirtyLines []uint64
	// Per-line AES plane caches. The two-block tweak PRF's first block (the
	// "base") depends only on (guaddr, line, domain), so Enable/Install
	// precompute it once per line per domain; the hot read/write path then
	// derives each OTP pad and MAC mask from the cached base, saving one
	// AES block per pad and halving the MAC-mask AES work. lineMask
	// additionally memoises the finished DomainLineMAC mask keyed by the
	// line's counter (lineMaskCtr + lineMaskOK bitset), so re-reads of an
	// unwritten line skip the mask AES entirely. All caches are pure
	// functions of (engine, guaddr, line[, counter]) — replaying them is
	// bit-identical to recomputation, so tamper detection is unaffected.
	padBase     []byte   // crypt.MaskBaseSize bytes per line, DomainPad
	macBase     []byte   // crypt.MaskBaseSize bytes per line, DomainLineMAC
	lineBaseOK  []uint64 // bitset: both base entries for the line computed
	lineMask    []uint64
	lineMaskCtr []uint64
	lineMaskOK  []uint64 // bitset: lineMask/lineMaskCtr entry valid
	// The full 64-byte OTP pad, memoised per line keyed by the line's
	// counter like lineMask: a read never bumps the counter, so re-reads
	// of a line reduce to MAC-check + XOR with zero AES work, and a write
	// (which computes the new pad anyway) refreshes the entry for the
	// read-after-write that typically follows.
	linePad    []byte // mem.LineSize bytes per line
	linePadCtr []uint64
	linePadOK  []uint64 // bitset: linePad/linePadCtr entry valid
}

// markLine flags a line as dirty for the checkpoint stream.
func (st *regionState) markLine(line int) {
	st.dirtyLines[line>>6] |= uint64(1) << (uint(line) & 63)
}

// initPlanes sizes the per-line AES base planes and the (empty) mask
// cache for a freshly enabled or installed region. The bases themselves
// fill lazily (lineBases) on first touch of each line, so a migration
// install — which verifies every line but may never read most of them
// again — does not pay two AES blocks per line up front.
func (st *regionState) initPlanes(lines int) {
	st.padBase = make([]byte, lines*crypt.MaskBaseSize)
	st.macBase = make([]byte, lines*crypt.MaskBaseSize)
	st.lineBaseOK = make([]uint64, (lines+63)/64)
	st.lineMask = make([]uint64, lines)
	st.lineMaskCtr = make([]uint64, lines)
	st.lineMaskOK = make([]uint64, (lines+63)/64)
	st.linePad = make([]byte, lines*mem.LineSize)
	st.linePadCtr = make([]uint64, lines)
	st.linePadOK = make([]uint64, (lines+63)/64)
}

// lineBases returns the cached DomainPad and DomainLineMAC tweak bases
// for line, computing both (two AES blocks) on the line's first touch.
//
//mmt:hotpath
func (st *regionState) lineBases(line int, scr *crypt.Scratch) (pad, mac []byte) {
	off := line * crypt.MaskBaseSize
	w, bit := line>>6, uint64(1)<<(uint(line)&63)
	if st.lineBaseOK[w]&bit == 0 {
		st.eng.MaskBaseInto(st.guaddr, uint32(line), crypt.DomainPad, st.padBase[off:], scr)
		st.eng.MaskBaseInto(st.guaddr, uint32(line), crypt.DomainLineMAC, st.macBase[off:], scr)
		st.lineBaseOK[w] |= bit
	}
	return st.padBase[off:], st.macBase[off:]
}

// lineMaskFor returns the DomainLineMAC mask for line at counter ctr,
// from the cache when the counter still matches, recomputing (one AES
// block, from the cached base) and re-caching otherwise.
//
//mmt:hotpath
func (st *regionState) lineMaskFor(line int, macBase []byte, ctr uint64, scr *crypt.Scratch) uint64 {
	w, bit := line>>6, uint64(1)<<(uint(line)&63)
	if st.lineMaskOK[w]&bit != 0 && st.lineMaskCtr[line] == ctr {
		return st.lineMask[line]
	}
	m := st.eng.MaskFromBase(macBase, ctr, scr)
	st.lineMask[line] = m
	st.lineMaskCtr[line] = ctr
	st.lineMaskOK[w] |= bit
	return m
}

// linePadFor returns the 64-byte OTP keystream for line at counter ctr,
// from the cache when the counter still matches, recomputing (four AES
// blocks, from the cached base) and re-caching otherwise. The pad is a
// pure function of (engine, guaddr, line, ctr) — the same purity
// argument as lineMaskFor — so serving it from the plane is
// bit-identical to recomputation and tamper detection is unaffected.
//
//mmt:hotpath
func (st *regionState) linePadFor(line int, padBase []byte, ctr uint64, scr *crypt.Scratch) []byte {
	off := line * mem.LineSize
	w, bit := line>>6, uint64(1)<<(uint(line)&63)
	if st.linePadOK[w]&bit != 0 && st.linePadCtr[line] == ctr {
		return st.linePad[off : off+mem.LineSize]
	}
	pad := st.eng.PadLineFromBase(padBase, ctr, scr)
	copy(st.linePad[off:], pad[:])
	st.linePadCtr[line] = ctr
	st.linePadOK[w] |= bit
	return st.linePad[off : off+mem.LineSize]
}

// Controller is one node's MMT-extended memory controller.
type Controller struct {
	mem     *mem.Memory
	geo     tree.Geometry
	clock   *sim.Clock
	prof    *sim.Profile
	cache   *nodeCache
	roots   *rootTable
	regions []regionState
	stats   Stats
	quiet   bool
	probe   *trace.Probe // nil = tracing disabled
	// levelDiv[l] is the number of lines covered by one level-l node, so
	// nodeIndexAt is one division instead of an arity-product loop per
	// level per access.
	levelDiv []int
	// causal is the causal context the channel/monitor layer installs
	// around a closure accept, so the functional Install lands as a child
	// span of the accept (zero when no migration is in progress).
	causal trace.Context
	scr     crypt.Scratch
	lineBuf [mem.LineSize]byte // ciphertext staging for the write path
}

// New builds a controller over m with the given tree geometry. The
// memory's region size must equal the geometry's protected data size, and
// its meta-zone must fit the serialized tree plus line MACs.
func New(m *mem.Memory, geo tree.Geometry, clock *sim.Clock, prof *sim.Profile) (*Controller, error) {
	if err := geo.Validate(); err != nil {
		return nil, err
	}
	if m.Config().RegionSize != geo.DataSize() {
		return nil, fmt.Errorf("engine: region size %d != tree data size %d",
			m.Config().RegionSize, geo.DataSize())
	}
	if m.Config().MetaPerRegion < geo.MetaSize() {
		return nil, fmt.Errorf("engine: meta-zone %d bytes/region < required %d",
			m.Config().MetaPerRegion, geo.MetaSize())
	}
	if clock == nil {
		clock = sim.NewClock(prof.FreqHz)
	}
	levelDiv := make([]int, geo.Levels())
	prod := 1
	for l := geo.Levels() - 1; l >= 0; l-- {
		prod *= geo.Arities[l]
		levelDiv[l] = prod
	}
	return &Controller{
		mem:      m,
		geo:      geo,
		clock:    clock,
		prof:     prof,
		cache:    newNodeCache(prof.MMTCacheBytes),
		roots:    newRootTable(prof.RootTableSoC / rootEntryBytes),
		regions:  make([]regionState, m.Regions()),
		levelDiv: levelDiv,
	}, nil
}

// Geometry reports the controller's tree geometry.
func (c *Controller) Geometry() tree.Geometry { return c.geo }

// Memory reports the underlying physical memory.
func (c *Controller) Memory() *mem.Memory { return c.mem }

// Clock reports the node clock the controller advances.
func (c *Controller) Clock() *sim.Clock { return c.clock }

// Profile reports the cost model in use.
func (c *Controller) Profile() *sim.Profile { return c.prof }

// Stats returns a snapshot of the activity counters.
func (c *Controller) Stats() Stats { return c.stats }

// SetQuiet suspends cycle and stats accounting while q is true. The
// channel layer uses it when extracting received payloads: every mode's
// application reads its received data, and none of the channels charges
// that uniform cost, so charging only the MMT read path would bias the
// comparison.
func (c *Controller) SetQuiet(q bool) { c.quiet = q }

// ResetStats zeroes the activity counters (cycles included).
func (c *Controller) ResetStats() { c.stats = Stats{} }

// SetTrace attaches a trace probe to the controller and to every live
// tree. A nil probe disables tracing; the instrumented paths then cost
// one branch and zero allocations per call site.
func (c *Controller) SetTrace(p *trace.Probe) {
	c.probe = p
	for i := range c.regions {
		if c.regions[i].tr != nil {
			c.regions[i].tr.SetTrace(p)
		}
	}
}

// Trace reports the controller's probe (nil when tracing is disabled).
// Components sharing the machine (monitor, channels) reuse it so all of
// a node's activity lands under one trace process.
func (c *Controller) Trace() *trace.Probe { return c.probe }

// SetCausal installs the causal context under which the next Install
// records its span; the zero Context disables it. The channel/monitor
// layer brackets each closure accept with SetCausal/clear.
func (c *Controller) SetCausal(ctx trace.Context) { c.causal = ctx }

// Causal reports the installed causal context (tests).
func (c *Controller) Causal() trace.Context { return c.causal }

// Mode reports region r's access mode.
func (c *Controller) Mode(r int) Mode { return c.region(r).mode }

// GUAddr reports the global-unique address of region r's MMT.
func (c *Controller) GUAddr(r int) uint64 { return c.region(r).guaddr }

// RootCounter reports region r's trusted root counter.
func (c *Controller) RootCounter(r int) uint64 { return c.region(r).tr.RootCounter() }

// Tree exposes region r's integrity tree for inspection (tests, closures).
func (c *Controller) Tree(r int) *tree.Tree { return c.region(r).tr }

func (c *Controller) region(r int) *regionState {
	if r < 0 || r >= len(c.regions) {
		//mmt:allow nopanic: internal bounds guard, equivalent to built-in slice indexing
		panic(fmt.Sprintf("engine: region %d out of range [0,%d)", r, len(c.regions)))
	}
	return &c.regions[r]
}

// lineAddr converts (region, line) to a physical line address.
func (c *Controller) lineAddr(r, line int) mem.Addr {
	return c.mem.RegionBase(r) + mem.Addr(line*mem.LineSize)
}

// Enable turns region r into secure memory under key with the given
// global-unique address and initial root counter. Existing region contents
// are treated as plaintext and encrypted in place, line by line.
func (c *Controller) Enable(r int, key crypt.Key, guaddr, rootCounter uint64) error {
	st := c.region(r)
	if st.mode != ModeDisabled {
		return ErrBusy
	}
	eng := crypt.NewEngine(key)
	tr, err := tree.New(c.geo, eng, guaddr)
	if err != nil {
		return err
	}
	tr.SetTrace(c.probe)
	tr.SetRootCounter(rootCounter)
	tr.RehashAll(eng, guaddr)
	macs := make([]uint64, c.geo.Lines())
	data := c.mem.RegionData(r)
	for line := 0; line < c.geo.Lines(); line++ {
		buf := data[line*mem.LineSize : (line+1)*mem.LineSize]
		tw := crypt.Tweak{GUAddr: guaddr, Line: uint32(line), Counter: tr.LeafCounter(line)}
		eng.XORPad(tw, buf)
		macs[line] = eng.LineMACBuf(tw, buf, &c.scr)
	}
	*st = regionState{mode: ModeReadWrite, eng: eng, tr: tr, guaddr: guaddr, lineMACs: macs,
		dirtyLines: make([]uint64, (c.geo.Lines()+63)/64)}
	st.initPlanes(c.geo.Lines())
	for line := range c.geo.Lines() {
		st.markLine(line) // freshly encrypted contents have never been checkpointed
	}
	c.mem.SetRegionKind(r, mem.KindSecure)
	c.cache.invalidateRegion(r)
	return nil
}

// Invalidate drops region r's MMT without decrypting: the memory reverts
// to normal but holds ciphertext garbage. This is the sender-side
// transition sending -> invalid after an ownership-transfer delegation.
func (c *Controller) Invalidate(r int) {
	st := c.region(r)
	*st = regionState{}
	c.mem.SetRegionKind(r, mem.KindNormal)
	c.cache.invalidateRegion(r)
	c.roots.evict(r)
}

// Release decrypts region r in place (restoring plaintext) and then
// invalidates the MMT — the graceful local teardown.
func (c *Controller) Release(r int) error {
	st := c.region(r)
	if st.mode == ModeDisabled {
		return ErrDisabled
	}
	data := c.mem.RegionData(r)
	for line := 0; line < c.geo.Lines(); line++ {
		tw := crypt.Tweak{GUAddr: st.guaddr, Line: uint32(line), Counter: st.tr.LeafCounter(line)}
		st.eng.XORPad(tw, data[line*mem.LineSize:(line+1)*mem.LineSize])
	}
	c.Invalidate(r)
	return nil
}

// SetMode changes region r's enforcement mode (driven by the MMT state
// machine in package core).
func (c *Controller) SetMode(r int, m Mode) error {
	st := c.region(r)
	if st.mode == ModeDisabled && m != ModeDisabled {
		return ErrDisabled
	}
	st.mode = m
	return nil
}

// chargePath advances the clock for one tree-path traversal. The cost
// model follows §II-A and §VI-B:
//
//   - The data line always costs one DRAM access plus the OTP XOR (the
//     only crypto on the critical path; OTP generation overlaps the
//     fetch).
//   - Every tree level issues a meta request that occupies read/write
//     queue slots whether it hits or misses — the paper's explanation for
//     deeper trees being slower ("extra tree node accesses ... occupy the
//     read/write queue and tree node cache").
//   - A node-cache hit is an already-verified on-chip copy: no MAC work.
//   - The first (deepest) miss is issued in parallel with the data fetch,
//     exposing only part of its latency; each further miss on the same
//     path extends the serial verification chain and exposes most of a
//     DRAM access plus the MAC check.
//
// The cost is accumulated per phase (data / root-mount / tree-walk /
// MAC) so the trace layer can report the breakdown; every constant is a
// dyadic rational, so the regrouped float sum is bit-identical to the
// single-accumulator original.
//
// It returns the total charged cycles and the verification share (root
// mount + MAC checks) so callers can mirror the same numbers into the
// per-operation latency histograms. Both are 0 in quiet mode.
func (c *Controller) chargePath(r, line int, extraNodes int) (total, verify sim.Cycles) {
	if c.quiet {
		return 0, 0
	}
	dataCost := c.prof.DRAMAccess + 2 // data line + OTP XOR
	c.stats.DataAccesses++
	var rootCost, walkCost, macCost sim.Cycles
	//mmt:allow noalloc: root-table LRU models the SoC root-mount slots; bounded by table capacity
	if !c.roots.touch(r) {
		// Penglai-style root mount: the region's root counter is loaded
		// into the SoC root table, verified against the sealed copy.
		c.stats.RootMounts++
		c.probe.Count(trace.CtrRootMounts, 1)
		rootCost = c.prof.DRAMAccess + c.prof.MACLatency
	}
	misses := 0
	for l := 0; l < c.geo.Levels(); l++ {
		walkCost += queuePerLevel
		key := nodeKey{region: r, level: l, index: c.nodeIndexAt(line, l)}
		//mmt:allow noalloc: LRU bookkeeping models on-chip SRAM lookup state, not per-access DRAM traffic; entries are bounded by cache capacity
		if c.cache.touch(key, c.geo.NodeSize(l)) {
			c.stats.NodeHits++
			c.probe.Count(trace.CtrNodeCacheHits, 1)
			continue
		}
		c.stats.NodeMisses++
		c.probe.Count(trace.CtrNodeCacheMisses, 1)
		c.probe.Count(trace.CtrMACVerifies, 1)
		misses++
		if misses == 1 {
			walkCost += c.prof.DRAMAccess * firstMissExposure
		} else {
			walkCost += c.prof.DRAMAccess * chainMissExposure
		}
		macCost += c.prof.MACLatency
	}
	c.probe.Count(trace.CtrTreeNodeWalks, uint64(c.geo.Levels()))
	if extraNodes > 0 {
		macCost += sim.Cycles(extraNodes) * c.prof.MACLatency
		c.probe.Count(trace.CtrMACUpdates, uint64(extraNodes))
	}
	c.probe.AddCycles(trace.PhaseData, dataCost)
	c.probe.AddCycles(trace.PhaseRootMount, rootCost)
	c.probe.AddCycles(trace.PhaseTreeWalk, walkCost)
	c.probe.AddCycles(trace.PhaseMAC, macCost)
	cost := dataCost + rootCost + walkCost + macCost
	c.stats.Cycles += cost
	c.clock.AdvanceCycles(cost)
	return cost, rootCost + macCost
}

// recordAccess mirrors one access's charged cycles into the per-op
// latency histograms: the whole access under op, the verification share
// additionally under OpVerify. Quiet-mode accesses charge nothing and
// arrive here as zeros, recording nothing.
func (c *Controller) recordAccess(op trace.Op, total, verify sim.Cycles) {
	if total > 0 {
		c.probe.RecordOp(op, total)
	}
	if verify > 0 {
		c.probe.RecordOp(trace.OpVerify, verify)
	}
}

// Timing-model constants for the tree walk (see chargePath).
const (
	queuePerLevel       sim.Cycles = 8
	writeUpdatePerLevel sim.Cycles = 12
	firstMissExposure              = 0.35 // overlapped with the data fetch
	chainMissExposure              = 0.80 // serial extension of the chain
)

// nodeIndexAt reports the index of the level-l node covering line:
// line / product(arities[l..L-1]), with the product precomputed in New.
//
//mmt:hotpath
func (c *Controller) nodeIndexAt(line, l int) int {
	return line / c.levelDiv[l]
}

// Read verifies and decrypts the given line of secure region r into a
// fresh buffer. The allocation-free variant is ReadInto.
func (c *Controller) Read(r, line int) ([]byte, error) {
	out := make([]byte, mem.LineSize)
	if err := c.ReadInto(r, line, out); err != nil {
		return nil, err
	}
	return out, nil
}

// ReadInto verifies and decrypts the given line of secure region r into
// dst (mem.LineSize bytes). The whole steady-state path — batched path
// verification, line MAC check, OTP decryption — runs through the
// controller's scratch buffers and performs zero heap allocations
// (TestReadWriteZeroAlloc), matching the hardware data path it models.
//mmt:hotpath
func (c *Controller) ReadInto(r, line int, dst []byte) error {
	st := c.region(r)
	if st.mode == ModeDisabled {
		return ErrDisabled
	}
	c.stats.Reads++
	total, verify := c.chargePath(r, line, 0)
	c.recordAccess(trace.OpLocalRead, total, verify)
	if err := st.tr.VerifyPath(st.eng, st.guaddr, line); err != nil {
		c.probe.Event(trace.EvIntegrityFail, c.clock.Now(), st.guaddr, "read: tree path")
		return err
	}
	ct := c.mem.LineView(c.lineAddr(r, line))
	ctr := st.tr.LeafCounter(line)
	padBase, macBase := st.lineBases(line, &c.scr)
	// Constant-time compare: the stored line MAC is untrusted (meta-zone)
	// and a variable-time == would leak matching tag bytes to a prober.
	if !crypt.TagEqual(st.eng.LineHash(ct, &c.scr)^st.lineMaskFor(line, macBase, ctr, &c.scr), st.lineMACs[line]) {
		c.probe.Event(trace.EvIntegrityFail, c.clock.Now(), st.guaddr, "read: data line MAC")
		return fmt.Errorf("%w: data line %d", ErrIntegrity, line)
	}
	crypt.XORLine(dst, ct, st.linePadFor(line, padBase, ctr, &c.scr))
	return nil
}

// Write verifies the path, advances the counters and stores the encrypted
// line. Counter overflow triggers the re-encryption of sibling lines
// (§V-A2's global-counter exhaustion procedure).
//mmt:hotpath
func (c *Controller) Write(r, line int, plaintext []byte) error {
	st := c.region(r)
	switch st.mode {
	case ModeDisabled:
		return ErrDisabled
	case ModeReadOnly:
		return ErrReadOnly
	}
	c.stats.Writes++
	// Verify-before-write: the tree engine "checks data integrity before
	// writing".
	if err := st.tr.VerifyPath(st.eng, st.guaddr, line); err != nil {
		c.probe.Event(trace.EvIntegrityFail, c.clock.Now(), st.guaddr, "write: tree path")
		return err
	}
	res := st.tr.Update(st.eng, st.guaddr, line)
	total, verify := c.chargePath(r, line, res.NodesTouched)
	c.recordAccess(trace.OpLocalWrite, total, verify)

	padBase, macBase := st.lineBases(line, &c.scr)
	ct := c.lineBuf[:]
	crypt.XORLine(ct, plaintext, st.linePadFor(line, padBase, res.LeafCounter, &c.scr))
	c.mem.WriteLine(c.lineAddr(r, line), ct)
	st.lineMACs[line] = st.eng.LineHash(ct, &c.scr) ^ st.lineMaskFor(line, macBase, res.LeafCounter, &c.scr)
	st.markLine(line)

	for _, ln := range res.ReencryptLines {
		if err := c.reencryptLine(st, r, ln); err != nil {
			return err
		}
	}
	return nil
}

// reencryptLine re-encrypts sibling line ln after a leaf counter overflow
// reset its counter. The overflow set the sibling's local counter to zero
// and bumped the shared global, so its previous effective counter was
// (global-1)<<bits | oldLocal for some oldLocal the tree no longer holds;
// hardware re-encrypts in the same pass that resets the counters, before
// the old values are gone. This software rendition recovers oldLocal by
// checking the stored line MAC against each candidate — the local space is
// small by construction.
//
// This is the rare cold path (once per 2^LocalBits writes per line at
// worst); its copies are charged to PhaseReencrypt.
//mmt:coldpath
func (c *Controller) reencryptLine(st *regionState, r, ln int) error {
	a := c.lineAddr(r, ln)
	ct := c.mem.LineView(a)
	newCtr := st.tr.LeafCounter(ln)
	bits := st.tr.Geometry().LocalBits
	if bits == 0 {
		bits = tree.DefaultLocalBits
	}
	base := (newCtr >> bits) - 1 // previous global value
	padBase, macBase := st.lineBases(ln, &c.scr)
	// The stored tag is LineHash(ct) ^ mask(counter) and the hash does not
	// depend on the candidate counter, so hash once and probe each
	// candidate with a single AES mask — same purity argument as the hot
	// path's lineMaskFor.
	h := st.eng.LineHash(ct, &c.scr)
	var pt [mem.LineSize]byte
	found := false
	for local := uint64(0); local < 1<<bits; local++ {
		old := base<<bits | local
		// Constant-time compare even in this recovery search: each probe
		// tests an attacker-influenceable stored MAC.
		if crypt.TagEqual(h^st.eng.MaskFromBase(macBase, old, &c.scr), st.lineMACs[ln]) {
			st.eng.DecryptLineFromBase(padBase, old, ct, pt[:], &c.scr)
			found = true
			break
		}
	}
	if !found {
		// Integrity was already verified on the path; reaching here means
		// the sibling was tampered with between checks.
		c.probe.Event(trace.EvIntegrityFail, c.clock.Now(), st.guaddr, "overflow: sibling unrecoverable")
		return fmt.Errorf("%w: sibling line %d unrecoverable during overflow re-encryption", ErrIntegrity, ln)
	}
	nct := c.lineBuf[:] // Write's own ciphertext already hit memory; safe to reuse
	st.eng.EncryptLineFromBase(padBase, newCtr, pt[:], nct, &c.scr)
	c.mem.WriteLine(a, nct)
	st.lineMACs[ln] = st.eng.LineHash(nct, &c.scr) ^ st.lineMaskFor(ln, macBase, newCtr, &c.scr)
	st.markLine(ln)
	c.stats.ReencryptedLines++
	c.probe.Count(trace.CtrReencryptLines, 1)
	c.probe.AddCycles(trace.PhaseReencrypt, c.prof.DRAMAccess+c.prof.AESLatency)
	c.probe.RecordOp(trace.OpReencrypt, c.prof.DRAMAccess+c.prof.AESLatency)
	c.stats.Cycles += c.prof.DRAMAccess + c.prof.AESLatency
	c.clock.AdvanceCycles(c.prof.DRAMAccess + c.prof.AESLatency)
	return nil
}

// Access is the timing-only path used by trace-driven experiments
// (Figure 11): it moves the node cache and cycle counters exactly like a
// real access but skips cryptography and data movement, so traces of
// millions of accesses stay fast. Region state is not consulted.
//
// Writes additionally pay a per-level update charge: the write path
// increments a counter and recomputes a MAC at every level and enqueues
// the dirty nodes for write-back (§V-A2), so deeper trees spend more
// write-queue occupancy per store.
//mmt:hotpath
func (c *Controller) Access(r, line int, write bool) {
	if write {
		c.stats.Writes++
	} else {
		c.stats.Reads++
	}
	total, verify := c.chargePath(r, line, 0)
	if write {
		cost := sim.Cycles(c.geo.Levels()) * writeUpdatePerLevel
		c.probe.AddCycles(trace.PhaseTreeUpdate, cost)
		c.probe.Count(trace.CtrMACUpdates, uint64(c.geo.Levels()))
		c.stats.Cycles += cost
		c.clock.AdvanceCycles(cost)
		c.recordAccess(trace.OpLocalWrite, total+cost, verify)
	} else {
		c.recordAccess(trace.OpLocalRead, total, verify)
	}
}

// AccessUnprotected models a baseline (no-MMT) memory access: one DRAM
// access, no tree traffic. Used as the denominator of Figure 11.
func (c *Controller) AccessUnprotected() {
	c.stats.DataAccesses++
	c.probe.AddCycles(trace.PhaseData, c.prof.DRAMAccess)
	c.stats.Cycles += c.prof.DRAMAccess
	c.clock.AdvanceCycles(c.prof.DRAMAccess)
}

// BumpRootCounter advances region r's root counter by one (the delegation
// engine's pre-seal bump). The region must have a live MMT.
func (c *Controller) BumpRootCounter(r int) error {
	st := c.region(r)
	if st.mode == ModeDisabled {
		return ErrDisabled
	}
	st.tr.BumpRootCounter(st.eng, st.guaddr)
	return nil
}

// Crypto returns region r's key-derived crypto engine so the MMT closure
// delegation engine (package core) can seal and unseal the root.
func (c *Controller) Crypto(r int) (*crypt.Engine, error) {
	st := c.region(r)
	if st.mode == ModeDisabled {
		return nil, ErrDisabled
	}
	return st.eng, nil
}

// Export captures region r's transferable state: the serialized tree
// nodes, the raw ciphertext, the line MACs and the root counter. Package
// core wraps this into an MMT closure. Export requires a live MMT.
func (c *Controller) Export(r int) (treeBytes, data []byte, lineMACs []uint64, rootCounter, guaddr uint64, err error) {
	st := c.region(r)
	if st.mode == ModeDisabled {
		return nil, nil, nil, 0, 0, ErrDisabled
	}
	data = append([]byte(nil), c.mem.RegionData(r)...)
	return st.tr.Serialize(), data, append([]uint64(nil), st.lineMACs...), st.tr.RootCounter(), st.guaddr, nil
}

// Install adopts a transferred MMT into region r: deserializes the tree,
// installs the root counter, verifies every node MAC and every line MAC
// under key/guaddr, and only then enables the region. Any integrity
// failure leaves the region disabled. mode is the resulting enforcement
// mode (read-write for ownership transfer, read-only for ownership copy).
func (c *Controller) Install(r int, key crypt.Key, guaddr, rootCounter uint64, treeBytes, data []byte, lineMACs []uint64, mode Mode) error {
	st := c.region(r)
	if st.mode != ModeDisabled {
		return ErrBusy
	}
	if mode == ModeDisabled {
		return fmt.Errorf("engine: install with disabled mode")
	}
	if len(data) != c.geo.DataSize() {
		return fmt.Errorf("engine: closure data %d bytes, want %d", len(data), c.geo.DataSize())
	}
	if len(lineMACs) != c.geo.Lines() {
		return fmt.Errorf("engine: closure has %d line MACs, want %d", len(lineMACs), c.geo.Lines())
	}
	eng := crypt.NewEngine(key)
	tr, err := tree.Deserialize(c.geo, treeBytes)
	if err != nil {
		return err
	}
	tr.SetTrace(c.probe)
	tr.SetRootCounter(rootCounter)
	if err := tr.VerifyAll(eng, guaddr); err != nil {
		return err
	}
	for line := 0; line < c.geo.Lines(); line++ {
		ct := data[line*mem.LineSize : (line+1)*mem.LineSize]
		tw := crypt.Tweak{GUAddr: guaddr, Line: uint32(line), Counter: tr.LeafCounter(line)}
		// Constant-time compare: closure MACs arrive from the network.
		// The Buf variant keeps this whole-region sweep allocation-free.
		if !crypt.TagEqual(eng.LineMACBuf(tw, ct, &c.scr), lineMACs[line]) {
			return fmt.Errorf("%w: transferred data line %d", ErrIntegrity, line)
		}
	}
	c.mem.Write(c.mem.RegionBase(r), data)
	*st = regionState{mode: mode, eng: eng, tr: tr, guaddr: guaddr, lineMACs: append([]uint64(nil), lineMACs...),
		dirtyLines: make([]uint64, (c.geo.Lines()+63)/64)}
	st.initPlanes(c.geo.Lines())
	tr.MarkAllDirty()
	for line := range c.geo.Lines() {
		st.markLine(line) // transferred contents have never been checkpointed here
	}
	c.mem.SetRegionKind(r, mem.KindSecure)
	c.cache.invalidateRegion(r)
	// Install is functional verification (tree + line MACs) and advances
	// no clock, so its causal span is a zero-duration, zero-cycle marker
	// under the accept span — it pins *where* the install happened, not a
	// cost.
	c.probe.CausalSpan(c.causal, trace.PhaseMAC, c.clock.Now(), c.clock.Now(), 0)
	return nil
}

// FlushMeta serializes region r's tree nodes and line MACs into the
// memory's meta-zone, modelling the untrusted DRAM copy of the metadata.
func (c *Controller) FlushMeta(r int) {
	st := c.region(r)
	if st.mode == ModeDisabled {
		return
	}
	meta := c.mem.MetaRegion(r)
	blob := st.tr.Serialize()
	n := copy(meta, blob)
	for i, m := range st.lineMACs {
		binary.LittleEndian.PutUint64(meta[n+i*8:], m)
	}
}

// LoadMeta re-reads region r's metadata from the meta-zone, replacing the
// controller's in-core copies. A physical attacker who rewrote the
// meta-zone is then caught by the next Read/Write verification.
func (c *Controller) LoadMeta(r int) error {
	st := c.region(r)
	if st.mode == ModeDisabled {
		return ErrDisabled
	}
	meta := c.mem.MetaRegion(r)
	tr, err := tree.Deserialize(c.geo, meta[:c.geo.NodesSize()])
	if err != nil {
		return err
	}
	tr.SetTrace(c.probe)
	tr.SetRootCounter(st.tr.RootCounter()) // root counter stays in SoC
	st.tr = tr
	off := c.geo.NodesSize()
	for i := range st.lineMACs {
		st.lineMACs[i] = binary.LittleEndian.Uint64(meta[off+i*8:])
	}
	c.cache.invalidateRegion(r)
	return nil
}

// RestoreStats overwrites the activity counters; snapshot recovery uses it
// so a reloaded cluster reports the same cumulative figures it saved.
func (c *Controller) RestoreStats(s Stats) { c.stats = s }

// RegionDirty reports whether region r has uncheckpointed state: dirty
// tree nodes or dirty data lines since the last ClearRegionDirty.
func (c *Controller) RegionDirty(r int) bool {
	st := c.region(r)
	if st.mode == ModeDisabled {
		return false
	}
	if st.tr.DirtyCount() > 0 {
		return true
	}
	for _, w := range st.dirtyLines {
		if w != 0 {
			return true
		}
	}
	return false
}

// DirtyLines calls fn for every dirty data line of region r in ascending
// order — the deterministic enumeration the checkpoint stream relies on.
func (c *Controller) DirtyLines(r int, fn func(line int)) {
	st := c.region(r)
	if st.mode == ModeDisabled {
		return
	}
	for w, word := range st.dirtyLines {
		for word != 0 {
			fn(w*64 + bits.TrailingZeros64(word))
			word &= word - 1
		}
	}
}

// ClearRegionDirty resets region r's dirty-node and dirty-line tracking;
// the store layer calls it once the commit covering them is durable.
func (c *Controller) ClearRegionDirty(r int) {
	st := c.region(r)
	if st.mode == ModeDisabled {
		return
	}
	st.tr.ClearDirty()
	for i := range st.dirtyLines {
		st.dirtyLines[i] = 0
	}
}

// LineState exposes region r's stored ciphertext (a view, valid until the
// next write) and line MAC for one line — the unit of the checkpoint
// stream's data-line records.
func (c *Controller) LineState(r, line int) (ciphertext []byte, mac uint64) {
	st := c.region(r)
	return c.mem.LineView(c.lineAddr(r, line)), st.lineMACs[line]
}

// LineSize re-exports the protected line granularity for callers that
// drive the controller without importing the memory model.
const LineSize = mem.LineSize
