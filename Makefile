# Developer entry points. `make check` is what CI runs.

GO ?= go

.PHONY: build test race vet lint bench check trace-demo

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# First-class tier-1 target: the whole module under the race detector.
race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# mmt-vet: the project's own analyzer suite (simclock, cryptocompare,
# checkverify, nopanic, maporder). Non-zero exit on any finding.
lint:
	$(GO) run ./cmd/mmt-vet ./...

bench:
	$(GO) test -bench=. -benchmem -run=^$$ .

# trace-demo: run the quickstart with tracing, emit the fig10 metrics
# sidecar, and validate both artifacts against their schemas.
trace-demo:
	$(GO) run ./examples/quickstart -trace trace.json
	$(GO) run ./cmd/mmt-bench -fig 10 -out .
	$(GO) run ./cmd/mmt-tracecheck trace.json BENCH_fig10.json

check: build vet lint test race
