package monitor

import (
	"bytes"
	"crypto/ecdh"
	"crypto/rand"
	"encoding/json"
	"errors"
	"testing"

	"mmt/internal/attest"
	"mmt/internal/core"
	"mmt/internal/crypt"
	"mmt/internal/engine"
	"mmt/internal/mem"
	"mmt/internal/netsim"
	"mmt/internal/sim"
	"mmt/internal/tree"
)

var testGeo = tree.Geometry{Arities: []int{2, 3, 4}}

// world is a two-machine test universe: manufacturer, authority, two
// booted monitors on a shared network.
type world struct {
	auth *attest.Authority
	net  *netsim.Network
	a, b *Monitor
}

func newController(t testing.TB, regions int) *engine.Controller {
	t.Helper()
	m := mem.New(mem.Config{
		Size:          regions * testGeo.DataSize(),
		RegionSize:    testGeo.DataSize(),
		MetaPerRegion: testGeo.MetaSize(),
	})
	ctl, err := engine.New(m, testGeo, nil, sim.Gem5Profile())
	if err != nil {
		t.Fatal(err)
	}
	return ctl
}

func newWorld(t *testing.T) *world {
	t.Helper()
	mfr, err := attest.NewManufacturer()
	if err != nil {
		t.Fatal(err)
	}
	auth, err := attest.NewAuthority(mfr.PublicKey())
	if err != nil {
		t.Fatal(err)
	}
	meas := attest.MeasureSoftware([]byte("mmt monitor v1"))
	auth.AllowMeasurement(meas)

	w := &world{auth: auth, net: netsim.NewNetwork(0)}
	for i, name := range []string{"alpha", "beta"} {
		machine, err := mfr.Provision(name)
		if err != nil {
			t.Fatal(err)
		}
		mon := New(machine, meas, auth.PublicKey(), newController(t, 8))
		if err := mon.Boot(auth); err != nil {
			t.Fatalf("boot %s: %v", name, err)
		}
		if err := mon.AttachNetwork(w.net, name); err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			w.a = mon
		} else {
			w.b = mon
		}
	}
	return w
}

func TestBootAssignsNodeIDs(t *testing.T) {
	w := newWorld(t)
	if w.a.NodeID() == 0 || w.b.NodeID() == 0 {
		t.Fatal("boot did not assign node ids")
	}
	if w.a.NodeID() == w.b.NodeID() {
		t.Fatal("two machines share a node id")
	}
	if w.a.Report() == nil {
		t.Fatal("no attestation report after boot")
	}
}

func TestBootRejectedWithoutPolicy(t *testing.T) {
	mfr, _ := attest.NewManufacturer()
	auth, _ := attest.NewAuthority(mfr.PublicKey())
	machine, _ := mfr.Provision("rogue")
	meas := attest.MeasureSoftware([]byte("unapproved stack"))
	mon := New(machine, meas, auth.PublicKey(), newController(t, 2))
	if err := mon.Boot(auth); err == nil {
		t.Fatal("boot with unapproved measurement succeeded")
	}
	if _, err := mon.AcquireMMT(1, 1, crypt.Key{}, 0); !errors.Is(err, ErrNotAttested) {
		t.Fatalf("AcquireMMT before boot: %v", err)
	}
}

func TestEnclaveAndPMOLifecycle(t *testing.T) {
	w := newWorld(t)
	e := w.a.CreateEnclave("worker", attest.MeasureSoftware([]byte("app")))
	free := w.a.PoolFree()
	p, err := w.a.AllocPMO(e.ID)
	if err != nil {
		t.Fatal(err)
	}
	if w.a.PoolFree() != free-1 {
		t.Fatal("pool not decremented")
	}
	mmt, err := w.a.AcquireMMT(e.ID, p.Cap, crypt.KeyFromBytes([]byte("k")), 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := mmt.WriteBytes(0, []byte("enclave data")); err != nil {
		t.Fatal(err)
	}
	if err := w.a.FreePMO(e.ID, p.Cap); err != nil {
		t.Fatal(err)
	}
	if w.a.PoolFree() != free {
		t.Fatal("pool not restored after FreePMO")
	}
	if _, err := w.a.PMOOf(e.ID, p.Cap); !errors.Is(err, ErrNoCap) {
		t.Fatal("capability survived FreePMO")
	}
}

func TestOwnershipEnforced(t *testing.T) {
	w := newWorld(t)
	owner := w.a.CreateEnclave("owner", attest.Measurement{})
	intruder := w.a.CreateEnclave("intruder", attest.Measurement{})
	p, err := w.a.AllocPMO(owner.ID)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.a.AcquireMMT(intruder.ID, p.Cap, crypt.Key{}, 0); !errors.Is(err, ErrNotOwner) {
		t.Fatalf("intruder AcquireMMT: %v, want ErrNotOwner", err)
	}
	if err := w.a.FreePMO(intruder.ID, p.Cap); !errors.Is(err, ErrNotOwner) {
		t.Fatalf("intruder FreePMO: %v, want ErrNotOwner", err)
	}
	// Legitimate ownership transfer to the other enclave.
	if err := w.a.TransferOwnership(owner.ID, p.Cap, intruder.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := w.a.AcquireMMT(intruder.ID, p.Cap, crypt.KeyFromBytes([]byte("k")), 0); err != nil {
		t.Fatalf("new owner AcquireMMT: %v", err)
	}
	// The old owner lost access.
	if _, err := w.a.PMOOf(owner.ID, p.Cap); !errors.Is(err, ErrNotOwner) {
		t.Fatalf("old owner still resolves the cap: %v", err)
	}
}

func TestDestroyEnclaveReclaimsEverything(t *testing.T) {
	w := newWorld(t)
	e := w.a.CreateEnclave("doomed", attest.Measurement{})
	free := w.a.PoolFree()
	for i := 0; i < 3; i++ {
		p, err := w.a.AllocPMO(e.ID)
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			if _, err := w.a.AcquireMMT(e.ID, p.Cap, crypt.KeyFromBytes([]byte("k")), 0); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := w.a.DestroyEnclave(e.ID); err != nil {
		t.Fatal(err)
	}
	if w.a.PoolFree() != free {
		t.Fatalf("pool %d after destroy, want %d", w.a.PoolFree(), free)
	}
	if _, ok := w.a.Enclave(e.ID); ok {
		t.Fatal("enclave survived destroy")
	}
	if err := w.a.DestroyEnclave(e.ID); !errors.Is(err, ErrNoEnclave) {
		t.Fatalf("double destroy: %v", err)
	}
}

// connect builds a booted connection between one enclave on each monitor.
func connect(t *testing.T, w *world) (connID string, ea, eb *Enclave) {
	t.Helper()
	ea = w.a.CreateEnclave("sender", attest.Measurement{})
	eb = w.b.CreateEnclave("receiver", attest.Measurement{})
	id, err := Connect(w.a, ea.ID, w.b, eb.ID, 0)
	if err != nil {
		t.Fatal(err)
	}
	return id, ea, eb
}

func TestConnectEstablishesSharedKey(t *testing.T) {
	w := newWorld(t)
	connID, _, _ := connect(t, w)
	ca, ok := w.a.Connection(connID)
	if !ok {
		t.Fatal("connection missing on a")
	}
	cb, ok := w.b.Connection(connID)
	if !ok {
		t.Fatal("connection missing on b")
	}
	if ca.Conn().Key() != cb.Conn().Key() {
		t.Fatal("endpoints disagree on the MMT key")
	}
}

func TestDelegationThroughMonitors(t *testing.T) {
	w := newWorld(t)
	connID, ea, eb := connect(t, w)

	p, err := w.a.AllocPMO(ea.ID)
	if err != nil {
		t.Fatal(err)
	}
	ca, _ := w.a.Connection(connID)
	mmt, err := w.a.AcquireMMT(ea.ID, p.Cap, ca.Conn().Key(), ca.Conn().NextCounter())
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("cross-machine secure payload")
	if err := mmt.WriteBytes(0, payload); err != nil {
		t.Fatal(err)
	}

	if err := w.a.SendPMO(ea.ID, p.Cap, connID, core.OwnershipTransfer); err != nil {
		t.Fatal(err)
	}
	if err := w.b.PumpAll(); err != nil { // receiver: accept + ack
		t.Fatal(err)
	}
	if err := w.a.PumpAll(); err != nil { // sender: process ack
		t.Fatal(err)
	}

	rp, ok := w.b.TakeReceived(connID)
	if !ok {
		t.Fatal("no PMO received on b")
	}
	if rp.Owner != eb.ID {
		t.Fatalf("received PMO owned by %d, want %d", rp.Owner, eb.ID)
	}
	got, err := rp.MMT().ReadBytes(0, len(payload))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("payload corrupted across monitors")
	}
	// Sender's PMO is gone (ownership transferred) and its region pooled.
	if _, err := w.a.PMOOf(ea.ID, p.Cap); !errors.Is(err, ErrNoCap) {
		t.Fatalf("sender cap survived ownership transfer: %v", err)
	}
	if ca, _ := w.a.Connection(connID); ca.Acked != 1 {
		t.Fatalf("Acked = %d, want 1", ca.Acked)
	}
}

func TestDelegationRejectedUnderTampering(t *testing.T) {
	w := newWorld(t)
	connID, ea, _ := connect(t, w)

	p, err := w.a.AllocPMO(ea.ID)
	if err != nil {
		t.Fatal(err)
	}
	ca, _ := w.a.Connection(connID)
	mmt, err := w.a.AcquireMMT(ea.ID, p.Cap, ca.Conn().Key(), ca.Conn().NextCounter())
	if err != nil {
		t.Fatal(err)
	}
	if err := mmt.WriteBytes(0, []byte("to be tampered")); err != nil {
		t.Fatal(err)
	}

	// Tamper with the tail of the closure (ciphertext bytes).
	w.net.SetInterposer(&netsim.Tamperer{Kind: netsim.KindClosure, Offset: -10, Bit: 0})
	if err := w.a.SendPMO(ea.ID, p.Cap, connID, core.OwnershipTransfer); err != nil {
		t.Fatal(err)
	}
	if err := w.b.PumpAll(); err == nil {
		t.Fatal("tampered delegation accepted")
	}
	w.net.SetInterposer(nil)
	if err := w.a.PumpAll(); err != nil { // nack arrives
		t.Fatal(err)
	}
	// Sender recovered: MMT valid and writable again.
	if mmt.State() != core.StateValid {
		t.Fatalf("sender state after nack = %v", mmt.State())
	}
	if err := mmt.WriteBytes(0, []byte("retry")); err != nil {
		t.Fatalf("sender write after nack: %v", err)
	}
	// Retry without the attacker succeeds.
	if err := w.a.SendPMO(ea.ID, p.Cap, connID, core.OwnershipTransfer); err != nil {
		t.Fatal(err)
	}
	if err := w.b.PumpAll(); err != nil {
		t.Fatalf("retry rejected: %v", err)
	}
	if err := w.a.PumpAll(); err != nil {
		t.Fatal(err)
	}
	if _, ok := w.b.TakeReceived(connID); !ok {
		t.Fatal("retry did not deliver a PMO")
	}
}

func TestSendPMORequiresOwnership(t *testing.T) {
	w := newWorld(t)
	connID, ea, _ := connect(t, w)
	intruder := w.a.CreateEnclave("intruder", attest.Measurement{})
	p, err := w.a.AllocPMO(ea.ID)
	if err != nil {
		t.Fatal(err)
	}
	ca, _ := w.a.Connection(connID)
	if _, err := w.a.AcquireMMT(ea.ID, p.Cap, ca.Conn().Key(), ca.Conn().NextCounter()); err != nil {
		t.Fatal(err)
	}
	if err := w.a.SendPMO(intruder.ID, p.Cap, connID, core.OwnershipTransfer); !errors.Is(err, ErrNotOwner) {
		t.Fatalf("intruder SendPMO: %v, want ErrNotOwner", err)
	}
	if err := w.a.SendPMO(ea.ID, p.Cap, "no-such-conn", core.OwnershipTransfer); !errors.Is(err, ErrNoConn) {
		t.Fatalf("SendPMO on bad conn: %v, want ErrNoConn", err)
	}
}

func TestPoolExhaustion(t *testing.T) {
	w := newWorld(t)
	e := w.a.CreateEnclave("hog", attest.Measurement{})
	for {
		if _, err := w.a.AllocPMO(e.ID); err != nil {
			if !errors.Is(err, ErrPoolEmpty) {
				t.Fatalf("unexpected alloc error: %v", err)
			}
			break
		}
	}
	if w.a.PoolFree() != 0 {
		t.Fatal("pool not exhausted")
	}
}

func TestPipelinedDelegations(t *testing.T) {
	// Several delegations in flight on one connection before any pump —
	// acks are matched by global-unique address, so completion order is
	// robust even if the fabric re-orders control traffic.
	w := newWorld(t)
	connID, ea, _ := connect(t, w)
	ca, _ := w.a.Connection(connID)

	const n = 3
	caps := make([]CapID, n)
	for i := 0; i < n; i++ {
		p, err := w.a.AllocPMO(ea.ID)
		if err != nil {
			t.Fatal(err)
		}
		caps[i] = p.Cap
		mmt, err := w.a.AcquireMMT(ea.ID, p.Cap, ca.Conn().Key(), ca.Conn().NextCounter())
		if err != nil {
			t.Fatal(err)
		}
		if err := mmt.WriteBytes(0, []byte{byte(i + 1)}); err != nil {
			t.Fatal(err)
		}
		if err := w.a.SendPMO(ea.ID, p.Cap, connID, core.OwnershipTransfer); err != nil {
			t.Fatalf("pipelined send %d: %v", i, err)
		}
	}
	if err := w.b.PumpAll(); err != nil {
		t.Fatal(err)
	}
	if err := w.a.PumpAll(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		p, ok := w.b.TakeReceived(connID)
		if !ok {
			t.Fatalf("only %d of %d delegations arrived", i, n)
		}
		got, err := p.MMT().ReadBytes(0, 1)
		if err != nil {
			t.Fatal(err)
		}
		if got[0] != byte(i+1) {
			t.Fatalf("delegation %d delivered out of order: %d", i, got[0])
		}
	}
	if ca.Acked != n {
		t.Fatalf("Acked = %d, want %d", ca.Acked, n)
	}
}

// mitm swaps the ECDH share in connect messages for the attacker's own —
// the classic man-in-the-middle against unauthenticated Diffie-Hellman.
type mitm struct{ t *testing.T }

func (m *mitm) Intercept(msg netsim.Message) []netsim.Message {
	if msg.Kind != netsim.KindControl {
		return []netsim.Message{msg}
	}
	var cm map[string]any
	if err := json.Unmarshal(msg.Payload, &cm); err != nil {
		return []netsim.Message{msg}
	}
	if t, _ := cm["type"].(string); t != "connect" && t != "connect-ok" {
		return []netsim.Message{msg}
	}
	evil, err := ecdh.X25519().GenerateKey(rand.Reader)
	if err != nil {
		m.t.Fatal(err)
	}
	cm["ecdh_public"] = evil.PublicKey().Bytes()
	out, err := json.Marshal(cm)
	if err != nil {
		m.t.Fatal(err)
	}
	msg.Payload = out
	return []netsim.Message{msg}
}

func TestConnectRejectsShareSubstitution(t *testing.T) {
	w := newWorld(t)
	ea := w.a.CreateEnclave("sender", attest.Measurement{})
	eb := w.b.CreateEnclave("receiver", attest.Measurement{})
	w.net.SetInterposer(&mitm{t: t})
	if _, err := Connect(w.a, ea.ID, w.b, eb.ID, 0); err == nil {
		t.Fatal("man-in-the-middle key exchange accepted")
	}
	// Without the attacker the same parties connect fine.
	w.net.SetInterposer(nil)
	if _, err := Connect(w.a, ea.ID, w.b, eb.ID, 0); err != nil {
		t.Fatalf("clean connect after attack: %v", err)
	}
}
