package graph

import (
	"math"
	"strings"
	"testing"

	"mmt/internal/sim"
	"mmt/internal/trace"
	"mmt/internal/tree"
	"mmt/internal/workload"
)

var smallGeo = tree.Geometry{Arities: []int{4, 4, 8}} // 8 KB regions

func testConfig(mode Mode, machines int) Config {
	return Config{
		Machines:             machines,
		Mode:                 mode,
		Profile:              sim.Gem5Profile(),
		Geometry:             smallGeo,
		PoolRegions:          16,
		GatherCyclesPerMsg:   30,
		ApplyCyclesPerVertex: 20,
		ScatterCyclesPerEdge: 15,
		Iterations:           3,
	}
}

// referencePageRank computes the same damped PageRank sequentially.
func referencePageRank(g *workload.Graph, iters int, damping float64) []float64 {
	outDeg := make([]int, g.N)
	for _, e := range g.Edges {
		outDeg[e[0]]++
	}
	ranks := make([]float64, g.N)
	for v := range ranks {
		ranks[v] = 1.0 / float64(g.N)
	}
	incoming := make([]float64, g.N)
	for i := 0; i < iters; i++ {
		for v := range incoming {
			incoming[v] = 0
		}
		for _, e := range g.Edges {
			incoming[e[1]] += ranks[e[0]] / float64(outDeg[e[0]])
		}
		for v := range ranks {
			ranks[v] = (1-damping)/float64(g.N) + damping*incoming[v]
		}
	}
	return ranks
}

func TestPageRankMatchesReference(t *testing.T) {
	g := workload.RandomGraph(5, 500, 4)
	want := referencePageRank(g, 3, 0.85)
	for _, mode := range []Mode{NonSecure, SecureChannel, MMT} {
		res, err := PageRank(testConfig(mode, 2), g)
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		for v := range want {
			if math.Abs(res.Ranks[v]-want[v]) > 1e-12 {
				t.Fatalf("%v: rank[%d] = %g, want %g", mode, v, res.Ranks[v], want[v])
			}
		}
		if res.Elapsed <= 0 {
			t.Fatalf("%v: no time elapsed", mode)
		}
		if res.CrossEdges == 0 {
			t.Fatalf("%v: no cross edges — test is vacuous", mode)
		}
	}
}

func TestPageRankSingleMachineNoRemote(t *testing.T) {
	g := workload.RandomGraph(6, 200, 4)
	res, err := PageRank(testConfig(NonSecure, 1), g)
	if err != nil {
		t.Fatal(err)
	}
	if res.CrossEdges != 0 {
		t.Fatal("single machine has cross edges")
	}
	if res.Breakdown.RemoteTransfer != 0 {
		t.Fatal("single machine charged remote-transfer cycles")
	}
}

func TestPageRankThreeMachines(t *testing.T) {
	g := workload.RandomGraph(7, 300, 4)
	want := referencePageRank(g, 3, 0.85)
	res, err := PageRank(testConfig(MMT, 3), g)
	if err != nil {
		t.Fatal(err)
	}
	for v := range want {
		if math.Abs(res.Ranks[v]-want[v]) > 1e-12 {
			t.Fatalf("rank[%d] diverges on 3 machines", v)
		}
	}
}

func TestPhaseBreakdownShape(t *testing.T) {
	// Figure 14b: the secure channel spends far more of its cycles in
	// remote-transfer than MMT delegation does.
	g := workload.RandomGraph(8, 2000, 6)
	sec, err := PageRank(testConfig(SecureChannel, 2), g)
	if err != nil {
		t.Fatal(err)
	}
	mmt, err := PageRank(testConfig(MMT, 2), g)
	if err != nil {
		t.Fatal(err)
	}
	secFrac := float64(sec.Breakdown.RemoteTransfer) / float64(sec.Breakdown.Total())
	mmtFrac := float64(mmt.Breakdown.RemoteTransfer) / float64(mmt.Breakdown.Total())
	if secFrac <= mmtFrac {
		t.Fatalf("remote-transfer fraction: secure %.3f <= mmt %.3f", secFrac, mmtFrac)
	}
	if sec.Elapsed <= mmt.Elapsed {
		t.Fatalf("secure channel (%v) not slower than MMT (%v)", sec.Elapsed, mmt.Elapsed)
	}
}

func TestRanksSumToOne(t *testing.T) {
	g := workload.RandomGraph(9, 400, 5)
	res, err := PageRank(testConfig(MMT, 2), g)
	if err != nil {
		t.Fatal(err)
	}
	// With damping, total rank = (1-d) + d * (mass kept by non-dangling
	// vertices); for a graph where every vertex has out-edges it stays 1.
	sum := 0.0
	for _, r := range res.Ranks {
		sum += r
	}
	if sum <= 0.5 || sum > 1.001 {
		t.Fatalf("rank sum %g implausible", sum)
	}
}

func TestConfigValidation(t *testing.T) {
	g := workload.RandomGraph(10, 50, 3)
	bad := testConfig(MMT, 0)
	if _, err := PageRank(bad, g); err == nil {
		t.Error("zero machines accepted")
	}
	bad = testConfig(MMT, 2)
	bad.Profile = nil
	if _, err := PageRank(bad, g); err == nil {
		t.Error("nil profile accepted")
	}
}

func TestDecodeMsgsRejectsGarbage(t *testing.T) {
	if _, err := decodeMsgs(nil); err == nil {
		t.Error("nil accepted")
	}
	if _, err := decodeMsgs([]byte{1, 0, 0, 0}); err == nil {
		t.Error("count without body accepted")
	}
	good := encodeMsgs([]vertexMsg{{Dst: 1, Mass: 0.5}})
	if _, err := decodeMsgs(good[:len(good)-1]); err == nil {
		t.Error("truncated accepted")
	}
	msgs, err := decodeMsgs(good)
	if err != nil || len(msgs) != 1 || msgs[0].Dst != 1 || msgs[0].Mass != 0.5 {
		t.Fatalf("round trip failed: %v %v", msgs, err)
	}
}

func TestModeString(t *testing.T) {
	if NonSecure.String() != "non-secure" || SecureChannel.String() != "secure-channel" || MMT.String() != "mmt" {
		t.Fatal("mode strings wrong")
	}
}

func TestEpsilonConvergence(t *testing.T) {
	g := workload.RandomGraph(11, 500, 5)
	cfg := testConfig(MMT, 2)
	cfg.Iterations = 100
	cfg.Epsilon = 1e-4
	res, err := PageRank(cfg, g)
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations >= 100 {
		t.Fatalf("did not converge early: %d iterations", res.Iterations)
	}
	if res.Iterations < 2 {
		t.Fatalf("converged implausibly fast: %d iterations", res.Iterations)
	}
	// Without epsilon, all iterations run.
	cfg.Epsilon = 0
	cfg.Iterations = 5
	res2, err := PageRank(cfg, g)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Iterations != 5 {
		t.Fatalf("cap ignored: %d iterations", res2.Iterations)
	}
	// The converged ranks are close to a long exact run.
	long := referencePageRank(g, res.Iterations, 0.85)
	for v := range long {
		if math.Abs(res.Ranks[v]-long[v]) > 1e-12 {
			t.Fatalf("converged ranks diverge from reference at v%d", v)
		}
	}
}

func TestTraceMirrorsComputePhases(t *testing.T) {
	g := workload.RandomGraph(5, 500, 4)
	sink := trace.NewSink()
	cfg := testConfig(MMT, 3)
	cfg.Trace = sink
	res, err := PageRank(cfg, g)
	if err != nil {
		t.Fatal(err)
	}
	procs := sink.Snapshot().Procs
	var mirrored sim.Cycles
	seen := 0
	for _, p := range procs {
		if !strings.HasPrefix(p.Proc, "gas-m") {
			continue
		}
		seen++
		mirrored += p.Cycles[trace.PhaseApp]
	}
	if seen != cfg.Machines {
		t.Fatalf("expected %d gas-m* probes, saw %d", cfg.Machines, seen)
	}
	// Every compute charge (gather, apply, scatter) is mirrored into the
	// sink as PhaseApp; remote transfer is clock-only, so the sums match
	// the compute slice of the breakdown exactly.
	compute := res.Breakdown.Gather + res.Breakdown.Apply + res.Breakdown.Scatter
	if mirrored != compute {
		t.Fatalf("mirrored PhaseApp cycles %v != breakdown compute %v", mirrored, compute)
	}
	if mirrored == 0 {
		t.Fatal("mirrored PhaseApp cycles are zero; probes not charging")
	}
}
