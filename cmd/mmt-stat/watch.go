package main

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Watch mode: poll a live cluster's /debug/mmt/metrics OpenMetrics
// exposition and render the rate of change between successive scrapes.
// The exposition carries cumulative counters off the *simulated* clocks,
// so the rates here are "simulated cycles (or events) per host second" —
// a live progress meter for a long run, not a simulated-time quantity.
// This command is host-side tooling; unlike the simulation packages it
// may read the wall clock.

// scrapeMetrics parses an OpenMetrics text page into metric -> value,
// keyed by the full sample name including its label set. Comment lines
// (#) and the EOF terminator are skipped; histogram buckets keep their
// le label and stay individually diffable.
func scrapeMetrics(r io.Reader) (map[string]float64, error) {
	out := map[string]float64{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		cut := strings.LastIndexByte(line, ' ')
		if cut < 0 {
			return nil, fmt.Errorf("malformed metric line %q", line)
		}
		v, err := strconv.ParseFloat(line[cut+1:], 64)
		if err != nil {
			return nil, fmt.Errorf("metric %q: %v", line[:cut], err)
		}
		out[line[:cut]] = v
	}
	return out, sc.Err()
}

// watchMetrics scrapes every interval and prints the metrics that moved
// since the previous scrape, with their per-second rate. count bounds
// the number of scrapes (0 = until interrupted). The first scrape only
// seeds the baseline.
func watchMetrics(w io.Writer, addr string, interval time.Duration, count int) error {
	url := "http://" + addr + "/debug/mmt/metrics"
	var prev map[string]float64
	var prevAt time.Time
	for i := 0; count == 0 || i < count; i++ {
		if i > 0 {
			time.Sleep(interval)
		}
		data, err := fetch(url)
		if err != nil {
			return err
		}
		now := time.Now()
		cur, err := scrapeMetrics(strings.NewReader(string(data)))
		if err != nil {
			return err
		}
		if prev == nil {
			fmt.Fprintf(w, "watching %s every %v: %d metrics (baseline scrape)\n", url, interval, len(cur))
			prev, prevAt = cur, now
			continue
		}
		elapsed := now.Sub(prevAt).Seconds()
		type delta struct {
			name string
			d    float64
		}
		var moved []delta
		for name, v := range cur {
			if d := v - prev[name]; d != 0 {
				moved = append(moved, delta{name, d})
			}
		}
		sort.Slice(moved, func(a, b int) bool { return moved[a].name < moved[b].name })
		fmt.Fprintf(w, "-- %s (+%.1fs): %d metrics moved\n", now.Format("15:04:05"), elapsed, len(moved))
		if len(moved) > 0 {
			rows := [][]string{{"metric", "delta", "rate/s"}}
			for _, m := range moved {
				rows = append(rows, []string{m.name, cyc(m.d), fmt.Sprintf("%.1f", m.d/elapsed)})
			}
			table(w, rows)
		}
		prev, prevAt = cur, now
	}
	return nil
}
