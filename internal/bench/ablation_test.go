package bench

import "testing"

func TestCacheSweepMonotone(t *testing.T) {
	if testing.Short() {
		t.Skip("trace sweep in -short mode")
	}
	rows, err := CacheSweep(50_000)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].Overhead > rows[i-1].Overhead {
			t.Errorf("bigger cache (%d) increased overhead: %.3f > %.3f",
				rows[i].CacheBytes, rows[i].Overhead, rows[i-1].Overhead)
		}
		if rows[i].MissRate > rows[i-1].MissRate {
			t.Errorf("bigger cache (%d) increased miss rate", rows[i].CacheBytes)
		}
	}
}

func TestArityAblationStructure(t *testing.T) {
	if testing.Short() {
		t.Skip("trace sweep in -short mode")
	}
	rows, err := ArityAblation(50_000)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("%d rows", len(rows))
	}
	// Wider leaves -> bigger granule, slightly less metadata.
	if rows[0].MMTSize >= rows[1].MMTSize || rows[1].MMTSize >= rows[2].MMTSize {
		t.Error("MMT size not increasing with leaf arity")
	}
	if rows[0].MetaFraction < rows[2].MetaFraction {
		t.Error("metadata fraction should shrink with wider leaves")
	}
	if rows[1].MMTSize != 2<<20 {
		t.Errorf("paper layout granule %d, want 2M", rows[1].MMTSize)
	}
}

func TestCounterWidthAblationShape(t *testing.T) {
	rows, err := CounterWidthAblation(10_000)
	if err != nil {
		t.Fatal(err)
	}
	// Narrower counters overflow more and cost more per write.
	first, last := rows[0], rows[len(rows)-1]
	if first.LocalBits >= last.LocalBits {
		t.Fatal("rows not ordered by width")
	}
	if first.Overflows <= last.Overflows {
		t.Errorf("4-bit counters overflowed %d times vs %d for 16-bit", first.Overflows, last.Overflows)
	}
	if first.CyclesPerWrite <= last.CyclesPerWrite {
		t.Error("overflow storms should cost cycles")
	}
	if last.Overflows != 0 {
		t.Errorf("16-bit counters overflowed %d times in a 10k write storm", last.Overflows)
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].Overflows > rows[i-1].Overflows {
			t.Errorf("overflows not monotone at %d bits", rows[i].LocalBits)
		}
	}
}

func TestLossSweepDeliversEverything(t *testing.T) {
	rows, err := LossSweep(10)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Delivered != 10 {
			t.Errorf("loss %d%%: delivered %d of 10", r.LossPercent, r.Delivered)
		}
	}
	clean, lossy := rows[0], rows[len(rows)-1]
	if clean.Retries != 0 {
		t.Errorf("clean fabric needed %d retries", clean.Retries)
	}
	if lossy.Retries == 0 {
		t.Error("20% loss needed no retries; dropper inactive?")
	}
	if lossy.GoodputGBps >= clean.GoodputGBps {
		t.Error("goodput should drop with loss")
	}
}
