package analyzers

// The lockorder analyzer derives a global mutex-acquisition order from
// every sync.Mutex/sync.RWMutex Lock and RLock site in the module and
// flags the two ways the order can go wrong before the ROADMAP's sharded
// caches multiply the lock count:
//
//   - inconsistent order: some execution path acquires A then B while
//     another acquires B then A — the classic ABBA deadlock shape;
//   - re-acquisition: a path acquires a mutex while an acquisition of
//     the same mutex is still held (self-deadlock with Go's
//     non-reentrant mutexes, unless the two acquisitions are provably
//     distinct instances — which is what an //mmt:allow lockorder
//     justification must argue).
//
// Mutexes are named by their declaration site, not their instance:
// pkg.Type.field for a mutex field reached through a named struct,
// pkg.var for a package-level mutex, and function-local names for the
// rest. Two instances of the same field share a name — exactly the
// granularity a global order policy is written at.
//
// Held sets are propagated through each function's CFG with a forward
// may-analysis (a lock is "held" at a point if any path holds it) and
// across calls with transitive acquisition summaries computed to
// fixpoint over the module call graph: calling f while holding A adds
// A -> x for every lock x that f may acquire. Deferred unlocks do not
// release — the lock really is held until return, which is the window
// that matters for ordering. Function literals are not traversed
// (worker-pool closures own their locks; see parclock for the analogous
// clock discipline).

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

var LockOrder = &Analyzer{
	Name: "lockorder",
	ID:   "MMT009",
	Doc: "derive the global mutex-acquisition order from all Lock/RLock sites " +
		"and flag pairs acquired in inconsistent order or re-acquired while held",
	RunModule: runLockOrder,
}

// lockEdge records "from was held when to was acquired" with the
// earliest position witnessing it.
type lockEdge struct {
	from, to string
	pos      token.Pos
}

func runLockOrder(pass *ModulePass) error {
	idx := buildFuncIndex(pass.Fset, pass.Units)

	// Transitive acquisition summaries: funcKey -> set of lock names the
	// function may acquire, directly or via callees. Fixpoint over the
	// (static) call graph.
	summaries := map[funcKey]factSet{}
	for _, key := range idx.order {
		summaries[key] = factSet{}
	}
	for changed := true; changed; {
		changed = false
		for _, key := range idx.order {
			f := idx.funcs[key]
			sum := summaries[key]
			before := len(sum)
			ast.Inspect(f.decl.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.FuncLit:
					return false
				case *ast.CallExpr:
					if name, op := lockOp(f.unit, n); op == "Lock" || op == "RLock" {
						sum[name] = true
					} else if callee, calleeKey := idx.lookupCall(f.unit, n); callee != nil {
						for l := range summaries[calleeKey] {
							sum[l] = true
						}
					}
				}
				return true
			})
			if len(sum) != before {
				changed = true
			}
		}
	}

	// Per-function may-analysis of held sets; collect edges and
	// re-acquisitions.
	edges := map[string]*lockEdge{}
	addEdge := func(from, to string, pos token.Pos) {
		k := from + "\x00" + to
		if e, ok := edges[k]; !ok || pass.Fset.Position(pos).Filename < pass.Fset.Position(e.pos).Filename ||
			(pass.Fset.Position(pos).Filename == pass.Fset.Position(e.pos).Filename && pos < e.pos) {
			edges[k] = &lockEdge{from: from, to: to, pos: pos}
		}
	}

	for _, key := range idx.order {
		f := idx.funcs[key]
		if !inScope(f.unit.Pkg.Path()) {
			continue
		}
		cfg := buildCFG(f.decl.Body, func(call *ast.CallExpr) bool { return isPanicCall(f.unit.TypesInfo, call) })
		transfer := func(blk *cfgBlock, in factSet) factSet {
			return lockTransfer(pass, idx, summaries, f, blk, in, nil)
		}
		ins := solveForward(cfg, false, factSet{}, transfer)
		// Reporting pass with converged inputs.
		for _, blk := range cfg.blocks {
			in, ok := ins[blk]
			if !ok {
				continue
			}
			lockTransfer(pass, idx, summaries, f, blk, in, addEdge)
		}
	}

	// Conflicts: A->B and B->A both witnessed. Deterministic iteration
	// via sorted keys; the driver re-sorts findings by position anyway.
	keys := make([]string, 0, len(edges))
	for k := range edges {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		e := edges[k]
		if e.from >= e.to {
			continue // each unordered pair once; self-edges reported at Lock sites
		}
		r, ok := edges[e.to+"\x00"+e.from]
		if !ok {
			continue
		}
		pass.Reportf(e.pos, "lock order conflict: %s acquired while holding %s here, but the opposite order at %s",
			e.to, e.from, pass.Fset.Position(r.pos))
		pass.Reportf(r.pos, "lock order conflict: %s acquired while holding %s here, but the opposite order at %s",
			r.to, r.from, pass.Fset.Position(e.pos))
	}
	return nil
}

// lockTransfer is the block transfer function: it threads the held set
// through blk's statements in order. When report is non-nil it also
// emits edges and re-acquisition diagnostics (the converged pass).
func lockTransfer(pass *ModulePass, idx *funcIndex, summaries map[funcKey]factSet, f *indexedFunc, blk *cfgBlock, in factSet, report func(from, to string, pos token.Pos)) factSet {
	held := in.clone()
	for _, node := range blk.nodes {
		if _, ok := node.(*ast.DeferStmt); ok {
			continue // deferred unlocks release at return, not here
		}
		ast.Inspect(node, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncLit:
				return false
			case *ast.CallExpr:
				name, op := lockOp(f.unit, n)
				switch op {
				case "Lock", "RLock":
					if report != nil {
						if held[name] {
							pass.Reportf(n.Pos(), "mutex %s acquired while an acquisition of %s is still held (self-deadlock unless provably distinct instances)", name, name)
						}
						for h := range held {
							if h != name {
								report(h, name, n.Pos())
							}
						}
					}
					held[name] = true
				case "Unlock", "RUnlock":
					delete(held, name)
				default:
					if callee, calleeKey := idx.lookupCall(f.unit, n); callee != nil {
						if report != nil && len(held) > 0 {
							for l := range summaries[calleeKey] {
								for h := range held {
									if h != l {
										report(h, l, n.Pos())
									} else if !pass.Suppressed(n.Pos()) {
										pass.Reportf(n.Pos(), "call to %s may re-acquire %s which is already held here", calleeKey, l)
									}
								}
							}
						}
					}
				}
			}
			return true
		})
	}
	return held
}

// lockOp classifies a call as a mutex operation, returning the lock's
// canonical name and the method name, or "" when it is not one.
func lockOp(unit *PackageUnit, call *ast.CallExpr) (name, op string) {
	se, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	fn, _ := unit.TypesInfo.Uses[se.Sel].(*types.Func)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", ""
	}
	switch fn.Name() {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return "", ""
	}
	if tn := namedRecv(recvTypeOf(fn)); tn == nil || (tn.Name() != "Mutex" && tn.Name() != "RWMutex") {
		return "", ""
	}
	return canonLock(unit, se.X), fn.Name()
}

func recvTypeOf(fn *types.Func) types.Type {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	return sig.Recv().Type()
}

// canonLock names the mutex operand by declaration site.
func canonLock(unit *PackageUnit, x ast.Expr) string {
	x = ast.Unparen(x)
	info := unit.TypesInfo
	// Promoted embedding: x itself is the enclosing struct.
	if t := info.Types[x].Type; t != nil {
		if tn := namedRecv(t); tn != nil && tn.Pkg() != nil && tn.Name() != "Mutex" && tn.Name() != "RWMutex" {
			return tn.Pkg().Name() + "." + tn.Name() + ".(embedded)"
		}
	}
	switch x := x.(type) {
	case *ast.SelectorExpr:
		// parent.field: name by the parent's named type.
		if pt := info.Types[x.X].Type; pt != nil {
			if tn := namedRecv(pt); tn != nil && tn.Pkg() != nil {
				return tn.Pkg().Name() + "." + tn.Name() + "." + x.Sel.Name
			}
		}
		return "anon." + x.Sel.Name
	case *ast.Ident:
		obj := info.Uses[x]
		if obj != nil && obj.Pkg() != nil && obj.Parent() == obj.Pkg().Scope() {
			return obj.Pkg().Name() + "." + x.Name
		}
		return "local." + x.Name
	}
	// Unnameable operand (map element, call result, …): fall back to the
	// rendering, prefixed so distinct shapes cannot collide with fields.
	return "expr." + types.ExprString(x)
}
