package trace

import (
	"io"
	"strconv"
)

// CausalSchema identifies the causal-trace export format.
const CausalSchema = "mmt-causal/v1"

// WriteCausalJSON serializes the sink's causal traces (schema
// mmt-causal/v1) under the determinism contract of export.go: traces in
// (root process, sequence) order, spans in span-ID order, hand-assembled
// JSON, fixed float formatting — identical runs serialize to identical
// bytes at any worker count. Safe on a nil sink (writes an empty traces
// list).
func (s *Sink) WriteCausalJSON(w io.Writer) error {
	bw := &errWriter{w: w}
	bw.str("{\n  \"schema\": \"" + CausalSchema + "\",\n  \"traces\": [")
	traces := s.CausalTraces()
	for i := range traces {
		t := &traces[i]
		if i > 0 {
			bw.str(",")
		}
		bw.str("\n    {\"id\": " + jsonString(t.ID.String()) +
			", \"root_proc\": " + jsonString(t.ID.Proc) +
			", \"seq\": " + strconv.FormatUint(t.ID.Seq, 10) +
			", \"total_cycles\": " + cyc(t.TotalCycles) +
			", \"critical_elapsed_us\": " + usec(t.CriticalElapsed) +
			", \"critical_path\": [")
		for j, id := range t.CriticalPath {
			if j > 0 {
				bw.str(", ")
			}
			bw.str(strconv.FormatUint(uint64(id), 10))
		}
		bw.str("], \"spans\": [")
		for j := range t.Spans {
			sp := &t.Spans[j]
			if j > 0 {
				bw.str(",")
			}
			bw.str("\n      {\"span\": " + strconv.FormatUint(uint64(sp.Span), 10) +
				", \"parent\": " + strconv.FormatUint(uint64(sp.Parent), 10) +
				", \"proc\": " + jsonString(sp.Proc) +
				", \"phase\": " + jsonString(sp.Phase.String()) +
				", \"begin_us\": " + usec(sp.Begin) +
				", \"end_us\": " + usec(sp.End) +
				", \"cycles\": " + cyc(sp.Cycles) + "}")
		}
		if len(t.Spans) > 0 {
			bw.str("\n    ")
		}
		bw.str("]}")
	}
	if len(traces) > 0 {
		bw.str("\n  ")
	}
	bw.str("]\n}\n")
	return bw.err
}
