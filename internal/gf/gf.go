// Package gf implements arithmetic in the finite field GF(2^64), used by
// the MMT controller's Carter–Wegman MACs. The paper's integrity-tree hash
// "xors the OTP and a Galois Field (GF) dot product result" (§II-A); this
// package provides that dot product.
//
// Elements are uint64 values interpreted as polynomials over GF(2); the
// reduction polynomial is x^64 + x^4 + x^3 + x + 1 (the lexicographically
// smallest irreducible degree-64 pentanomial, the same one used by
// reference GHASH-style constructions over 64-bit words).
package gf

// reduction holds the low coefficients of the irreducible polynomial
// x^64 + x^4 + x^3 + x + 1: bits for x^4, x^3, x^1, x^0.
const reduction uint64 = 0x1B

// Add returns a + b in GF(2^64) (carry-less addition, i.e. XOR).
func Add(a, b uint64) uint64 { return a ^ b }

// Mul returns a * b in GF(2^64).
func Mul(a, b uint64) uint64 {
	return reduce(clmul(a, b))
}

// clmul computes the 128-bit carry-less product of a and b, returned as
// (hi, lo).
func clmul(a, b uint64) (hi, lo uint64) {
	for i := 0; i < 64 && b != 0; i++ {
		if b&1 != 0 {
			lo ^= a << uint(i)
			if i > 0 {
				hi ^= a >> uint(64-i)
			}
		}
		b >>= 1
	}
	return hi, lo
}

// reduce folds a 128-bit carry-less product back into GF(2^64).
func reduce(hi, lo uint64) uint64 {
	// Each bit x^(64+k) in hi reduces to x^k * (x^4 + x^3 + x + 1).
	// Two folding rounds suffice because reduction has degree 4 < 64-4.
	for i := 0; i < 2 && hi != 0; i++ {
		h, l := clmul(hi, reduction)
		hi = h
		lo ^= l
	}
	return lo
}

// Dot returns the dot product sum_i a[i]*b[i] in GF(2^64). Mismatched
// lengths use the shorter slice, mirroring a hardware engine that pads
// missing lanes with zero.
func Dot(a, b []uint64) uint64 {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	var acc uint64
	for i := 0; i < n; i++ {
		acc ^= Mul(a[i], b[i])
	}
	return acc
}

// Pow returns a^n in GF(2^64) by square-and-multiply. Pow(a, 0) is 1.
func Pow(a uint64, n uint) uint64 {
	result := uint64(1)
	for n > 0 {
		if n&1 != 0 {
			result = Mul(result, a)
		}
		a = Mul(a, a)
		n >>= 1
	}
	return result
}

// Eval evaluates the polynomial with coefficients coeffs (constant term
// first) at point x, via Horner's rule. This is the universal-hash core:
// for a fixed secret x, Eval is an almost-universal family over messages.
func Eval(coeffs []uint64, x uint64) uint64 {
	var acc uint64
	for i := len(coeffs) - 1; i >= 0; i-- {
		acc = Mul(acc, x) ^ coeffs[i]
	}
	return acc
}
