package monitor

import (
	"errors"
	"fmt"
	"sort"

	"mmt/internal/attest"
	"mmt/internal/core"
	"mmt/internal/crypt"
	"mmt/internal/forest"
	"mmt/internal/trace"
)

// This file is the monitor's persistence surface: a plain-struct Snapshot
// of the enclave and PMO managers that the root package's snapshot codec
// serializes, plus Restore, which rebuilds a monitor around an already-
// verified controller state. Attestation reports are persisted verbatim
// and re-verified (never re-signed — ECDSA is randomized and byte
// stability matters); MMT keys are persisted because they are the only
// durable copy (hardware keeps them in the sealed root).

// ErrNotQuiescent is returned by Snapshot when delegation state is still
// in flight: an MMT in sending state or an unacked outbound delegation
// cannot be captured consistently on one machine.
var ErrNotQuiescent = errors.New("monitor: delegations in flight; pump the network before saving")

// EnclaveRec is one enclave-table entry.
type EnclaveRec struct {
	ID          EnclaveID
	Name        string
	Measurement attest.Measurement
	Caps        []CapID // sorted
}

// PMORec is one PMO-table entry.
type PMORec struct {
	Cap    CapID
	Region int
	Owner  EnclaveID
}

// MMTRec is one live MMT root state, keyed by region (each region holds at
// most one non-invalid MMT).
type MMTRec struct {
	Region   int
	State    core.State
	Key      crypt.Key
	GUAddr   uint64
	Mode     core.TransferMode
	ReadOnly bool
}

// ConnRec is one delegation-connection record, including the replay and
// re-order floors.
type ConnRec struct {
	ID          string
	Local       EnclaveID
	PeerMonitor string
	PeerEnclave EnclaveID
	Key         crypt.Key
	LastCounter uint64
	LastGUAddr  uint64
	RecvCap     CapID // 0 = no armed receive buffer
	Received    []CapID
	Acked       int
}

// Snapshot is the monitor's full persistable state.
type Snapshot struct {
	NodeID      forest.NodeID
	Report      *attest.Report
	NextEnclave EnclaveID
	NextCap     CapID
	AllocNext   uint64
	Pool        []int
	Enclaves    []EnclaveRec
	PMOs        []PMORec
	MMTs        []MMTRec
	Conns       []ConnRec
}

// Snapshot captures the monitor's state. It fails if the monitor is not
// booted or if any delegation is mid-flight (sending MMTs / unacked
// transfers): at a quiesce point every MMT is valid, waiting or invalid.
func (m *Monitor) Snapshot() (*Snapshot, error) {
	if m.node == nil || m.report == nil {
		return nil, ErrNotAttested
	}
	s := &Snapshot{
		NodeID:      m.node.ID(),
		Report:      m.report,
		NextEnclave: m.nextEnclave,
		NextCap:     m.nextCap,
		AllocNext:   m.node.AllocNext(),
		Pool:        append([]int(nil), m.pool...),
	}

	encIDs := make([]EnclaveID, 0, len(m.enclaves))
	for id := range m.enclaves {
		encIDs = append(encIDs, id)
	}
	sort.Slice(encIDs, func(i, j int) bool { return encIDs[i] < encIDs[j] })
	for _, id := range encIDs {
		e := m.enclaves[id]
		caps := make([]CapID, 0, len(e.caps))
		for c := range e.caps {
			caps = append(caps, c)
		}
		sort.Slice(caps, func(i, j int) bool { return caps[i] < caps[j] })
		s.Enclaves = append(s.Enclaves, EnclaveRec{ID: e.ID, Name: e.Name, Measurement: e.Measurement, Caps: caps})
	}

	capIDs := make([]CapID, 0, len(m.pmos))
	for c := range m.pmos {
		capIDs = append(capIDs, c)
	}
	sort.Slice(capIDs, func(i, j int) bool { return capIDs[i] < capIDs[j] })
	for _, c := range capIDs {
		p := m.pmos[c]
		s.PMOs = append(s.PMOs, PMORec{Cap: p.Cap, Region: p.Region, Owner: p.Owner})
		if p.mmt == nil {
			continue
		}
		switch p.mmt.State() {
		case core.StateInvalid:
			// Nothing to persist: the region is back to normal memory.
		case core.StateSending:
			return nil, fmt.Errorf("%w: region %d is sending", ErrNotQuiescent, p.mmt.Region())
		default:
			s.MMTs = append(s.MMTs, MMTRec{
				Region:   p.mmt.Region(),
				State:    p.mmt.State(),
				Key:      p.mmt.Key(),
				GUAddr:   p.mmt.GUAddr(),
				Mode:     p.mmt.Mode(),
				ReadOnly: p.mmt.ReadOnly(),
			})
		}
	}
	sort.Slice(s.MMTs, func(i, j int) bool { return s.MMTs[i].Region < s.MMTs[j].Region })

	connIDs := make([]string, 0, len(m.conns))
	for id := range m.conns {
		connIDs = append(connIDs, id)
	}
	sort.Strings(connIDs)
	for _, id := range connIDs {
		c := m.conns[id]
		if len(c.pending) > 0 {
			return nil, fmt.Errorf("%w: %d unacked delegations on %s", ErrNotQuiescent, len(c.pending), id)
		}
		rec := ConnRec{
			ID: c.ID, Local: c.Local, PeerMonitor: c.PeerMonitor, PeerEnclave: c.PeerEnclave,
			Key: c.conn.Key(), LastCounter: c.conn.LastCounter(), LastGUAddr: c.conn.LastGUAddr(),
			Acked: c.Acked,
		}
		if c.recv != nil {
			rec.RecvCap = c.recv.Cap
		}
		for _, p := range c.Received {
			rec.Received = append(rec.Received, p.Cap)
		}
		s.Conns = append(s.Conns, rec)
	}
	return s, nil
}

// Restore rebuilds the monitor's managers from a snapshot. The controller
// must already hold the verified region state (trees, ciphertext, MACs)
// for every MMT record — Restore only reattaches bookkeeping and refuses
// obviously inconsistent snapshots. The persisted attestation report is
// re-verified against the authority key instead of re-running attestation,
// so the restored node keeps its node id and report bytes.
func (m *Monitor) Restore(s *Snapshot) error {
	if m.node != nil {
		return errors.New("monitor: restore into a booted monitor")
	}
	if err := attest.VerifyReport(m.authority, s.Report); err != nil {
		return err
	}
	if s.Report.NodeID != s.NodeID {
		return fmt.Errorf("monitor: report node id %d != snapshot %d", s.Report.NodeID, s.NodeID)
	}
	if s.Report.Subject != m.machine.Name {
		return fmt.Errorf("monitor: report subject %q != machine %q", s.Report.Subject, m.machine.Name)
	}
	if s.Report.Measurement != m.measurement {
		return errors.New("monitor: report measurement != monitor measurement")
	}
	node, err := core.RestoreNode(s.NodeID, m.ctl, s.AllocNext)
	if err != nil {
		return err
	}

	enclaves := make(map[EnclaveID]*Enclave, len(s.Enclaves))
	for _, rec := range s.Enclaves {
		e := &Enclave{ID: rec.ID, Name: rec.Name, Measurement: rec.Measurement, caps: make(map[CapID]bool, len(rec.Caps))}
		for _, c := range rec.Caps {
			e.caps[c] = true
		}
		enclaves[rec.ID] = e
	}
	pmos := make(map[CapID]*PMO, len(s.PMOs))
	byRegion := make(map[int]*PMO, len(s.PMOs))
	for _, rec := range s.PMOs {
		owner, ok := enclaves[rec.Owner]
		if !ok {
			return fmt.Errorf("monitor: PMO %d owned by unknown enclave %d", rec.Cap, rec.Owner)
		}
		if !owner.caps[rec.Cap] {
			return fmt.Errorf("monitor: enclave %d missing capability %d", rec.Owner, rec.Cap)
		}
		p := &PMO{Cap: rec.Cap, Region: rec.Region, Owner: rec.Owner}
		pmos[rec.Cap] = p
		byRegion[rec.Region] = p
	}
	for _, rec := range s.MMTs {
		p, ok := byRegion[rec.Region]
		if !ok {
			return fmt.Errorf("monitor: MMT on region %d has no PMO", rec.Region)
		}
		mmt, err := node.RestoreMMT(rec.Region, rec.State, rec.Key, rec.GUAddr, rec.Mode, rec.ReadOnly)
		if err != nil {
			return err
		}
		p.mmt = mmt
	}
	conns := make(map[string]*Connection, len(s.Conns))
	for _, rec := range s.Conns {
		c := &Connection{
			ID: rec.ID, Local: rec.Local, PeerMonitor: rec.PeerMonitor, PeerEnclave: rec.PeerEnclave,
			conn:    core.RestoreConn(rec.Key, rec.LastCounter, rec.LastGUAddr),
			pending: make(map[uint64]*PMO),
			Acked:   rec.Acked,
		}
		if rec.RecvCap != 0 {
			p, ok := pmos[rec.RecvCap]
			if !ok {
				return fmt.Errorf("monitor: connection %s receive capability %d unknown", rec.ID, rec.RecvCap)
			}
			c.recv = p
		}
		for _, cap := range rec.Received {
			p, ok := pmos[cap]
			if !ok {
				return fmt.Errorf("monitor: connection %s received capability %d unknown", rec.ID, cap)
			}
			c.Received = append(c.Received, p)
		}
		conns[rec.ID] = c
	}

	m.node = node
	m.report = s.Report
	m.nextEnclave = s.NextEnclave
	m.nextCap = s.NextCap
	m.enclaves = enclaves
	m.pmos = pmos
	m.pool = append([]int(nil), s.Pool...)
	m.conns = conns
	return nil
}

// CapsOf lists the capabilities held by an enclave, sorted.
func (m *Monitor) CapsOf(owner EnclaveID) []CapID {
	e, ok := m.enclaves[owner]
	if !ok {
		return nil
	}
	caps := make([]CapID, 0, len(e.caps))
	for c := range e.caps {
		caps = append(caps, c)
	}
	sort.Slice(caps, func(i, j int) bool { return caps[i] < caps[j] })
	return caps
}

// ExportPMO seals the PMO's MMT into a closure exactly like SendPMO, but
// hands the wire bytes back to the caller instead of putting them on the
// network: the returned artifact IS the transport (a file, a side channel,
// a migration tool). The local side completes immediately — ownership
// transfer invalidates and frees the region; ownership copy returns the
// MMT to valid. The peer imports with ImportClosure, and the connection
// floors keep replayed or re-ordered artifacts rejected just like wire
// delegations.
func (m *Monitor) ExportPMO(caller EnclaveID, cap CapID, connID string, mode core.TransferMode) ([]byte, error) {
	c, ok := m.conns[connID]
	if !ok {
		return nil, ErrNoConn
	}
	p, err := m.checkOwner(caller, cap)
	if err != nil {
		return nil, err
	}
	if p.mmt == nil {
		return nil, fmt.Errorf("monitor: PMO %d has no MMT", cap)
	}
	closure, err := p.mmt.BeginSend(c.conn, mode)
	if err != nil {
		if errors.Is(err, core.ErrStaleCounter) {
			m.ctl.Trace().Event(trace.EvStaleCounter, m.ctl.Clock().Now(), p.mmt.GUAddr(), "monitor: export aborted before seal")
		}
		return nil, err
	}
	guaddr := p.mmt.GUAddr()
	wire := closure.Encode()
	if err := p.mmt.CompleteSend(true); err != nil {
		return nil, err
	}
	probe := m.ctl.Trace()
	probe.Count(trace.CtrClosuresSent, 1)
	probe.Count(trace.CtrClosureEncodeBytes, uint64(len(wire)))
	probe.Event(trace.EvMigrationSend, m.ctl.Clock().Now(), guaddr, "monitor: closure exported to artifact")
	if !p.mmt.ReadOnly() && p.mmt.State() == core.StateInvalid {
		// Ownership left the machine: free the local region.
		delete(m.enclaves[p.Owner].caps, p.Cap)
		delete(m.pmos, p.Cap)
		m.pool = append(m.pool, p.Region)
	}
	return wire, nil
}

// ImportClosure accepts an exported closure into the connection's armed
// receive buffer — the artifact-file counterpart of the Pump closure path,
// minus the ack (the exporting side already completed). It returns the
// PMO now holding the MMT and re-arms the connection when the pool allows.
func (m *Monitor) ImportClosure(connID string, wire []byte) (*PMO, error) {
	c, ok := m.conns[connID]
	if !ok {
		return nil, ErrNoConn
	}
	if c.recv == nil || c.recv.mmt == nil {
		return nil, fmt.Errorf("monitor: no armed receive buffer on %s", connID)
	}
	probe := m.ctl.Trace()
	probe.Count(trace.CtrClosureDecodeBytes, uint64(len(wire)))
	if err := c.recv.mmt.Accept(c.conn, wire); err != nil {
		probe.Count(trace.CtrClosuresRejected, 1)
		now := m.ctl.Clock().Now()
		var hint uint64
		if decoded, derr := core.DecodeClosure(wire); derr == nil {
			hint = decoded.GUAddrHint
		}
		switch {
		case errors.Is(err, core.ErrReplay):
			probe.Event(trace.EvReplayReject, now, hint, "monitor: artifact counter not fresh")
		case errors.Is(err, core.ErrReorder):
			probe.Event(trace.EvReorderReject, now, hint, "monitor: artifact address not monotonic")
		case errors.Is(err, core.ErrAuth):
			probe.Event(trace.EvAuthFail, now, hint, "monitor: artifact sealed root unauthentic")
		case errors.Is(err, core.ErrIntegrity):
			probe.Event(trace.EvIntegrityFail, now, hint, "monitor: artifact contents tampered")
		default:
			probe.Event(trace.EvMigrationReject, now, hint, "monitor: malformed artifact")
		}
		return nil, err
	}
	p := c.recv
	c.recv = nil
	probe.Count(trace.CtrClosuresAccepted, 1)
	probe.Event(trace.EvMigrationAccept, m.ctl.Clock().Now(), p.mmt.GUAddr(), "monitor: artifact closure installed")
	if len(m.pool) > 0 {
		if err := m.armReceive(c); err != nil {
			return nil, err
		}
	}
	return p, nil
}
