package channel

import (
	"bytes"
	"errors"
	"testing"

	"mmt/internal/core"
	"mmt/internal/crypt"
	"mmt/internal/engine"
	"mmt/internal/forest"
	"mmt/internal/mem"
	"mmt/internal/netsim"
	"mmt/internal/sim"
	"mmt/internal/tree"
)

var (
	testGeo = tree.Geometry{Arities: []int{2, 3, 4}} // 1536 B regions
	testKey = crypt.KeyFromBytes([]byte("channel-key"))
)

// rig is a two-node test fabric with all three channel types wired up.
type rig struct {
	net      *netsim.Network
	nsA, nsB *NonSecure
	scA, scB *Secure
	dgA, dgB *Delegation
}

func newRig(t testing.TB, latency sim.Time) *rig {
	t.Helper()
	prof := sim.Gem5Profile()
	prof.NetLatency = latency
	net := netsim.NewNetwork(latency)

	newNode := func(name string, id int) (*core.Node, *netsim.Endpoint) {
		pm := mem.New(mem.Config{
			Size:          8 * testGeo.DataSize(),
			RegionSize:    testGeo.DataSize(),
			MetaPerRegion: testGeo.MetaSize(),
		})
		ctl, err := engine.New(pm, testGeo, nil, prof)
		if err != nil {
			t.Fatal(err)
		}
		ep, err := net.Attach(name, ctl.Clock())
		if err != nil {
			t.Fatal(err)
		}
		return core.NewNode(forest.NodeID(id), ctl), ep
	}
	nodeA, epA := newNode("a", 1)
	nodeB, epB := newNode("b", 2)
	pool := []int{0, 1, 2, 3, 4, 5, 6, 7}
	mustSecure := func(ep *netsim.Endpoint, peer string) *Secure {
		sc, err := NewSecure(ep, peer, prof, testKey)
		if err != nil {
			t.Fatal(err)
		}
		return sc
	}
	return &rig{
		net: net,
		nsA: NewNonSecure(epA, "b", prof), nsB: NewNonSecure(epB, "a", prof),
		scA: mustSecure(epA, "b"), scB: mustSecure(epB, "a"),
		dgA: NewDelegation(epA, "b", prof, nodeA, core.NewConn(testKey, 0), pool),
		dgB: NewDelegation(epB, "a", prof, nodeB, core.NewConn(testKey, 0), pool),
	}
}

// Separate rigs per channel kind would be cleaner for endpoints, but the
// shared-endpoint design above intentionally mirrors one NIC carrying all
// traffic; tests below use one channel kind per rig instance.

func TestNonSecureRoundTrip(t *testing.T) {
	r := newRig(t, 0)
	msg := []byte("plaintext on the wire")
	if err := r.nsA.Send(msg); err != nil {
		t.Fatal(err)
	}
	got, err := r.nsB.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatal("round trip failed")
	}
	s := r.nsA.Stats()
	if s.Messages != 1 || s.Bytes != len(msg) || s.RemoteWrite == 0 {
		t.Fatalf("stats: %+v", s)
	}
	if s.Encrypt != 0 || s.Memcpy != 0 {
		t.Fatal("non-secure channel charged crypto costs")
	}
}

func TestNonSecureLeaksPlaintext(t *testing.T) {
	// The baseline really is unprotected: a spy sees the plaintext.
	r := newRig(t, 0)
	spy := &netsim.Spy{}
	r.net.SetInterposer(spy)
	msg := []byte("not a secret apparently")
	if err := r.nsA.Send(msg); err != nil {
		t.Fatal(err)
	}
	if len(spy.Captured) != 1 || !bytes.Contains(spy.Captured[0], msg) {
		t.Fatal("expected plaintext visible to the spy on the baseline channel")
	}
}

func TestSecureRoundTrip(t *testing.T) {
	r := newRig(t, 0)
	msg := bytes.Repeat([]byte("secret "), 100)
	if err := r.scA.Send(msg); err != nil {
		t.Fatal(err)
	}
	got, err := r.scB.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatal("round trip failed")
	}
	ss, rs := r.scA.Stats(), r.scB.Stats()
	if ss.Encrypt == 0 || ss.Memcpy == 0 || ss.RemoteWrite == 0 {
		t.Fatalf("sender stats missing costs: %+v", ss)
	}
	if rs.Decrypt == 0 || rs.Memcpy == 0 {
		t.Fatalf("receiver stats missing costs: %+v", rs)
	}
}

func TestSecureHidesPlaintext(t *testing.T) {
	r := newRig(t, 0)
	spy := &netsim.Spy{}
	r.net.SetInterposer(spy)
	msg := []byte("very secret message body")
	if err := r.scA.Send(msg); err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(spy.Captured[0], msg) {
		t.Fatal("secure channel leaked plaintext")
	}
	if _, err := r.scB.Recv(); err != nil {
		t.Fatal(err)
	}
}

func TestSecureRejectsTamperReplayReorder(t *testing.T) {
	t.Run("tamper", func(t *testing.T) {
		r := newRig(t, 0)
		r.net.SetInterposer(&netsim.Tamperer{Kind: netsim.KindData, Offset: -1})
		if err := r.scA.Send([]byte("payload")); err != nil {
			t.Fatal(err)
		}
		if _, err := r.scB.Recv(); !errors.Is(err, crypt.ErrAuth) {
			t.Fatalf("tampered: %v, want ErrAuth", err)
		}
	})
	t.Run("replay", func(t *testing.T) {
		r := newRig(t, 0)
		r.net.SetInterposer(&netsim.Replayer{Kind: netsim.KindData})
		r.scA.Send([]byte("one"))
		r.scA.Send([]byte("two"))
		if _, err := r.scB.Recv(); err != nil {
			t.Fatal(err)
		}
		if _, err := r.scB.Recv(); err != nil {
			t.Fatal(err)
		}
		if _, err := r.scB.Recv(); err == nil {
			t.Fatal("replayed message accepted")
		}
	})
	t.Run("reorder", func(t *testing.T) {
		r := newRig(t, 0)
		r.net.SetInterposer(&netsim.Reorderer{Kind: netsim.KindData})
		r.scA.Send([]byte("one"))
		r.scA.Send([]byte("two"))
		if _, err := r.scB.Recv(); err == nil {
			t.Fatal("re-ordered message accepted")
		}
	})
}

func TestDelegationRoundTripSmall(t *testing.T) {
	r := newRig(t, 0)
	msg := []byte("fits in one closure")
	if err := r.dgA.Send(msg); err != nil {
		t.Fatal(err)
	}
	got, err := r.dgB.RecvMessage()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatal("round trip failed")
	}
	// Ack flows back and frees the sender's buffer.
	if err := r.dgA.DrainAcks(); err != nil {
		t.Fatal(err)
	}
	if r.dgA.InFlight() != 0 {
		t.Fatal("delegation still in flight after ack")
	}
	if r.dgA.PoolFree() != 8 {
		t.Fatalf("sender pool = %d, want 8 (region recycled)", r.dgA.PoolFree())
	}
	s := r.dgA.Stats()
	if s.Encrypt != 0 || s.Decrypt != 0 || s.Memcpy != 0 {
		t.Fatalf("delegation charged crypto/copy costs: %+v", s)
	}
	if s.RemoteWrite == 0 || s.Delegation == 0 {
		t.Fatalf("delegation missing wire costs: %+v", s)
	}
}

func TestDelegationMultiChunk(t *testing.T) {
	r := newRig(t, 0)
	msg := make([]byte, 4*testGeo.DataSize()+123)
	for i := range msg {
		msg[i] = byte(i * 31)
	}
	if err := r.dgA.Send(msg); err != nil {
		t.Fatal(err)
	}
	got, err := r.dgB.RecvMessage()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatal("multi-chunk message corrupted")
	}
	if err := r.dgA.DrainAcks(); err != nil {
		t.Fatal(err)
	}
	if r.dgA.PoolFree() != 8 {
		t.Fatalf("pool = %d after acks, want 8", r.dgA.PoolFree())
	}
}

func TestDelegationStream(t *testing.T) {
	// Many messages over one connection: pool recycling plus monotone
	// counters/addresses must keep working.
	r := newRig(t, 0)
	for i := 0; i < 20; i++ {
		msg := bytes.Repeat([]byte{byte(i + 1)}, 200+i*37)
		if err := r.dgA.Send(msg); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
		got, err := r.dgB.RecvMessage()
		if err != nil {
			t.Fatalf("recv %d: %v", i, err)
		}
		if !bytes.Equal(got, msg) {
			t.Fatalf("message %d corrupted", i)
		}
	}
}

func TestDelegationHidesPlaintext(t *testing.T) {
	r := newRig(t, 0)
	spy := &netsim.Spy{}
	r.net.SetInterposer(spy)
	msg := bytes.Repeat([]byte("confidential block "), 20)
	if err := r.dgA.Send(msg); err != nil {
		t.Fatal(err)
	}
	for _, p := range spy.Captured {
		if bytes.Contains(p, msg[:19]) {
			t.Fatal("delegation leaked plaintext on the wire")
		}
	}
}

func TestDelegationRejectsTamper(t *testing.T) {
	r := newRig(t, 0)
	r.net.SetInterposer(&netsim.Tamperer{Kind: netsim.KindClosure, Offset: -1})
	if err := r.dgA.Send([]byte("payload")); err != nil {
		t.Fatal(err)
	}
	if _, err := r.dgB.Recv(); !errors.Is(err, engine.ErrIntegrity) {
		t.Fatalf("tampered closure: %v, want integrity failure", err)
	}
	// The nack travels back; the sender's next DrainAcks reports the
	// rejection and restores the buffer to valid.
	r.net.SetInterposer(nil)
	if err := r.dgA.DrainAcks(); !errors.Is(err, ErrClosed) {
		t.Fatalf("DrainAcks after nack: %v, want ErrClosed", err)
	}
	if r.dgA.InFlight() != 0 {
		t.Fatal("nacked delegation still in flight")
	}
}

func TestDelegationRejectsReplayedClosure(t *testing.T) {
	r := newRig(t, 0)
	r.net.SetInterposer(&netsim.Replayer{Kind: netsim.KindClosure})
	r.dgA.Send([]byte("one"))
	r.dgA.Send([]byte("two"))
	if _, err := r.dgB.Recv(); err != nil {
		t.Fatal(err)
	}
	if _, err := r.dgB.Recv(); err != nil {
		t.Fatal(err)
	}
	// Third pending message is the replay of the first closure.
	if _, err := r.dgB.Recv(); !errors.Is(err, core.ErrReplay) {
		t.Fatalf("replayed closure: %v, want ErrReplay", err)
	}
}

func TestDelegationRejectsReorderedClosures(t *testing.T) {
	r := newRig(t, 0)
	r.net.SetInterposer(&netsim.Reorderer{Kind: netsim.KindClosure})
	r.dgA.Send([]byte("one"))
	r.dgA.Send([]byte("two"))
	// First delivery is "two" (accepted), then "one" (stale).
	if _, err := r.dgB.Recv(); err != nil {
		t.Fatal(err)
	}
	_, err := r.dgB.Recv()
	if !errors.Is(err, core.ErrReplay) && !errors.Is(err, core.ErrReorder) {
		t.Fatalf("re-ordered closure: %v, want replay/reorder rejection", err)
	}
}

func TestDelegationPoolExhaustion(t *testing.T) {
	prof := sim.Gem5Profile()
	net := netsim.NewNetwork(0)
	pm := mem.New(mem.Config{Size: 2 * testGeo.DataSize(), RegionSize: testGeo.DataSize(), MetaPerRegion: testGeo.MetaSize()})
	ctl, err := engine.New(pm, testGeo, nil, prof)
	if err != nil {
		t.Fatal(err)
	}
	ep, _ := net.Attach("solo", ctl.Clock())
	dg := NewDelegation(ep, "peer", prof, core.NewNode(1, ctl), core.NewConn(testKey, 0), []int{0})
	if err := dg.Send([]byte("uses the only region")); err != nil {
		t.Fatal(err)
	}
	// No ack will ever arrive (peer doesn't exist); next send starves.
	if err := dg.Send([]byte("x")); err == nil {
		t.Fatal("expected pool exhaustion")
	}
}

func TestDelegationCostConstantBelowCapacity(t *testing.T) {
	// Table IV: MMT delegation cost is flat for any payload under one
	// closure's capacity.
	r1 := newRig(t, 0)
	r1.dgA.Send(make([]byte, 16))
	small := r1.dgA.Stats().Total()

	r2 := newRig(t, 0)
	r2.dgA.Send(make([]byte, r2.dgA.Capacity()))
	big := r2.dgA.Stats().Total()

	if small != big {
		t.Fatalf("delegation cost varies below capacity: %v vs %v", small, big)
	}
}

func TestRecvOnEmptyChannels(t *testing.T) {
	r := newRig(t, 0)
	if _, err := r.nsB.Recv(); !errors.Is(err, ErrEmpty) {
		t.Fatal("non-secure Recv on empty should be ErrEmpty")
	}
	if _, err := r.scB.Recv(); !errors.Is(err, ErrEmpty) {
		t.Fatal("secure Recv on empty should be ErrEmpty")
	}
	if _, err := r.dgB.Recv(); !errors.Is(err, ErrEmpty) {
		t.Fatal("delegation Recv on empty should be ErrEmpty")
	}
}

func TestStatsResetAndClock(t *testing.T) {
	r := newRig(t, 0)
	before := r.nsA.Clock().Now()
	r.nsA.Send(make([]byte, 1<<20))
	if r.nsA.Clock().Now() <= before {
		t.Fatal("send did not advance the clock")
	}
	r.nsA.ResetStats()
	if r.nsA.Stats().Total() != 0 || r.nsA.Stats().Messages != 0 {
		t.Fatal("ResetStats incomplete")
	}
}
