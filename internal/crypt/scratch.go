package crypt

import (
	"crypto/aes"
	"encoding/binary"
	"fmt"
)

// Scratch holds caller-owned working buffers for the allocation-free line
// and node paths. The steady-state protected read/write path (engine
// Read/Write per 64 B line) must not allocate — the hardware it models
// certainly does not — and the Into/Buf variants below achieve that by
// staging through Scratch instead of fresh slices (asserted by
// TestScratchPathsAllocFree, in the spirit of trace_alloc_test.go).
//
// The staging buffers exist because cipher.Block is an interface: escape
// analysis cannot see through Encrypt, so any local array passed to it is
// forced to the heap. Buffers reached through a long-lived *Scratch cost
// one allocation when the Scratch itself first escapes, not one per call.
//
// A Scratch belongs to exactly one goroutine; parallel work units (see
// internal/par) each own their own.
type Scratch struct {
	pad       [LineSize]byte      // OTP keystream for the line in flight
	stage     [LineSize]byte      // PRF input blocks for PadLine
	aesIn     [aes.BlockSize]byte // single-block AES staging
	aesOut    [aes.BlockSize]byte //
	base      [aes.BlockSize]byte // tweakBase output
	lineWords [LineSize/8 + 1]uint64
	nodeWords []uint64
	flat      []uint64
	polys     [][]uint64
}

// tweakBaseInto is tweakBase staged through s; the result lands in s.base.
func (e *Engine) tweakBaseInto(guaddr uint64, line uint32, domain byte, s *Scratch) {
	in := s.aesIn[:]
	for i := range in {
		in[i] = 0
	}
	binary.LittleEndian.PutUint64(in[0:8], guaddr)
	binary.LittleEndian.PutUint32(in[8:12], line)
	in[12] = domain
	e.block.Encrypt(s.base[:], in)
}

// macMaskBuf is macMask staged through s. Identical output to macMask.
func (e *Engine) macMaskBuf(tw Tweak, domain byte, s *Scratch) uint64 {
	e.tweakBaseInto(tw.GUAddr, tw.Line, domain, s)
	in := s.aesIn[:]
	for i := range in {
		in[i] = 0
	}
	binary.LittleEndian.PutUint64(in[0:8], tw.Counter)
	binary.LittleEndian.PutUint32(in[8:12], 0xFFFFFFFF)
	for i := range in {
		in[i] ^= s.base[i]
	}
	e.block.Encrypt(s.aesOut[:], in)
	return binary.LittleEndian.Uint64(s.aesOut[:8])
}

// PadLine fills s.pad with the full 64-byte OTP keystream for tw in one
// shot: all four PRF input blocks are staged first, then encrypted block
// by block straight into s.pad — no per-block output copies, unlike the
// incremental pad() path. Identical keystream to pad().
//mmt:hotpath
func (e *Engine) PadLine(tw Tweak, s *Scratch) *[LineSize]byte {
	e.tweakBaseInto(tw.GUAddr, tw.Line, 0x01, s)
	in := s.stage[:]
	for i := range in {
		in[i] = 0
	}
	for lane := 0; lane < LineSize/aes.BlockSize; lane++ {
		blk := in[lane*aes.BlockSize : (lane+1)*aes.BlockSize]
		binary.LittleEndian.PutUint64(blk[0:8], tw.Counter)
		binary.LittleEndian.PutUint32(blk[8:12], uint32(lane))
		for i := range blk {
			blk[i] ^= s.base[i]
		}
	}
	for off := 0; off < LineSize; off += aes.BlockSize {
		e.block.Encrypt(s.pad[off:off+aes.BlockSize], in[off:off+aes.BlockSize])
	}
	return &s.pad
}

// EncryptLineInto is EncryptLine without the allocation: it XORs line
// with the OTP for tw into dst. line and dst must be LineSize bytes and
// may alias (in-place re-encryption).
//mmt:hotpath
func (e *Engine) EncryptLineInto(tw Tweak, line, dst []byte, s *Scratch) {
	if len(line) != LineSize || len(dst) != LineSize {
		//mmt:allow nopanic: caller bug, equivalent to built-in bounds check
		panic(fmt.Sprintf("crypt: EncryptLineInto with %d -> %d bytes, want %d", len(line), len(dst), LineSize))
	}
	pad := e.PadLine(tw, s)
	for i := 0; i < LineSize; i++ {
		dst[i] = line[i] ^ pad[i]
	}
}

// DecryptLineInto is the inverse of EncryptLineInto (XOR is symmetric).
//mmt:hotpath
func (e *Engine) DecryptLineInto(tw Tweak, ct, dst []byte, s *Scratch) {
	e.EncryptLineInto(tw, ct, dst, s)
}

// LineMACBuf is LineMAC computed through the caller's scratch buffers
// instead of fresh slices. Identical output to LineMAC.
//mmt:hotpath
func (e *Engine) LineMACBuf(tw Tweak, ct []byte, s *Scratch) uint64 {
	words := s.lineWords[:0]
	for off := 0; off+8 <= len(ct); off += 8 {
		words = append(words, binary.LittleEndian.Uint64(ct[off:]))
	}
	words = append(words, uint64(len(ct))) // length binding
	h := e.mulx.Eval(words)
	return h ^ e.macMaskBuf(tw, 0xA5, s)
}

// NodeMACBuf is NodeMAC computed through the caller's scratch buffers.
// Identical output to NodeMAC.
//mmt:hotpath
func (e *Engine) NodeMACBuf(guaddr uint64, nodeID uint32, parentCounter uint64, counters []uint64, s *Scratch) uint64 {
	need := len(counters) + 2
	if cap(s.nodeWords) < need {
		//mmt:allow noalloc: guarded grow-once; steady state reuses the node word buffer
		s.nodeWords = make([]uint64, 0, need)
	}
	w := s.nodeWords[:0]
	w = append(w, parentCounter, uint64(len(counters)))
	w = append(w, counters...)
	h := e.mulx.Eval(w)
	return h ^ e.macMaskBuf(Tweak{GUAddr: guaddr, Line: nodeID, Counter: parentCounter}, 0x5A, s)
}

// NodeMACJob describes one node MAC of a batch: the inputs NodeMAC takes,
// minus the shared guaddr.
type NodeMACJob struct {
	NodeID        uint32
	ParentCounter uint64
	// Counters is the node's effective counter list. The slice is only
	// read; it may alias caller scratch.
	Counters []uint64
}

// NodeMACBatch computes the MACs of several tree nodes at once, writing
// job j's MAC to out[j]. Output is identical to calling NodeMAC per job;
// the win is the batched GF Horner evaluation (gf.Mulx.EvalBatch), which
// interleaves the independent polynomial chains of the batch for
// instruction-level parallelism. The tree's leaf-to-root verify path is
// the canonical caller: all L node MACs of one walk in one batch.
//
// len(out) must be >= len(jobs).
//mmt:hotpath
func (e *Engine) NodeMACBatch(guaddr uint64, jobs []NodeMACJob, out []uint64, s *Scratch) {
	total := 0
	for i := range jobs {
		total += len(jobs[i].Counters) + 2
	}
	if cap(s.flat) < total {
		//mmt:allow noalloc: guarded grow-once; steady state reuses the flattened word buffer
		s.flat = make([]uint64, 0, total)
	}
	if cap(s.polys) < len(jobs) {
		//mmt:allow noalloc: guarded grow-once; steady state reuses the batch poly slots
		s.polys = make([][]uint64, len(jobs))
	}
	flat := s.flat[:0]
	polys := s.polys[:len(jobs)]
	for i := range jobs {
		j := &jobs[i]
		start := len(flat)
		flat = append(flat, j.ParentCounter, uint64(len(j.Counters)))
		flat = append(flat, j.Counters...)
		polys[i] = flat[start:len(flat):len(flat)]
	}
	e.mulx.EvalBatch(polys, out)
	for i := range jobs {
		j := &jobs[i]
		out[i] ^= e.macMaskBuf(Tweak{GUAddr: guaddr, Line: j.NodeID, Counter: j.ParentCounter}, 0x5A, s)
	}
}
