package crypt

import (
	"bytes"
	"testing"
	"testing/quick"
)

func testEngine() *Engine { return NewEngine(KeyFromBytes([]byte("test-key"))) }

func line(fill byte) []byte {
	b := make([]byte, LineSize)
	for i := range b {
		b[i] = fill + byte(i)
	}
	return b
}

func TestEncryptDecryptRoundTrip(t *testing.T) {
	e := testEngine()
	tw := Tweak{GUAddr: 0x1234, Line: 7, Counter: 42}
	pt := line(3)
	ct := e.EncryptLine(tw, pt)
	if bytes.Equal(ct, pt) {
		t.Fatal("ciphertext equals plaintext")
	}
	back := e.DecryptLine(tw, ct)
	if !bytes.Equal(back, pt) {
		t.Fatal("round trip failed")
	}
}

func TestEncryptRoundTripProperty(t *testing.T) {
	e := testEngine()
	f := func(guaddr, counter uint64, lineIdx uint32, seed byte) bool {
		tw := Tweak{GUAddr: guaddr, Line: lineIdx, Counter: counter}
		pt := line(seed)
		return bytes.Equal(e.DecryptLine(tw, e.EncryptLine(tw, pt)), pt)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDistinctTweaksGiveDistinctPads(t *testing.T) {
	e := testEngine()
	zero := make([]byte, LineSize) // ciphertext of zero plaintext IS the pad
	base := Tweak{GUAddr: 10, Line: 2, Counter: 5}
	pads := map[string]Tweak{}
	variants := []Tweak{
		base,
		{GUAddr: 11, Line: 2, Counter: 5},
		{GUAddr: 10, Line: 3, Counter: 5},
		{GUAddr: 10, Line: 2, Counter: 6},
		{GUAddr: 10, Line: 2, Counter: 5 | 1<<40},
	}
	for _, tw := range variants {
		p := string(e.EncryptLine(tw, zero))
		if prev, dup := pads[p]; dup {
			t.Fatalf("tweaks %+v and %+v produced the same pad", prev, tw)
		}
		pads[p] = tw
	}
}

func TestDifferentKeysDifferentCiphertext(t *testing.T) {
	a := NewEngine(KeyFromBytes([]byte("a")))
	b := NewEngine(KeyFromBytes([]byte("b")))
	tw := Tweak{GUAddr: 1, Line: 1, Counter: 1}
	pt := line(9)
	if bytes.Equal(a.EncryptLine(tw, pt), b.EncryptLine(tw, pt)) {
		t.Fatal("two keys produced identical ciphertext")
	}
}

func TestSameKeySameEngineDeterministic(t *testing.T) {
	k := NewRandomKey()
	tw := Tweak{GUAddr: 77, Line: 3, Counter: 9}
	pt := line(1)
	c1 := NewEngine(k).EncryptLine(tw, pt)
	c2 := NewEngine(k).EncryptLine(tw, pt)
	if !bytes.Equal(c1, c2) {
		t.Fatal("same key+tweak not deterministic — remote node could not decrypt")
	}
}

func TestEncryptLinePanicsOnWrongSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for short line")
		}
	}()
	testEngine().EncryptLine(Tweak{}, make([]byte, 10))
}

func TestLineMACDetectsTampering(t *testing.T) {
	e := testEngine()
	tw := Tweak{GUAddr: 5, Line: 1, Counter: 3}
	ct := e.EncryptLine(tw, line(0))
	mac := e.LineMAC(tw, ct)
	for _, bit := range []int{0, 7, 63, 255, 511} {
		mut := make([]byte, len(ct))
		copy(mut, ct)
		mut[bit/8] ^= 1 << uint(bit%8)
		if e.LineMAC(tw, mut) == mac {
			t.Fatalf("flipping bit %d did not change LineMAC", bit)
		}
	}
}

func TestLineMACBindsCounter(t *testing.T) {
	// The replay defence: the same ciphertext at an older counter must not
	// verify under the new counter's MAC.
	e := testEngine()
	ct := e.EncryptLine(Tweak{GUAddr: 5, Counter: 3}, line(0))
	if e.LineMAC(Tweak{GUAddr: 5, Counter: 3}, ct) == e.LineMAC(Tweak{GUAddr: 5, Counter: 4}, ct) {
		t.Fatal("LineMAC does not depend on the counter — replayable")
	}
}

func TestLineMACBindsAddress(t *testing.T) {
	// The splicing defence: moving a line to another address must not verify.
	e := testEngine()
	ct := e.EncryptLine(Tweak{GUAddr: 5, Counter: 3}, line(0))
	if e.LineMAC(Tweak{GUAddr: 5, Counter: 3}, ct) == e.LineMAC(Tweak{GUAddr: 6, Counter: 3}, ct) {
		t.Fatal("LineMAC does not depend on the address — spliceable")
	}
	if e.LineMAC(Tweak{GUAddr: 5, Line: 0, Counter: 3}, ct) == e.LineMAC(Tweak{GUAddr: 5, Line: 1, Counter: 3}, ct) {
		t.Fatal("LineMAC does not depend on the line index")
	}
}

func TestNodeMACDetectsCounterTampering(t *testing.T) {
	e := testEngine()
	// packed counter plane of an 8-ary node: global word + two words of
	// four 16-bit local fields each.
	packed := []uint64{1, 0x0004000300020001, 0x0008000700060005}
	mac := e.NodeMAC(100, 2, 9, 8, packed)
	for w := range packed {
		for bit := 0; bit < 64; bit += 16 { // flip every local field + global bits
			mut := make([]uint64, len(packed))
			copy(mut, packed)
			mut[w] ^= 1 << uint(bit)
			if e.NodeMAC(100, 2, 9, 8, mut) == mac {
				t.Fatalf("flipping word %d bit %d did not change NodeMAC", w, bit)
			}
		}
	}
	if e.NodeMAC(100, 2, 10, 8, packed) == mac {
		t.Fatal("NodeMAC ignores parent counter — child replayable")
	}
	if e.NodeMAC(101, 2, 9, 8, packed) == mac {
		t.Fatal("NodeMAC ignores address")
	}
	if e.NodeMAC(100, 3, 9, 8, packed) == mac {
		t.Fatal("NodeMAC ignores node id")
	}
}

func TestNodeMACArityBinding(t *testing.T) {
	// Two nodes of different arity can share a packed image (trailing
	// zero locals pack away); the arity word must still separate them.
	e := testEngine()
	packed := []uint64{5, 0}
	a := e.NodeMAC(1, 1, 0, 1, packed)
	b := e.NodeMAC(1, 1, 0, 4, packed)
	if a == b {
		t.Fatal("NodeMAC does not bind the node arity")
	}
}

// TestNodeMACKAT pins the node-MAC definition across binaries: snapshots
// carry node MACs verbatim, so a silent change to the hash layout (packed
// words, arity/parent header, mask domain) would orphan every snapshot
// written by an older build. Values generated by this test's own failure
// output at the time the packed layout landed.
func TestNodeMACKAT(t *testing.T) {
	e := NewEngine(KeyFromBytes([]byte("kat-key")))
	packed := []uint64{3, 0x0004000300020001}
	got := e.NodeMAC(0x1000, 1<<24|2, 7, 4, packed)
	const want = uint64(0xef14821b105af892)
	if got != want {
		t.Fatalf("NodeMAC KAT drifted: got %#x, want %#x", got, want)
	}
	ct := e.EncryptLine(Tweak{GUAddr: 0x1000, Line: 2, Counter: 7}, line(1))
	gotLine := e.LineMAC(Tweak{GUAddr: 0x1000, Line: 2, Counter: 7}, ct)
	const wantLine = uint64(0x950d829ba287c6f1)
	if gotLine != wantLine {
		t.Fatalf("LineMAC KAT drifted: got %#x, want %#x", gotLine, wantLine)
	}
}

func TestSealUnsealRoundTrip(t *testing.T) {
	e := testEngine()
	aad := []byte("root-metadata")
	pt := []byte("the MMT root value")
	box := e.Seal(7, aad, pt)
	if len(box) != len(pt)+SealOverhead {
		t.Fatalf("sealed size %d, want %d", len(box), len(pt)+SealOverhead)
	}
	got, err := e.Unseal(7, aad, box)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, pt) {
		t.Fatal("unseal returned wrong plaintext")
	}
}

func TestUnsealRejectsTamper(t *testing.T) {
	e := testEngine()
	box := e.Seal(7, []byte("aad"), []byte("secret"))
	cases := map[string]func() ([]byte, error){
		"flipped ciphertext bit": func() ([]byte, error) {
			mut := append([]byte(nil), box...)
			mut[0] ^= 1
			return e.Unseal(7, []byte("aad"), mut)
		},
		"wrong aad": func() ([]byte, error) {
			return e.Unseal(7, []byte("AAD"), box)
		},
		"wrong unique (replayed at other version)": func() ([]byte, error) {
			return e.Unseal(8, []byte("aad"), box)
		},
		"wrong key": func() ([]byte, error) {
			return NewEngine(KeyFromBytes([]byte("other"))).Unseal(7, []byte("aad"), box)
		},
		"truncated": func() ([]byte, error) {
			return e.Unseal(7, []byte("aad"), box[:len(box)-1])
		},
	}
	for name, f := range cases {
		if _, err := f(); err != ErrAuth {
			t.Errorf("%s: err = %v, want ErrAuth", name, err)
		}
	}
}

func TestKeyFromBytesDeterministic(t *testing.T) {
	if KeyFromBytes([]byte("x")) != KeyFromBytes([]byte("x")) {
		t.Fatal("KeyFromBytes not deterministic")
	}
	if KeyFromBytes([]byte("x")) == KeyFromBytes([]byte("y")) {
		t.Fatal("KeyFromBytes collision on different seeds")
	}
}

func TestNewRandomKeyUnique(t *testing.T) {
	if NewRandomKey() == NewRandomKey() {
		t.Fatal("two random keys collided")
	}
}

func TestKeyStringDoesNotLeakWholeKey(t *testing.T) {
	k := KeyFromBytes([]byte("secret"))
	s := k.String()
	if len(s) > 20 {
		t.Fatalf("Key.String() too revealing: %q", s)
	}
}

func BenchmarkEncryptLine(b *testing.B) {
	e := testEngine()
	pt := line(0)
	tw := Tweak{GUAddr: 1, Counter: 1}
	b.SetBytes(LineSize)
	for i := 0; i < b.N; i++ {
		tw.Counter++
		e.EncryptLine(tw, pt)
	}
}

func BenchmarkLineMAC(b *testing.B) {
	e := testEngine()
	ct := e.EncryptLine(Tweak{GUAddr: 1, Counter: 1}, line(0))
	b.SetBytes(LineSize)
	for i := 0; i < b.N; i++ {
		e.LineMAC(Tweak{GUAddr: 1, Counter: uint64(i)}, ct)
	}
}
