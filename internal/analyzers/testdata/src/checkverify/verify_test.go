package checkverify

// Benchmarks legitimately discard verdicts when they measure cost only;
// the invariant binds non-test code, so nothing here is flagged.
func testOnlyDiscard() {
	VerifySeal(1)
	_ = VerifyReport(2)
}
