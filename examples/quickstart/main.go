// Quickstart: two machines, one secure buffer, one delegation.
//
// This is the paper's core scenario end to end: both machines attest to
// the authority, two enclaves establish a keyed link across the untrusted
// interconnect, and a 2 MB secure buffer migrates from one machine to the
// other as an MMT closure — no re-encryption, ownership transferred.
//
//	go run ./examples/quickstart
//	go run ./examples/quickstart -trace trace.json   # + Chrome trace export
//
// With -trace, the run records cycle-stamped spans and counters from
// every layer (all timed on the simulated clocks) and writes a Chrome
// trace-event JSON file — open it in chrome://tracing or Perfetto.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"mmt"
)

func main() {
	tracePath := flag.String("trace", "", "write a Chrome trace-event JSON file of the run")
	flag.Parse()

	var opts []mmt.Option
	var sink *mmt.TraceSink
	if *tracePath != "" {
		sink = mmt.NewTraceSink()
		opts = append(opts, mmt.WithTracing(sink))
	}
	cluster, err := mmt.New(opts...)
	if err != nil {
		log.Fatal(err)
	}
	alice, err := cluster.AddMachine("alice")
	if err != nil {
		log.Fatal(err)
	}
	bob, err := cluster.AddMachine("bob")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("attested: alice=node %d, bob=node %d\n", alice.NodeID(), bob.NodeID())

	producer := alice.Spawn("producer", []byte("producer-code-v1"))
	consumer := bob.Spawn("consumer", []byte("consumer-code-v1"))
	link, err := cluster.Connect(producer, consumer)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("link established: %s\n", link.ID())

	buf, err := link.NewBuffer(producer)
	if err != nil {
		log.Fatal(err)
	}
	secret := []byte("model weights, round 17: [0.42, -1.3, 2.7, ...]")
	if err := buf.Write(0, secret); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %d bytes into a %d-byte secure buffer on alice\n", len(secret), buf.Size())

	if err := link.Delegate(buf, mmt.OwnershipTransfer); err != nil {
		log.Fatal(err)
	}
	got, err := link.Receive(consumer)
	if err != nil {
		log.Fatal(err)
	}
	data, err := got.Read(0, len(secret))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("bob received: %q\n", data)
	fmt.Printf("simulated time — alice: %v, bob: %v\n", alice.Clock().Now(), bob.Clock().Now())

	if _, err := buf.Read(0, 1); err != nil {
		fmt.Println("alice's copy is gone (ownership transferred), as it should be")
	}

	if sink != nil {
		f, err := os.Create(*tracePath)
		if err != nil {
			log.Fatal(err)
		}
		if err := sink.WriteChromeTrace(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s — open in chrome://tracing or https://ui.perfetto.dev\n", *tracePath)
		fmt.Print(sink.Summary())
	}
}
