package tree

import (
	"testing"
)

// TestTableVGeometry checks the closure ("MMT Size") and SoC root-storage
// numbers of the paper's Table V: for 2 GB of secure memory,
//
//	2-level: 64 KB closures, 256 KB of roots
//	3-level:  2 MB closures,   8 KB of roots
//	4-level: 64 MB closures,  256 B of roots
func TestTableVGeometry(t *testing.T) {
	const secureMemory = 2 << 30
	cases := []struct {
		levels   int
		dataSize int
		rootSoC  int
	}{
		{2, 64 << 10, 256 << 10},
		{3, 2 << 20, 8 << 10},
		{4, 64 << 20, 256},
	}
	for _, c := range cases {
		g := ForLevels(c.levels)
		if got := g.DataSize(); got != c.dataSize {
			t.Errorf("%d-level DataSize = %d, want %d", c.levels, got, c.dataSize)
		}
		trees := secureMemory / g.DataSize()
		if got := trees * g.RootSoCBytes(); got != c.rootSoC {
			t.Errorf("%d-level root storage for 2GB = %d, want %d", c.levels, got, c.rootSoC)
		}
	}
}

func TestForLevelsArities(t *testing.T) {
	g := ForLevels(3)
	want := []int{16, 32, 64}
	for i, a := range want {
		if g.Arities[i] != a {
			t.Fatalf("3-level arities = %v, want %v", g.Arities, want)
		}
	}
	if g1 := ForLevels(1); g1.Arities[0] != 64 {
		t.Fatalf("1-level arity = %v, want [64]", g1.Arities)
	}
}

func TestForLevelsPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	ForLevels(0)
}

func TestGeometryValidate(t *testing.T) {
	if err := (Geometry{}).Validate(); err == nil {
		t.Error("empty geometry accepted")
	}
	if err := (Geometry{Arities: []int{1}}).Validate(); err == nil {
		t.Error("arity 1 accepted")
	}
	if err := (Geometry{Arities: []int{4}, LocalBits: 40}).Validate(); err == nil {
		t.Error("40 local bits accepted")
	}
	if err := ForLevels(3).Validate(); err != nil {
		t.Errorf("default geometry rejected: %v", err)
	}
}

func TestNodeCounts(t *testing.T) {
	g := ForLevels(3) // 16, 32, 64
	if g.NodesAtLevel(0) != 1 || g.NodesAtLevel(1) != 16 || g.NodesAtLevel(2) != 512 {
		t.Fatalf("node counts: %d %d %d", g.NodesAtLevel(0), g.NodesAtLevel(1), g.NodesAtLevel(2))
	}
	if g.TotalNodes() != 529 {
		t.Fatalf("TotalNodes = %d, want 529", g.TotalNodes())
	}
	if g.Lines() != 32768 {
		t.Fatalf("Lines = %d, want 32768", g.Lines())
	}
}

func TestMetaSizeFractionReasonable(t *testing.T) {
	// The 3-level closure metadata must stay a modest fraction of the data
	// (the paper's delegation costs ~15% more than a raw remote write).
	g := ForLevels(3)
	frac := float64(g.MetaSize()) / float64(g.DataSize())
	if frac < 0.10 || frac > 0.25 {
		t.Fatalf("meta/data fraction = %.3f, want ~0.10-0.25", frac)
	}
	if g.MetaSize()%LineSize != 0 {
		t.Fatal("MetaSize not line aligned")
	}
}

func TestPathMath(t *testing.T) {
	g := ForLevels(3) // 16, 32, 64 -> 32768 lines
	nodeIdx, slot := g.path(0)
	for l := 0; l < 3; l++ {
		if nodeIdx[l] != 0 || slot[l] != 0 {
			t.Fatalf("path(0) level %d = (%d,%d), want (0,0)", l, nodeIdx[l], slot[l])
		}
	}
	// Last line: every slot is max.
	nodeIdx, slot = g.path(g.Lines() - 1)
	if slot[2] != 63 || slot[1] != 31 || slot[0] != 15 {
		t.Fatalf("path(last) slots = %v", slot)
	}
	if nodeIdx[2] != 511 || nodeIdx[1] != 15 || nodeIdx[0] != 0 {
		t.Fatalf("path(last) nodes = %v", nodeIdx)
	}
	// Line 64 is slot 0 of leaf 1.
	nodeIdx, slot = g.path(64)
	if nodeIdx[2] != 1 || slot[2] != 0 || nodeIdx[1] != 0 || slot[1] != 1 {
		t.Fatalf("path(64) = %v / %v", nodeIdx, slot)
	}
}

func TestPathPanicsOutOfRange(t *testing.T) {
	g := ForLevels(2)
	for _, line := range []int{-1, g.Lines()} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("path(%d): expected panic", line)
				}
			}()
			g.path(line)
		}()
	}
}

func TestPathConsistentWithLinearIndex(t *testing.T) {
	// Reconstructing the line from (nodeIdx, slot) must round-trip.
	g := Geometry{Arities: []int{3, 4, 5}}
	for line := 0; line < g.Lines(); line++ {
		nodeIdx, slot := g.path(line)
		recon := 0
		for l := 0; l < g.Levels(); l++ {
			recon = recon*g.Arities[l] + slot[l]
		}
		if recon != line {
			t.Fatalf("line %d reconstructed as %d", line, recon)
		}
		// nodeIdx consistency: child node index = parent*arity + slot.
		for l := 1; l < g.Levels(); l++ {
			if nodeIdx[l] != nodeIdx[l-1]*g.Arities[l-1]+slot[l-1] {
				t.Fatalf("line %d level %d node index inconsistent", line, l)
			}
		}
	}
}
