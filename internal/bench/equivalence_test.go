package bench

import (
	"bytes"
	"testing"

	"mmt/internal/mapreduce"
	"mmt/internal/sim"
	"mmt/internal/trace"
	"mmt/internal/tree"
	"mmt/internal/workload"
)

// This file is the determinism proof for the parallel sweep runner: every
// figure's sidecar JSON — and for the traced sweeps the full Chrome trace
// export — must be byte-identical whether the sweep runs on one goroutine
// or fanned out. The contract being exercised is internal/par's (results
// merged in input order) plus the callers' (every sweep point owns its
// clock, controller and sink; merges happen serially).

// sidecarBytes runs one figure's sidecar at the given worker count.
func sidecarBytes(t *testing.T, fig string, workers, accesses int) []byte {
	t.Helper()
	SetWorkers(workers)
	defer SetWorkers(1)
	sc, err := SidecarForFigure(fig, accesses)
	if err != nil {
		t.Fatalf("fig %s workers=%d: %v", fig, workers, err)
	}
	if err := sc.Check(); err != nil {
		t.Fatalf("fig %s workers=%d: %v", fig, workers, err)
	}
	b, err := sc.JSON()
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestSidecarSerialParallelEquivalence: BENCH_fig{10..14}.json is the
// same byte stream at any worker count.
func TestSidecarSerialParallelEquivalence(t *testing.T) {
	accesses := 2_000
	figs := SidecarFigures
	if raceEnabled || testing.Short() {
		// The race detector slows the functional crypto ~10x; figures 11
		// and 12 still cover both parallel sweep shapes (engine cells and
		// mapreduce jobs).
		figs = []string{"11", "12"}
	}
	for _, fig := range figs {
		serial := sidecarBytes(t, fig, 1, accesses)
		for _, workers := range []int{4, 8} {
			if parallel := sidecarBytes(t, fig, workers, accesses); !bytes.Equal(serial, parallel) {
				t.Errorf("fig %s: sidecar differs between workers=1 and workers=%d\nserial:\n%s\nparallel:\n%s",
					fig, workers, serial, parallel)
			}
		}
	}
}

// TestFig11TraceSerialParallelEquivalence: the fig11 sweep's full trace —
// process registration order, span order, every cycle stamp — survives
// the fan-out byte-for-byte.
func TestFig11TraceSerialParallelEquivalence(t *testing.T) {
	traceBytes := func(workers int) []byte {
		SetWorkers(workers)
		defer SetWorkers(1)
		sink := trace.NewSink()
		if _, _, err := fig11Traced(2_000, sink); err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := sink.WriteChromeTrace(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	serial := traceBytes(1)
	if parallel := traceBytes(8); !bytes.Equal(serial, parallel) {
		t.Fatal("fig11 trace differs between workers=1 and workers=8")
	}
}

// TestFig11HistEventsSerialParallelEquivalence: the observability layer
// rides the same determinism contract — the mmt-hist/v1 histogram export
// and the mmt-events/v1 security-event ledger export of a fig11 sweep
// (including its migration-latency scenario, which exercises the full
// delegation protocol) are byte-identical at 1/2/4/8 workers.
func TestFig11HistEventsSerialParallelEquivalence(t *testing.T) {
	exports := func(workers int) ([]byte, []byte) {
		SetWorkers(workers)
		defer SetWorkers(1)
		sink := trace.NewSink()
		if _, _, err := fig11Traced(2_000, sink); err != nil {
			t.Fatal(err)
		}
		var hist, events bytes.Buffer
		if err := sink.WriteHistJSON(&hist); err != nil {
			t.Fatal(err)
		}
		if err := sink.WriteEventsJSONL(&events); err != nil {
			t.Fatal(err)
		}
		return hist.Bytes(), events.Bytes()
	}
	serialHist, serialEvents := exports(1)
	if len(serialEvents) == 0 || !bytes.Contains(serialEvents, []byte("migration-send")) {
		t.Fatalf("expected migration events in the ledger export, got:\n%s", serialEvents)
	}
	for _, workers := range []int{2, 4, 8} {
		hist, events := exports(workers)
		if !bytes.Equal(serialHist, hist) {
			t.Errorf("workers=%d: mmt-hist/v1 export differs from serial", workers)
		}
		if !bytes.Equal(serialEvents, events) {
			t.Errorf("workers=%d: mmt-events/v1 export differs from serial", workers)
		}
	}
}

// TestMapReduceSerialParallelEquivalence: one traced MMT-shuffle job —
// output, simulated times, shuffle bytes and the full trace — is
// identical whether Config.Workers is 1 or saturated.
func TestMapReduceSerialParallelEquivalence(t *testing.T) {
	geo := tree.ForLevels(3)
	input := 64 << 10
	corpus := workload.Corpus(12, input)
	run := func(workers int) (*mapreduce.Result, []byte) {
		sink := trace.NewSink()
		cfg := mapreduce.Config{
			Mappers: 3, Reducers: 2,
			Mode:              mapreduce.MMT,
			Profile:           sim.Gem5Profile(),
			Geometry:          geo,
			PoolRegions:       2*input/geo.DataSize() + 4,
			MapCyclesPerByte:  8,
			ReduceCyclesPerKV: 40,
			Trace:             sink,
			Workers:           workers,
		}
		res, err := mapreduce.Run(cfg, corpus, mapreduce.WordCountMapper, mapreduce.WordCountReducer)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		var buf bytes.Buffer
		if err := sink.WriteChromeTrace(&buf); err != nil {
			t.Fatal(err)
		}
		return res, buf.Bytes()
	}
	serialRes, serialTrace := run(1)
	for _, workers := range []int{2, 8} {
		res, tr := run(workers)
		if res.Elapsed != serialRes.Elapsed || res.ShuffleBytes != serialRes.ShuffleBytes {
			t.Errorf("workers=%d: elapsed/shuffle (%v, %d) != serial (%v, %d)",
				workers, res.Elapsed, res.ShuffleBytes, serialRes.Elapsed, serialRes.ShuffleBytes)
		}
		if len(res.Output) != len(serialRes.Output) {
			t.Fatalf("workers=%d: output size %d != %d", workers, len(res.Output), len(serialRes.Output))
		}
		for k, v := range serialRes.Output {
			if res.Output[k] != v {
				t.Errorf("workers=%d: output[%q] = %d, want %d", workers, k, res.Output[k], v)
			}
		}
		if !bytes.Equal(tr, serialTrace) {
			t.Errorf("workers=%d: trace differs from serial", workers)
		}
	}
}
