package lockorder

// Test files are exempt from the ordering policy: this opposite-order
// acquisition must produce no findings.
func testOnlyOrder(p *pair) {
	p.g.Lock()
	p.f.Lock()
	p.f.Unlock()
	p.g.Unlock()
}
