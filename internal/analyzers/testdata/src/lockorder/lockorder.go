// Package lockorder exercises the lockorder analyzer: a global
// acquisition order is derived from every Lock/RLock site, and both
// inconsistent orders (ABBA) and re-acquisitions while held are flagged.
package lockorder

import "sync"

type shared struct {
	a  sync.Mutex
	b  sync.Mutex
	mu sync.RWMutex
}

// ab and ba acquire the same pair in opposite orders — the classic ABBA
// shape, flagged at both witnessing acquisition sites.
func ab(s *shared) {
	s.a.Lock()
	s.b.Lock() // want "lock order conflict"
	s.b.Unlock()
	s.a.Unlock()
}

func ba(s *shared) {
	s.b.Lock()
	s.a.Lock() // want "lock order conflict"
	s.a.Unlock()
	s.b.Unlock()
}

// again re-acquires a mutex that is still held.
func again(s *shared) {
	s.a.Lock()
	s.a.Lock() // want "self-deadlock"
	s.a.Unlock()
	s.a.Unlock()
}

// rlockFirst orders the read lock before a consistently; one direction
// only, so it is silent.
func rlockFirst(s *shared) {
	s.mu.RLock()
	s.a.Lock()
	s.a.Unlock()
	s.mu.RUnlock()
}

// other exercises the interprocedural summaries on a separate lock pair.
type other struct {
	c sync.Mutex
	d sync.Mutex
}

func lockD(o *other) {
	o.d.Lock()
	o.d.Unlock()
}

// cThenD acquires d via lockD's summary while holding c; dThenC acquires
// them directly in the opposite order — a cross-function ABBA.
func cThenD(o *other) {
	o.c.Lock()
	lockD(o) // want "lock order conflict"
	o.c.Unlock()
}

func dThenC(o *other) {
	o.d.Lock()
	o.c.Lock() // want "lock order conflict"
	o.c.Unlock()
	o.d.Unlock()
}

// reacquire calls a function whose summary re-acquires the held mutex.
func reacquire(o *other) {
	o.d.Lock()
	lockD(o) // want "may re-acquire"
	o.d.Unlock()
}

// reacquireAllowed is the suppression idiom: the justification must
// argue the instances are provably distinct.
func reacquireAllowed(o *other, p *other) {
	o.d.Lock()
	//mmt:allow lockorder: p is a distinct instance passed by the caller
	lockD(p)
	o.d.Unlock()
}

// pair is consistently ordered everywhere — silent, including with
// deferred unlocks (which hold until return) and early unlock.
type pair struct {
	f sync.Mutex
	g sync.Mutex
}

func fg1(p *pair) {
	p.f.Lock()
	p.g.Lock()
	p.f.Unlock()
	p.g.Unlock()
}

func fg2(p *pair) {
	p.f.Lock()
	defer p.f.Unlock()
	p.g.Lock()
	defer p.g.Unlock()
}
