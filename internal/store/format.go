// Package store implements the mmt-store/v1 on-disk format: a two-file,
// crash-consistent record store used for cluster snapshots and continuous
// dirty-node checkpointing (modeled on the mpt disk design: whole state in
// memory, dirty deltas streamed in sequential batches, root hash verified
// on reload).
//
// Layout:
//
//	data.mmt    16-byte header ("mmt-store/v1" + 4 reserved zero bytes)
//	            followed by append-only records:
//	              type u8 | payload-len u32 LE | payload | crc32(type..payload) u32 LE
//	commit.mmt  two alternating 64-byte commit slots at offsets 0 and 64:
//	              "mmtc" | epoch u64 | dataLen u64 | rootHash[32] | crc32 u32
//	              (padded with zeros to 64 bytes)
//
// The commit protocol: flush staged records to data.mmt, fsync it, then
// write the commit record into the slot epoch%2 and fsync. Recovery reads
// both slots, picks the valid one with the highest epoch, and parses
// data.mmt only up to its dataLen — so a reader always sees either the
// old or the new committed state, never a torn one. Per-record CRCs catch
// media corruption inside the committed prefix.
package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// Magic is the data-file magic. The version is part of the string: any
// incompatible change to the record layout bumps it.
const Magic = "mmt-store/v1"

// HeaderSize is the data-file header length (magic + 4 reserved bytes).
const HeaderSize = 16

// CommitSlotSize is the size of one commit slot; the commit file holds
// exactly two.
const CommitSlotSize = 64

// commitMagic tags a commit slot.
const commitMagic = "mmtc"

// Format errors.
var (
	ErrBadMagic  = errors.New("store: bad data-file magic (not mmt-store/v1)")
	ErrCorrupt   = errors.New("store: corrupt record")
	ErrNoCommit  = errors.New("store: no valid commit record")
	ErrTruncated = errors.New("store: data file shorter than committed length")
)

// RecordType tags a record's payload. The store itself is agnostic: type
// meanings belong to the layer writing them (the snapshot codec, the
// benchmark checkpointer).
type RecordType uint8

// Record is one framed payload in the data file.
type Record struct {
	Type    RecordType
	Payload []byte
}

// recordHeaderSize is type byte + 4-byte payload length.
const recordHeaderSize = 5

// encodedLen reports the framed size of a record.
func encodedLen(payload int) int { return recordHeaderSize + payload + 4 }

// appendRecord frames r onto dst: type, length, payload, CRC32 (IEEE) over
// type..payload.
func appendRecord(dst []byte, r Record) []byte {
	start := len(dst)
	dst = append(dst, byte(r.Type))
	var lenBuf [4]byte
	binary.LittleEndian.PutUint32(lenBuf[:], uint32(len(r.Payload)))
	dst = append(dst, lenBuf[:]...)
	dst = append(dst, r.Payload...)
	sum := crc32.ChecksumIEEE(dst[start:])
	binary.LittleEndian.PutUint32(lenBuf[:], sum)
	return append(dst, lenBuf[:]...)
}

// parseRecords decodes a committed record region. Any framing or CRC
// error inside it is ErrCorrupt: the commit protocol guarantees committed
// bytes are whole, so damage here is media corruption, not a crash.
func parseRecords(data []byte) ([]Record, error) {
	var out []Record
	off := 0
	for off < len(data) {
		if len(data)-off < recordHeaderSize+4 {
			return nil, fmt.Errorf("%w: truncated frame at offset %d", ErrCorrupt, off)
		}
		n := int(binary.LittleEndian.Uint32(data[off+1:]))
		end := off + recordHeaderSize + n
		if end+4 > len(data) {
			return nil, fmt.Errorf("%w: record at offset %d overruns committed region", ErrCorrupt, off)
		}
		want := binary.LittleEndian.Uint32(data[end:])
		if crc32.ChecksumIEEE(data[off:end]) != want {
			return nil, fmt.Errorf("%w: CRC mismatch at offset %d", ErrCorrupt, off)
		}
		out = append(out, Record{
			Type:    RecordType(data[off]),
			Payload: append([]byte(nil), data[off+recordHeaderSize:end]...),
		})
		off = end + 4
	}
	return out, nil
}

// CommitRecord pins one committed state: the epoch (strictly increasing),
// the committed data-file length, and the root hash of the state the
// records encode (verified against the reloaded state).
type CommitRecord struct {
	Epoch    uint64
	DataLen  uint64
	RootHash [32]byte
}

// encode serializes the commit record into one slot.
func (c CommitRecord) encode() [CommitSlotSize]byte {
	var out [CommitSlotSize]byte
	copy(out[:4], commitMagic)
	binary.LittleEndian.PutUint64(out[4:], c.Epoch)
	binary.LittleEndian.PutUint64(out[12:], c.DataLen)
	copy(out[20:52], c.RootHash[:])
	binary.LittleEndian.PutUint32(out[52:], crc32.ChecksumIEEE(out[:52]))
	return out
}

// decodeCommit parses one slot; ok is false for empty, torn or corrupt
// slots (recovery just skips them).
func decodeCommit(b []byte) (CommitRecord, bool) {
	if len(b) < CommitSlotSize || string(b[:4]) != commitMagic {
		return CommitRecord{}, false
	}
	if crc32.ChecksumIEEE(b[:52]) != binary.LittleEndian.Uint32(b[52:]) {
		return CommitRecord{}, false
	}
	var c CommitRecord
	c.Epoch = binary.LittleEndian.Uint64(b[4:])
	c.DataLen = binary.LittleEndian.Uint64(b[12:])
	copy(c.RootHash[:], b[20:52])
	return c, true
}

// header builds the data-file header.
func header() [HeaderSize]byte {
	var h [HeaderSize]byte
	copy(h[:], Magic)
	return h
}

// checkHeader validates a data-file header.
func checkHeader(h []byte) error {
	if len(h) < HeaderSize || string(h[:len(Magic)]) != Magic {
		return ErrBadMagic
	}
	return nil
}
