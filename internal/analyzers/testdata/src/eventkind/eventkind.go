// Package eventkind exercises the eventkind analyzer: every
// (*trace.Probe).Event call site must pass a compile-time constant kind.
package eventkind

import (
	"errors"

	"mmt/internal/sim"
	"mmt/internal/trace"
)

var errReplay = errors.New("replay")

// constantKinds is the sanctioned shape: classification branches
// explicitly and each branch names its kind as a constant.
func constantKinds(p *trace.Probe, now sim.Time, addr uint64, err error) {
	switch {
	case errors.Is(err, errReplay):
		p.Event(trace.EvReplayReject, now, addr, "replayed closure")
	case err != nil:
		p.Event(trace.EvMigrationReject, now, addr, err.Error())
	default:
		p.Event(trace.EvMigrationAccept, now, addr, "closure installed")
	}
}

// localConst: a named constant of the right type is still compile-time.
func localConst(p *trace.Probe, now sim.Time) {
	const mine = trace.EvCapDestroy
	p.Event(mine, now, 0, "capability freed")
}

// computedKind derives the kind from data — exactly the shape that can
// leave the ledger's closed vocabulary or mislabel a verdict.
func computedKind(p *trace.Probe, now sim.Time, rejected bool) {
	kind := trace.EvMigrationAccept
	if rejected {
		kind = trace.EvMigrationReject
	}
	p.Event(kind, now, 0, "verdict") // want "event kind must be a compile-time constant"
}

// arithmeticKind: offsets into the enum are just as unauditable.
func arithmeticKind(p *trace.Probe, now sim.Time, verdict int) {
	p.Event(trace.EvIntegrityFail+trace.EventKind(verdict), now, 0, "x") // want "event kind must be a compile-time constant"
}

// allowed demonstrates suppression for a justified dynamic site.
func allowed(p *trace.Probe, now sim.Time, kind trace.EventKind) {
	//mmt:allow eventkind: fixture exercises the suppression path
	p.Event(kind, now, 0, "suppressed")
}

// notTheProbe: other methods named Event (or functions) stay out of
// scope.
type fake struct{}

func (fake) Event(kind int) {}

func notTheProbe(f fake, k int) {
	f.Event(k)
}
