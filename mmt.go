// Package mmt is the public face of this repository: a functional
// simulation of "Efficient Distributed Secure Memory with Migratable
// Merkle Tree" (HPCA 2023). It builds distributed secure memory out of
// per-machine MMT controllers, a global attestation authority, trusted
// monitors, and an untrusted interconnect, and lets enclaves move secure
// buffers between machines with MMT closure delegation — no
// re-encryption, with confidentiality, integrity and freshness enforced
// end to end.
//
// The five-minute tour:
//
//	cluster, _ := mmt.New()
//	alice, _ := cluster.AddMachine("alice")
//	bob, _ := cluster.AddMachine("bob")
//
//	sender := alice.Spawn("producer", []byte("app-code"))
//	receiver := bob.Spawn("consumer", []byte("app-code"))
//
//	link, _ := cluster.Connect(sender, receiver)
//	buf, _ := link.NewBuffer(sender)
//	buf.Write(0, []byte("secret bytes"))
//	link.Delegate(buf, mmt.OwnershipTransfer)
//
//	got, _ := link.Receive(receiver)
//	data, _ := got.Read(0, 12)
//
// Everything observable is real: the bytes on the simulated wire are the
// encrypted closure (point a netsim adversary at them and the receiver
// rejects the transfer), and all timing comes from the calibrated
// simulated clocks, not the host.
package mmt

import (
	"fmt"

	"mmt/internal/attest"
	"mmt/internal/core"
	"mmt/internal/enclave"
	"mmt/internal/engine"
	"mmt/internal/mem"
	"mmt/internal/monitor"
	"mmt/internal/netsim"
	"mmt/internal/sim"
	"mmt/internal/tree"
)

// TransferMode selects delegation semantics (§V-B2 of the paper).
type TransferMode = core.TransferMode

// Re-exported transfer modes.
const (
	// OwnershipTransfer moves the buffer: the sender's copy is invalidated
	// once the receiver accepts.
	OwnershipTransfer = core.OwnershipTransfer
	// OwnershipCopy sends a read-only snapshot; the sender keeps writing.
	OwnershipCopy = core.OwnershipCopy
)

// Options configures a Cluster. The zero value gives the paper's default
// system: the Gem5 cost profile, 3-level (2 MB) trees, 8 secure regions
// per machine and a zero-latency interconnect.
//
// Deprecated: construct clusters with New and functional options
// (WithProfile, WithTreeLevels, WithRegions, WithNetLatency,
// WithTracing). Options and NewCluster remain for one release so
// existing callers migrate incrementally.
type Options struct {
	// Profile is the timing model; sim.Gem5Profile() if nil.
	Profile *sim.Profile
	// TreeLevels is the MMT depth (2, 3 or 4; default 3).
	TreeLevels int
	// RegionsPerMachine sizes each machine's secure-memory pool.
	RegionsPerMachine int
	// NetLatency is the one-way interconnect propagation delay.
	NetLatency sim.Time
	// Trace, when non-nil, enables cycle-stamped tracing on every machine.
	Trace *TraceSink
	// DebugAddr, when non-empty, starts the read-only /debug HTTP server
	// on that address (see WithDebugServer).
	DebugAddr string
}

// Cluster is a set of attested machines on a shared untrusted network,
// rooted in one manufacturer and one attestation authority.
type Cluster struct {
	opts        Options
	geometry    tree.Geometry
	mfr         *attest.Manufacturer
	authority   *attest.Authority
	measurement attest.Measurement
	net         *netsim.Network
	machines    map[string]*Machine
	debug       *debugServer
}

// NewCluster builds the trust roots and the interconnect.
//
// Deprecated: use New with functional options; NewCluster(Options{...})
// and New(With...) build identical clusters.
func NewCluster(opts Options) (*Cluster, error) {
	return newCluster(opts)
}

func newCluster(opts Options) (*Cluster, error) {
	if opts.Profile == nil {
		opts.Profile = sim.Gem5Profile()
	}
	if opts.TreeLevels == 0 {
		opts.TreeLevels = 3
	}
	if opts.RegionsPerMachine == 0 {
		opts.RegionsPerMachine = 8
	}
	geo := tree.ForLevels(opts.TreeLevels)
	if err := geo.Validate(); err != nil {
		return nil, err
	}
	mfr, err := attest.NewManufacturer()
	if err != nil {
		return nil, err
	}
	authority, err := attest.NewAuthority(mfr.PublicKey())
	if err != nil {
		return nil, err
	}
	measurement := attest.MeasureSoftware([]byte("mmt-monitor-v1"))
	authority.AllowMeasurement(measurement)
	c := &Cluster{
		opts:        opts,
		geometry:    geo,
		mfr:         mfr,
		authority:   authority,
		measurement: measurement,
		net:         netsim.NewNetwork(opts.NetLatency),
		machines:    make(map[string]*Machine),
	}
	if opts.DebugAddr != "" {
		dbg, err := startDebugServer(opts.DebugAddr, opts.Trace)
		if err != nil {
			return nil, err
		}
		c.debug = dbg
	}
	return c, nil
}

// DebugAddr reports the listening address of the /debug server ("" when
// WithDebugServer was not used). With a ":0" request this is the actual
// port picked by the kernel.
func (c *Cluster) DebugAddr() string {
	if c.debug == nil {
		return ""
	}
	return c.debug.addr()
}

// Close releases host-side resources — today that is only the /debug
// HTTP server. The simulated state is unaffected; a cluster without a
// debug server needs no Close.
func (c *Cluster) Close() error {
	if c.debug == nil {
		return nil
	}
	return c.debug.close()
}

// Network exposes the untrusted interconnect, mainly so callers can attach
// adversaries (netsim.Interposer) and watch the protocol reject them.
func (c *Cluster) Network() *netsim.Network { return c.net }

// Authority exposes the attestation authority (for policy management).
func (c *Cluster) Authority() *attest.Authority { return c.authority }

// Geometry reports the cluster's tree geometry.
func (c *Cluster) Geometry() tree.Geometry { return c.geometry }

// Machine is one attested host: controller, monitor and TEEOS runtime.
type Machine struct {
	name    string
	cluster *Cluster
	mon     *monitor.Monitor
	rt      *enclave.Runtime
}

// AddMachine provisions a machine with the cluster's manufacturer, boots
// its monitor through global attestation, and attaches it to the network.
func (c *Cluster) AddMachine(name string) (*Machine, error) {
	if _, dup := c.machines[name]; dup {
		return nil, fmt.Errorf("mmt: machine %q already exists", name)
	}
	machine, err := c.mfr.Provision(name)
	if err != nil {
		return nil, err
	}
	pm := mem.New(mem.Config{
		Size:          c.opts.RegionsPerMachine * c.geometry.DataSize(),
		RegionSize:    c.geometry.DataSize(),
		MetaPerRegion: c.geometry.MetaSize(),
	})
	ctl, err := engine.New(pm, c.geometry, nil, c.opts.Profile)
	if err != nil {
		return nil, err
	}
	// One trace process per machine; Probe on a nil sink returns the
	// disabled (nil) probe, so an untraced cluster stays allocation-free.
	ctl.SetTrace(c.opts.Trace.Probe(name))
	mon := monitor.New(machine, c.measurement, c.authority.PublicKey(), ctl)
	if err := mon.Boot(c.authority); err != nil {
		return nil, fmt.Errorf("mmt: attesting %q: %w", name, err)
	}
	if err := mon.AttachNetwork(c.net, name); err != nil {
		return nil, err
	}
	m := &Machine{name: name, cluster: c, mon: mon, rt: enclave.NewRuntime(mon)}
	c.machines[name] = m
	return m, nil
}

// Machine looks up a machine by name.
func (c *Cluster) Machine(name string) (*Machine, bool) {
	m, ok := c.machines[name]
	return m, ok
}

// Name reports the machine's network name.
func (m *Machine) Name() string { return m.name }

// NodeID reports the machine's attested integrity-forest node id.
func (m *Machine) NodeID() uint16 { return uint16(m.mon.NodeID()) }

// Monitor exposes the machine's trusted monitor (advanced use).
func (m *Machine) Monitor() *monitor.Monitor { return m.mon }

// Clock reports the machine's simulated clock.
func (m *Machine) Clock() *sim.Clock { return m.mon.Node().Controller().Clock() }

// Enclave is a running enclave on one machine.
type Enclave struct {
	machine *Machine
	id      monitor.EnclaveID
	rt      *enclave.Enclave
}

// Spawn starts an enclave on the machine, measured from its code image.
func (m *Machine) Spawn(name string, image []byte) *Enclave {
	e := m.rt.Spawn(name, image)
	return &Enclave{machine: m, id: e.ID(), rt: e}
}

// Machine reports the enclave's host.
func (e *Enclave) Machine() *Machine { return e.machine }
