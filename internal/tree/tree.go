package tree

import (
	"encoding/binary"
	"errors"
	"fmt"

	"mmt/internal/crypt"
	"mmt/internal/trace"
)

// Node is one integrity-tree node: a shared global counter, per-slot local
// counters, and the node MAC. The effective counter of slot s is
// Global<<LocalBits | Local[s] (§V-A2's "global-local counter layout").
type Node struct {
	Global uint64
	Local  []uint32
	MAC    uint64
}

// Tree is one migratable Merkle tree's counter structure. It does not own
// the protected data or the per-line data MACs — the controller (package
// engine) does; Tree owns counters and node MACs, which together with the
// root counter pin both down.
//
// The root counter lives here but is conceptually stored in the SoC
// (trusted); everything else may live in the untrusted meta-zone.
type Tree struct {
	geo     Geometry
	rootCtr uint64
	levels  [][]Node
	probe   *trace.Probe // nil = tracing disabled
}

// SetTrace attaches a trace probe counting functional node MAC
// verifications and recomputations. Nil disables tracing.
func (t *Tree) SetTrace(p *trace.Probe) { t.probe = p }

// New builds a tree with all counters zero and MACs computed for guaddr
// under e. It returns an error if the geometry is invalid.
func New(geo Geometry, e *crypt.Engine, guaddr uint64) (*Tree, error) {
	if err := geo.Validate(); err != nil {
		return nil, err
	}
	t := &Tree{geo: geo, levels: make([][]Node, geo.Levels())}
	for l := range t.levels {
		nodes := make([]Node, geo.NodesAtLevel(l))
		for i := range nodes {
			nodes[i].Local = make([]uint32, geo.Arities[l])
		}
		t.levels[l] = nodes
	}
	t.RehashAll(e, guaddr)
	return t, nil
}

// Geometry reports the tree's shape.
func (t *Tree) Geometry() Geometry { return t.geo }

// RootCounter reports the trusted root counter.
func (t *Tree) RootCounter() uint64 { return t.rootCtr }

// SetRootCounter initialises the root counter. Users "can initialize the
// root counter with a given value when the MMT state is changed to valid"
// (§IV-B2); the delegation protocol relies on it only ever increasing
// afterwards. Callers must re-hash (RehashAll) afterwards since the top
// node MAC is keyed by the root counter.
func (t *Tree) SetRootCounter(v uint64) { t.rootCtr = v }

// BumpRootCounter increments the root counter by one and re-hashes the top
// level (whose MACs are keyed by it). The delegation protocol calls this
// when sealing a closure so that "the counter value in the sender is
// always larger than that in the receiver and is always increased during
// the delegation" (§IV-B2), even when no data write happened in between.
func (t *Tree) BumpRootCounter(e *crypt.Engine, guaddr uint64) {
	t.rootCtr++
	for i := range t.levels[0] {
		t.rehashNode(e, guaddr, 0, i)
	}
}

// Node returns the node at (level, index) for inspection. The returned
// pointer aliases tree state; tests use it to simulate tampering.
func (t *Tree) Node(level, index int) *Node { return &t.levels[level][index] }

// counter reports the effective counter of slot s in node (l, i).
func (t *Tree) counter(l, i, s int) uint64 {
	n := &t.levels[l][i]
	return n.Global<<t.geo.localBits() | uint64(n.Local[s])
}

// LeafCounter reports the effective counter protecting the given line;
// this is the counter the crypto engine mixes into the line's OTP and MAC.
func (t *Tree) LeafCounter(line int) uint64 {
	nodeIdx, slot := t.geo.path(line)
	L := t.geo.Levels()
	return t.counter(L-1, nodeIdx[L-1], slot[L-1])
}

// parentCounter reports the counter covering node (l, i): the root counter
// for level 0, otherwise the effective counter in the parent's slot.
func (t *Tree) parentCounter(l, i int) uint64 {
	if l == 0 {
		return t.rootCtr
	}
	parent := i / t.geo.Arities[l-1]
	slot := i % t.geo.Arities[l-1]
	return t.counter(l-1, parent, slot)
}

// nodeID packs a node's coordinates into the 32-bit id mixed into its MAC,
// preventing node splicing within one MMT.
func nodeID(level, index int) uint32 { return uint32(level)<<24 | uint32(index)&0xFFFFFF }

// effectiveCounters returns the effective counters of all slots in (l, i).
func (t *Tree) effectiveCounters(l, i int) []uint64 {
	n := &t.levels[l][i]
	out := make([]uint64, len(n.Local))
	hi := n.Global << t.geo.localBits()
	for s, lc := range n.Local {
		out[s] = hi | uint64(lc)
	}
	return out
}

// rehashNode recomputes the MAC of node (l, i).
func (t *Tree) rehashNode(e *crypt.Engine, guaddr uint64, l, i int) {
	t.probe.Count(trace.CtrTreeNodeRehashes, 1)
	t.levels[l][i].MAC = e.NodeMAC(guaddr, nodeID(l, i), t.parentCounter(l, i), t.effectiveCounters(l, i))
}

// RehashAll recomputes every node MAC bottom-up. Used after bulk
// initialisation or after SetRootCounter.
func (t *Tree) RehashAll(e *crypt.Engine, guaddr uint64) {
	for l := t.geo.Levels() - 1; l >= 0; l-- {
		for i := range t.levels[l] {
			t.rehashNode(e, guaddr, l, i)
		}
	}
}

// ErrIntegrity is returned when a node MAC check fails: the meta-zone or a
// transferred closure was tampered with, replayed, or decoded under the
// wrong key/address.
var ErrIntegrity = errors.New("tree: integrity check failed")

// verifyNode checks the MAC of node (l, i). The comparison goes through
// crypt.TagEqual: the stored MAC is attacker-controlled (it lives in the
// untrusted meta-zone or arrived in a closure), and a variable-time
// compare would leak how many tag bytes of a forgery were right.
func (t *Tree) verifyNode(e *crypt.Engine, guaddr uint64, l, i int) error {
	t.probe.Count(trace.CtrTreeNodeVerifies, 1)
	want := e.NodeMAC(guaddr, nodeID(l, i), t.parentCounter(l, i), t.effectiveCounters(l, i))
	if !crypt.TagEqual(t.levels[l][i].MAC, want) {
		return fmt.Errorf("%w: node level %d index %d", ErrIntegrity, l, i)
	}
	return nil
}

// VerifyPath checks node MACs from the leaf covering line up to the root
// counter — the integrity-tree engine's read-path check ("checks hashes
// stored in tree nodes recursively up to the MMT root", §V-A2).
func (t *Tree) VerifyPath(e *crypt.Engine, guaddr uint64, line int) error {
	nodeIdx, _ := t.geo.path(line)
	for l := t.geo.Levels() - 1; l >= 0; l-- {
		if err := t.verifyNode(e, guaddr, l, nodeIdx[l]); err != nil {
			return err
		}
	}
	return nil
}

// VerifyAll checks every node MAC; the closure-delegation engine runs this
// after unsealing a transferred root.
func (t *Tree) VerifyAll(e *crypt.Engine, guaddr uint64) error {
	for l := range t.levels {
		for i := range t.levels[l] {
			if err := t.verifyNode(e, guaddr, l, i); err != nil {
				return err
			}
		}
	}
	return nil
}

// UpdateResult describes the side effects of one write-path counter bump.
type UpdateResult struct {
	// LeafCounter is the new effective counter for the written line; the
	// caller re-encrypts the line under it.
	LeafCounter uint64
	// ReencryptLines lists the other lines whose counters changed because a
	// leaf-level local counter overflowed; the caller must re-encrypt and
	// re-MAC them at their new counters (returned by LeafCounter queries).
	ReencryptLines []int
	// NodesTouched counts node MAC recomputations (for cost accounting).
	NodesTouched int
	// Overflowed reports whether any level overflowed.
	Overflowed bool
}

// Update increments the counters along line's path — leaf slot, every
// interior slot, and the root counter — handling local-counter overflow,
// then recomputes the affected node MACs. This is the write path of the
// integrity tree engine.
func (t *Tree) Update(e *crypt.Engine, guaddr uint64, line int) UpdateResult {
	nodeIdx, slot := t.geo.path(line)
	L := t.geo.Levels()
	res := UpdateResult{}
	maxLocal := uint32(1)<<t.geo.localBits() - 1

	// Bump every counter on the path first (leaf to root), tracking
	// overflow, then rehash: MACs depend on parent counters, so they must
	// be computed against the final values.
	overflowAt := make([]bool, L)
	for l := L - 1; l >= 0; l-- {
		n := &t.levels[l][nodeIdx[l]]
		if n.Local[slot[l]] == maxLocal {
			n.Global++
			for s := range n.Local {
				n.Local[s] = 0
			}
			overflowAt[l] = true
			res.Overflowed = true
		} else {
			n.Local[slot[l]]++
		}
	}
	t.rootCtr++

	// Rehash. Path nodes always need it (their counters and their parent
	// counters changed). An overflow at level l additionally invalidates
	// the MACs of all children of the overflowed node (their parent
	// counters were reset), and a leaf overflow forces data re-encryption.
	for l := 0; l < L; l++ {
		t.rehashNode(e, guaddr, l, nodeIdx[l])
		res.NodesTouched++
		if !overflowAt[l] {
			continue
		}
		if l == L-1 {
			// Leaf overflow: all lines under this leaf changed counters.
			base := nodeIdx[l] * t.geo.Arities[l]
			for s := 0; s < t.geo.Arities[l]; s++ {
				if ln := base + s; ln != line {
					res.ReencryptLines = append(res.ReencryptLines, ln)
				}
			}
		} else {
			// Interior overflow: all child nodes must be re-MACed.
			childBase := nodeIdx[l] * t.geo.Arities[l]
			for c := 0; c < t.geo.Arities[l]; c++ {
				child := childBase + c
				if child != nodeIdx[l+1] { // path child is rehashed anyway
					t.rehashNode(e, guaddr, l+1, child)
					res.NodesTouched++
				}
			}
		}
	}
	res.LeafCounter = t.counter(L-1, nodeIdx[L-1], slot[L-1])
	return res
}

// Serialize encodes all tree nodes (not the root counter — that travels
// sealed inside the MMT root) in the meta-zone layout: per node, global
// counter, locals, MAC, little endian, levels top-down.
func (t *Tree) Serialize() []byte {
	out := make([]byte, 0, t.geo.NodesSize())
	var buf [8]byte
	for l := range t.levels {
		for i := range t.levels[l] {
			n := &t.levels[l][i]
			binary.LittleEndian.PutUint64(buf[:], n.Global)
			out = append(out, buf[:]...)
			for _, lc := range n.Local {
				binary.LittleEndian.PutUint16(buf[:2], uint16(lc))
				out = append(out, buf[:2]...)
			}
			binary.LittleEndian.PutUint64(buf[:], n.MAC)
			out = append(out, buf[:]...)
		}
	}
	return out
}

// Deserialize decodes a serialized node set into a tree with the given
// geometry. The root counter is zero until SetRootCounter; callers verify
// with VerifyAll after installing the unsealed root counter.
func Deserialize(geo Geometry, data []byte) (*Tree, error) {
	if err := geo.Validate(); err != nil {
		return nil, err
	}
	if len(data) != geo.NodesSize() {
		return nil, fmt.Errorf("tree: serialized size %d, want %d", len(data), geo.NodesSize())
	}
	t := &Tree{geo: geo, levels: make([][]Node, geo.Levels())}
	off := 0
	for l := 0; l < geo.Levels(); l++ {
		nodes := make([]Node, geo.NodesAtLevel(l))
		for i := range nodes {
			n := &nodes[i]
			n.Global = binary.LittleEndian.Uint64(data[off:])
			off += 8
			n.Local = make([]uint32, geo.Arities[l])
			for s := range n.Local {
				n.Local[s] = uint32(binary.LittleEndian.Uint16(data[off:]))
				off += 2
			}
			n.MAC = binary.LittleEndian.Uint64(data[off:])
			off += 8
		}
		t.levels[l] = nodes
	}
	return t, nil
}

// Clone deep-copies the tree (used for read-only ownership-copy mode).
func (t *Tree) Clone() *Tree {
	c := &Tree{geo: t.geo, rootCtr: t.rootCtr, levels: make([][]Node, len(t.levels)), probe: t.probe}
	for l := range t.levels {
		nodes := make([]Node, len(t.levels[l]))
		for i := range nodes {
			src := &t.levels[l][i]
			nodes[i] = Node{Global: src.Global, Local: append([]uint32(nil), src.Local...), MAC: src.MAC}
		}
		c.levels[l] = nodes
	}
	return c
}
