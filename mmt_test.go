package mmt

import (
	"bytes"
	"errors"
	"testing"

	"mmt/internal/tree"
)

// tamperFunc adapts a function to the public Interposer interface.
type tamperFunc func(WireMessage) []WireMessage

func (f tamperFunc) Intercept(m WireMessage) []WireMessage { return f(m) }

// wireSpy captures every payload on the wire without modifying anything.
type wireSpy struct {
	Captured [][]byte
}

func (s *wireSpy) Intercept(m WireMessage) []WireMessage {
	s.Captured = append(s.Captured, append([]byte(nil), m.Payload...))
	return []WireMessage{m}
}

// smallCluster uses the 2-level (64K) tree so full-stack tests stay fast.
func smallCluster(t *testing.T) *Cluster {
	t.Helper()
	c, err := New(WithTreeLevels(2), WithRegions(6))
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func twoMachines(t *testing.T) (*Cluster, *Machine, *Machine) {
	t.Helper()
	c := smallCluster(t)
	a, err := c.AddMachine("alice")
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.AddMachine("bob")
	if err != nil {
		t.Fatal(err)
	}
	return c, a, b
}

func TestClusterBootAndIdentity(t *testing.T) {
	_, a, b := twoMachines(t)
	if a.NodeID() == 0 || b.NodeID() == 0 || a.NodeID() == b.NodeID() {
		t.Fatalf("bad node ids: %d %d", a.NodeID(), b.NodeID())
	}
	if a.Name() != "alice" {
		t.Fatal("name wrong")
	}
}

func TestDuplicateMachineRejected(t *testing.T) {
	c := smallCluster(t)
	if _, err := c.AddMachine("x"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.AddMachine("x"); err == nil {
		t.Fatal("duplicate machine accepted")
	}
	if _, ok := c.Machine("x"); !ok {
		t.Fatal("lookup failed")
	}
	if _, ok := c.Machine("ghost"); ok {
		t.Fatal("phantom machine")
	}
}

func TestEndToEndOwnershipTransfer(t *testing.T) {
	c, a, b := twoMachines(t)
	sender := a.Spawn("producer", []byte("code-a"))
	receiver := b.Spawn("consumer", []byte("code-b"))
	link, err := c.Connect(sender, receiver)
	if err != nil {
		t.Fatal(err)
	}

	buf, err := link.NewBuffer(sender)
	if err != nil {
		t.Fatal(err)
	}
	secret := []byte("the complete works, encrypted at rest and in flight")
	if err := buf.Write(100, secret); err != nil {
		t.Fatal(err)
	}
	if err := link.Delegate(buf, OwnershipTransfer); err != nil {
		t.Fatal(err)
	}

	got, err := link.Receive(receiver)
	if err != nil {
		t.Fatal(err)
	}
	data, err := got.Read(100, len(secret))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, secret) {
		t.Fatal("payload corrupted in delegation")
	}
	if got.ReadOnly() {
		t.Fatal("ownership transfer should be writable")
	}
	if err := got.Write(0, []byte("receiver owns it")); err != nil {
		t.Fatal(err)
	}
	// Sender's buffer is consumed.
	if _, err := buf.Read(0, 1); err == nil {
		t.Fatal("sender buffer still readable after ownership transfer")
	}
	// No second receive pending.
	if _, err := link.Receive(receiver); !errors.Is(err, ErrNoPending) {
		t.Fatalf("phantom receive: %v", err)
	}
}

func TestEndToEndOwnershipCopy(t *testing.T) {
	c, a, b := twoMachines(t)
	sender := a.Spawn("producer", nil)
	receiver := b.Spawn("consumer", nil)
	link, err := c.Connect(sender, receiver)
	if err != nil {
		t.Fatal(err)
	}
	buf, err := link.NewBuffer(sender)
	if err != nil {
		t.Fatal(err)
	}
	if err := buf.Write(0, []byte("snapshot")); err != nil {
		t.Fatal(err)
	}
	if err := link.Delegate(buf, OwnershipCopy); err != nil {
		t.Fatal(err)
	}
	got, err := link.Receive(receiver)
	if err != nil {
		t.Fatal(err)
	}
	if !got.ReadOnly() {
		t.Fatal("copy should be read-only")
	}
	if err := got.Write(0, []byte("nope")); err == nil {
		t.Fatal("write to read-only copy succeeded")
	}
	// Sender keeps writing.
	if err := buf.Write(0, []byte("still mine")); err != nil {
		t.Fatal(err)
	}
}

func TestDelegationRejectedUnderAttack(t *testing.T) {
	c, a, b := twoMachines(t)
	sender := a.Spawn("producer", nil)
	receiver := b.Spawn("consumer", nil)
	link, err := c.Connect(sender, receiver)
	if err != nil {
		t.Fatal(err)
	}
	buf, err := link.NewBuffer(sender)
	if err != nil {
		t.Fatal(err)
	}
	if err := buf.Write(0, []byte("target")); err != nil {
		t.Fatal(err)
	}
	c.SetInterposer(tamperFunc(func(m WireMessage) []WireMessage {
		if m.Kind == WireClosure && len(m.Payload) > 0 {
			p := append([]byte(nil), m.Payload...)
			p[len(p)-3] ^= 1
			m.Payload = p
		}
		return []WireMessage{m}
	}))
	if err := link.Delegate(buf, OwnershipTransfer); err == nil {
		t.Fatal("tampered delegation succeeded")
	}
	c.SetInterposer(nil)
	// Sender recovered; retry succeeds.
	if err := link.Delegate(buf, OwnershipTransfer); err != nil {
		t.Fatalf("retry after attack: %v", err)
	}
	if _, err := link.Receive(receiver); err != nil {
		t.Fatal(err)
	}
}

func TestSpyOnWireSeesNoPlaintext(t *testing.T) {
	c, a, b := twoMachines(t)
	sender := a.Spawn("producer", nil)
	receiver := b.Spawn("consumer", nil)
	link, err := c.Connect(sender, receiver)
	if err != nil {
		t.Fatal(err)
	}
	buf, err := link.NewBuffer(sender)
	if err != nil {
		t.Fatal(err)
	}
	secret := []byte("extremely confidential plaintext content here")
	if err := buf.Write(0, secret); err != nil {
		t.Fatal(err)
	}
	spy := &wireSpy{}
	c.SetInterposer(spy)
	if err := link.Delegate(buf, OwnershipTransfer); err != nil {
		t.Fatal(err)
	}
	for _, p := range spy.Captured {
		if bytes.Contains(p, secret[:16]) {
			t.Fatal("plaintext visible on the wire")
		}
	}
	if len(spy.Captured) == 0 {
		t.Fatal("spy saw nothing; test is vacuous")
	}
}

func TestBufferBounds(t *testing.T) {
	c, a, b := twoMachines(t)
	sender := a.Spawn("p", nil)
	receiver := b.Spawn("q", nil)
	link, err := c.Connect(sender, receiver)
	if err != nil {
		t.Fatal(err)
	}
	buf, err := link.NewBuffer(sender)
	if err != nil {
		t.Fatal(err)
	}
	if err := buf.Write(buf.Size()-1, []byte{1}); err != nil {
		t.Fatal(err)
	}
	if err := buf.Write(buf.Size(), []byte{1}); err == nil {
		t.Fatal("write past end accepted")
	}
	if _, err := buf.Read(-1, 1); err == nil {
		t.Fatal("negative read accepted")
	}
	if _, err := buf.Read(0, buf.Size()+1); err == nil {
		t.Fatal("oversized read accepted")
	}
}

func TestSameMachineLinkRejected(t *testing.T) {
	c := smallCluster(t)
	a, err := c.AddMachine("solo")
	if err != nil {
		t.Fatal(err)
	}
	e1 := a.Spawn("e1", nil)
	e2 := a.Spawn("e2", nil)
	if _, err := c.Connect(e1, e2); err == nil {
		t.Fatal("same-machine link accepted")
	}
}

func TestForeignEnclaveRejectedOnLink(t *testing.T) {
	c, a, b := twoMachines(t)
	s := a.Spawn("s", nil)
	r := b.Spawn("r", nil)
	link, err := c.Connect(s, r)
	if err != nil {
		t.Fatal(err)
	}
	outsiderMachine, err := c.AddMachine("carol")
	if err != nil {
		t.Fatal(err)
	}
	outsider := outsiderMachine.Spawn("o", nil)
	if _, err := link.NewBuffer(outsider); !errors.Is(err, ErrNotOnLink) {
		t.Fatalf("outsider NewBuffer: %v", err)
	}
	if _, err := link.Receive(outsider); !errors.Is(err, ErrNotOnLink) {
		t.Fatalf("outsider Receive: %v", err)
	}
}

func TestClockAdvancesWithWork(t *testing.T) {
	c, a, b := twoMachines(t)
	s := a.Spawn("s", nil)
	r := b.Spawn("r", nil)
	link, err := c.Connect(s, r)
	if err != nil {
		t.Fatal(err)
	}
	buf, err := link.NewBuffer(s)
	if err != nil {
		t.Fatal(err)
	}
	before := b.Clock().Now()
	if err := link.Delegate(buf, OwnershipTransfer); err != nil {
		t.Fatal(err)
	}
	if b.Clock().Now() <= before {
		t.Fatal("receiver clock did not advance with the transfer")
	}
}

func TestGeometryExposed(t *testing.T) {
	c := smallCluster(t)
	if c.Geometry().DataSize() != tree.ForLevels(2).DataSize() {
		t.Fatal("geometry mismatch")
	}
}
