// Package nopanic exercises the nopanic analyzer: library packages under
// internal/ must return errors, not panic.
package nopanic

import (
	"errors"
	"fmt"
)

// explode panics on bad input — flagged.
func explode(x int) {
	if x < 0 {
		panic(fmt.Sprintf("negative input %d", x)) // want "panic in library package mmt/internal/nopanic"
	}
}

// graceful returns an error instead — not flagged.
func graceful(x int) error {
	if x < 0 {
		return errors.New("negative input")
	}
	return nil
}

// recoverIsFine uses recover, which is not panic — not flagged.
func recoverIsFine() (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("recovered: %v", r)
		}
	}()
	return nil
}

// suppressed demonstrates the justified-exception escape hatch.
func suppressed(x int) {
	if x < 0 {
		panic("impossible state") //mmt:allow nopanic: fixture demonstrating suppression
	}
}
