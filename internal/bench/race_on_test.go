//go:build race

package bench

// raceEnabled reports whether this test binary was built with -race.
// The heaviest experiments (hundreds of megabytes of functional
// encryption and tree verification) run ~10x slower under the race
// detector and would blow the per-package test timeout; they skip
// themselves when this is set, while smaller configurations of the same
// code paths still run race-instrumented.
const raceEnabled = true
