// Package checkverify exercises the checkverify analyzer: the verdict of
// an authentication check must never be discarded.
package checkverify

import "crypto/cipher"

// VerifySeal is a local authentication check (Verify* prefix).
func VerifySeal(tag uint64) bool { return tag == 0 }

// VerifyReport returns its verdict as an error.
func VerifyReport(tag uint64) error { return nil }

// discards drops verdicts in every statement form the analyzer covers.
func discards(aead cipher.AEAD, nonce, box []byte) {
	VerifySeal(1)         // want "result discarded of authentication check VerifySeal"
	go VerifySeal(2)      // want "result discarded by go statement of authentication check VerifySeal"
	defer VerifySeal(3)   // want "result discarded by defer statement of authentication check VerifySeal"
	_ = VerifySeal(4)     // want "bool verdict of authentication check VerifySeal assigned to _"
	_ = VerifyReport(5)   // want "error result of authentication check VerifyReport assigned to _"
	pt, _ := aead.Open(nil, nonce, box, nil) // want "error result of authentication check Open assigned to _"
	_ = pt
}

// checked handles every verdict — not flagged.
func checked(aead cipher.AEAD, nonce, box []byte) ([]byte, error) {
	if !VerifySeal(1) {
		return nil, VerifyReport(1)
	}
	if err := VerifyReport(2); err != nil {
		return nil, err
	}
	return aead.Open(nil, nonce, box, nil)
}

// suppressed demonstrates a justified exception.
func suppressed() {
	VerifySeal(9) //mmt:allow checkverify: fixture demonstrating suppression
}
