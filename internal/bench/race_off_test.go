//go:build !race

package bench

// raceEnabled reports whether this test binary was built with -race.
const raceEnabled = false
