package bench

import (
	"fmt"

	"mmt/internal/par"
	"mmt/internal/sim"
	"mmt/internal/tree"
)

// Fig10aRow is one block size of Figure 10(a): achievable throughput of
// AES-128-GCM (AES-NI), raw RDMA, and MMT closure delegation on the Intel
// testbed, in GB/s.
type Fig10aRow struct {
	BlockSize  int
	AESGCMGBps float64
	RDMAGBps   float64
	MMTGBps    float64
}

// Fig10a reproduces Figure 10(a). The paper's headline points: AES-GCM
// plateaus at ~2.2 GB/s, the 100 Gbps NIC delivers ~11 GB/s, and MMT
// delegation reaches 9.68 GB/s (the NIC rate divided by the closure's
// metadata overhead).
func Fig10a() []Fig10aRow {
	prof := sim.IntelProfile()
	geo := tree.ForLevels(3)
	// Goodput of delegation: data bytes over the cycles to push
	// data+metadata through the NIC plus the fixed protocol cost.
	delegGoodput := func(n int) float64 {
		closures := (n + geo.DataSize() - 1) / geo.DataSize()
		wire := n + closures*(geo.MetaSize()+64) // tree nodes + MACs + sealed root
		cy := prof.RemoteWriteCost(wire) + sim.Cycles(closures)*prof.DelegationFixed
		return float64(n) / float64(prof.ToTime(cy))
	}
	var rows []Fig10aRow
	for n := 1 << 10; n <= 32<<20; n <<= 2 {
		rows = append(rows, Fig10aRow{
			BlockSize:  n,
			AESGCMGBps: float64(n) / float64(prof.ToTime(prof.EncryptCost(n))) / 1e9,
			RDMAGBps:   float64(n) / float64(prof.ToTime(prof.RemoteWriteCost(n))) / 1e9,
			MMTGBps:    delegGoodput(n) / 1e9,
		})
	}
	return rows
}

// RenderFig10a prints the throughput series.
func RenderFig10a(rows []Fig10aRow) string {
	header := []string{"Block", "AES-GCM GB/s", "RDMA GB/s", "MMT GB/s"}
	var out [][]string
	for _, r := range rows {
		out = append(out, []string{
			fmtSize(r.BlockSize),
			fmt.Sprintf("%.2f", r.AESGCMGBps),
			fmt.Sprintf("%.2f", r.RDMAGBps),
			fmt.Sprintf("%.2f", r.MMTGBps),
		})
	}
	return renderTable("Figure 10a: max throughput (paper: AES-GCM ~2.2, RDMA ~11, MMT 9.68 GB/s)", header, out)
}

// Fig10bRow is one network-latency point of Figure 10(b): end-to-end time
// to move 2 MB via the CPU-only secure channel versus MMT delegation on
// the Gem5 testbed, and the resulting speedup.
type Fig10bRow struct {
	NetLatency    sim.Time
	SecureChannel sim.Time
	MMT           sim.Time
	Speedup       float64
}

// Fig10b reproduces Figure 10(b) by re-running the 2 MB transfer of Table
// IV at increasing pci-connector delays. The paper: 169x at zero latency
// falling to ~4.5x at 10 ms.
func Fig10b() ([]Fig10bRow, error) {
	latencies := []sim.Time{0, 1e-6, 10e-6, 100e-6, 1e-3, 10e-3}
	// Each latency point runs an independent transfer simulation with its
	// own profile and machines; fan the points across Workers() goroutines.
	return par.Map(Workers(), latencies, func(_ int, lat sim.Time) (Fig10bRow, error) {
		prof := sim.Gem5Profile()
		prof.NetLatency = lat
		row, err := table4Measure(prof, 2<<20, nil)
		if err != nil {
			return Fig10bRow{}, err
		}
		// End-to-end = processing cycles + one-way propagation (both
		// schemes send one logical message).
		sc := prof.ToTime(row.SecureChannel) + lat
		mmt := prof.ToTime(row.MMT) + lat
		return Fig10bRow{
			NetLatency:    lat,
			SecureChannel: sc,
			MMT:           mmt,
			Speedup:       float64(sc) / float64(mmt),
		}, nil
	})
}

// RenderFig10b prints the latency series.
func RenderFig10b(rows []Fig10bRow) string {
	header := []string{"NetLatency", "SecureChannel", "MMT", "Speedup"}
	var out [][]string
	for _, r := range rows {
		out = append(out, []string{
			r.NetLatency.String(), r.SecureChannel.String(), r.MMT.String(),
			fmt.Sprintf("%.1fx", r.Speedup),
		})
	}
	return renderTable("Figure 10b: 2M end-to-end vs network latency (paper: 169x -> 4.5x at 10ms)", header, out)
}
