package store

import (
	"bytes"
	"fmt"
	"testing"
)

// TestCrashConsistencyEveryKillPoint is the store-level crash simulator:
// it runs a multi-commit workload on a journaling MemFS, then for every
// kill point (before each journaled filesystem op, plus the final state)
// and every replay mode (in-order, torn last write, unsynced writes
// dropped) reconstructs the disk, reopens the store, and asserts recovery
// lands on exactly one of the committed states — byte-identical to the
// never-crashed oracle for that epoch, never a torn or corrupt hybrid.
func TestCrashConsistencyEveryKillPoint(t *testing.T) {
	fs := NewMemFS()
	s := mustOpen(t, fs)

	// Oracle: the exact record set and root hash at each committed epoch.
	oracle := map[uint64][]Record{}
	oracleHash := map[uint64][32]byte{}

	const epochs = 5
	var all []Record
	for epoch := 1; epoch <= epochs; epoch++ {
		// Several records per commit, big enough that a commit spans
		// multiple write batches — so kill points land inside a batch
		// stream, between batches, between data sync and commit write, and
		// between commit write and commit sync.
		for i := 0; i < 5; i++ {
			payload := bytes.Repeat([]byte{byte(epoch), byte(i)}, 10*1024)
			r := Record{Type: RecordType(epoch), Payload: payload}
			if err := s.Append(r); err != nil {
				t.Fatal(err)
			}
			all = append(all, r)
		}
		hash := [32]byte{0xA0, byte(epoch)}
		if _, err := s.Commit(hash); err != nil {
			t.Fatal(err)
		}
		cp := make([]Record, len(all))
		for i, r := range all {
			cp[i] = Record{Type: r.Type, Payload: append([]byte(nil), r.Payload...)}
		}
		oracle[uint64(epoch)] = cp
		oracleHash[uint64(epoch)] = hash
	}

	ops := fs.Ops()
	if len(fs.SyncPoints()) < 2*epochs {
		t.Fatalf("expected at least %d sync points, journal has %d", 2*epochs, len(fs.SyncPoints()))
	}
	recovered := map[uint64]bool{}
	for k := 0; k <= ops; k++ {
		for _, mode := range ReplayModes {
			name := fmt.Sprintf("kill=%d/%s", k, mode)
			disk := fs.StateAt(k, mode)
			r, err := Open(NewMemFSFrom(disk))
			if err != nil {
				t.Fatalf("%s: recovery open failed: %v", name, err)
			}
			if !r.HasCommit() {
				continue // crashed before the first commit became durable
			}
			cr, err := r.Committed()
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			want, ok := oracle[cr.Epoch]
			if !ok {
				t.Fatalf("%s: recovered unknown epoch %d", name, cr.Epoch)
			}
			if cr.RootHash != oracleHash[cr.Epoch] {
				t.Fatalf("%s: epoch %d root hash mismatch", name, cr.Epoch)
			}
			got, err := r.CommittedRecords()
			if err != nil {
				t.Fatalf("%s: torn committed state: %v", name, err)
			}
			if len(got) != len(want) {
				t.Fatalf("%s: epoch %d recovered %d records, oracle has %d", name, cr.Epoch, len(got), len(want))
			}
			for i := range want {
				if got[i].Type != want[i].Type || !bytes.Equal(got[i].Payload, want[i].Payload) {
					t.Fatalf("%s: epoch %d record %d differs from oracle", name, cr.Epoch, i)
				}
			}
			recovered[cr.Epoch] = true
		}
	}
	// Sanity: the sweep must actually have exercised both old-state and
	// new-state recoveries, including the final epoch.
	if !recovered[1] || !recovered[epochs] {
		t.Fatalf("kill-point sweep did not cover both first and last epochs: %v", recovered)
	}
}

// TestCrashThenResume: after recovering from an arbitrary mid-commit
// crash, the store must accept new appends and commit them durably.
func TestCrashThenResume(t *testing.T) {
	fs := NewMemFS()
	s := mustOpen(t, fs)
	if err := s.Append(Record{Type: 1, Payload: bytes.Repeat([]byte("a"), 4096)}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Commit([32]byte{1}); err != nil {
		t.Fatal(err)
	}
	if err := s.Append(Record{Type: 2, Payload: bytes.Repeat([]byte("b"), 4096)}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Commit([32]byte{2}); err != nil {
		t.Fatal(err)
	}

	for k := 0; k <= fs.Ops(); k++ {
		for _, mode := range ReplayModes {
			disk := fs.StateAt(k, mode)
			r, err := Open(NewMemFSFrom(disk))
			if err != nil {
				t.Fatalf("kill=%d/%s: %v", k, mode, err)
			}
			preEpoch := r.Epoch()
			if err := r.Append(Record{Type: 9, Payload: []byte("resumed")}); err != nil {
				t.Fatalf("kill=%d/%s: append after recovery: %v", k, mode, err)
			}
			cr, err := r.Commit([32]byte{9})
			if err != nil {
				t.Fatalf("kill=%d/%s: commit after recovery: %v", k, mode, err)
			}
			if cr.Epoch != preEpoch+1 {
				t.Fatalf("kill=%d/%s: epoch %d after recovery from %d", k, mode, cr.Epoch, preEpoch)
			}
			recs, err := r.CommittedRecords()
			if err != nil {
				t.Fatal(err)
			}
			if len(recs) == 0 || string(recs[len(recs)-1].Payload) != "resumed" {
				t.Fatalf("kill=%d/%s: resumed record missing", k, mode)
			}
		}
	}
}
