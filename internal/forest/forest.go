// Package forest implements the integrity forest of §IV-A2: the
// global-unique address space that lets integrity subtrees from many
// machines coexist without ever reusing a one-time pad.
//
// A global-unique address has two parts: the node id handed out by the
// authority during global attestation, and a monotonic number generated
// locally. The paper reserves 58 bits in the MMT root for it; this package
// packs a 16-bit node id above a 42-bit monotonic counter, matching that
// budget.
package forest

import (
	"fmt"
	"sync"
)

// NodeID is the global-unique node identifier assigned by the authority
// node during global attestation (§IV-A1).
type NodeID uint16

// GUAddrBits is the width of a global-unique address (58 bits, §V-A2).
const GUAddrBits = 58

// monotonicBits is the width of the per-node monotonic component.
const monotonicBits = GUAddrBits - 16

// Compose packs a node id and a monotonic number into a global-unique
// address. It panics if the monotonic number overflows its field, since a
// node that exhausts 2^42 allocations has violated the engine's design
// envelope (the hardware would halt similarly).
func Compose(node NodeID, monotonic uint64) uint64 {
	if monotonic >= 1<<monotonicBits {
		panic(fmt.Sprintf("forest: monotonic number %d overflows %d bits", monotonic, monotonicBits)) //mmt:allow nopanic: counter overflow after 2^48 migrations; hardware would halt rather than reuse an ID
	}
	return uint64(node)<<monotonicBits | monotonic
}

// Split unpacks a global-unique address.
func Split(guaddr uint64) (NodeID, uint64) {
	return NodeID(guaddr >> monotonicBits), guaddr & (1<<monotonicBits - 1)
}

// Allocator hands out strictly increasing global-unique addresses for one
// node. It is safe for concurrent use (several enclaves on one node may
// acquire buffers concurrently).
type Allocator struct {
	mu   sync.Mutex
	node NodeID
	next uint64
}

// NewAllocator returns an allocator for the attested node id. The first
// address uses monotonic number 1 so that 0 can mean "unassigned".
func NewAllocator(node NodeID) *Allocator {
	return &Allocator{node: node, next: 1}
}

// Node reports the allocator's node id.
func (a *Allocator) Node() NodeID { return a.node }

// Next returns a fresh global-unique address. Addresses from one allocator
// are strictly increasing — the property the delegation protocol's
// re-order check builds on (§IV-B2).
func (a *Allocator) Next() uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	g := Compose(a.node, a.next)
	a.next++
	return g
}

// NextValue reports the next monotonic number without consuming it; the
// snapshot layer persists it so a reloaded node never reuses an address.
func (a *Allocator) NextValue() uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.next
}

// RestoreAllocator rebuilds an allocator from persisted state. next must
// be at least 1 (0 means "unassigned" in the address scheme).
func RestoreAllocator(node NodeID, next uint64) (*Allocator, error) {
	if next < 1 || next >= 1<<monotonicBits {
		return nil, fmt.Errorf("forest: restored monotonic number %d out of range", next)
	}
	return &Allocator{node: node, next: next}, nil
}

// Entry describes one tree in the integrity forest: where a live MMT with
// a given global-unique address currently resides.
type Entry struct {
	GUAddr uint64
	Node   NodeID // node currently holding the subtree
	Region int    // protection region on that node
}

// Forest is a registry of live subtrees across the distributed system. In
// hardware the forest is implicit (each controller knows only its own
// roots); the registry exists for the monitor's bookkeeping and for tests
// and tools that want a global view.
type Forest struct {
	mu      sync.Mutex
	entries map[uint64]Entry
}

// NewForest returns an empty registry.
func NewForest() *Forest {
	return &Forest{entries: make(map[uint64]Entry)}
}

// Add registers a live subtree. Registering an address twice is an error:
// a global-unique address names at most one live tree, ever.
func (f *Forest) Add(e Entry) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if old, ok := f.entries[e.GUAddr]; ok {
		return fmt.Errorf("forest: address %#x already registered on node %d", e.GUAddr, old.Node)
	}
	f.entries[e.GUAddr] = e
	return nil
}

// Remove unregisters a subtree (MMT invalidated or migrated away).
func (f *Forest) Remove(guaddr uint64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	delete(f.entries, guaddr)
}

// Lookup reports where the subtree with guaddr lives.
func (f *Forest) Lookup(guaddr uint64) (Entry, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	e, ok := f.entries[guaddr]
	return e, ok
}

// Size reports the number of live subtrees.
func (f *Forest) Size() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.entries)
}

// OnNode lists the subtrees currently resident on a node.
func (f *Forest) OnNode(n NodeID) []Entry {
	f.mu.Lock()
	defer f.mu.Unlock()
	var out []Entry
	for _, e := range f.entries {
		if e.Node == n {
			out = append(out, e)
		}
	}
	return out
}
