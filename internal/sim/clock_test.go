package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestClockZeroValueStartsAtZero(t *testing.T) {
	var c Clock
	if c.Now() != 0 {
		t.Fatalf("zero clock Now() = %v, want 0", c.Now())
	}
	if c.Freq() != DefaultFreqHz {
		t.Fatalf("zero clock Freq() = %v, want default %v", c.Freq(), DefaultFreqHz)
	}
}

func TestClockAdvance(t *testing.T) {
	c := NewClock(2e9)
	c.Advance(1e-3)
	if got := c.Now(); got != 1e-3 {
		t.Fatalf("Now() = %v, want 1ms", got)
	}
	c.Advance(-5) // negative durations must be ignored
	if got := c.Now(); got != 1e-3 {
		t.Fatalf("Now() after negative advance = %v, want 1ms", got)
	}
}

func TestClockAdvanceCycles(t *testing.T) {
	c := NewClock(2e9)
	c.AdvanceCycles(2e9) // one second of cycles
	if got := float64(c.Now()); math.Abs(got-1) > 1e-12 {
		t.Fatalf("Now() = %v, want 1s", got)
	}
	if got := float64(c.NowCycles()); math.Abs(got-2e9) > 1 {
		t.Fatalf("NowCycles() = %v, want 2e9", got)
	}
}

func TestClockSyncToOnlyMovesForward(t *testing.T) {
	c := NewClock(0)
	c.Advance(5)
	c.SyncTo(3)
	if c.Now() != 5 {
		t.Fatalf("SyncTo moved clock backwards: %v", c.Now())
	}
	c.SyncTo(7)
	if c.Now() != 7 {
		t.Fatalf("SyncTo did not move clock forward: %v", c.Now())
	}
}

func TestClockReset(t *testing.T) {
	c := NewClock(0)
	c.Advance(42)
	c.Reset()
	if c.Now() != 0 {
		t.Fatalf("Reset left clock at %v", c.Now())
	}
}

func TestClockMonotonic(t *testing.T) {
	// Property: no sequence of Advance/SyncTo calls can move time backwards.
	f := func(steps []float64) bool {
		c := NewClock(1e9)
		prev := c.Now()
		for i, s := range steps {
			if i%2 == 0 {
				c.Advance(Time(s))
			} else {
				c.SyncTo(Time(s))
			}
			if c.Now() < prev {
				return false
			}
			prev = c.Now()
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCycleTimeConversionRoundTrip(t *testing.T) {
	f := func(n uint32) bool {
		cy := Cycles(n)
		back := TimeToCycles(CyclesToTime(cy, 2e9), 2e9)
		return math.Abs(float64(back-cy)) < 1e-6*math.Max(1, float64(cy))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTimeString(t *testing.T) {
	cases := []struct {
		in   Time
		want string
	}{
		{0, "0s"},
		{5e-9, "5.0ns"},
		{3.5e-6, "3.50us"},
		{1.2e-3, "1.200ms"},
		{2.5, "2.500s"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("Time(%v).String() = %q, want %q", float64(c.in), got, c.want)
		}
	}
}

func TestMaxTime(t *testing.T) {
	if MaxTime(1, 2) != 2 || MaxTime(3, 2) != 3 {
		t.Fatal("MaxTime wrong")
	}
}
