package store

import (
	"bytes"
	"encoding/hex"
	"testing"
)

// TestGoldenRecordEncoding pins the mmt-store/v1 record framing byte for
// byte. If this test fails, the on-disk format changed: bump the version
// string in Magic instead of editing the golden values.
func TestGoldenRecordEncoding(t *testing.T) {
	var b []byte
	b = appendRecord(b, Record{Type: 1, Payload: []byte("mmt")})
	b = appendRecord(b, Record{Type: 4, Payload: []byte{0xde, 0xad, 0xbe, 0xef}})
	b = appendRecord(b, Record{Type: 7})
	const golden = "01030000006d6d74d63d545f0404000000deadbeef1e37776207000000000d2b0274"
	if got := hex.EncodeToString(b); got != golden {
		t.Fatalf("record encoding drifted:\n got %s\nwant %s", got, golden)
	}

	recs, err := parseRecords(b)
	if err != nil {
		t.Fatalf("parseRecords: %v", err)
	}
	if len(recs) != 3 || recs[0].Type != 1 || string(recs[0].Payload) != "mmt" ||
		recs[1].Type != 4 || !bytes.Equal(recs[1].Payload, []byte{0xde, 0xad, 0xbe, 0xef}) ||
		recs[2].Type != 7 || len(recs[2].Payload) != 0 {
		t.Fatalf("round trip mismatch: %+v", recs)
	}
}

// TestGoldenCommitSlot pins the commit-slot layout.
func TestGoldenCommitSlot(t *testing.T) {
	var rh [32]byte
	for i := range rh {
		rh[i] = byte(i)
	}
	cr := CommitRecord{Epoch: 3, DataLen: 0x1234, RootHash: rh}
	enc := cr.encode()
	const golden = "6d6d746303000000000000003412000000000000000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f31b98b7d0000000000000000"
	if got := hex.EncodeToString(enc[:]); got != golden {
		t.Fatalf("commit slot drifted:\n got %s\nwant %s", got, golden)
	}
	dec, ok := decodeCommit(enc[:])
	if !ok || dec != cr {
		t.Fatalf("commit round trip: ok=%v dec=%+v", ok, dec)
	}
}

// TestGoldenHeader pins the data-file header.
func TestGoldenHeader(t *testing.T) {
	h := header()
	const golden = "6d6d742d73746f72652f763100000000"
	if got := hex.EncodeToString(h[:]); got != golden {
		t.Fatalf("header drifted:\n got %s\nwant %s", got, golden)
	}
	if err := checkHeader(h[:]); err != nil {
		t.Fatalf("checkHeader: %v", err)
	}
}

// TestCorruptRecordDetected flips bits inside a committed region and
// checks the per-record CRC catches every one.
func TestCorruptRecordDetected(t *testing.T) {
	var b []byte
	b = appendRecord(b, Record{Type: 9, Payload: []byte("payload-bytes")})
	for i := range b {
		mut := append([]byte(nil), b...)
		mut[i] ^= 0x40
		if _, err := parseRecords(mut); err == nil {
			t.Fatalf("bit flip at byte %d not detected", i)
		}
	}
}

// TestCorruptCommitSlotRejected flips bits in a commit slot.
func TestCorruptCommitSlotRejected(t *testing.T) {
	cr := CommitRecord{Epoch: 8, DataLen: 99}
	enc := cr.encode()
	for i := 0; i < 56; i++ { // magic + fields + CRC; trailing pad is unchecked
		mut := enc
		mut[i] ^= 0x01
		if _, ok := decodeCommit(mut[:]); ok {
			t.Fatalf("bit flip at byte %d accepted", i)
		}
	}
}
