package store

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// FS is the minimal filesystem the store needs. Two implementations: Dir
// (real files, used by mmt.WithStore / mmt.Open) and MemFS (in-memory with
// an operation journal, used by the crash simulator to replay every
// batch-boundary kill point).
type FS interface {
	// OpenFile opens name read-write, creating it empty if absent.
	OpenFile(name string) (File, error)
}

// File is the store's view of one file.
type File interface {
	ReadAt(p []byte, off int64) (int, error)
	WriteAt(p []byte, off int64) (int, error)
	Size() (int64, error)
	Sync() error
	Truncate(size int64) error
	Close() error
}

// Dir is an FS over a real directory.
type Dir struct{ Path string }

// OpenFile implements FS.
func (d Dir) OpenFile(name string) (File, error) {
	if err := os.MkdirAll(d.Path, 0o755); err != nil {
		return nil, err
	}
	f, err := os.OpenFile(filepath.Join(d.Path, name), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	return osFile{f}, nil
}

type osFile struct{ *os.File }

func (f osFile) Size() (int64, error) {
	st, err := f.Stat()
	if err != nil {
		return 0, err
	}
	return st.Size(), nil
}

// opKind tags a journal entry.
type opKind uint8

const (
	opWrite opKind = iota
	opSync
	opTruncate
)

// Op is one journaled filesystem operation.
type Op struct {
	Kind opKind
	File string
	Off  int64
	Data []byte // opWrite: bytes written; opTruncate: unused (Off = new size)
}

// MemFS is an in-memory FS that journals every write, sync and truncate.
// The crash simulator replays journal prefixes to reconstruct every state
// the disk could have been in at a kill point.
type MemFS struct {
	mu    sync.Mutex
	files map[string][]byte
	ops   []Op
}

// NewMemFS returns an empty in-memory filesystem.
func NewMemFS() *MemFS {
	return &MemFS{files: make(map[string][]byte)}
}

// NewMemFSFrom builds a MemFS whose files start with the given contents
// (the output of ReplayMode reconstruction).
func NewMemFSFrom(files map[string][]byte) *MemFS {
	fs := NewMemFS()
	for _, name := range sortedKeys(files) {
		fs.files[name] = append([]byte(nil), files[name]...)
	}
	return fs
}

// sortedKeys gives map loops a deterministic order.
func sortedKeys(m map[string][]byte) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// OpenFile implements FS.
func (fs *MemFS) OpenFile(name string) (File, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if _, ok := fs.files[name]; !ok {
		fs.files[name] = nil
	}
	return &memFile{fs: fs, name: name}, nil
}

// Files returns a deep copy of the current contents (a "clean shutdown"
// disk image).
func (fs *MemFS) Files() map[string][]byte {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	out := make(map[string][]byte, len(fs.files))
	for _, name := range sortedKeys(fs.files) {
		out[name] = append([]byte(nil), fs.files[name]...)
	}
	return out
}

// Ops reports the number of journaled operations. Kill points are "crash
// just before op k" for k in [0, Ops()], so there are Ops()+1 of them.
func (fs *MemFS) Ops() int {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return len(fs.ops)
}

// SyncPoints lists the journal indices immediately after each opSync — the
// batch boundaries the crash simulator must cover at minimum.
func (fs *MemFS) SyncPoints() []int {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	var out []int
	for i, op := range fs.ops {
		if op.Kind == opSync {
			out = append(out, i+1)
		}
	}
	return out
}

// ReplayMode selects how unflushed state is treated when reconstructing
// the disk at a kill point.
type ReplayMode int

const (
	// ReplayInOrder applies every op before the kill point: the kindest
	// disk, where writes always hit media in issue order.
	ReplayInOrder ReplayMode = iota
	// ReplayTorn additionally applies only a prefix of the last write
	// before the kill point — a torn sector write.
	ReplayTorn
	// ReplayDropUnsynced drops, per file, every write after that file's
	// last sync before the kill point: the harshest disk, where nothing is
	// durable until fsync returns.
	ReplayDropUnsynced
)

// ReplayModes lists every mode, for exhaustive kill-point sweeps.
var ReplayModes = []ReplayMode{ReplayInOrder, ReplayTorn, ReplayDropUnsynced}

func (m ReplayMode) String() string {
	switch m {
	case ReplayInOrder:
		return "in-order"
	case ReplayTorn:
		return "torn"
	case ReplayDropUnsynced:
		return "drop-unsynced"
	default:
		return fmt.Sprintf("ReplayMode(%d)", int(m))
	}
}

// StateAt reconstructs the disk contents if the process had been killed
// just before journal op k (0 <= k <= Ops()), under the given mode.
func (fs *MemFS) StateAt(k int, mode ReplayMode) map[string][]byte {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if k < 0 || k > len(fs.ops) {
		panic(fmt.Sprintf("store: kill point %d out of range [0,%d]", k, len(fs.ops))) //mmt:allow nopanic: test-harness bounds guard; the crash simulator passes literals from Ops()
	}
	ops := fs.ops[:k]

	// For drop-unsynced, find each file's last sync before k; writes to
	// that file after it never reached media.
	lastSync := map[string]int{}
	if mode == ReplayDropUnsynced {
		for i, op := range ops {
			if op.Kind == opSync {
				lastSync[op.File] = i
			}
		}
	}

	out := map[string][]byte{}
	apply := func(op Op, tear int) {
		switch op.Kind {
		case opWrite:
			data := op.Data
			if tear >= 0 && tear < len(data) {
				data = data[:tear]
			}
			buf := out[op.File]
			if need := op.Off + int64(len(data)); int64(len(buf)) < need {
				grown := make([]byte, need)
				copy(grown, buf)
				buf = grown
			}
			copy(buf[op.Off:], data)
			out[op.File] = buf
		case opTruncate:
			buf := out[op.File]
			if int64(len(buf)) > op.Off {
				buf = buf[:op.Off]
			} else {
				grown := make([]byte, op.Off)
				copy(grown, buf)
				buf = grown
			}
			out[op.File] = buf
		}
	}
	for i, op := range ops {
		if mode == ReplayDropUnsynced && op.Kind == opWrite {
			if ls, ok := lastSync[op.File]; !ok || i > ls {
				continue // unsynced write: lost
			}
		}
		tear := -1
		if mode == ReplayTorn && i == len(ops)-1 && op.Kind == opWrite {
			tear = len(op.Data) / 2
		}
		apply(op, tear)
	}
	// Files that were opened but never durably written still exist, empty.
	for _, name := range sortedKeys(fs.files) {
		if _, ok := out[name]; !ok {
			out[name] = nil
		}
	}
	return out
}

// FileNames lists the known files, sorted.
func (fs *MemFS) FileNames() []string {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	names := make([]string, 0, len(fs.files))
	for n := range fs.files {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

type memFile struct {
	fs   *MemFS
	name string
}

func (f *memFile) ReadAt(p []byte, off int64) (int, error) {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	buf := f.fs.files[f.name]
	if off >= int64(len(buf)) {
		return 0, fmt.Errorf("store: read past EOF of %s", f.name)
	}
	n := copy(p, buf[off:])
	if n < len(p) {
		return n, fmt.Errorf("store: short read of %s", f.name)
	}
	return n, nil
}

func (f *memFile) WriteAt(p []byte, off int64) (int, error) {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	f.fs.ops = append(f.fs.ops, Op{Kind: opWrite, File: f.name, Off: off, Data: append([]byte(nil), p...)})
	buf := f.fs.files[f.name]
	if need := off + int64(len(p)); int64(len(buf)) < need {
		grown := make([]byte, need)
		copy(grown, buf)
		buf = grown
	}
	copy(buf[off:], p)
	f.fs.files[f.name] = buf
	return len(p), nil
}

func (f *memFile) Size() (int64, error) {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	return int64(len(f.fs.files[f.name])), nil
}

func (f *memFile) Sync() error {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	f.fs.ops = append(f.fs.ops, Op{Kind: opSync, File: f.name})
	return nil
}

func (f *memFile) Truncate(size int64) error {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	f.fs.ops = append(f.fs.ops, Op{Kind: opTruncate, File: f.name, Off: size})
	buf := f.fs.files[f.name]
	if int64(len(buf)) > size {
		buf = buf[:size]
	} else {
		grown := make([]byte, size)
		copy(grown, buf)
		buf = grown
	}
	f.fs.files[f.name] = buf
	return nil
}

func (f *memFile) Close() error { return nil }
