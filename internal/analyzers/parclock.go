package analyzers

import (
	"fmt"
	"go/ast"
	"go/types"
	"sort"
)

// ParClock enforces the caller's half of the internal/par determinism
// contract (DESIGN.md §9): a work unit handed to par.Map or par.ForEach
// must own every sim.Clock it touches. A clock captured from the
// enclosing scope is shared across concurrently running work units, so
// advancing it makes simulated time depend on goroutine interleaving —
// exactly the nondeterminism the runner is designed to rule out.
var ParClock = &Analyzer{
	Name: "parclock",
	ID:   "MMT006",
	Doc: "forbid par.Map/par.ForEach work-unit literals from touching a " +
		"sim.Clock declared outside the literal; each work unit must build " +
		"and own its clocks so simulated time is independent of scheduling",
	Run: runParClock,
}

func runParClock(pass *Pass) error {
	if !inScope(pass.Pkg.Path()) {
		return nil
	}
	var diags []Diagnostic
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := funcObj(pass.TypesInfo, call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "mmt/internal/par" {
				return true
			}
			if fn.Name() != "Map" && fn.Name() != "ForEach" {
				return true
			}
			for _, arg := range call.Args {
				if lit, ok := ast.Unparen(arg).(*ast.FuncLit); ok {
					diags = append(diags, capturedClocks(pass, lit, "par."+fn.Name())...)
				}
			}
			return true
		})
	}
	sort.Slice(diags, func(i, j int) bool { return diags[i].Pos < diags[j].Pos })
	for _, d := range diags {
		pass.Report(d)
	}
	return nil
}

// capturedClocks reports every use inside lit of a variable of type
// sim.Clock or *sim.Clock that is declared outside lit. Only plain
// identifiers are considered: the selector in x.clock names a struct
// field whose declaration is necessarily elsewhere, and whether the
// *value* is shared is decided by the receiver x, which this walk does
// visit.
func capturedClocks(pass *Pass, lit *ast.FuncLit, callee string) []Diagnostic {
	var diags []Diagnostic
	var visit func(n ast.Node) bool
	visit = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SelectorExpr:
			ast.Inspect(n.X, visit)
			return false
		case *ast.Ident:
			v, ok := pass.TypesInfo.Uses[n].(*types.Var)
			if !ok || v.IsField() || !isSimClock(v.Type()) {
				return true
			}
			if v.Pos() < lit.Pos() || v.Pos() > lit.End() {
				diags = append(diags, Diagnostic{Pos: n.Pos(), Message: fmt.Sprintf(
					"work unit passed to %s captures sim.Clock %q from the enclosing scope; "+
						"work units must own the clocks they touch (DESIGN.md §9)", callee, n.Name)})
			}
		}
		return true
	}
	ast.Inspect(lit.Body, visit)
	return diags
}

// isSimClock reports whether t is mmt/internal/sim.Clock or a pointer to
// it.
func isSimClock(t types.Type) bool {
	if p, ok := types.Unalias(t).(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Clock" && obj.Pkg() != nil && obj.Pkg().Path() == "mmt/internal/sim"
}
