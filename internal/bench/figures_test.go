package bench

import (
	"math"
	"testing"
)

func TestFig10aShape(t *testing.T) {
	rows := Fig10a()
	if len(rows) < 6 {
		t.Fatalf("only %d points", len(rows))
	}
	last := rows[len(rows)-1]
	// Paper: AES-GCM plateaus ~2.2 GB/s, RDMA ~11 GB/s, MMT ~9.68 GB/s.
	if last.AESGCMGBps < 1.5 || last.AESGCMGBps > 3 {
		t.Errorf("AES-GCM plateau %.2f GB/s, want ~2.2", last.AESGCMGBps)
	}
	if last.RDMAGBps < 9 || last.RDMAGBps > 13 {
		t.Errorf("RDMA plateau %.2f GB/s, want ~11", last.RDMAGBps)
	}
	if last.MMTGBps < 8 || last.MMTGBps > 11 {
		t.Errorf("MMT goodput %.2f GB/s, want ~9.68", last.MMTGBps)
	}
	if last.MMTGBps >= last.RDMAGBps {
		t.Error("MMT goodput should be below raw RDMA (metadata overhead)")
	}
	// An order of magnitude between AES and MMT at large blocks.
	if last.MMTGBps/last.AESGCMGBps < 3 {
		t.Errorf("MMT/AES ratio %.1f, want >3", last.MMTGBps/last.AESGCMGBps)
	}
	// Throughputs grow with block size (setup amortization).
	if rows[0].AESGCMGBps >= last.AESGCMGBps {
		t.Error("AES-GCM throughput not increasing with block size")
	}
	t.Log("\n" + RenderFig10a(rows))
}

func TestFig10bShape(t *testing.T) {
	rows, err := Fig10b()
	if err != nil {
		t.Fatal(err)
	}
	first, last := rows[0], rows[len(rows)-1]
	if first.NetLatency != 0 || last.NetLatency != 10e-3 {
		t.Fatalf("latency sweep endpoints wrong: %v..%v", first.NetLatency, last.NetLatency)
	}
	// Paper: 169x at zero latency, ~4.5x at 10ms.
	if first.Speedup < 100 || first.Speedup > 260 {
		t.Errorf("zero-latency speedup %.1fx, want ~169x", first.Speedup)
	}
	if last.Speedup < 2 || last.Speedup > 8 {
		t.Errorf("10ms speedup %.1fx, want ~4.5x", last.Speedup)
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].Speedup > rows[i-1].Speedup {
			t.Errorf("speedup not shrinking with latency at %v", rows[i].NetLatency)
		}
	}
	t.Log("\n" + RenderFig10b(rows))
}

func TestFig11AndTable5Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("trace simulation in -short mode")
	}
	res, err := Fig11(100_000)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) < 10 {
		t.Fatalf("only %d benchmarks", len(res.Rows))
	}
	// Paper averages: 1.07 / 1.12 / 1.21. Our model reproduces the first
	// two closely; the 4-level penalty is smaller (see EXPERIMENTS.md), so
	// assert ordering plus bands.
	a2, a3, a4 := res.Average[2], res.Average[3], res.Average[4]
	if a2 < 1.03 || a2 > 1.12 {
		t.Errorf("2-level average %.3f, want ~1.07", a2)
	}
	if a3 < 1.08 || a3 > 1.17 {
		t.Errorf("3-level average %.3f, want ~1.12", a3)
	}
	if !(a2 < a3 && a3 < a4) {
		t.Errorf("averages not ordered: %.3f %.3f %.3f", a2, a3, a4)
	}
	// Every benchmark's overhead is at least 1 (protection never speeds
	// memory up).
	for _, r := range res.Rows {
		for l, o := range r.Overhead {
			if o < 1 {
				t.Errorf("%s level %d overhead %.3f < 1", r.Benchmark, l, o)
			}
		}
	}
	t.Log("\n" + RenderFig11(res))

	_, rows, err := Table5(res)
	if err != nil {
		t.Fatal(err)
	}
	want := []struct{ root, mmt int }{
		{256 << 10, 64 << 10},
		{8 << 10, 2 << 20},
		{256, 64 << 20},
	}
	for i, r := range rows {
		if r.RootSize != want[i].root || r.MMTSize != want[i].mmt {
			t.Errorf("level %d: root %d mmt %d, want %d %d",
				r.Levels, r.RootSize, r.MMTSize, want[i].root, want[i].mmt)
		}
	}
	t.Log("\n" + RenderTable5(rows))
}

func TestFig12Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("wordcount sweeps in -short mode")
	}
	rows, err := Fig12()
	if err != nil {
		t.Fatal(err)
	}
	small, large := rows[0], rows[len(rows)-1]
	// Paper: secure channel wins for tiny transfers (crossover < 8K)...
	if small.Speedup >= 1 {
		t.Errorf("smallest size speedup %.2fx, want <1 (secure channel wins)", small.Speedup)
	}
	// ...and MMT wins by up to ~10x once past a closure.
	if large.Speedup < 4 || large.Speedup > 20 {
		t.Errorf("largest size speedup %.2fx, want ~10x", large.Speedup)
	}
	// Speedup grows with size until it plateaus (allow 5% jitter).
	for i := 1; i < len(rows); i++ {
		if rows[i].Speedup < 0.95*rows[i-1].Speedup {
			t.Errorf("speedup shrinking at %s", fmtSize(rows[i].InputBytes))
		}
	}
	t.Log("\n" + RenderFig12(rows))
}

func TestFig13aShape(t *testing.T) {
	if testing.Short() {
		t.Skip("comm-ratio sweep in -short mode")
	}
	rows, err := Fig13a()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		// MMT stays near the baseline (paper: ~1.5% overhead at comm-10%;
		// our closure-granularity rounding costs more at extreme comm
		// shares — see EXPERIMENTS.md).
		if r.MMT < 0.75 {
			t.Errorf("comm-%d%%: MMT normalized %.3f, want ~1.0", r.CommPercent, r.MMT)
		}
		if r.CommPercent <= 10 && r.MMT < 0.93 {
			t.Errorf("comm-%d%%: MMT normalized %.3f, want >0.93", r.CommPercent, r.MMT)
		}
		// Secure channel is strictly worse than MMT.
		if r.SecureChannel >= r.MMT {
			t.Errorf("comm-%d%%: secure channel %.3f not below MMT %.3f",
				r.CommPercent, r.SecureChannel, r.MMT)
		}
		if r.MMTImprovement <= 0 {
			t.Errorf("comm-%d%%: no improvement over secure channel", r.CommPercent)
		}
	}
	// Secure channel deteriorates as communication share grows.
	for i := 1; i < len(rows); i++ {
		if rows[i].SecureChannel > rows[i-1].SecureChannel {
			t.Errorf("secure channel improves with more comm?!")
		}
	}
	t.Log("\n" + RenderFig13a(rows))
}

func TestFig13bShape(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster sweep in -short mode")
	}
	rows, err := Fig13b()
	if err != nil {
		t.Fatal(err)
	}
	last := rows[len(rows)-1]
	// Both modes keep scaling as workers double; MMT tracks the baseline
	// within a factor.
	if last.SpeedupVsM1MMT < 2 {
		t.Errorf("M8R8 MMT scaling %.2fx, want >2x", last.SpeedupVsM1MMT)
	}
	ratio := last.SpeedupVsM1MMT / last.SpeedupVsM1Baseline
	if ratio < 0.5 || ratio > 2 {
		t.Errorf("MMT scaling diverges from baseline: ratio %.2f", ratio)
	}
	t.Log("\n" + RenderFig13b(rows))
}

func TestFig14Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("pagerank in -short mode")
	}
	rows, cross, err := Fig14(DefaultFig14Config())
	if err != nil {
		t.Fatal(err)
	}
	if cross < 30_000 {
		t.Fatalf("only %d cross edges; want the paper's ~60k regime", cross)
	}
	byMode := map[string]Fig14Row{}
	for _, r := range rows {
		byMode[r.Mode.String()] = r
	}
	mmt, sec, non := byMode["mmt"], byMode["secure-channel"], byMode["non-secure"]
	// Paper: remote-transfer is ~5% of the iteration under MMT and ~37.5%
	// under the secure channel.
	if mmt.RemoteTransferShare > 0.15 {
		t.Errorf("MMT remote-transfer share %.1f%%, want ~5%%", 100*mmt.RemoteTransferShare)
	}
	if sec.RemoteTransferShare < 0.2 || sec.RemoteTransferShare > 0.6 {
		t.Errorf("secure-channel remote-transfer share %.1f%%, want ~37.5%%", 100*sec.RemoteTransferShare)
	}
	// Paper: MMT end-to-end ~35% better than the secure channel.
	if mmt.VsSecureChannel < 0.15 || mmt.VsSecureChannel > 0.60 {
		t.Errorf("MMT vs secure channel %+.0f%%, want ~+35%%", 100*mmt.VsSecureChannel)
	}
	if math.Abs(float64(mmt.Elapsed-non.Elapsed))/float64(non.Elapsed) > 0.25 {
		t.Errorf("MMT (%v) far from non-secure (%v)", mmt.Elapsed, non.Elapsed)
	}
	t.Log("\n" + RenderFig14(rows, cross))
}

func TestRenderConfigsAndTable1(t *testing.T) {
	if s := RenderTable1(); len(s) == 0 {
		t.Fatal("empty Table I")
	}
	if s := RenderConfigs(); len(s) == 0 {
		t.Fatal("empty configs")
	}
}
