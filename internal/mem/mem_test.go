package mem

import (
	"bytes"
	"testing"
	"testing/quick"
)

func testMem() *Memory {
	return New(Config{Size: 1 << 20, RegionSize: 64 << 10, MetaPerRegion: 8 << 10})
}

func TestConfigValidate(t *testing.T) {
	good := Config{Size: 1 << 20, RegionSize: 64 << 10, MetaPerRegion: 4 << 10}
	if err := good.Validate(); err != nil {
		t.Fatalf("good config rejected: %v", err)
	}
	bad := []Config{
		{Size: 0, RegionSize: 64 << 10},
		{Size: 1 << 20, RegionSize: 0},
		{Size: 1 << 20, RegionSize: 100}, // not line multiple
		{Size: 1 << 20, RegionSize: 64 << 10, MetaPerRegion: -64},
		{Size: 1 << 20, RegionSize: 64 << 10, MetaPerRegion: 100},
		{Size: 1<<20 + 64, RegionSize: 64 << 10}, // not region multiple
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted: %+v", i, c)
		}
	}
}

func TestLineRoundTrip(t *testing.T) {
	m := testMem()
	line := bytes.Repeat([]byte{0xAB}, LineSize)
	m.WriteLine(128, line)
	if !bytes.Equal(m.ReadLine(128), line) {
		t.Fatal("line round trip failed")
	}
	// Adjacent lines untouched.
	if !bytes.Equal(m.ReadLine(64), make([]byte, LineSize)) {
		t.Fatal("adjacent line dirtied")
	}
}

func TestUnalignedLinePanics(t *testing.T) {
	m := testMem()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on unaligned line read")
		}
	}()
	m.ReadLine(3)
}

func TestOutOfRangePanics(t *testing.T) {
	m := testMem()
	for name, f := range map[string]func(){
		"read past end":  func() { m.Read(Addr(m.Size()-4), 8) },
		"write past end": func() { m.Write(Addr(m.Size()), []byte{1}) },
		"negative span":  func() { m.Read(0, -1) },
		"bad region":     func() { m.MetaRegion(9999) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}

func TestRegionMapping(t *testing.T) {
	m := testMem()
	if m.Regions() != 16 {
		t.Fatalf("Regions() = %d, want 16", m.Regions())
	}
	if m.RegionOf(0) != 0 || m.RegionOf(64<<10-1) != 0 || m.RegionOf(64<<10) != 1 {
		t.Fatal("RegionOf boundary wrong")
	}
	if m.RegionBase(3) != Addr(3*64<<10) {
		t.Fatal("RegionBase wrong")
	}
}

func TestKindsAndFindFree(t *testing.T) {
	m := testMem()
	if m.Kind(0) != KindNormal {
		t.Fatal("fresh memory not normal")
	}
	m.SetRegionKind(0, KindSecure)
	m.SetRegionKind(1, KindMeta)
	if m.Kind(0) != KindSecure || m.Kind(64<<10) != KindMeta {
		t.Fatal("SetRegionKind not visible through Kind")
	}
	if got := m.FindFree(); got != 2 {
		t.Fatalf("FindFree = %d, want 2", got)
	}
	for i := 0; i < m.Regions(); i++ {
		m.SetRegionKind(i, KindSecure)
	}
	if got := m.FindFree(); got != -1 {
		t.Fatalf("FindFree on full memory = %d, want -1", got)
	}
}

func TestKindString(t *testing.T) {
	if KindNormal.String() != "normal" || KindSecure.String() != "secure" || KindMeta.String() != "meta-zone" {
		t.Fatal("Kind.String wrong")
	}
	if Kind(200).String() == "" {
		t.Fatal("unknown kind should still print")
	}
}

func TestMetaRegionIsolatedPerRegion(t *testing.T) {
	m := testMem()
	m0 := m.MetaRegion(0)
	m1 := m.MetaRegion(1)
	for i := range m0 {
		m0[i] = 0xFF
	}
	for _, b := range m1 {
		if b != 0 {
			t.Fatal("writing region 0 meta dirtied region 1 meta")
		}
	}
	if len(m0) != 8<<10 {
		t.Fatalf("meta region size %d, want %d", len(m0), 8<<10)
	}
}

func TestRegionDataAliases(t *testing.T) {
	m := testMem()
	d := m.RegionData(1)
	d[0] = 0x42
	if m.Read(m.RegionBase(1), 1)[0] != 0x42 {
		t.Fatal("RegionData does not alias backing store")
	}
	if len(d) != 64<<10 {
		t.Fatalf("RegionData size %d", len(d))
	}
}

func TestReadReturnsCopy(t *testing.T) {
	m := testMem()
	m.Write(0, []byte{1, 2, 3})
	got := m.Read(0, 3)
	got[0] = 99
	if m.Read(0, 1)[0] != 1 {
		t.Fatal("Read did not return a copy")
	}
}

func TestSpanRoundTripProperty(t *testing.T) {
	m := testMem()
	f := func(off uint16, data []byte) bool {
		if len(data) == 0 {
			return true
		}
		a := Addr(off)
		if int(a)+len(data) > m.Size() {
			return true
		}
		m.Write(a, data)
		return bytes.Equal(m.Read(a, len(data)), data)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
